module convexcache

go 1.22
