package resilience

import (
	"context"
	"errors"
	"fmt"

	"convexcache/internal/core"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Checkpoint is a resumable cut of a replay: the policy's serialized state
// (which also names the resident pages, so the engine-side cache contents
// can be rebuilt) plus the accumulated counters and the next step to serve.
// It is JSON-serializable end to end (core.FastSnapshot already is), so a
// job store could persist it across process restarts.
type Checkpoint struct {
	// Step is the index of the next request to serve.
	Step int `json:"step"`
	// Hits, Misses, Evictions are the counters accumulated over [0, Step).
	Hits      int64   `json:"hits"`
	Misses    []int64 `json:"misses"`
	Evictions []int64 `json:"evictions"`
	// Snap is the policy checkpoint (core.Fast snapshot machinery).
	Snap core.FastSnapshot `json:"snap"`
}

// checkCadence matches sim.CheckEverySteps so cancellation latency is the
// same whether a replay runs synchronously or as a job.
const checkCadence = sim.CheckEverySteps

// RunCheckpointed replays tr through f exactly like sim.Run's map engine
// (same victim/insert sequence, same counters) but snapshots a Checkpoint
// every `every` steps via save, and can start from a prior Checkpoint. A
// run resumed from a checkpoint produces a Result bit-identical to an
// uninterrupted run: the snapshot round-trip is idempotent (proved by the
// internal/check oracles) and the counters are carried in the checkpoint.
//
// progress, when non-nil, receives the current step at the cancellation
// cadence. f must be freshly constructed with the same core.Options on
// every (re)start; cost functions are configuration, not state.
func RunCheckpointed(
	ctx context.Context,
	tr *trace.Trace,
	f *core.Fast,
	k, every int,
	from *Checkpoint,
	save func(Checkpoint),
	progress func(step int),
) (sim.Result, error) {
	if k <= 0 {
		return sim.Result{}, errors.New("resilience: cache size must be positive")
	}
	if every <= 0 {
		every = 1 << 16
	}
	n := tr.Len()
	nt := tr.NumTenants()
	res := sim.Result{
		Policy:         f.Name(),
		K:              k,
		Steps:          n,
		EffectiveSteps: n,
		Misses:         make([]int64, nt),
		Evictions:      make([]int64, nt),
	}
	cache := make(map[trace.PageID]trace.Tenant, k)
	start := 0
	if from != nil {
		if from.Step < 0 || from.Step > n {
			return sim.Result{}, fmt.Errorf("resilience: checkpoint step %d outside trace of %d requests", from.Step, n)
		}
		if err := f.Restore(from.Snap); err != nil {
			return sim.Result{}, fmt.Errorf("resilience: restore checkpoint: %w", err)
		}
		for p, t := range from.Snap.ResidentPages() {
			cache[p] = t
		}
		start = from.Step
		res.Hits = from.Hits
		copy(res.Misses, from.Misses)
		copy(res.Evictions, from.Evictions)
	}
	done := ctx.Done()
	for step := start; step < n; step++ {
		if step%checkCadence == checkCadence-1 {
			if done != nil {
				select {
				case <-done:
					return sim.Result{}, fmt.Errorf("resilience: job aborted at step %d: %w", step, context.Cause(ctx))
				default:
				}
			}
			if progress != nil {
				progress(step + 1)
			}
		}
		r := tr.At(step)
		if _, ok := cache[r.Page]; ok {
			res.Hits++
			f.OnHit(step, r)
		} else {
			res.Misses[r.Tenant]++
			if len(cache) >= k {
				v := f.Victim(step, r)
				owner, ok := cache[v]
				if !ok {
					return sim.Result{}, fmt.Errorf("resilience: policy returned victim %d not in cache at step %d", v, step)
				}
				delete(cache, v)
				res.Evictions[owner]++
				f.OnEvict(step, v)
			}
			cache[r.Page] = r.Tenant
			f.OnInsert(step, r)
		}
		// Checkpoint on interior boundaries only; the final state is the
		// Result itself.
		if save != nil && (step+1)%every == 0 && step+1 < n {
			save(Checkpoint{
				Step:      step + 1,
				Hits:      res.Hits,
				Misses:    append([]int64(nil), res.Misses...),
				Evictions: append([]int64(nil), res.Evictions...),
				Snap:      f.Snapshot(),
			})
		}
	}
	if progress != nil {
		progress(n)
	}
	return res, nil
}
