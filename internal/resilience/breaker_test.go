package resilience

import (
	"errors"
	"testing"
	"time"

	"convexcache/internal/obs"
)

// fakeClock drives the breaker's cooldown deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(cfg BreakerConfig, reg *obs.Registry) (*Breaker, *fakeClock) {
	b := NewBreaker("test", cfg, reg)
	c := &fakeClock{t: time.Unix(1_000_000, 0)}
	b.now = c.now
	return b, c
}

func mustAllow(t *testing.T, b *Breaker) *Call {
	t.Helper()
	c, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow: %v (state %s)", err, b.State())
	}
	return c
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	reg := obs.NewRegistry()
	b, _ := newTestBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: 10 * time.Second}, reg)

	// A success in between resets the streak.
	mustAllow(t, b).Record(Failure, 0)
	mustAllow(t, b).Record(Failure, 0)
	mustAllow(t, b).Record(Success, 0)
	mustAllow(t, b).Record(Failure, 0)
	mustAllow(t, b).Record(Failure, 0)
	if b.State() != Closed {
		t.Fatalf("state = %s before threshold, want closed", b.State())
	}
	mustAllow(t, b).Record(Failure, 0)
	if b.State() != Open {
		t.Fatalf("state = %s after 3 consecutive failures, want open", b.State())
	}
	_, err := b.Allow()
	var shed *Shed
	if !errors.As(err, &shed) || shed.Reason != ReasonCircuitOpen {
		t.Fatalf("err = %v, want circuit_open shed", err)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > 10*time.Second {
		t.Errorf("RetryAfter = %v, want (0, 10s]", shed.RetryAfter)
	}
	if got := reg.Counter(`resilience_breaker_trips_total{endpoint="test"}`).Value(); got != 1 {
		t.Errorf("trips = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbeAndClose(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{
		FailureThreshold: 1, OpenFor: 5 * time.Second,
		HalfOpenProbes: 1, SuccessesToClose: 2,
	}, nil)
	mustAllow(t, b).Record(Failure, 0)
	if b.State() != Open {
		t.Fatalf("state = %s, want open", b.State())
	}

	clk.advance(5 * time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %s after cooldown, want half-open", b.State())
	}
	// Only one concurrent probe is admitted.
	probe := mustAllow(t, b)
	if _, err := b.Allow(); err == nil {
		t.Fatal("second concurrent probe admitted, want shed")
	}
	probe.Record(Success, 0)
	if b.State() != HalfOpen {
		t.Fatalf("state = %s after 1/2 successes, want half-open", b.State())
	}
	mustAllow(t, b).Record(Success, 0)
	if b.State() != Closed {
		t.Fatalf("state = %s after 2/2 successes, want closed", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second}, nil)
	mustAllow(t, b).Record(Failure, 0)
	clk.advance(time.Second)
	mustAllow(t, b).Record(Failure, 0) // failed probe
	if b.State() != Open {
		t.Fatalf("state = %s after failed probe, want open", b.State())
	}
	// The cooldown restarts from the probe failure.
	clk.advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %s after second cooldown, want half-open", b.State())
	}
}

func TestBreakerLatencyCountsAsFailure(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{
		FailureThreshold: 2, LatencyThreshold: 100 * time.Millisecond,
	}, nil)
	mustAllow(t, b).Record(Success, 200*time.Millisecond)
	mustAllow(t, b).Record(Success, 300*time.Millisecond)
	if b.State() != Open {
		t.Fatalf("state = %s after sustained over-latency, want open", b.State())
	}
}

func TestBreakerIgnoredOutcomeIsNeutral(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{FailureThreshold: 2}, nil)
	mustAllow(t, b).Record(Failure, 0)
	mustAllow(t, b).Record(Ignored, 0) // e.g. shed by the limiter
	mustAllow(t, b).Record(Failure, 0)
	if b.State() != Open {
		t.Fatalf("Ignored must not reset the failure streak; state = %s", b.State())
	}
}

func TestBreakerRecordIsIdempotent(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second, HalfOpenProbes: 1}, nil)
	mustAllow(t, b).Record(Failure, 0)
	clk.advance(time.Second)
	probe := mustAllow(t, b)
	probe.Record(Success, 0)
	probe.Record(Success, 0) // must not double-count the probe slot
	if _, err := b.Allow(); err != nil {
		t.Fatalf("probe slot leaked: %v", err)
	}
}
