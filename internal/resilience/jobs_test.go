// External test package: these tests pull in the internal/check oracles,
// which since PR 7 transitively import internal/cached and hence
// internal/resilience itself — legal only from outside the package.
package resilience_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"convexcache/internal/check"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/obs"
	"convexcache/internal/resilience"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// testTrace builds a deterministic multi-tenant trace long enough to cross
// several checkpoint and cancellation-check boundaries.
func testTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	b := trace.NewBuilder()
	for i := 0; i < n; i++ {
		tn := trace.Tenant(rng.Intn(3))
		// Per-tenant page universe with a skewed-ish reuse pattern.
		p := trace.PageID(int64(tn)*1000 + int64(rng.Intn(200)))
		b.Add(tn, p)
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testOptions() core.Options {
	return core.Options{Costs: []costfn.Func{
		costfn.Linear{W: 1}, costfn.Linear{W: 2}, costfn.Linear{W: 0.5},
	}}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestRunCheckpointedMatchesSimRun(t *testing.T) {
	tr := testTrace(t, 20_000)
	const k = 64
	ref, err := sim.Run(tr, core.NewFast(testOptions()), sim.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resilience.RunCheckpointed(context.Background(), tr, core.NewFast(testOptions()), k, 1000, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("uninterrupted RunCheckpointed diverged from sim.Run:\nref %+v\ngot %+v", ref, got)
	}
}

func TestRunCheckpointedResumeBitIdentical(t *testing.T) {
	tr := testTrace(t, 20_000)
	const k, every = 64, 1000

	// The snapshot machinery itself must be sound on this workload — the
	// internal/check differential oracle is the ground truth for that.
	if err := check.SnapshotRoundTrip(tr, k, testOptions(), []float64{0.25, 0.5, 0.75}); err != nil {
		t.Fatalf("snapshot oracle rejects workload: %v", err)
	}

	refFast := core.NewFast(testOptions())
	ref, err := sim.Run(tr, refFast, sim.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	refSnap, err := json.Marshal(refFast.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel once a mid-trace checkpoint has been taken.
	// The next cancellation check (every sim.CheckEverySteps steps) aborts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cp *resilience.Checkpoint
	_, err = resilience.RunCheckpointed(ctx, tr, core.NewFast(testOptions()), k, every, nil,
		func(c resilience.Checkpoint) {
			if c.Step >= 5000 && cp == nil {
				cp = &c
				cancel()
			}
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}
	if cp == nil || cp.Step >= tr.Len() {
		t.Fatalf("no usable mid-trace checkpoint (cp = %+v)", cp)
	}

	// Resume from the checkpoint with a fresh policy instance, as a process
	// restart would.
	resumedFast := core.NewFast(testOptions())
	got, err := resilience.RunCheckpointed(context.Background(), tr, resumedFast, k, every, cp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("resumed result diverged from uninterrupted run:\nref %+v\ngot %+v", ref, got)
	}
	gotSnap, err := json.Marshal(resumedFast.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(refSnap) != string(gotSnap) {
		t.Fatal("final policy snapshots differ between resumed and uninterrupted runs")
	}
}

func TestJobsLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	js := resilience.NewJobs(resilience.JobsConfig{Workers: 2, MaxJobs: 8, CheckpointEvery: 1000}, reg)
	defer js.Close()
	tr := testTrace(t, 20_000)
	const k = 64

	ref, err := sim.Run(tr, core.NewFast(testOptions()), sim.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}

	st, err := js.Submit(resilience.JobSpec{
		Label: "alg", Trace: tr, K: k,
		NewFast: func() *core.Fast { return core.NewFast(testOptions()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		s, err := js.Status(st.ID)
		return err == nil && s.State == resilience.JobDone
	})
	res, _, ok, err := js.Result(st.ID)
	if err != nil || !ok {
		t.Fatalf("Result: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Fatalf("job result diverged:\nref %+v\ngot %+v", ref, res)
	}
	if got := reg.Counter(`resilience_jobs_finished_total{state="done"}`).Value(); got != 1 {
		t.Errorf("finished counter = %d, want 1", got)
	}
}

// gatedPolicy blocks its first insert until the gate closes, so tests can
// hold a worker busy deterministically.
type gatedPolicy struct {
	gate    chan struct{}
	blocked chan struct{}
	once    bool
}

func (g *gatedPolicy) Name() string                    { return "gated" }
func (g *gatedPolicy) OnHit(step int, r trace.Request) {}
func (g *gatedPolicy) OnInsert(step int, r trace.Request) {
	if !g.once {
		g.once = true
		close(g.blocked)
		<-g.gate
	}
}
func (g *gatedPolicy) Victim(step int, r trace.Request) trace.PageID { return r.Page - 1 }
func (g *gatedPolicy) OnEvict(step int, p trace.PageID)              {}
func (g *gatedPolicy) Reset()                                        {}

func TestJobsCancelQueuedAndResume(t *testing.T) {
	js := resilience.NewJobs(resilience.JobsConfig{Workers: 1, MaxJobs: 8}, nil)
	defer js.Close()
	tr := testTrace(t, 64)

	gate := make(chan struct{})
	blocked := make(chan struct{})
	// K = trace length: the cache never fills, so the gated policy's Victim
	// is never consulted and the job completes cleanly.
	blocker, err := js.Submit(resilience.JobSpec{
		Label: "gated", Trace: tr, K: 64,
		NewPolicy: func() sim.Policy { return &gatedPolicy{gate: gate, blocked: blocked} },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-blocked // the single worker is now busy

	queued, err := js.Submit(resilience.JobSpec{
		Label: "lru-ish", Trace: tr, K: 64,
		NewFast: func() *core.Fast { return core.NewFast(core.Options{}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := js.Cancel(queued.ID); err != nil || st.State != resilience.JobCancelled {
		t.Fatalf("cancel queued: %+v, %v", st, err)
	}
	if _, err := js.Resume(queued.ID); err != nil {
		t.Fatalf("resume: %v", err)
	}
	close(gate)
	waitFor(t, func() bool {
		s, err := js.Status(queued.ID)
		return err == nil && s.State == resilience.JobDone
	})
	s, _ := js.Status(queued.ID)
	if s.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", s.Resumes)
	}
	waitFor(t, func() bool {
		s, err := js.Status(blocker.ID)
		return err == nil && s.State == resilience.JobDone
	})
}

// panicPolicy crashes mid-replay to prove job isolation.
type panicPolicy struct{}

func (panicPolicy) Name() string                                  { return "panic" }
func (panicPolicy) OnHit(step int, r trace.Request)               {}
func (panicPolicy) OnInsert(step int, r trace.Request)            { panic("injected job panic") }
func (panicPolicy) Victim(step int, r trace.Request) trace.PageID { return -1 }
func (panicPolicy) OnEvict(step int, p trace.PageID)              {}
func (panicPolicy) Reset()                                        {}

func TestJobsPanicBecomesFailedJob(t *testing.T) {
	reg := obs.NewRegistry()
	js := resilience.NewJobs(resilience.JobsConfig{Workers: 1, MaxJobs: 4}, reg)
	defer js.Close()
	tr := testTrace(t, 64)

	st, err := js.Submit(resilience.JobSpec{
		Label: "panic", Trace: tr, K: 8,
		NewPolicy: func() sim.Policy { return panicPolicy{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		s, err := js.Status(st.ID)
		return err == nil && s.State == resilience.JobFailed
	})
	s, _ := js.Status(st.ID)
	if !strings.Contains(s.Error, "job crashed") {
		t.Errorf("error = %q, want crash report", s.Error)
	}
	if got := reg.Counter("resilience_job_panics_total").Value(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}

	// The worker must survive the crash and serve the next job.
	ok, err := js.Submit(resilience.JobSpec{
		Label: "alg", Trace: tr, K: 8,
		NewFast: func() *core.Fast { return core.NewFast(core.Options{}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		s, err := js.Status(ok.ID)
		return err == nil && s.State == resilience.JobDone
	})
}

func TestJobsStoreBoundSheds(t *testing.T) {
	js := resilience.NewJobs(resilience.JobsConfig{Workers: 1, MaxJobs: 2}, nil)
	defer js.Close()
	tr := testTrace(t, 64)

	gate := make(chan struct{})
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	mk := func() (resilience.JobStatus, error) {
		blocked := make(chan struct{})
		return js.Submit(resilience.JobSpec{
			Label: "gated", Trace: tr, K: 64,
			NewPolicy: func() sim.Policy { return &gatedPolicy{gate: gate, blocked: blocked} },
		})
	}
	if _, err := mk(); err != nil {
		t.Fatal(err)
	}
	if _, err := mk(); err != nil {
		t.Fatal(err)
	}
	_, err := mk()
	var shed *resilience.Shed
	if !errors.As(err, &shed) || shed.Reason != resilience.ReasonJobStoreFull {
		t.Fatalf("err = %v, want job_store_full shed", err)
	}
	close(gate)
	// Once jobs finish, their slots become evictable again.
	waitFor(t, func() bool {
		_, err := mk()
		return err == nil
	})
}
