package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/obs"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Job states. queued -> running -> {done, failed, cancelled};
// failed/cancelled -> queued again via Resume.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobSpec describes one replay to run asynchronously. Exactly one of
// NewFast (checkpointable, the paper's algorithm) or NewPolicy must be set;
// both must return a fresh instance per call.
type JobSpec struct {
	// Label is the policy name for the result.
	Label string
	// Trace is the request sequence.
	Trace *trace.Trace
	// K is the cache size.
	K int
	// NewFast, when non-nil, selects the checkpointed runner: the job
	// snapshots every CheckpointEvery steps and resumes after cancellation
	// or a crash instead of restarting.
	NewFast func() *core.Fast
	// NewPolicy selects a plain (non-checkpointable) replay.
	NewPolicy func() sim.Policy
	// Costs are kept with the job so the result can be priced.
	Costs []costfn.Func
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Policy is the spec's Label (the requested policy name).
	Policy string `json:"policy"`
	// Step is the replay progress; TotalSteps the trace length.
	Step       int `json:"step"`
	TotalSteps int `json:"total_steps"`
	// CheckpointStep is the step a resume would restart from (0 = none).
	CheckpointStep int `json:"checkpoint_step,omitempty"`
	// Resumes counts how many times the job was re-queued from a checkpoint.
	Resumes int `json:"resumes,omitempty"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
}

// job is the internal record.
type job struct {
	id   string
	spec JobSpec

	mu       sync.Mutex
	state    string
	step     int
	err      error
	result   *sim.Result
	cp       *Checkpoint
	resumes  int
	cancel   context.CancelFunc
	finished time.Time
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		State:      j.state,
		Policy:     j.spec.Label,
		Step:       j.step,
		TotalSteps: j.spec.Trace.Len(),
		Resumes:    j.resumes,
	}
	if j.cp != nil {
		st.CheckpointStep = j.cp.Step
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// JobsConfig tunes the job subsystem; the zero value selects the defaults.
type JobsConfig struct {
	// Workers is the worker-pool size; <= 0 selects 2.
	Workers int
	// MaxJobs bounds the job store (records, running or finished); <= 0
	// selects 256. When full, the oldest finished job is evicted; with no
	// evictable record, Submit sheds.
	MaxJobs int
	// CheckpointEvery is the checkpoint cadence in steps for checkpointable
	// jobs; <= 0 selects 65536.
	CheckpointEvery int
}

func (c JobsConfig) withDefaults() JobsConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1 << 16
	}
	return c
}

// Jobs runs replays asynchronously on a bounded worker pool so long work
// never holds an HTTP connection, and crashes (worker panics) degrade to a
// failed job with a retained checkpoint instead of a dead process.
type Jobs struct {
	cfg JobsConfig
	reg *obs.Registry

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // insertion order, for bounded-store eviction
	seq   atomic.Int64

	queue     chan *job
	startOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// ErrUnknownJob reports a job id with no record (possibly evicted).
var ErrUnknownJob = errors.New("resilience: unknown job id")

// NewJobs builds the subsystem; reg may be nil. Workers start lazily on the
// first Submit, so an idle instance costs no goroutines.
func NewJobs(cfg JobsConfig, reg *obs.Registry) *Jobs {
	cfg = cfg.withDefaults()
	// The queue buffer is 2*MaxJobs: a job cancelled while queued leaves a
	// stale channel entry behind (the worker skips it), and its Resume adds
	// a second one, so entries can briefly exceed live jobs.
	return &Jobs{
		cfg:    cfg,
		reg:    reg,
		jobs:   make(map[string]*job),
		queue:  make(chan *job, 2*cfg.MaxJobs),
		closed: make(chan struct{}),
	}
}

// Close cancels running jobs and stops the workers. Safe to call on an
// instance that never ran anything.
func (js *Jobs) Close() {
	js.startOnce.Do(func() {}) // ensure workers can never start after Close
	select {
	case <-js.closed:
		return
	default:
	}
	close(js.closed)
	js.mu.Lock()
	for _, j := range js.jobs {
		j.mu.Lock()
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	js.mu.Unlock()
	js.wg.Wait()
}

func (js *Jobs) start() {
	js.startOnce.Do(func() {
		select {
		case <-js.closed:
			return
		default:
		}
		for w := 0; w < js.cfg.Workers; w++ {
			js.wg.Add(1)
			go func() {
				defer js.wg.Done()
				for {
					select {
					case <-js.closed:
						return
					case j := <-js.queue:
						js.run(j)
					}
				}
			}()
		}
	})
}

// Submit stores and enqueues a new job, returning its status. The store is
// bounded: if no finished job can be evicted to make room, Submit sheds
// with ReasonJobStoreFull.
func (js *Jobs) Submit(spec JobSpec) (JobStatus, error) {
	if spec.Trace == nil || spec.K <= 0 || (spec.NewFast == nil) == (spec.NewPolicy == nil) {
		return JobStatus{}, errors.New("resilience: job spec needs a trace, a positive K, and exactly one runner")
	}
	select {
	case <-js.closed:
		return JobStatus{}, errors.New("resilience: job subsystem closed")
	default:
	}
	j := &job{
		id:    fmt.Sprintf("job-%06d", js.seq.Add(1)),
		spec:  spec,
		state: JobQueued,
	}
	js.mu.Lock()
	if len(js.jobs) >= js.cfg.MaxJobs && !js.evictLocked() {
		js.mu.Unlock()
		countShed(js.reg, ReasonJobStoreFull)
		return JobStatus{}, &Shed{
			Reason:     ReasonJobStoreFull,
			RetryAfter: 5 * time.Second,
			Detail:     fmt.Sprintf("all %d job slots hold unfinished jobs", js.cfg.MaxJobs),
		}
	}
	js.jobs[j.id] = j
	js.order = append(js.order, j.id)
	js.mu.Unlock()
	js.start()
	js.count("resilience_jobs_submitted_total")
	js.queue <- j // buffer == MaxJobs, so never blocks while the store admits
	return j.status(), nil
}

// evictLocked drops the oldest finished job; reports whether a slot freed.
func (js *Jobs) evictLocked() bool {
	for i, id := range js.order {
		j := js.jobs[id]
		j.mu.Lock()
		finished := j.state == JobDone || j.state == JobFailed || j.state == JobCancelled
		j.mu.Unlock()
		if finished {
			delete(js.jobs, id)
			js.order = append(js.order[:i], js.order[i+1:]...)
			return true
		}
	}
	return false
}

// Status returns the job's current status.
func (js *Jobs) Status(id string) (JobStatus, error) {
	j, err := js.get(id)
	if err != nil {
		return JobStatus{}, err
	}
	return j.status(), nil
}

// Result returns the finished job's Result and costs. The bool reports
// whether the job is done; a false return with nil error means "not yet".
func (js *Jobs) Result(id string) (sim.Result, []costfn.Func, bool, error) {
	j, err := js.get(id)
	if err != nil {
		return sim.Result{}, nil, false, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone || j.result == nil {
		return sim.Result{}, nil, false, nil
	}
	return *j.result, j.spec.Costs, true, nil
}

// Cancel stops a queued or running job; its checkpoint (if any) is kept so
// Resume can continue it. Cancelling a finished job is an error.
func (js *Jobs) Cancel(id string) (JobStatus, error) {
	j, err := js.get(id)
	if err != nil {
		return JobStatus{}, err
	}
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		j.state = JobCancelled // the worker skips it when dequeued
		j.finished = time.Now()
	case JobRunning:
		if j.cancel != nil {
			j.cancel()
		}
		// The worker moves it to cancelled when RunCheckpointed returns.
	case JobCancelled:
		// Idempotent.
	default:
		st := j.state
		j.mu.Unlock()
		return JobStatus{}, fmt.Errorf("resilience: cannot cancel %s job %s", st, id)
	}
	j.mu.Unlock()
	return j.status(), nil
}

// Resume re-queues a cancelled or failed job; a checkpointable job restarts
// from its last checkpoint, others from scratch.
func (js *Jobs) Resume(id string) (JobStatus, error) {
	j, err := js.get(id)
	if err != nil {
		return JobStatus{}, err
	}
	select {
	case <-js.closed:
		return JobStatus{}, errors.New("resilience: job subsystem closed")
	default:
	}
	j.mu.Lock()
	if j.state != JobCancelled && j.state != JobFailed {
		st := j.state
		j.mu.Unlock()
		return JobStatus{}, fmt.Errorf("resilience: cannot resume %s job %s", st, id)
	}
	j.state = JobQueued
	j.err = nil
	j.resumes++
	j.mu.Unlock()
	js.start()
	js.count("resilience_jobs_resumed_total")
	js.queue <- j
	return j.status(), nil
}

func (js *Jobs) get(id string) (*job, error) {
	js.mu.Lock()
	j, ok := js.jobs[id]
	js.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j, nil
}

// run executes one dequeued job. A panicking replay is recovered into a
// failed job (checkpoint retained) — a crashed job must never take the
// worker, let alone the process, down with it.
func (js *Jobs) run(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.mu.Lock()
	if j.state != JobQueued { // cancelled while waiting in the queue
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.cancel = cancel
	from := j.cp
	j.mu.Unlock()
	js.gauge("resilience_jobs_running", 1)
	defer js.gauge("resilience_jobs_running", -1)

	defer func() {
		if p := recover(); p != nil {
			js.count("resilience_job_panics_total")
			js.finish(j, JobFailed, nil, fmt.Errorf("job crashed: %v", p))
		}
	}()

	var res sim.Result
	var err error
	if j.spec.NewFast != nil {
		res, err = RunCheckpointed(ctx, j.spec.Trace, j.spec.NewFast(), j.spec.K,
			js.cfg.CheckpointEvery,
			from,
			func(cp Checkpoint) {
				j.mu.Lock()
				j.cp = &cp
				j.mu.Unlock()
				js.count("resilience_job_checkpoints_total")
			},
			func(step int) {
				j.mu.Lock()
				j.step = step
				j.mu.Unlock()
			},
		)
	} else {
		res, err = sim.RunContext(ctx, j.spec.Trace, j.spec.NewPolicy(),
			sim.ConfigAt(j.spec.K).WithProgress(func(delta int) {
				j.mu.Lock()
				j.step += delta
				j.mu.Unlock()
			}))
	}
	switch {
	case err == nil:
		js.finish(j, JobDone, &res, nil)
	case errors.Is(err, context.Canceled):
		js.finish(j, JobCancelled, nil, nil)
	default:
		js.finish(j, JobFailed, nil, err)
	}
}

func (js *Jobs) finish(j *job, state string, res *sim.Result, err error) {
	j.mu.Lock()
	j.state = state
	j.result = res
	j.err = err
	j.cancel = nil
	j.finished = time.Now()
	if res != nil {
		j.step = res.Steps
	}
	j.mu.Unlock()
	js.count(fmt.Sprintf("resilience_jobs_finished_total{state=%q}", state))
}

func (js *Jobs) count(name string) {
	if js.reg != nil {
		js.reg.Counter(name).Inc()
	}
}

func (js *Jobs) gauge(name string, delta int64) {
	if js.reg != nil {
		js.reg.Gauge(name).Add(delta)
	}
}
