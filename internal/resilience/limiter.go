package resilience

import (
	"context"
	"runtime"
	"sync"
	"time"

	"convexcache/internal/obs"
)

// LimiterConfig tunes the admission controller; the zero value selects the
// documented defaults.
type LimiterConfig struct {
	// MaxConcurrent is the number of requests allowed to execute at once;
	// <= 0 selects GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds the FIFO wait queue behind the concurrency slots;
	// <= 0 selects max(64, 8*MaxConcurrent). A request arriving with the
	// queue full is shed immediately.
	MaxQueue int
	// MaxWait caps how long a queued request waits for a slot even when its
	// context has no deadline; <= 0 selects 10s.
	MaxWait time.Duration
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8 * c.MaxConcurrent
		if c.MaxQueue < 64 {
			c.MaxQueue = 64
		}
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 10 * time.Second
	}
	return c
}

// waiter is one queued Acquire call. The slot is handed over by setting
// granted under the limiter lock and closing ch; an abandoning waiter that
// finds granted set owns a slot and must put it back.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// Limiter is a server-wide concurrency limiter with a bounded FIFO wait
// queue. Admission order among queued requests is strictly first-come
// first-served (unlike a bare buffered-channel semaphore, whose wakeups are
// randomized), which keeps tail latency predictable under overload.
type Limiter struct {
	cfg LimiterConfig

	mu       sync.Mutex
	inflight int
	queue    []*waiter

	reg       *obs.Registry
	inflightG *obs.Gauge
	queueG    *obs.Gauge
	admitted  *obs.Counter
	waitHist  *obs.Histogram
}

// queueWaitBuckets span sub-millisecond token handoffs to the default
// 10s MaxWait.
var queueWaitBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// NewLimiter builds a Limiter; reg may be nil to disable metrics.
func NewLimiter(cfg LimiterConfig, reg *obs.Registry) *Limiter {
	l := &Limiter{cfg: cfg.withDefaults(), reg: reg}
	if reg != nil {
		l.inflightG = reg.Gauge("resilience_inflight")
		l.queueG = reg.Gauge("resilience_queue_depth")
		l.admitted = reg.Counter("resilience_admitted_total")
		l.waitHist = reg.Histogram("resilience_queue_wait_seconds", queueWaitBuckets)
	}
	return l
}

// Config reports the effective (defaulted) configuration.
func (l *Limiter) Config() LimiterConfig { return l.cfg }

// Inflight reports the number of currently admitted requests.
func (l *Limiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// QueueDepth reports the number of requests waiting for a slot.
func (l *Limiter) QueueDepth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

// Acquire admits the caller or blocks in the FIFO queue until a slot frees,
// the context is done, or MaxWait elapses. On success it returns an
// idempotent release func that must be called when the work finishes. On
// rejection it returns a *Shed describing why and how long to back off.
//
// Deadline awareness: a context whose deadline leaves no time to wait is
// shed immediately with ReasonDeadline instead of occupying a queue slot it
// can never convert.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	l.mu.Lock()
	if l.inflight < l.cfg.MaxConcurrent {
		l.inflight++
		l.setGauges()
		l.mu.Unlock()
		if l.admitted != nil {
			l.admitted.Inc()
		}
		return l.releaseOnce(), nil
	}
	if len(l.queue) >= l.cfg.MaxQueue {
		l.mu.Unlock()
		countShed(l.reg, ReasonQueueFull)
		return nil, &Shed{
			Reason:     ReasonQueueFull,
			RetryAfter: l.cfg.MaxWait,
			Detail:     "concurrency limit reached and wait queue full",
		}
	}
	// Budget the wait: the configured cap, tightened by the caller's
	// deadline when it is sooner.
	wait := l.cfg.MaxWait
	deadlineBound := false
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < wait {
			wait = rem
			deadlineBound = true
		}
	}
	if wait <= 0 {
		l.mu.Unlock()
		countShed(l.reg, ReasonDeadline)
		return nil, &Shed{
			Reason:     ReasonDeadline,
			RetryAfter: time.Second,
			Detail:     "request deadline leaves no time to queue",
		}
	}
	w := &waiter{ch: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.setGauges()
	l.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	start := time.Now()
	select {
	case <-w.ch:
		if l.waitHist != nil {
			l.waitHist.Observe(time.Since(start).Seconds())
		}
		if l.admitted != nil {
			l.admitted.Inc()
		}
		return l.releaseOnce(), nil
	case <-ctx.Done():
		l.abandon(w)
		countShed(l.reg, ReasonDeadline)
		return nil, &Shed{
			Reason:     ReasonDeadline,
			RetryAfter: time.Second,
			Detail:     "request context done while queued: " + ctx.Err().Error(),
		}
	case <-timer.C:
		l.abandon(w)
		reason := ReasonQueueTimeout
		if deadlineBound {
			reason = ReasonDeadline
		}
		countShed(l.reg, reason)
		return nil, &Shed{
			Reason:     reason,
			RetryAfter: l.cfg.MaxWait,
			Detail:     "no slot freed within the wait budget",
		}
	}
}

// releaseOnce wraps release so double calls (e.g. a deferred release racing
// a panic path) cannot corrupt the slot count.
func (l *Limiter) releaseOnce() func() {
	var once sync.Once
	return func() { once.Do(l.release) }
}

// release returns a slot: the longest-waiting queued request inherits it,
// otherwise the inflight count drops.
func (l *Limiter) release() {
	l.mu.Lock()
	l.releaseLocked()
	l.setGauges()
	l.mu.Unlock()
}

func (l *Limiter) releaseLocked() {
	if len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		w.granted = true
		close(w.ch)
		return // slot transferred; inflight unchanged
	}
	l.inflight--
}

// abandon removes a timed-out or cancelled waiter. If a slot was granted
// concurrently with the abandonment, the slot is put back (possibly waking
// the next waiter), so no capacity leaks.
func (l *Limiter) abandon(w *waiter) {
	l.mu.Lock()
	if w.granted {
		l.releaseLocked()
		l.setGauges()
		l.mu.Unlock()
		return
	}
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	l.setGauges()
	l.mu.Unlock()
}

// setGauges publishes inflight and queue depth; called under l.mu.
func (l *Limiter) setGauges() {
	if l.inflightG != nil {
		l.inflightG.Set(int64(l.inflight))
	}
	if l.queueG != nil {
		l.queueG.Set(int64(len(l.queue)))
	}
}
