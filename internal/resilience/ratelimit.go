package resilience

import (
	"fmt"
	"sync"
	"time"

	"convexcache/internal/obs"
)

// RateLimiterConfig tunes the per-client token buckets. RPS <= 0 means the
// limiter admits everything (construction is still cheap, so callers can
// wire it unconditionally).
type RateLimiterConfig struct {
	// RPS is the sustained per-client request rate.
	RPS float64
	// Burst is the bucket capacity; <= 0 selects max(1, 2*RPS).
	Burst float64
	// MaxKeys bounds the number of tracked clients; <= 0 selects 4096.
	// When the table is full, fully-refilled (idle) buckets are swept, then
	// the least-recently-seen bucket is evicted.
	MaxKeys int
}

func (c RateLimiterConfig) withDefaults() RateLimiterConfig {
	if c.Burst <= 0 {
		c.Burst = 2 * c.RPS
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxKeys <= 0 {
		c.MaxKeys = 4096
	}
	return c
}

type bucket struct {
	tokens float64
	last   time.Time
}

// RateLimiter is a keyed token-bucket limiter protecting tenants from each
// other: each client identity gets its own bucket, so one misbehaving
// caller exhausts its own budget, not the shared wait queue.
type RateLimiter struct {
	cfg RateLimiterConfig

	mu      sync.Mutex
	buckets map[string]*bucket

	now func() time.Time

	reg   *obs.Registry
	keysG *obs.Gauge
}

// NewRateLimiter builds a RateLimiter; reg may be nil.
func NewRateLimiter(cfg RateLimiterConfig, reg *obs.Registry) *RateLimiter {
	rl := &RateLimiter{
		cfg:     cfg.withDefaults(),
		buckets: make(map[string]*bucket),
		now:     time.Now,
		reg:     reg,
	}
	if reg != nil {
		rl.keysG = reg.Gauge("resilience_ratelimit_keys")
	}
	return rl
}

// Enabled reports whether the limiter actually limits.
func (rl *RateLimiter) Enabled() bool { return rl.cfg.RPS > 0 }

// Allow consumes one token from key's bucket. When the bucket is empty it
// returns a *Shed with ReasonRateLimited and the time until the next token.
func (rl *RateLimiter) Allow(key string) error {
	if !rl.Enabled() {
		return nil
	}
	now := rl.now()
	rl.mu.Lock()
	b, ok := rl.buckets[key]
	if !ok {
		if len(rl.buckets) >= rl.cfg.MaxKeys {
			rl.evictLocked(now)
		}
		b = &bucket{tokens: rl.cfg.Burst, last: now}
		rl.buckets[key] = b
		if rl.keysG != nil {
			rl.keysG.Set(int64(len(rl.buckets)))
		}
	}
	if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens += el * rl.cfg.RPS
		if b.tokens > rl.cfg.Burst {
			b.tokens = rl.cfg.Burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		rl.mu.Unlock()
		return nil
	}
	need := (1 - b.tokens) / rl.cfg.RPS
	rl.mu.Unlock()
	countShed(rl.reg, ReasonRateLimited)
	return &Shed{
		Reason:     ReasonRateLimited,
		RetryAfter: time.Duration(need * float64(time.Second)),
		Detail:     fmt.Sprintf("client %q exceeded %.3g req/s", key, rl.cfg.RPS),
	}
}

// evictLocked frees table space: first drop every fully-refilled bucket
// (an idle client is indistinguishable from a new one), then, if nothing
// was idle, the least-recently-seen bucket.
func (rl *RateLimiter) evictLocked(now time.Time) {
	var oldestKey string
	var oldest time.Time
	for k, b := range rl.buckets {
		refilled := b.tokens + now.Sub(b.last).Seconds()*rl.cfg.RPS
		if refilled >= rl.cfg.Burst {
			delete(rl.buckets, k)
			continue
		}
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = k, b.last
		}
	}
	if len(rl.buckets) >= rl.cfg.MaxKeys && oldestKey != "" {
		delete(rl.buckets, oldestKey)
	}
	if rl.keysG != nil {
		rl.keysG.Set(int64(len(rl.buckets)))
	}
}
