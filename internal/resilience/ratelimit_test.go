package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func newTestRateLimiter(cfg RateLimiterConfig) (*RateLimiter, *fakeClock) {
	rl := NewRateLimiter(cfg, nil)
	c := &fakeClock{t: time.Unix(1_000_000, 0)}
	rl.now = c.now
	return rl, c
}

func TestRateLimiterBurstThenRefill(t *testing.T) {
	rl, clk := newTestRateLimiter(RateLimiterConfig{RPS: 2, Burst: 2})
	if err := rl.Allow("a"); err != nil {
		t.Fatal(err)
	}
	if err := rl.Allow("a"); err != nil {
		t.Fatal(err)
	}
	err := rl.Allow("a")
	var shed *Shed
	if !errors.As(err, &shed) || shed.Reason != ReasonRateLimited {
		t.Fatalf("err = %v, want rate_limited shed", err)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > time.Second {
		t.Errorf("RetryAfter = %v, want (0, 500ms-ish]", shed.RetryAfter)
	}
	clk.advance(time.Second) // refills 2 tokens
	if err := rl.Allow("a"); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestRateLimiterIsolatesClients(t *testing.T) {
	rl, _ := newTestRateLimiter(RateLimiterConfig{RPS: 1, Burst: 1})
	if err := rl.Allow("noisy"); err != nil {
		t.Fatal(err)
	}
	if err := rl.Allow("noisy"); err == nil {
		t.Fatal("noisy client not limited")
	}
	if err := rl.Allow("quiet"); err != nil {
		t.Fatalf("quiet client limited by noisy one: %v", err)
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	rl := NewRateLimiter(RateLimiterConfig{}, nil)
	if rl.Enabled() {
		t.Fatal("zero config must disable limiting")
	}
	for i := 0; i < 100; i++ {
		if err := rl.Allow("x"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRateLimiterBoundsKeyTable(t *testing.T) {
	rl, clk := newTestRateLimiter(RateLimiterConfig{RPS: 1, Burst: 1, MaxKeys: 8})
	for i := 0; i < 100; i++ {
		_ = rl.Allow(fmt.Sprintf("client-%d", i))
		clk.advance(10 * time.Millisecond)
	}
	rl.mu.Lock()
	n := len(rl.buckets)
	rl.mu.Unlock()
	if n > 8 {
		t.Fatalf("key table grew to %d, cap is 8", n)
	}
}
