package resilience

import (
	"fmt"
	"sync"
	"time"

	"convexcache/internal/obs"
)

// BreakerState is the circuit state machine position.
type BreakerState int

const (
	// Closed: traffic flows; consecutive failures are counted.
	Closed BreakerState = iota
	// HalfOpen: a bounded number of probes flow; the rest is shed.
	HalfOpen
	// Open: everything is shed until the cooldown elapses.
	Open
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// Outcome classifies a finished call for the breaker.
type Outcome int

const (
	// Success: the call completed acceptably.
	Success Outcome = iota
	// Failure: the call failed (5xx, engine error, panic, over-latency).
	Failure
	// Ignored: the call never reached the guarded work (e.g. it was shed by
	// the limiter); it must not move the state machine either way.
	Ignored
)

// BreakerConfig tunes a Breaker; the zero value selects the defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips the
	// breaker open; <= 0 selects 5.
	FailureThreshold int
	// LatencyThreshold, when > 0, counts a successful call slower than this
	// as a failure (sustained latency is how an overloaded backend looks
	// before it starts erroring).
	LatencyThreshold time.Duration
	// OpenFor is the cooldown before an open breaker half-opens; <= 0
	// selects 10s.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent probe calls while half-open; <= 0
	// selects 1.
	HalfOpenProbes int
	// SuccessesToClose is the number of consecutive probe successes that
	// closes a half-open breaker; <= 0 selects 2.
	SuccessesToClose int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 10 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 2
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker with latency accounting
// and half-open probing. One Breaker guards one endpoint.
type Breaker struct {
	cfg  BreakerConfig
	name string

	mu        sync.Mutex
	state     BreakerState
	fails     int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	probes    int // in-flight probes while half-open
	openedAt  time.Time

	now func() time.Time // injectable clock for tests

	reg    *obs.Registry
	stateG *obs.Gauge
	trips  *obs.Counter
}

// NewBreaker builds a Breaker guarding the named endpoint; reg may be nil.
func NewBreaker(name string, cfg BreakerConfig, reg *obs.Registry) *Breaker {
	b := &Breaker{cfg: cfg.withDefaults(), name: name, now: time.Now, reg: reg}
	if reg != nil {
		b.stateG = reg.Gauge(fmt.Sprintf("resilience_breaker_state{endpoint=%q}", name))
		b.trips = reg.Counter(fmt.Sprintf("resilience_breaker_trips_total{endpoint=%q}", name))
	}
	return b
}

// State reports the current state (advancing Open to HalfOpen when the
// cooldown has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

// Call is one admitted request's handle; Record must be called exactly once
// when the work finishes (extra calls are ignored).
type Call struct {
	b        *Breaker
	probe    bool
	recorded bool
}

// Allow asks the breaker to admit a call. On admission it returns a *Call;
// on rejection a *Shed with ReasonCircuitOpen and a RetryAfter covering the
// remaining cooldown.
func (b *Breaker) Allow() (*Call, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case Closed:
		return &Call{b: b}, nil
	case HalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return &Call{b: b, probe: true}, nil
		}
	}
	retry := b.cfg.OpenFor
	if b.state == Open {
		if rem := b.openedAt.Add(b.cfg.OpenFor).Sub(b.now()); rem > 0 {
			retry = rem
		}
	}
	countShed(b.reg, ReasonCircuitOpen)
	return nil, &Shed{
		Reason:     ReasonCircuitOpen,
		RetryAfter: retry,
		Detail:     fmt.Sprintf("circuit breaker for %s is %s", b.name, b.state),
	}
}

// Record reports the call's outcome and latency and advances the state
// machine.
func (c *Call) Record(o Outcome, latency time.Duration) {
	if c == nil || c.recorded {
		return
	}
	c.recorded = true
	c.b.record(c, o, latency)
}

func (b *Breaker) record(c *Call, o Outcome, latency time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c.probe {
		b.probes--
	}
	if o == Ignored {
		return
	}
	failed := o == Failure ||
		(b.cfg.LatencyThreshold > 0 && latency > b.cfg.LatencyThreshold)
	switch b.state {
	case Closed:
		if failed {
			b.fails++
			if b.fails >= b.cfg.FailureThreshold {
				b.tripLocked()
			}
		} else {
			b.fails = 0
		}
	case HalfOpen:
		if !c.probe {
			// A call admitted before the trip finishing now; it already
			// contributed to the trip decision, so only probes count here.
			return
		}
		if failed {
			b.tripLocked()
		} else {
			b.successes++
			if b.successes >= b.cfg.SuccessesToClose {
				b.toLocked(Closed)
				b.fails = 0
			}
		}
	case Open:
		// Stale completions from before the trip; nothing to do.
	}
}

// maybeHalfOpenLocked advances Open to HalfOpen once the cooldown elapses.
func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == Open && !b.now().Before(b.openedAt.Add(b.cfg.OpenFor)) {
		b.toLocked(HalfOpen)
		b.probes = 0
		b.successes = 0
	}
}

func (b *Breaker) tripLocked() {
	b.toLocked(Open)
	b.openedAt = b.now()
	b.fails = 0
	b.successes = 0
	if b.trips != nil {
		b.trips.Inc()
	}
}

func (b *Breaker) toLocked(s BreakerState) {
	b.state = s
	if b.stateG != nil {
		b.stateG.Set(int64(s))
	}
}
