// Package resilience is the overload-protection and fault-tolerance layer
// of the HTTP service. It supplies four cooperating pieces, all wired
// through internal/server and cmd/serve:
//
//   - Limiter: a server-wide concurrency limiter with a bounded,
//     deadline-aware FIFO wait queue. Work that would overflow the queue or
//     wait past its deadline is shed immediately with a typed *Shed error
//     carrying a Retry-After hint, so the HTTP layer can answer
//     503 + Retry-After instead of stacking goroutines.
//   - Breaker: a circuit breaker for the expensive endpoints. Sustained
//     failures (or over-latency responses) trip it open; after a cooldown
//     it half-opens and lets a bounded number of probe requests through
//     before closing again.
//   - RateLimiter: per-client token buckets keyed on a caller identity, so
//     one noisy tenant cannot starve the shared wait queue.
//   - Jobs: an async job subsystem running long replays on a bounded worker
//     pool, checkpointing via the core.Fast snapshot machinery so a
//     cancelled or crashed job resumes from its last checkpoint instead of
//     restarting from scratch.
//
// Every component optionally reports into an internal/obs Registry; all
// shed decisions share the resilience_shed_total{reason="..."} counter
// family so dashboards see one overload signal regardless of which stage
// rejected the work.
package resilience

import (
	"fmt"
	"time"

	"convexcache/internal/obs"
)

// Shed reasons, machine-readable; they appear in the HTTP error envelope's
// "reason" field and in the resilience_shed_total counter labels.
const (
	// ReasonQueueFull: the limiter's wait queue was at capacity.
	ReasonQueueFull = "queue_full"
	// ReasonQueueTimeout: the request waited MaxWait without getting a slot.
	ReasonQueueTimeout = "queue_timeout"
	// ReasonDeadline: the request's deadline left no time to wait (or
	// expired while queued).
	ReasonDeadline = "deadline"
	// ReasonCircuitOpen: the endpoint's circuit breaker is open.
	ReasonCircuitOpen = "circuit_open"
	// ReasonRateLimited: the per-client token bucket is empty.
	ReasonRateLimited = "rate_limited"
	// ReasonJobStoreFull: the job store has no evictable slot left.
	ReasonJobStoreFull = "job_store_full"
)

// Shed is the typed rejection returned by every admission stage. It tells
// the transport layer why the work was refused and how long the caller
// should back off.
type Shed struct {
	// Reason is one of the Reason* constants.
	Reason string
	// RetryAfter is the suggested client back-off; always > 0.
	RetryAfter time.Duration
	// Detail is the human-readable message.
	Detail string
}

func (s *Shed) Error() string {
	return fmt.Sprintf("resilience: shed (%s): %s", s.Reason, s.Detail)
}

// shedCounter returns the shed counter for reason, or nil when reg is nil.
func shedCounter(reg *obs.Registry, reason string) *obs.Counter {
	if reg == nil {
		return nil
	}
	return reg.Counter(fmt.Sprintf("resilience_shed_total{reason=%q}", reason))
}

func countShed(reg *obs.Registry, reason string) {
	if c := shedCounter(reg, reason); c != nil {
		c.Inc()
	}
}
