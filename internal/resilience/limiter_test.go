package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"convexcache/internal/obs"
)

func TestLimiterAdmitsUpToCap(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 3, MaxQueue: 1, MaxWait: time.Second}, nil)
	var rels []func()
	for i := 0; i < 3; i++ {
		rel, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	if got := l.Inflight(); got != 3 {
		t.Fatalf("inflight = %d, want 3", got)
	}
	for _, rel := range rels {
		rel()
	}
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestLimiterShedsOnFullQueue(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 1, MaxWait: 5 * time.Second}, reg)
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// Occupy the single queue slot.
	queued := make(chan struct{})
	go func() {
		close(queued)
		rel2, err := l.Acquire(context.Background())
		if err == nil {
			rel2()
		}
	}()
	<-queued
	waitFor(t, func() bool { return l.QueueDepth() == 1 })

	_, err = l.Acquire(context.Background())
	var shed *Shed
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want *Shed", err)
	}
	if shed.Reason != ReasonQueueFull {
		t.Errorf("reason = %q, want %q", shed.Reason, ReasonQueueFull)
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", shed.RetryAfter)
	}
	if got := reg.Counter(`resilience_shed_total{reason="queue_full"}`).Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

func TestLimiterDeadlineAware(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 4, MaxWait: time.Minute}, nil)
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// Already-expired deadline: shed immediately, no queue slot consumed.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = l.Acquire(ctx)
	var shed *Shed
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("expired deadline: err = %v, want deadline shed", err)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Fatalf("queue depth = %d after immediate shed, want 0", got)
	}

	// Short deadline while the slot stays held: shed when it fires.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err = l.Acquire(ctx2)
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("short deadline: err = %v, want deadline shed", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("shed took %v, want ~20ms", el)
	}
	waitFor(t, func() bool { return l.QueueDepth() == 0 })
}

func TestLimiterQueueTimeout(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 4, MaxWait: 20 * time.Millisecond}, nil)
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, err = l.Acquire(context.Background())
	var shed *Shed
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueTimeout {
		t.Fatalf("err = %v, want queue_timeout shed", err)
	}
}

func TestLimiterFIFOOrder(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 8, MaxWait: 5 * time.Second}, nil)
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const n = 5
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, err := l.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			rel()
		}(i)
		// Serialize enqueue order so FIFO has a defined expectation.
		waitFor(t, func() bool { return l.QueueDepth() == i+1 })
	}
	rel() // hand the slot down the queue
	wg.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("admission order = %v, want FIFO", order)
		}
	}
}

func TestLimiterConcurrentStress(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 4, MaxQueue: 64, MaxWait: 5 * time.Second}, obs.NewRegistry())
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := l.Acquire(context.Background())
			if err != nil {
				return // shed is a legal outcome under stress
			}
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			rel()
		}()
	}
	wg.Wait()
	if peak.Load() > 4 {
		t.Fatalf("observed %d concurrent holders, cap is 4", peak.Load())
	}
	if l.Inflight() != 0 || l.QueueDepth() != 0 {
		t.Fatalf("leaked capacity: inflight=%d queue=%d", l.Inflight(), l.QueueDepth())
	}
}

// waitFor polls cond for up to ~2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
