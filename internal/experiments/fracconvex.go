package experiments

import (
	"convexcache/internal/core"
	"convexcache/internal/fractional"
	"convexcache/internal/runspec"
	"convexcache/internal/stats"
)

// FractionalConvex (E19) measures how well the *fractional* cache with
// dynamic marginal weights (the natural fractional extension of the paper's
// algorithm; a heuristic, not an optimal relaxation — no bound is claimed)
// predicts the integral algorithm's convex cost across workload families.
// Empirically the two land within a few percent of each other, making the
// fractional simulation a cheap, accurate cost predictor — though not a
// certified bound (for bounds use the CP dual of internal/cp).
func FractionalConvex(quick bool) (*stats.Table, error) {
	tr, costs, k, err := slaScenario(quick)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("E19: fractional (marginal-weight) relaxation vs integral ALG",
		"workload", "fractional cost", "integral ALG cost", "integral/fractional")
	runPair := func(label string) error {
		alg, err := runspec.Run(tr, core.NewFast(core.Options{Costs: costs, UseDiscreteDeriv: true, CountMisses: true}), k)
		if err != nil {
			return err
		}
		fc, err := fractional.New(fractional.Options{K: k, Costs: costs})
		if err != nil {
			return err
		}
		for _, r := range tr.Requests() {
			fc.Serve(r)
		}
		fcost, err := fc.ConvexCost()
		if err != nil {
			return err
		}
		icost := alg.Cost(costs)
		tb.AddRow(label, fcost, icost, icost/fcost)
		return nil
	}
	if err := runPair("sla-4tenant"); err != nil {
		return nil, err
	}
	// A second family: shifting load.
	length := 20000
	if quick {
		length = 8000
	}
	tr2, costs2, err := shiftingLoadTrace(length)
	if err != nil {
		return nil, err
	}
	tr, costs, k = tr2, costs2, 60
	if err := runPair("shifting-quad"); err != nil {
		return nil, err
	}
	return tb, nil
}
