package experiments

import (
	"fmt"

	"convexcache/internal/analysis"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/multipool"
	"convexcache/internal/policy"
	"convexcache/internal/runspec"
	"convexcache/internal/stats"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// shiftingLoadTrace builds a 4-tenant workload whose hot pair flips halfway
// through, so any fixed tenant-to-server assignment becomes unbalanced.
func shiftingLoadTrace(length int) (*trace.Trace, []costfn.Func, error) {
	mk := func(seed int64) (workload.Stream, error) { return workload.NewZipf(seed, 60, 0.9) }
	streamsAt := func(base int64, hotFirst bool) ([]workload.TenantStream, error) {
		rates := []float64{4, 4, 1, 1}
		if !hotFirst {
			rates = []float64{1, 1, 4, 4}
		}
		out := make([]workload.TenantStream, 4)
		for i := range out {
			z, err := mk(base + int64(i))
			if err != nil {
				return nil, err
			}
			out[i] = workload.TenantStream{Tenant: trace.Tenant(i), Stream: z, Rate: rates[i]}
		}
		return out, nil
	}
	half := length / 2
	s1, err := streamsAt(40, true)
	if err != nil {
		return nil, nil, err
	}
	first, err := workload.Mix(41, s1, half)
	if err != nil {
		return nil, nil, err
	}
	s2, err := streamsAt(50, false)
	if err != nil {
		return nil, nil, err
	}
	second, err := workload.Mix(51, s2, length-half)
	if err != nil {
		return nil, nil, err
	}
	tr, err := first.Concat(second)
	if err != nil {
		return nil, nil, err
	}
	costs := make([]costfn.Func, 4)
	for i := range costs {
		costs[i] = costfn.Monomial{C: 1, Beta: 2}
	}
	return tr, costs, nil
}

// MultiPool (E12) explores the paper's Section-5 future-work setting:
// tenants assigned to separate memory pools (servers), with migrations
// charged a switching cost. Compared: one shared pool (the paper's model),
// isolated pools under a static assignment that the phase shift turns
// adversarial, and the same pools with greedy epoch rebalancing.
func MultiPool(quick bool) (*stats.Table, error) {
	length := 30000
	if quick {
		length = 10000
	}
	tr, costs, err := shiftingLoadTrace(length)
	if err != nil {
		return nil, err
	}
	poolSize := 30
	tb := stats.NewTable("E12: multiple memory pools under shifting load (Section 5 extension)",
		"configuration", "cache cost", "switch cost", "total", "migrations")
	single, err := multipool.New(multipool.Config{
		PoolSizes: []int{2 * poolSize}, Costs: costs, Assign: []int{0, 0, 0, 0},
	})
	if err != nil {
		return nil, err
	}
	sres, err := single.Run(tr)
	if err != nil {
		return nil, err
	}
	tb.AddRow("single shared pool (2x size)", sres.CacheCost, sres.SwitchTotal, sres.TotalCost(), sres.Migrations)

	static, err := multipool.New(multipool.Config{
		PoolSizes: []int{poolSize, poolSize}, Costs: costs, Assign: []int{0, 0, 1, 1},
	})
	if err != nil {
		return nil, err
	}
	stres, err := static.Run(tr)
	if err != nil {
		return nil, err
	}
	tb.AddRow("2 pools, static assignment", stres.CacheCost, stres.SwitchTotal, stres.TotalCost(), stres.Migrations)

	dyn, err := multipool.New(multipool.Config{
		PoolSizes: []int{poolSize, poolSize}, Costs: costs, Assign: []int{0, 0, 1, 1},
		SwitchCost: 50, EpochLen: length / 40, Rebalancer: &multipool.GreedyRebalancer{},
	})
	if err != nil {
		return nil, err
	}
	dres, err := dyn.Run(tr)
	if err != nil {
		return nil, err
	}
	tb.AddRow("2 pools, greedy rebalancing", dres.CacheCost, dres.SwitchTotal, dres.TotalCost(), dres.Migrations)
	return tb, nil
}

// StaticVsDynamic (E13) quantifies the introduction's argument against
// static allocation with the strongest possible static baseline: per-tenant
// quotas chosen optimally (offline!) by dynamic programming over the exact
// per-tenant LRU miss-ratio curves.
//
// The honest finding has two regimes. On a *stationary* workload the
// offline-tuned static split is genuinely competitive — it may even beat
// the online algorithm, which pays for learning the mix. Under *shifting*
// load any fixed split is mis-sized half the time and the online algorithm
// wins clearly. Both regimes are reported; the shape claim of the paper's
// motivation (static allocation is wasteful, reproduced here as "loses
// under shift and needs offline knowledge to win even when stationary")
// is asserted on the shifting rows.
func StaticVsDynamic(quick bool) (*stats.Table, error) {
	tb := stats.NewTable("E13: offline DP-optimal static quotas vs online sharing",
		"workload", "policy", "quotas", "total cost", "vs ALG")
	type scenario struct {
		name  string
		tr    *trace.Trace
		costs []costfn.Func
		k     int
	}
	var scenarios []scenario
	trStat, costsStat, kStat, err := slaScenario(quick)
	if err != nil {
		return nil, err
	}
	scenarios = append(scenarios, scenario{"stationary", trStat, costsStat, kStat})
	length := 30000
	if quick {
		length = 10000
	}
	trShift, costsShift, err := shiftingLoadTrace(length)
	if err != nil {
		return nil, err
	}
	scenarios = append(scenarios, scenario{"shifting", trShift, costsShift, 60})
	for _, sc := range scenarios {
		curves, err := analysis.PerTenant(sc.tr, sc.k)
		if err != nil {
			return nil, err
		}
		quotas, _, err := analysis.OptimalStaticPartition(curves, sc.costs, sc.k)
		if err != nil {
			return nil, err
		}
		alg, err := runspec.Run(sc.tr, core.NewFast(core.Options{Costs: sc.costs, UseDiscreteDeriv: true, CountMisses: true}), sc.k)
		if err != nil {
			return nil, err
		}
		algCost := alg.Cost(sc.costs)
		tb.AddRow(sc.name, "alg-discrete (dynamic)", "-", algCost, 1.0)
		even, err := runspec.Run(sc.tr, policy.NewStaticPartition(policy.EvenQuotas(sc.k, len(sc.costs))), sc.k)
		if err != nil {
			return nil, err
		}
		tb.AddRow(sc.name, "static even quotas", fmtInts(policy.EvenQuotas(sc.k, len(sc.costs))),
			even.Cost(sc.costs), even.Cost(sc.costs)/algCost)
		opt, err := runspec.Run(sc.tr, policy.NewStaticPartition(quotas), sc.k)
		if err != nil {
			return nil, err
		}
		tb.AddRow(sc.name, "static DP-optimal quotas", fmtInts(quotas),
			opt.Cost(sc.costs), opt.Cost(sc.costs)/algCost)
	}
	return tb, nil
}

func fmtInts(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprintf("%d", x)
	}
	return s
}
