package experiments

import "testing"

func TestE19FractionalTracksIntegral(t *testing.T) {
	tb, err := FractionalConvex(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	ri := column(t, tb, "integral/fractional")
	for _, row := range tb.Rows() {
		r := parseF(t, row[ri])
		// The fractional heuristic must track the integral cost closely
		// (it is a predictor, not a bound): within a factor of 2 either
		// way.
		if r < 0.5 || r > 2 {
			t.Errorf("%s: fractional predictor off by %gx", row[0], r)
		}
	}
}
