package experiments

import (
	"strconv"
	"strings"
	"testing"

	"convexcache/internal/stats"
)

// column returns the index of a header name.
func column(t *testing.T, tb *stats.Table, name string) int {
	t.Helper()
	for i, h := range tb.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("table %q has no column %q (header %v)", tb.Title, name, tb.Header)
	return -1
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

// requireAllYes asserts that every row has "yes" in the named column — the
// reproduction's bound checks.
func requireAllYes(t *testing.T, tb *stats.Table, col string) {
	t.Helper()
	ci := column(t, tb, col)
	for ri, row := range tb.Rows() {
		if row[ci] != "yes" {
			t.Errorf("%s row %d: %s = %q (row: %v)", tb.Title, ri, col, row[ci], row)
		}
	}
	if tb.NumRows() == 0 {
		t.Fatalf("%s produced no rows", tb.Title)
	}
}

func TestE1Theorem11BoundHolds(t *testing.T) {
	tb, err := Theorem11(true)
	if err != nil {
		t.Fatal(err)
	}
	requireAllYes(t, tb, "holds")
}

func TestE2Corollary12BoundHolds(t *testing.T) {
	tb, err := Corollary12(true)
	if err != nil {
		t.Fatal(err)
	}
	requireAllYes(t, tb, "holds")
	// The measured ratio must be far below the worst-case bound on random
	// instances (sanity that the comparison is non-vacuous).
	ri := column(t, tb, "ratio")
	bi := column(t, tb, "bound")
	for _, row := range tb.Rows() {
		if parseF(t, row[ri]) > parseF(t, row[bi]) {
			t.Errorf("ratio exceeds bound in row %v", row)
		}
	}
}

func TestE3BiCriteriaBoundHolds(t *testing.T) {
	tb, err := BiCriteria(true)
	if err != nil {
		t.Fatal(err)
	}
	requireAllYes(t, tb, "holds")
	// The factor must shrink as h decreases (k/(k-h+1) is increasing in
	// h): verify the monotone shape within each (costs, seed) block.
	fi := column(t, tb, "factor")
	hi := column(t, tb, "h")
	prevH, prevF := 0, 0.0
	for _, row := range tb.Rows() {
		h := int(parseF(t, row[hi]))
		f := parseF(t, row[fi])
		if h > prevH && prevH != 0 && f <= prevF {
			t.Errorf("factor not increasing in h: h=%d f=%g after h=%d f=%g", h, f, prevH, prevF)
		}
		prevH, prevF = h, f
	}
}

func TestE4LowerBoundRatioExceedsPrediction(t *testing.T) {
	tb, err := LowerBound(true)
	if err != nil {
		t.Fatal(err)
	}
	requireAllYes(t, tb, "ratio >= bound")
}

func TestE5RatioGrowsWithKOnAdversary(t *testing.T) {
	tb, err := RatioVsK(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() < 3 {
		t.Fatalf("too few rows: %d", tb.NumRows())
	}
	ci := column(t, tb, "adversary ALG")
	zi := column(t, tb, "zipf ALG vs belady-cost")
	rows := tb.Rows()
	first := parseF(t, rows[0][ci])
	last := parseF(t, rows[len(rows)-1][ci])
	if last <= first {
		t.Errorf("adversary ratio did not grow with k: first %g, last %g", first, last)
	}
	// On stochastic workloads the algorithm stays within a small constant
	// of the offline heuristic — nothing like the adversarial k^beta
	// (which is 144 already at k=6 for beta=2).
	zFirst := parseF(t, rows[0][zi])
	zLast := parseF(t, rows[len(rows)-1][zi])
	for _, row := range rows {
		if z := parseF(t, row[zi]); z > 10 {
			t.Errorf("zipf ratio %g unexpectedly large", z)
		}
	}
	// Shape: the adversarial ratio grows much faster with k than the
	// stochastic one.
	if advGrowth, zipfGrowth := last/first, zLast/zFirst; advGrowth <= zipfGrowth {
		t.Errorf("adversarial growth %g not above stochastic growth %g", advGrowth, zipfGrowth)
	}
}

func TestE6CostAwareWinsOnSLA(t *testing.T) {
	tb, err := SLAComparison(true)
	if err != nil {
		t.Fatal(err)
	}
	pi := column(t, tb, "policy")
	ci := column(t, tb, "total cost")
	costs := map[string]float64{}
	for _, row := range tb.Rows() {
		costs[row[pi]] = parseF(t, row[ci])
	}
	alg := costs["alg-discrete"]
	if alg <= 0 {
		t.Fatalf("vacuous ALG cost %g", alg)
	}
	for _, name := range []string{"lru", "lfu", "lru2", "arc", "clock", "2q", "tinylfu", "static-partition"} {
		if costs[name] < alg {
			t.Errorf("%s cost %g beat the cost-aware algorithm %g", name, costs[name], alg)
		}
	}
}

func TestE7DualSandwich(t *testing.T) {
	tb, err := DualBound(true)
	if err != nil {
		t.Fatal(err)
	}
	requireAllYes(t, tb, "sandwich")
	// The bound should be informative on most instances.
	ri := column(t, tb, "dual/OPT")
	informative := 0
	for _, row := range tb.Rows() {
		if parseF(t, row[ri]) >= 0.25 {
			informative++
		}
	}
	if informative == 0 {
		t.Error("dual bound uninformative on every instance")
	}
}

func TestE8PhasesProducesSeries(t *testing.T) {
	tb, err := Phases(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() < 10 {
		t.Fatalf("too few windows: %d", tb.NumRows())
	}
	ai := column(t, tb, "ALG t0 misses")
	li := column(t, tb, "LRU t0 misses")
	var algTotal, lruTotal float64
	for _, row := range tb.Rows() {
		algTotal += parseF(t, row[ai])
		lruTotal += parseF(t, row[li])
	}
	// Under flood pressure the convex-cost algorithm must protect the
	// premium tenant better than LRU overall.
	if algTotal >= lruTotal {
		t.Errorf("ALG premium misses %g not below LRU %g", algTotal, lruTotal)
	}
}

func TestE9AblationFullIsBest(t *testing.T) {
	tb, err := Ablation(true)
	if err != nil {
		t.Fatal(err)
	}
	vi := column(t, tb, "variant")
	ri := column(t, tb, "vs full")
	wi := column(t, tb, "workload")
	worse := map[string]bool{}
	for _, row := range tb.Rows() {
		if row[vi] == "full" {
			if parseF(t, row[ri]) != 1 {
				t.Errorf("full variant ratio %s != 1", row[ri])
			}
			continue
		}
		if parseF(t, row[ri]) > 1.005 {
			worse[row[vi]] = true
		}
		_ = wi
	}
	// Each removed component must hurt on at least one workload family.
	for _, v := range []string{"no-aging", "no-refresh"} {
		if !worse[v] {
			t.Errorf("ablation %s never degraded cost; component looks redundant", v)
		}
	}
}

func TestE11BufferPoolConvexBeatsLRU(t *testing.T) {
	tb, err := BufferPool(true)
	if err != nil {
		t.Fatal(err)
	}
	ci := column(t, tb, "total refund")
	ni := column(t, tb, "replacer")
	refunds := map[string]float64{}
	for _, row := range tb.Rows() {
		refunds[row[ni]] = parseF(t, row[ci])
	}
	if refunds["convex"] >= refunds["lru"] {
		t.Errorf("convex refund %g not below lru %g", refunds["convex"], refunds["lru"])
	}
}

func TestAllRegistryRuns(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"E1", "E4", "E7", "E11"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestTablesRenderMarkdown(t *testing.T) {
	tb, err := Theorem11(true)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tb.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Theorem 1.1") {
		t.Error("markdown missing title")
	}
}
