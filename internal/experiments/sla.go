package experiments

import (
	"fmt"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/runspec"
	"convexcache/internal/sim"
	"convexcache/internal/stats"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// slaScenario builds the multi-tenant DaaS workload of the motivation
// section: four tenants with piecewise-linear SLA refund curves and skewed,
// rate-imbalanced Zipf access patterns sharing one cache.
func slaScenario(quick bool) (*trace.Trace, []costfn.Func, int, error) {
	length := 60000
	if quick {
		length = 12000
	}
	mk := func(m0, cheap, steep float64) costfn.Func {
		f, err := costfn.SLARefund(m0, cheap, steep)
		if err != nil {
			panic(err)
		}
		return f
	}
	// Tenant 0: premium, tight tolerance, steep penalty.
	// Tenant 1: standard. Tenant 2: loose. Tenant 3: best-effort linear.
	costs := []costfn.Func{
		mk(200, 0.05, 20),
		mk(800, 0.05, 5),
		mk(2500, 0.02, 1),
		costfn.Linear{W: 0.02},
	}
	streams := make([]workload.TenantStream, 4)
	skews := []float64{0.8, 0.9, 0.7, 0.5}
	rates := []float64{1, 2, 3, 4}
	for i := range streams {
		z, err := workload.NewZipf(int64(1000+i), 400, skews[i])
		if err != nil {
			return nil, nil, 0, err
		}
		streams[i] = workload.TenantStream{Tenant: trace.Tenant(i), Stream: z, Rate: rates[i]}
	}
	tr, err := workload.Mix(77, streams, length)
	if err != nil {
		return nil, nil, 0, err
	}
	k := 220
	return tr, costs, k, nil
}

// SLAComparison (E6, "Figure 2") compares total SLA refund across policies
// on the multi-tenant scenario: the cost-aware algorithm versus the
// cost-oblivious baselines the paper's introduction criticizes, plus the
// offline cost-aware Belady heuristic as a reference point.
func SLAComparison(quick bool) (*stats.Table, error) {
	tr, costs, k, err := slaScenario(quick)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable(fmt.Sprintf("E6: total SLA refund, 4 tenants, k=%d, T=%d", k, tr.Len()),
		"policy", "total cost", "t0 misses", "t1 misses", "t2 misses", "t3 misses", "vs ALG")
	weights := make([]float64, len(costs))
	for i, f := range costs {
		weights[i] = f.Deriv(0) // cheap-regime slope as the static weight
	}
	type entry struct {
		name string
		mk   func() sim.Policy
	}
	entries := []entry{
		{"alg-discrete", func() sim.Policy {
			return core.NewFast(core.Options{Costs: costs, UseDiscreteDeriv: true, CountMisses: true})
		}},
		{"lru", func() sim.Policy { return policy.NewLRU() }},
		{"lfu", func() sim.Policy { return policy.NewLFU() }},
		{"lru2", func() sim.Policy { return policy.NewLRUK(2) }},
		{"arc", func() sim.Policy { return policy.NewARC() }},
		{"clock", func() sim.Policy { return policy.NewClock() }},
		{"2q", func() sim.Policy { return policy.NewTwoQ(0, 0) }},
		{"tinylfu", func() sim.Policy { return policy.NewTinyLFU(4096, 16*int64(k)) }},
		{"harmonic", func() sim.Policy { return policy.NewHarmonic(7, costs) }},
		{"greedy-dual", func() sim.Policy { return policy.NewGreedyDual(weights) }},
		{"static-partition", func() sim.Policy { return policy.NewStaticPartition(policy.EvenQuotas(k, len(costs))) }},
		{"belady-cost (offline)", func() sim.Policy { return policy.NewCostAwareBelady(costs) }},
	}
	var algCost float64
	results := make([]sim.Result, len(entries))
	for i, e := range entries {
		res, err := runspec.Run(tr, e.mk(), k)
		if err != nil {
			return nil, err
		}
		results[i] = res
		if i == 0 {
			algCost = res.Cost(costs)
		}
	}
	for i, e := range entries {
		res := results[i]
		c := res.Cost(costs)
		tb.AddRow(e.name, c,
			res.Misses[0], res.Misses[1], res.Misses[2], res.Misses[3],
			c/algCost)
	}
	return tb, nil
}

// Phases (E8, "Figure 4") tracks per-window miss counts of the premium
// tenant as its working set shifts phase: the convex-cost algorithm must
// re-protect the tenant after each shift faster than cost-oblivious LRU
// under flood pressure from a cheap tenant.
func Phases(quick bool) (*stats.Table, error) {
	length := 40000
	window := 2000
	if quick {
		length = 10000
		window = 500
	}
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2}, // premium, convex pressure
		costfn.Linear{W: 0.01},         // cheap flood
	}
	hot, err := workload.NewHotSet(5, 300, 30, 0.95, int64(length/8))
	if err != nil {
		return nil, err
	}
	flood, err := workload.NewUniform(6, 4000)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Mix(9, []workload.TenantStream{
		{Tenant: 0, Stream: hot, Rate: 1},
		{Tenant: 1, Stream: flood, Rate: 2},
	}, length)
	if err != nil {
		return nil, err
	}
	k := 100
	tb := stats.NewTable(fmt.Sprintf("E8: premium-tenant misses per window of %d (phase shifts every %d)", window, length/8),
		"window", "ALG t0 misses", "LRU t0 misses")
	collect := func(p sim.Policy) (*sim.WindowSeries, error) {
		ws := sim.NewWindowSeries(window, 2)
		_, err := runspec.Run(tr, p, k, runspec.WithObserver(ws.Observe))
		return ws, err
	}
	algWS, err := collect(core.NewFast(core.Options{Costs: costs}))
	if err != nil {
		return nil, err
	}
	lruWS, err := collect(policy.NewLRU())
	if err != nil {
		return nil, err
	}
	for w := 0; w < algWS.Windows() && w < lruWS.Windows(); w++ {
		tb.AddRow(w, algWS.MissesPerWindow[w][0], lruWS.MissesPerWindow[w][0])
	}
	return tb, nil
}

// Ablation (E9) removes each component of the Figure 3 budget update in turn
// and measures the cost impact across workload families, justifying the
// design choices called out in DESIGN.md.
func Ablation(quick bool) (*stats.Table, error) {
	length := 30000
	if quick {
		length = 8000
	}
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Linear{W: 0.5},
		costfn.Monomial{C: 0.5, Beta: 2},
	}
	workloads := map[string]func() (*trace.Trace, error){
		"zipf-mix": func() (*trace.Trace, error) {
			var streams []workload.TenantStream
			for i := 0; i < 3; i++ {
				z, err := workload.NewZipf(int64(20+i), 150, 0.9)
				if err != nil {
					return nil, err
				}
				streams = append(streams, workload.TenantStream{Tenant: trace.Tenant(i), Stream: z, Rate: 1})
			}
			return workload.Mix(21, streams, length)
		},
		"scan-vs-zipf": func() (*trace.Trace, error) {
			sc, err := workload.NewScan(400)
			if err != nil {
				return nil, err
			}
			z, err := workload.NewZipf(31, 100, 1.0)
			if err != nil {
				return nil, err
			}
			u, err := workload.NewUniform(32, 200)
			if err != nil {
				return nil, err
			}
			return workload.Mix(33, []workload.TenantStream{
				{Tenant: 0, Stream: z, Rate: 2},
				{Tenant: 1, Stream: sc, Rate: 2},
				{Tenant: 2, Stream: u, Rate: 1},
			}, length)
		},
	}
	variants := []struct {
		name string
		opt  func() core.Options
	}{
		{"full", func() core.Options { return core.Options{Costs: costs} }},
		{"no-aging", func() core.Options { return core.Options{Costs: costs, DisableAging: true} }},
		{"no-correction", func() core.Options { return core.Options{Costs: costs, DisableOwnerCorrection: true} }},
		{"no-refresh", func() core.Options { return core.Options{Costs: costs, DisableHitRefresh: true} }},
	}
	tb := stats.NewTable("E9: budget-rule ablations (cost relative to full algorithm)",
		"workload", "variant", "total cost", "vs full")
	for wname, build := range workloads {
		tr, err := build()
		if err != nil {
			return nil, err
		}
		var fullCost float64
		for i, v := range variants {
			res, err := runspec.Run(tr, core.NewDiscrete(v.opt()), 120)
			if err != nil {
				return nil, err
			}
			c := res.Cost(costs)
			if i == 0 {
				fullCost = c
			}
			tb.AddRow(wname, v.name, c, c/fullCost)
		}
	}
	return tb, nil
}
