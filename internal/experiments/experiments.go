// Package experiments implements the reproduction's experiment suite. The
// paper is a theory extended abstract with no empirical tables or figures,
// so each experiment here is the empirical counterpart of one formal claim
// (see DESIGN.md section 3 for the full index):
//
//	E1  Theorem 1.1 upper bound          E2  Corollary 1.2 monomial bound
//	E3  Theorem 1.3 bi-criteria bound    E4  Theorem 1.4 lower bound
//	E5  ratio growth vs k                E6  SLA cost comparison
//	E7  CP dual lower bound              E8  phase-shift adaptation
//	E9  budget-rule ablations            E11 buffer-pool deployment
//
// (E10, raw throughput, lives in bench_test.go only.)
//
// Every experiment returns a stats.Table so cmd/experiments, the test suite
// and EXPERIMENTS.md all consume identical artifacts.
package experiments

import (
	"fmt"
	"math/rand"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/runspec"
	"convexcache/internal/sim"
	"convexcache/internal/stats"
	"convexcache/internal/trace"
)

// Experiment names one harness entry.
type Experiment struct {
	// ID is the experiment identifier (E1..E11).
	ID string
	// Claim is the paper claim reproduced.
	Claim string
	// Run produces the result table; quick shrinks workloads for CI.
	Run func(quick bool) (*stats.Table, error)
}

// All lists every experiment in id order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Claim: "Theorem 1.1 upper bound", Run: Theorem11},
		{ID: "E2", Claim: "Corollary 1.2 monomial bound", Run: Corollary12},
		{ID: "E3", Claim: "Theorem 1.3 bi-criteria bound", Run: BiCriteria},
		{ID: "E4", Claim: "Theorem 1.4 lower bound", Run: LowerBound},
		{ID: "E5", Claim: "competitive ratio vs k", Run: RatioVsK},
		{ID: "E6", Claim: "SLA cost comparison (motivation)", Run: SLAComparison},
		{ID: "E7", Claim: "CP dual lower bound", Run: DualBound},
		{ID: "E8", Claim: "phase-shift adaptation", Run: Phases},
		{ID: "E9", Claim: "budget-rule ablations", Run: Ablation},
		{ID: "E11", Claim: "buffer-pool deployment", Run: BufferPool},
		{ID: "E12", Claim: "multiple memory pools (Section 5 extension)", Run: MultiPool},
		{ID: "E13", Claim: "optimal static partition vs online sharing", Run: StaticVsDynamic},
		{ID: "E14", Claim: "fractional vs deterministic separation", Run: Fractional},
		{ID: "E14b", Claim: "exact LP certificate (dual <= LP <= OPT)", Run: LPCertificate},
		{ID: "E15", Claim: "seed-robustness of the cost advantage", Run: Robustness},
		{ID: "E16", Claim: "curvature (alpha) sensitivity of the bound", Run: AlphaSensitivity},
		{ID: "E17", Claim: "two-level hierarchy washout curve", Run: Hierarchy},
		{ID: "E18", Claim: "value of lookahead", Run: Lookahead},
		{ID: "E19", Claim: "fractional relaxation vs integral cost", Run: FractionalConvex},
	}
}

// randomSmallTrace builds a small multi-tenant trace suitable for exact OPT
// computation (page universe <= 64).
func randomSmallTrace(seed int64, tenants, pagesPer, length int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder()
	for i := 0; i < length; i++ {
		tn := rng.Intn(tenants)
		b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(pagesPer)))
	}
	return b.MustBuild()
}

// runALG executes the paper's algorithm (Fast implementation) and returns
// the result.
func runALG(tr *trace.Trace, k int, costs []costfn.Func) (sim.Result, error) {
	return runspec.Run(tr, core.NewFast(core.Options{Costs: costs}), k)
}

// boundCost evaluates sum_i f_i(factor * b_i), the right-hand side of
// Theorems 1.1 and 1.3.
func boundCost(costs []costfn.Func, factor float64, b []int64) float64 {
	total := 0.0
	for i, f := range costs {
		if i >= len(b) {
			break
		}
		total += f.Value(factor * float64(b[i]))
	}
	return total
}

// alphaOf returns the curvature constant over a generous range.
func alphaOf(costs []costfn.Func, xmax float64) float64 {
	a := 1.0
	for _, f := range costs {
		if v := costfn.EffectiveAlpha(f, xmax); v > a {
			a = v
		}
	}
	return a
}

// mixedCostSets are the convex cost families exercised by the bound
// experiments.
func mixedCostSets() map[string][]costfn.Func {
	sla, err := costfn.SLARefund(4, 0.25, 4)
	if err != nil {
		panic(err)
	}
	return map[string][]costfn.Func{
		"linear-mixed": {costfn.Linear{W: 1}, costfn.Linear{W: 4}},
		"quadratic":    {costfn.Monomial{C: 1, Beta: 2}, costfn.Monomial{C: 1, Beta: 2}},
		"quad+linear":  {costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 2}},
		"sla+linear":   {sla, costfn.Linear{W: 1}},
	}
}

// checkMark renders a boolean as a table cell.
func checkMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// fmtSlice renders an int64 slice compactly.
func fmtSlice(xs []int64) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprintf("%d", x)
	}
	return s
}
