package experiments

import (
	"math"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/runspec"
	"convexcache/internal/sim"
	"convexcache/internal/stats"
	"convexcache/internal/workload"
)

// adversaryRatio runs the Theorem 1.4 adversary against one online policy
// and returns (online cost, offline batched cost, ratio) under f(x)=x^beta.
func adversaryRatio(n, steps int, beta float64, mk func() sim.Policy) (online, offline, ratio float64, err error) {
	adv, err := workload.NewAdversary(n)
	if err != nil {
		return 0, 0, 0, err
	}
	res, tr, err := runspec.Interactive(adv, steps, mk(), adv.CacheSize())
	if err != nil {
		return 0, 0, 0, err
	}
	ev, err := workload.BatchedOfflineCost(tr, n)
	if err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < n; i++ {
		online += math.Pow(float64(res.Misses[i]), beta)
		offline += math.Pow(float64(ev[i]), beta)
	}
	if offline == 0 {
		offline = 1 // the batched strategy had no evictions; floor at 1
	}
	return online, offline, online / offline, nil
}

// LowerBound (E4, "Table 4") reproduces Theorem 1.4: on the adversarial
// instance with n single-page tenants, cache k = n-1 and costs x^beta, any
// deterministic online algorithm pays at least ~(n/4)^beta times the cost of
// the offline batched strategy. Both the paper's algorithm and LRU are
// subjected to the adversary.
func LowerBound(quick bool) (*stats.Table, error) {
	tb := stats.NewTable("E4: Theorem 1.4 lower bound (adversary, ratio vs (n/4)^beta)",
		"n", "k", "beta", "policy", "online cost", "offline cost", "ratio", "(n/4)^beta", "ratio >= bound")
	steps := 4000
	if quick {
		steps = 1200
	}
	ns := []int{3, 5, 7, 9}
	if quick {
		ns = []int{3, 5, 7}
	}
	for _, n := range ns {
		for _, beta := range []float64{1, 2, 3} {
			costs := make([]costfn.Func, n)
			for i := range costs {
				costs[i] = costfn.Monomial{C: 1, Beta: beta}
			}
			mks := map[string]func() sim.Policy{
				"alg-discrete": func() sim.Policy { return core.NewFast(core.Options{Costs: costs}) },
				"lru":          func() sim.Policy { return policy.NewLRU() },
			}
			for name, mk := range mks {
				online, offline, ratio, err := adversaryRatio(n, steps, beta, mk)
				if err != nil {
					return nil, err
				}
				pred := math.Pow(float64(n)/4, beta)
				tb.AddRow(n, n-1, beta, name, online, offline, ratio, pred,
					checkMark(ratio >= pred))
			}
		}
	}
	return tb, nil
}

// RatioVsK (E5, "Figure 1") traces how the measured competitive ratio grows
// with the cache size k on the adversarial family (polynomial growth of
// degree beta, per Theorem 1.4 and Corollary 1.2) versus how benign it is on
// a stochastic Zipf workload (where the comparator is the cost-aware Belady
// heuristic).
func RatioVsK(quick bool) (*stats.Table, error) {
	tb := stats.NewTable("E5: competitive ratio vs k (beta=2)",
		"k", "adversary ALG", "adversary LRU", "zipf ALG vs belady-cost")
	steps := 4000
	zipfLen := 20000
	if quick {
		steps = 1200
		zipfLen = 5000
	}
	beta := 2.0
	ns := []int{3, 5, 7, 9, 11}
	if quick {
		ns = []int{3, 5, 7}
	}
	for _, n := range ns {
		k := n - 1
		costs := make([]costfn.Func, n)
		for i := range costs {
			costs[i] = costfn.Monomial{C: 1, Beta: beta}
		}
		_, _, advALG, err := adversaryRatio(n, steps, beta, func() sim.Policy {
			return core.NewFast(core.Options{Costs: costs})
		})
		if err != nil {
			return nil, err
		}
		_, _, advLRU, err := adversaryRatio(n, steps, beta, func() sim.Policy {
			return policy.NewLRU()
		})
		if err != nil {
			return nil, err
		}
		// Stochastic comparison: two Zipf tenants, cache k scaled up so the
		// instance is non-trivial.
		zipfCosts := []costfn.Func{
			costfn.Monomial{C: 1, Beta: beta},
			costfn.Monomial{C: 1, Beta: beta},
		}
		z0, err := workload.NewZipf(int64(n), 60, 0.9)
		if err != nil {
			return nil, err
		}
		z1, err := workload.NewZipf(int64(n)+50, 60, 0.9)
		if err != nil {
			return nil, err
		}
		tr, err := workload.Mix(int64(n), []workload.TenantStream{
			{Tenant: 0, Stream: z0, Rate: 1},
			{Tenant: 1, Stream: z1, Rate: 1},
		}, zipfLen)
		if err != nil {
			return nil, err
		}
		kz := 8 * k
		alg, err := runALG(tr, kz, zipfCosts)
		if err != nil {
			return nil, err
		}
		ref, err := runspec.Run(tr, policy.NewCostAwareBelady(zipfCosts), kz)
		if err != nil {
			return nil, err
		}
		zr := alg.Cost(zipfCosts) / ref.Cost(zipfCosts)
		tb.AddRow(k, advALG, advLRU, zr)
	}
	return tb, nil
}
