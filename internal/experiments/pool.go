package experiments

import (
	"fmt"
	"math/rand"

	"convexcache/internal/bufferpool"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/stats"
	"convexcache/internal/trace"
)

// BufferPool (E11) exercises the deployment substrate end to end: the same
// tenant mix drives a concurrent multi-tenant buffer pool once with the
// convex-cost replacer and once with LRU; the SLA meter reports windowed
// refunds. A single driving goroutine keeps the table deterministic; the
// concurrency path is covered by the bufferpool tests.
func BufferPool(quick bool) (*stats.Table, error) {
	ops := 60000
	if quick {
		ops = 15000
	}
	mkCosts := func() ([]costfn.Func, error) {
		prem, err := costfn.SLARefund(60, 0.05, 10)
		if err != nil {
			return nil, err
		}
		std, err := costfn.SLARefund(250, 0.05, 2)
		if err != nil {
			return nil, err
		}
		return []costfn.Func{prem, std, costfn.Linear{W: 0.01}}, nil
	}
	costs, err := mkCosts()
	if err != nil {
		return nil, err
	}
	frames := 96
	window := 1000
	tb := stats.NewTable(fmt.Sprintf("E11: buffer pool SLA refunds, 3 tenants, %d frames, window %d", frames, window),
		"replacer", "total refund", "t0 refund", "t1 refund", "t2 refund", "disk reads")

	run := func(name string, mk func() bufferpool.Replacer) error {
		meter, err := bufferpool.NewSLAMeter(window, costs)
		if err != nil {
			return err
		}
		disk := &bufferpool.Disk{}
		pool, err := bufferpool.New(disk, len(costs), bufferpool.Config{
			Frames: frames, Replacer: mk(), Meter: meter,
		})
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(4242))
		buf := make([]byte, bufferpool.PageSize)
		// Tenant 0: small hot set (premium); tenant 1: medium; tenant 2:
		// large uniform scan pressure.
		universe := []int64{50, 150, 1200}
		rates := []int{2, 3, 5}
		for i := 0; i < ops; i++ {
			r := rng.Intn(rates[0] + rates[1] + rates[2])
			tn := 0
			switch {
			case r < rates[0]:
				tn = 0
			case r < rates[0]+rates[1]:
				tn = 1
			default:
				tn = 2
			}
			pg := trace.PageID(int64(tn)*1_000_000 + rng.Int63n(universe[tn]))
			if err := pool.Get(trace.Tenant(tn), pg, buf); err != nil {
				return err
			}
			if err := pool.Release(pg); err != nil {
				return err
			}
		}
		meter.Flush()
		refunds := meter.Refunds()
		tb.AddRow(name, meter.TotalRefund(), refunds[0], refunds[1], refunds[2], disk.Reads())
		return nil
	}
	opt := core.Options{Costs: costs, UseDiscreteDeriv: true, CountMisses: true}
	if err := run("convex", func() bufferpool.Replacer { return bufferpool.NewConvexReplacer(opt) }); err != nil {
		return nil, err
	}
	if err := run("lru", func() bufferpool.Replacer { return bufferpool.NewLRUReplacer() }); err != nil {
		return nil, err
	}
	return tb, nil
}
