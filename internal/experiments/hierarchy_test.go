package experiments

import "testing"

func TestE17HierarchyWashout(t *testing.T) {
	tb, err := Hierarchy(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	ri := column(t, tb, "LRU/convex")
	rows := tb.Rows()
	first := parseF(t, rows[0][ri])
	last := parseF(t, rows[len(rows)-1][ri])
	// With no private L1 the shared layer's cost-awareness matters most.
	if first <= 1 {
		t.Errorf("convex L2 not ahead at L1=0: ratio %g", first)
	}
	// The advantage washes out (shrinks) as private caches grow.
	if last >= first {
		t.Errorf("advantage did not shrink with larger L1: %g -> %g", first, last)
	}
}

func TestE18LookaheadValueCurve(t *testing.T) {
	tb, err := Lookahead(true)
	if err != nil {
		t.Fatal(err)
	}
	ci := column(t, tb, "cost")
	fi := column(t, tb, "vs full info")
	rows := tb.Rows()
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	first := parseF(t, rows[0][ci])
	last := parseF(t, rows[len(rows)-1][ci])
	// Full information must beat no information decisively.
	if last >= first {
		t.Errorf("full-information cost %g not below zero-lookahead %g", last, first)
	}
	// The final row is the full-information run: ratio 1 by construction.
	if got := parseF(t, rows[len(rows)-1][fi]); got != 1 {
		t.Errorf("full row ratio = %g", got)
	}
	// The curve is roughly decreasing: every window should be within 5%
	// of the best seen so far (heuristic noise tolerance).
	best := first
	for _, row := range rows {
		c := parseF(t, row[ci])
		if c < best {
			best = c
		}
		if c > best*1.6 && row[0] != "0" {
			t.Errorf("window %s cost %g regressed far above best %g", row[0], c, best)
		}
	}
}
