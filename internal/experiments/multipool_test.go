package experiments

import "testing"

func TestE12MultiPoolShapes(t *testing.T) {
	tb, err := MultiPool(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	ci := column(t, tb, "total")
	ni := column(t, tb, "configuration")
	totals := map[string]float64{}
	for _, row := range tb.Rows() {
		totals[row[ni]] = parseF(t, row[ci])
	}
	single := totals["single shared pool (2x size)"]
	static := totals["2 pools, static assignment"]
	dynamic := totals["2 pools, greedy rebalancing"]
	if single <= 0 || static <= 0 || dynamic <= 0 {
		t.Fatalf("vacuous totals: %v", totals)
	}
	// Statistical multiplexing: the shared pool wins overall.
	if single > static {
		t.Errorf("single pool %g worse than static partitioned %g", single, static)
	}
	// Rebalancing must recover part of the static gap.
	if dynamic >= static {
		t.Errorf("rebalancing %g did not improve on static %g", dynamic, static)
	}
	mi := column(t, tb, "migrations")
	migrated := false
	for _, row := range tb.Rows() {
		if row[ni] == "2 pools, greedy rebalancing" && parseF(t, row[mi]) > 0 {
			migrated = true
		}
	}
	if !migrated {
		t.Error("greedy rebalancer never migrated")
	}
}

func TestE13OnlineSharingBeatsStaticUnderShift(t *testing.T) {
	tb, err := StaticVsDynamic(true)
	if err != nil {
		t.Fatal(err)
	}
	wi := column(t, tb, "workload")
	ni := column(t, tb, "policy")
	ci := column(t, tb, "total cost")
	costs := map[string]map[string]float64{}
	for _, row := range tb.Rows() {
		if costs[row[wi]] == nil {
			costs[row[wi]] = map[string]float64{}
		}
		costs[row[wi]][row[ni]] = parseF(t, row[ci])
	}
	for _, w := range []string{"stationary", "shifting"} {
		if len(costs[w]) != 3 {
			t.Fatalf("workload %q rows missing: %v", w, costs[w])
		}
		// DP quotas must not be meaningfully worse than even quotas in
		// either regime (they optimize the isolated-curve model).
		if dp, even := costs[w]["static DP-optimal quotas"], costs[w]["static even quotas"]; dp > even*1.05 {
			t.Errorf("%s: DP quotas %g worse than even quotas %g", w, dp, even)
		}
	}
	// Under shifting load the online algorithm must beat even the
	// offline-optimal static split.
	shift := costs["shifting"]
	if shift["alg-discrete (dynamic)"] >= shift["static DP-optimal quotas"] {
		t.Errorf("shifting: dynamic ALG %g not below optimal static %g",
			shift["alg-discrete (dynamic)"], shift["static DP-optimal quotas"])
	}
}
