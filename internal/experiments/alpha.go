package experiments

import (
	"convexcache/internal/costfn"
	"convexcache/internal/offline"
	"convexcache/internal/stats"
)

// AlphaSensitivity (E16) probes the alpha-dependence of the alpha^alpha *
// k^alpha guarantee directly: holding k fixed, the SLA steepness ratio of a
// two-piece piecewise-linear cost is swept so that the curvature constant
// alpha takes values {1, 2, 4, 8, 16}; on exactly-solved instances the
// measured ratio must stay under the Theorem 1.1 bound evaluated at that
// alpha, and the bound column itself shows the alpha^alpha-type blow-up the
// theory predicts.
func AlphaSensitivity(quick bool) (*stats.Table, error) {
	tb := stats.NewTable("E16: curvature sweep (piecewise-linear SLA, k fixed)",
		"steepness", "alpha", "seed", "ALG cost", "OPT cost", "measured ratio", "bound f(ak b)/f(b)", "holds")
	k := 3
	seeds := int64(3)
	length := 30
	if quick {
		seeds = 2
		length = 22
	}
	// Two-piece SLA with breakpoint at 4 and slope ratio r: alpha = 4r/(4+ ...)
	// computed analytically by PiecewiseLinear.Alpha (sup at the kink).
	for _, steep := range []float64{1, 2, 4, 8, 16} {
		sla, err := costfn.NewPiecewiseLinear([]float64{0, 4}, []float64{1, steep})
		if err != nil {
			return nil, err
		}
		costs := []costfn.Func{sla, sla}
		alpha := alphaOf(costs, float64(length))
		for seed := int64(0); seed < seeds; seed++ {
			tr := randomSmallTrace(900+seed, 2, 5, length)
			alg, err := runALG(tr, k, costs)
			if err != nil {
				return nil, err
			}
			opt, err := offline.Exact(tr, k, costs, offline.Limits{})
			if err != nil {
				return nil, err
			}
			algCost := alg.Cost(costs)
			bound := boundCost(costs, alpha*float64(k), opt.Misses)
			measured := algCost / opt.Cost
			boundRatio := bound / opt.Cost
			tb.AddRow(steep, alpha, seed, algCost, opt.Cost, measured, boundRatio,
				checkMark(algCost <= bound+1e-9))
		}
	}
	return tb, nil
}
