package experiments

import (
	"fmt"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/runspec"
	"convexcache/internal/stats"
	"convexcache/internal/sweep"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// Robustness (E15) replicates the headline cost comparison across seeds:
// for each workload family, the LRU/ALG total-cost ratio is measured on
// many independently generated traces and summarized as mean / std / range.
// A single-seed win could be luck; a mean solidly above 1 with a bounded
// spread is the claim a downstream adopter cares about.
func Robustness(quick bool) (*stats.Table, error) {
	length := 30000
	seedCount := 12
	if quick {
		length = 8000
		seedCount = 6
	}
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Linear{W: 0.25},
		costfn.Monomial{C: 0.5, Beta: 2},
	}
	k := 120

	// ratioOn builds a trace for the seed and returns cost(LRU)/cost(ALG).
	ratioOn := func(build func(seed int64) (*trace.Trace, error)) func(int64) (float64, error) {
		return func(seed int64) (float64, error) {
			tr, err := build(seed)
			if err != nil {
				return 0, err
			}
			alg, err := runspec.Run(tr, core.NewFast(core.Options{Costs: costs}), k)
			if err != nil {
				return 0, err
			}
			lru, err := runspec.Run(tr, policy.NewLRU(), k)
			if err != nil {
				return 0, err
			}
			a := alg.Cost(costs)
			if a == 0 {
				return 0, fmt.Errorf("vacuous run at seed %d", seed)
			}
			return lru.Cost(costs) / a, nil
		}
	}

	zipfMix := func(seed int64) (*trace.Trace, error) {
		var streams []workload.TenantStream
		for i := 0; i < 3; i++ {
			z, err := workload.NewZipf(seed*10+int64(i), 150, 0.9)
			if err != nil {
				return nil, err
			}
			streams = append(streams, workload.TenantStream{Tenant: trace.Tenant(i), Stream: z, Rate: 1})
		}
		return workload.Mix(seed, streams, length)
	}
	hotFlood := func(seed int64) (*trace.Trace, error) {
		hot, err := workload.NewHotSet(seed*10, 200, 25, 0.95, int64(length/6))
		if err != nil {
			return nil, err
		}
		flood, err := workload.NewUniform(seed*10+1, 3000)
		if err != nil {
			return nil, err
		}
		z, err := workload.NewZipf(seed*10+2, 100, 1.0)
		if err != nil {
			return nil, err
		}
		return workload.Mix(seed, []workload.TenantStream{
			{Tenant: 0, Stream: hot, Rate: 1},
			{Tenant: 1, Stream: flood, Rate: 2},
			{Tenant: 2, Stream: z, Rate: 1},
		}, length)
	}
	scanMix := func(seed int64) (*trace.Trace, error) {
		sc, err := workload.NewScan(500)
		if err != nil {
			return nil, err
		}
		z, err := workload.NewZipf(seed*10, 120, 1.0)
		if err != nil {
			return nil, err
		}
		m, err := workload.NewMarkov(seed*10+1, 400, 0.7, 5)
		if err != nil {
			return nil, err
		}
		return workload.Mix(seed, []workload.TenantStream{
			{Tenant: 0, Stream: z, Rate: 2},
			{Tenant: 1, Stream: sc, Rate: 2},
			{Tenant: 2, Stream: m, Rate: 1},
		}, length)
	}

	dbMix := func(seed int64) (*trace.Trace, error) {
		// Three DaaS tenants with different skew and scan appetites (the
		// SQLVM-style workload of internal/workload's DB generator).
		d0, err := workload.NewDB(seed*10, 600, 0.95, 0.02, 12)
		if err != nil {
			return nil, err
		}
		d1, err := workload.NewDB(seed*10+1, 900, 0.7, 0.15, 32)
		if err != nil {
			return nil, err
		}
		d2, err := workload.NewDB(seed*10+2, 1200, 0.5, 0.30, 64)
		if err != nil {
			return nil, err
		}
		return workload.Mix(seed, []workload.TenantStream{
			{Tenant: 0, Stream: d0, Rate: 2},
			{Tenant: 1, Stream: d1, Rate: 2},
			{Tenant: 2, Stream: d2, Rate: 1},
		}, length)
	}

	cells := []sweep.Cell{
		{Label: "zipf-mix", Metric: ratioOn(zipfMix)},
		{Label: "hotset+flood", Metric: ratioOn(hotFlood)},
		{Label: "scan-mix", Metric: ratioOn(scanMix)},
		{Label: "db-mix", Metric: ratioOn(dbMix)},
	}
	seeds := make([]int64, seedCount)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	results, err := sweep.Run(cells, seeds, 0)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
	}
	return sweep.Table(
		fmt.Sprintf("E15: LRU/ALG cost ratio across %d seeds (k=%d, T=%d)", seedCount, k, length),
		results), nil
}
