package experiments

import "testing"

func TestE14FractionalSeparation(t *testing.T) {
	tb, err := Fractional(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() < 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	ri := column(t, tb, "det/frac")
	rows := tb.Rows()
	first := parseF(t, rows[0][ri])
	last := parseF(t, rows[len(rows)-1][ri])
	// The separation must widen with k (Theta(k) vs O(log k)).
	if last <= first {
		t.Errorf("det/frac ratio did not grow with k: %g -> %g", first, last)
	}
	// Each ratio is > 1: fractional strictly beats deterministic on the
	// adversary.
	for _, row := range rows {
		if parseF(t, row[ri]) <= 1 {
			t.Errorf("fractional did not beat deterministic: row %v", row)
		}
	}
}

func TestE14bLPCertificateChain(t *testing.T) {
	tb, err := LPCertificate(true)
	if err != nil {
		t.Fatal(err)
	}
	requireAllYes(t, tb, "chain holds")
	// The dual should approach the LP value (same optimum, strong duality).
	di := column(t, tb, "dual")
	li := column(t, tb, "LP exact")
	for _, row := range tb.Rows() {
		d, l := parseF(t, row[di]), parseF(t, row[li])
		if l > 0 && d < 0.5*l {
			t.Errorf("dual %g far from LP optimum %g", d, l)
		}
	}
}
