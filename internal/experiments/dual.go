package experiments

import (
	"fmt"

	"convexcache/internal/cp"
	"convexcache/internal/offline"
	"convexcache/internal/stats"
)

// DualBound (E7, "Figure 3") validates the primal-dual machinery of Section
// 2: the Lagrangian dual of the convex programming relaxation produces
// certified lower bounds, so on every instance
//
//	dual bound <= exact OPT <= ALG cost.
//
// The table reports the sandwich on exactly-solved instances.
func DualBound(quick bool) (*stats.Table, error) {
	tb := stats.NewTable("E7: CP dual lower bound sandwich (dual <= OPT <= ALG)",
		"costs", "seed", "k", "dual LB", "exact OPT", "ALG cost", "dual/OPT", "sandwich")
	seeds := int64(4)
	length := 26
	iters := 400
	if quick {
		seeds = 2
		length = 18
		iters = 200
	}
	for name, costs := range mixedCostSets() {
		for seed := int64(0); seed < seeds; seed++ {
			tr := randomSmallTrace(300+seed, 2, 4, length)
			k := 2
			opt, err := offline.Exact(tr, k, costs, offline.Limits{})
			if err != nil {
				return nil, err
			}
			if !opt.Optimal {
				return nil, fmt.Errorf("experiments: E7 seed %d not solved exactly", seed)
			}
			in, err := cp.Build(tr, k, costs)
			if err != nil {
				return nil, err
			}
			step0 := opt.Cost / float64(in.NumRows()+1)
			dual := in.SolveDual(iters, step0)
			alg, err := runALG(tr, k, costs)
			if err != nil {
				return nil, err
			}
			algCost := alg.Cost(costs)
			ok := dual.Best <= opt.Cost+1e-6 && opt.Cost <= algCost+1e-9
			ratio := 0.0
			if opt.Cost > 0 {
				ratio = dual.Best / opt.Cost
			}
			tb.AddRow(name, seed, k, dual.Best, opt.Cost, algCost, ratio, checkMark(ok))
		}
	}
	return tb, nil
}
