package experiments

import (
	"fmt"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/hierarchy"
	"convexcache/internal/policy"
	"convexcache/internal/runspec"
	"convexcache/internal/sim"
	"convexcache/internal/stats"
	"convexcache/internal/workload"
)

// Hierarchy (E17) runs the two-level deployment substrate: each tenant gets
// a private L1 of the swept size in front of one shared L2. The shared
// layer's cost-awareness matters most when L1s are small (every decision is
// shared); as private caches absorb the reuse, the convex-vs-LRU gap in the
// shared level narrows. The table traces that washout curve.
func Hierarchy(quick bool) (*stats.Table, error) {
	length := 40000
	if quick {
		length = 12000
	}
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Linear{W: 0.05},
		costfn.Monomial{C: 0.5, Beta: 2},
	}
	d0, err := workload.NewDB(61, 500, 0.9, 0.05, 16)
	if err != nil {
		return nil, err
	}
	flood, err := workload.NewUniform(62, 5000)
	if err != nil {
		return nil, err
	}
	d2, err := workload.NewDB(63, 800, 0.7, 0.1, 24)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Mix(64, []workload.TenantStream{
		{Tenant: 0, Stream: d0, Rate: 2},
		{Tenant: 1, Stream: flood, Rate: 3},
		{Tenant: 2, Stream: d2, Rate: 2},
	}, length)
	if err != nil {
		return nil, err
	}
	l2 := 150
	tb := stats.NewTable(fmt.Sprintf("E17: two-level hierarchy, shared L2=%d, private L1 sweep", l2),
		"L1 per tenant", "convex L2 cost", "LRU L2 cost", "LRU/convex")
	runWith := func(l1 int, p sim.Policy) (hierarchy.Result, error) {
		sys, err := hierarchy.New(3, hierarchy.Config{
			L1Sizes: []int{l1, l1, l1}, L2Size: l2, L2Policy: p,
		})
		if err != nil {
			return hierarchy.Result{}, err
		}
		return sys.Run(tr)
	}
	for _, l1 := range []int{0, 4, 16, 64} {
		convex, err := runWith(l1, core.NewFast(core.Options{Costs: costs, CountMisses: true}))
		if err != nil {
			return nil, err
		}
		lru, err := runWith(l1, policy.NewLRU())
		if err != nil {
			return nil, err
		}
		cc, lc := convex.Cost(costs), lru.Cost(costs)
		tb.AddRow(l1, cc, lc, lc/cc)
	}
	return tb, nil
}

// Lookahead (E18) prices future information: the cost-aware window policy
// is swept from no lookahead to full offline knowledge, locating where most
// of the offline advantage is already captured.
func Lookahead(quick bool) (*stats.Table, error) {
	length := 30000
	if quick {
		length = 8000
	}
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Linear{W: 0.25},
	}
	z, err := workload.NewZipf(71, 200, 0.9)
	if err != nil {
		return nil, err
	}
	u, err := workload.NewUniform(72, 800)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Mix(73, []workload.TenantStream{
		{Tenant: 0, Stream: z, Rate: 1},
		{Tenant: 1, Stream: u, Rate: 2},
	}, length)
	if err != nil {
		return nil, err
	}
	k := 100
	tb := stats.NewTable("E18: value of lookahead (cost vs window, online ALG as reference)",
		"window L", "cost", "vs online ALG", "vs full info")
	alg, err := runspec.Run(tr, core.NewFast(core.Options{Costs: costs}), k)
	if err != nil {
		return nil, err
	}
	algCost := alg.Cost(costs)
	costAt := func(l int) (float64, error) {
		res, err := runspec.Run(tr, policy.NewLookahead(l, costs), k)
		if err != nil {
			return 0, err
		}
		return res.Cost(costs), nil
	}
	full, err := costAt(tr.Len() + 1)
	if err != nil {
		return nil, err
	}
	windows := []int{0, 10, 100, 1000, 10000, tr.Len() + 1}
	for _, l := range windows {
		c, err := costAt(l)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", l)
		if l > tr.Len() {
			label = "full"
		}
		tb.AddRow(label, c, c/algCost, c/full)
	}
	return tb, nil
}
