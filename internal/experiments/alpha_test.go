package experiments

import "testing"

func TestE16AlphaSensitivity(t *testing.T) {
	tb, err := AlphaSensitivity(true)
	if err != nil {
		t.Fatal(err)
	}
	requireAllYes(t, tb, "holds")
	ai := column(t, tb, "alpha")
	bi := column(t, tb, "bound f(ak b)/f(b)")
	// Alpha must sweep upward with the steepness and the bound must blow
	// up accordingly.
	var firstAlpha, lastAlpha, firstBound, lastBound float64
	rows := tb.Rows()
	firstAlpha, lastAlpha = parseF(t, rows[0][ai]), parseF(t, rows[len(rows)-1][ai])
	firstBound, lastBound = parseF(t, rows[0][bi]), parseF(t, rows[len(rows)-1][bi])
	if lastAlpha <= firstAlpha {
		t.Errorf("alpha did not grow: %g -> %g", firstAlpha, lastAlpha)
	}
	if lastBound <= firstBound {
		t.Errorf("bound did not grow with alpha: %g -> %g", firstBound, lastBound)
	}
	// The measured ratio should stay far below the bound at high alpha
	// (random instances are benign; the bound is worst-case).
	mi := column(t, tb, "measured ratio")
	for _, row := range rows {
		m, b := parseF(t, row[mi]), parseF(t, row[bi])
		if m > b {
			t.Errorf("measured %g above bound %g", m, b)
		}
	}
}
