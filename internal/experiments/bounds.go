package experiments

import (
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/offline"
	"convexcache/internal/stats"
)

// Theorem11 (E1, "Table 1") verifies the paper's headline guarantee on
// exactly-solved instances: for every request sequence,
//
//	sum_i f_i(a_i) <= sum_i f_i(alpha * k * b_i)
//
// with a_i the algorithm's per-tenant misses and b_i the exact optimum's.
// Miss counts (fetches) are used on both sides; they dominate the paper's
// eviction counts, making the check conservative for the algorithm.
func Theorem11(quick bool) (*stats.Table, error) {
	tb := stats.NewTable("E1: Theorem 1.1 upper bound (exact OPT instances)",
		"costs", "seed", "k", "alpha", "ALG misses", "OPT misses", "ALG cost", "bound", "holds")
	seeds := int64(6)
	length := 40
	if quick {
		seeds = 3
		length = 24
	}
	for name, costs := range mixedCostSets() {
		for seed := int64(0); seed < seeds; seed++ {
			tr := randomSmallTrace(seed, 2, 5, length)
			for _, k := range []int{2, 4} {
				alg, err := runALG(tr, k, costs)
				if err != nil {
					return nil, err
				}
				opt, err := offline.Exact(tr, k, costs, offline.Limits{})
				if err != nil {
					return nil, err
				}
				if !opt.Optimal {
					return nil, fmt.Errorf("experiments: E1 seed %d not solved exactly", seed)
				}
				alpha := alphaOf(costs, float64(tr.Len()))
				algCost := alg.Cost(costs)
				bound := boundCost(costs, alpha*float64(k), opt.Misses)
				tb.AddRow(name, seed, k, alpha,
					fmtSlice(alg.Misses), fmtSlice(opt.Misses),
					algCost, bound, checkMark(algCost <= bound+1e-9))
			}
		}
	}
	return tb, nil
}

// Corollary12 (E2, "Table 2") specializes to monomial costs f(x) = x^beta:
// the measured total-cost ratio ALG/OPT must stay below beta^beta * k^beta.
func Corollary12(quick bool) (*stats.Table, error) {
	tb := stats.NewTable("E2: Corollary 1.2 (f(x)=x^beta, ratio vs beta^beta k^beta)",
		"beta", "k", "seed", "ALG cost", "OPT cost", "ratio", "bound", "holds")
	seeds := int64(4)
	length := 36
	if quick {
		seeds = 2
		length = 22
	}
	for _, beta := range []float64{1, 2, 3} {
		costs := []costfn.Func{
			costfn.Monomial{C: 1, Beta: beta},
			costfn.Monomial{C: 1, Beta: beta},
		}
		for _, k := range []int{2, 3, 4} {
			for seed := int64(0); seed < seeds; seed++ {
				tr := randomSmallTrace(100+seed, 2, 5, length)
				alg, err := runALG(tr, k, costs)
				if err != nil {
					return nil, err
				}
				opt, err := offline.Exact(tr, k, costs, offline.Limits{})
				if err != nil {
					return nil, err
				}
				algCost := alg.Cost(costs)
				ratio := algCost / opt.Cost
				bound := pow(beta, beta) * pow(float64(k), beta)
				tb.AddRow(beta, k, seed, algCost, opt.Cost, ratio, bound,
					checkMark(ratio <= bound+1e-9))
			}
		}
	}
	return tb, nil
}

// BiCriteria (E3, "Table 3") verifies Theorem 1.3: against an offline
// optimum restricted to a cache of h <= k pages, the bound tightens to
// sum_i f_i(alpha * k/(k-h+1) * b_i). The algorithm is the same; only the
// comparator changes.
func BiCriteria(quick bool) (*stats.Table, error) {
	tb := stats.NewTable("E3: Theorem 1.3 bi-criteria bound (k fixed, h sweep)",
		"costs", "seed", "k", "h", "factor", "ALG cost", "OPT-h cost", "bound", "holds")
	k := 5
	seeds := int64(3)
	length := 36
	if quick {
		seeds = 2
		length = 24
	}
	sets := map[string][]costfn.Func{
		"quadratic":   mixedCostSets()["quadratic"],
		"quad+linear": mixedCostSets()["quad+linear"],
	}
	for name, costs := range sets {
		for seed := int64(0); seed < seeds; seed++ {
			tr := randomSmallTrace(200+seed, 2, 5, length)
			alg, err := runALG(tr, k, costs)
			if err != nil {
				return nil, err
			}
			algCost := alg.Cost(costs)
			alpha := alphaOf(costs, float64(tr.Len()))
			for h := 1; h <= k; h++ {
				opt, err := offline.Exact(tr, h, costs, offline.Limits{})
				if err != nil {
					return nil, err
				}
				factor := alpha * float64(k) / float64(k-h+1)
				bound := boundCost(costs, factor, opt.Misses)
				tb.AddRow(name, seed, k, h, factor, algCost, opt.Cost, bound,
					checkMark(algCost <= bound+1e-9))
			}
		}
	}
	return tb, nil
}

func pow(base, exp float64) float64 {
	out := 1.0
	for i := 0; i < int(exp); i++ {
		out *= base
	}
	return out
}
