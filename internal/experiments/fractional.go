package experiments

import (
	"math"

	"convexcache/internal/costfn"
	"convexcache/internal/cp"
	"convexcache/internal/fractional"
	"convexcache/internal/offline"
	"convexcache/internal/policy"
	"convexcache/internal/runspec"
	"convexcache/internal/stats"
	"convexcache/internal/workload"
)

// Fractional (E14) reproduces the separation the paper's related-work
// section points at: deterministic algorithms are Theta(k)-competitive
// while the fractional/randomized primal-dual of [3] achieves O(log k).
// On the Theorem 1.4 adversary (unit weights) the deterministic cost is
// exactly T; the fractional algorithm's cost divided into it must grow
// roughly like k/ln k. On small instances the exact weighted-caching LP
// (simplex) certifies the fractional optimum the online fractional
// algorithm is chasing.
func Fractional(quick bool) (*stats.Table, error) {
	tb := stats.NewTable("E14: fractional caching vs deterministic (unit weights, adversary)",
		"n", "k", "det cost", "fractional cost", "det/frac", "k/ln(k)+1")
	steps := 4000
	if quick {
		steps = 1500
	}
	ns := []int{4, 6, 9, 13, 17}
	if quick {
		ns = []int{4, 6, 9}
	}
	for _, n := range ns {
		det, frac, err := adversaryFractionalGap(n, steps)
		if err != nil {
			return nil, err
		}
		k := float64(n - 1)
		tb.AddRow(n, n-1, det, frac, det/frac, k/(math.Log(k)+1))
	}
	return tb, nil
}

// adversaryFractionalGap runs the adversary against LRU (any deterministic
// algorithm misses every request) and replays the materialized trace
// through the fractional cache.
func adversaryFractionalGap(n, steps int) (det, frac float64, err error) {
	adv, err := workload.NewAdversary(n)
	if err != nil {
		return 0, 0, err
	}
	k := n - 1
	_, tr, err := runspec.Interactive(adv, steps, policy.NewLRU(), k)
	if err != nil {
		return 0, 0, err
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	res, err := fractional.Run(tr, fractional.Options{K: k, Weights: weights})
	if err != nil {
		return 0, 0, err
	}
	return float64(steps), res.FetchCost, nil
}

// LPCertificate (part of E7's machinery, reported via E14's companion
// table) solves the weighted-caching LP exactly on small linear instances
// and reports the full chain dual <= LP <= integer OPT.
func LPCertificate(quick bool) (*stats.Table, error) {
	tb := stats.NewTable("E14b: exact weighted-caching LP certificate (dual <= LP <= OPT)",
		"seed", "k", "dual", "LP exact", "integer OPT", "chain holds")
	costs := []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 4}}
	seeds := int64(5)
	length := 20
	if quick {
		seeds = 3
		length = 16
	}
	for seed := int64(0); seed < seeds; seed++ {
		tr := randomSmallTrace(700+seed, 2, 4, length)
		k := 2
		in, err := cp.Build(tr, k, costs)
		if err != nil {
			return nil, err
		}
		_, lpVal, err := in.SolveLinearExact()
		if err != nil {
			return nil, err
		}
		opt, err := offline.Exact(tr, k, costs, offline.Limits{})
		if err != nil {
			return nil, err
		}
		dual := in.SolveDual(400, opt.Cost/float64(in.NumRows()+1))
		ok := dual.Best <= lpVal+1e-6 && lpVal <= opt.Cost+1e-6
		tb.AddRow(seed, k, dual.Best, lpVal, opt.Cost, checkMark(ok))
	}
	return tb, nil
}
