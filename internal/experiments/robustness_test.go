package experiments

import "testing"

func TestE15RobustnessAcrossSeeds(t *testing.T) {
	tb, err := Robustness(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	mi := column(t, tb, "mean")
	ni := column(t, tb, "min")
	for _, row := range tb.Rows() {
		mean := parseF(t, row[mi])
		// The cost advantage must hold on average for every family (ratio
		// LRU/ALG > 1).
		if mean <= 1 {
			t.Errorf("%s: mean ratio %g not above 1", row[0], mean)
		}
		// And must never catastrophically invert on any seed.
		if minv := parseF(t, row[ni]); minv < 0.8 {
			t.Errorf("%s: worst-seed ratio %g below 0.8", row[0], minv)
		}
	}
}
