package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestMiddlewareRequestID(t *testing.T) {
	reg := NewRegistry()
	var seen string
	h := Middleware{Reg: reg, Log: quietLogger()}.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
		if LoggerFrom(r.Context(), nil) == nil {
			t.Error("no logger in context")
		}
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen == "" {
		t.Fatal("handler saw no request id")
	}
	if got := rec.Header().Get("X-Request-ID"); got != seen {
		t.Fatalf("header id %q != context id %q", got, seen)
	}

	// A caller-provided ID is propagated, not replaced.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("X-Request-ID", "caller-42")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "caller-42" {
		t.Fatalf("caller id not propagated: %q", seen)
	}
}

func TestMiddlewarePanicRecovery(t *testing.T) {
	reg := NewRegistry()
	h := Middleware{Reg: reg, Log: quietLogger()}.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("kaboom")
		}
		w.WriteHeader(http.StatusOK)
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic response is not JSON: %v (%q)", err, rec.Body.String())
	}
	if body["error"] == "" || body["request_id"] == "" {
		t.Fatalf("panic body = %v", body)
	}
	if got := reg.Counter("http_panics_total").Value(); got != 1 {
		t.Errorf("http_panics_total = %d", got)
	}

	// The handler chain stays serviceable after the panic.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-panic status = %d", rec.Code)
	}
	if g := reg.Gauge("http_inflight_requests").Value(); g != 0 {
		t.Errorf("inflight gauge leaked: %d", g)
	}
}

func TestMiddlewareMetricsAndLogs(t *testing.T) {
	reg := NewRegistry()
	var logBuf strings.Builder
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := Middleware{
		Reg:   reg,
		Log:   logger,
		Route: func(r *http.Request) string { return "/fixed" },
	}.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/whatever", nil))
	}
	if got := reg.Counter(`http_requests_total{route="/fixed",code="418"}`).Value(); got != 3 {
		t.Errorf("requests counter = %d, want 3", got)
	}
	if got := reg.Histogram(`http_request_duration_seconds{route="/fixed"}`, nil).Count(); got != 3 {
		t.Errorf("duration histogram count = %d, want 3", got)
	}
	logs := logBuf.String()
	for _, want := range []string{"request_id=", "route=/fixed", "status=418", "duration_ms="} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %q:\n%s", want, logs)
		}
	}
}
