package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Counter() on every iteration exercises the registration
			// fast path under contention, not just the atomic add.
			for i := 0; i < 1000; i++ {
				reg.Counter("c").Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 2, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-110.5) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	bounds, cum := h.Snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot shape: %v %v", bounds, cum)
	}
	// le=1: {0.5, 1}; le=5: +{2}; le=10: +{7}; +Inf: +{100}.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || math.Abs(h.Sum()-8000) > 1e-9 {
		t.Fatalf("count = %d, sum = %g", h.Count(), h.Sum())
	}
}

func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`http_requests_total{route="/healthz",code="200"}`).Add(3)
	reg.Gauge("http_inflight_requests").Set(1)
	reg.Histogram(`http_request_duration_seconds{route="/healthz"}`, []float64{0.1, 1}).Observe(0.05)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{route="/healthz",code="200"} 3`,
		"# TYPE http_inflight_requests gauge",
		"http_inflight_requests 1",
		"# TYPE http_request_duration_seconds histogram",
		`http_request_duration_seconds_bucket{route="/healthz",le="0.1"} 1`,
		`http_request_duration_seconds_bucket{route="/healthz",le="+Inf"} 1`,
		`http_request_duration_seconds_sum{route="/healthz"} 0.05`,
		`http_request_duration_seconds_count{route="/healthz"} 1`,
		"# TYPE process_uptime_seconds gauge",
		"process_uptime_seconds ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	// Each TYPE header must appear exactly once per family.
	if strings.Count(out, "# TYPE http_requests_total ") != 1 {
		t.Errorf("duplicate TYPE header:\n%s", out)
	}
}

func TestRequestIDsUnique(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == "" || a == b {
		t.Fatalf("ids not unique: %q %q", a, b)
	}
}
