// Package obs is the observability subsystem of the HTTP service: a small
// dependency-free metrics registry (atomic counters, gauges and bounded
// latency histograms) with Prometheus text exposition, plus the HTTP
// middleware stack (request IDs, structured request logs, panic recovery,
// per-route instrumentation) that internal/server wraps around every route.
//
// The registry is deliberately tiny compared to a real client library: names
// carry their label set preformatted (`http_requests_total{route="/healthz",code="200"}`),
// metric values are lock-free atomics, and the only lock is the map guarding
// first registration. That keeps the per-request hot path to a couple of
// atomic adds, which matters for a service whose north star is heavy traffic.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram upper bounds in seconds,
// spanning sub-millisecond handler hits to multi-minute trace replays.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; the registry
// does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down (in-flight requests,
// cache occupancy, ...).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a bounded-bucket histogram with atomic counters. Bounds are
// upper bucket edges; observations above the last bound land in the implicit
// +Inf bucket. The sum is kept as atomic float bits (CAS loop), so Observe
// is lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns cumulative bucket counts aligned with Bounds plus the
// trailing +Inf bucket; for tests and custom exporters.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []int64) {
	cumulative = make([]int64, len(h.buckets))
	var run int64
	for i := range h.buckets {
		run += h.buckets[i].Load()
		cumulative[i] = run
	}
	return h.bounds, cumulative
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metric names may embed a preformatted label set:
// `http_requests_total{route="/healthz",code="200"}`. All metrics sharing
// the family (the part before '{') get one # TYPE header.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	start    time.Time
}

// NewRegistry returns an empty registry; its uptime clock starts now.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		start:    time.Now(),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Safe for concurrent use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use (nil bounds selects DefBuckets). Bounds are
// fixed at first registration; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// family splits a metric name into its family (text before '{') and the
// label block including braces ("" when unlabeled).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// withLabel appends key="val" to an existing label block (or starts one).
func withLabel(labels, key, val string) string {
	pair := key + `="` + val + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders every registered metric in the Prometheus text format,
// families sorted and each preceded by a # TYPE line. It also emits
// process_uptime_seconds from the registry's start time.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	type sample struct{ name, line string }
	families := make(map[string]string) // family -> type
	var lines []sample
	for name, c := range r.counters {
		fam, _ := family(name)
		families[fam] = "counter"
		lines = append(lines, sample{name, fmt.Sprintf("%s %d\n", name, c.Value())})
	}
	for name, g := range r.gauges {
		fam, _ := family(name)
		families[fam] = "gauge"
		lines = append(lines, sample{name, fmt.Sprintf("%s %d\n", name, g.Value())})
	}
	for name, h := range r.hists {
		fam, labels := family(name)
		families[fam] = "histogram"
		bounds, cum := h.Snapshot()
		var b strings.Builder
		for i, ub := range bounds {
			fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, withLabel(labels, "le", formatFloat(ub)), cum[i])
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, withLabel(labels, "le", "+Inf"), cum[len(cum)-1])
		fmt.Fprintf(&b, "%s_sum%s %s\n", fam, labels, formatFloat(h.Sum()))
		fmt.Fprintf(&b, "%s_count%s %d\n", fam, labels, h.Count())
		lines = append(lines, sample{name, b.String()})
	}
	uptime := time.Since(r.start).Seconds()
	r.mu.RUnlock()

	families["process_uptime_seconds"] = "gauge"
	lines = append(lines, sample{
		"process_uptime_seconds",
		fmt.Sprintf("process_uptime_seconds %s\n", formatFloat(uptime)),
	})

	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	written := make(map[string]bool)
	for _, s := range lines {
		fam, _ := family(s.name)
		if !written[fam] {
			written[fam] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, families[fam]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, s.line); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus-text /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
