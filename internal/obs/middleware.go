package obs

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime/debug"
	"sync/atomic"
	"time"
)

type ctxKey int

const (
	ridKey ctxKey = iota
	loggerKey
)

// ridSeq and ridBase make request IDs unique within a process and unlikely
// to collide across restarts (the base mixes the start time and the PID).
var (
	ridSeq  atomic.Int64
	ridBase = fmt.Sprintf("%x-%x", time.Now().UnixNano()&0xffffff, os.Getpid()&0xffff)
)

// NewRequestID returns a fresh process-unique request ID.
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", ridBase, ridSeq.Add(1))
}

// RequestIDFrom returns the request ID installed by Middleware.Wrap, or ""
// outside an instrumented request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey).(string)
	return id
}

// LoggerFrom returns the per-request logger (already tagged with the
// request ID) installed by Middleware.Wrap, or fallback when absent.
// A nil fallback resolves to slog.Default().
func LoggerFrom(ctx context.Context, fallback *slog.Logger) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
		return l
	}
	if fallback != nil {
		return fallback
	}
	return slog.Default()
}

// respWriter records status and bytes written so the middleware can log and
// label metrics after the handler returns.
type respWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (rw *respWriter) WriteHeader(status int) {
	if rw.wrote {
		return
	}
	rw.wrote = true
	rw.status = status
	rw.ResponseWriter.WriteHeader(status)
}

func (rw *respWriter) Write(p []byte) (int, error) {
	if !rw.wrote {
		rw.WriteHeader(http.StatusOK)
	}
	n, err := rw.ResponseWriter.Write(p)
	rw.bytes += int64(n)
	return n, err
}

func (rw *respWriter) Flush() {
	if f, ok := rw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware is the request-lifecycle stack: request IDs, per-request
// structured logs, per-route counters and latency histograms, in-flight
// gauge, and panic recovery that answers a JSON 500 instead of killing the
// connection.
type Middleware struct {
	// Reg receives the metrics; nil disables instrumentation.
	Reg *Registry
	// Log is the base structured logger; nil selects slog.Default().
	Log *slog.Logger
	// Route maps a request to a bounded-cardinality route label for
	// metrics; nil uses the raw URL path (fine only for static routes).
	Route func(*http.Request) string
}

// Wrap applies the stack to next. Order (outermost first): request ID +
// logger injection, panic recovery, metrics + access log.
func (m Middleware) Wrap(next http.Handler) http.Handler {
	base := m.Log
	if base == nil {
		base = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		reqLog := base.With("request_id", rid)
		ctx := context.WithValue(r.Context(), ridKey, rid)
		ctx = context.WithValue(ctx, loggerKey, reqLog)
		r = r.WithContext(ctx)

		route := r.URL.Path
		if m.Route != nil {
			route = m.Route(r)
		}
		var inflight *Gauge
		if m.Reg != nil {
			inflight = m.Reg.Gauge("http_inflight_requests")
			inflight.Add(1)
		}
		rw := &respWriter{ResponseWriter: w, status: http.StatusOK}

		defer func() {
			panicked := recover()
			if panicked != nil {
				if m.Reg != nil {
					m.Reg.Counter("http_panics_total").Inc()
				}
				reqLog.Error("panic in handler",
					"method", r.Method, "route", route,
					"panic", fmt.Sprint(panicked), "stack", string(debug.Stack()))
				if !rw.wrote {
					rw.Header().Set("Content-Type", "application/json")
					rw.WriteHeader(http.StatusInternalServerError)
					fmt.Fprintf(rw, "{\"error\":\"internal server error\",\"request_id\":%q}\n", rid)
				}
			}
			elapsed := time.Since(start)
			if m.Reg != nil {
				inflight.Add(-1)
				m.Reg.Counter(fmt.Sprintf("http_requests_total{route=%q,code=\"%d\"}", route, rw.status)).Inc()
				m.Reg.Histogram(fmt.Sprintf("http_request_duration_seconds{route=%q}", route), nil).
					Observe(elapsed.Seconds())
			}
			reqLog.Info("request",
				"method", r.Method, "route", route, "path", r.URL.Path,
				"status", rw.status, "bytes", rw.bytes,
				"duration_ms", float64(elapsed.Microseconds())/1000,
				"remote", r.RemoteAddr)
		}()

		next.ServeHTTP(rw, r)
	})
}
