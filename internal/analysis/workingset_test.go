package analysis

import (
	"math"
	"testing"

	"convexcache/internal/workload"
)

func TestWorkingSetValidation(t *testing.T) {
	tr := seqTrace(t, 1, 2)
	if _, err := WorkingSet(tr, nil); err == nil {
		t.Error("no windows accepted")
	}
	if _, err := WorkingSet(tr, []int{0}); err == nil {
		t.Error("zero window accepted")
	}
}

func TestWorkingSetHandExample(t *testing.T) {
	// Sequence 1 2 1 2: window 2 sees {1,2} everywhere -> avg 2; window 1
	// sees a single page -> avg 1.
	tr := seqTrace(t, 1, 2, 1, 2)
	res, err := WorkingSet(tr, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgSize[0] != 1 {
		t.Errorf("tau=1 avg = %g, want 1", res.AvgSize[0])
	}
	if res.AvgSize[1] != 2 {
		t.Errorf("tau=2 avg = %g, want 2", res.AvgSize[1])
	}
}

func TestWorkingSetMonotoneInTau(t *testing.T) {
	z, err := workload.NewZipf(3, 200, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Mix(4, []workload.TenantStream{{Tenant: 0, Stream: z, Rate: 1}}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := WorkingSet(tr, []int{10, 50, 250, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.AvgSize); i++ {
		if res.AvgSize[i] < res.AvgSize[i-1] {
			t.Fatalf("working set shrank with larger window: %v", res.AvgSize)
		}
	}
	// Bounded by window size and by the page universe.
	for i, tau := range res.Taus {
		if res.AvgSize[i] > float64(tau) || res.AvgSize[i] > float64(tr.NumPages()) {
			t.Errorf("tau=%d avg %g exceeds bounds", tau, res.AvgSize[i])
		}
	}
}

func TestWorkingSetSingleHotPage(t *testing.T) {
	pages := make([]int, 500)
	for i := range pages {
		pages[i] = 7
	}
	tr := seqTrace(t, pages...)
	res, err := WorkingSet(tr, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgSize[0]-1) > 1e-9 {
		t.Errorf("single-page working set = %g", res.AvgSize[0])
	}
}

func TestWorkingSetWindowLargerThanTrace(t *testing.T) {
	tr := seqTrace(t, 1, 2, 3)
	res, err := WorkingSet(tr, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgSize[0] != 3 {
		t.Errorf("avg = %g, want 3 (whole trace)", res.AvgSize[0])
	}
}
