package analysis_test

import (
	"fmt"

	"convexcache/internal/analysis"
	"convexcache/internal/trace"
)

// ExampleWorkingSet computes Denning working-set sizes for two windows.
func ExampleWorkingSet() {
	tr := trace.NewBuilder().
		Add(0, 1).Add(0, 2).Add(0, 1).Add(0, 2).Add(0, 3).Add(0, 3).
		MustBuild()
	res, _ := analysis.WorkingSet(tr, []int{2, 4})
	fmt.Printf("tau=2 avg=%.2f\n", res.AvgSize[0])
	fmt.Printf("tau=4 avg=%.2f\n", res.AvgSize[1])
	// Output:
	// tau=2 avg=1.80
	// tau=4 avg=2.67
}
