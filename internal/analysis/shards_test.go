package analysis

import (
	"math"
	"testing"

	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

func TestApproxMattsonValidation(t *testing.T) {
	tr := seqTrace(t, 1, 2)
	if _, err := ApproxMattson(tr, 0, 0.5, 1); err == nil {
		t.Error("maxSize=0 accepted")
	}
	if _, err := ApproxMattson(tr, 4, 0, 1); err == nil {
		t.Error("rate=0 accepted")
	}
	if _, err := ApproxMattson(tr, 4, 1.5, 1); err == nil {
		t.Error("rate>1 accepted")
	}
}

func TestApproxMattsonFullRateMatchesExact(t *testing.T) {
	tr := randomTrace(3, 2, 15, 2000)
	exact, err := Mattson(tr, 20)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ApproxMattson(tr, 20, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if approx.SampledRequests != int64(tr.Len()) {
		t.Fatalf("rate 1.0 sampled %d of %d", approx.SampledRequests, tr.Len())
	}
	for c := 1; c <= 20; c++ {
		want := float64(exact.MissesAt(c)) / float64(exact.Requests)
		got := approx.MissRatioAt(c)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("c=%d: approx %g != exact %g at full rate", c, got, want)
		}
	}
}

// TestApproxMattsonFullRateBitIdentical pins the integer-scaled accumulation:
// at rate 1.0 every request is sampled, the 1/rate rescale is exact, and the
// approximate HitsAt must equal exact Mattson's integer hit counts bit for
// bit — not merely within epsilon. The old float accumulation (summing T
// copies of 1/rate) drifted across platforms and could exceed Requests.
func TestApproxMattsonFullRateBitIdentical(t *testing.T) {
	tr := randomTrace(11, 3, 40, 20000)
	maxSize := 64
	exact, err := Mattson(tr, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ApproxMattson(tr, maxSize, 1.0, 99)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < maxSize; c++ {
		if approx.HitsAt[c] != float64(exact.HitsAt[c]) {
			t.Fatalf("c=%d: approx HitsAt %v not bit-identical to exact %d",
				c+1, approx.HitsAt[c], exact.HitsAt[c])
		}
	}
}

// TestApproxMattsonNeverExceedsRequests pins the final clamp: under heavy
// rescale (tiny rate) the estimated hit count must stay <= the trace length
// at every size, so miss ratios stay in [0, 1] by construction.
func TestApproxMattsonNeverExceedsRequests(t *testing.T) {
	// Tight reuse loop: nearly every sampled request is a hit at small
	// distances, maximizing the rescaled count.
	b := trace.NewBuilder()
	for i := 0; i < 5000; i++ {
		b.Add(0, trace.PageID(i%7))
	}
	tr := b.MustBuild()
	for _, rate := range []float64{0.01, 0.05, 0.33, 0.7} {
		approx, err := ApproxMattson(tr, 32, rate, 5)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 32; c++ {
			if approx.HitsAt[c] > float64(approx.Requests) {
				t.Fatalf("rate=%g c=%d: HitsAt %v exceeds requests %d",
					rate, c+1, approx.HitsAt[c], approx.Requests)
			}
		}
	}
}

func TestSampleFilterMatchesApproxPopulation(t *testing.T) {
	f, err := NewSampleFilter(0.25, 17)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSampleFilter(0, 1); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := NewSampleFilter(1.1, 1); err == nil {
		t.Error("rate > 1 accepted")
	}
	kept := 0
	for p := 0; p < 8000; p++ {
		if f.Keep(trace.PageID(p)) {
			kept++
		}
	}
	if kept < 1600 || kept > 2400 {
		t.Errorf("filter kept %d/8000 at rate 0.25", kept)
	}
	full, err := NewSampleFilter(1.0, 17)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 100; p++ {
		if !full.Keep(trace.PageID(p)) {
			t.Fatalf("rate 1.0 dropped page %d", p)
		}
	}
}

func TestApproxMattsonSampledAccuracySymmetric(t *testing.T) {
	// Spatial sampling concentrates when pages are exchangeable; use a
	// Markov-locality workload over a symmetric universe.
	m, err := workload.NewMarkov(5, 3000, 0.6, 40)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Mix(6, []workload.TenantStream{{Tenant: 0, Stream: m, Rate: 1}}, 60000)
	if err != nil {
		t.Fatal(err)
	}
	maxSize := 400
	exact, err := Mattson(tr, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ApproxMattson(tr, maxSize, 0.15, 42)
	if err != nil {
		t.Fatal(err)
	}
	if approx.SampledRequests >= int64(tr.Len())/2 {
		t.Fatalf("sampling ineffective: %d of %d", approx.SampledRequests, tr.Len())
	}
	for _, c := range []int{50, 100, 200, 400} {
		want := float64(exact.MissesAt(c)) / float64(exact.Requests)
		got := approx.MissRatioAt(c)
		if math.Abs(got-want) > 0.06 {
			t.Errorf("c=%d: sampled miss ratio %g vs exact %g (err > 0.06)", c, got, want)
		}
	}
}

func TestApproxMattsonUnbiasedOverSeeds(t *testing.T) {
	// On a skewed Zipf workload any single sample is high-variance, but
	// the estimator averaged over seeds must approach the exact curve.
	z, err := workload.NewZipf(5, 2000, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Mix(6, []workload.TenantStream{{Tenant: 0, Stream: z, Rate: 1}}, 30000)
	if err != nil {
		t.Fatal(err)
	}
	maxSize := 400
	exact, err := Mattson(tr, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	const seeds = 16
	c := 200
	sum := 0.0
	for s := uint64(0); s < seeds; s++ {
		approx, err := ApproxMattson(tr, maxSize, 0.2, s)
		if err != nil {
			t.Fatal(err)
		}
		sum += approx.MissRatioAt(c)
	}
	mean := sum / seeds
	want := float64(exact.MissesAt(c)) / float64(exact.Requests)
	// On heavily skewed traces the threshold indicator carries a small
	// systematic bias (the reuse-distance density is asymmetric around the
	// threshold, a known property of fixed-rate spatial sampling that full
	// SHARDS corrects for); accept a looser band here and rely on the
	// symmetric-workload test for tight accuracy.
	if math.Abs(mean-want) > 0.12 {
		t.Errorf("mean sampled ratio %g vs exact %g over %d seeds", mean, want, seeds)
	}
}

func TestApproxMattsonMonotoneAndBounded(t *testing.T) {
	tr := randomTrace(9, 2, 40, 5000)
	approx, err := ApproxMattson(tr, 64, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for c := 1; c <= 64; c++ {
		r := approx.MissRatioAt(c)
		if r < 0 || r > 1 {
			t.Fatalf("miss ratio %g out of [0,1] at c=%d", r, c)
		}
		if r > prev+1e-9 {
			t.Fatalf("miss ratio increased at c=%d", c)
		}
		prev = r
	}
	if approx.MissRatioAt(0) != 1 {
		t.Errorf("size-0 ratio = %g", approx.MissRatioAt(0))
	}
}

func TestHashPageDeterministicAndSpread(t *testing.T) {
	a := hashPage(12345, 1)
	b := hashPage(12345, 1)
	if a != b {
		t.Error("hash not deterministic")
	}
	if hashPage(12345, 2) == a {
		t.Error("seed ignored")
	}
	// Roughly half of pages under the 50% threshold.
	under := 0
	threshold := uint64(0.5 * float64(^uint64(0)))
	for p := 0; p < 4000; p++ {
		if hashPage(trace.PageID(p), 9) <= threshold {
			under++
		}
	}
	if under < 1700 || under > 2300 {
		t.Errorf("hash not spreading: %d/4000 under 50%% threshold", under)
	}
}
