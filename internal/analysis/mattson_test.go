package analysis

import (
	"math/rand"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func seqTrace(t *testing.T, pages ...int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder()
	for _, p := range pages {
		b.Add(0, trace.PageID(p))
	}
	return b.MustBuild()
}

func randomTrace(seed int64, tenants, pagesPer, length int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder()
	for i := 0; i < length; i++ {
		tn := rng.Intn(tenants)
		b.Add(trace.Tenant(tn), trace.PageID(tn*1000+rng.Intn(pagesPer)))
	}
	return b.MustBuild()
}

func TestMattsonHandExample(t *testing.T) {
	// Sequence 1 2 1 3 2: distances: 1@2 -> 1 distinct since (page 2),
	// 3 cold, 2@4 -> distinct {1,3} = 2.
	tr := seqTrace(t, 1, 2, 1, 3, 2)
	res, err := Mattson(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdMisses != 3 {
		t.Errorf("cold = %d", res.ColdMisses)
	}
	wantDist := []int{1, 2}
	if len(res.Distances) != len(wantDist) {
		t.Fatalf("distances = %v", res.Distances)
	}
	for i, d := range wantDist {
		if res.Distances[i] != d {
			t.Errorf("distance %d = %d, want %d", i, res.Distances[i], d)
		}
	}
	// Size 1: hits only distance-0 reuses: none -> misses 5.
	if got := res.MissesAt(1); got != 5 {
		t.Errorf("misses@1 = %d", got)
	}
	// Size 2: hits the distance-1 reuse -> 4 misses.
	if got := res.MissesAt(2); got != 4 {
		t.Errorf("misses@2 = %d", got)
	}
	// Size 3: hits both reuses -> 3 misses (all cold).
	if got := res.MissesAt(3); got != 3 {
		t.Errorf("misses@3 = %d", got)
	}
}

func TestMattsonMatchesLRUSimulation(t *testing.T) {
	// The whole point of Mattson: HitsAt[c-1] must equal an actual LRU
	// simulation's hits at size c, for every c at once.
	for seed := int64(0); seed < 6; seed++ {
		tr := randomTrace(seed, 2, 12, 500)
		res, err := Mattson(tr, 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []int{1, 2, 3, 5, 8, 13, 16} {
			lru := sim.MustRun(tr, policy.NewLRU(), sim.Config{K: c})
			if got, want := res.MissesAt(c), lru.TotalMisses(); got != want {
				t.Errorf("seed=%d c=%d: mattson misses %d != LRU %d", seed, c, got, want)
			}
		}
	}
}

func TestMattsonMissCurveMonotone(t *testing.T) {
	tr := randomTrace(9, 3, 10, 800)
	res, err := Mattson(tr, 30)
	if err != nil {
		t.Fatal(err)
	}
	curve := res.MissRatioCurve(30)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Fatalf("miss ratio increased at size %d: %g > %g", i+1, curve[i], curve[i-1])
		}
	}
	if res.MissesAt(0) != res.Requests {
		t.Errorf("size-0 misses = %d", res.MissesAt(0))
	}
	// Sizes beyond maxSize clamp.
	if res.MissesAt(1000) != res.MissesAt(30) {
		t.Errorf("clamping failed")
	}
}

func TestMattsonValidation(t *testing.T) {
	tr := seqTrace(t, 1)
	if _, err := Mattson(tr, 0); err == nil {
		t.Error("maxSize=0 accepted")
	}
}

func TestPerTenant(t *testing.T) {
	tr := randomTrace(4, 3, 8, 600)
	curves, err := PerTenant(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("curves = %d", len(curves))
	}
	var reqs int64
	for _, c := range curves {
		reqs += c.Requests
	}
	if reqs != int64(tr.Len()) {
		t.Errorf("per-tenant requests %d != %d", reqs, tr.Len())
	}
	// Each tenant's curve must match an isolated LRU run of that tenant.
	stats := tr.ComputeStats()
	for i, c := range curves {
		if c.Requests != int64(stats.PerTenantRequests[i]) {
			t.Errorf("tenant %d requests %d != %d", i, c.Requests, stats.PerTenantRequests[i])
		}
	}
}

func TestOptimalStaticPartitionSimple(t *testing.T) {
	// Tenant 0 loops over 3 pages, tenant 1 over 6; with k=9 both fit:
	// optimum gives everyone their working set and pays only cold misses.
	b := trace.NewBuilder()
	for round := 0; round < 30; round++ {
		b.Add(0, trace.PageID(round%3))
		b.Add(1, trace.PageID(100+round%6))
	}
	tr := b.MustBuild()
	curves, err := PerTenant(tr, 12)
	if err != nil {
		t.Fatal(err)
	}
	costs := []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 1}}
	quotas, cost, err := OptimalStaticPartition(curves, costs, 12)
	if err != nil {
		t.Fatal(err)
	}
	if quotas[0] < 3 || quotas[1] < 6 {
		t.Errorf("quotas = %v, want >= working sets (3, 6)", quotas)
	}
	if cost != 9 { // 3 + 6 cold misses
		t.Errorf("cost = %g, want 9 (cold only)", cost)
	}
}

func TestOptimalStaticPartitionRespectsBudget(t *testing.T) {
	tr := randomTrace(11, 3, 10, 900)
	curves, err := PerTenant(tr, 16)
	if err != nil {
		t.Fatal(err)
	}
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Linear{W: 1},
		costfn.Linear{W: 5},
	}
	for _, k := range []int{4, 9, 16} {
		quotas, cost, err := OptimalStaticPartition(curves, costs, k)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, q := range quotas {
			sum += q
		}
		if sum > k {
			t.Errorf("k=%d: quotas %v exceed budget", k, quotas)
		}
		// DP optimality sanity: no better single-page move exists.
		evalQuotas := func(qs []int) float64 {
			total := 0.0
			for i, q := range qs {
				var m int64
				if q <= 0 {
					m = curves[i].Requests
				} else {
					m = curves[i].MissesAt(q)
				}
				total += costs[i].Value(float64(m))
			}
			return total
		}
		if got := evalQuotas(quotas); got != cost {
			t.Fatalf("k=%d: reported cost %g != evaluated %g", k, cost, got)
		}
		for from := 0; from < 3; from++ {
			for to := 0; to < 3; to++ {
				if from == to || quotas[from] == 0 {
					continue
				}
				alt := append([]int(nil), quotas...)
				alt[from]--
				alt[to]++
				if evalQuotas(alt) < cost-1e-9 {
					t.Errorf("k=%d: single-page move %d->%d improves cost; DP not optimal", k, from, to)
				}
			}
		}
	}
}

func TestOptimalStaticPartitionValidation(t *testing.T) {
	if _, _, err := OptimalStaticPartition(nil, nil, 4); err == nil {
		t.Error("no tenants accepted")
	}
}

func TestOptimalStaticPartitionImprovesOnEvenQuotas(t *testing.T) {
	// Asymmetric working sets: the DP must not do worse than even split.
	b := trace.NewBuilder()
	for round := 0; round < 200; round++ {
		b.Add(0, trace.PageID(round%2))      // tiny working set
		b.Add(1, trace.PageID(100+round%20)) // large working set
	}
	tr := b.MustBuild()
	curves, err := PerTenant(tr, 22)
	if err != nil {
		t.Fatal(err)
	}
	costs := []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 1}}
	// With k=12 the cyclic 20-page loop cannot hit at all under LRU, so
	// the DP rightly gives tenant 1 nothing (LRU loop pathology).
	quotas12, cost12, err := OptimalStaticPartition(curves, costs, 12)
	if err != nil {
		t.Fatal(err)
	}
	even := policy.EvenQuotas(12, 2)
	evenCost := costs[0].Value(float64(curves[0].MissesAt(even[0]))) +
		costs[1].Value(float64(curves[1].MissesAt(even[1])))
	if cost12 > evenCost {
		t.Errorf("DP cost %g worse than even split %g (quotas %v)", cost12, evenCost, quotas12)
	}
	if quotas12[1] != 0 {
		t.Errorf("quotas %v waste pages on a loop that cannot fit", quotas12)
	}
	// With k=22 both working sets fit and the DP must fund them fully.
	quotas22, cost22, err := OptimalStaticPartition(curves, costs, 22)
	if err != nil {
		t.Fatal(err)
	}
	if quotas22[0] < 2 || quotas22[1] < 20 {
		t.Errorf("quotas %v do not cover the working sets (2, 20)", quotas22)
	}
	if cost22 != 22 { // cold misses only
		t.Errorf("cost = %g, want 22", cost22)
	}
}
