package analysis

import (
	"errors"

	"convexcache/internal/trace"
)

// ApproxResult is a sampled approximation of a miss-ratio curve in the
// spirit of SHARDS (Waldspurger et al., FAST 2015): only pages whose hash
// falls under a threshold are tracked, and measured stack distances are
// rescaled by the inverse sampling rate. Exact Mattson is O(T log T); the
// sampled variant processes only ~rate*T requests, enabling MRCs for traces
// far beyond what the experiments need.
type ApproxResult struct {
	// Rate is the effective sampling rate in (0, 1].
	Rate float64
	// SampledRequests counts the requests that survived sampling.
	SampledRequests int64
	// HitsAt[c] estimates LRU hits at cache size c+1, rescaled.
	HitsAt []float64
	// Requests is the full trace length.
	Requests int64
}

// MissRatioAt estimates the LRU miss ratio at cache size c.
func (r ApproxResult) MissRatioAt(c int) float64 {
	if r.Requests == 0 {
		return 0
	}
	if c < 1 {
		return 1
	}
	if c > len(r.HitsAt) {
		c = len(r.HitsAt)
	}
	miss := float64(r.Requests) - r.HitsAt[c-1]
	if miss < 0 {
		miss = 0
	}
	return miss / float64(r.Requests)
}

// hashPage is a 64-bit mix (splitmix64 finalizer) used for spatial
// sampling; deterministic across runs.
func hashPage(p trace.PageID, seed uint64) uint64 {
	x := uint64(p) + seed + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ApproxMattson runs spatially sampled stack-distance analysis: pages are
// kept when hash(page) < rate * 2^64; measured distances are scaled by
// 1/rate, and hit counts are likewise rescaled.
func ApproxMattson(tr *trace.Trace, maxSize int, rate float64, seed uint64) (ApproxResult, error) {
	if maxSize <= 0 {
		return ApproxResult{}, errors.New("analysis: maxSize must be positive")
	}
	if rate <= 0 || rate > 1 {
		return ApproxResult{}, errors.New("analysis: sampling rate must be in (0, 1]")
	}
	// Threshold on the top 63 bits avoids float->uint64 overflow at rate 1.
	threshold := uint64(rate * float64(uint64(1)<<63))
	keep := func(p trace.PageID) bool {
		if rate >= 1 {
			return true
		}
		return hashPage(p, seed)>>1 < threshold
	}
	T := tr.Len()
	res := ApproxResult{
		Rate:     rate,
		HitsAt:   make([]float64, maxSize),
		Requests: int64(T),
	}
	ft := newFenwick(T)
	lastPos := make(map[trace.PageID]int)
	hitsAtDistance := make([]float64, maxSize)
	for t, r := range tr.Requests() {
		if !keep(r.Page) {
			continue
		}
		res.SampledRequests++
		if prev, ok := lastPos[r.Page]; ok {
			sampledDist := ft.prefix(T-1) - ft.prefix(prev)
			// Rescale: each sampled distinct page stands for 1/rate pages.
			dist := int(float64(sampledDist) / rate)
			if dist < maxSize {
				hitsAtDistance[dist] += 1 / rate
			}
			ft.add(prev, -1)
		}
		ft.add(t, 1)
		lastPos[r.Page] = t
	}
	cum := 0.0
	for c := 0; c < maxSize; c++ {
		cum += hitsAtDistance[c]
		res.HitsAt[c] = cum
	}
	return res, nil
}
