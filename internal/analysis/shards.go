package analysis

import (
	"errors"

	"convexcache/internal/trace"
)

// ApproxResult is a sampled approximation of a miss-ratio curve in the
// spirit of SHARDS (Waldspurger et al., FAST 2015): only pages whose hash
// falls under a threshold are tracked, and measured stack distances are
// rescaled by the inverse sampling rate. Exact Mattson is O(T log T); the
// sampled variant processes only ~rate*T requests, enabling MRCs for traces
// far beyond what the experiments need.
type ApproxResult struct {
	// Rate is the effective sampling rate in (0, 1].
	Rate float64
	// SampledRequests counts the requests that survived sampling.
	SampledRequests int64
	// HitsAt[c] estimates LRU hits at cache size c+1: the integer sampled
	// hit count rescaled once by 1/Rate and clamped to Requests.
	HitsAt []float64
	// Requests is the full trace length.
	Requests int64
}

// MissRatioAt estimates the LRU miss ratio at cache size c.
func (r ApproxResult) MissRatioAt(c int) float64 {
	if r.Requests == 0 {
		return 0
	}
	if c < 1 {
		return 1
	}
	if c > len(r.HitsAt) {
		c = len(r.HitsAt)
	}
	miss := float64(r.Requests) - r.HitsAt[c-1]
	if miss < 0 {
		miss = 0
	}
	return miss / float64(r.Requests)
}

// hashPage is a 64-bit mix (splitmix64 finalizer) used for spatial
// sampling; deterministic across runs.
func hashPage(p trace.PageID, seed uint64) uint64 {
	x := uint64(p) + seed + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SampleFilter is the SHARDS spatial-sampling predicate: a page is kept
// when its 64-bit hash falls under rate * 2^63 (the threshold lives in the
// top 63 bits so rate 1.0 needs no float->uint64 overflow special case).
// The filter is a pure function of (page, seed), so every consumer that
// shares a seed — the offline ApproxMattson pass, the live per-shard
// samplers of internal/mrclive — samples exactly the same page population.
type SampleFilter struct {
	// Rate is the sampling rate in (0, 1].
	Rate float64
	// Seed perturbs the page hash; distinct seeds give independent samples.
	Seed uint64

	threshold uint64
}

// NewSampleFilter validates the rate and builds the filter.
func NewSampleFilter(rate float64, seed uint64) (SampleFilter, error) {
	if rate <= 0 || rate > 1 {
		return SampleFilter{}, errors.New("analysis: sampling rate must be in (0, 1]")
	}
	return SampleFilter{Rate: rate, Seed: seed, threshold: uint64(rate * float64(uint64(1)<<63))}, nil
}

// Keep reports whether the page survives sampling.
func (f SampleFilter) Keep(p trace.PageID) bool {
	if f.Rate >= 1 {
		return true
	}
	return hashPage(p, f.Seed)>>1 < f.threshold
}

// ApproxMattson runs spatially sampled stack-distance analysis: pages are
// kept when hash(page) < rate * 2^64; measured distances are scaled by
// 1/rate at bucketing time. Hit counts accumulate as exact integers per
// sampled request and are rescaled by 1/rate once at the end, with a clamp
// at Requests — so the estimate can never exceed the trace length and, at
// rate 1.0, is bit-identical to exact Mattson (no float drift from summing
// T copies of 1/rate).
func ApproxMattson(tr *trace.Trace, maxSize int, rate float64, seed uint64) (ApproxResult, error) {
	if maxSize <= 0 {
		return ApproxResult{}, errors.New("analysis: maxSize must be positive")
	}
	filter, err := NewSampleFilter(rate, seed)
	if err != nil {
		return ApproxResult{}, err
	}
	T := tr.Len()
	res := ApproxResult{
		Rate:     rate,
		HitsAt:   make([]float64, maxSize),
		Requests: int64(T),
	}
	ft := newFenwick(T)
	lastPos := make(map[trace.PageID]int)
	hitsAtDistance := make([]int64, maxSize)
	for t, r := range tr.Requests() {
		if !filter.Keep(r.Page) {
			continue
		}
		res.SampledRequests++
		if prev, ok := lastPos[r.Page]; ok {
			sampledDist := ft.prefix(T-1) - ft.prefix(prev)
			// Rescale: each sampled distinct page stands for 1/rate pages.
			dist := int(float64(sampledDist) / rate)
			if dist < maxSize {
				hitsAtDistance[dist]++
			}
			ft.add(prev, -1)
		}
		ft.add(t, 1)
		lastPos[r.Page] = t
	}
	var cum int64
	for c := 0; c < maxSize; c++ {
		cum += hitsAtDistance[c]
		est := float64(cum) / rate
		if est > float64(res.Requests) {
			est = float64(res.Requests)
		}
		res.HitsAt[c] = est
	}
	return res, nil
}
