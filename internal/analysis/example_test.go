package analysis_test

import (
	"fmt"

	"convexcache/internal/analysis"
	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// ExampleMattson computes an exact LRU miss-ratio curve in one pass.
func ExampleMattson() {
	tr := trace.NewBuilder().
		Add(0, 1).Add(0, 2).Add(0, 1).Add(0, 3).Add(0, 2).Add(0, 1).
		MustBuild()
	res, _ := analysis.Mattson(tr, 3)
	for c := 1; c <= 3; c++ {
		fmt.Printf("size %d: %d misses\n", c, res.MissesAt(c))
	}
	// Output:
	// size 1: 6 misses
	// size 2: 5 misses
	// size 3: 3 misses
}

// ExampleOptimalStaticPartition sizes per-tenant quotas from miss-ratio
// curves and convex costs.
func ExampleOptimalStaticPartition() {
	b := trace.NewBuilder()
	for round := 0; round < 10; round++ {
		b.Add(0, trace.PageID(round%2))     // tenant 0: 2-page loop
		b.Add(1, trace.PageID(100+round%4)) // tenant 1: 4-page loop
	}
	tr := b.MustBuild()
	curves, _ := analysis.PerTenant(tr, 8)
	costs := []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 1}}
	quotas, cost, _ := analysis.OptimalStaticPartition(curves, costs, 6)
	fmt.Printf("quotas %v, predicted cost %.0f\n", quotas, cost)
	// Output:
	// quotas [2 4], predicted cost 6
}
