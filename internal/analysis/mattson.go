// Package analysis provides trace analysis tools: Mattson's stack-distance
// algorithm for exact LRU miss-ratio curves (hit counts for every cache
// size in one pass), per-tenant reuse-distance histograms, and an optimal
// static-partition solver that combines per-tenant miss-ratio curves with
// convex cost functions — the strongest "static allocation" baseline the
// paper's introduction argues against.
package analysis

import (
	"errors"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// fenwick is a binary indexed tree over time slots, used to count resident
// "more recently used" pages above a position in one pass.
type fenwick struct {
	n    int
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{n: n, tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i <= f.n; i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of entries [0, i].
func (f *fenwick) prefix(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// StackResult holds the outcome of a Mattson pass.
type StackResult struct {
	// HitsAt[c] is the number of hits an LRU cache of size c+1 would score
	// on the trace (size 0 is omitted: it always scores zero).
	HitsAt []int64
	// ColdMisses counts first references (misses at every size).
	ColdMisses int64
	// Requests is the trace length.
	Requests int64
	// Distances holds the reuse (stack) distance of every non-cold request
	// in trace order: the number of distinct pages referenced since the
	// previous access to the same page.
	Distances []int
}

// MissesAt returns the LRU miss count for cache size c (>= 1).
func (r StackResult) MissesAt(c int) int64 {
	if c < 1 {
		return r.Requests
	}
	if c > len(r.HitsAt) {
		c = len(r.HitsAt)
	}
	return r.Requests - r.HitsAt[c-1]
}

// MissRatioCurve returns the LRU miss ratio for sizes 1..maxSize.
func (r StackResult) MissRatioCurve(maxSize int) []float64 {
	out := make([]float64, maxSize)
	for c := 1; c <= maxSize; c++ {
		out[c-1] = float64(r.MissesAt(c)) / float64(r.Requests)
	}
	return out
}

// Mattson computes exact LRU stack distances for the whole trace in
// O(T log T) using a Fenwick tree over last-access slots. maxSize bounds
// the size range of HitsAt (distances beyond it are still recorded in
// Distances).
func Mattson(tr *trace.Trace, maxSize int) (StackResult, error) {
	if maxSize <= 0 {
		return StackResult{}, errors.New("analysis: maxSize must be positive")
	}
	T := tr.Len()
	res := StackResult{
		HitsAt:   make([]int64, maxSize),
		Requests: int64(T),
	}
	ft := newFenwick(T)
	lastPos := make(map[trace.PageID]int, tr.NumPages())
	hitsAtDistance := make([]int64, maxSize) // hits with stack distance d+1 <= maxSize
	for t, r := range tr.Requests() {
		if prev, ok := lastPos[r.Page]; ok {
			// Stack distance = #distinct pages touched in (prev, t) = number
			// of active slots strictly after prev.
			dist := ft.prefix(T-1) - ft.prefix(prev)
			res.Distances = append(res.Distances, dist)
			if dist < maxSize {
				hitsAtDistance[dist]++
			}
			ft.add(prev, -1)
		} else {
			res.ColdMisses++
		}
		ft.add(t, 1)
		lastPos[r.Page] = t
	}
	// A cache of size c hits every request with stack distance < c.
	var cum int64
	for c := 0; c < maxSize; c++ {
		cum += hitsAtDistance[c]
		res.HitsAt[c] = cum
	}
	return res, nil
}

// PerTenant splits the trace into per-tenant sub-traces and runs Mattson on
// each. Tenants with no requests get a zero-valued entry.
func PerTenant(tr *trace.Trace, maxSize int) ([]StackResult, error) {
	n := tr.NumTenants()
	out := make([]StackResult, n)
	builders := make([]*trace.Builder, n)
	for i := range builders {
		builders[i] = trace.NewBuilder()
	}
	counts := make([]int, n)
	for _, r := range tr.Requests() {
		builders[r.Tenant].Add(r.Tenant, r.Page)
		counts[r.Tenant]++
	}
	for i := range out {
		if counts[i] == 0 {
			out[i] = StackResult{HitsAt: make([]int64, maxSize)}
			continue
		}
		sub, err := builders[i].Build()
		if err != nil {
			return nil, err
		}
		res, err := Mattson(sub, maxSize)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// OptimalStaticPartition allocates k cache pages among tenants to minimize
// the total convex cost sum_i f_i(LRUMisses_i(quota_i)), given each tenant's
// exact miss-count curve from PerTenant. It solves the allocation by
// dynamic programming over tenants and budgets in O(n k^2) — exact for the
// given curves, no convexity of the curves required.
func OptimalStaticPartition(curves []StackResult, costs []costfn.Func, k int) ([]int, float64, error) {
	n := len(curves)
	if n == 0 || k < 0 {
		return nil, 0, errors.New("analysis: need tenants and non-negative k")
	}
	costAt := func(i, quota int) float64 {
		var misses int64
		if quota <= 0 {
			misses = curves[i].Requests
		} else {
			misses = curves[i].MissesAt(quota)
		}
		if i < len(costs) && costs[i] != nil {
			return costs[i].Value(float64(misses))
		}
		return float64(misses)
	}
	const inf = 1e300
	// dp[b] = min cost of allocating b pages among tenants seen so far.
	dp := make([]float64, k+1)
	choice := make([][]int, n)
	for b := range dp {
		dp[b] = inf
	}
	dp[0] = 0
	prev := append([]float64(nil), dp...)
	for i := 0; i < n; i++ {
		choice[i] = make([]int, k+1)
		cur := make([]float64, k+1)
		for b := 0; b <= k; b++ {
			cur[b] = inf
			for q := 0; q <= b; q++ {
				if prev[b-q] >= inf {
					continue
				}
				v := prev[b-q] + costAt(i, q)
				if v < cur[b] {
					cur[b] = v
					choice[i][b] = q
				}
			}
		}
		prev = cur
	}
	// Pick the budget b <= k with minimal cost (unused pages are free).
	bestB, bestV := 0, inf
	for b := 0; b <= k; b++ {
		if prev[b] < bestV {
			bestB, bestV = b, prev[b]
		}
	}
	quotas := make([]int, n)
	b := bestB
	for i := n - 1; i >= 0; i-- {
		quotas[i] = choice[i][b]
		b -= quotas[i]
	}
	return quotas, bestV, nil
}
