package analysis

import (
	"errors"

	"convexcache/internal/trace"
)

// WorkingSetResult holds Denning working-set statistics: for each window
// size tau, the average number of distinct pages referenced in the trailing
// tau requests — the classical memory-demand curve used for capacity
// planning alongside the miss-ratio curve.
type WorkingSetResult struct {
	// Taus are the window sizes evaluated.
	Taus []int
	// AvgSize[i] is the average working-set size at window Taus[i].
	AvgSize []float64
}

// WorkingSet computes average working-set sizes for the given windows in
// one pass per window (sliding distinct-count with reference counting).
func WorkingSet(tr *trace.Trace, taus []int) (WorkingSetResult, error) {
	if len(taus) == 0 {
		return WorkingSetResult{}, errors.New("analysis: working set needs at least one window")
	}
	res := WorkingSetResult{Taus: append([]int(nil), taus...)}
	reqs := tr.Requests()
	for _, tau := range taus {
		if tau <= 0 {
			return WorkingSetResult{}, errors.New("analysis: window sizes must be positive")
		}
		counts := make(map[trace.PageID]int)
		distinct := 0
		totalSize := 0.0
		samples := 0
		for t, r := range reqs {
			if counts[r.Page] == 0 {
				distinct++
			}
			counts[r.Page]++
			if t >= tau {
				old := reqs[t-tau].Page
				counts[old]--
				if counts[old] == 0 {
					distinct--
				}
			}
			// Sample once the window is full (or at every step for short
			// traces).
			if t >= tau-1 {
				totalSize += float64(distinct)
				samples++
			}
		}
		if samples == 0 {
			// Trace shorter than the window: one sample of the whole trace.
			totalSize = float64(distinct)
			samples = 1
		}
		res.AvgSize = append(res.AvgSize, totalSize/float64(samples))
	}
	return res, nil
}
