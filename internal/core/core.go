// Package core implements the paper's contribution: the online caching
// algorithm for convex per-tenant miss costs of Menache & Singh (SPAA 2015).
//
// Three interchangeable implementations are provided:
//
//   - Discrete: the literal ALG-DISCRETE of Figure 3, maintaining an explicit
//     budget B(p) per cached page with the paper's three update rules
//     (subtract the evicted budget from everyone, refresh on hit, and apply
//     the same-owner second-order correction). It is the reference
//     implementation and also hosts the ablation variants of experiment E9.
//
//   - Fast: an O(#tenants) -per-eviction reformulation. Observing that the
//     budget of a cached page always equals
//     marginal(owner) - (aging since the page's last request), where
//     marginal(i) = f_i'(m_i + 1) and aging is the running sum of evicted
//     budgets, the victim is the least-recently-requested page of the tenant
//     minimizing marginal(i) - age(i's LRU page). Equivalence with Discrete
//     is property-tested.
//
//   - Continuous: ALG-CONT of Figure 2 with explicit primal and dual
//     variables (x°, y°, z°) and a post-run checker for the paper's
//     invariants (Section 2.3), used to validate the analysis, not for
//     performance.
//
// All three satisfy sim.Policy.
package core

import (
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// FlushWeight is the effectively-infinite per-miss weight given to the
// paper's dummy flush tenant, whose pages must never be evicted before the
// end of the sequence.
const FlushWeight = 1e18

// FlushCost returns the dummy tenant's cost function.
func FlushCost() costfn.Func { return costfn.Linear{W: FlushWeight} }

// Options configures the algorithm.
type Options struct {
	// Costs holds f_i per tenant. Tenants beyond the slice default to
	// Linear{W: 1}.
	Costs []costfn.Func
	// UseDiscreteDeriv replaces f'(x) by the finite difference
	// f(x) - f(x-1), the Section 2.5 variant for arbitrary (possibly
	// non-differentiable) cost functions.
	UseDiscreteDeriv bool
	// CountMisses switches the internal miss counter m(i,t) from the
	// paper's eviction count to the fetch (miss) count. Supported by Fast
	// and Discrete.
	CountMisses bool
	// NoVictimCursor disables the dense backends' incremental victim-argmin
	// cursor, forcing a full tenant scan on every eviction. The cursor is a
	// pure optimization — victim selection is identical either way (the
	// impl/victim-cursor oracle enforces it) — so this switch exists for
	// differential testing, not tuning.
	NoVictimCursor bool
	// ForceVictimCursor arms the cursor even below the auto-enable tenant
	// floor (the cursor's bookkeeping loses to the scan when the scan is a
	// handful of compares, so few-tenant runs disarm it by default). Used by
	// the differential tests that pin cursor == scan; NoVictimCursor wins if
	// both are set.
	ForceVictimCursor bool

	// Ablation switches (Discrete only; experiment E9).

	// DisableAging skips the "subtract B(p) from every other page" step,
	// removing the greedy-dual aging mechanism.
	DisableAging bool
	// DisableOwnerCorrection skips the same-owner second-order update
	// B(p') += f'(m+2) - f'(m+1).
	DisableOwnerCorrection bool
	// DisableHitRefresh leaves B(p) unchanged on cache hits instead of
	// restoring it to the current marginal.
	DisableHitRefresh bool
}

// cost returns the cost function of tenant i.
func (o Options) cost(i trace.Tenant) costfn.Func {
	if int(i) < len(o.Costs) && o.Costs[i] != nil {
		return o.Costs[i]
	}
	return costfn.Linear{W: 1}
}

// Marginal returns the marginal cost of the (m+1)-st miss of tenant i:
// f_i'(m+1) in the paper's differentiable setting, or the finite difference
// f_i(m+1)-f_i(m) in discrete-derivative mode. Exported for substrates
// (e.g. the buffer pool) that embed the budget rule.
func (o Options) Marginal(i trace.Tenant, m float64) float64 {
	return o.marginal(i, m)
}

// marginal returns the marginal cost of the (m+1)-st miss of tenant i:
// f_i'(m+1) in the paper's differentiable setting, or the finite difference
// f_i(m+1)-f_i(m) in discrete-derivative mode.
func (o Options) marginal(i trace.Tenant, m float64) float64 {
	f := o.cost(i)
	if o.UseDiscreteDeriv {
		return costfn.DiscreteDeriv(f, m)
	}
	return f.Deriv(m + 1)
}

// Discrete is the reference ALG-DISCRETE of Figure 3.
type Discrete struct {
	opt Options

	budget map[trace.PageID]float64
	owner  map[trace.PageID]trace.Tenant
	seq    map[trace.PageID]int // last-request sequence, tie-break
	m      map[trace.Tenant]float64

	nextSeq int
	pending *pendingEviction
}

// pendingEviction carries the state of the step's eviction from OnEvict to
// OnInsert, where Figure 3's post-eviction updates are applied.
type pendingEviction struct {
	victimBudget float64
	victimOwner  trace.Tenant
	// mBefore is the victim owner's counter before this eviction.
	mBefore float64
	// correction is f'(mBefore+2) - f'(mBefore+1) for the victim's owner.
	correction float64
}

// NewDiscrete returns a fresh reference implementation.
func NewDiscrete(opt Options) *Discrete {
	d := &Discrete{opt: opt}
	d.Reset()
	return d
}

// Name implements sim.Policy.
func (d *Discrete) Name() string { return "alg-discrete" }

// Reset implements sim.Policy.
func (d *Discrete) Reset() {
	d.budget = make(map[trace.PageID]float64)
	d.owner = make(map[trace.PageID]trace.Tenant)
	d.seq = make(map[trace.PageID]int)
	d.m = make(map[trace.Tenant]float64)
	d.nextSeq = 0
	d.pending = nil
}

// OnHit refreshes the page's budget to the current marginal (Figure 3's
// "update B(p_t)" on the hit path).
func (d *Discrete) OnHit(step int, r trace.Request) {
	d.nextSeq++
	if d.opt.DisableHitRefresh {
		return
	}
	d.budget[r.Page] = d.opt.marginal(r.Tenant, d.m[r.Tenant])
	d.seq[r.Page] = d.nextSeq
}

// Victim returns the cached page with the smallest budget, breaking ties by
// the earliest last request (the deterministic reading of "the first page
// ... for which the condition is satisfied").
func (d *Discrete) Victim(step int, r trace.Request) trace.PageID {
	var best trace.PageID
	bestB := 0.0
	bestSeq := 0
	found := false
	for p, b := range d.budget {
		if !found || b < bestB || (b == bestB && d.seq[p] < bestSeq) {
			best, bestB, bestSeq, found = p, b, d.seq[p], true
		}
	}
	if !found {
		panic("core: Victim called with empty cache")
	}
	return best
}

// OnEvict records the eviction and stages Figure 3's post-eviction updates.
func (d *Discrete) OnEvict(step int, p trace.PageID) {
	ow := d.owner[p]
	vb := d.budget[p]
	delete(d.budget, p)
	delete(d.owner, p)
	delete(d.seq, p)
	mBefore := d.m[ow]
	if !d.opt.CountMisses {
		d.m[ow] = mBefore + 1
	}
	corr := d.opt.marginal(ow, mBefore+1) - d.opt.marginal(ow, mBefore)
	d.pending = &pendingEviction{victimBudget: vb, victimOwner: ow, mBefore: mBefore, correction: corr}
}

// OnInsert applies the staged eviction updates and installs the new page's
// budget.
func (d *Discrete) OnInsert(step int, r trace.Request) {
	d.nextSeq++
	if d.pending != nil {
		pe := d.pending
		d.pending = nil
		// Subtract the evicted budget from every resident page; the new
		// page is not yet inserted and is therefore exempt, matching
		// "for each p' not in {p, p_t}".
		if !d.opt.DisableAging {
			for p := range d.budget {
				d.budget[p] -= pe.victimBudget
			}
		}
		// Set B(p_t) from m(i(p_t), t-1): the counter before this step's
		// eviction.
		mUse := d.m[r.Tenant]
		if !d.opt.CountMisses && r.Tenant == pe.victimOwner {
			mUse = pe.mBefore
		}
		d.insert(r, d.opt.marginal(r.Tenant, mUse))
		// Same-owner correction, including p_t when it shares the owner.
		if !d.opt.DisableOwnerCorrection && !d.opt.CountMisses {
			for p, ow := range d.owner {
				if ow == pe.victimOwner {
					d.budget[p] += pe.correction
				}
			}
		}
	} else {
		d.insert(r, d.opt.marginal(r.Tenant, d.m[r.Tenant]))
	}
	if d.opt.CountMisses {
		// Miss-count mode: the counter advances on the fetch itself, and
		// the same-owner correction applies to the fetching tenant.
		mOld := d.m[r.Tenant]
		d.m[r.Tenant] = mOld + 1
		if !d.opt.DisableOwnerCorrection {
			corr := d.opt.marginal(r.Tenant, mOld+1) - d.opt.marginal(r.Tenant, mOld)
			for p, ow := range d.owner {
				if p != r.Page && ow == r.Tenant {
					d.budget[p] += corr
				}
			}
			// The new page itself was just set with the pre-increment
			// marginal; bring it to the post-increment one.
			d.budget[r.Page] += corr
		}
	}
}

func (d *Discrete) insert(r trace.Request, b float64) {
	d.budget[r.Page] = b
	d.owner[r.Page] = r.Tenant
	d.seq[r.Page] = d.nextSeq
}

// Misses returns the internal per-tenant counter m(i, t) (evictions by
// default, fetches in CountMisses mode).
func (d *Discrete) Misses(i trace.Tenant) float64 { return d.m[i] }

// Budget exposes a cached page's current budget for tests.
func (d *Discrete) Budget(p trace.PageID) (float64, bool) {
	b, ok := d.budget[p]
	return b, ok
}

// debugString dumps the cache state for failure messages.
func (d *Discrete) debugString() string {
	return fmt.Sprintf("budgets=%v m=%v", d.budget, d.m)
}
