package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// denseRunLog captures everything the equivalence properties compare: the
// exact victim sequence and the final per-tenant counters.
type denseRunLog struct {
	victims   []trace.PageID
	misses    []int64
	evictions []int64
}

func runWithLog(t *testing.T, tr *trace.Trace, p sim.Policy, k int) denseRunLog {
	t.Helper()
	var lg denseRunLog
	res, err := sim.Run(tr, p, sim.Config{K: k, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 {
			lg.victims = append(lg.victims, ev.Evicted)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	lg.misses = res.Misses
	lg.evictions = res.Evictions
	return lg
}

// equalLogs asserts the two runs are bit-exact: identical victims at every
// step and identical per-tenant miss and eviction vectors.
func equalLogs(t *testing.T, name string, a, b denseRunLog) bool {
	t.Helper()
	if len(a.victims) != len(b.victims) {
		t.Errorf("%s: eviction counts differ: %d vs %d", name, len(a.victims), len(b.victims))
		return false
	}
	for i := range a.victims {
		if a.victims[i] != b.victims[i] {
			t.Errorf("%s: victim %d differs: %d vs %d", name, i, a.victims[i], b.victims[i])
			return false
		}
	}
	for i := range a.misses {
		if a.misses[i] != b.misses[i] {
			t.Errorf("%s: tenant %d misses differ: %d vs %d", name, i, a.misses[i], b.misses[i])
			return false
		}
	}
	for i := range a.evictions {
		if a.evictions[i] != b.evictions[i] {
			t.Errorf("%s: tenant %d evictions differ: %d vs %d", name, i, a.evictions[i], b.evictions[i])
			return false
		}
	}
	return true
}

// denseCostSets are the exact-arithmetic cost families used by the dense
// equivalence properties. Coefficients and breakpoints are dyadic rationals
// so budget arithmetic is bit-exact in float64 and "identical victims" is a
// meaningful assertion.
func denseCostSets(t *testing.T) map[string]func(rng *rand.Rand) costfn.Func {
	t.Helper()
	sla, err := costfn.SLARefund(4, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	sla2, err := costfn.SLARefund(8, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]func(rng *rand.Rand) costfn.Func{
		"monomial": func(rng *rand.Rand) costfn.Func {
			return costfn.Monomial{C: float64(1 + rng.Intn(3)), Beta: float64(2 + rng.Intn(2))}
		},
		"linear": func(rng *rand.Rand) costfn.Func {
			return costfn.Linear{W: float64(1 + rng.Intn(6))}
		},
		"sla-refund": func(rng *rand.Rand) costfn.Func {
			if rng.Intn(2) == 0 {
				return sla
			}
			return sla2
		},
		"mixed": func(rng *rand.Rand) costfn.Func {
			switch rng.Intn(3) {
			case 0:
				return costfn.Monomial{C: 1, Beta: 2}
			case 1:
				return costfn.Linear{W: float64(1 + rng.Intn(4))}
			default:
				return sla
			}
		},
	}
}

// TestDenseFastMatchesDiscreteLargeTraces is the tentpole equivalence
// property: the dense Fast implementation (slice-backed state, intrusive
// LRU, cached marginals, driven by the dense engine) must be bit-exact
// against the reference ALG-DISCRETE on large random multi-tenant traces in
// every supported option mode and across all cost families, including the
// piecewise-linear SLA refund.
func TestDenseFastMatchesDiscreteLargeTraces(t *testing.T) {
	costSets := denseCostSets(t)
	for name, mkCost := range costSets {
		for _, countMisses := range []bool{false, true} {
			for _, discreteDeriv := range []bool{false, true} {
				for seed := int64(0); seed < 6; seed++ {
					rng := rand.New(rand.NewSource(seed*7919 + 13))
					tenants := 2 + rng.Intn(4)
					costs := make([]costfn.Func, tenants)
					for i := range costs {
						costs[i] = mkCost(rng)
					}
					b := trace.NewBuilder()
					length := 3000 + rng.Intn(3000)
					pages := 8 + rng.Intn(24)
					for j := 0; j < length; j++ {
						tn := rng.Intn(tenants)
						b.Add(trace.Tenant(tn), trace.PageID(int64(tn)*1_000_000+int64(rng.Intn(pages))))
					}
					tr := b.MustBuild()
					k := 3 + rng.Intn(30)
					opt := Options{Costs: costs, CountMisses: countMisses, UseDiscreteDeriv: discreteDeriv}
					d := runWithLog(t, tr, NewDiscrete(opt), k)
					f := runWithLog(t, tr, NewFast(opt), k)
					if !equalLogs(t, name, d, f) {
						t.Fatalf("costs=%s countMisses=%v discreteDeriv=%v seed=%d k=%d", name, countMisses, discreteDeriv, seed, k)
					}
				}
			}
		}
	}
}

// TestDenseFastUsesDensePath asserts sim.Run actually takes the dense
// engine for Fast, so the equivalence tests above exercise the intended
// code path rather than the map fallback.
func TestDenseFastUsesDensePath(t *testing.T) {
	f := NewFast(Options{})
	tr := randomTrace(3, 2, 6, 200)
	sim.MustRun(tr, f, sim.Config{K: 4})
	if f.dn == nil {
		t.Fatal("dense state not initialized: sim.Run fell back to the map engine")
	}
	if f.dn.d != tr.Dense() {
		t.Fatal("dense state bound to a different trace view")
	}
	if len(f.info) != 0 {
		t.Fatal("map backend was populated during a dense run")
	}
}

// TestDenseFastQuickEquivalence is the randomized quick-check counterpart:
// arbitrary seeds, sizes and modes, sparse page universes (exercising the
// remap), asserting identical victim sequences and counters.
func TestDenseFastQuickEquivalence(t *testing.T) {
	prop := func(seed int64, kRaw uint8, countMisses, discreteDeriv bool) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + int(kRaw%10)
		sla, err := costfn.SLARefund(4, 0.25, 4)
		if err != nil {
			return false
		}
		mkCost := func() costfn.Func {
			switch rng.Intn(4) {
			case 0:
				return costfn.Linear{W: float64(1 + rng.Intn(5))}
			case 1:
				return costfn.Monomial{C: float64(1 + rng.Intn(2)), Beta: 2}
			case 2:
				return costfn.Monomial{C: 1, Beta: 3}
			default:
				return sla
			}
		}
		tenants := 2 + rng.Intn(3)
		costs := make([]costfn.Func, tenants)
		for i := range costs {
			costs[i] = mkCost()
		}
		b := trace.NewBuilder()
		for i := 0; i < 400; i++ {
			tn := rng.Intn(tenants)
			// Sparse, widely spaced page ids force the dense remap to do
			// real work.
			b.Add(trace.Tenant(tn), trace.PageID(int64(tn)<<40|int64(rng.Intn(8))<<7))
		}
		tr := b.MustBuild()
		opt := Options{Costs: costs, CountMisses: countMisses, UseDiscreteDeriv: discreteDeriv}
		var dLog, fLog []trace.PageID
		collect := func(out *[]trace.PageID) sim.Observer {
			return func(ev sim.Event) {
				if ev.Evicted >= 0 {
					*out = append(*out, ev.Evicted)
				}
			}
		}
		dRes, err := sim.Run(tr, NewDiscrete(opt), sim.Config{K: k, Observer: collect(&dLog)})
		if err != nil {
			return false
		}
		fRes, err := sim.Run(tr, NewFast(opt), sim.Config{K: k, Observer: collect(&fLog)})
		if err != nil {
			return false
		}
		if len(dLog) != len(fLog) {
			return false
		}
		for i := range dLog {
			if dLog[i] != fLog[i] {
				return false
			}
		}
		for i := range dRes.Misses {
			if dRes.Misses[i] != fRes.Misses[i] || dRes.Evictions[i] != fRes.Evictions[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
