package core_test

import (
	"fmt"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// ExampleFast runs the paper's algorithm on a tiny two-tenant sequence.
func ExampleFast() {
	// Tenant 0 pays x^2 for x misses; tenant 1 pays 0.5 per miss.
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Linear{W: 0.5},
	}
	tr := trace.NewBuilder().
		Add(0, 1).Add(1, 100).Add(0, 2).Add(1, 101).
		Add(0, 1).Add(1, 102).Add(0, 2).Add(1, 103).
		MustBuild()
	alg := core.NewFast(core.Options{Costs: costs})
	res := sim.MustRun(tr, alg, sim.Config{K: 3})
	fmt.Printf("misses per tenant: %v\n", res.Misses)
	fmt.Printf("total convex cost: %.1f\n", res.Cost(costs))
	// Output:
	// misses per tenant: [2 4]
	// total convex cost: 6.0
}

// ExampleContinuous validates the Section 2.3 invariants on a flushed run.
func ExampleContinuous() {
	base := trace.NewBuilder().
		Add(0, 1).Add(0, 2).Add(0, 3).Add(0, 1).Add(0, 2).Add(0, 3).
		MustBuild()
	k := 2
	flushed, dummy, _ := trace.WithFlush(base, k)
	costs := make([]costfn.Func, int(dummy)+1)
	costs[0] = costfn.Monomial{C: 1, Beta: 2}
	costs[dummy] = core.FlushCost()
	cont := core.NewContinuous(core.Options{Costs: costs})
	sim.MustRun(flushed, cont, sim.Config{K: k})
	cont.Finish()
	rep := cont.CheckInvariants(k, 1e-9)
	fmt.Printf("invariants ok: %v (%d evictions)\n", rep.Ok(), rep.Evictions)
	// Output:
	// invariants ok: true (6 evictions)
}
