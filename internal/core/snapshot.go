package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"convexcache/internal/trace"
)

// FastSnapshot is a serializable checkpoint of a Fast instance: everything
// needed to resume the algorithm after a process restart with warm cache
// state (the cache *contents* are the engine's; the snapshot captures the
// policy's bookkeeping for them).
type FastSnapshot struct {
	// Aging is the global offset A.
	Aging float64 `json:"aging"`
	// Misses holds the per-tenant counter m(i).
	Misses map[trace.Tenant]float64 `json:"misses"`
	// Pages lists the resident pages in per-tenant recency order (most
	// recent first), preserving victim selection exactly.
	Pages []PageSnapshot `json:"pages"`
	// NextSeq is the tie-break counter.
	NextSeq int `json:"next_seq"`
}

// PageSnapshot is one resident page's policy state.
type PageSnapshot struct {
	// Page is the page id.
	Page trace.PageID `json:"page"`
	// Owner is the owning tenant.
	Owner trace.Tenant `json:"owner"`
	// AgeStart is the aging offset at the page's last request.
	AgeStart float64 `json:"age_start"`
	// Seq is the last-request sequence number.
	Seq int `json:"seq"`
}

// Snapshot captures the current state. Cost functions are configuration,
// not state, and are not serialized; Restore must be called on an instance
// built with equivalent Options. Both state backends are supported: after a
// dense sim.Run the flat-slice state is walked, otherwise the map state.
func (f *Fast) Snapshot() FastSnapshot {
	if f.dn != nil {
		return f.snapshotDense()
	}
	s := FastSnapshot{
		Aging:   f.aging,
		Misses:  make(map[trace.Tenant]float64, len(f.m)),
		NextSeq: f.nextSeq,
	}
	for i, m := range f.m {
		s.Misses[i] = m
	}
	// Walk tenants in ascending id order so the serialized page list is
	// deterministic and identical to the dense backend's; map iteration
	// order here broke snapshot round-trip idempotence (found by the
	// internal/check differential oracle).
	tenants := make([]trace.Tenant, 0, len(f.lists))
	for i := range f.lists {
		tenants = append(tenants, i)
	}
	sort.Slice(tenants, func(a, b int) bool { return tenants[a] < tenants[b] })
	for _, i := range tenants {
		l := f.lists[i]
		for e := l.Front(); e != nil; e = e.Next() {
			p := e.Value.(trace.PageID)
			pg := f.info[p]
			s.Pages = append(s.Pages, PageSnapshot{
				Page: p, Owner: pg.owner, AgeStart: pg.ageStart, Seq: pg.seq,
			})
		}
	}
	return s
}

// snapshotDense materializes the dense backend's state in the same
// most-recent-first per-tenant order the map backend produces.
func (f *Fast) snapshotDense() FastSnapshot {
	dn := f.dn
	s := FastSnapshot{
		Aging:   dn.aging,
		Misses:  make(map[trace.Tenant]float64, len(dn.m)),
		NextSeq: int(dn.nextSeq),
	}
	for i, m := range dn.m {
		if m != 0 {
			s.Misses[trace.Tenant(i)] = m
		}
	}
	for i := range dn.th {
		// The walk must stop at the recorded tail rather than on a -1 next
		// link: the batched eviction path retires tails without rewriting
		// the new tail's next pointer, so the last resident record's next
		// may point at an evicted page.
		for p := dn.th[i].head; p >= 0; {
			s.Pages = append(s.Pages, PageSnapshot{
				Page:     dn.d.Pages[p],
				Owner:    trace.Tenant(i),
				AgeStart: dn.pr[p].ageStart,
				Seq:      int(dn.pr[p].seq),
			})
			if p == dn.th[i].tail {
				break
			}
			p = dn.pr[p].next
		}
	}
	return s
}

// Restore replaces the instance's state with the snapshot.
func (f *Fast) Restore(s FastSnapshot) error {
	f.Reset()
	f.aging = s.Aging
	f.nextSeq = s.NextSeq
	for i, m := range s.Misses {
		f.m[i] = m
	}
	// Pages arrive most-recent-first per tenant; PushBack preserves order.
	seen := make(map[trace.PageID]bool, len(s.Pages))
	for _, ps := range s.Pages {
		if seen[ps.Page] {
			return fmt.Errorf("core: snapshot lists page %d twice", ps.Page)
		}
		seen[ps.Page] = true
		f.info[ps.Page] = &fastPage{owner: ps.Owner, ageStart: ps.AgeStart, seq: ps.Seq}
		f.elem[ps.Page] = f.tenantList(ps.Owner).PushBack(ps.Page)
	}
	return nil
}

// WriteSnapshot serializes the checkpoint as JSON.
func (f *Fast) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(f.Snapshot())
}

// ReadSnapshot restores the checkpoint from JSON.
func (f *Fast) ReadSnapshot(r io.Reader) error {
	var s FastSnapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	return f.Restore(s)
}

// ResidentPages returns the snapshot's pages as a set, for reseeding the
// engine-side cache contents after a restart.
func (s FastSnapshot) ResidentPages() map[trace.PageID]trace.Tenant {
	out := make(map[trace.PageID]trace.Tenant, len(s.Pages))
	for _, p := range s.Pages {
		out[p.Page] = p.Owner
	}
	return out
}
