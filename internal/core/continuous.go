package core

import (
	"fmt"
	"math"

	"convexcache/internal/trace"
)

// Continuous is ALG-CONT (Figure 2) with the full primal/dual state of the
// paper's analysis: eviction variables x°(p,j), time duals y°_t and interval
// duals z°(p,j). All continuous increases collapse to one discrete raise per
// forced eviction (y_t = the victim's remaining budget), exactly as Section
// 2.5 observes.
//
// It exists to validate the analysis: after a run, CheckInvariants verifies
// the paper's invariant conditions (primal/dual feasibility, complementary
// slackness (2a)-(2b), and gradient condition (3a)) on the recorded
// variables. Use Discrete or Fast for anything performance-sensitive.
//
// Continuous supports the paper's accounting only: eviction-count m(i,t)
// and analytic derivatives.
type Continuous struct {
	opt Options

	// Global time and dual state.
	step int
	cumY float64 // sum of all y_t so far
	m    map[trace.Tenant]float64

	// Per-page state.
	reqCount map[trace.PageID]int     // requests seen, = current interval j+1
	yBase    map[trace.PageID]float64 // cumY at current interval start
	cached   map[trace.PageID]bool
	out      map[trace.PageID]bool // seen, evicted in current interval
	owner    map[trace.PageID]trace.Tenant
	seq      map[trace.PageID]int
	nextSeq  int

	// Pending raise computed in Victim, applied in OnEvict.
	pendingY      float64
	pendingVictim trace.PageID
	havePending   bool

	// Recorded intervals for invariant checking.
	intervals map[intervalKey]*intervalRecord
	yByStep   []float64

	// Recorded per-step primal feasibility data.
	feasibility []feasRecord
}

type intervalKey struct {
	page trace.PageID
	j    int // 0-based interval index
}

type intervalRecord struct {
	owner trace.Tenant
	// x is the eviction indicator x°(p,j).
	x bool
	// z is the accumulated dual z°(p,j).
	z float64
	// sumY is the sum of y over the interval's open time window, filled
	// when the interval closes (next request or end of trace).
	sumY   float64
	closed bool
	// marginalAtSet is f'(m(i(p), t_hat)) recorded when x was set.
	marginalAtSet float64
}

type feasRecord struct {
	step     int
	seen     int // |B(t)|
	outCount int // number of evicted-in-current-interval pages after the step
}

// NewContinuous returns a fresh ALG-CONT instance. CountMisses and
// UseDiscreteDeriv are unsupported (the invariants are stated for the
// paper's accounting) and cause a panic.
func NewContinuous(opt Options) *Continuous {
	if opt.CountMisses || opt.UseDiscreteDeriv {
		panic("core: Continuous supports only the paper's accounting (eviction counts, analytic derivatives)")
	}
	c := &Continuous{opt: opt}
	c.Reset()
	return c
}

// Name implements sim.Policy.
func (c *Continuous) Name() string { return "alg-cont" }

// Reset implements sim.Policy.
func (c *Continuous) Reset() {
	c.step = 0
	c.cumY = 0
	c.m = make(map[trace.Tenant]float64)
	c.reqCount = make(map[trace.PageID]int)
	c.yBase = make(map[trace.PageID]float64)
	c.cached = make(map[trace.PageID]bool)
	c.out = make(map[trace.PageID]bool)
	c.owner = make(map[trace.PageID]trace.Tenant)
	c.seq = make(map[trace.PageID]int)
	c.nextSeq = 0
	c.havePending = false
	c.intervals = make(map[intervalKey]*intervalRecord)
	c.yByStep = nil
	c.feasibility = nil
}

// curKey returns the key of p's current interval.
func (c *Continuous) curKey(p trace.PageID) intervalKey {
	return intervalKey{page: p, j: c.reqCount[p] - 1}
}

// closeInterval finalizes p's current interval at a request boundary
// (before any raise at the current step).
func (c *Continuous) closeInterval(p trace.PageID) {
	if c.reqCount[p] == 0 {
		return // first request: no previous interval
	}
	key := c.curKey(p)
	rec := c.record(key, c.owner[p])
	if rec.closed {
		return // already closed by Victim earlier in this step
	}
	rec.sumY = c.cumY - c.yBase[p]
	rec.closed = true
	delete(c.out, p)
}

func (c *Continuous) record(key intervalKey, owner trace.Tenant) *intervalRecord {
	rec, ok := c.intervals[key]
	if !ok {
		rec = &intervalRecord{owner: owner}
		c.intervals[key] = rec
	}
	return rec
}

// remainingBudget is the victim-selection quantity of ALG-CONT: the cached
// page's gradient slack f'(m+1) - sum(y over its interval so far).
func (c *Continuous) remainingBudget(p trace.PageID) float64 {
	ow := c.owner[p]
	return c.opt.marginal(ow, c.m[ow]) - (c.cumY - c.yBase[p])
}

// OnHit closes the page's interval and opens the next one.
func (c *Continuous) OnHit(step int, r trace.Request) {
	c.noteStep(step)
	c.nextSeq++
	c.closeInterval(r.Page)
	c.reqCount[r.Page]++
	c.yBase[r.Page] = c.cumY
	c.seq[r.Page] = c.nextSeq
}

// Victim closes the incoming page's out-interval, then raises y_t until the
// first cached page's gradient condition becomes tight and returns it.
func (c *Continuous) Victim(step int, r trace.Request) trace.PageID {
	c.noteStep(step)
	// The requested page (if previously seen and out) leaves the "outside
	// cache" set before the raise: z°(p_t, ·) must not grow at its own
	// request step.
	c.closeInterval(r.Page)
	var best trace.PageID
	bestB := math.Inf(1)
	bestSeq := 0
	found := false
	for p := range c.cached {
		b := c.remainingBudget(p)
		if !found || b < bestB || (b == bestB && c.seq[p] < bestSeq) {
			best, bestB, bestSeq, found = p, b, c.seq[p], true
		}
	}
	if !found {
		panic("core: Continuous.Victim called with empty cache")
	}
	c.pendingY = bestB
	c.pendingVictim = best
	c.havePending = true
	return best
}

// OnEvict applies the pending raise: y_t increases, z° of every page outside
// the cache grows at the same rate, and the victim's eviction variable is
// set with its certificate recorded.
func (c *Continuous) OnEvict(step int, p trace.PageID) {
	if !c.havePending || c.pendingVictim != p {
		panic("core: OnEvict without matching Victim")
	}
	c.havePending = false
	y := c.pendingY
	c.cumY += y
	for len(c.yByStep) <= step {
		c.yByStep = append(c.yByStep, 0)
	}
	c.yByStep[step] += y
	// z grows for pages outside the cache; the incoming page was already
	// removed from the out set in Victim, and the victim joins the out set
	// only after the raise.
	for q := range c.out {
		rec := c.record(c.curKey(q), c.owner[q])
		rec.z += y
	}
	// Evict p: set x°(p, j) = 1 and record the tight gradient certificate
	// f'(m(i(p), t_hat)) = f'(m_before + 1).
	ow := c.owner[p]
	key := c.curKey(p)
	rec := c.record(key, ow)
	rec.x = true
	rec.marginalAtSet = c.opt.marginal(ow, c.m[ow])
	c.m[ow]++
	delete(c.cached, p)
	c.out[p] = true
}

// OnInsert places the requested page, opening its next interval after any
// raise at this step.
func (c *Continuous) OnInsert(step int, r trace.Request) {
	c.noteStep(step)
	c.nextSeq++
	// Cold-miss path without eviction: the interval must still be closed.
	c.closeInterval(r.Page)
	c.reqCount[r.Page]++
	c.yBase[r.Page] = c.cumY
	c.cached[r.Page] = true
	c.owner[r.Page] = r.Tenant
	c.seq[r.Page] = c.nextSeq
	c.recordFeasibility(step)
}

// noteStep tracks the current step for Finish().
func (c *Continuous) noteStep(step int) {
	if step+1 > c.step {
		c.step = step + 1
	}
}

// recordFeasibility snapshots the primal constraint data after the step.
func (c *Continuous) recordFeasibility(step int) {
	c.feasibility = append(c.feasibility, feasRecord{
		step:     step,
		seen:     len(c.reqCount),
		outCount: len(c.out),
	})
}

// Finish closes all open intervals at the end of the request sequence. Call
// it once after the simulation, before CheckInvariants.
func (c *Continuous) Finish() {
	for p, n := range c.reqCount {
		if n == 0 {
			continue
		}
		key := c.curKey(p)
		if rec, ok := c.intervals[key]; ok && rec.closed {
			continue
		}
		rec := c.record(key, c.owner[p])
		rec.sumY = c.cumY - c.yBase[p]
		rec.closed = true
	}
}

// Misses returns the internal eviction counter m(i, T).
func (c *Continuous) Misses(i trace.Tenant) float64 { return c.m[i] }

// InvariantReport summarizes the post-run invariant check.
type InvariantReport struct {
	// Intervals is the number of (p, j) variables recorded.
	Intervals int
	// Evictions is the number of x°(p,j) = 1 variables.
	Evictions int
	// Violations lists every invariant violation found.
	Violations []string
}

// Ok reports whether every invariant held.
func (r InvariantReport) Ok() bool { return len(r.Violations) == 0 }

// CheckInvariants verifies, on the recorded run, the invariant conditions of
// Section 2.3:
//
//	(1a) primal feasibility: at most k pages cached after every step,
//	(1c) dual feasibility: y°, z° >= 0,
//	(2a) z°(p,j) > 0 only if x°(p,j) = 1,
//	(2b) tight gradient equality for every evicted interval,
//	(3a) gradient non-negativity for every interval at final miss counts.
//
// k is the cache size the run used; tol is the floating-point slack
// (relative to the magnitudes involved).
func (c *Continuous) CheckInvariants(k int, tol float64) InvariantReport {
	rep := InvariantReport{Intervals: len(c.intervals)}
	// (1a): seen - out <= k after each step, i.e. out >= seen - k.
	for _, fr := range c.feasibility {
		if fr.seen-fr.outCount > k {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"(1a) step %d: %d pages cached > k=%d", fr.step, fr.seen-fr.outCount, k))
		}
	}
	// (1c): y >= 0.
	for s, y := range c.yByStep {
		if y < -tol {
			rep.Violations = append(rep.Violations, fmt.Sprintf("(1c) y_%d = %g < 0", s, y))
		}
	}
	for key, rec := range c.intervals {
		scale := 1 + math.Abs(rec.sumY) + math.Abs(rec.z) + math.Abs(rec.marginalAtSet)
		// (1c): z >= 0.
		if rec.z < -tol*scale {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"(1c) z(%d,%d) = %g < 0", key.page, key.j, rec.z))
		}
		// (2a): z > 0 implies x = 1.
		if rec.z > tol*scale && !rec.x {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"(2a) z(%d,%d) = %g > 0 but x = 0", key.page, key.j, rec.z))
		}
		if rec.x {
			rep.Evictions++
			// (2b): f'(m(i, t_hat)) - sumY + z = 0.
			lhs := rec.marginalAtSet - rec.sumY + rec.z
			if math.Abs(lhs) > tol*scale {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"(2b) interval (%d,%d): |%g - %g + %g| = %g != 0",
					key.page, key.j, rec.marginalAtSet, rec.sumY, rec.z, lhs))
			}
		}
		// (3a): f'(m(i,T)) - sumY + z >= 0.
		gradFinal := c.opt.cost(rec.owner).Deriv(c.m[rec.owner])
		lhs := gradFinal - rec.sumY + rec.z
		if lhs < -tol*(1+math.Abs(gradFinal)+math.Abs(rec.sumY)+math.Abs(rec.z)) {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"(3a) interval (%d,%d): %g - %g + %g = %g < 0",
				key.page, key.j, gradFinal, rec.sumY, rec.z, lhs))
		}
	}
	return rep
}

// DualObjective returns sum_t y_t * (|B(t)| - k) - sum_{p,j} z(p,j), a
// diagnostic mirror of the Lagrangian dual value accumulated by the run.
func (c *Continuous) DualObjective(k int) float64 {
	total := 0.0
	for i, fr := range c.feasibility {
		if fr.step < len(c.yByStep) {
			total += c.yByStep[fr.step] * float64(fr.seen-k)
		}
		_ = i
	}
	for _, rec := range c.intervals {
		total -= rec.z
	}
	return total
}
