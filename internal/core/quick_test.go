package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// TestQuickDiscreteFastEquivalence drives the two implementations with
// randomized workloads, cache sizes, integer-friendly cost families and
// accounting modes, asserting identical eviction sequences throughout.
func TestQuickDiscreteFastEquivalence(t *testing.T) {
	prop := func(seed int64, kRaw uint8, countMisses, discreteDeriv bool) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + int(kRaw%6)
		// Integer-coefficient cost families keep budget arithmetic exact.
		mkCost := func() costfn.Func {
			switch rng.Intn(3) {
			case 0:
				return costfn.Linear{W: float64(1 + rng.Intn(5))}
			case 1:
				return costfn.Monomial{C: float64(1 + rng.Intn(2)), Beta: 2}
			default:
				return costfn.Monomial{C: 1, Beta: 3}
			}
		}
		tenants := 2 + rng.Intn(2)
		costs := make([]costfn.Func, tenants)
		for i := range costs {
			costs[i] = mkCost()
		}
		b := trace.NewBuilder()
		for i := 0; i < 200; i++ {
			tn := rng.Intn(tenants)
			b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(6)))
		}
		tr := b.MustBuild()
		opt := Options{Costs: costs, CountMisses: countMisses, UseDiscreteDeriv: discreteDeriv}
		var dLog, fLog []trace.PageID
		collect := func(out *[]trace.PageID) sim.Observer {
			return func(ev sim.Event) {
				if ev.Evicted >= 0 {
					*out = append(*out, ev.Evicted)
				}
			}
		}
		if _, err := sim.Run(tr, NewDiscrete(opt), sim.Config{K: k, Observer: collect(&dLog)}); err != nil {
			return false
		}
		if _, err := sim.Run(tr, NewFast(opt), sim.Config{K: k, Observer: collect(&fLog)}); err != nil {
			return false
		}
		if len(dLog) != len(fLog) {
			return false
		}
		for i := range dLog {
			if dLog[i] != fLog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMissAccountingIdentity checks hits + misses == T and
// evictions <= misses for random runs of both implementations.
func TestQuickMissAccountingIdentity(t *testing.T) {
	prop := func(seed int64, useFast bool) bool {
		rng := rand.New(rand.NewSource(seed))
		tenants := 1 + rng.Intn(3)
		costs := make([]costfn.Func, tenants)
		for i := range costs {
			costs[i] = costfn.Monomial{C: 1, Beta: 2}
		}
		b := trace.NewBuilder()
		total := 50 + rng.Intn(200)
		for i := 0; i < total; i++ {
			tn := rng.Intn(tenants)
			b.Add(trace.Tenant(tn), trace.PageID(tn*1000+rng.Intn(12)))
		}
		tr := b.MustBuild()
		var p sim.Policy
		if useFast {
			p = NewFast(Options{Costs: costs})
		} else {
			p = NewDiscrete(Options{Costs: costs})
		}
		res, err := sim.Run(tr, p, sim.Config{K: 2 + rng.Intn(5)})
		if err != nil {
			return false
		}
		if res.Hits+res.TotalMisses() != int64(tr.Len()) {
			return false
		}
		return res.TotalEvictions() <= res.TotalMisses()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
