package core

import (
	"math"
	"math/rand"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// randomTrace builds a seeded multi-tenant trace with tenant-local pages.
func randomTrace(seed int64, tenants, pagesPer, length int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder()
	for i := 0; i < length; i++ {
		tn := rng.Intn(tenants)
		b.Add(trace.Tenant(tn), trace.PageID(tn*1000+rng.Intn(pagesPer)))
	}
	return b.MustBuild()
}

// evictionLog runs a policy and returns the eviction sequence.
func evictionLog(t *testing.T, tr *trace.Trace, p sim.Policy, k int) []trace.PageID {
	t.Helper()
	var evs []trace.PageID
	_, err := sim.Run(tr, p, sim.Config{K: k, Observer: func(ev sim.Event) {
		if ev.Evicted >= 0 {
			evs = append(evs, ev.Evicted)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

var testCostSets = map[string][]costfn.Func{
	"linear-unit":  {costfn.Linear{W: 1}, costfn.Linear{W: 1}, costfn.Linear{W: 1}},
	"linear-mixed": {costfn.Linear{W: 1}, costfn.Linear{W: 3}, costfn.Linear{W: 7}},
	"quadratic":    {costfn.Monomial{C: 1, Beta: 2}, costfn.Monomial{C: 1, Beta: 2}, costfn.Monomial{C: 2, Beta: 2}},
	"mixed-convex": {costfn.Linear{W: 2}, costfn.Monomial{C: 1, Beta: 2}, costfn.Monomial{C: 1, Beta: 3}},
}

func TestDiscreteFastEquivalence(t *testing.T) {
	for name, costs := range testCostSets {
		for seed := int64(0); seed < 6; seed++ {
			tr := randomTrace(seed, 3, 8, 400)
			for _, k := range []int{2, 4, 7} {
				opt := Options{Costs: costs}
				dLog := evictionLog(t, tr, NewDiscrete(opt), k)
				fLog := evictionLog(t, tr, NewFast(opt), k)
				if len(dLog) != len(fLog) {
					t.Fatalf("%s seed=%d k=%d: eviction counts differ: %d vs %d",
						name, seed, k, len(dLog), len(fLog))
				}
				for i := range dLog {
					if dLog[i] != fLog[i] {
						t.Fatalf("%s seed=%d k=%d: eviction %d differs: discrete=%d fast=%d",
							name, seed, k, i, dLog[i], fLog[i])
					}
				}
			}
		}
	}
}

func TestDiscreteFastEquivalenceCountMisses(t *testing.T) {
	costs := testCostSets["quadratic"]
	for seed := int64(0); seed < 4; seed++ {
		tr := randomTrace(100+seed, 3, 6, 300)
		opt := Options{Costs: costs, CountMisses: true}
		dLog := evictionLog(t, tr, NewDiscrete(opt), 4)
		fLog := evictionLog(t, tr, NewFast(opt), 4)
		if len(dLog) != len(fLog) {
			t.Fatalf("seed=%d: eviction counts differ: %d vs %d", seed, len(dLog), len(fLog))
		}
		for i := range dLog {
			if dLog[i] != fLog[i] {
				t.Fatalf("seed=%d: eviction %d differs: %d vs %d", seed, i, dLog[i], fLog[i])
			}
		}
	}
}

func TestContinuousDiscreteEquivalence(t *testing.T) {
	for name, costs := range testCostSets {
		for seed := int64(0); seed < 4; seed++ {
			tr := randomTrace(200+seed, 3, 6, 250)
			opt := Options{Costs: costs}
			dLog := evictionLog(t, tr, NewDiscrete(opt), 4)
			cLog := evictionLog(t, tr, NewContinuous(opt), 4)
			if len(dLog) != len(cLog) {
				t.Fatalf("%s seed=%d: eviction counts differ: %d vs %d", name, seed, len(dLog), len(cLog))
			}
			for i := range dLog {
				if dLog[i] != cLog[i] {
					t.Fatalf("%s seed=%d: eviction %d differs: discrete=%d cont=%d",
						name, seed, i, dLog[i], cLog[i])
				}
			}
		}
	}
}

func TestContinuousInvariantsHoldWithFlush(t *testing.T) {
	for name, costs := range testCostSets {
		for seed := int64(0); seed < 4; seed++ {
			base := randomTrace(300+seed, 3, 6, 200)
			k := 4
			flushed, dummy, err := trace.WithFlush(base, k)
			if err != nil {
				t.Fatal(err)
			}
			costsWithDummy := append(append([]costfn.Func{}, costs...), nil)
			costsWithDummy[dummy] = FlushCost()
			c := NewContinuous(Options{Costs: costsWithDummy})
			if _, err := sim.Run(flushed, c, sim.Config{K: k}); err != nil {
				t.Fatal(err)
			}
			c.Finish()
			rep := c.CheckInvariants(k, 1e-7)
			if !rep.Ok() {
				for _, v := range rep.Violations {
					t.Errorf("%s seed=%d: %s", name, seed, v)
				}
				t.Fatalf("%s seed=%d: %d invariant violations (%d intervals, %d evictions)",
					name, seed, len(rep.Violations), rep.Intervals, rep.Evictions)
			}
			if rep.Evictions == 0 {
				t.Fatalf("%s seed=%d: run had no evictions; test is vacuous", name, seed)
			}
		}
	}
}

func TestSingleTenantLinearEqualsLRU(t *testing.T) {
	// With one tenant and linear cost, ALG-DISCRETE's budgets order pages
	// by last request, i.e. it degenerates to LRU exactly.
	for seed := int64(0); seed < 5; seed++ {
		tr := randomTrace(400+seed, 1, 10, 500)
		opt := Options{Costs: []costfn.Func{costfn.Linear{W: 1}}}
		for _, k := range []int{2, 3, 5} {
			dLog := evictionLog(t, tr, NewDiscrete(opt), k)
			lLog := evictionLog(t, tr, policy.NewLRU(), k)
			if len(dLog) != len(lLog) {
				t.Fatalf("seed=%d k=%d: eviction counts differ", seed, k)
			}
			for i := range dLog {
				if dLog[i] != lLog[i] {
					t.Fatalf("seed=%d k=%d: eviction %d: alg=%d lru=%d", seed, k, i, dLog[i], lLog[i])
				}
			}
		}
	}
}

func TestLinearCostsMatchGreedyDual(t *testing.T) {
	// With linear weights, ALG-DISCRETE is Young's greedy-dual rule.
	// Integer weights keep every budget exactly representable, so the
	// eviction sequences must coincide victim by victim.
	weights := []float64{1, 3, 7}
	costs := []costfn.Func{costfn.Linear{W: weights[0]}, costfn.Linear{W: weights[1]}, costfn.Linear{W: weights[2]}}
	for seed := int64(0); seed < 5; seed++ {
		tr := randomTrace(500+seed, 3, 7, 400)
		aLog := evictionLog(t, tr, NewDiscrete(Options{Costs: costs}), 5)
		gLog := evictionLog(t, tr, policy.NewGreedyDual(weights), 5)
		if len(aLog) != len(gLog) {
			t.Fatalf("seed=%d: eviction counts differ: %d vs %d", seed, len(aLog), len(gLog))
		}
		for i := range aLog {
			if aLog[i] != gLog[i] {
				t.Fatalf("seed=%d: eviction %d: alg=%d greedy-dual=%d", seed, i, aLog[i], gLog[i])
			}
		}
	}
	// Fractional weights may flip exact ties through floating-point drift
	// in the reference implementation's accumulated subtractions; the miss
	// counts must still agree within a whisker.
	fw := []float64{1.37, 2.91, 0.53}
	fcosts := []costfn.Func{costfn.Linear{W: fw[0]}, costfn.Linear{W: fw[1]}, costfn.Linear{W: fw[2]}}
	for seed := int64(0); seed < 5; seed++ {
		tr := randomTrace(500+seed, 3, 7, 400)
		alg := sim.MustRun(tr, NewDiscrete(Options{Costs: fcosts}), sim.Config{K: 5})
		gd := sim.MustRun(tr, policy.NewGreedyDual(fw), sim.Config{K: 5})
		diff := alg.TotalMisses() - gd.TotalMisses()
		if diff < -3 || diff > 3 {
			t.Errorf("seed=%d: alg misses %d vs greedy-dual %d (tie drift exceeded)", seed, alg.TotalMisses(), gd.TotalMisses())
		}
	}
}

func TestConvexCostProtectsHighPressureTenant(t *testing.T) {
	// Tenant 0 has quadratic cost and a page that is periodically reused;
	// tenant 1 floods with linear-cheap single-use pages. As tenant 0's
	// misses mount, its marginal grows and its pages must be protected,
	// unlike under LRU.
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 0.5}}
	b := trace.NewBuilder()
	flood := 0
	for round := 0; round < 50; round++ {
		b.Add(0, trace.PageID(round%4)) // tenant 0 working set of 4 pages
		for j := 0; j < 3; j++ {
			flood++
			b.Add(1, trace.PageID(1000+flood)) // single-use flood
		}
	}
	tr := b.MustBuild()
	k := 5
	alg := sim.MustRun(tr, NewDiscrete(Options{Costs: costs}), sim.Config{K: k})
	lru := sim.MustRun(tr, policy.NewLRU(), sim.Config{K: k})
	algCost := alg.Cost(costs)
	lruCost := lru.Cost(costs)
	if algCost >= lruCost {
		t.Errorf("ALG cost %g not better than LRU %g on convex-pressure workload", algCost, lruCost)
	}
}

func TestBudgetsStayNonNegative(t *testing.T) {
	// The continuous argument implies cached budgets never go negative:
	// y_t is the minimum remaining budget. Verify on random runs for both
	// implementations.
	costs := testCostSets["mixed-convex"]
	tr := randomTrace(77, 3, 6, 300)
	cached := make(map[trace.PageID]bool)
	check := func(name string, budget func(trace.PageID) (float64, bool)) sim.Observer {
		return func(ev sim.Event) {
			if ev.Evicted >= 0 {
				delete(cached, ev.Evicted)
			}
			if ev.Miss {
				cached[ev.Req.Page] = true
			}
			for p := range cached {
				b, ok := budget(p)
				if !ok {
					t.Fatalf("%s: cached page %d missing from policy state", name, p)
				}
				if b < -1e-9 {
					t.Fatalf("%s: page %d budget %g < 0 at step %d", name, p, b, ev.Step)
				}
			}
		}
	}
	d := NewDiscrete(Options{Costs: costs})
	cached = make(map[trace.PageID]bool)
	sim.MustRun(tr, d, sim.Config{K: 4, Observer: check("discrete", d.Budget)})
	f := NewFast(Options{Costs: costs})
	cached = make(map[trace.PageID]bool)
	sim.MustRun(tr, f, sim.Config{K: 4, Observer: check("fast", f.Budget)})
}

func TestDiscreteDerivModeRuns(t *testing.T) {
	// Section 2.5: with discrete differences the algorithm applies to
	// arbitrary cost functions. Use a piecewise-linear SLA where analytic
	// and discrete derivatives differ around the breakpoint.
	slaA, err := costfn.SLARefund(5, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	costs := []costfn.Func{slaA, costfn.Linear{W: 1}}
	tr := randomTrace(88, 2, 6, 300)
	cont := sim.MustRun(tr, NewDiscrete(Options{Costs: costs}), sim.Config{K: 4})
	disc := sim.MustRun(tr, NewDiscrete(Options{Costs: costs, UseDiscreteDeriv: true}), sim.Config{K: 4})
	if cont.TotalMisses() == 0 || disc.TotalMisses() == 0 {
		t.Fatal("vacuous run")
	}
	// Both modes must serve the trace; totals may differ but stay within
	// the request count.
	if disc.TotalMisses() > int64(tr.Len()) {
		t.Errorf("discrete-deriv misses out of range")
	}
}

func TestAblationVariantsDiffer(t *testing.T) {
	// Each ablation must change behaviour on at least one workload. Use a
	// hit-heavy multi-tenant trace with convex costs.
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 1}, costfn.Monomial{C: 1, Beta: 3}}
	base := Options{Costs: costs}
	variants := map[string]Options{
		"no-aging":      {Costs: costs, DisableAging: true},
		"no-correction": {Costs: costs, DisableOwnerCorrection: true},
		"no-refresh":    {Costs: costs, DisableHitRefresh: true},
	}
	for name, opt := range variants {
		differs := false
		for seed := int64(0); seed < 8 && !differs; seed++ {
			tr := randomTrace(600+seed, 3, 6, 400)
			a := evictionLog(t, tr, NewDiscrete(base), 4)
			v := evictionLog(t, tr, NewDiscrete(opt), 4)
			if len(a) != len(v) {
				differs = true
				break
			}
			for i := range a {
				if a[i] != v[i] {
					differs = true
					break
				}
			}
		}
		if !differs {
			t.Errorf("ablation %s produced identical behaviour on all seeds", name)
		}
	}
}

func TestResetReproducible(t *testing.T) {
	costs := testCostSets["mixed-convex"]
	tr := randomTrace(909, 3, 6, 300)
	for _, mk := range []func() sim.Policy{
		func() sim.Policy { return NewDiscrete(Options{Costs: costs}) },
		func() sim.Policy { return NewFast(Options{Costs: costs}) },
		func() sim.Policy { return NewContinuous(Options{Costs: costs}) },
	} {
		p := mk()
		first := sim.MustRun(tr, p, sim.Config{K: 4})
		p.Reset()
		second := sim.MustRun(tr, p, sim.Config{K: 4})
		if first.TotalMisses() != second.TotalMisses() {
			t.Errorf("%s: not reproducible after Reset", p.Name())
		}
	}
}

func TestMissesAccessors(t *testing.T) {
	costs := []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 1}}
	tr := randomTrace(13, 2, 5, 200)
	d := NewDiscrete(Options{Costs: costs})
	res := sim.MustRun(tr, d, sim.Config{K: 3})
	// Internal counter in eviction mode equals the engine's eviction
	// counts.
	for i := 0; i < 2; i++ {
		if got, want := d.Misses(trace.Tenant(i)), float64(res.Evictions[i]); got != want {
			t.Errorf("tenant %d: internal m=%g, engine evictions=%g", i, got, want)
		}
	}
	dm := NewDiscrete(Options{Costs: costs, CountMisses: true})
	resM := sim.MustRun(tr, dm, sim.Config{K: 3})
	for i := 0; i < 2; i++ {
		if got, want := dm.Misses(trace.Tenant(i)), float64(resM.Misses[i]); got != want {
			t.Errorf("tenant %d (miss mode): internal m=%g, engine misses=%g", i, got, want)
		}
	}
}

func TestContinuousPanicsOnUnsupportedModes(t *testing.T) {
	for _, opt := range []Options{{CountMisses: true}, {UseDiscreteDeriv: true}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewContinuous(%+v) did not panic", opt)
				}
			}()
			NewContinuous(opt)
		}()
	}
}

func TestFlushCostIsEffectivelyInfinite(t *testing.T) {
	f := FlushCost()
	if f.Deriv(0) < 1e17 {
		t.Errorf("flush marginal too small: %g", f.Deriv(0))
	}
	if math.IsInf(f.Deriv(0), 1) {
		t.Errorf("flush marginal must be finite to keep arithmetic sane")
	}
}

func TestFlushedRunEvictsAllRealPages(t *testing.T) {
	// After the dummy flush, eviction counts equal miss counts for every
	// real tenant (the paper's accounting identity).
	costs := testCostSets["quadratic"]
	base := randomTrace(321, 3, 5, 200)
	k := 4
	flushed, dummy, err := trace.WithFlush(base, k)
	if err != nil {
		t.Fatal(err)
	}
	cs := append(append([]costfn.Func{}, costs...), nil)
	cs[dummy] = FlushCost()
	res := sim.MustRun(flushed, NewDiscrete(Options{Costs: cs}), sim.Config{K: k})
	for i := 0; i < 3; i++ {
		if res.Misses[i] != res.Evictions[i] {
			t.Errorf("tenant %d: misses %d != evictions %d after flush", i, res.Misses[i], res.Evictions[i])
		}
	}
	if res.Evictions[dummy] != 0 {
		t.Errorf("dummy tenant evicted %d times", res.Evictions[dummy])
	}
}
