package core

import (
	"container/list"
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Fast is the production implementation of the paper's algorithm.
//
// It relies on the following reformulation of Figure 3's budget dynamics:
// the budget of a cached page p always equals
//
//	B(p) = marginal(i(p), m_i) - (A - ageStart(p))
//
// where marginal(i, m) = f_i'(m+1), A is the running sum of evicted budgets
// (the global aging), and ageStart(p) is the value of A at p's last request.
// The subtraction step of Figure 3 is the growth of A; the same-owner
// correction is absorbed by evaluating marginal at the owner's current
// counter; the hit refresh resets ageStart.
//
// Because A is monotone, within a tenant the minimum-budget page is always
// the least-recently-requested one, so a per-tenant recency list suffices
// and an eviction costs O(#tenants).
//
// Fast has two interchangeable state backends. When driven through sim.Run
// on an indexable trace it implements sim.BatchPolicy: the engine hands it
// runs of sim.BatchSize requests and the whole hit/miss/evict/insert loop
// runs here with concrete types over the shared slot table. Per-page and
// per-tenant state is laid out hot/cold (see denseCore) so the hit path
// touches two cache lines and the victim scan one line per tenant; the
// request loop is allocation-free. Direct drivers (the lower-bound
// adversary, the buffer pool, the hierarchy and multipool substrates) use
// the original map-backed sim.Policy methods; the two backends never mix
// within a run.
//
// The dense state machine itself lives in denseCore, which is shared with
// the open-world Open front end (the live cache service's shard engine):
// one step function, three drivers — closed-world replay here, live serving
// there, and the batched loop over both.
type Fast struct {
	opt Options

	aging float64
	m     map[trace.Tenant]float64
	// lists[i] holds tenant i's cached pages, front = most recent.
	lists map[trace.Tenant]*list.List
	elem  map[trace.PageID]*list.Element
	info  map[trace.PageID]*fastPage

	nextSeq int

	dn *fastDense
}

type fastPage struct {
	owner    trace.Tenant
	ageStart float64
	seq      int
}

// tenantHot packs the per-tenant state the hit path and the victim scan
// touch into one 40-byte record: the cached marginal(i, m[i]), a mirror of
// the tail page's aging origin so the victim scan never chases a pointer
// into the page array, the precomputed victim-scan key (see below), the
// recency-list endpoints, a mirror of the tail's predecessor so an eviction
// never reads the victim's (cold, by definition least-recently-touched)
// page record, and whether the tenant's marginal is constant (linear cost,
// recompute skipped entirely).
//
// key caches marg + tailAge. Budgets are compared, never consumed, by the
// victim scan, and for any two tenants
//
//	marg_i - (A - tailAge_i) < marg_j - (A - tailAge_j)
//	  <=>  marg_i + tailAge_i < marg_j + tailAge_j
//
// in exact arithmetic: the shared aging term cancels. Comparing the cached
// key therefore selects the same victim while making the scan pure compares
// of precomputed values with no dependence on the aging counter — which
// matters because the aging update is a serial FP chain across evictions,
// and with the key the scan no longer waits on it. The key is recomputed
// (one add) wherever marg or tailAge changes. All victim paths (batched,
// per-step, open-world, map) compare the same fl(marg + tailAge) so the
// backends stay bit-identical; when A grows so large that ulp-level rounding
// makes keys collide, the sequence tie-break (global LRU order) decides,
// identically everywhere.
type tenantHot struct {
	marg       float64
	tailAge    float64 // pr[tail].ageStart mirror, valid while tail >= 0
	key        float64 // marg + tailAge, the victim-scan comparison key
	head, tail int32   // most/least recently requested cached page, -1 empty
	tailPrev   int32   // pr[tail].prev mirror, valid while tail >= 0
	constMarg  bool
}

// pageRec packs all per-page state — the aging origin, the tie-break
// sequence, the intrusive LRU links, the owner, and the residency flag of
// the batched path — into exactly 32 bytes, two per cache line. The batched
// request loop therefore resolves a probe (resident?), the owner lookup and
// the insert bookkeeping for a page with a single random cache line, where
// the first cut of the dense path touched three arrays (page->slot, owners,
// ages+links) per request.
type pageRec struct {
	ageStart float64
	seq      int64
	// prev/next are the intrusive per-tenant LRU links, -1 = nil.
	prev, next int32
	// owner is the page's tenant: mirrored from trace.Dense.Owners in the
	// closed-world backend, assigned at first touch in the open-world one
	// (-1 until then).
	owner int32
	// resident is 1 while the page is cached; maintained by the batched and
	// open-world loops, which own residency (the per-step loop keeps it in
	// the engine's sim.SlotTable, but mirrors it here too).
	resident int32
}

// denseCore is the struct-of-arrays state machine of the dense path, split
// hot/cold: th holds everything the victim scan reads (one line per two
// tenants), pr holds the per-page records the hit and insert paths write,
// and the per-tenant miss counters m stay cold — they are read only when a
// marginal is recomputed. All page-indexed state uses a dense page index:
// the trace.Dense index in the closed-world backend (fastDense), the
// residue-class slot (page - base)/stride in the open-world one (Open).
// Nothing in the core references a trace, which is exactly what lets the
// live service drive it with pages it has never seen before.
type denseCore struct {
	aging float64

	// Hot per-tenant state, indexed by tenant id.
	th []tenantHot
	// Cold per-tenant state: the miss counter m(i) and the resolved cost
	// functions, read only when a marginal is recomputed.
	m  []float64
	fs []costfn.Func
	// cb devirtualizes the dominant marginal recompute: for a true-derivative
	// Monomial with Beta == 2 it holds C*Beta, and margAt evaluates
	// cb*(m+1) directly — bit-identical to Monomial.Deriv's quadratic fast
	// path, which multiplies (C*Beta)*x left to right — skipping the
	// interface dispatch an eviction would otherwise pay. Zero selects the
	// generic path (a C == 0 monomial has a zero marginal either way).
	cb []float64

	// Per-page state.
	pr []pageRec

	// Residency bookkeeping of the batched and open-world paths: occupied
	// page count and capacity (the per-step path reads neither; the engine's
	// slot table tracks them there).
	used, k int

	nextSeq int64

	// Option flags hoisted out of Options so the hot loop never copies the
	// Options struct.
	discrete    bool
	countMisses bool
	noCursor    bool

	// Incremental victim-argmin cursor. While vTen >= 0 the following holds:
	// th[vTen].tail >= 0, vKey == th[vTen].key, and
	//
	//	vKey < vSecond <= min over every other nonempty tenant's key,
	//
	// i.e. vTen is the UNIQUE strict minimum, so the victim is th[vTen].tail
	// with no scan and no sequence tie-break (strictness rules ties out).
	// Every key-changing event calls noteKey, which either tightens the
	// cached bounds or invalidates the cursor; the next eviction's full scan
	// re-arms it. vSecond is a lower bound that only ever needs to hold for
	// the keys it has seen: keys can silently grow past it (fine — the bound
	// stays valid) but never silently shrink below it.
	vTen    int32
	vKey    float64
	vSecond float64

	// prefetchSink absorbs the batched loop's prefetch pass so it is not
	// dead-code-eliminated; the value is meaningless.
	prefetchSink int32
}

// fastDense is the closed-world dense backend: the shared core plus the
// trace view that maps dense indices back to page ids (needed only by
// snapshots and test accessors — the step paths run entirely on the core).
type fastDense struct {
	d *trace.Dense
	denseCore
}

// margAt recomputes tenant i's marginal from its current miss counter. The
// arithmetic is identical to Options.marginal, but the cost function is
// pre-resolved and the mode branch pre-hoisted, so an eviction pays one
// interface dispatch instead of an Options copy plus default resolution.
func (s *denseCore) margAt(i trace.Tenant) float64 {
	if cb := s.cb[i]; cb != 0 {
		return cb * (s.m[i] + 1)
	}
	if s.discrete {
		return costfn.DiscreteDeriv(s.fs[i], s.m[i])
	}
	return s.fs[i].Deriv(s.m[i] + 1)
}

// initTenants (re)initializes the per-tenant state from the options. The
// th/m/fs/cb slices must already have at least nTenants entries.
func (s *denseCore) initTenants(opt Options, nTenants, k int) {
	s.aging = 0
	s.nextSeq = 0
	s.used = 0
	s.k = k
	s.discrete = opt.UseDiscreteDeriv
	s.countMisses = opt.CountMisses
	s.noCursor = opt.NoVictimCursor ||
		(!opt.ForceVictimCursor && nTenants < victimCursorMinTenants)
	s.vTen = -1
	for i := 0; i < nTenants; i++ {
		s.m[i] = 0
		s.fs[i] = opt.cost(trace.Tenant(i))
		// A linear tenant's derivative never moves, so its marginal is
		// computed once here and the per-eviction recompute skipped. (The
		// discrete finite difference of a linear cost is not bit-stable for
		// large counters, so the shortcut applies to true derivatives only.)
		_, lin := s.fs[i].(costfn.Linear)
		s.cb[i] = 0
		if mono, ok := s.fs[i].(costfn.Monomial); ok && !s.discrete && mono.Beta == 2 {
			s.cb[i] = mono.C * mono.Beta
		}
		marg := opt.marginal(trace.Tenant(i), 0)
		s.th[i] = tenantHot{
			marg:      marg,
			key:       marg, // tailAge is zero until the first insert
			head:      -1,
			tail:      -1,
			tailPrev:  -1,
			constMarg: lin && !s.discrete,
		}
	}
}

// NewFast returns a fresh Fast instance.
func NewFast(opt Options) *Fast {
	f := &Fast{opt: opt}
	f.Reset()
	return f
}

// Name implements sim.Policy.
func (f *Fast) Name() string { return "alg-fast" }

// Reset implements sim.Policy.
func (f *Fast) Reset() {
	f.aging = 0
	f.m = make(map[trace.Tenant]float64)
	f.lists = make(map[trace.Tenant]*list.List)
	f.elem = make(map[trace.PageID]*list.Element)
	f.info = make(map[trace.PageID]*fastPage)
	f.nextSeq = 0
	f.dn = nil
}

// PrepareDense implements sim.DensePolicy. It (re)initializes the dense
// backend for trace view d, reusing the previous run's slices when the
// shapes match so repeated runs over the same trace allocate nothing new.
func (f *Fast) PrepareDense(d *trace.Dense, k int) bool {
	nPages := d.NumPages()
	nTenants := d.Tenants
	s := f.dn
	if s == nil || len(s.pr) < nPages || len(s.th) < nTenants {
		s = &fastDense{}
		s.th = make([]tenantHot, nTenants)
		s.m = make([]float64, nTenants)
		s.fs = make([]costfn.Func, nTenants)
		s.cb = make([]float64, nTenants)
		s.pr = make([]pageRec, nPages)
		f.dn = s
	}
	s.d = d
	s.initTenants(f.opt, nTenants, k)
	for p := 0; p < nPages; p++ {
		s.pr[p] = pageRec{prev: -1, next: -1, owner: int32(d.Owners[p])}
	}
	return true
}

// victimCursorMinTenants is the auto-arm floor: below this many tenants the
// full victim scan is a handful of compares and the cursor's per-key-event
// bookkeeping costs more than the scans it saves, so the cursor stays
// disarmed unless Options.ForceVictimCursor insists (differential tests).
// Victim selection is identical either way — this is purely a perf switch.
const victimCursorMinTenants = 16

// noteKey maintains the victim cursor across a key-changing event on tenant
// i: a key write, or the tenant's list becoming (non)empty. Call it AFTER
// the tenant's th record reflects the change. Each case either tightens the
// cached (vKey, vSecond) bounds — preserving the strict-argmin invariant —
// or invalidates the cursor, and the next eviction re-arms it with a scan.
// Call sites guard on s.vTen >= 0 so a disarmed cursor costs nothing.
func (s *denseCore) noteKey(i trace.Tenant) {
	v := s.vTen
	if v < 0 {
		return
	}
	t := &s.th[i]
	if int32(i) == v {
		// The champion moved. Still strictly below everyone else's lower
		// bound: track it. At or above the bound (or gone): a tie or a new
		// minimum is possible, rescan.
		if t.tail >= 0 && t.key < s.vSecond {
			s.vKey = t.key
		} else {
			s.vTen = -1
		}
		return
	}
	if t.tail < 0 || t.key >= s.vSecond {
		// An empty list never competes; a key at or above vSecond keeps the
		// bound valid (bounds may only be undercut, never outgrown).
		return
	}
	if t.key > s.vKey {
		s.vSecond = t.key
	} else {
		// At or below the champion's key: new minimum or an exact tie —
		// either way the cursor can no longer certify a unique argmin.
		s.vTen = -1
	}
}

// pushFront links page p at the front of its owner's recency list. It must
// run after p's pageRec age fields are current, so the tailAge mirror picks
// up the fresh aging origin when p becomes the tail of an empty list.
//
// The body is deliberately call-free so it stays within the inline budget
// (a single call node costs most of it): when the push changes the tail —
// exactly when the list was empty — the CALLER must fire the victim-cursor
// hook, `if wasEmpty && s.vTen >= 0 { s.noteKey(i) }`, with wasEmpty
// captured before the call.
func (s *denseCore) pushFront(i trace.Tenant, p int32) {
	t := &s.th[i]
	h := t.head
	s.pr[p].prev = -1
	s.pr[p].next = h
	if h >= 0 {
		s.pr[h].prev = p
		if h == t.tail {
			// Two-element list now: p is the tail's predecessor.
			t.tailPrev = p
		}
	} else {
		t.tail = p
		t.tailAge = s.pr[p].ageStart
		t.key = t.marg + t.tailAge
		t.tailPrev = -1
	}
	t.head = p
}

// pushBack links page p at the BACK of its owner's recency list — the
// restore path's primitive: snapshots list pages most-recent-first, so
// appending preserves recency order. p's pageRec age fields must be current.
func (s *denseCore) pushBack(i trace.Tenant, p int32) {
	t := &s.th[i]
	tl := t.tail
	s.pr[p].prev = tl
	s.pr[p].next = -1
	if tl >= 0 {
		s.pr[tl].next = p
		t.tailPrev = tl
	} else {
		t.head = p
		t.tailPrev = -1
	}
	t.tail = p
	t.tailAge = s.pr[p].ageStart
	t.key = t.marg + t.tailAge
	if s.vTen >= 0 {
		s.noteKey(i)
	}
}

// unlink removes page p from its owner's recency list, refreshing the
// tailAge/tailPrev mirrors when the tail or its predecessor moves.
//
// Tail next pointers may be stale: popTail retires a tail without clearing
// its predecessor's next link, so a page that is currently the tail must be
// treated as having no successor regardless of what its record says.
//
// Call-free for inlinability, like pushFront: when p was the tail the
// CALLER must fire the victim-cursor hook,
// `if wasTail && s.vTen >= 0 { s.noteKey(i) }`, with wasTail captured
// before the call.
func (s *denseCore) unlink(i trace.Tenant, p int32) {
	t := &s.th[i]
	pr, nx := s.pr[p].prev, s.pr[p].next
	if p == t.tail {
		nx = -1
	}
	if pr >= 0 {
		s.pr[pr].next = nx
	} else {
		t.head = nx
	}
	if nx >= 0 {
		s.pr[nx].prev = pr
		if p == t.tailPrev {
			t.tailPrev = pr
		}
	} else {
		t.tail = pr
		if pr >= 0 {
			t.tailAge = s.pr[pr].ageStart
			t.key = t.marg + t.tailAge
			t.tailPrev = s.pr[pr].prev
		}
	}
	s.pr[p].prev = -1
	s.pr[p].next = -1
}

// popTail is unlink specialized for the eviction path, where the page being
// removed is by construction its owner's tail (the victim scan only ever
// nominates tails). The new tail is the mirrored tailPrev, so the victim's
// cold page record is never read, and the single read of the new tail's
// record refreshes both mirrors — its stale next link is left in place and
// neutralized by unlink's tail guard. Call-free for inlinability: the tail
// always changes here, so the CALLER must fire the victim-cursor hook,
// `if s.vTen >= 0 { s.noteKey(i) }`, after the call.
func (s *denseCore) popTail(i trace.Tenant, p int32) {
	t := &s.th[i]
	nt := t.tailPrev
	t.tail = nt
	if nt >= 0 {
		t.tailAge = s.pr[nt].ageStart
		t.key = t.marg + t.tailAge
		t.tailPrev = s.pr[nt].prev
	} else {
		t.head = -1
	}
}

// DenseHit implements sim.DensePolicy: refresh recency and the aging origin.
func (f *Fast) DenseHit(step int, page int32) {
	s := &f.dn.denseCore
	s.nextSeq++
	i := trace.Tenant(s.pr[page].owner)
	s.pr[page].ageStart = s.aging
	s.pr[page].seq = s.nextSeq
	if s.th[i].head != page {
		wasTail := s.th[i].tail == page
		s.unlink(i, page)
		s.pushFront(i, page)
		// The re-push lands in a list that stayed nonempty, so only the
		// unlink can have moved the tail (and with it the victim key).
		if wasTail && s.vTen >= 0 {
			s.noteKey(i)
		}
	} else if s.th[i].tail == page {
		// Single-page list: the tail's aging origin just moved.
		s.th[i].tailAge = s.aging
		s.th[i].key = s.th[i].marg + s.aging
		if s.vTen >= 0 {
			s.noteKey(i)
		}
	}
}

// DenseInsert implements sim.DensePolicy: register the page with the current
// marginal as its budget.
func (f *Fast) DenseInsert(step int, page int32) {
	s := &f.dn.denseCore
	s.nextSeq++
	i := trace.Tenant(s.pr[page].owner)
	if s.countMisses {
		s.m[i]++
		if !s.th[i].constMarg {
			s.th[i].marg = s.margAt(i)
			// The key tracks the marginal; pushFront refreshes it again if
			// this insert lands in an empty list and moves the tail.
			s.th[i].key = s.th[i].marg + s.th[i].tailAge
			if s.th[i].tail >= 0 {
				if s.vTen >= 0 {
					s.noteKey(i)
				}
			}
		}
	}
	s.pr[page].ageStart = s.aging
	s.pr[page].seq = s.nextSeq
	s.pr[page].resident = 1
	wasEmpty := s.th[i].head < 0
	s.pushFront(i, page)
	if wasEmpty && s.vTen >= 0 {
		s.noteKey(i)
	}
}

// victim nominates the eviction victim: the cursor's cached strict argmin
// when valid (no scan, no tie-break — strictness rules ties out), otherwise
// a full scan that re-arms the cursor. Returns (-1, -1) when every tenant
// list is empty.
func (s *denseCore) victim() (trace.Tenant, int32) {
	if s.noCursor {
		return s.victimScanPlain()
	}
	if v := s.vTen; v >= 0 {
		return trace.Tenant(v), s.th[v].tail
	}
	return s.victimScan()
}

// victimScanPlain is the disarmed-cursor scan: the same minimum-key /
// sequence-tie-break selection as victimScan, without the runner-up
// tracking the cursor arming needs — while the cursor is off (few tenants,
// or NoVictimCursor) those extra compares would buy nothing.
func (s *denseCore) victimScanPlain() (trace.Tenant, int32) {
	best := int32(-1)
	bestK := 0.0
	bestSeq := int64(0)
	haveSeq := false
	var bestT trace.Tenant
	for i := range s.th {
		t := &s.th[i]
		p := t.tail
		if p < 0 {
			continue
		}
		k := t.key
		if best < 0 || k < bestK {
			best, bestK, bestT = p, k, trace.Tenant(i)
			haveSeq = false
		} else if k == bestK {
			if !haveSeq {
				bestSeq = s.pr[best].seq
				haveSeq = true
			}
			if s.pr[p].seq < bestSeq {
				best, bestSeq, bestT = p, s.pr[p].seq, trace.Tenant(i)
			}
		}
	}
	return bestT, best
}

// victimScan is the full victim scan: a linear pass over the flat tenant
// array comparing each tenant's least-recently-requested page by the
// precomputed key (see tenantHot) — no map iteration, no Deriv calls, no
// arithmetic, and no dependent load into the page array except on exact key
// ties, where the sequence tie-break is resolved lazily. The scan also
// tracks the runner-up key; when the winner is strictly below it the cursor
// is armed, so the next evictions skip the scan entirely until a key event
// disturbs the order. Returns (-1, -1) when every tenant list is empty.
func (s *denseCore) victimScan() (trace.Tenant, int32) {
	best := int32(-1)
	bestK := 0.0
	// second is the smallest key seen outside the current winner, including
	// exact ties with it; haveSecond gates its first assignment.
	second := 0.0
	haveSecond := false
	bestSeq := int64(0)
	haveSeq := false
	var bestT trace.Tenant
	for i := range s.th {
		t := &s.th[i]
		p := t.tail
		if p < 0 {
			continue
		}
		k := t.key
		if best < 0 {
			best, bestK, bestT = p, k, trace.Tenant(i)
			haveSeq = false
			continue
		}
		if k < bestK {
			second, haveSecond = bestK, true
			best, bestK, bestT = p, k, trace.Tenant(i)
			haveSeq = false
			continue
		}
		if k == bestK {
			// An exact tie: the sequence decides the victim, and the tie
			// itself (second == bestK) blocks the cursor from arming.
			second, haveSecond = k, true
			if !haveSeq {
				bestSeq = s.pr[best].seq
				haveSeq = true
			}
			if s.pr[p].seq < bestSeq {
				best, bestSeq, bestT = p, s.pr[p].seq, trace.Tenant(i)
			}
			continue
		}
		if !haveSecond || k < second {
			second, haveSecond = k, true
		}
	}
	if best >= 0 && !s.noCursor {
		if !haveSecond {
			// Single nonempty tenant: trivially the unique minimum. Any
			// second list becoming nonempty writes a key and noteKey
			// re-examines the cursor, so an unbounded vSecond is safe.
			s.vTen, s.vKey, s.vSecond = int32(bestT), bestK, inf
		} else if bestK < second {
			s.vTen, s.vKey, s.vSecond = int32(bestT), bestK, second
		}
	}
	return bestT, best
}

// denseVictim adapts victim for the per-step path.
func (f *Fast) denseVictim() int32 {
	_, p := f.dn.victim()
	return p
}

// DenseVictim implements sim.DensePolicy.
func (f *Fast) DenseVictim(step int, page int32) int32 {
	v := f.denseVictim()
	if v < 0 {
		panic("core: Fast.DenseVictim called with empty cache")
	}
	return v
}

// DenseEvict implements sim.DensePolicy: age every resident page by the
// victim's budget (a single add to the global aging counter) and advance the
// owner's miss counter in eviction-count mode.
func (f *Fast) DenseEvict(step int, page int32) {
	s := &f.dn.denseCore
	i := trace.Tenant(s.pr[page].owner)
	s.aging += s.th[i].marg - (s.aging - s.pr[page].ageStart)
	if !s.countMisses {
		s.m[i]++
		if !s.th[i].constMarg {
			s.th[i].marg = s.margAt(i)
		}
	}
	// The victim is its owner's tail, so the unlink always moves the tail
	// and the victim key with it.
	s.unlink(i, page)
	if s.vTen >= 0 {
		s.noteKey(i)
	}
	s.pr[page].resident = 0
}

// StepBatch implements sim.BatchPolicy: the whole hit/miss/evict/insert loop
// for a run of requests, with the per-step Dense* bodies inlined so the
// engine pays one interface dispatch per sim.BatchSize requests instead of
// one per event. Residency lives in the pageRec resident flag, so the probe,
// the owner lookup and the insert bookkeeping share one cache line per
// request. The arithmetic and its order are identical to the per-step path,
// so the two loops stay bit-exact (enforced by the internal/check batched
// oracle).
func (f *Fast) StepBatch(base int, pages []int32, bc *sim.BatchCounters, warm bool) error {
	return f.dn.denseCore.stepBatch(base, pages, bc, warm)
}

// stepBatch is the batched request loop on the shared core; see StepBatch.
func (s *denseCore) stepBatch(base int, pages []int32, bc *sim.BatchCounters, warm bool) error {
	prs := s.pr
	ths := s.th
	countMisses := s.countMisses
	// aging, nextSeq and used live in locals for the whole batch: none of
	// the helpers below read them, and keeping them out of memory removes a
	// load+store pair from every event's dependency chain.
	aging := s.aging
	nextSeq := s.nextSeq
	used := s.used
	defer func() {
		s.aging = aging
		s.nextSeq = nextSeq
		s.used = used
	}()
	// Prefetch pass: touch every record the batch will probe before serving
	// any request. The loads are independent, so the memory system overlaps
	// them, where the serving loop — whose branches depend on each probe —
	// would take the misses one at a time. This is the batched contract's
	// structural advantage: a per-step engine cannot see the next 63 pages.
	// The sink store keeps the compiler from discarding the pass.
	var sink int32
	for _, pg := range pages {
		sink += prs[pg].owner
	}
	s.prefetchSink = sink
	for _, pg := range pages {
		r := &prs[pg]
		i := trace.Tenant(r.owner)
		if r.resident != 0 {
			// Hit: refresh recency and the aging origin.
			nextSeq++
			r.ageStart = aging
			r.seq = nextSeq
			if ths[i].head != pg {
				wasTail := ths[i].tail == pg
				s.unlink(i, pg)
				s.pushFront(i, pg)
				if wasTail && s.vTen >= 0 {
					s.noteKey(i)
				}
			} else if ths[i].tail == pg {
				// Single-page list: the tail's aging origin just moved.
				ths[i].tailAge = aging
				ths[i].key = ths[i].marg + aging
				if s.vTen >= 0 {
					s.noteKey(i)
				}
			}
			if !warm {
				bc.Hits++
			}
			continue
		}
		if !warm {
			bc.Misses[i]++
		}
		if used >= s.k {
			// Victim: the cursor's cached argmin when valid, the full scan
			// (which re-arms the cursor) otherwise; comparison and selection
			// order are identical to the per-step path, which the
			// batched-vs-per-step oracle enforces. Comparing precomputed
			// keys keeps the scan off the aging chain: the FP adds of
			// consecutive evictions pipeline across iterations instead of
			// serializing through the next scan.
			vo, best := s.victim()
			if best < 0 {
				return fmt.Errorf("core: alg-fast found no victim at step %d", base)
			}
			// Evict: age everyone by the victim's budget — the victim is its
			// owner's tail, so tailAge is its ageStart and the whole update
			// stays inside the tenantHot line — then advance the owner's
			// counter in eviction-count mode, unlink, and mark it absent.
			aging += ths[vo].marg - (aging - ths[vo].tailAge)
			if !countMisses {
				s.m[vo]++
				if !ths[vo].constMarg {
					ths[vo].marg = s.margAt(vo)
				}
			}
			s.popTail(vo, best)
			if s.vTen >= 0 {
				s.noteKey(vo)
			}
			prs[best].resident = 0
			if !warm {
				bc.Evictions[vo]++
			}
		} else {
			used++
		}
		// Insert: register the page with the current marginal as its budget.
		nextSeq++
		if countMisses {
			s.m[i]++
			if !ths[i].constMarg {
				ths[i].marg = s.margAt(i)
				ths[i].key = ths[i].marg + ths[i].tailAge
				if ths[i].tail >= 0 {
					if s.vTen >= 0 {
						s.noteKey(i)
					}
				}
			}
		}
		r.ageStart = aging
		r.seq = nextSeq
		r.resident = 1
		wasEmpty := ths[i].head < 0
		s.pushFront(i, pg)
		if wasEmpty && s.vTen >= 0 {
			s.noteKey(i)
		}
	}
	return nil
}

// step serves one request for page index pg — the open-world per-request
// entry point. The event order and arithmetic are identical to stepBatch's
// per-request body (and therefore to the per-step Dense* path), which is
// what keeps a live open-world run bit-exact with a closed-world replay of
// the same request sequence. Returns whether the request hit and, on an
// evicting miss, the victim's owner (-1 otherwise).
func (s *denseCore) step(pg int32) (hit bool, victimOwner int32, err error) {
	r := &s.pr[pg]
	i := trace.Tenant(r.owner)
	if r.resident != 0 {
		s.nextSeq++
		r.ageStart = s.aging
		r.seq = s.nextSeq
		if s.th[i].head != pg {
			wasTail := s.th[i].tail == pg
			s.unlink(i, pg)
			s.pushFront(i, pg)
			if wasTail && s.vTen >= 0 {
				s.noteKey(i)
			}
		} else if s.th[i].tail == pg {
			s.th[i].tailAge = s.aging
			s.th[i].key = s.th[i].marg + s.aging
			if s.vTen >= 0 {
				s.noteKey(i)
			}
		}
		return true, -1, nil
	}
	victimOwner = -1
	if s.used >= s.k {
		vo, best := s.victim()
		if best < 0 {
			return false, -1, fmt.Errorf("core: alg-fast found no victim (used=%d k=%d)", s.used, s.k)
		}
		s.aging += s.th[vo].marg - (s.aging - s.th[vo].tailAge)
		if !s.countMisses {
			s.m[vo]++
			if !s.th[vo].constMarg {
				s.th[vo].marg = s.margAt(vo)
			}
		}
		s.popTail(vo, best)
		if s.vTen >= 0 {
			s.noteKey(vo)
		}
		s.pr[best].resident = 0
		victimOwner = int32(vo)
	} else {
		s.used++
	}
	s.nextSeq++
	if s.countMisses {
		s.m[i]++
		if !s.th[i].constMarg {
			s.th[i].marg = s.margAt(i)
			s.th[i].key = s.th[i].marg + s.th[i].tailAge
			if s.th[i].tail >= 0 {
				if s.vTen >= 0 {
					s.noteKey(i)
				}
			}
		}
	}
	r.ageStart = s.aging
	r.seq = s.nextSeq
	r.resident = 1
	wasEmpty := s.th[i].head < 0
	s.pushFront(i, pg)
	if wasEmpty && s.vTen >= 0 {
		s.noteKey(i)
	}
	return false, victimOwner, nil
}

func (f *Fast) tenantList(i trace.Tenant) *list.List {
	l, ok := f.lists[i]
	if !ok {
		l = list.New()
		f.lists[i] = l
	}
	return l
}

// budgetOf computes the effective budget of a cached page.
func (f *Fast) budgetOf(p trace.PageID) float64 {
	pg := f.info[p]
	return f.opt.marginal(pg.owner, f.m[pg.owner]) - (f.aging - pg.ageStart)
}

// OnHit refreshes the page's recency and aging origin.
func (f *Fast) OnHit(step int, r trace.Request) {
	f.nextSeq++
	pg, ok := f.info[r.Page]
	if !ok {
		return
	}
	pg.ageStart = f.aging
	pg.seq = f.nextSeq
	f.tenantList(r.Tenant).MoveToFront(f.elem[r.Page])
}

// OnInsert registers the page with the current marginal as its budget.
func (f *Fast) OnInsert(step int, r trace.Request) {
	f.nextSeq++
	if f.opt.CountMisses {
		f.m[r.Tenant]++
	}
	f.info[r.Page] = &fastPage{owner: r.Tenant, ageStart: f.aging, seq: f.nextSeq}
	f.elem[r.Page] = f.tenantList(r.Tenant).PushFront(r.Page)
}

// Victim scans the per-tenant LRU candidates for the minimum budget. The
// candidates are compared by marginal + ageStart — the budget ordering with
// the shared aging term cancelled (see tenantHot.key); the dense backends
// compare the same fl(marg + tailAge), so all victim paths pick identical
// victims.
func (f *Fast) Victim(step int, r trace.Request) trace.PageID {
	var best trace.PageID
	bestK := 0.0
	bestSeq := 0
	found := false
	for i, l := range f.lists {
		back := l.Back()
		if back == nil {
			continue
		}
		p := back.Value.(trace.PageID)
		pg := f.info[p]
		k := f.opt.marginal(i, f.m[i]) + pg.ageStart
		if !found || k < bestK || (k == bestK && pg.seq < bestSeq) {
			best, bestK, bestSeq, found = p, k, pg.seq, true
		}
	}
	if !found {
		panic("core: Fast.Victim called with empty cache")
	}
	return best
}

// OnEvict ages every resident page by the victim's budget and advances the
// owner's counter (eviction-count mode).
func (f *Fast) OnEvict(step int, p trace.PageID) {
	pg, ok := f.info[p]
	if !ok {
		return
	}
	f.aging += f.budgetOf(p)
	if !f.opt.CountMisses {
		f.m[pg.owner]++
	}
	f.tenantList(pg.owner).Remove(f.elem[p])
	delete(f.elem, p)
	delete(f.info, p)
}

// Misses returns the internal per-tenant counter m(i, t).
func (f *Fast) Misses(i trace.Tenant) float64 {
	if s := f.dn; s != nil {
		if int(i) < len(s.m) {
			return s.m[i]
		}
		return 0
	}
	return f.m[i]
}

// Budget exposes a cached page's current effective budget for tests.
func (f *Fast) Budget(p trace.PageID) (float64, bool) {
	if s := f.dn; s != nil {
		ix := s.d.IndexOf(p)
		if ix < 0 || s.pr[ix].resident == 0 {
			return 0, false
		}
		i := s.d.Owners[ix]
		return s.th[i].marg - (s.aging - s.pr[ix].ageStart), true
	}
	if _, ok := f.info[p]; !ok {
		return 0, false
	}
	return f.budgetOf(p), true
}
