package core

import (
	"container/list"

	"convexcache/internal/trace"
)

// Fast is the production implementation of the paper's algorithm.
//
// It relies on the following reformulation of Figure 3's budget dynamics:
// the budget of a cached page p always equals
//
//	B(p) = marginal(i(p), m_i) - (A - ageStart(p))
//
// where marginal(i, m) = f_i'(m+1), A is the running sum of evicted budgets
// (the global aging), and ageStart(p) is the value of A at p's last request.
// The subtraction step of Figure 3 is the growth of A; the same-owner
// correction is absorbed by evaluating marginal at the owner's current
// counter; the hit refresh resets ageStart.
//
// Because A is monotone, within a tenant the minimum-budget page is always
// the least-recently-requested one, so a per-tenant recency list suffices
// and an eviction costs O(#tenants).
//
// Fast has two interchangeable state backends. When driven through sim.Run
// on an indexable trace it implements sim.DensePolicy: per-page state lives
// in flat slices indexed by the dense page index, the per-tenant recency
// list is an intrusive doubly-linked list over prev/next []int32 arrays, and
// marginal(i, m_i) is cached per tenant and recomputed only when m_i
// changes — so the request loop is allocation-free and Victim is a linear
// scan over a flat tenant array. Direct drivers (the lower-bound adversary,
// the buffer pool, the hierarchy and multipool substrates) use the original
// map-backed sim.Policy methods; the two backends never mix within a run.
type Fast struct {
	opt Options

	aging float64
	m     map[trace.Tenant]float64
	// lists[i] holds tenant i's cached pages, front = most recent.
	lists map[trace.Tenant]*list.List
	elem  map[trace.PageID]*list.Element
	info  map[trace.PageID]*fastPage

	nextSeq int

	dn *fastDense
}

type fastPage struct {
	owner    trace.Tenant
	ageStart float64
	seq      int
}

// fastDense is the slice-backed state of the dense path. All page-indexed
// slices use the trace.Dense page index; -1 is the nil link.
type fastDense struct {
	d *trace.Dense

	aging float64

	// Per-tenant state, indexed by tenant id.
	m    []float64
	marg []float64 // cached marginal(i, m[i]); recomputed when m[i] changes
	head []int32   // most recently requested cached page, -1 when empty
	tail []int32   // least recently requested cached page, -1 when empty

	// Per-page state; prev/next form the intrusive per-tenant LRU.
	prev     []int32
	next     []int32
	ageStart []float64
	seq      []int64

	nextSeq int64
}

// NewFast returns a fresh Fast instance.
func NewFast(opt Options) *Fast {
	f := &Fast{opt: opt}
	f.Reset()
	return f
}

// Name implements sim.Policy.
func (f *Fast) Name() string { return "alg-fast" }

// Reset implements sim.Policy.
func (f *Fast) Reset() {
	f.aging = 0
	f.m = make(map[trace.Tenant]float64)
	f.lists = make(map[trace.Tenant]*list.List)
	f.elem = make(map[trace.PageID]*list.Element)
	f.info = make(map[trace.PageID]*fastPage)
	f.nextSeq = 0
	f.dn = nil
}

// PrepareDense implements sim.DensePolicy. It (re)initializes the dense
// backend for trace view d, reusing the previous run's slices when the
// shapes match so repeated runs over the same trace allocate nothing new.
func (f *Fast) PrepareDense(d *trace.Dense, k int) bool {
	nPages := d.NumPages()
	nTenants := d.Tenants
	s := f.dn
	if s == nil || len(s.prev) < nPages || len(s.m) < nTenants {
		s = &fastDense{
			m:        make([]float64, nTenants),
			marg:     make([]float64, nTenants),
			head:     make([]int32, nTenants),
			tail:     make([]int32, nTenants),
			prev:     make([]int32, nPages),
			next:     make([]int32, nPages),
			ageStart: make([]float64, nPages),
			seq:      make([]int64, nPages),
		}
		f.dn = s
	}
	s.d = d
	s.aging = 0
	s.nextSeq = 0
	for i := 0; i < nTenants; i++ {
		s.m[i] = 0
		s.marg[i] = f.opt.marginal(trace.Tenant(i), 0)
		s.head[i] = -1
		s.tail[i] = -1
	}
	for p := 0; p < nPages; p++ {
		s.prev[p] = -1
		s.next[p] = -1
		s.ageStart[p] = 0
		s.seq[p] = 0
	}
	return true
}

// pushFront links page p at the front of its owner's recency list.
func (s *fastDense) pushFront(i trace.Tenant, p int32) {
	h := s.head[i]
	s.prev[p] = -1
	s.next[p] = h
	if h >= 0 {
		s.prev[h] = p
	} else {
		s.tail[i] = p
	}
	s.head[i] = p
}

// unlink removes page p from its owner's recency list.
func (s *fastDense) unlink(i trace.Tenant, p int32) {
	pr, nx := s.prev[p], s.next[p]
	if pr >= 0 {
		s.next[pr] = nx
	} else {
		s.head[i] = nx
	}
	if nx >= 0 {
		s.prev[nx] = pr
	} else {
		s.tail[i] = pr
	}
	s.prev[p] = -1
	s.next[p] = -1
}

// DenseHit implements sim.DensePolicy: refresh recency and the aging origin.
func (f *Fast) DenseHit(step int, page int32) {
	s := f.dn
	s.nextSeq++
	i := s.d.Owners[page]
	s.ageStart[page] = s.aging
	s.seq[page] = s.nextSeq
	if s.head[i] != page {
		s.unlink(i, page)
		s.pushFront(i, page)
	}
}

// DenseInsert implements sim.DensePolicy: register the page with the current
// marginal as its budget.
func (f *Fast) DenseInsert(step int, page int32) {
	s := f.dn
	s.nextSeq++
	i := s.d.Owners[page]
	if f.opt.CountMisses {
		s.m[i]++
		s.marg[i] = f.opt.marginal(i, s.m[i])
	}
	s.ageStart[page] = s.aging
	s.seq[page] = s.nextSeq
	s.pushFront(i, page)
}

// DenseVictim implements sim.DensePolicy: a linear scan over the flat tenant
// array, comparing each tenant's least-recently-requested page using the
// cached marginal. No map iteration, no Deriv calls.
func (f *Fast) DenseVictim(step int, page int32) int32 {
	s := f.dn
	best := int32(-1)
	bestB := 0.0
	bestSeq := int64(0)
	for i, t := 0, len(s.tail); i < t; i++ {
		p := s.tail[i]
		if p < 0 {
			continue
		}
		b := s.marg[i] - (s.aging - s.ageStart[p])
		if best < 0 || b < bestB || (b == bestB && s.seq[p] < bestSeq) {
			best, bestB, bestSeq = p, b, s.seq[p]
		}
	}
	if best < 0 {
		panic("core: Fast.DenseVictim called with empty cache")
	}
	return best
}

// DenseEvict implements sim.DensePolicy: age every resident page by the
// victim's budget (a single add to the global aging counter) and advance the
// owner's miss counter in eviction-count mode.
func (f *Fast) DenseEvict(step int, page int32) {
	s := f.dn
	i := s.d.Owners[page]
	s.aging += s.marg[i] - (s.aging - s.ageStart[page])
	if !f.opt.CountMisses {
		s.m[i]++
		s.marg[i] = f.opt.marginal(i, s.m[i])
	}
	s.unlink(i, page)
}

func (f *Fast) tenantList(i trace.Tenant) *list.List {
	l, ok := f.lists[i]
	if !ok {
		l = list.New()
		f.lists[i] = l
	}
	return l
}

// budgetOf computes the effective budget of a cached page.
func (f *Fast) budgetOf(p trace.PageID) float64 {
	pg := f.info[p]
	return f.opt.marginal(pg.owner, f.m[pg.owner]) - (f.aging - pg.ageStart)
}

// OnHit refreshes the page's recency and aging origin.
func (f *Fast) OnHit(step int, r trace.Request) {
	f.nextSeq++
	pg, ok := f.info[r.Page]
	if !ok {
		return
	}
	pg.ageStart = f.aging
	pg.seq = f.nextSeq
	f.tenantList(r.Tenant).MoveToFront(f.elem[r.Page])
}

// OnInsert registers the page with the current marginal as its budget.
func (f *Fast) OnInsert(step int, r trace.Request) {
	f.nextSeq++
	if f.opt.CountMisses {
		f.m[r.Tenant]++
	}
	f.info[r.Page] = &fastPage{owner: r.Tenant, ageStart: f.aging, seq: f.nextSeq}
	f.elem[r.Page] = f.tenantList(r.Tenant).PushFront(r.Page)
}

// Victim scans the per-tenant LRU candidates for the minimum budget.
func (f *Fast) Victim(step int, r trace.Request) trace.PageID {
	var best trace.PageID
	bestB := 0.0
	bestSeq := 0
	found := false
	for i, l := range f.lists {
		back := l.Back()
		if back == nil {
			continue
		}
		p := back.Value.(trace.PageID)
		pg := f.info[p]
		b := f.opt.marginal(i, f.m[i]) - (f.aging - pg.ageStart)
		if !found || b < bestB || (b == bestB && pg.seq < bestSeq) {
			best, bestB, bestSeq, found = p, b, pg.seq, true
		}
	}
	if !found {
		panic("core: Fast.Victim called with empty cache")
	}
	return best
}

// OnEvict ages every resident page by the victim's budget and advances the
// owner's counter (eviction-count mode).
func (f *Fast) OnEvict(step int, p trace.PageID) {
	pg, ok := f.info[p]
	if !ok {
		return
	}
	f.aging += f.budgetOf(p)
	if !f.opt.CountMisses {
		f.m[pg.owner]++
	}
	f.tenantList(pg.owner).Remove(f.elem[p])
	delete(f.elem, p)
	delete(f.info, p)
}

// Misses returns the internal per-tenant counter m(i, t).
func (f *Fast) Misses(i trace.Tenant) float64 {
	if s := f.dn; s != nil {
		if int(i) < len(s.m) {
			return s.m[i]
		}
		return 0
	}
	return f.m[i]
}

// Budget exposes a cached page's current effective budget for tests.
func (f *Fast) Budget(p trace.PageID) (float64, bool) {
	if s := f.dn; s != nil {
		ix := s.d.IndexOf(p)
		if ix < 0 || (s.prev[ix] < 0 && s.next[ix] < 0 && s.head[s.d.Owners[ix]] != ix) {
			return 0, false
		}
		i := s.d.Owners[ix]
		return s.marg[i] - (s.aging - s.ageStart[ix]), true
	}
	if _, ok := f.info[p]; !ok {
		return 0, false
	}
	return f.budgetOf(p), true
}
