package core

import (
	"container/list"

	"convexcache/internal/trace"
)

// Fast is the production implementation of the paper's algorithm.
//
// It relies on the following reformulation of Figure 3's budget dynamics:
// the budget of a cached page p always equals
//
//	B(p) = marginal(i(p), m_i) - (A - ageStart(p))
//
// where marginal(i, m) = f_i'(m+1), A is the running sum of evicted budgets
// (the global aging), and ageStart(p) is the value of A at p's last request.
// The subtraction step of Figure 3 is the growth of A; the same-owner
// correction is absorbed by evaluating marginal at the owner's current
// counter; the hit refresh resets ageStart.
//
// Because A is monotone, within a tenant the minimum-budget page is always
// the least-recently-requested one, so a per-tenant recency list suffices
// and an eviction costs O(#tenants).
type Fast struct {
	opt Options

	aging float64
	m     map[trace.Tenant]float64
	// lists[i] holds tenant i's cached pages, front = most recent.
	lists map[trace.Tenant]*list.List
	elem  map[trace.PageID]*list.Element
	info  map[trace.PageID]*fastPage

	nextSeq int
}

type fastPage struct {
	owner    trace.Tenant
	ageStart float64
	seq      int
}

// NewFast returns a fresh Fast instance.
func NewFast(opt Options) *Fast {
	f := &Fast{opt: opt}
	f.Reset()
	return f
}

// Name implements sim.Policy.
func (f *Fast) Name() string { return "alg-fast" }

// Reset implements sim.Policy.
func (f *Fast) Reset() {
	f.aging = 0
	f.m = make(map[trace.Tenant]float64)
	f.lists = make(map[trace.Tenant]*list.List)
	f.elem = make(map[trace.PageID]*list.Element)
	f.info = make(map[trace.PageID]*fastPage)
	f.nextSeq = 0
}

func (f *Fast) tenantList(i trace.Tenant) *list.List {
	l, ok := f.lists[i]
	if !ok {
		l = list.New()
		f.lists[i] = l
	}
	return l
}

// budgetOf computes the effective budget of a cached page.
func (f *Fast) budgetOf(p trace.PageID) float64 {
	pg := f.info[p]
	return f.opt.marginal(pg.owner, f.m[pg.owner]) - (f.aging - pg.ageStart)
}

// OnHit refreshes the page's recency and aging origin.
func (f *Fast) OnHit(step int, r trace.Request) {
	f.nextSeq++
	pg, ok := f.info[r.Page]
	if !ok {
		return
	}
	pg.ageStart = f.aging
	pg.seq = f.nextSeq
	f.tenantList(r.Tenant).MoveToFront(f.elem[r.Page])
}

// OnInsert registers the page with the current marginal as its budget.
func (f *Fast) OnInsert(step int, r trace.Request) {
	f.nextSeq++
	if f.opt.CountMisses {
		f.m[r.Tenant]++
	}
	f.info[r.Page] = &fastPage{owner: r.Tenant, ageStart: f.aging, seq: f.nextSeq}
	f.elem[r.Page] = f.tenantList(r.Tenant).PushFront(r.Page)
}

// Victim scans the per-tenant LRU candidates for the minimum budget.
func (f *Fast) Victim(step int, r trace.Request) trace.PageID {
	var best trace.PageID
	bestB := 0.0
	bestSeq := 0
	found := false
	for i, l := range f.lists {
		back := l.Back()
		if back == nil {
			continue
		}
		p := back.Value.(trace.PageID)
		pg := f.info[p]
		b := f.opt.marginal(i, f.m[i]) - (f.aging - pg.ageStart)
		if !found || b < bestB || (b == bestB && pg.seq < bestSeq) {
			best, bestB, bestSeq, found = p, b, pg.seq, true
		}
	}
	if !found {
		panic("core: Fast.Victim called with empty cache")
	}
	return best
}

// OnEvict ages every resident page by the victim's budget and advances the
// owner's counter (eviction-count mode).
func (f *Fast) OnEvict(step int, p trace.PageID) {
	pg, ok := f.info[p]
	if !ok {
		return
	}
	f.aging += f.budgetOf(p)
	if !f.opt.CountMisses {
		f.m[pg.owner]++
	}
	f.tenantList(pg.owner).Remove(f.elem[p])
	delete(f.elem, p)
	delete(f.info, p)
}

// Misses returns the internal per-tenant counter m(i, t).
func (f *Fast) Misses(i trace.Tenant) float64 { return f.m[i] }

// Budget exposes a cached page's current effective budget for tests.
func (f *Fast) Budget(p trace.PageID) (float64, bool) {
	if _, ok := f.info[p]; !ok {
		return 0, false
	}
	return f.budgetOf(p), true
}
