package core

import (
	"math/rand"
	"reflect"
	"testing"

	"convexcache/internal/trace"
)

// TestLRUTableBasics pins the table's recency semantics: inserts land at
// the front, touches move to the front, PopTail evicts in exact LRU order,
// and counters stay consistent.
func TestLRUTableBasics(t *testing.T) {
	tab, err := NewLRUTable(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []trace.PageID{1, 4, 7} {
		if err := tab.Insert(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Insert(10, 1); err != nil {
		t.Fatal(err)
	}
	if tab.Len(0) != 3 || tab.Len(1) != 1 || tab.Total() != 4 {
		t.Fatalf("counts: len0=%d len1=%d total=%d", tab.Len(0), tab.Len(1), tab.Total())
	}
	if got := tab.PagesMRU(0); !reflect.DeepEqual(got, []int64{7, 4, 1}) {
		t.Fatalf("MRU order: %v", got)
	}
	// Touch the LRU page; it becomes MRU and 4 becomes the tail.
	if ok, err := tab.Touch(1, 0); err != nil || !ok {
		t.Fatalf("touch resident: ok=%v err=%v", ok, err)
	}
	if got := tab.PagesMRU(0); !reflect.DeepEqual(got, []int64{1, 7, 4}) {
		t.Fatalf("MRU order after touch: %v", got)
	}
	if p, ok := tab.PopTail(0); !ok || p != 4 {
		t.Fatalf("PopTail: %d %v", p, ok)
	}
	if tab.Resident(4) || !tab.Resident(7) {
		t.Fatal("residency after eviction wrong")
	}
	// A popped page is reinsertable.
	if err := tab.Insert(4, 0); err != nil {
		t.Fatal(err)
	}
	if got := tab.PagesMRU(0); !reflect.DeepEqual(got, []int64{4, 1, 7}) {
		t.Fatalf("MRU order after reinsert: %v", got)
	}

	// Error paths.
	if ok, err := tab.Touch(13, 0); err != nil || ok {
		t.Fatalf("touch of absent page: ok=%v err=%v", ok, err)
	}
	if _, err := tab.Touch(2, 0); err == nil {
		t.Fatal("out-of-class touch accepted")
	}
	if err := tab.Insert(4, 0); err == nil {
		t.Fatal("double insert accepted")
	}
	if err := tab.Insert(5, 0); err == nil {
		t.Fatal("out-of-class insert accepted")
	}
	if _, ok := tab.PopTail(1); !ok {
		t.Fatal("PopTail on populated tenant failed")
	}
	if _, ok := tab.PopTail(1); ok {
		t.Fatal("PopTail on empty tenant succeeded")
	}
	if _, err := NewLRUTable(1, 2, 2); err == nil {
		t.Fatal("base >= stride accepted")
	}
}

// lruModel is a trivial reference: per-tenant page slices, front = MRU.
type lruModel struct {
	lists map[trace.Tenant][]trace.PageID
}

func (m *lruModel) find(i trace.Tenant, p trace.PageID) int {
	for j, q := range m.lists[i] {
		if q == p {
			return j
		}
	}
	return -1
}

// TestLRUTableMatchesModel drives random touch/insert/pop traffic against a
// slice-backed reference model.
func TestLRUTableMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tenants := 3
	tab, err := NewLRUTable(tenants, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := &lruModel{lists: map[trace.Tenant][]trace.PageID{}}
	for step := 0; step < 20000; step++ {
		tn := trace.Tenant(rng.Intn(tenants))
		switch rng.Intn(3) {
		case 0, 1: // access
			p := trace.PageID(rng.Intn(32) * 2)
			j := model.find(tn, p)
			hit, err := tab.Touch(p, tn)
			if err != nil {
				// The model owns each page via whichever tenant inserted it
				// first; an owner mismatch is also a model "miss" we skip.
				continue
			}
			if hit != (j >= 0) {
				t.Fatalf("step %d: hit %v model %v", step, hit, j >= 0)
			}
			if hit {
				l := model.lists[tn]
				p := l[j]
				copy(l[1:j+1], l[:j])
				l[0] = p
			} else {
				owned := false
				for i := trace.Tenant(0); int(i) < tenants; i++ {
					if i != tn && model.find(i, p) >= 0 {
						owned = true
					}
				}
				if owned {
					continue
				}
				if err := tab.Insert(p, tn); err != nil {
					t.Fatalf("step %d: insert: %v", step, err)
				}
				model.lists[tn] = append([]trace.PageID{p}, model.lists[tn]...)
			}
		case 2: // evict
			got, ok := tab.PopTail(tn)
			l := model.lists[tn]
			if ok != (len(l) > 0) {
				t.Fatalf("step %d: pop ok %v model %d", step, ok, len(l))
			}
			if ok {
				want := l[len(l)-1]
				if got != want {
					t.Fatalf("step %d: popped %d want %d", step, got, want)
				}
				model.lists[tn] = l[:len(l)-1]
			}
		}
		total := 0
		for i := trace.Tenant(0); int(i) < tenants; i++ {
			if tab.Len(i) != len(model.lists[i]) {
				t.Fatalf("step %d: tenant %d len %d model %d", step, i, tab.Len(i), len(model.lists[i]))
			}
			total += len(model.lists[i])
		}
		if tab.Total() != total {
			t.Fatalf("step %d: total %d model %d", step, tab.Total(), total)
		}
	}
	for i := trace.Tenant(0); int(i) < tenants; i++ {
		got := tab.PagesMRU(i)
		want := make([]int64, 0, len(model.lists[i]))
		for _, p := range model.lists[i] {
			want = append(want, int64(p))
		}
		if len(got) != len(want) {
			t.Fatalf("tenant %d: MRU len %d model %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("tenant %d: MRU[%d] %d model %d", i, j, got[j], want[j])
			}
		}
	}
}
