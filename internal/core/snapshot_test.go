package core

import (
	"bytes"
	"strings"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// resumeHarness drives a Fast instance manually so the cache contents can
// be carried across the snapshot boundary.
type resumeHarness struct {
	k     int
	alg   *Fast
	cache map[trace.PageID]bool
	step  int
	evict []trace.PageID
}

func newResumeHarness(k int, alg *Fast) *resumeHarness {
	return &resumeHarness{k: k, alg: alg, cache: make(map[trace.PageID]bool)}
}

func (h *resumeHarness) serve(r trace.Request) {
	h.step++
	if h.cache[r.Page] {
		h.alg.OnHit(h.step, r)
		return
	}
	if len(h.cache) >= h.k {
		v := h.alg.Victim(h.step, r)
		delete(h.cache, v)
		h.alg.OnEvict(h.step, v)
		h.evict = append(h.evict, v)
	}
	h.cache[r.Page] = true
	h.alg.OnInsert(h.step, r)
}

func TestSnapshotResumeMatchesUninterrupted(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 3}}
	opt := Options{Costs: costs}
	tr := randomTrace(99, 2, 7, 600)
	k := 5

	// Uninterrupted run.
	full := newResumeHarness(k, NewFast(opt))
	for _, r := range tr.Requests() {
		full.serve(r)
	}

	// Interrupted run: snapshot halfway, restore into a fresh instance.
	half := tr.Len() / 2
	first := newResumeHarness(k, NewFast(opt))
	for _, r := range tr.Requests()[:half] {
		first.serve(r)
	}
	var buf bytes.Buffer
	if err := first.alg.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	resumed := NewFast(opt)
	if err := resumed.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	second := newResumeHarness(k, resumed)
	second.step = first.step
	// Re-seed the engine-side cache from the snapshot.
	snap := first.alg.Snapshot()
	for p := range snap.ResidentPages() {
		second.cache[p] = true
	}
	for _, r := range tr.Requests()[half:] {
		second.serve(r)
	}

	combined := append(append([]trace.PageID(nil), first.evict...), second.evict...)
	if len(combined) != len(full.evict) {
		t.Fatalf("eviction counts differ: %d vs %d", len(combined), len(full.evict))
	}
	for i := range combined {
		if combined[i] != full.evict[i] {
			t.Fatalf("eviction %d differs: resumed=%d full=%d", i, combined[i], full.evict[i])
		}
	}
}

func TestSnapshotRoundTripFields(t *testing.T) {
	opt := Options{Costs: []costfn.Func{costfn.Linear{W: 2}}}
	f := NewFast(opt)
	tr := randomTrace(5, 1, 6, 100)
	sim.MustRun(tr, f, sim.Config{K: 3})
	s := f.Snapshot()
	if len(s.Pages) != 3 {
		t.Fatalf("snapshot pages = %d, want 3", len(s.Pages))
	}
	g := NewFast(opt)
	if err := g.Restore(s); err != nil {
		t.Fatal(err)
	}
	s2 := g.Snapshot()
	if s2.Aging != s.Aging || s2.NextSeq != s.NextSeq || len(s2.Pages) != len(s.Pages) {
		t.Errorf("round trip changed state: %+v vs %+v", s2, s)
	}
	for i := range s.Pages {
		if s.Pages[i] != s2.Pages[i] {
			t.Errorf("page %d differs: %+v vs %+v", i, s.Pages[i], s2.Pages[i])
		}
	}
}

func TestRestoreRejectsDuplicatePages(t *testing.T) {
	f := NewFast(Options{})
	err := f.Restore(FastSnapshot{Pages: []PageSnapshot{
		{Page: 1, Owner: 0}, {Page: 1, Owner: 0},
	}})
	if err == nil {
		t.Error("duplicate page accepted")
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	f := NewFast(Options{})
	if err := f.ReadSnapshot(strings.NewReader("not json")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}
