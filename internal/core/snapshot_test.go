package core

import (
	"bytes"
	"strings"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// resumeHarness drives a Fast instance manually so the cache contents can
// be carried across the snapshot boundary.
type resumeHarness struct {
	k     int
	alg   *Fast
	cache map[trace.PageID]bool
	step  int
	evict []trace.PageID
}

func newResumeHarness(k int, alg *Fast) *resumeHarness {
	return &resumeHarness{k: k, alg: alg, cache: make(map[trace.PageID]bool)}
}

func (h *resumeHarness) serve(r trace.Request) {
	h.step++
	if h.cache[r.Page] {
		h.alg.OnHit(h.step, r)
		return
	}
	if len(h.cache) >= h.k {
		v := h.alg.Victim(h.step, r)
		delete(h.cache, v)
		h.alg.OnEvict(h.step, v)
		h.evict = append(h.evict, v)
	}
	h.cache[r.Page] = true
	h.alg.OnInsert(h.step, r)
}

func TestSnapshotResumeMatchesUninterrupted(t *testing.T) {
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 3}}
	opt := Options{Costs: costs}
	tr := randomTrace(99, 2, 7, 600)
	k := 5

	// Uninterrupted run.
	full := newResumeHarness(k, NewFast(opt))
	for _, r := range tr.Requests() {
		full.serve(r)
	}

	// Interrupted run: snapshot halfway, restore into a fresh instance.
	half := tr.Len() / 2
	first := newResumeHarness(k, NewFast(opt))
	for _, r := range tr.Requests()[:half] {
		first.serve(r)
	}
	var buf bytes.Buffer
	if err := first.alg.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	resumed := NewFast(opt)
	if err := resumed.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	second := newResumeHarness(k, resumed)
	second.step = first.step
	// Re-seed the engine-side cache from the snapshot.
	snap := first.alg.Snapshot()
	for p := range snap.ResidentPages() {
		second.cache[p] = true
	}
	for _, r := range tr.Requests()[half:] {
		second.serve(r)
	}

	combined := append(append([]trace.PageID(nil), first.evict...), second.evict...)
	if len(combined) != len(full.evict) {
		t.Fatalf("eviction counts differ: %d vs %d", len(combined), len(full.evict))
	}
	for i := range combined {
		if combined[i] != full.evict[i] {
			t.Fatalf("eviction %d differs: resumed=%d full=%d", i, combined[i], full.evict[i])
		}
	}
}

func TestSnapshotRoundTripFields(t *testing.T) {
	opt := Options{Costs: []costfn.Func{costfn.Linear{W: 2}}}
	f := NewFast(opt)
	tr := randomTrace(5, 1, 6, 100)
	sim.MustRun(tr, f, sim.Config{K: 3})
	s := f.Snapshot()
	if len(s.Pages) != 3 {
		t.Fatalf("snapshot pages = %d, want 3", len(s.Pages))
	}
	g := NewFast(opt)
	if err := g.Restore(s); err != nil {
		t.Fatal(err)
	}
	s2 := g.Snapshot()
	if s2.Aging != s.Aging || s2.NextSeq != s.NextSeq || len(s2.Pages) != len(s.Pages) {
		t.Errorf("round trip changed state: %+v vs %+v", s2, s)
	}
	for i := range s.Pages {
		if s.Pages[i] != s2.Pages[i] {
			t.Errorf("page %d differs: %+v vs %+v", i, s.Pages[i], s2.Pages[i])
		}
	}
}

func TestRestoreRejectsDuplicatePages(t *testing.T) {
	f := NewFast(Options{})
	err := f.Restore(FastSnapshot{Pages: []PageSnapshot{
		{Page: 1, Owner: 0}, {Page: 1, Owner: 0},
	}})
	if err == nil {
		t.Error("duplicate page accepted")
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	f := NewFast(Options{})
	if err := f.ReadSnapshot(strings.NewReader("not json")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

// TestSnapshotDeterministicTenantOrder is the regression for the snapshot
// nondeterminism found by the internal/check differential oracle: the
// map-backed Snapshot used to walk f.lists in Go map iteration order, so a
// multi-tenant checkpoint serialized its pages in a different order on every
// process run and snapshot -> restore -> snapshot was not idempotent.
// Tenants must be walked in ascending id order, matching the dense backend.
func TestSnapshotDeterministicTenantOrder(t *testing.T) {
	opt := Options{Costs: []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 2}, costfn.Linear{W: 3}}}
	mk := func() FastSnapshot {
		h := newResumeHarness(4, NewFast(opt))
		for _, r := range []trace.Request{
			{Tenant: 2, Page: 201}, {Tenant: 0, Page: 1}, {Tenant: 1, Page: 101}, {Tenant: 2, Page: 202},
		} {
			h.serve(r)
		}
		return h.alg.Snapshot()
	}
	want := mk()
	for round := 0; round < 20; round++ {
		got := mk()
		for i := range want.Pages {
			if got.Pages[i] != want.Pages[i] {
				t.Fatalf("round %d: page order nondeterministic at %d: %+v vs %+v",
					round, i, got.Pages[i], want.Pages[i])
			}
		}
	}
	for i := 1; i < len(want.Pages); i++ {
		if want.Pages[i].Owner < want.Pages[i-1].Owner {
			t.Fatalf("pages not grouped by ascending tenant: %+v", want.Pages)
		}
	}
	// Round trip must reproduce the checkpoint exactly.
	g := NewFast(opt)
	if err := g.Restore(want); err != nil {
		t.Fatal(err)
	}
	back := g.Snapshot()
	for i := range want.Pages {
		if back.Pages[i] != want.Pages[i] {
			t.Fatalf("round trip reordered page %d: %+v vs %+v", i, back.Pages[i], want.Pages[i])
		}
	}
}
