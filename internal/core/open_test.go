package core

import (
	"math/rand"
	"reflect"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// openCosts builds a small mixed cost set with exact dyadic coefficients so
// bit-equality assertions are meaningful.
func openCosts(t *testing.T, tenants int, rng *rand.Rand) []costfn.Func {
	t.Helper()
	sla, err := costfn.SLARefund(4, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]costfn.Func, tenants)
	for i := range costs {
		switch rng.Intn(3) {
		case 0:
			costs[i] = costfn.Monomial{C: float64(1 + rng.Intn(2)), Beta: 2}
		case 1:
			costs[i] = costfn.Linear{W: float64(1 + rng.Intn(4))}
		default:
			costs[i] = sla
		}
	}
	return costs
}

// TestOpenMatchesDenseReplay is the open-world core's tentpole property:
// driving Open one request at a time over an incrementally discovered page
// universe must be bit-exact — identical per-request hit/miss/victim
// outcomes and a bit-equal final snapshot — with the closed-world dense
// engine replaying the same sequence from a pre-built trace.
func TestOpenMatchesDenseReplay(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, countMisses := range []bool{false, true} {
			rng := rand.New(rand.NewSource(seed*104729 + 7))
			tenants := 2 + rng.Intn(4)
			costs := openCosts(t, tenants, rng)
			opt := Options{Costs: costs, CountMisses: countMisses}
			k := 3 + rng.Intn(20)

			b := trace.NewBuilder()
			length := 2000 + rng.Intn(2000)
			pagesPer := 6 + rng.Intn(20)
			for j := 0; j < length; j++ {
				tn := rng.Intn(tenants)
				b.Add(trace.Tenant(tn), trace.PageID(int64(tn)*1000+int64(rng.Intn(pagesPer))))
			}
			tr := b.MustBuild()

			// Closed-world reference: the dense engine over Fast.
			var victims []trace.PageID
			f := NewFast(opt)
			res, err := sim.Run(tr, f, sim.Config{K: k, Engine: sim.EngineDense, Observer: func(ev sim.Event) {
				if ev.Evicted >= 0 {
					victims = append(victims, ev.Evicted)
				}
			}})
			if err != nil {
				t.Fatal(err)
			}

			// Open-world run over the raw request stream.
			o, err := NewOpen(opt, tenants, k, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			misses := make([]int64, tenants)
			evictions := make([]int64, tenants)
			hits := 0
			for _, r := range tr.Requests() {
				hit, vo, err := o.Access(r.Page, r.Tenant)
				if err != nil {
					t.Fatal(err)
				}
				if hit {
					hits++
					continue
				}
				misses[r.Tenant]++
				if vo >= 0 {
					evictions[vo]++
				}
			}

			if int64(hits) != res.Hits {
				t.Fatalf("seed=%d countMisses=%v: hits %d vs dense %d", seed, countMisses, hits, res.Hits)
			}
			for i := 0; i < tenants; i++ {
				if misses[i] != res.Misses[i] {
					t.Fatalf("seed=%d: tenant %d misses %d vs dense %d", seed, i, misses[i], res.Misses[i])
				}
				if evictions[i] != res.Evictions[i] {
					t.Fatalf("seed=%d: tenant %d evictions %d vs dense %d", seed, i, evictions[i], res.Evictions[i])
				}
			}
			sOpen, sFast := o.Snapshot(), f.Snapshot()
			if !reflect.DeepEqual(sOpen, sFast) {
				t.Fatalf("seed=%d countMisses=%v: final snapshots differ\nopen: %+v\nfast: %+v",
					seed, countMisses, sOpen, sFast)
			}
			_ = victims
		}
	}
}

// TestOpenSnapshotRestoreRoundTrip checkpoints an open-world run mid-stream,
// restores it into a fresh instance, finishes both, and demands bit-equal
// final snapshots — the live service's crash-recovery contract.
func TestOpenSnapshotRestoreRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed*7919 + 31))
		tenants := 2 + rng.Intn(3)
		costs := openCosts(t, tenants, rng)
		opt := Options{Costs: costs, CountMisses: seed%2 == 0}
		k := 4 + rng.Intn(12)
		stride := 1 + rng.Intn(4)
		base := rng.Intn(stride)

		type req struct {
			p trace.PageID
			t trace.Tenant
		}
		var reqs []req
		for j := 0; j < 3000; j++ {
			tn := rng.Intn(tenants)
			pg := int64(base) + int64(tn*500+rng.Intn(24))*int64(stride)
			reqs = append(reqs, req{trace.PageID(pg), trace.Tenant(tn)})
		}

		o, err := NewOpen(opt, tenants, k, stride, base)
		if err != nil {
			t.Fatal(err)
		}
		cut := len(reqs) / 2
		for _, r := range reqs[:cut] {
			if _, _, err := o.Access(r.p, r.t); err != nil {
				t.Fatal(err)
			}
		}
		snap := o.Snapshot()

		o2, err := NewOpen(opt, tenants, k, stride, base)
		if err != nil {
			t.Fatal(err)
		}
		if err := o2.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if o2.Used() != o.Used() {
			t.Fatalf("seed=%d: restored Used %d vs %d", seed, o2.Used(), o.Used())
		}
		if !reflect.DeepEqual(o2.Snapshot(), snap) {
			t.Fatalf("seed=%d: restore is not idempotent", seed)
		}
		for _, r := range reqs[cut:] {
			h1, v1, err1 := o.Access(r.p, r.t)
			h2, v2, err2 := o2.Access(r.p, r.t)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if h1 != h2 || v1 != v2 {
				t.Fatalf("seed=%d: diverged after restore: hit %v/%v victim owner %d/%d", seed, h1, h2, v1, v2)
			}
		}
		if !reflect.DeepEqual(o.Snapshot(), o2.Snapshot()) {
			t.Fatalf("seed=%d: final snapshots differ after restore", seed)
		}
	}
}

// TestOpenResidueClassValidation pins the slot mapping's input validation:
// ids outside the residue class, tenant range violations, and owner
// mismatches are rejected as errors rather than silently remapped.
func TestOpenResidueClassValidation(t *testing.T) {
	o, err := NewOpen(Options{}, 2, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Access(5, 0); err != nil {
		t.Fatalf("in-class page rejected: %v", err)
	}
	if _, _, err := o.Access(6, 0); err == nil {
		t.Fatal("page 6 accepted by residue class 1 mod 4")
	}
	if _, _, err := o.Access(0, 0); err == nil {
		t.Fatal("page 0 accepted by residue class 1 mod 4")
	}
	if _, _, err := o.Access(5, 1); err == nil {
		t.Fatal("owner mismatch accepted")
	}
	if _, _, err := o.Access(9, 2); err == nil {
		t.Fatal("out-of-range tenant accepted")
	}
	if _, _, err := o.Access(9, -1); err == nil {
		t.Fatal("negative tenant accepted")
	}

	if _, err := NewOpen(Options{}, 2, 4, 4, 4); err == nil {
		t.Fatal("base == stride accepted")
	}
	if _, err := NewOpen(Options{}, 2, 4, 0, 0); err == nil {
		t.Fatal("zero stride accepted")
	}
	if _, err := NewOpen(Options{}, 0, 4, 1, 0); err == nil {
		t.Fatal("zero tenants accepted")
	}
	if _, err := NewOpen(Options{}, 2, 0, 1, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

// TestOpenSinglePageTenants exercises the degenerate single-page-per-tenant
// shape: every tenant cycles through one page, so hits always land on a
// single-element list (the tailAge refresh branch) and evictions always
// empty a list. The run must match the closed-world engine bit-exactly.
func TestOpenSinglePageTenants(t *testing.T) {
	tenants := 4
	opt := Options{Costs: []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Linear{W: 2},
		costfn.Monomial{C: 2, Beta: 2},
		costfn.Linear{W: 1},
	}}
	rng := rand.New(rand.NewSource(99))
	b := trace.NewBuilder()
	type req struct {
		p trace.PageID
		t trace.Tenant
	}
	var reqs []req
	for j := 0; j < 2000; j++ {
		tn := rng.Intn(tenants)
		// One page per tenant; k < tenants forces constant eviction churn.
		b.Add(trace.Tenant(tn), trace.PageID(tn))
		reqs = append(reqs, req{trace.PageID(tn), trace.Tenant(tn)})
	}
	tr := b.MustBuild()
	k := 2

	f := NewFast(opt)
	res, err := sim.Run(tr, f, sim.Config{K: k, Engine: sim.EngineDense})
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOpen(opt, tenants, k, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, r := range reqs {
		h, _, err := o.Access(r.p, r.t)
		if err != nil {
			t.Fatal(err)
		}
		if h {
			hits++
		}
	}
	if int64(hits) != res.Hits {
		t.Fatalf("hits %d vs dense %d", hits, res.Hits)
	}
	if !reflect.DeepEqual(o.Snapshot(), f.Snapshot()) {
		t.Fatal("final snapshots differ")
	}
}

// TestVictimCursorMatchesFullScan is the satellite differential property:
// with the incremental victim cursor enabled (the default) and disabled
// (Options.NoVictimCursor), victim selection must be identical — the cursor
// only ever caches a UNIQUE strict argmin, so it can never disagree with
// the full scan's tie-broken answer. Runs both the closed-world batched
// engine and the open-world step across cost families and counter modes.
func TestVictimCursorMatchesFullScan(t *testing.T) {
	costSets := denseCostSets(t)
	for name, mkCost := range costSets {
		for _, countMisses := range []bool{false, true} {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed*6151 + 17))
				tenants := 2 + rng.Intn(4)
				costs := make([]costfn.Func, tenants)
				for i := range costs {
					costs[i] = mkCost(rng)
				}
				b := trace.NewBuilder()
				length := 4000
				pages := 6 + rng.Intn(24)
				for j := 0; j < length; j++ {
					tn := rng.Intn(tenants)
					b.Add(trace.Tenant(tn), trace.PageID(int64(tn)*1_000_000+int64(rng.Intn(pages))))
				}
				tr := b.MustBuild()
				k := 3 + rng.Intn(24)
				opt := Options{Costs: costs, CountMisses: countMisses, ForceVictimCursor: true}
				optNC := opt
				optNC.NoVictimCursor = true
				cur := runWithLog(t, tr, NewFast(opt), k)
				ref := runWithLog(t, tr, NewFast(optNC), k)
				if !equalLogs(t, name+"/cursor-vs-scan", cur, ref) {
					t.Fatalf("costs=%s countMisses=%v seed=%d k=%d", name, countMisses, seed, k)
				}

				oc, err := NewOpen(opt, tenants, k, 1, 0)
				if err != nil {
					t.Fatal(err)
				}
				on, err := NewOpen(optNC, tenants, k, 1, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range tr.Requests() {
					h1, v1, err1 := oc.Access(r.Page, r.Tenant)
					h2, v2, err2 := on.Access(r.Page, r.Tenant)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if h1 != h2 || v1 != v2 {
						t.Fatalf("open-world cursor diverged: costs=%s seed=%d", name, seed)
					}
				}
				if !reflect.DeepEqual(oc.Snapshot(), on.Snapshot()) {
					t.Fatalf("open-world cursor snapshots differ: costs=%s seed=%d", name, seed)
				}
			}
		}
	}
}
