package core

import (
	"fmt"
	"math"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

var inf = math.Inf(1)

// Open is the open-world front end of the dense core: the same 32 B
// pageRec / 40 B tenantHot state machine the closed-world replay engine
// runs, driven one request at a time over a page universe discovered
// incrementally. It exists for the live cache service, whose shards learn
// their pages from client keys as they arrive — no trace, no pre-built
// trace.Dense — but must stay bit-exact with a closed-world replay of their
// merged logs (the /v1/cache/verify contract).
//
// Pages are identified by residue-class ids: shard s of n owns exactly the
// ids ≡ s (mod n), which is what the cached interner assigns, so the slot
// of page p is (p - base)/stride and the mapping back is base + slot*stride.
// Arithmetic, not a hash map, on the hot path; the record table grows on
// first touch.
//
// Open is not safe for concurrent use; the service gives each shard
// goroutine its own instance.
type Open struct {
	opt     Options
	tenants int
	stride  int64
	base    int64
	denseCore
}

// OpenWorld builds an open-world core sharing this instance's Options:
// tenants fixes the tenant-id universe, k the capacity, and (stride, base)
// the residue class of admissible page ids (base + j*stride for j ≥ 0).
func (f *Fast) OpenWorld(tenants, k, stride, base int) (*Open, error) {
	return NewOpen(f.opt, tenants, k, stride, base)
}

// NewOpen builds an open-world dense core.
func NewOpen(opt Options, tenants, k, stride, base int) (*Open, error) {
	if tenants < 1 {
		return nil, fmt.Errorf("core: open-world core needs at least one tenant, got %d", tenants)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: open-world core needs capacity >= 1, got %d", k)
	}
	if stride < 1 || base < 0 || base >= stride {
		return nil, fmt.Errorf("core: invalid residue class %d mod %d", base, stride)
	}
	o := &Open{opt: opt, tenants: tenants, stride: int64(stride), base: int64(base)}
	o.th = make([]tenantHot, tenants)
	o.m = make([]float64, tenants)
	o.fs = make([]costfn.Func, tenants)
	o.cb = make([]float64, tenants)
	o.initTenants(opt, tenants, k)
	return o, nil
}

// Reset reinitializes the core to its empty state, keeping the grown record
// table's capacity.
func (o *Open) Reset() {
	o.initTenants(o.opt, o.tenants, o.k)
	o.pr = o.pr[:0]
}

// slot maps page id p to its record index, growing the table on first
// touch. Ids outside the residue class are a routing bug upstream and are
// rejected rather than silently remapped.
func (o *Open) slot(p trace.PageID) (int32, error) {
	d := int64(p) - o.base
	var ix int64
	if o.stride == 1 {
		// Single-shard services own every page; skip the int64 divide, which
		// is the most expensive instruction on this otherwise additive path.
		if d < 0 {
			return 0, fmt.Errorf("core: page %d outside residue class %d mod %d", p, o.base, o.stride)
		}
		ix = d
	} else {
		if d < 0 || d%o.stride != 0 {
			return 0, fmt.Errorf("core: page %d outside residue class %d mod %d", p, o.base, o.stride)
		}
		ix = d / o.stride
	}
	if ix > math.MaxInt32 {
		return 0, fmt.Errorf("core: page %d exceeds the open-world index range", p)
	}
	if n := ix + 1; int64(len(o.pr)) < n {
		if int64(cap(o.pr)) < n {
			// Double (at least) rather than letting append's large-slice
			// policy reallocate every ~25% growth — the table is hot state
			// and each reallocation copies the whole resident working set.
			nc := max(int64(2*cap(o.pr)), n, 256)
			np := make([]pageRec, len(o.pr), nc)
			copy(np, o.pr)
			o.pr = np
		}
		for int64(len(o.pr)) < n {
			o.pr = append(o.pr, pageRec{prev: -1, next: -1, owner: -1})
		}
	}
	return int32(ix), nil
}

// Access serves one request: page p by tenant t. It reports whether the
// request hit and, when the miss evicted a page, the victim's owner (-1
// otherwise). The step it runs is the shared denseCore step — identical
// event order and arithmetic to the replay engine's batched loop — so a
// sequence of Access calls is bit-exact with a closed-world replay of the
// same requests.
func (o *Open) Access(p trace.PageID, t trace.Tenant) (hit bool, victimOwner trace.Tenant, err error) {
	if int(t) < 0 || int(t) >= o.tenants {
		return false, -1, fmt.Errorf("core: tenant %d outside [0,%d)", t, o.tenants)
	}
	ix, err := o.slot(p)
	if err != nil {
		return false, -1, err
	}
	r := &o.pr[ix]
	if r.owner < 0 {
		// First touch binds the page to its tenant. Keys are tenant-scoped
		// upstream, so a page never changes owners; a mismatch is interner
		// corruption, not a workload property.
		r.owner = int32(t)
	} else if r.owner != int32(t) {
		return false, -1, fmt.Errorf("core: page %d owned by tenant %d, accessed by %d", p, r.owner, t)
	}
	h, vo, err := o.step(ix)
	if err != nil {
		return false, -1, err
	}
	return h, trace.Tenant(vo), nil
}

// Used returns the number of resident pages.
func (o *Open) Used() int { return o.used }

// Misses returns the internal per-tenant counter m(i, t).
func (o *Open) Misses(i trace.Tenant) float64 {
	if int(i) < 0 || int(i) >= o.tenants {
		return 0
	}
	return o.m[i]
}

// Snapshot captures the core's state in the same FastSnapshot format the
// closed-world backend serializes — per-tenant most-recent-first page walks
// with ids mapped back out of the slot table — so checkpoints written by a
// dense-mode shard are restorable by a map-mode one and vice versa.
func (o *Open) Snapshot() FastSnapshot {
	s := FastSnapshot{
		Aging:   o.aging,
		Misses:  make(map[trace.Tenant]float64, len(o.m)),
		NextSeq: int(o.nextSeq),
	}
	for i, m := range o.m {
		if m != 0 {
			s.Misses[trace.Tenant(i)] = m
		}
	}
	for i := range o.th {
		// Stop at the recorded tail, not at a -1 next link: popTail retires
		// tails without rewriting the new tail's next pointer.
		for p := o.th[i].head; p >= 0; {
			s.Pages = append(s.Pages, PageSnapshot{
				Page:     trace.PageID(o.base + int64(p)*o.stride),
				Owner:    trace.Tenant(i),
				AgeStart: o.pr[p].ageStart,
				Seq:      int(o.pr[p].seq),
			})
			if p == o.th[i].tail {
				break
			}
			p = o.pr[p].next
		}
	}
	return s
}

// Restore replaces the core's state with the snapshot. The snapshot's
// per-tenant miss counters fully determine every marginal (marg is a pure
// function of m(i)), so marginals are recomputed rather than serialized and
// the restored state is bit-identical to the snapshotted one.
func (o *Open) Restore(s FastSnapshot) error {
	o.Reset()
	o.aging = s.Aging
	o.nextSeq = int64(s.NextSeq)
	for i, m := range s.Misses {
		if int(i) < 0 || int(i) >= o.tenants {
			return fmt.Errorf("core: snapshot tenant %d outside [0,%d)", i, o.tenants)
		}
		o.m[i] = m
		o.th[i].marg = o.margAt(i)
		o.th[i].key = o.th[i].marg // tailAge is zero until a page lands
	}
	// Pages arrive most-recent-first per tenant; pushBack preserves order.
	for _, ps := range s.Pages {
		if int(ps.Owner) < 0 || int(ps.Owner) >= o.tenants {
			return fmt.Errorf("core: snapshot page %d owned by unknown tenant %d", ps.Page, ps.Owner)
		}
		ix, err := o.slot(ps.Page)
		if err != nil {
			return err
		}
		r := &o.pr[ix]
		if r.resident != 0 {
			return fmt.Errorf("core: snapshot lists page %d twice", ps.Page)
		}
		r.owner = int32(ps.Owner)
		r.ageStart = ps.AgeStart
		r.seq = int64(ps.Seq)
		r.resident = 1
		o.pushBack(ps.Owner, ix)
		o.used++
	}
	if o.used > o.k {
		return fmt.Errorf("core: snapshot holds %d pages, capacity %d", o.used, o.k)
	}
	return nil
}
