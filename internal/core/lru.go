package core

import (
	"fmt"
	"math"

	"convexcache/internal/trace"
)

// LRUTable is the dense core's intrusive per-tenant recency machinery
// exposed on its own, for engines that need per-tenant LRU lists but not
// the budget arithmetic — the partition-mode quota engine being the user in
// this repo. It shares the 32 B pageRec layout and the residue-class slot
// mapping of the open-world core: page ids base + j*stride index a growable
// record table, each record carrying the intrusive links, the owner, and
// the residency flag (the budget fields ride along unused, keeping the
// layout — and the cache behavior of a mixed deployment — identical).
//
// Not safe for concurrent use.
type LRUTable struct {
	stride, base int64
	pr           []pageRec
	head, tail   []int32
	size         []int
	total        int
}

// NewLRUTable builds an empty table for the given tenant universe and
// residue class (page ids base + j*stride for j ≥ 0).
func NewLRUTable(tenants, stride, base int) (*LRUTable, error) {
	if tenants < 1 {
		return nil, fmt.Errorf("core: LRU table needs at least one tenant, got %d", tenants)
	}
	if stride < 1 || base < 0 || base >= stride {
		return nil, fmt.Errorf("core: invalid residue class %d mod %d", base, stride)
	}
	t := &LRUTable{
		stride: int64(stride),
		base:   int64(base),
		head:   make([]int32, tenants),
		tail:   make([]int32, tenants),
		size:   make([]int, tenants),
	}
	for i := range t.head {
		t.head[i] = -1
		t.tail[i] = -1
	}
	return t, nil
}

// slot maps page id p to its record index, growing the table on first touch.
func (t *LRUTable) slot(p trace.PageID) (int32, error) {
	d := int64(p) - t.base
	if d < 0 || d%t.stride != 0 {
		return 0, fmt.Errorf("core: page %d outside residue class %d mod %d", p, t.base, t.stride)
	}
	ix := d / t.stride
	if ix > math.MaxInt32 {
		return 0, fmt.Errorf("core: page %d exceeds the LRU table index range", p)
	}
	for int64(len(t.pr)) <= ix {
		t.pr = append(t.pr, pageRec{prev: -1, next: -1, owner: -1})
	}
	return int32(ix), nil
}

// pageOf maps a record index back to its page id.
func (t *LRUTable) pageOf(ix int32) trace.PageID {
	return trace.PageID(t.base + int64(ix)*t.stride)
}

// Touch moves page p to the front of tenant i's list if resident, reporting
// whether it was. An id outside the table's residue class is an error.
func (t *LRUTable) Touch(p trace.PageID, i trace.Tenant) (bool, error) {
	ix, err := t.slot(p)
	if err != nil {
		return false, err
	}
	r := &t.pr[ix]
	if r.resident == 0 {
		return false, nil
	}
	if r.owner != int32(i) {
		return false, fmt.Errorf("core: page %d owned by tenant %d, touched by %d", p, r.owner, i)
	}
	if t.head[i] != ix {
		t.unlink(i, ix)
		t.pushFront(i, ix)
	}
	return true, nil
}

// Insert links page p at the front of tenant i's list. Inserting a resident
// page is a caller bug and rejected.
func (t *LRUTable) Insert(p trace.PageID, i trace.Tenant) error {
	ix, err := t.slot(p)
	if err != nil {
		return err
	}
	r := &t.pr[ix]
	if r.resident != 0 {
		return fmt.Errorf("core: page %d inserted while resident", p)
	}
	r.owner = int32(i)
	r.resident = 1
	t.pushFront(i, ix)
	t.size[i]++
	t.total++
	return nil
}

// PushBack links page p at the BACK of tenant i's list — the restore path's
// primitive (snapshots list pages most-recent-first).
func (t *LRUTable) PushBack(p trace.PageID, i trace.Tenant) error {
	ix, err := t.slot(p)
	if err != nil {
		return err
	}
	r := &t.pr[ix]
	if r.resident != 0 {
		return fmt.Errorf("core: page %d inserted while resident", p)
	}
	r.owner = int32(i)
	r.resident = 1
	r.prev = t.tail[i]
	r.next = -1
	if tl := t.tail[i]; tl >= 0 {
		t.pr[tl].next = ix
	} else {
		t.head[i] = ix
	}
	t.tail[i] = ix
	t.size[i]++
	t.total++
	return nil
}

// PopTail evicts and returns tenant i's least-recently-used page; ok is
// false when the tenant holds nothing.
func (t *LRUTable) PopTail(i trace.Tenant) (trace.PageID, bool) {
	ix := t.tail[i]
	if ix < 0 {
		return 0, false
	}
	t.unlink(i, ix)
	t.pr[ix].resident = 0
	t.size[i]--
	t.total--
	return t.pageOf(ix), true
}

// Len returns tenant i's resident page count.
func (t *LRUTable) Len(i trace.Tenant) int { return t.size[i] }

// Total returns the resident page count across all tenants.
func (t *LRUTable) Total() int { return t.total }

// Resident reports whether page p is cached. Ids outside the residue class
// are simply not resident.
func (t *LRUTable) Resident(p trace.PageID) bool {
	d := int64(p) - t.base
	if d < 0 || d%t.stride != 0 {
		return false
	}
	ix := d / t.stride
	if ix >= int64(len(t.pr)) {
		return false
	}
	return t.pr[ix].resident != 0
}

// PagesMRU returns tenant i's resident pages most-recent-first.
func (t *LRUTable) PagesMRU(i trace.Tenant) []int64 {
	out := make([]int64, 0, t.size[i])
	for ix := t.head[i]; ix >= 0; ix = t.pr[ix].next {
		out = append(out, int64(t.pageOf(ix)))
	}
	return out
}

func (t *LRUTable) pushFront(i trace.Tenant, ix int32) {
	h := t.head[i]
	t.pr[ix].prev = -1
	t.pr[ix].next = h
	if h >= 0 {
		t.pr[h].prev = ix
	} else {
		t.tail[i] = ix
	}
	t.head[i] = ix
}

func (t *LRUTable) unlink(i trace.Tenant, ix int32) {
	pr, nx := t.pr[ix].prev, t.pr[ix].next
	if pr >= 0 {
		t.pr[pr].next = nx
	} else {
		t.head[i] = nx
	}
	if nx >= 0 {
		t.pr[nx].prev = pr
	} else {
		t.tail[i] = pr
	}
	t.pr[ix].prev = -1
	t.pr[ix].next = -1
}
