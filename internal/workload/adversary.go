package workload

import (
	"fmt"

	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Adversary is the cruel request source from the proof of Theorem 1.4:
// n single-page tenants (tenant i owns exactly page i) against a cache of
// size k = n-1, always requesting the one page the online algorithm does not
// hold. Every request after the first n-1 warm-up fills is a forced miss for
// any deterministic online algorithm.
//
// It implements sim.RequestSource for use with sim.RunInteractive.
type Adversary struct {
	n int
}

// NewAdversary builds the adversary for n >= 2 tenants.
func NewAdversary(n int) (*Adversary, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: adversary needs n >= 2 tenants, got %d", n)
	}
	return &Adversary{n: n}, nil
}

// CacheSize returns the cache size k = n-1 the construction prescribes.
func (a *Adversary) CacheSize() int { return a.n - 1 }

// Next implements sim.RequestSource: during warm-up it requests pages
// 0..n-2 in order; afterwards it requests the unique missing page.
func (a *Adversary) Next(step int, cache sim.CacheView) trace.Request {
	if step < a.n-1 {
		return trace.Request{Page: trace.PageID(step), Tenant: trace.Tenant(step)}
	}
	for p := 0; p < a.n; p++ {
		if !cache.Contains(trace.PageID(p)) {
			return trace.Request{Page: trace.PageID(p), Tenant: trace.Tenant(p)}
		}
	}
	// The cache cannot hold all n pages with k = n-1; unreachable.
	panic("workload: adversary found no missing page")
}

// BatchedOfflineCost computes the cost achieved by the offline strategy in
// the proof of Theorem 1.4 on the materialized adversarial trace: requests
// are processed in batches of length (n-1)/2; at the start of each batch the
// offline algorithm evicts one page that is not requested within the batch,
// choosing among the candidates the page with the fewest evictions so far.
// It returns the per-tenant eviction counts of that strategy (its misses up
// to the initial fills).
//
// The trace must be an adversary-generated sequence over pages 0..n-1.
func BatchedOfflineCost(tr *trace.Trace, n int) ([]int64, error) {
	if n < 3 {
		return nil, fmt.Errorf("workload: batched offline needs n >= 3, got %d", n)
	}
	batch := (n - 1) / 2
	if batch < 1 {
		batch = 1
	}
	reqs := tr.Requests()
	evictions := make([]int64, n)
	// The offline cache also has k = n-1 slots; after warm-up it holds all
	// pages except one. Track the missing page.
	inCache := make([]bool, n)
	filled := 0
	i := 0
	// Warm-up: serve requests while the cache is not yet full.
	for ; i < len(reqs) && filled < n-1; i++ {
		p := int(reqs[i].Page)
		if p >= n {
			return nil, fmt.Errorf("workload: page %d out of adversary universe %d", p, n)
		}
		if !inCache[p] {
			inCache[p] = true
			filled++
		}
	}
	for i < len(reqs) {
		end := i + batch
		if end > len(reqs) {
			end = len(reqs)
		}
		// Pages requested in this batch.
		needed := make(map[int]bool, batch)
		for j := i; j < end; j++ {
			needed[int(reqs[j].Page)] = true
		}
		// If the currently missing page is requested in the batch, bring it
		// in by evicting a page not needed in this batch with the fewest
		// evictions so far (the proof's balancing rule).
		missing := -1
		for p := 0; p < n; p++ {
			if !inCache[p] {
				missing = p
				break
			}
		}
		if missing >= 0 && needed[missing] {
			victim := -1
			for p := 0; p < n; p++ {
				if inCache[p] && !needed[p] {
					if victim == -1 || evictions[p] < evictions[victim] {
						victim = p
					}
				}
			}
			if victim == -1 {
				return nil, fmt.Errorf("workload: no evictable page in batch starting at %d", i)
			}
			inCache[victim] = false
			inCache[missing] = true
			evictions[victim]++
		}
		i = end
	}
	return evictions, nil
}
