package workload

import (
	"strings"
	"testing"
)

func TestParseStreamKinds(t *testing.T) {
	cases := []struct {
		spec     string
		pages    int64
		wantRate float64
	}{
		{"zipf:100,1.0", 100, 1},
		{"zipf:100,1.0:2.5", 100, 2.5},
		{"uniform:64", 64, 1},
		{"scan:50:2", 50, 2},
		{"hotset:200,25,0.95,500", 200, 1},
		{"markov:400,0.7,5", 400, 1},
		{"db:600,0.95,0.02,12:3", 0, 3}, // db derives its own page total
	}
	for _, tc := range cases {
		st, rate, err := ParseStream(tc.spec, 7)
		if err != nil {
			t.Errorf("ParseStream(%q): %v", tc.spec, err)
			continue
		}
		if rate != tc.wantRate {
			t.Errorf("ParseStream(%q) rate = %g, want %g", tc.spec, rate, tc.wantRate)
		}
		if tc.pages > 0 && st.Pages() != tc.pages {
			t.Errorf("ParseStream(%q) pages = %d, want %d", tc.spec, st.Pages(), tc.pages)
		}
	}
}

func TestParseStreamErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"zipf", "want KIND:PARAMS"},
		{"zipf:100,1.0:2:9", "want KIND:PARAMS"},
		{"warp:100", "unknown stream kind"},
		{"zipf:100", "wants 2 parameters"},
		{"zipf:100,1.0,9", "wants 2 parameters"},
		{"scan:50:-1", "bad rate"},
		{"scan:50:x", "bad rate"},
		{"uniform:abc", "bad number"},
	}
	for _, tc := range cases {
		_, _, err := ParseStream(tc.spec, 1)
		if err == nil {
			t.Errorf("ParseStream(%q) succeeded, want error containing %q", tc.spec, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseStream(%q) error %q, want substring %q", tc.spec, err, tc.want)
		}
	}
}

func TestParseStreamDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []int64 {
		st, _, err := ParseStream("zipf:500,0.9", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, 32)
		for i := range out {
			out[i] = st.Next()
		}
		return out
	}
	a, b, c := draw(7), draw(7), draw(8)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different streams")
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}
