package workload

import (
	"testing"

	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(1, 0, 1); err == nil {
		t.Error("zipf with n=0 accepted")
	}
	if _, err := NewZipf(1, 10, -1); err == nil {
		t.Error("zipf with negative exponent accepted")
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	z, err := NewZipf(42, 100, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		p := z.Next()
		if p < 0 || p >= 100 {
			t.Fatalf("page %d out of range", p)
		}
		counts[p]++
	}
	// Rank 0 must dominate rank 10 and rank 10 dominate rank 50 strongly.
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Errorf("zipf not skewed: c0=%d c10=%d c50=%d", counts[0], counts[10], counts[50])
	}
	// Theory: p(0)/p(9) = 10^1.2 ~ 15.8; allow a loose band.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 50 {
		t.Errorf("rank0/rank9 ratio %g outside plausible band", ratio)
	}
}

func TestZipfZeroExponentIsUniformish(t *testing.T) {
	z, err := NewZipf(7, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	for p, c := range counts {
		if c < 1500 || c > 2500 {
			t.Errorf("page %d count %d far from uniform 2000", p, c)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, _ := NewZipf(5, 50, 1)
	b, _ := NewZipf(5, 50, 1)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestUniform(t *testing.T) {
	if _, err := NewUniform(1, 0); err == nil {
		t.Error("uniform with n=0 accepted")
	}
	u, err := NewUniform(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		p := u.Next()
		if p < 0 || p >= 8 {
			t.Fatalf("page %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 8 {
		t.Errorf("only %d of 8 pages seen", len(seen))
	}
}

func TestScanCycles(t *testing.T) {
	s, err := NewScan(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("scan step %d = %d, want %d", i, got, w)
		}
	}
	if _, err := NewScan(0); err == nil {
		t.Error("scan with n=0 accepted")
	}
}

func TestHotSetConcentration(t *testing.T) {
	h, err := NewHotSet(9, 100, 5, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for i := 0; i < 10000; i++ {
		if h.Next() < 5 {
			hot++
		}
	}
	if hot < 8500 || hot > 9500 {
		t.Errorf("hot accesses %d/10000, want ~9000", hot)
	}
}

func TestHotSetPhaseRotation(t *testing.T) {
	h, err := NewHotSet(9, 100, 10, 1.0, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 0: pages 0..9; phase 1: pages 10..19.
	for i := 0; i < 50; i++ {
		if p := h.Next(); p >= 10 {
			t.Fatalf("phase 0 access %d outside first hot window", p)
		}
	}
	for i := 0; i < 50; i++ {
		if p := h.Next(); p < 10 || p >= 20 {
			t.Fatalf("phase 1 access %d outside second hot window", p)
		}
	}
}

func TestHotSetValidation(t *testing.T) {
	if _, err := NewHotSet(1, 10, 0, 0.5, 0); err == nil {
		t.Error("hot=0 accepted")
	}
	if _, err := NewHotSet(1, 10, 20, 0.5, 0); err == nil {
		t.Error("hot>n accepted")
	}
	if _, err := NewHotSet(1, 10, 5, 1.5, 0); err == nil {
		t.Error("hotProb>1 accepted")
	}
}

func TestMarkovLocality(t *testing.T) {
	m, err := NewMarkov(4, 1000, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := m.Next()
	stays := 0
	for i := 0; i < 10000; i++ {
		cur := m.Next()
		if cur == prev {
			stays++
		}
		prev = cur
	}
	if stays < 7000 || stays > 9000 {
		t.Errorf("stays = %d/10000, want ~8000", stays)
	}
	if _, err := NewMarkov(1, 0, 0.5, 1); err == nil {
		t.Error("markov with n=0 accepted")
	}
	if _, err := NewMarkov(1, 10, 2, 1); err == nil {
		t.Error("stay>1 accepted")
	}
}

func TestMixOwnershipAndRates(t *testing.T) {
	z0, _ := NewZipf(1, 20, 1)
	z1, _ := NewZipf(2, 20, 1)
	tr, err := Mix(3, []TenantStream{
		{Tenant: 0, Stream: z0, Rate: 3},
		{Tenant: 1, Stream: z1, Rate: 1},
	}, 8000)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.ComputeStats()
	frac := float64(s.PerTenantRequests[0]) / 8000
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("tenant 0 got fraction %g, want ~0.75", frac)
	}
	// Ownership is namespaced: every page of tenant 1 lives in its slab.
	for _, p := range tr.PagesOf(1) {
		if p < PageOf(1, 0) || p >= PageOf(2, 0) {
			t.Errorf("tenant 1 page %d outside namespace", p)
		}
	}
}

func TestMixValidation(t *testing.T) {
	z, _ := NewZipf(1, 5, 1)
	if _, err := Mix(1, nil, 10); err == nil {
		t.Error("empty streams accepted")
	}
	if _, err := Mix(1, []TenantStream{{Tenant: 0, Stream: z, Rate: 0}}, 10); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Mix(1, []TenantStream{{Tenant: 0, Stream: z, Rate: 1}}, 0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestRoundRobin(t *testing.T) {
	s0, _ := NewScan(3)
	s1, _ := NewScan(3)
	tr, err := RoundRobin([]TenantStream{
		{Tenant: 0, Stream: s0, Rate: 1},
		{Tenant: 1, Stream: s1, Rate: 1},
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if got, want := tr.At(i).Tenant, trace.Tenant(i%2); got != want {
			t.Fatalf("step %d tenant = %d, want %d", i, got, want)
		}
	}
	if _, err := RoundRobin(nil, 5); err == nil {
		t.Error("empty round-robin accepted")
	}
}

func TestAdversaryForcesMissesOnEveryPolicy(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		adv, err := NewAdversary(n)
		if err != nil {
			t.Fatal(err)
		}
		k := adv.CacheSize()
		for _, mk := range []func() sim.Policy{
			func() sim.Policy { return policy.NewLRU() },
			func() sim.Policy { return policy.NewFIFO() },
			func() sim.Policy { return policy.NewMarking() },
		} {
			p := mk()
			res, _, err := sim.RunInteractive(adv, 200, p, sim.Config{K: k})
			if err != nil {
				t.Fatal(err)
			}
			if res.Hits != 0 {
				t.Errorf("n=%d %s: adversary allowed %d hits", n, p.Name(), res.Hits)
			}
		}
	}
}

func TestAdversaryValidation(t *testing.T) {
	if _, err := NewAdversary(1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestBatchedOfflineCostBeatsOnline(t *testing.T) {
	// The offline strategy makes at most one eviction per batch of
	// (n-1)/2 requests, so its total evictions are about a (n-1)/2 factor
	// below the online algorithm's (which misses every request).
	n := 9
	adv, _ := NewAdversary(n)
	steps := 2000
	res, tr, err := sim.RunInteractive(adv, steps, policy.NewLRU(), sim.Config{K: adv.CacheSize()})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := BatchedOfflineCost(tr, n)
	if err != nil {
		t.Fatal(err)
	}
	var offline, online int64
	for i := 0; i < n; i++ {
		offline += ev[i]
		online += res.Misses[i]
	}
	batch := int64((n - 1) / 2)
	if offline > int64(steps)/batch+1 {
		t.Errorf("offline evictions %d exceed one per batch bound %d", offline, int64(steps)/batch+1)
	}
	if online < int64(steps)-int64(n) {
		t.Errorf("online misses %d suspiciously low", online)
	}
	// Balancing rule: max per-page evictions is within the proof's bound
	// 2T/((n+1)/2 * (n-1)/2) + 1 up to rounding slack.
	bound := float64(steps)/(float64((n+1)/2)*float64((n-1)/2)) + 2
	for p, e := range ev {
		if float64(e) > bound {
			t.Errorf("page %d evicted %d times, bound %g", p, e, bound)
		}
	}
}

func TestBatchedOfflineCostValidation(t *testing.T) {
	if _, err := BatchedOfflineCost(nil, 2); err == nil {
		t.Error("n=2 accepted")
	}
	// Pages outside the universe are rejected.
	b := trace.NewBuilder().Add(0, 99)
	tr := b.MustBuild()
	if _, err := BatchedOfflineCost(tr, 5); err == nil {
		t.Error("out-of-universe page accepted")
	}
}
