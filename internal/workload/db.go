package workload

import (
	"fmt"
	"math/rand"
)

// DB simulates a database tenant's buffer-pool access pattern, the workload
// family of the paper's SQLVM motivation: every logical row access walks a
// B-tree (root, one internal level, a leaf) and then touches a heap page;
// point queries hit Zipf-distributed keys, while occasional range scans
// sweep consecutive leaves and heap pages. Index upper levels are tiny and
// scorching hot — exactly the structure that makes cache partitioning
// decisions interesting.
type DB struct {
	rng *rand.Rand

	heapPages int64
	leafPages int64
	internal  int64

	zipf     *Zipf
	scanProb float64
	scanLen  int64

	// Page-id layout: [root][internal...][leaves...][heap...].
	internalBase int64
	leafBase     int64
	heapBase     int64
	total        int64

	// Pending pages to emit (a row access expands to several pages).
	pending []int64
}

// NewDB builds the generator: heapPages data pages (one per key region),
// skew is the Zipf exponent over keys, scanProb the probability a logical
// access is a range scan of scanLen rows.
func NewDB(seed int64, heapPages int64, skew, scanProb float64, scanLen int64) (*DB, error) {
	if heapPages < 4 {
		return nil, fmt.Errorf("workload: db needs >= 4 heap pages, got %d", heapPages)
	}
	if scanProb < 0 || scanProb > 1 {
		return nil, fmt.Errorf("workload: scan probability %g out of [0,1]", scanProb)
	}
	if scanLen <= 0 {
		scanLen = 16
	}
	leaves := heapPages / 4 // ~4 heap pages per leaf's key range
	if leaves < 1 {
		leaves = 1
	}
	internal := leaves / 64
	if internal < 1 {
		internal = 1
	}
	z, err := NewZipf(seed, heapPages, skew)
	if err != nil {
		return nil, err
	}
	d := &DB{
		rng:       rand.New(rand.NewSource(seed ^ 0x5bf0_3635)),
		heapPages: heapPages,
		leafPages: leaves,
		internal:  internal,
		zipf:      z,
		scanProb:  scanProb,
		scanLen:   scanLen,
	}
	d.internalBase = 1
	d.leafBase = d.internalBase + internal
	d.heapBase = d.leafBase + leaves
	d.total = d.heapBase + heapPages
	return d, nil
}

// Pages implements Stream.
func (d *DB) Pages() int64 { return d.total }

// Next implements Stream: emits the pending page walk, starting a new
// logical access when drained.
func (d *DB) Next() int64 {
	if len(d.pending) == 0 {
		d.startAccess()
	}
	p := d.pending[0]
	d.pending = d.pending[1:]
	return p
}

// startAccess expands one logical row access into page touches.
func (d *DB) startAccess() {
	key := d.zipf.Next() // hot keys cluster at low ids
	if d.rng.Float64() < d.scanProb {
		// Range scan: consecutive leaves + heap pages from the key on.
		d.pending = append(d.pending, 0) // root
		for i := int64(0); i < d.scanLen; i++ {
			h := (key + i) % d.heapPages
			d.pending = append(d.pending, d.leafOf(h), d.heapBase+h)
		}
		return
	}
	// Point access: root, internal, leaf, heap.
	d.pending = append(d.pending,
		0,
		d.internalOf(key),
		d.leafOf(key),
		d.heapBase+key,
	)
}

func (d *DB) leafOf(key int64) int64 {
	return d.leafBase + key*d.leafPages/d.heapPages
}

func (d *DB) internalOf(key int64) int64 {
	return d.internalBase + key*d.internal/d.heapPages
}
