package workload_test

import (
	"fmt"

	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// ExampleMix interleaves two tenant streams into a shared trace.
func ExampleMix() {
	scan, _ := workload.NewScan(3)
	loop, _ := workload.NewScan(2)
	tr, _ := workload.Mix(1, []workload.TenantStream{
		{Tenant: 0, Stream: scan, Rate: 1},
		{Tenant: 1, Stream: loop, Rate: 1},
	}, 6)
	s := tr.ComputeStats()
	fmt.Printf("requests=%d tenants=%d\n", s.Requests, s.Tenants)
	// Output:
	// requests=6 tenants=2
}

// ExampleNewAdversary shows the Theorem 1.4 construction: every request
// targets the page the online cache is missing.
func ExampleNewAdversary() {
	adv, _ := workload.NewAdversary(4)
	fmt.Printf("tenants=4 cache=%d\n", adv.CacheSize())
	// Output:
	// tenants=4 cache=3
}

// ExampleNewDB emits B-tree page walks: root, internal, leaf, heap.
func ExampleNewDB() {
	db, _ := workload.NewDB(1, 400, 0.8, 0, 16)
	walk := []trace.PageID{
		trace.PageID(db.Next()), trace.PageID(db.Next()),
		trace.PageID(db.Next()), trace.PageID(db.Next()),
	}
	fmt.Printf("walk starts at root: %v\n", walk[0] == 0)
	fmt.Printf("walk descends: %v\n", walk[0] < walk[1] && walk[1] < walk[2] && walk[2] < walk[3])
	// Output:
	// walk starts at root: true
	// walk descends: true
}
