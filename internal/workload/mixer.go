package workload

import (
	"fmt"
	"math/rand"

	"convexcache/internal/trace"
)

// TenantStream binds a page stream to a tenant with a relative request
// rate. Page offsets are namespaced per tenant so ownership never clashes.
type TenantStream struct {
	// Tenant is the owner of the stream's pages.
	Tenant trace.Tenant
	// Stream produces page offsets within the tenant's namespace.
	Stream Stream
	// Rate is the tenant's relative request frequency; must be positive.
	Rate float64
}

// pageSpace is the id stride separating tenant page namespaces.
const pageSpace = int64(1) << 32

// PageOf maps a tenant-local page offset into the global page id space.
func PageOf(t trace.Tenant, offset int64) trace.PageID {
	return trace.PageID(int64(t)*pageSpace + offset)
}

// Mix interleaves the tenant streams into a trace of the given length,
// choosing the next tenant i.i.d. proportionally to the rates.
func Mix(seed int64, streams []TenantStream, length int) (*trace.Trace, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("workload: mix needs at least one stream")
	}
	if length <= 0 {
		return nil, fmt.Errorf("workload: mix needs positive length, got %d", length)
	}
	total := 0.0
	for _, s := range streams {
		if s.Rate <= 0 {
			return nil, fmt.Errorf("workload: tenant %d has non-positive rate %g", s.Tenant, s.Rate)
		}
		if s.Stream.Pages() >= pageSpace {
			return nil, fmt.Errorf("workload: tenant %d page universe too large", s.Tenant)
		}
		total += s.Rate
	}
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder()
	for i := 0; i < length; i++ {
		u := rng.Float64() * total
		idx := 0
		for u > streams[idx].Rate && idx < len(streams)-1 {
			u -= streams[idx].Rate
			idx++
		}
		s := streams[idx]
		b.Add(s.Tenant, PageOf(s.Tenant, s.Stream.Next()))
	}
	return b.Build()
}

// RoundRobin interleaves the tenant streams deterministically in turn
// (ignoring rates), useful for exactly reproducible interleavings.
func RoundRobin(streams []TenantStream, length int) (*trace.Trace, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("workload: round-robin needs at least one stream")
	}
	if length <= 0 {
		return nil, fmt.Errorf("workload: round-robin needs positive length, got %d", length)
	}
	b := trace.NewBuilder()
	for i := 0; i < length; i++ {
		s := streams[i%len(streams)]
		b.Add(s.Tenant, PageOf(s.Tenant, s.Stream.Next()))
	}
	return b.Build()
}
