package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseStream builds one stream from the compact spec syntax shared by
// cmd/tracegen and the run-spec layer (internal/runspec):
//
//	KIND:PARAMS[:RATE]
//
// where KIND is one of
//
//	zipf:N,S          Zipf over N pages with exponent S
//	uniform:N         uniform over N pages
//	scan:N            cyclic scan over N pages
//	hotset:N,H,P,L    hot set of H in N pages, hot prob P, phase length L
//	markov:N,P,J      random walk over N pages, stay prob P, jump radius J
//	db:H,S,P,L        DB tenant: H heap pages, key skew S, scan prob P, scan len L
//
// and RATE (default 1) is the tenant's relative request rate. The seed
// drives the stream's private PRNG (deterministic kinds ignore it).
func ParseStream(spec string, seed int64) (Stream, float64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, 0, fmt.Errorf("workload: bad stream spec %q, want KIND:PARAMS[:RATE]", spec)
	}
	rate := 1.0
	if len(parts) == 3 {
		r, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || r <= 0 {
			return nil, 0, fmt.Errorf("workload: bad rate in stream spec %q", spec)
		}
		rate = r
	}
	nums := strings.Split(parts[1], ",")
	arg := func(i int) (float64, error) {
		if i >= len(nums) {
			return 0, fmt.Errorf("workload: stream spec %q missing parameter %d", spec, i+1)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(nums[i]), 64)
		if err != nil {
			return 0, fmt.Errorf("workload: bad number %q in stream spec %q", nums[i], spec)
		}
		return v, nil
	}
	args := func(n int) ([]float64, error) {
		if len(nums) != n {
			return nil, fmt.Errorf("workload: stream spec %q wants %d parameters, got %d", spec, n, len(nums))
		}
		out := make([]float64, n)
		for i := range out {
			v, err := arg(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	switch parts[0] {
	case "zipf":
		v, err := args(2)
		if err != nil {
			return nil, 0, err
		}
		st, err := NewZipf(seed, int64(v[0]), v[1])
		return st, rate, err
	case "uniform":
		v, err := args(1)
		if err != nil {
			return nil, 0, err
		}
		st, err := NewUniform(seed, int64(v[0]))
		return st, rate, err
	case "scan":
		v, err := args(1)
		if err != nil {
			return nil, 0, err
		}
		st, err := NewScan(int64(v[0]))
		return st, rate, err
	case "hotset":
		v, err := args(4)
		if err != nil {
			return nil, 0, err
		}
		st, err := NewHotSet(seed, int64(v[0]), int64(v[1]), v[2], int64(v[3]))
		return st, rate, err
	case "db":
		v, err := args(4)
		if err != nil {
			return nil, 0, err
		}
		st, err := NewDB(seed, int64(v[0]), v[1], v[2], int64(v[3]))
		return st, rate, err
	case "markov":
		v, err := args(3)
		if err != nil {
			return nil, 0, err
		}
		st, err := NewMarkov(seed, int64(v[0]), v[1], int64(v[2]))
		return st, rate, err
	default:
		return nil, 0, fmt.Errorf("workload: unknown stream kind %q in spec %q", parts[0], spec)
	}
}
