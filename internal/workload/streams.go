// Package workload generates synthetic request sequences for the
// experiments. The paper evaluates no traces of its own (it is a theory
// abstract); these generators are the synthetic stand-ins covering the
// locality regimes that drive cache-policy differences — skewed reuse
// (Zipf/IRM), sequential scans, cyclic loops, phase-shifting hot sets and
// Markov locality — plus the adaptive adversary of Theorem 1.4 and the
// multi-tenant mixer that interleaves per-tenant streams.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Stream produces an infinite sequence of page offsets in [0, Pages()).
// Streams are deterministic given their construction parameters and seed.
type Stream interface {
	// Next returns the next page offset.
	Next() int64
	// Pages returns the size of the stream's page universe.
	Pages() int64
}

// Zipf draws pages from a Zipf(s) distribution over [0, n): the classical
// independent reference model with skew s. Rank 0 is the hottest page.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
	n   int64
}

// NewZipf builds a Zipf stream over n pages with exponent s >= 0 (s = 0 is
// uniform) and the given seed.
func NewZipf(seed int64, n int64, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs positive page count, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: zipf exponent must be >= 0, got %g", s)
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := int64(0); i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{rng: rand.New(rand.NewSource(seed)), cdf: cdf, n: n}, nil
}

// Next implements Stream.
func (z *Zipf) Next() int64 {
	u := z.rng.Float64()
	return int64(sort.SearchFloat64s(z.cdf, u))
}

// Pages implements Stream.
func (z *Zipf) Pages() int64 { return z.n }

// Uniform draws pages uniformly from [0, n).
type Uniform struct {
	rng *rand.Rand
	n   int64
}

// NewUniform builds a uniform stream over n pages.
func NewUniform(seed int64, n int64) (*Uniform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: uniform needs positive page count, got %d", n)
	}
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}, nil
}

// Next implements Stream.
func (u *Uniform) Next() int64 { return u.rng.Int63n(u.n) }

// Pages implements Stream.
func (u *Uniform) Pages() int64 { return u.n }

// Scan cycles through pages 0,1,...,n-1,0,1,... — the cache-hostile
// sequential scan that defeats LRU whenever n exceeds the cache share.
type Scan struct {
	n, next int64
}

// NewScan builds a cyclic scan over n pages.
func NewScan(n int64) (*Scan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: scan needs positive page count, got %d", n)
	}
	return &Scan{n: n}, nil
}

// Next implements Stream.
func (s *Scan) Next() int64 {
	p := s.next
	s.next = (s.next + 1) % s.n
	return p
}

// Pages implements Stream.
func (s *Scan) Pages() int64 { return s.n }

// HotSet draws from a small hot set with probability hotProb and from the
// cold remainder otherwise; every phaseLen requests the hot set rotates to
// the next disjoint window, modelling working-set shifts.
type HotSet struct {
	rng      *rand.Rand
	n        int64
	hot      int64
	hotProb  float64
	phaseLen int64
	issued   int64
}

// NewHotSet builds the stream: n total pages, hot hot-set size, hotProb the
// probability of a hot access, phaseLen requests per phase (0 disables
// rotation).
func NewHotSet(seed int64, n, hot int64, hotProb float64, phaseLen int64) (*HotSet, error) {
	if n <= 0 || hot <= 0 || hot > n {
		return nil, fmt.Errorf("workload: hotset needs 0 < hot <= n, got hot=%d n=%d", hot, n)
	}
	if hotProb < 0 || hotProb > 1 {
		return nil, fmt.Errorf("workload: hot probability %g out of [0,1]", hotProb)
	}
	return &HotSet{
		rng: rand.New(rand.NewSource(seed)), n: n, hot: hot,
		hotProb: hotProb, phaseLen: phaseLen,
	}, nil
}

// Next implements Stream.
func (h *HotSet) Next() int64 {
	phase := int64(0)
	if h.phaseLen > 0 {
		phase = h.issued / h.phaseLen
	}
	h.issued++
	base := (phase * h.hot) % h.n
	if h.rng.Float64() < h.hotProb {
		return (base + h.rng.Int63n(h.hot)) % h.n
	}
	// Cold access: anywhere outside the current hot window.
	off := h.rng.Int63n(h.n - h.hot)
	p := (base + h.hot + off) % h.n
	return p
}

// Pages implements Stream.
func (h *HotSet) Pages() int64 { return h.n }

// Markov is a random walk with locality: with probability stay it re-requests
// the current page, otherwise it jumps within a window of +-jump pages
// (wrapping), modelling pointer-chasing locality.
type Markov struct {
	rng  *rand.Rand
	n    int64
	stay float64
	jump int64
	cur  int64
}

// NewMarkov builds the stream over n pages with the given stay probability
// and jump radius.
func NewMarkov(seed int64, n int64, stay float64, jump int64) (*Markov, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: markov needs positive page count, got %d", n)
	}
	if stay < 0 || stay > 1 {
		return nil, fmt.Errorf("workload: stay probability %g out of [0,1]", stay)
	}
	if jump <= 0 {
		jump = 1
	}
	return &Markov{rng: rand.New(rand.NewSource(seed)), n: n, stay: stay, jump: jump}, nil
}

// Next implements Stream.
func (m *Markov) Next() int64 {
	if m.rng.Float64() >= m.stay {
		delta := m.rng.Int63n(2*m.jump+1) - m.jump
		m.cur = ((m.cur+delta)%m.n + m.n) % m.n
	}
	return m.cur
}

// Pages implements Stream.
func (m *Markov) Pages() int64 { return m.n }
