package workload

import (
	"testing"

	"convexcache/internal/policy"
	"convexcache/internal/sim"
)

func TestDBValidation(t *testing.T) {
	if _, err := NewDB(1, 2, 0.8, 0.1, 16); err == nil {
		t.Error("tiny heap accepted")
	}
	if _, err := NewDB(1, 100, 0.8, 1.5, 16); err == nil {
		t.Error("scanProb > 1 accepted")
	}
}

func TestDBPageLayout(t *testing.T) {
	d, err := NewDB(3, 1000, 0.8, 0.05, 16)
	if err != nil {
		t.Fatal(err)
	}
	seenRoot := false
	for i := 0; i < 20000; i++ {
		p := d.Next()
		if p < 0 || p >= d.Pages() {
			t.Fatalf("page %d outside universe %d", p, d.Pages())
		}
		if p == 0 {
			seenRoot = true
		}
	}
	if !seenRoot {
		t.Error("root page never touched")
	}
}

func TestDBRootIsHottest(t *testing.T) {
	d, err := NewDB(7, 2000, 0.9, 0.05, 16)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int64]int)
	for i := 0; i < 40000; i++ {
		counts[d.Next()]++
	}
	root := counts[0]
	for p, c := range counts {
		if p != 0 && c > root {
			t.Fatalf("page %d (%d accesses) hotter than root (%d)", p, c, root)
		}
	}
}

func TestDBPointAccessShape(t *testing.T) {
	// With scanProb 0 every logical access is exactly 4 pages:
	// root, internal, leaf, heap in ascending id order.
	d, err := NewDB(11, 400, 0.7, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	for access := 0; access < 200; access++ {
		walk := []int64{d.Next(), d.Next(), d.Next(), d.Next()}
		if walk[0] != 0 {
			t.Fatalf("access %d does not start at root: %v", access, walk)
		}
		for i := 1; i < 4; i++ {
			if walk[i] <= walk[i-1] {
				t.Fatalf("access %d walk not descending the tree: %v", access, walk)
			}
		}
	}
}

func TestDBWorksInMixerAndCache(t *testing.T) {
	d0, err := NewDB(21, 800, 0.9, 0.05, 12)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewDB(22, 800, 0.6, 0.2, 32)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Mix(23, []TenantStream{
		{Tenant: 0, Stream: d0, Rate: 1},
		{Tenant: 1, Stream: d1, Rate: 1},
	}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr, policy.NewLRU(), sim.Config{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Index upper levels are hot: hit rate must be substantial even with a
	// cache far below the heap size.
	rate := float64(res.Hits) / float64(tr.Len())
	if rate < 0.3 {
		t.Errorf("hit rate %g suspiciously low for index-walk locality", rate)
	}
	if tr.NumTenants() != 2 {
		t.Errorf("tenants = %d", tr.NumTenants())
	}
}
