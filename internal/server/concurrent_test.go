package server

import (
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentSimulateRequests hammers the handler from many goroutines;
// every response must be independent and correct (the handler must not
// share policy state across requests).
func TestConcurrentSimulateRequests(t *testing.T) {
	h := New()
	req := SimulateRequest{
		Trace:    sampleTrace(),
		K:        4,
		Policies: []string{"alg", "lru", "arc"},
		Costs:    []string{"monomial:1,2", "linear:1"},
	}
	// Reference response.
	ref := doJSON(t, h, "POST", "/v1/simulate", req)
	if ref.Code != http.StatusOK {
		t.Fatalf("reference status %d", ref.Code)
	}
	want := ref.Body.String()
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := doJSONConcurrent(h, req)
			if rec == nil {
				errs <- "request failed"
				return
			}
			if rec.Body.String() != want {
				errs <- "response diverged across goroutines"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
