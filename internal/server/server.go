// Package server exposes the simulator over HTTP with a small JSON API, so
// the library can back a capacity-planning or SLA-what-if service:
//
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus-text metrics (internal/obs)
//	GET  /v1/policies         registered policy names
//	POST /v1/simulate         replay a trace through policies
//	POST /v1/mrc              exact LRU miss-ratio curves per tenant
//	POST /v1/experiments/{id} run one experiment (quick mode) as JSON
//
// Everything is stdlib net/http; request bodies are size-capped. Every route
// is wrapped by the obs middleware stack: request IDs, structured access
// logs, per-route counters and latency histograms, and panic recovery that
// answers a JSON 500 instead of killing the connection. Trace replays run
// under the request context (sim.RunContext), so a client disconnect or
// deadline stops the simulation instead of burning CPU for a caller that is
// already gone.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"convexcache/internal/analysis"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/experiments"
	"convexcache/internal/obs"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// MaxBodyBytes is the default request-body cap (traces dominate; ~16 MiB of
// JSON covers millions of requests). Override via Config.MaxBodyBytes.
const MaxBodyBytes = 16 << 20

// MaxMRCSize caps MRCRequest.MaxSize: each unit allocates O(tenants)
// float64s of curve, so an unbounded value lets one request OOM the
// process.
const MaxMRCSize = 1 << 16

// StatusClientClosedRequest is nginx's 499: the client went away before the
// response was ready. Nothing reads the reply, but the status keeps access
// logs and metrics honest about why the request ended.
const StatusClientClosedRequest = 499

// Config tunes the service; the zero value is production-usable.
type Config struct {
	// MaxBodyBytes caps request bodies; <= 0 selects MaxBodyBytes.
	MaxBodyBytes int64
	// Logger receives the structured request logs; nil selects
	// slog.Default().
	Logger *slog.Logger
	// Registry receives the service metrics and backs /metrics; nil
	// creates a fresh registry.
	Registry *obs.Registry
}

// service carries the per-instance state shared by all handlers.
type service struct {
	maxBody int64
	log     *slog.Logger
	reg     *obs.Registry
	// policyHook, when non-nil, is consulted before the policy registry;
	// tests use it to inject misbehaving (e.g. panicking) policies.
	policyHook func(name string) sim.Policy
}

func newService(cfg Config) *service {
	s := &service{maxBody: cfg.MaxBodyBytes, log: cfg.Logger, reg: cfg.Registry}
	if s.maxBody <= 0 {
		s.maxBody = MaxBodyBytes
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	return s
}

// New returns the service's http.Handler with default configuration.
func New() http.Handler {
	return NewWithConfig(Config{})
}

// NewWithConfig returns the service's http.Handler for the given Config.
func NewWithConfig(cfg Config) http.Handler {
	return newService(cfg).handler()
}

func (s *service) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/mrc", s.handleMRC)
	mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("POST /v1/fit", s.handleFit)
	mw := obs.Middleware{Reg: s.reg, Log: s.log, Route: routeLabel}
	return mw.Wrap(mux)
}

// routeLabel maps a request to a bounded-cardinality metrics label: the
// mux patterns with the experiment id collapsed, everything else "other".
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/healthz", "/metrics", "/v1/policies", "/v1/simulate", "/v1/mrc", "/v1/fit":
		return p
	}
	if strings.HasPrefix(p, "/v1/experiments/") {
		return "/v1/experiments/{id}"
	}
	return "other"
}

// FitRequest calibrates a convex SLA curve from (misses, penalty) samples.
type FitRequest struct {
	// X are miss counts, Y the observed penalties.
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
	// Iters bounds the fit iterations (default 2000).
	Iters int `json:"iters"`
}

// FitResponse returns the fitted piecewise-linear curve.
type FitResponse struct {
	// Breakpoints and Slopes define the fitted costfn.PiecewiseLinear.
	Breakpoints []float64 `json:"breakpoints"`
	Slopes      []float64 `json:"slopes"`
	// Alpha is the curvature constant of the fit (the paper's competitive
	// exponent).
	Alpha float64 `json:"alpha"`
}

func (s *service) handleFit(w http.ResponseWriter, r *http.Request) {
	var req FitRequest
	if !s.decode(w, r, &req) {
		return
	}
	f, err := costfn.FitConvex(req.X, req.Y, req.Iters)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, r, http.StatusOK, FitResponse{
		Breakpoints: f.X,
		Slopes:      f.S,
		Alpha:       f.Alpha(),
	})
}

// TraceJSON is the wire form of a request sequence: rows of
// [tenant, page].
type TraceJSON [][2]int64

func (tj TraceJSON) build() (*trace.Trace, error) {
	b := trace.NewBuilder()
	for _, row := range tj {
		b.Add(trace.Tenant(row[0]), trace.PageID(row[1]))
	}
	return b.Build()
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	// Trace is the request sequence.
	Trace TraceJSON `json:"trace"`
	// K is the cache size.
	K int `json:"k"`
	// Policies are policy names; "alg" is the paper's algorithm.
	Policies []string `json:"policies"`
	// Costs are per-tenant costfn.Parse specs; missing tenants default to
	// linear:1.
	Costs []string `json:"costs"`
	// Seed seeds randomized policies.
	Seed int64 `json:"seed"`
	// DiscreteDeriv and CountMisses tune the algorithm (Section 2.5 /
	// accounting modes).
	DiscreteDeriv bool `json:"discrete_deriv"`
	CountMisses   bool `json:"count_misses"`
}

// PolicyResult is one row of the simulate response.
type PolicyResult struct {
	Policy    string  `json:"policy"`
	Hits      int64   `json:"hits"`
	Misses    []int64 `json:"misses"`
	Evictions []int64 `json:"evictions"`
	TotalCost float64 `json:"total_cost"`
}

// SimulateResponse is the body of the simulate reply.
type SimulateResponse struct {
	Requests int            `json:"requests"`
	Tenants  int            `json:"tenants"`
	K        int            `json:"k"`
	Results  []PolicyResult `json:"results"`
}

// newPolicy resolves a policy name, consulting the test hook first.
func (s *service) newPolicy(name string, spec policy.Spec, req SimulateRequest) (sim.Policy, error) {
	if s.policyHook != nil {
		if p := s.policyHook(name); p != nil {
			return p, nil
		}
	}
	if name == "alg" {
		return core.NewFast(core.Options{
			Costs: spec.Costs, UseDiscreteDeriv: req.DiscreteDeriv, CountMisses: req.CountMisses,
		}), nil
	}
	return policy.New(name, spec)
}

func (s *service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	tr, err := req.Trace.build()
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.K <= 0 {
		s.httpError(w, r, http.StatusBadRequest, errors.New("k must be positive"))
		return
	}
	if len(req.Policies) == 0 {
		req.Policies = []string{"alg", "lru"}
	}
	costs, err := parseCosts(req.Costs, tr.NumTenants())
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	resp := SimulateResponse{Requests: tr.Len(), Tenants: tr.NumTenants(), K: req.K}
	spec := policy.Spec{K: req.K, Tenants: tr.NumTenants(), Costs: costs, Seed: req.Seed}
	stepsTotal := s.reg.Counter("sim_steps_total")
	simCfg := sim.Config{
		K:        req.K,
		Progress: func(delta int) { stepsTotal.Add(int64(delta)) },
	}
	for _, name := range req.Policies {
		p, err := s.newPolicy(name, spec, req)
		if err != nil {
			s.httpError(w, r, http.StatusBadRequest, err)
			return
		}
		start := time.Now()
		res, err := sim.RunContext(r.Context(), tr, p, simCfg)
		if err != nil {
			switch {
			case errors.Is(err, context.Canceled):
				// Client disconnected mid-replay; nothing reads the
				// reply, but record why the request ended.
				s.reg.Counter("sim_cancelled_total").Inc()
				obs.LoggerFrom(r.Context(), s.log).Warn("simulation cancelled",
					"policy", name, "err", err)
				s.httpError(w, r, StatusClientClosedRequest, err)
			case errors.Is(err, context.DeadlineExceeded):
				s.reg.Counter("sim_deadline_total").Inc()
				s.httpError(w, r, http.StatusServiceUnavailable, err)
			default:
				s.httpError(w, r, http.StatusInternalServerError, err)
			}
			return
		}
		s.reg.Counter("sim_runs_total").Inc()
		s.reg.Counter("sim_evictions_total").Add(res.TotalEvictions())
		if el := time.Since(start).Seconds(); el > 0 {
			s.reg.Histogram("sim_steps_per_second", stepsRateBuckets).
				Observe(float64(res.Steps) / el)
		}
		resp.Results = append(resp.Results, PolicyResult{
			Policy:    name,
			Hits:      res.Hits,
			Misses:    res.Misses,
			Evictions: res.Evictions,
			TotalCost: res.Cost(costs),
		})
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// stepsRateBuckets spans the observed engine range: ~1e4 req/s (tiny traces
// dominated by setup) to a few 1e7 req/s (dense hot path).
var stepsRateBuckets = []float64{1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8}

// MRCRequest is the body of POST /v1/mrc.
type MRCRequest struct {
	Trace   TraceJSON `json:"trace"`
	MaxSize int       `json:"max_size"`
	// K, when positive, also returns the optimal static partition.
	K     int      `json:"k"`
	Costs []string `json:"costs"`
}

// MRCResponse is the reply of POST /v1/mrc.
type MRCResponse struct {
	// MissRatio[c-1] is the combined LRU miss ratio at size c.
	MissRatio []float64 `json:"miss_ratio"`
	// PerTenant[i][c-1] is tenant i's isolated curve.
	PerTenant [][]float64 `json:"per_tenant"`
	// Quotas and PredictedCost are set when K > 0.
	Quotas        []int   `json:"quotas,omitempty"`
	PredictedCost float64 `json:"predicted_cost,omitempty"`
}

func (s *service) handleMRC(w http.ResponseWriter, r *http.Request) {
	var req MRCRequest
	if !s.decode(w, r, &req) {
		return
	}
	tr, err := req.Trace.build()
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.MaxSize <= 0 {
		req.MaxSize = 64
	}
	if req.MaxSize > MaxMRCSize {
		s.httpError(w, r, http.StatusBadRequest,
			fmt.Errorf("max_size %d exceeds limit %d", req.MaxSize, MaxMRCSize))
		return
	}
	combined, err := analysis.Mattson(tr, req.MaxSize)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	perTenant, err := analysis.PerTenant(tr, req.MaxSize)
	if err != nil {
		s.httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	resp := MRCResponse{MissRatio: combined.MissRatioCurve(req.MaxSize)}
	for _, c := range perTenant {
		if c.Requests == 0 {
			resp.PerTenant = append(resp.PerTenant, make([]float64, req.MaxSize))
			continue
		}
		resp.PerTenant = append(resp.PerTenant, c.MissRatioCurve(req.MaxSize))
	}
	if req.K > 0 {
		costs, err := parseCosts(req.Costs, tr.NumTenants())
		if err != nil {
			s.httpError(w, r, http.StatusBadRequest, err)
			return
		}
		quotas, cost, err := analysis.OptimalStaticPartition(perTenant, costs, req.K)
		if err != nil {
			s.httpError(w, r, http.StatusInternalServerError, err)
			return
		}
		resp.Quotas = quotas
		resp.PredictedCost = cost
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// ExperimentResponse is the reply of POST /v1/experiments/{id}.
type ExperimentResponse struct {
	ID     string     `json:"id"`
	Claim  string     `json:"claim"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func (s *service) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, e := range experiments.All() {
		if !strings.EqualFold(e.ID, id) {
			continue
		}
		tb, err := e.Run(true)
		if err != nil {
			s.httpError(w, r, http.StatusInternalServerError, err)
			return
		}
		s.writeJSON(w, r, http.StatusOK, ExperimentResponse{
			ID: e.ID, Claim: e.Claim, Header: tb.Header, Rows: tb.Rows(),
		})
		return
	}
	s.httpError(w, r, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
}

func (s *service) handlePolicies(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string][]string{
		"policies": append([]string{"alg"}, policy.Names()...),
	})
}

// parseCosts maps per-tenant cost specs to costfn.Funcs. Surplus specs
// (more than the trace has tenants) are an error: they would otherwise be
// silently dropped, masking caller typos such as costs keyed to a tenant
// that never appears in the trace.
func parseCosts(specs []string, tenants int) ([]costfn.Func, error) {
	if len(specs) > tenants {
		return nil, fmt.Errorf("%d cost specs for %d tenants; surplus specs would be ignored", len(specs), tenants)
	}
	costs := make([]costfn.Func, tenants)
	for i := range costs {
		if i < len(specs) && specs[i] != "" {
			f, err := costfn.Parse(specs[i])
			if err != nil {
				return nil, err
			}
			costs[i] = f
		} else {
			costs[i] = costfn.Linear{W: 1}
		}
	}
	return costs, nil
}

// decode parses the size-capped JSON body into dst, rejecting unknown
// fields and trailing garbage (`{}{"x":1}` must not parse as `{}`).
func (s *service) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	if dec.More() {
		s.httpError(w, r, http.StatusBadRequest, errors.New("decode request: trailing data after JSON body"))
		return false
	}
	return true
}

// writeJSON writes v; an encoder failure mid-stream means the client gets a
// truncated 200, so the failure is at least logged with the request ID and
// counted rather than swallowed.
func (s *service) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.reg.Counter("http_response_encode_errors_total").Inc()
		obs.LoggerFrom(r.Context(), s.log).Error("encode response",
			"status", status, "err", err)
	}
}

func (s *service) httpError(w http.ResponseWriter, r *http.Request, status int, err error) {
	body := map[string]string{"error": err.Error()}
	if rid := obs.RequestIDFrom(r.Context()); rid != "" {
		body["request_id"] = rid
	}
	s.writeJSON(w, r, status, body)
}
