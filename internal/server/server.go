// Package server exposes the simulator over HTTP with a small JSON API, so
// the library can back a capacity-planning or SLA-what-if service:
//
//	GET  /healthz             liveness
//	GET  /v1/policies         registered policy names
//	POST /v1/simulate         replay a trace through policies
//	POST /v1/mrc              exact LRU miss-ratio curves per tenant
//	POST /v1/experiments/{id} run one experiment (quick mode) as JSON
//
// Everything is stdlib net/http; request bodies are size-capped.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"convexcache/internal/analysis"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/experiments"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// MaxBodyBytes caps request bodies (traces dominate; ~16 MiB of JSON covers
// millions of requests).
const MaxBodyBytes = 16 << 20

// New returns the service's http.Handler.
func New() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/policies", handlePolicies)
	mux.HandleFunc("POST /v1/simulate", handleSimulate)
	mux.HandleFunc("POST /v1/mrc", handleMRC)
	mux.HandleFunc("POST /v1/experiments/{id}", handleExperiment)
	mux.HandleFunc("POST /v1/fit", handleFit)
	return mux
}

// FitRequest calibrates a convex SLA curve from (misses, penalty) samples.
type FitRequest struct {
	// X are miss counts, Y the observed penalties.
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
	// Iters bounds the fit iterations (default 2000).
	Iters int `json:"iters"`
}

// FitResponse returns the fitted piecewise-linear curve.
type FitResponse struct {
	// Breakpoints and Slopes define the fitted costfn.PiecewiseLinear.
	Breakpoints []float64 `json:"breakpoints"`
	Slopes      []float64 `json:"slopes"`
	// Alpha is the curvature constant of the fit (the paper's competitive
	// exponent).
	Alpha float64 `json:"alpha"`
}

func handleFit(w http.ResponseWriter, r *http.Request) {
	var req FitRequest
	if !decode(w, r, &req) {
		return
	}
	f, err := costfn.FitConvex(req.X, req.Y, req.Iters)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, FitResponse{
		Breakpoints: f.X,
		Slopes:      f.S,
		Alpha:       f.Alpha(),
	})
}

// TraceJSON is the wire form of a request sequence: rows of
// [tenant, page].
type TraceJSON [][2]int64

func (tj TraceJSON) build() (*trace.Trace, error) {
	b := trace.NewBuilder()
	for _, row := range tj {
		b.Add(trace.Tenant(row[0]), trace.PageID(row[1]))
	}
	return b.Build()
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	// Trace is the request sequence.
	Trace TraceJSON `json:"trace"`
	// K is the cache size.
	K int `json:"k"`
	// Policies are policy names; "alg" is the paper's algorithm.
	Policies []string `json:"policies"`
	// Costs are per-tenant costfn.Parse specs; missing tenants default to
	// linear:1.
	Costs []string `json:"costs"`
	// Seed seeds randomized policies.
	Seed int64 `json:"seed"`
	// DiscreteDeriv and CountMisses tune the algorithm (Section 2.5 /
	// accounting modes).
	DiscreteDeriv bool `json:"discrete_deriv"`
	CountMisses   bool `json:"count_misses"`
}

// PolicyResult is one row of the simulate response.
type PolicyResult struct {
	Policy    string  `json:"policy"`
	Hits      int64   `json:"hits"`
	Misses    []int64 `json:"misses"`
	Evictions []int64 `json:"evictions"`
	TotalCost float64 `json:"total_cost"`
}

// SimulateResponse is the body of the simulate reply.
type SimulateResponse struct {
	Requests int            `json:"requests"`
	Tenants  int            `json:"tenants"`
	K        int            `json:"k"`
	Results  []PolicyResult `json:"results"`
}

func handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decode(w, r, &req) {
		return
	}
	tr, err := req.Trace.build()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, errors.New("k must be positive"))
		return
	}
	if len(req.Policies) == 0 {
		req.Policies = []string{"alg", "lru"}
	}
	costs, err := parseCosts(req.Costs, tr.NumTenants())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp := SimulateResponse{Requests: tr.Len(), Tenants: tr.NumTenants(), K: req.K}
	spec := policy.Spec{K: req.K, Tenants: tr.NumTenants(), Costs: costs, Seed: req.Seed}
	for _, name := range req.Policies {
		var p sim.Policy
		if name == "alg" {
			p = core.NewFast(core.Options{
				Costs: costs, UseDiscreteDeriv: req.DiscreteDeriv, CountMisses: req.CountMisses,
			})
		} else {
			p, err = policy.New(name, spec)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		res, err := sim.Run(tr, p, sim.Config{K: req.K})
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Results = append(resp.Results, PolicyResult{
			Policy:    name,
			Hits:      res.Hits,
			Misses:    res.Misses,
			Evictions: res.Evictions,
			TotalCost: res.Cost(costs),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// MRCRequest is the body of POST /v1/mrc.
type MRCRequest struct {
	Trace   TraceJSON `json:"trace"`
	MaxSize int       `json:"max_size"`
	// K, when positive, also returns the optimal static partition.
	K     int      `json:"k"`
	Costs []string `json:"costs"`
}

// MRCResponse is the reply of POST /v1/mrc.
type MRCResponse struct {
	// MissRatio[c-1] is the combined LRU miss ratio at size c.
	MissRatio []float64 `json:"miss_ratio"`
	// PerTenant[i][c-1] is tenant i's isolated curve.
	PerTenant [][]float64 `json:"per_tenant"`
	// Quotas and PredictedCost are set when K > 0.
	Quotas        []int   `json:"quotas,omitempty"`
	PredictedCost float64 `json:"predicted_cost,omitempty"`
}

func handleMRC(w http.ResponseWriter, r *http.Request) {
	var req MRCRequest
	if !decode(w, r, &req) {
		return
	}
	tr, err := req.Trace.build()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.MaxSize <= 0 {
		req.MaxSize = 64
	}
	combined, err := analysis.Mattson(tr, req.MaxSize)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	perTenant, err := analysis.PerTenant(tr, req.MaxSize)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := MRCResponse{MissRatio: combined.MissRatioCurve(req.MaxSize)}
	for _, c := range perTenant {
		if c.Requests == 0 {
			resp.PerTenant = append(resp.PerTenant, make([]float64, req.MaxSize))
			continue
		}
		resp.PerTenant = append(resp.PerTenant, c.MissRatioCurve(req.MaxSize))
	}
	if req.K > 0 {
		costs, err := parseCosts(req.Costs, tr.NumTenants())
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		quotas, cost, err := analysis.OptimalStaticPartition(perTenant, costs, req.K)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Quotas = quotas
		resp.PredictedCost = cost
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExperimentResponse is the reply of POST /v1/experiments/{id}.
type ExperimentResponse struct {
	ID     string     `json:"id"`
	Claim  string     `json:"claim"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, e := range experiments.All() {
		if !strings.EqualFold(e.ID, id) {
			continue
		}
		tb, err := e.Run(true)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, ExperimentResponse{
			ID: e.ID, Claim: e.Claim, Header: tb.Header, Rows: tb.Rows(),
		})
		return
	}
	httpError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
}

func handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"policies": append([]string{"alg"}, policy.Names()...),
	})
}

func parseCosts(specs []string, tenants int) ([]costfn.Func, error) {
	costs := make([]costfn.Func, tenants)
	for i := range costs {
		if i < len(specs) && specs[i] != "" {
			f, err := costfn.Parse(specs[i])
			if err != nil {
				return nil, err
			}
			costs[i] = f
		} else {
			costs[i] = costfn.Linear{W: 1}
		}
	}
	return costs, nil
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
