// Package server exposes the simulator over HTTP with a small JSON API, so
// the library can back a capacity-planning or SLA-what-if service:
//
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus-text metrics (internal/obs)
//	GET  /v1/policies          registered policy names
//	POST /v1/simulate          replay a trace through policies
//	POST /v1/mrc               exact LRU miss-ratio curves per tenant
//	POST /v1/experiments/{id}  run one experiment (quick mode) as JSON
//	POST /v1/jobs              submit an async replay job (202)
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/result  job result (409 until done)
//	DELETE /v1/jobs/{id}       cancel a job (checkpoint retained)
//	POST /v1/jobs/{id}/resume  re-queue a cancelled/failed job
//
// Everything is stdlib net/http; request bodies are size-capped. Every route
// is wrapped by the obs middleware stack: request IDs, structured access
// logs, per-route counters and latency histograms, and panic recovery that
// answers a JSON 500 instead of killing the connection. Trace replays run
// under the request context (sim.RunContext), so a client disconnect or
// deadline stops the simulation instead of burning CPU for a caller that is
// already gone.
//
// The expensive synchronous endpoints (/v1/simulate, /v1/mrc,
// /v1/experiments/{id}) additionally sit behind the internal/resilience
// admission stack: per-client token-bucket rate limiting (429), a per-route
// circuit breaker (503), and the server-wide concurrency limiter with its
// bounded FIFO wait queue (503). Every rejection uses one JSON envelope with
// a machine-readable "reason" and, for shed work, a Retry-After hint in both
// the header and the body.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"convexcache/internal/analysis"
	"convexcache/internal/costfn"
	"convexcache/internal/experiments"
	"convexcache/internal/obs"
	"convexcache/internal/resilience"
	"convexcache/internal/runspec"
	"convexcache/internal/sim"
)

// MaxBodyBytes is the default request-body cap (traces dominate; ~16 MiB of
// JSON covers millions of requests). Override via Config.MaxBodyBytes.
const MaxBodyBytes = 16 << 20

// MaxMRCSize caps MRCRequest.MaxSize: each unit allocates O(tenants)
// float64s of curve, so an unbounded value lets one request OOM the
// process.
const MaxMRCSize = 1 << 16

// StatusClientClosedRequest is nginx's 499: the client went away before the
// response was ready. Nothing reads the reply, but the status keeps access
// logs and metrics honest about why the request ended.
const StatusClientClosedRequest = 499

// Config tunes the service; the zero value is production-usable.
type Config struct {
	// MaxBodyBytes caps request bodies; <= 0 selects MaxBodyBytes.
	MaxBodyBytes int64
	// Logger receives the structured request logs; nil selects
	// slog.Default().
	Logger *slog.Logger
	// Registry receives the service metrics and backs /metrics; nil
	// creates a fresh registry.
	Registry *obs.Registry
	// Limiter tunes the server-wide concurrency limiter guarding the
	// expensive endpoints; the zero value selects the package defaults.
	Limiter resilience.LimiterConfig
	// RateLimit tunes per-client token buckets; RPS <= 0 disables rate
	// limiting entirely.
	RateLimit resilience.RateLimiterConfig
	// Breaker tunes the per-endpoint circuit breakers; the zero value
	// selects the package defaults.
	Breaker resilience.BreakerConfig
	// Jobs tunes the async job subsystem; the zero value selects the
	// package defaults.
	Jobs resilience.JobsConfig
	// Fault, when non-nil, wraps the router with a fault-injection
	// middleware (internal/fault). It is mounted inside the obs panic
	// recovery so injected panics exercise the real recovery path.
	Fault func(http.Handler) http.Handler
}

// service carries the per-instance state shared by all handlers.
type service struct {
	maxBody int64
	log     *slog.Logger
	reg     *obs.Registry
	fault   func(http.Handler) http.Handler

	limiter  *resilience.Limiter
	rate     *resilience.RateLimiter
	breakers map[string]*resilience.Breaker
	jobs     *resilience.Jobs

	// policyHook, when non-nil, is consulted before the policy registry;
	// tests use it to inject misbehaving (e.g. panicking) policies.
	policyHook func(name string) sim.Policy
}

func newService(cfg Config) *service {
	s := &service{maxBody: cfg.MaxBodyBytes, log: cfg.Logger, reg: cfg.Registry, fault: cfg.Fault}
	if s.maxBody <= 0 {
		s.maxBody = MaxBodyBytes
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.limiter = resilience.NewLimiter(cfg.Limiter, s.reg)
	s.rate = resilience.NewRateLimiter(cfg.RateLimit, s.reg)
	s.jobs = resilience.NewJobs(cfg.Jobs, s.reg)
	s.breakers = make(map[string]*resilience.Breaker)
	for _, ep := range protectedEndpoints {
		s.breakers[ep] = resilience.NewBreaker(ep, cfg.Breaker, s.reg)
	}
	return s
}

// protectedEndpoints are the expensive synchronous routes guarded by the
// full admission stack (rate limit -> breaker -> limiter). Each gets its own
// circuit breaker so a broken experiment cannot open the simulate circuit.
var protectedEndpoints = []string{"/v1/simulate", "/v1/mrc", "/v1/experiments/{id}"}

// Service is the HTTP service plus the background state (job workers) that
// outlives individual requests. Close it on shutdown.
type Service struct {
	svc *service
	h   http.Handler
}

// NewService builds the service for the given Config.
func NewService(cfg Config) *Service {
	s := newService(cfg)
	return &Service{svc: s, h: s.handler()}
}

// Handler returns the root http.Handler.
func (sv *Service) Handler() http.Handler { return sv.h }

// Close stops the job workers, cancelling any running job (checkpoints are
// retained in memory until the process exits, so tests can still inspect
// them). Safe to call more than once.
func (sv *Service) Close() { sv.svc.jobs.Close() }

// New returns the service's http.Handler with default configuration.
func New() http.Handler {
	return NewWithConfig(Config{})
}

// NewWithConfig returns the service's http.Handler for the given Config.
// Callers that use the async job API should prefer NewService so they can
// Close the worker pool on shutdown.
func NewWithConfig(cfg Config) http.Handler {
	return NewService(cfg).Handler()
}

func (s *service) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("POST /v1/simulate", s.protect("/v1/simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/mrc", s.protect("/v1/mrc", s.handleMRC))
	mux.HandleFunc("POST /v1/experiments/{id}", s.protect("/v1/experiments/{id}", s.handleExperiment))
	mux.HandleFunc("POST /v1/fit", s.handleFit)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleJobResume)
	var inner http.Handler = mux
	if s.fault != nil {
		// Inside obs.Middleware's panic recovery, outside the per-route
		// admission stack: an injected panic must exercise the real
		// recovery path, not count as an endpoint failure. Only /v1/
		// routes are faulted — /healthz and /metrics must stay reliable
		// or a chaos drill blinds the very probes watching it.
		faulted, clean := s.fault(inner), inner
		inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/") {
				faulted.ServeHTTP(w, r)
				return
			}
			clean.ServeHTTP(w, r)
		})
	}
	mw := obs.Middleware{Reg: s.reg, Log: s.log, Route: routeLabel}
	return mw.Wrap(inner)
}

// routeLabel maps a request to a bounded-cardinality metrics label: the
// mux patterns with the experiment/job id collapsed, everything else
// "other".
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/healthz", "/metrics", "/v1/policies", "/v1/simulate", "/v1/mrc", "/v1/fit", "/v1/jobs":
		return p
	}
	if strings.HasPrefix(p, "/v1/experiments/") {
		return "/v1/experiments/{id}"
	}
	if strings.HasPrefix(p, "/v1/jobs/") {
		switch {
		case strings.HasSuffix(p, "/result"):
			return "/v1/jobs/{id}/result"
		case strings.HasSuffix(p, "/resume"):
			return "/v1/jobs/{id}/resume"
		default:
			return "/v1/jobs/{id}"
		}
	}
	return "other"
}

// clientKey identifies the caller for rate limiting: the X-Client-ID header
// when present (trusted deployments put a tenant id there), else the remote
// host without the ephemeral port.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// statusWriter captures the status code so protect can classify the
// response for the circuit breaker.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// protect wraps an expensive handler with the admission stack, outermost
// first: per-client rate limit (429), the endpoint's circuit breaker (503),
// then the server-wide concurrency limiter with its FIFO wait queue (503).
// The handler's own 5xx responses — and panics, which propagate to the obs
// recovery middleware — count as breaker failures; limiter sheds are
// recorded as Ignored so overload cannot trip a healthy endpoint's circuit.
func (s *service) protect(endpoint string, next http.HandlerFunc) http.HandlerFunc {
	br := s.breakers[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		if s.rate.Enabled() {
			if err := s.rate.Allow(clientKey(r)); err != nil {
				s.shedError(w, r, err)
				return
			}
		}
		call, err := br.Allow()
		if err != nil {
			s.shedError(w, r, err)
			return
		}
		release, err := s.limiter.Acquire(r.Context())
		if err != nil {
			call.Record(resilience.Ignored, 0)
			s.shedError(w, r, err)
			return
		}
		defer release()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		completed := false
		defer func() {
			// No recover: a panic still records a Failure here and then
			// propagates to obs.Middleware's recovery, which owns the 500.
			switch {
			case !completed || sw.status >= http.StatusInternalServerError:
				call.Record(resilience.Failure, time.Since(start))
			default:
				call.Record(resilience.Success, time.Since(start))
			}
		}()
		next(sw, r)
		completed = true
	}
}

// FitRequest calibrates a convex SLA curve from (misses, penalty) samples.
type FitRequest struct {
	// X are miss counts, Y the observed penalties.
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
	// Iters bounds the fit iterations (default 2000).
	Iters int `json:"iters"`
}

// FitResponse returns the fitted piecewise-linear curve.
type FitResponse struct {
	// Breakpoints and Slopes define the fitted costfn.PiecewiseLinear.
	Breakpoints []float64 `json:"breakpoints"`
	Slopes      []float64 `json:"slopes"`
	// Alpha is the curvature constant of the fit (the paper's competitive
	// exponent).
	Alpha float64 `json:"alpha"`
}

func (s *service) handleFit(w http.ResponseWriter, r *http.Request) {
	var req FitRequest
	if !s.decode(w, r, &req) {
		return
	}
	f, err := costfn.FitConvex(req.X, req.Y, req.Iters)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, r, http.StatusOK, FitResponse{
		Breakpoints: f.X,
		Slopes:      f.S,
		Alpha:       f.Alpha(),
	})
}

// TraceJSON is the wire form of a request sequence: rows of
// [tenant, page]. It is the runspec inline-trace shape, so requests decode
// straight into a Scenario.
type TraceJSON = [][2]int64

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	// Trace is the request sequence.
	Trace TraceJSON `json:"trace"`
	// K is the cache size.
	K int `json:"k"`
	// Policies are policy names; "alg" is the paper's algorithm.
	Policies []string `json:"policies"`
	// Costs are per-tenant costfn.Parse specs; missing tenants default to
	// linear:1.
	Costs []string `json:"costs"`
	// Seed seeds randomized policies.
	Seed int64 `json:"seed"`
	// DiscreteDeriv and CountMisses tune the algorithm (Section 2.5 /
	// accounting modes).
	DiscreteDeriv bool `json:"discrete_deriv"`
	CountMisses   bool `json:"count_misses"`
	// Shards > 1 replays each policy via deterministic sharded replay
	// (see sim.RunSharded); runspec.Validate enforces its restrictions.
	Shards int `json:"shards"`
}

// PolicyResult is one row of the simulate response.
type PolicyResult struct {
	Policy    string  `json:"policy"`
	Hits      int64   `json:"hits"`
	Misses    []int64 `json:"misses"`
	Evictions []int64 `json:"evictions"`
	TotalCost float64 `json:"total_cost"`
}

// SimulateResponse is the body of the simulate reply.
type SimulateResponse struct {
	Requests int            `json:"requests"`
	Tenants  int            `json:"tenants"`
	K        int            `json:"k"`
	Results  []PolicyResult `json:"results"`
}

// scenario converts the wire request into the shared run spec. Defaults
// (the canonical policy pair, cost fill) live in runspec.Validate, not
// here, so the CLIs and the HTTP API cannot drift apart. The algorithm
// options ride on the algorithm rows only.
func (req SimulateRequest) scenario() *runspec.Scenario {
	sc := &runspec.Scenario{
		Trace:  runspec.TraceSpec{Inline: req.Trace},
		K:      req.K,
		Costs:  req.Costs,
		Seed:   req.Seed,
		Shards: req.Shards,
	}
	for _, name := range req.Policies {
		ps := runspec.PolicySpec{Name: name}
		if name == "alg" || name == "alg-ref" {
			ps.DiscreteDeriv = req.DiscreteDeriv
			ps.CountMisses = req.CountMisses
		}
		sc.Policies = append(sc.Policies, ps)
	}
	return sc
}

func (s *service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	sc := req.scenario()
	sc.PolicyHook = s.policyHook
	stepsTotal := s.reg.Counter("sim_steps_total")
	sc.Progress = func(delta int) { stepsTotal.Add(int64(delta)) }
	out, err := sc.Execute(r.Context())
	if err != nil {
		// Execute fails before any run only: spec mistakes and unbuildable
		// traces are the caller's.
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	resp := SimulateResponse{Requests: out.Trace.Len(), Tenants: out.Trace.NumTenants(), K: req.K}
	for i := range out.Rows {
		row := &out.Rows[i]
		if row.Err != nil {
			s.simError(w, r, row.Policy, row.Err)
			return
		}
		s.reg.Counter("sim_runs_total").Inc()
		s.reg.Counter("sim_evictions_total").Add(row.Result.TotalEvictions())
		if el := row.Duration.Seconds(); el > 0 {
			s.reg.Histogram("sim_steps_per_second", stepsRateBuckets).
				Observe(float64(row.Result.Steps) / el)
		}
		resp.Results = append(resp.Results, PolicyResult{
			Policy:    row.Policy,
			Hits:      row.Result.Hits,
			Misses:    row.Result.Misses,
			Evictions: row.Result.Evictions,
			TotalCost: row.Cost,
		})
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// simError maps a failed simulation row onto the wire: client-abandoned
// runs answer 499, deadline overruns 503, and a panicking policy re-raises
// into the recovery middleware so panic accounting and logging stay in one
// place. Anything else is a plain 500.
func (s *service) simError(w http.ResponseWriter, r *http.Request, policy string, err error) {
	var pe *sim.PanicError
	switch {
	case errors.As(err, &pe):
		panic(pe.Value)
	case errors.Is(err, context.Canceled):
		// Client disconnected mid-replay; nothing reads the reply, but
		// record why the request ended.
		s.reg.Counter("sim_cancelled_total").Inc()
		obs.LoggerFrom(r.Context(), s.log).Warn("simulation cancelled",
			"policy", policy, "err", err)
		s.httpError(w, r, StatusClientClosedRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.Counter("sim_deadline_total").Inc()
		s.writeError(w, r, http.StatusServiceUnavailable,
			resilience.ReasonDeadline, time.Second, err)
	default:
		s.httpError(w, r, http.StatusInternalServerError, err)
	}
}

// stepsRateBuckets spans the observed engine range: ~1e4 req/s (tiny traces
// dominated by setup) to a few 1e7 req/s (dense hot path).
var stepsRateBuckets = []float64{1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8}

// MRCRequest is the body of POST /v1/mrc.
type MRCRequest struct {
	Trace   TraceJSON `json:"trace"`
	MaxSize int       `json:"max_size"`
	// K, when positive, also returns the optimal static partition.
	K     int      `json:"k"`
	Costs []string `json:"costs"`
}

// MRCResponse is the reply of POST /v1/mrc.
type MRCResponse struct {
	// MissRatio[c-1] is the combined LRU miss ratio at size c.
	MissRatio []float64 `json:"miss_ratio"`
	// PerTenant[i][c-1] is tenant i's isolated curve.
	PerTenant [][]float64 `json:"per_tenant"`
	// Quotas and PredictedCost are set when K > 0.
	Quotas        []int   `json:"quotas,omitempty"`
	PredictedCost float64 `json:"predicted_cost,omitempty"`
}

func (s *service) handleMRC(w http.ResponseWriter, r *http.Request) {
	var req MRCRequest
	if !s.decode(w, r, &req) {
		return
	}
	tr, err := (&runspec.Scenario{Trace: runspec.TraceSpec{Inline: req.Trace}}).BuildTrace()
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.MaxSize <= 0 {
		req.MaxSize = 64
	}
	if req.MaxSize > MaxMRCSize {
		s.httpError(w, r, http.StatusBadRequest,
			fmt.Errorf("max_size %d exceeds limit %d", req.MaxSize, MaxMRCSize))
		return
	}
	combined, err := analysis.Mattson(tr, req.MaxSize)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	perTenant, err := analysis.PerTenant(tr, req.MaxSize)
	if err != nil {
		s.httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	resp := MRCResponse{MissRatio: combined.MissRatioCurve(req.MaxSize)}
	for _, c := range perTenant {
		if c.Requests == 0 {
			resp.PerTenant = append(resp.PerTenant, make([]float64, req.MaxSize))
			continue
		}
		resp.PerTenant = append(resp.PerTenant, c.MissRatioCurve(req.MaxSize))
	}
	if req.K > 0 {
		costs, err := runspec.Costs(req.Costs, tr.NumTenants())
		if err != nil {
			s.httpError(w, r, http.StatusBadRequest, err)
			return
		}
		quotas, cost, err := analysis.OptimalStaticPartition(perTenant, costs, req.K)
		if err != nil {
			s.httpError(w, r, http.StatusInternalServerError, err)
			return
		}
		resp.Quotas = quotas
		resp.PredictedCost = cost
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// ExperimentResponse is the reply of POST /v1/experiments/{id}.
type ExperimentResponse struct {
	ID     string     `json:"id"`
	Claim  string     `json:"claim"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func (s *service) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, e := range experiments.All() {
		if !strings.EqualFold(e.ID, id) {
			continue
		}
		tb, err := e.Run(true)
		if err != nil {
			s.httpError(w, r, http.StatusInternalServerError, err)
			return
		}
		s.writeJSON(w, r, http.StatusOK, ExperimentResponse{
			ID: e.ID, Claim: e.Claim, Header: tb.Header, Rows: tb.Rows(),
		})
		return
	}
	s.httpError(w, r, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
}

func (s *service) handlePolicies(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string][]string{
		"policies": runspec.PolicyNames(),
	})
}

// decode parses the size-capped JSON body into dst, rejecting unknown
// fields and trailing garbage (`{}{"x":1}` must not parse as `{}`).
func (s *service) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.httpError(w, r, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	if dec.More() {
		s.httpError(w, r, http.StatusBadRequest, errors.New("decode request: trailing data after JSON body"))
		return false
	}
	return true
}

// writeJSON writes v; an encoder failure mid-stream means the client gets a
// truncated 200, so the failure is at least logged with the request ID and
// counted rather than swallowed.
func (s *service) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.reg.Counter("http_response_encode_errors_total").Inc()
		obs.LoggerFrom(r.Context(), s.log).Error("encode response",
			"status", status, "err", err)
	}
}

// errorBody is the single JSON error envelope every rejection uses: a
// human-readable message, a machine-readable reason, the request ID for log
// correlation, and (for shed work only) the back-off hint mirrored from the
// Retry-After header.
type errorBody struct {
	Error             string  `json:"error"`
	Reason            string  `json:"reason,omitempty"`
	RequestID         string  `json:"request_id,omitempty"`
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// writeError writes the envelope; retryAfter > 0 also sets the Retry-After
// header (whole seconds, rounded up, never below 1).
func (s *service) writeError(w http.ResponseWriter, r *http.Request, status int, reason string, retryAfter time.Duration, err error) {
	body := errorBody{
		Error:     err.Error(),
		Reason:    reason,
		RequestID: obs.RequestIDFrom(r.Context()),
	}
	if retryAfter > 0 {
		secs := int((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		body.RetryAfterSeconds = retryAfter.Seconds()
	}
	s.writeJSON(w, r, status, body)
}

// shedError maps a resilience rejection onto the envelope: rate-limited
// callers get 429, every other shed is 503, and the Shed's typed reason and
// Retry-After hint flow straight through.
func (s *service) shedError(w http.ResponseWriter, r *http.Request, err error) {
	var sh *resilience.Shed
	if !errors.As(err, &sh) {
		s.writeError(w, r, http.StatusServiceUnavailable, "unavailable", 0, err)
		return
	}
	status := http.StatusServiceUnavailable
	if sh.Reason == resilience.ReasonRateLimited {
		status = http.StatusTooManyRequests
	}
	s.writeError(w, r, status, sh.Reason, sh.RetryAfter, err)
}

// httpError is the legacy helper for non-shed failures; the reason is
// derived from the status so every error response carries one.
func (s *service) httpError(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.writeError(w, r, status, reasonForStatus(status), 0, err)
}

func reasonForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case StatusClientClosedRequest:
		return "client_closed_request"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		if status >= 500 {
			return "internal"
		}
		return ""
	}
}
