package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestFitEndpoint(t *testing.T) {
	h := New()
	req := FitRequest{
		X: []float64{2, 5, 10, 12, 20},
		Y: []float64{2, 5, 10, 26, 90},
	}
	rec := doJSON(t, h, "POST", "/v1/fit", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp FitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Breakpoints) == 0 || len(resp.Slopes) != len(resp.Breakpoints) {
		t.Fatalf("malformed fit: %+v", resp)
	}
	if resp.Alpha < 1 {
		t.Errorf("alpha = %g, want >= 1", resp.Alpha)
	}
	// Slopes must be non-decreasing (convexity is structural).
	for i := 1; i < len(resp.Slopes); i++ {
		if resp.Slopes[i] < resp.Slopes[i-1]-1e-9 {
			t.Fatalf("slopes decrease: %v", resp.Slopes)
		}
	}
}

func TestFitEndpointValidation(t *testing.T) {
	rec := doJSON(t, New(), "POST", "/v1/fit", FitRequest{X: []float64{1}, Y: []float64{1}})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("single sample: status %d", rec.Code)
	}
}
