package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"convexcache/internal/obs"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func TestMetricsEndpoint(t *testing.T) {
	h := New()
	// Generate traffic first so per-route series exist.
	if rec := doJSON(t, h, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	rec := doJSON(t, h, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`http_requests_total{route="/healthz",code="200"} 1`,
		"# TYPE http_request_duration_seconds histogram",
		`http_request_duration_seconds_bucket{route="/healthz",le="+Inf"} 1`,
		"process_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if got := rec.Header().Get("X-Request-ID"); got == "" {
		t.Error("no X-Request-ID header on /metrics")
	}
}

func TestMetricsCountSimulation(t *testing.T) {
	reg := obs.NewRegistry()
	s := newService(Config{Registry: reg})
	h := s.handler()
	req := SimulateRequest{Trace: sampleTrace(), K: 4, Policies: []string{"lru"}}
	if rec := doJSON(t, h, "POST", "/v1/simulate", req); rec.Code != http.StatusOK {
		t.Fatalf("simulate status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := reg.Counter("sim_runs_total").Value(); got != 1 {
		t.Errorf("sim_runs_total = %d", got)
	}
	if got := reg.Counter("sim_steps_total").Value(); got != int64(len(sampleTrace())) {
		t.Errorf("sim_steps_total = %d, want %d", got, len(sampleTrace()))
	}
}

// panicPolicy panics on the first victim selection, simulating a policy bug
// reached mid-replay.
type panicPolicy struct{}

func (panicPolicy) Name() string                                  { return "panic" }
func (panicPolicy) OnHit(step int, r trace.Request)               {}
func (panicPolicy) OnInsert(step int, r trace.Request)            {}
func (panicPolicy) Victim(step int, r trace.Request) trace.PageID { panic("injected policy panic") }
func (panicPolicy) OnEvict(step int, p trace.PageID)              {}
func (panicPolicy) Reset()                                        {}

func TestPanicRecoveryKeepsServerAlive(t *testing.T) {
	reg := obs.NewRegistry()
	s := newService(Config{Registry: reg})
	s.policyHook = func(name string) sim.Policy {
		if name == "panic" {
			return panicPolicy{}
		}
		return nil
	}
	h := s.handler()

	rec := doJSON(t, h, "POST", "/v1/simulate", SimulateRequest{
		Trace: sampleTrace(), K: 2, Policies: []string{"panic"},
	})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", rec.Code, rec.Body.String())
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic response not JSON: %v (%q)", err, rec.Body.String())
	}
	if body["error"] == "" {
		t.Fatalf("panic body = %v", body)
	}
	if got := reg.Counter("http_panics_total").Value(); got != 1 {
		t.Errorf("http_panics_total = %d", got)
	}
	// The mux must keep serving after the panic.
	if rec := doJSON(t, h, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("post-panic healthz = %d", rec.Code)
	}
}

func TestSimulateCancellationStopsReplay(t *testing.T) {
	// A trace longer than the engine's check cadence, with the request
	// context already cancelled: sim.RunContext must abort instead of
	// replaying everything, and the handler must account for it.
	var tj TraceJSON
	n := 4 * sim.CheckEverySteps
	for i := 0; i < n; i++ {
		tj = append(tj, [2]int64{0, int64(i % 512)})
	}
	raw, err := json.Marshal(SimulateRequest{Trace: tj, K: 8, Policies: []string{"lru"}})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	h := newService(Config{Registry: reg}).handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/simulate", bytes.NewReader(raw)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", rec.Code, StatusClientClosedRequest, rec.Body.String())
	}
	if got := reg.Counter("sim_cancelled_total").Value(); got != 1 {
		t.Errorf("sim_cancelled_total = %d", got)
	}
	// The replay must have stopped near the first check, not consumed the
	// whole trace.
	if steps := reg.Counter("sim_steps_total").Value(); steps >= int64(n) {
		t.Errorf("sim consumed all %d steps despite cancellation", steps)
	}
	if runs := reg.Counter("sim_runs_total").Value(); runs != 0 {
		t.Errorf("cancelled run counted as completed: %d", runs)
	}
}

func TestMRCMaxSizeClamped(t *testing.T) {
	rec := doJSON(t, New(), "POST", "/v1/mrc", MRCRequest{Trace: sampleTrace(), MaxSize: 1_000_000_000})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "max_size") {
		t.Errorf("error does not name max_size: %s", rec.Body.String())
	}
	// The ceiling itself stays valid.
	rec = doJSON(t, New(), "POST", "/v1/mrc", MRCRequest{Trace: sampleTrace(), MaxSize: 128})
	if rec.Code != http.StatusOK {
		t.Fatalf("max_size=128: status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestSurplusCostSpecsRejected(t *testing.T) {
	// sampleTrace has 2 tenants; a third cost spec is a caller typo, not
	// something to silently drop.
	req := SimulateRequest{
		Trace: sampleTrace(), K: 4,
		Costs: []string{"linear:1", "linear:1", "monomial:1,2"},
	}
	rec := doJSON(t, New(), "POST", "/v1/simulate", req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("simulate surplus costs: status %d: %s", rec.Code, rec.Body.String())
	}
	mrc := MRCRequest{Trace: sampleTrace(), MaxSize: 8, K: 4,
		Costs: []string{"linear:1", "linear:1", "linear:1"}}
	rec = doJSON(t, New(), "POST", "/v1/mrc", mrc)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("mrc surplus costs: status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	h := New()
	for _, body := range []string{
		`{}{"k":1}`,
		`{} []`,
		`{"k":2, "trace":[[0,1]]} junk`,
	} {
		req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
		}
	}
	// A single clean document with trailing whitespace stays accepted.
	req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(
		`{"k":2,"trace":[[0,1],[0,2],[0,1]]}`+"\n  \n"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("trailing whitespace rejected: %d %s", rec.Code, rec.Body.String())
	}
}

func TestErrorResponsesCarryRequestID(t *testing.T) {
	rec := doJSON(t, New(), "POST", "/v1/simulate", SimulateRequest{K: 0})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["request_id"] == "" || body["request_id"] != rec.Header().Get("X-Request-ID") {
		t.Errorf("request id mismatch: body %v header %q", body, rec.Header().Get("X-Request-ID"))
	}
}

func TestRouteLabelBoundsCardinality(t *testing.T) {
	for path, want := range map[string]string{
		"/healthz":            "/healthz",
		"/v1/simulate":        "/v1/simulate",
		"/v1/experiments/E2":  "/v1/experiments/{id}",
		"/v1/experiments/abc": "/v1/experiments/{id}",
		"/favicon.ico":        "other",
		"/v1/unknown":         "other",
	} {
		r := httptest.NewRequest("GET", path, nil)
		if got := routeLabel(r); got != want {
			t.Errorf("routeLabel(%s) = %q, want %q", path, got, want)
		}
	}
}

func TestJSON499BodyIsWellFormed(t *testing.T) {
	// `{}` body with `"x":1` trailing garbage on mrc: exercise decode on a
	// second route too.
	req := httptest.NewRequest("POST", "/v1/mrc", strings.NewReader(`{}{"x":1}`))
	rec := httptest.NewRecorder()
	New().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body not JSON: %v", err)
	}
	if !strings.Contains(body["error"], "trailing") {
		t.Errorf("error = %q", body["error"])
	}
}
