package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

// TestMain silences the default structured logger: every instrumented
// request would otherwise write an access-log line to stderr.
func TestMain(m *testing.M) {
	slog.SetDefault(slog.New(slog.NewTextHandler(io.Discard, nil)))
	os.Exit(m.Run())
}

// doJSONConcurrent is a t-free variant of doJSON for use inside goroutines.
func doJSONConcurrent(h http.Handler, body any) *httptest.ResponseRecorder {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil
	}
	req := httptest.NewRequest("POST", "/v1/simulate", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil
	}
	return rec
}
