package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
)

// doJSONConcurrent is a t-free variant of doJSON for use inside goroutines.
func doJSONConcurrent(h http.Handler, body any) *httptest.ResponseRecorder {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil
	}
	req := httptest.NewRequest("POST", "/v1/simulate", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil
	}
	return rec
}
