// Async job API: long replays run on the resilience worker pool instead of
// holding an HTTP connection. The paper's algorithm ("alg") runs under the
// checkpointed runner, so a cancelled or crashed job resumes from its last
// core.Fast snapshot; other policies re-run from scratch on resume.
package server

import (
	"errors"
	"fmt"
	"net/http"

	"convexcache/internal/resilience"
	"convexcache/internal/runspec"
)

// JobRequest is the body of POST /v1/jobs: one trace, one policy.
type JobRequest struct {
	// Trace is the request sequence.
	Trace TraceJSON `json:"trace"`
	// K is the cache size.
	K int `json:"k"`
	// Policy is a single policy name; "alg" (the default) is checkpointable.
	Policy string `json:"policy"`
	// Costs are per-tenant costfn.Parse specs.
	Costs []string `json:"costs"`
	// Seed seeds randomized policies.
	Seed int64 `json:"seed"`
	// DiscreteDeriv and CountMisses tune the algorithm.
	DiscreteDeriv bool `json:"discrete_deriv"`
	CountMisses   bool `json:"count_misses"`
}

// JobResultResponse is the body of GET /v1/jobs/{id}/result.
type JobResultResponse struct {
	Status resilience.JobStatus `json:"status"`
	Result PolicyResult         `json:"result"`
}

func (s *service) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decode(w, r, &req) {
		return
	}
	if s.rate.Enabled() {
		if err := s.rate.Allow(clientKey(r)); err != nil {
			s.shedError(w, r, err)
			return
		}
	}
	// One policy per job; the single-policy default stays here because it
	// differs from the scenario default pair.
	if req.Policy == "" {
		req.Policy = "alg"
	}
	sc := runspec.Scenario{
		Trace:      runspec.TraceSpec{Inline: req.Trace},
		Policies:   []runspec.PolicySpec{{Name: req.Policy, DiscreteDeriv: req.DiscreteDeriv, CountMisses: req.CountMisses}},
		K:          req.K,
		Costs:      req.Costs,
		Seed:       req.Seed,
		PolicyHook: s.policyHook,
	}
	if req.Policy != "alg" && req.Policy != "alg-ref" {
		sc.Policies[0].DiscreteDeriv = false
		sc.Policies[0].CountMisses = false
	}
	if err := sc.Validate(); err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	tr, err := sc.BuildTrace()
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	costs, err := sc.BuildCosts(tr.NumTenants(), tr.NumTenants())
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	// Resolve the policy now so a typo answers 400, not an async failure.
	compiled, err := sc.CompilePolicies(req.K, tr.NumTenants(), costs)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	spec := resilience.JobSpec{Label: req.Policy, Trace: tr, K: req.K, Costs: costs}
	if cp := compiled[0]; cp.NewFast != nil {
		// The paper's algorithm runs under the checkpointed runner.
		spec.NewFast = cp.NewFast
	} else {
		spec.NewPolicy = cp.New
	}
	st, err := s.jobs.Submit(spec)
	if err != nil {
		var sh *resilience.Shed
		if errors.As(err, &sh) {
			s.shedError(w, r, err)
			return
		}
		s.httpError(w, r, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, r, http.StatusAccepted, st)
}

// jobID resolves {id} and converts ErrUnknownJob into a 404; every other
// error is the caller's state machine misuse (409).
func (s *service) jobCall(w http.ResponseWriter, r *http.Request, call func(id string) (resilience.JobStatus, error), status int) {
	st, err := call(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, resilience.ErrUnknownJob) {
			s.httpError(w, r, http.StatusNotFound, err)
			return
		}
		s.httpError(w, r, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, r, status, st)
}

func (s *service) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	s.jobCall(w, r, s.jobs.Status, http.StatusOK)
}

func (s *service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.jobCall(w, r, s.jobs.Cancel, http.StatusOK)
}

func (s *service) handleJobResume(w http.ResponseWriter, r *http.Request) {
	s.jobCall(w, r, s.jobs.Resume, http.StatusAccepted)
}

func (s *service) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, costs, done, err := s.jobs.Result(id)
	if err != nil {
		s.httpError(w, r, http.StatusNotFound, err)
		return
	}
	if !done {
		st, _ := s.jobs.Status(id)
		s.httpError(w, r, http.StatusConflict,
			fmt.Errorf("job %s is %s, not done", id, st.State))
		return
	}
	st, _ := s.jobs.Status(id)
	s.writeJSON(w, r, http.StatusOK, JobResultResponse{
		Status: st,
		Result: PolicyResult{
			// The requested name, matching /v1/simulate's labels; the
			// engine's own Name() may differ (e.g. "alg-fast" for "alg").
			Policy:    st.Policy,
			Hits:      res.Hits,
			Misses:    res.Misses,
			Evictions: res.Evictions,
			TotalCost: res.Cost(costs),
		},
	})
}
