package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func sampleTrace() TraceJSON {
	var tj TraceJSON
	for i := 0; i < 200; i++ {
		tj = append(tj, [2]int64{int64(i % 2), int64((i%2)*100 + i%7)})
	}
	return tj
}

func TestHealthz(t *testing.T) {
	rec := doJSON(t, New(), "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestPoliciesList(t *testing.T) {
	rec := doJSON(t, New(), "GET", "/v1/policies", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp map[string][]string
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	names := strings.Join(resp["policies"], ",")
	for _, want := range []string{"alg", "lru", "arc", "belady"} {
		if !strings.Contains(names, want) {
			t.Errorf("policies missing %q: %s", want, names)
		}
	}
}

func TestSimulate(t *testing.T) {
	req := SimulateRequest{
		Trace:    sampleTrace(),
		K:        4,
		Policies: []string{"alg", "lru"},
		Costs:    []string{"monomial:1,2", "linear:1"},
	}
	rec := doJSON(t, New(), "POST", "/v1/simulate", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Requests != 200 || resp.Tenants != 2 || len(resp.Results) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	for _, pr := range resp.Results {
		if pr.Hits+sum(pr.Misses) != 200 {
			t.Errorf("%s: hits+misses != requests", pr.Policy)
		}
		if pr.TotalCost <= 0 {
			t.Errorf("%s: cost %g", pr.Policy, pr.TotalCost)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	h := New()
	// Empty trace.
	rec := doJSON(t, h, "POST", "/v1/simulate", SimulateRequest{K: 2})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty trace: status %d", rec.Code)
	}
	// Bad k.
	rec = doJSON(t, h, "POST", "/v1/simulate", SimulateRequest{Trace: sampleTrace(), K: 0})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("k=0: status %d", rec.Code)
	}
	// Unknown policy.
	rec = doJSON(t, h, "POST", "/v1/simulate", SimulateRequest{Trace: sampleTrace(), K: 2, Policies: []string{"nope"}})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown policy: status %d", rec.Code)
	}
	// Bad cost spec.
	rec = doJSON(t, h, "POST", "/v1/simulate", SimulateRequest{Trace: sampleTrace(), K: 2, Costs: []string{"bad:1"}})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad cost: status %d", rec.Code)
	}
	// Unknown JSON field.
	req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(`{"bogus": 1}`))
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", rec2.Code)
	}
}

// The simulate endpoint reaches deterministic sharded replay through the
// run-spec layer: shards > 1 must work, be deterministic, conserve
// hits+misses, and reject k < shards as a 400.
func TestSimulateSharded(t *testing.T) {
	h := New()
	req := SimulateRequest{
		Trace:    sampleTrace(),
		K:        8,
		Policies: []string{"alg"},
		Costs:    []string{"monomial:1,2", "linear:1"},
		Shards:   2,
	}
	var runs [2]SimulateResponse
	for i := range runs {
		rec := doJSON(t, h, "POST", "/v1/simulate", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &runs[i]); err != nil {
			t.Fatal(err)
		}
	}
	pr := runs[0].Results[0]
	if pr.Hits+sum(pr.Misses) != 200 {
		t.Errorf("sharded: hits+misses != requests: %+v", pr)
	}
	if a, b := runs[0].Results[0], runs[1].Results[0]; a.Hits != b.Hits || a.TotalCost != b.TotalCost {
		t.Errorf("sharded replay not deterministic: %+v vs %+v", a, b)
	}
	req.K = 1
	rec := doJSON(t, h, "POST", "/v1/simulate", req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("k < shards: status %d, body %s", rec.Code, rec.Body.String())
	}
}

// Regression: a duplicated policy name used to run (and bill) the same
// simulation twice under one label; it must be rejected up front.
func TestSimulateDuplicatePolicy(t *testing.T) {
	rec := doJSON(t, New(), "POST", "/v1/simulate", SimulateRequest{
		Trace:    sampleTrace(),
		K:        4,
		Policies: []string{"alg", "lru", "alg"},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("duplicate policy: status %d, body %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `duplicate policy \"alg\"`) {
		t.Fatalf("error body does not name the duplicate: %s", rec.Body.String())
	}
}

func TestMRC(t *testing.T) {
	req := MRCRequest{Trace: sampleTrace(), MaxSize: 10, K: 6, Costs: []string{"monomial:1,2", "linear:1"}}
	rec := doJSON(t, New(), "POST", "/v1/mrc", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp MRCResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.MissRatio) != 10 || len(resp.PerTenant) != 2 {
		t.Fatalf("resp shape: %d curves, %d sizes", len(resp.PerTenant), len(resp.MissRatio))
	}
	// Monotone non-increasing curve.
	for i := 1; i < len(resp.MissRatio); i++ {
		if resp.MissRatio[i] > resp.MissRatio[i-1]+1e-9 {
			t.Errorf("miss ratio increased at %d", i)
		}
	}
	if len(resp.Quotas) != 2 {
		t.Errorf("quotas = %v", resp.Quotas)
	}
	qsum := 0
	for _, q := range resp.Quotas {
		qsum += q
	}
	if qsum > 6 {
		t.Errorf("quotas exceed k: %v", resp.Quotas)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	rec := doJSON(t, New(), "POST", "/v1/experiments/E2", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp ExperimentResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != "E2" || len(resp.Rows) == 0 {
		t.Fatalf("resp = %+v", resp)
	}
	// Unknown experiment.
	rec = doJSON(t, New(), "POST", "/v1/experiments/E99", nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d", rec.Code)
	}
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
