package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"convexcache/internal/obs"
	"convexcache/internal/resilience"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// gatePolicy blocks on its first insert until the gate closes, holding a
// limiter slot (or a job worker) open for as long as the test needs.
type gatePolicy struct {
	gate <-chan struct{}
	once sync.Once
}

func (g *gatePolicy) Name() string                    { return "gate" }
func (g *gatePolicy) OnHit(step int, r trace.Request) {}
func (g *gatePolicy) OnInsert(step int, r trace.Request) {
	g.once.Do(func() { <-g.gate })
}
func (g *gatePolicy) Victim(step int, r trace.Request) trace.PageID { return r.Page }
func (g *gatePolicy) OnEvict(step int, p trace.PageID)              {}
func (g *gatePolicy) Reset()                                        {}

// tinyTrace fits entirely in a K=4 cache: only inserts, no evictions, so
// gatePolicy.Victim is never consulted.
func tinyTrace() TraceJSON { return TraceJSON{{0, 1}, {0, 2}, {0, 1}} }

// errEnvelope decodes the unified error body.
type errEnvelope struct {
	Error             string  `json:"error"`
	Reason            string  `json:"reason"`
	RequestID         string  `json:"request_id"`
	RetryAfterSeconds float64 `json:"retry_after_seconds"`
}

func decodeErr(t *testing.T, rec *httptest.ResponseRecorder) errEnvelope {
	t.Helper()
	var e errEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body not JSON: %v (%q)", err, rec.Body.String())
	}
	return e
}

func TestLimiterSaturationShedsWithRetryAfter(t *testing.T) {
	reg := obs.NewRegistry()
	gate := make(chan struct{})
	s := newService(Config{
		Registry: reg,
		Limiter:  resilience.LimiterConfig{MaxConcurrent: 2, MaxQueue: 2, MaxWait: 5 * time.Second},
	})
	s.policyHook = func(name string) sim.Policy {
		if name == "gate" {
			return &gatePolicy{gate: gate}
		}
		return nil
	}
	h := s.handler()

	const n = 8
	recs := make(chan *httptest.ResponseRecorder, n)
	for i := 0; i < n; i++ {
		go func() {
			recs <- doJSONQuiet(h, "POST", "/v1/simulate", SimulateRequest{
				Trace: tinyTrace(), K: 4, Policies: []string{"gate"},
			})
		}()
	}
	// 2 run, 2 queue; the remaining 4 must shed immediately with queue_full.
	waitFor(t, "4 queue_full sheds", func() bool {
		return reg.Counter(`resilience_shed_total{reason="queue_full"}`).Value() == 4
	})
	close(gate)

	var ok200, shed503 int
	for i := 0; i < n; i++ {
		rec := <-recs
		switch rec.Code {
		case http.StatusOK:
			ok200++
		case http.StatusServiceUnavailable:
			shed503++
			if ra := rec.Header().Get("Retry-After"); ra == "" {
				t.Errorf("503 without Retry-After header")
			}
			e := decodeErr(t, rec)
			if e.Reason != resilience.ReasonQueueFull {
				t.Errorf("shed reason = %q, want %q", e.Reason, resilience.ReasonQueueFull)
			}
			if e.RetryAfterSeconds <= 0 {
				t.Errorf("retry_after_seconds = %v, want > 0", e.RetryAfterSeconds)
			}
			if e.RequestID == "" {
				t.Errorf("shed response missing request_id")
			}
		default:
			t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
		}
	}
	if ok200 != 4 || shed503 != 4 {
		t.Fatalf("got %d OK / %d shed, want 4 / 4", ok200, shed503)
	}
	if got := s.limiter.Inflight(); got != 0 {
		t.Errorf("inflight = %d after drain, want 0", got)
	}
}

// doJSONQuiet is doJSON without *testing.T, safe inside goroutines.
func doJSONQuiet(h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	raw, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	s := newService(Config{
		Registry: reg,
		Breaker: resilience.BreakerConfig{
			FailureThreshold: 3, OpenFor: time.Hour, // never half-opens within the test
		},
	})
	s.policyHook = func(name string) sim.Policy {
		if name == "panic" {
			return panicPolicy{}
		}
		return nil
	}
	h := s.handler()

	// sampleTrace has >2 distinct pages per tenant, so K=2 forces an
	// eviction and panicPolicy fires; each 500 is a breaker failure.
	bad := SimulateRequest{Trace: sampleTrace(), K: 2, Policies: []string{"panic"}}
	for i := 0; i < 3; i++ {
		if rec := doJSON(t, h, "POST", "/v1/simulate", bad); rec.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: status = %d, want 500", i, rec.Code)
		}
	}
	rec := doJSON(t, h, "POST", "/v1/simulate", bad)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status after trip = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	e := decodeErr(t, rec)
	if e.Reason != resilience.ReasonCircuitOpen {
		t.Fatalf("reason = %q, want %q", e.Reason, resilience.ReasonCircuitOpen)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("circuit_open 503 without Retry-After")
	}
	if got := reg.Counter(`resilience_breaker_trips_total{endpoint="/v1/simulate"}`).Value(); got != 1 {
		t.Errorf("trips = %d, want 1", got)
	}

	// Per-endpoint isolation: /v1/mrc has its own (closed) breaker, and
	// unprotected routes are untouched.
	if rec := doJSON(t, h, "POST", "/v1/mrc", MRCRequest{Trace: tinyTrace(), MaxSize: 4}); rec.Code != http.StatusOK {
		t.Errorf("mrc while simulate circuit open: %d %s", rec.Code, rec.Body.String())
	}
	if rec := doJSON(t, h, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("healthz while circuit open: %d", rec.Code)
	}
}

func TestRateLimitIsPerClient(t *testing.T) {
	s := newService(Config{
		RateLimit: resilience.RateLimiterConfig{RPS: 0.001, Burst: 2},
	})
	h := s.handler()
	req := SimulateRequest{Trace: tinyTrace(), K: 4, Policies: []string{"lru"}}

	do := func(client string) *httptest.ResponseRecorder {
		raw, _ := json.Marshal(req)
		r := httptest.NewRequest("POST", "/v1/simulate", bytes.NewReader(raw))
		r.Header.Set("X-Client-ID", client)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec
	}
	for i := 0; i < 2; i++ {
		if rec := do("alice"); rec.Code != http.StatusOK {
			t.Fatalf("alice request %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	rec := do("alice")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("alice over burst: %d, want 429", rec.Code)
	}
	e := decodeErr(t, rec)
	if e.Reason != resilience.ReasonRateLimited || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("429 envelope = %+v, header %q", e, rec.Header().Get("Retry-After"))
	}
	// A different client has its own bucket.
	if rec := do("bob"); rec.Code != http.StatusOK {
		t.Fatalf("bob sharing alice's bucket: %d", rec.Code)
	}
}

func TestJobsHTTPLifecycle(t *testing.T) {
	sv := NewService(Config{})
	defer sv.Close()
	h := sv.Handler()

	// The async result must match the synchronous endpoint bit for bit.
	syncRec := doJSON(t, h, "POST", "/v1/simulate", SimulateRequest{
		Trace: sampleTrace(), K: 4, Policies: []string{"alg"},
	})
	if syncRec.Code != http.StatusOK {
		t.Fatalf("sync simulate: %d %s", syncRec.Code, syncRec.Body.String())
	}
	var syncResp SimulateResponse
	if err := json.Unmarshal(syncRec.Body.Bytes(), &syncResp); err != nil {
		t.Fatal(err)
	}

	rec := doJSON(t, h, "POST", "/v1/jobs", JobRequest{Trace: sampleTrace(), K: 4, Policy: "alg"})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var st resilience.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.TotalSteps != len(sampleTrace()) {
		t.Fatalf("submit status = %+v", st)
	}

	waitFor(t, "job done", func() bool {
		rec := doJSON(t, h, "GET", "/v1/jobs/"+st.ID, nil)
		if rec.Code != http.StatusOK {
			return false
		}
		var cur resilience.JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &cur); err != nil {
			return false
		}
		return cur.State == resilience.JobDone
	})

	rec = doJSON(t, h, "GET", "/v1/jobs/"+st.ID+"/result", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("result: %d %s", rec.Code, rec.Body.String())
	}
	var res JobResultResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(syncResp.Results[0])
	gotJSON, _ := json.Marshal(res.Result)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("async result %s != sync result %s", gotJSON, wantJSON)
	}

	// State machine edges over HTTP.
	if rec := doJSON(t, h, "GET", "/v1/jobs/job-999999", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", rec.Code)
	}
	if rec := doJSON(t, h, "DELETE", "/v1/jobs/"+st.ID, nil); rec.Code != http.StatusConflict {
		t.Errorf("cancel of done job: %d, want 409", rec.Code)
	}
	if e := decodeErr(t, doJSON(t, h, "GET", "/v1/jobs/nope/result", nil)); e.Reason != "not_found" {
		t.Errorf("unknown result reason = %q, want not_found", e.Reason)
	}
}

func TestJobsCancelResumeOverHTTP(t *testing.T) {
	gate := make(chan struct{})
	s := newService(Config{Jobs: resilience.JobsConfig{Workers: 1}})
	s.policyHook = func(name string) sim.Policy {
		if name == "gate" {
			return &gatePolicy{gate: gate}
		}
		return nil
	}
	sv := &Service{svc: s, h: s.handler()}
	defer sv.Close()
	h := sv.Handler()

	// The gate job occupies the single worker...
	blocker := doJSON(t, h, "POST", "/v1/jobs", JobRequest{Trace: tinyTrace(), K: 4, Policy: "gate"})
	if blocker.Code != http.StatusAccepted {
		t.Fatalf("blocker submit: %d %s", blocker.Code, blocker.Body.String())
	}
	var blockerSt resilience.JobStatus
	if err := json.Unmarshal(blocker.Body.Bytes(), &blockerSt); err != nil {
		t.Fatal(err)
	}

	// ...so the alg job stays queued and can be cancelled deterministically.
	rec := doJSON(t, h, "POST", "/v1/jobs", JobRequest{Trace: sampleTrace(), K: 4})
	var st resilience.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	rec = doJSON(t, h, "DELETE", "/v1/jobs/"+st.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel queued: %d %s", rec.Code, rec.Body.String())
	}
	var cancelled resilience.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &cancelled); err != nil {
		t.Fatal(err)
	}
	if cancelled.State != resilience.JobCancelled {
		t.Fatalf("state after cancel = %q", cancelled.State)
	}
	if rec := doJSON(t, h, "GET", "/v1/jobs/"+st.ID+"/result", nil); rec.Code != http.StatusConflict {
		t.Fatalf("result of cancelled job: %d, want 409", rec.Code)
	}

	rec = doJSON(t, h, "POST", "/v1/jobs/"+st.ID+"/resume", nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("resume: %d %s", rec.Code, rec.Body.String())
	}
	close(gate)
	waitFor(t, "resumed job done", func() bool {
		var cur resilience.JobStatus
		rec := doJSON(t, h, "GET", "/v1/jobs/"+st.ID, nil)
		return json.Unmarshal(rec.Body.Bytes(), &cur) == nil && cur.State == resilience.JobDone
	})
	var cur resilience.JobStatus
	if err := json.Unmarshal(doJSON(t, h, "GET", "/v1/jobs/"+st.ID, nil).Body.Bytes(), &cur); err != nil {
		t.Fatal(err)
	}
	if cur.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", cur.Resumes)
	}
	if rec := doJSON(t, h, "GET", "/v1/jobs/"+st.ID+"/result", nil); rec.Code != http.StatusOK {
		t.Errorf("result after resume: %d %s", rec.Code, rec.Body.String())
	}
}

func TestJobSubmitValidation(t *testing.T) {
	sv := NewService(Config{})
	defer sv.Close()
	h := sv.Handler()
	for name, req := range map[string]JobRequest{
		"zero K":      {Trace: tinyTrace()},
		"bad policy":  {Trace: tinyTrace(), K: 4, Policy: "nope"},
		"empty trace": {K: 4},
	} {
		rec := doJSON(t, h, "POST", "/v1/jobs", req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, rec.Code)
		}
	}
}
