// Package mrclive maintains streaming per-tenant miss-ratio curves over a
// sliding window of live requests. It fuses the repo's offline MRC machinery
// into an always-on estimator cheap enough for the request path:
//
//   - SHARDS spatial sampling (Waldspurger et al., FAST 2015): only pages
//     passing analysis.SampleFilter are tracked, so the per-request work is
//     O(1) expected and the stack holds ~rate·WSS entries. The filter is the
//     exact hash/threshold used by analysis.ApproxMattson, so a live sampler
//     and an offline pass with the same seed sample the same pages.
//   - An incremental Mattson stack per tenant: a Fenwick tree over an
//     append-cursor slot array yields the reuse stack distance of every
//     sampled access in O(log n), the same quantity analysis.Mattson
//     computes offline.
//   - Epoch-bucketed decay: hit histograms and page liveness are bucketed
//     into a ring of WindowEpochs epochs; advancing the ring expires pages
//     (and their histogram mass) untouched for a full window, so the curve
//     tracks phase shifts instead of averaging over all history.
//
// A Sampler is single-owner by design — internal/cached gives one to each
// shard goroutine, which calls Observe inline with no locks; a collector
// merges per-shard Snapshots into per-tenant TenantCurves on demand. The
// cache-shard partition itself acts as a second spatial sampling layer:
// tenant pages spread ~uniformly over n shards, so a shard-local stack
// distance estimates 1/n of the true distance and is rescaled by Scale = n
// at bucketing time. With one shard and Rate 1 the estimator degenerates to
// exact incremental Mattson, which the tests pin bit-for-bit against the
// offline analysis.
package mrclive

import (
	"errors"
	"fmt"
	"math"

	"convexcache/internal/analysis"
	"convexcache/internal/trace"
)

// Config sizes a Sampler.
type Config struct {
	// Tenants is the tenant universe size.
	Tenants int
	// MaxSize is the largest tracked capacity in pages; curves report hit
	// counts at capacities 1..MaxSize. <= 0 selects 256.
	MaxSize int
	// Rate is the SHARDS sampling rate in (0, 1]; 0 selects 1.0 (track
	// every page).
	Rate float64
	// Seed perturbs the sampling hash; all shards of one service must share
	// it so they sample one consistent page population.
	Seed uint64
	// WindowEpochs is the sliding-window length in epochs (the current
	// partial epoch plus WindowEpochs-1 complete ones). <= 0 selects 8.
	WindowEpochs int
	// EpochRequests advances the epoch ring every that many observed
	// requests — deterministic in the request stream, independent of wall
	// clock. <= 0 selects 4096.
	EpochRequests int
	// Scale multiplies measured stack distances: the shard count when each
	// sampler sees only a 1/Scale page partition. <= 0 selects 1.
	Scale int
}

// normalize applies defaults and validates.
func (c Config) normalize() (Config, error) {
	if c.Tenants <= 0 {
		return c, errors.New("mrclive: tenant count must be positive")
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 256
	}
	if c.Rate == 0 {
		c.Rate = 1
	}
	if c.Rate < 0 || c.Rate > 1 {
		return c, fmt.Errorf("mrclive: sampling rate %g outside (0, 1]", c.Rate)
	}
	if c.WindowEpochs <= 0 {
		c.WindowEpochs = 8
	}
	if c.EpochRequests <= 0 {
		c.EpochRequests = 4096
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c, nil
}

// pageRef locates a tracked page inside its tenant stack.
type pageRef struct {
	slot  int
	epoch int64
}

// tenantStack is one tenant's incremental Mattson stack: pages occupy slots
// in access order behind a write cursor, a Fenwick tree counts live slots,
// and the reuse distance of an access is the number of live slots after the
// page's previous position. Compaction (triggered when the cursor reaches
// the end) rewrites live pages in slot order — deterministic, no map
// iteration — and doubles capacity while more than half the slots are live.
type tenantStack struct {
	fen    *fenwick
	slots  []trace.PageID
	cursor int
	live   int
	refs   map[trace.PageID]pageRef
}

const freeSlot = trace.PageID(-1)

func newTenantStack() *tenantStack {
	const initialCap = 256
	st := &tenantStack{
		fen:   newFenwick(initialCap),
		slots: make([]trace.PageID, initialCap),
		refs:  make(map[trace.PageID]pageRef),
	}
	for i := range st.slots {
		st.slots[i] = freeSlot
	}
	return st
}

// access records one sampled access and returns the reuse stack distance
// (distinct sampled pages since the previous access), or -1 on first touch.
func (st *tenantStack) access(p trace.PageID, epoch int64) int64 {
	dist := int64(-1)
	if ref, ok := st.refs[p]; ok {
		dist = int64(st.fen.prefix(len(st.slots)-1) - st.fen.prefix(ref.slot))
		st.fen.add(ref.slot, -1)
		st.slots[ref.slot] = freeSlot
		st.live--
	}
	if st.cursor == len(st.slots) {
		st.compact()
	}
	st.fen.add(st.cursor, 1)
	st.slots[st.cursor] = p
	st.refs[p] = pageRef{slot: st.cursor, epoch: epoch}
	st.cursor++
	st.live++
	return dist
}

// remove expires a page from the stack.
func (st *tenantStack) remove(p trace.PageID, ref pageRef) {
	st.fen.add(ref.slot, -1)
	st.slots[ref.slot] = freeSlot
	delete(st.refs, p)
	st.live--
}

// compact rewrites live pages densely at the front, preserving slot (= LRU)
// order, growing the slot array while it is more than half live.
func (st *tenantStack) compact() {
	newCap := len(st.slots)
	if st.live*2 > newCap {
		newCap *= 2
	}
	pages := make([]trace.PageID, 0, st.live)
	for _, p := range st.slots {
		if p != freeSlot {
			pages = append(pages, p)
		}
	}
	st.slots = make([]trace.PageID, newCap)
	for i := range st.slots {
		st.slots[i] = freeSlot
	}
	st.fen = newFenwick(newCap)
	for i, p := range pages {
		st.slots[i] = p
		st.fen.add(i, 1)
		r := st.refs[p]
		r.slot = i
		st.refs[p] = r
	}
	st.cursor = st.live
}

// touchRec marks a sampled page access for lazy window expiry.
type touchRec struct {
	t trace.Tenant
	p trace.PageID
}

// Sampler is one shard's streaming MRC estimator. It is deliberately NOT
// safe for concurrent use: internal/cached embeds one per single-writer
// shard goroutine, keeping the hit path lock-free; merge concurrency lives
// entirely in the collector.
type Sampler struct {
	cfg    Config
	filter analysis.SampleFilter
	stacks []*tenantStack

	// Ring of WindowEpochs epochs; slot e%W holds epoch e's buckets.
	hist     [][]int64 // [W][Tenants*MaxSize] sampled hits by scaled distance
	observed [][]int64 // [W][Tenants] all observed requests (exact)
	sampled  [][]int64 // [W][Tenants] sampled requests
	touched  [][]touchRec

	absEpoch   int64
	reqInEpoch int
}

// NewSampler validates the config and builds a sampler.
func NewSampler(cfg Config) (*Sampler, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	filter, err := analysis.NewSampleFilter(cfg.Rate, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &Sampler{
		cfg:      cfg,
		filter:   filter,
		stacks:   make([]*tenantStack, cfg.Tenants),
		hist:     make([][]int64, cfg.WindowEpochs),
		observed: make([][]int64, cfg.WindowEpochs),
		sampled:  make([][]int64, cfg.WindowEpochs),
		touched:  make([][]touchRec, cfg.WindowEpochs),
	}
	for t := range s.stacks {
		s.stacks[t] = newTenantStack()
	}
	for e := 0; e < cfg.WindowEpochs; e++ {
		s.hist[e] = make([]int64, cfg.Tenants*cfg.MaxSize)
		s.observed[e] = make([]int64, cfg.Tenants)
		s.sampled[e] = make([]int64, cfg.Tenants)
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Sampler) Config() Config { return s.cfg }

// Observe records one request. Called inline on the owner's request path;
// page ids must be non-negative (internal/cached and internal/trace both
// guarantee this).
func (s *Sampler) Observe(t trace.Tenant, p trace.PageID) {
	if t < 0 || int(t) >= s.cfg.Tenants || p < 0 {
		return
	}
	cur := int(s.absEpoch % int64(s.cfg.WindowEpochs))
	s.observed[cur][t]++
	s.reqInEpoch++
	if s.filter.Keep(p) {
		s.sampled[cur][t]++
		if dist := s.stacks[t].access(p, s.absEpoch); dist >= 0 {
			// Each sampled resident page stands for Scale/Rate true pages:
			// 1/Rate from hash sampling, Scale from the shard partition.
			scaled := int(float64(dist) * float64(s.cfg.Scale) / s.cfg.Rate)
			if scaled < s.cfg.MaxSize {
				s.hist[cur][int(t)*s.cfg.MaxSize+scaled]++
			}
		}
		s.touched[cur] = append(s.touched[cur], touchRec{t: t, p: p})
	}
	if s.reqInEpoch >= s.cfg.EpochRequests {
		s.advance()
	}
}

// advance rotates the epoch ring: the slot about to be reused holds the
// epoch that just fell out of the window, so its histogram mass is zeroed
// and every page whose last touch was in that epoch is expired from its
// stack (pages touched again since have a newer ref.epoch and survive).
func (s *Sampler) advance() {
	s.absEpoch++
	s.reqInEpoch = 0
	W := int64(s.cfg.WindowEpochs)
	slot := int(s.absEpoch % W)
	expired := s.absEpoch - W
	for _, tr := range s.touched[slot] {
		st := s.stacks[tr.t]
		if ref, ok := st.refs[tr.p]; ok && ref.epoch <= expired {
			st.remove(tr.p, ref)
		}
	}
	s.touched[slot] = s.touched[slot][:0]
	h := s.hist[slot]
	for i := range h {
		h[i] = 0
	}
	for t := 0; t < s.cfg.Tenants; t++ {
		s.observed[slot][t] = 0
		s.sampled[slot][t] = 0
	}
}

// TenantWindow is one tenant's window accounting from one sampler.
type TenantWindow struct {
	// Observed counts all window requests of the tenant at this sampler —
	// exact, not sampled.
	Observed int64
	// Sampled counts the requests that passed the SHARDS filter.
	Sampled int64
	// Hist[d] counts sampled reuses at scaled stack distance d.
	Hist []int64
}

// Snapshot sums the epoch ring into per-tenant window accounting. Call from
// the goroutine that owns the sampler (internal/cached does so via a shard
// mailbox message, putting the snapshot on a batch boundary).
func (s *Sampler) Snapshot() []TenantWindow {
	out := make([]TenantWindow, s.cfg.Tenants)
	for t := range out {
		out[t].Hist = make([]int64, s.cfg.MaxSize)
	}
	for e := 0; e < s.cfg.WindowEpochs; e++ {
		for t := 0; t < s.cfg.Tenants; t++ {
			out[t].Observed += s.observed[e][t]
			out[t].Sampled += s.sampled[e][t]
			h := s.hist[e][t*s.cfg.MaxSize : (t+1)*s.cfg.MaxSize]
			for d, v := range h {
				if v != 0 {
					out[t].Hist[d] += v
				}
			}
		}
	}
	return out
}

// TenantCurve is a merged per-tenant window miss-ratio curve.
type TenantCurve struct {
	// Tenant is the tenant id.
	Tenant int `json:"tenant"`
	// Requests counts the tenant's window requests across all shards
	// (exact: every request is observed by exactly one shard).
	Requests int64 `json:"requests"`
	// Sampled counts window requests that passed the SHARDS filter.
	Sampled int64 `json:"sampled"`
	// Rate echoes the sampling rate the curve was rescaled by.
	Rate float64 `json:"rate"`
	// HitsAt[c] estimates window hits at capacity c+1 pages: integer
	// sampled counts rescaled once by 1/Rate and clamped to Requests
	// (mirroring analysis.ApproxMattson's accumulation).
	HitsAt []float64 `json:"hits_at"`
}

// MissesAt predicts the tenant's window misses at capacity q pages; the
// curve is non-increasing in q and flat beyond MaxSize.
func (c TenantCurve) MissesAt(q int) float64 {
	if q < 1 || len(c.HitsAt) == 0 {
		return float64(c.Requests)
	}
	if q > len(c.HitsAt) {
		q = len(c.HitsAt)
	}
	m := float64(c.Requests) - c.HitsAt[q-1]
	if m < 0 {
		return 0
	}
	return m
}

// MissRatioAt is MissesAt normalized by window requests (0 when idle).
func (c TenantCurve) MissRatioAt(q int) float64 {
	if c.Requests == 0 {
		return 0
	}
	return c.MissesAt(q) / float64(c.Requests)
}

// Merge combines per-shard sampler snapshots into per-tenant curves:
// integer counts sum across shards (each request and each sampled reuse is
// counted by exactly one shard), then one 1/rate rescale with a clamp at
// the exact observed request count.
//
// scale is the distance rescaling factor the samplers applied (the shard
// count); together with rate it fixes the estimator's distance resolution
// g = ceil(scale/rate): a sampled reuse bucketed at scaled distance d only
// locates the true distance inside [d, d+g). Its hit mass therefore ramps
// linearly over capacities (d, d+g] instead of landing as a step at d+1 —
// without the ramp every capacity off the g-grid would show a zero
// marginal hit gain, an artifact a greedy capacity planner reads as "no
// use for one more page". At g = 1 the ramp degenerates to the exact step
// function, keeping the one-shard full-rate curve bit-identical to
// incremental Mattson.
func Merge(snaps [][]TenantWindow, tenants, maxSize int, rate float64, scale int) []TenantCurve {
	if rate <= 0 {
		rate = 1
	}
	if scale < 1 {
		scale = 1
	}
	g := int(math.Ceil(float64(scale)/rate - 1e-9))
	if g < 1 {
		g = 1
	}
	out := make([]TenantCurve, tenants)
	for t := range out {
		out[t] = TenantCurve{Tenant: t, Rate: rate, HitsAt: make([]float64, maxSize)}
		hist := make([]int64, maxSize)
		for _, snap := range snaps {
			if t >= len(snap) {
				continue
			}
			out[t].Requests += snap[t].Observed
			out[t].Sampled += snap[t].Sampled
			for d, v := range snap[t].Hist {
				if d < maxSize {
					hist[d] += v
				}
			}
		}
		// Difference array over per-capacity slopes: bucket d spreads
		// hist[d]/g per capacity across HitsAt indices [d, d+g-1]; two
		// prefix passes turn slopes into the cumulative hit curve.
		slope := make([]float64, maxSize+1)
		for d, v := range hist {
			if v == 0 {
				continue
			}
			m := float64(v) / float64(g)
			slope[d] += m
			if d+g <= maxSize {
				slope[d+g] -= m
			}
		}
		run := 0.0
		cum := 0.0
		for c := 0; c < maxSize; c++ {
			run += slope[c]
			cum += run
			est := cum / rate
			if est > float64(out[t].Requests) {
				est = float64(out[t].Requests)
			}
			out[t].HitsAt[c] = est
		}
	}
	return out
}

// fenwick is a binary indexed tree over slot occupancy.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix sums occupancy over slots [0, i].
func (f *fenwick) prefix(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}
