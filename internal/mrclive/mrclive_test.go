package mrclive

import (
	"math"
	"math/rand"
	"testing"

	"convexcache/internal/analysis"
	"convexcache/internal/costfn"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// randomTrace builds a seeded multi-tenant trace with tenant-disjoint pages.
func randomTrace(t *testing.T, seed int64, tenants, pagesPer, length int) *trace.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder()
	for i := 0; i < length; i++ {
		tn := trace.Tenant(rng.Intn(tenants))
		b.Add(tn, workload.PageOf(tn, int64(rng.Intn(pagesPer))))
	}
	return b.MustBuild()
}

// feed drives a whole trace through one sampler.
func feed(s *Sampler, tr *trace.Trace) {
	for _, r := range tr.Requests() {
		s.Observe(r.Tenant, r.Page)
	}
}

// TestSamplerExactAtFullRate pins the degenerate case the whole design
// hinges on: one sampler, rate 1, scale 1, window wider than the trace —
// the streaming estimator IS incremental Mattson and must match the offline
// per-tenant analysis bit for bit.
func TestSamplerExactAtFullRate(t *testing.T) {
	tr := randomTrace(t, 42, 3, 60, 30000)
	maxSize := 96
	s, err := NewSampler(Config{
		Tenants: 3, MaxSize: maxSize, Rate: 1, WindowEpochs: 2,
		EpochRequests: tr.Len() + 1, Scale: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(s, tr)
	curves := Merge([][]TenantWindow{s.Snapshot()}, 3, maxSize, 1, 1)
	offline, err := analysis.PerTenant(tr, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	for tn := 0; tn < 3; tn++ {
		if curves[tn].Requests != offline[tn].Requests {
			t.Fatalf("tenant %d: live requests %d != offline %d",
				tn, curves[tn].Requests, offline[tn].Requests)
		}
		for c := 0; c < maxSize; c++ {
			if curves[tn].HitsAt[c] != float64(offline[tn].HitsAt[c]) {
				t.Fatalf("tenant %d c=%d: live HitsAt %v not bit-identical to offline %d",
					tn, c+1, curves[tn].HitsAt[c], offline[tn].HitsAt[c])
			}
		}
	}
}

// TestSamplerShardPartitionTolerance checks the second sampling layer: when
// the request stream is partitioned page-mod-n across n samplers (exactly
// how internal/cached shards own pages) with Scale=n, the merged curve must
// track the offline exact curve within 5% miss ratio at every sampled
// capacity — the acceptance tolerance from the issue.
func TestSamplerShardPartitionTolerance(t *testing.T) {
	m, err := workload.NewMarkov(5, 3000, 0.55, 60)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Mix(6, []workload.TenantStream{{Tenant: 0, Stream: m, Rate: 1}}, 80000)
	if err != nil {
		t.Fatal(err)
	}
	maxSize := 400
	offline, err := analysis.Mattson(tr, maxSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4} {
		samplers := make([]*Sampler, n)
		for i := range samplers {
			samplers[i], err = NewSampler(Config{
				Tenants: 1, MaxSize: maxSize, Rate: 1, WindowEpochs: 2,
				EpochRequests: tr.Len() + 1, Scale: n,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range tr.Requests() {
			samplers[int(uint64(r.Page)%uint64(n))].Observe(r.Tenant, r.Page)
		}
		snaps := make([][]TenantWindow, n)
		for i, s := range samplers {
			snaps[i] = s.Snapshot()
		}
		curves := Merge(snaps, 1, maxSize, 1, n)
		if curves[0].Requests != int64(tr.Len()) {
			t.Fatalf("n=%d: merged requests %d != trace length %d", n, curves[0].Requests, tr.Len())
		}
		for _, c := range []int{25, 50, 100, 200, 400} {
			want := float64(offline.MissesAt(c)) / float64(offline.Requests)
			got := curves[0].MissRatioAt(c)
			if math.Abs(got-want) > 0.05 {
				t.Errorf("n=%d c=%d: live miss ratio %.4f vs offline %.4f (err > 5%%)", n, c, got, want)
			}
		}
	}
}

// TestSamplerWindowExpiry pins the decay semantics: after the working set
// shifts and the old phase rotates fully out of the W-epoch ring, the
// window counters and curve reflect only the new phase.
func TestSamplerWindowExpiry(t *testing.T) {
	const epoch = 1000
	s, err := NewSampler(Config{
		Tenants: 1, MaxSize: 64, Rate: 1, WindowEpochs: 2, EpochRequests: epoch, Scale: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Phase A: tight loop over 8 pages — almost all window hits.
	for i := 0; i < 2*epoch; i++ {
		s.Observe(0, trace.PageID(i%8))
	}
	hot := Merge([][]TenantWindow{s.Snapshot()}, 1, 64, 1, 1)[0]
	if hot.MissRatioAt(16) > 0.05 {
		t.Fatalf("hot-loop window miss ratio %.3f, want near 0", hot.MissRatioAt(16))
	}
	// Phase B: cold scan of fresh pages, long enough to rotate phase A out
	// of the 2-epoch ring entirely.
	for i := 0; i < 3*epoch; i++ {
		s.Observe(0, trace.PageID(1000+i))
	}
	cold := Merge([][]TenantWindow{s.Snapshot()}, 1, 64, 1, 1)[0]
	if cold.Requests > 2*epoch {
		t.Fatalf("window requests %d exceed the %d-request window", cold.Requests, 2*epoch)
	}
	if ratio := cold.MissRatioAt(64); ratio < 0.999 {
		t.Fatalf("cold-scan window miss ratio %.4f, want 1 (phase A mass must have expired)", ratio)
	}
	// Expired pages must be gone from the stack: re-touching a phase-A page
	// now is a cold reference, not a huge-distance reuse.
	before := s.Snapshot()[0]
	s.Observe(0, trace.PageID(3))
	after := s.Snapshot()[0]
	for d := range after.Hist {
		if after.Hist[d] != before.Hist[d] {
			t.Fatalf("re-touch of expired page recorded a reuse at distance %d", d)
		}
	}
}

// TestSamplerDeterministic pins reproducibility: the same request sequence
// through fresh samplers yields identical snapshots, for each shard count.
func TestSamplerDeterministic(t *testing.T) {
	tr := randomTrace(t, 7, 2, 80, 20000)
	for _, n := range []int{1, 2, 4} {
		run := func() []TenantCurve {
			samplers := make([]*Sampler, n)
			for i := range samplers {
				s, err := NewSampler(Config{
					Tenants: 2, MaxSize: 128, Rate: 0.5, Seed: 9,
					WindowEpochs: 4, EpochRequests: 512, Scale: n,
				})
				if err != nil {
					t.Fatal(err)
				}
				samplers[i] = s
			}
			for _, r := range tr.Requests() {
				samplers[int(uint64(r.Page)%uint64(n))].Observe(r.Tenant, r.Page)
			}
			snaps := make([][]TenantWindow, n)
			for i, s := range samplers {
				snaps[i] = s.Snapshot()
			}
			return Merge(snaps, 2, 128, 0.5, n)
		}
		a, b := run(), run()
		for tn := range a {
			if a[tn].Requests != b[tn].Requests || a[tn].Sampled != b[tn].Sampled {
				t.Fatalf("n=%d tenant %d: counts differ across runs", n, tn)
			}
			for c := range a[tn].HitsAt {
				if a[tn].HitsAt[c] != b[tn].HitsAt[c] {
					t.Fatalf("n=%d tenant %d c=%d: %v != %v", n, tn, c+1, a[tn].HitsAt[c], b[tn].HitsAt[c])
				}
			}
		}
	}
}

// TestSamplerCompaction forces many slot-array compactions (tiny reuse set,
// long stream) and checks distances survive them.
func TestSamplerCompaction(t *testing.T) {
	s, err := NewSampler(Config{
		Tenants: 1, MaxSize: 16, Rate: 1, WindowEpochs: 2, EpochRequests: 1 << 30, Scale: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Alternate two pages 10k times: after the first pair every access is a
	// reuse at distance 1, across ~40 compactions of the 256-slot array.
	for i := 0; i < 20000; i++ {
		s.Observe(0, trace.PageID(i%2))
	}
	w := s.Snapshot()[0]
	if w.Hist[1] != 20000-2 {
		t.Fatalf("distance-1 reuses = %d, want %d", w.Hist[1], 20000-2)
	}
}

func TestSamplerConfigValidation(t *testing.T) {
	if _, err := NewSampler(Config{Tenants: 0}); err == nil {
		t.Error("tenants=0 accepted")
	}
	if _, err := NewSampler(Config{Tenants: 1, Rate: 1.5}); err == nil {
		t.Error("rate>1 accepted")
	}
	s, err := NewSampler(Config{Tenants: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.MaxSize != 256 || cfg.Rate != 1 || cfg.WindowEpochs != 8 || cfg.EpochRequests != 4096 || cfg.Scale != 1 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

// TestControllerShiftsCapacityToActiveTenant drives the Plan path: tenant 0
// busy with a steep curve, tenant 1 idle — capacity flows to tenant 0 down
// to tenant 1's floor, and the split always sums to K.
func TestControllerShiftsCapacityToActiveTenant(t *testing.T) {
	maxSize := 64
	busy := TenantCurve{Tenant: 0, Requests: 10000, Rate: 1, HitsAt: make([]float64, maxSize)}
	for c := 0; c < maxSize; c++ {
		// Hits grow linearly with capacity: every page helps.
		busy.HitsAt[c] = float64(c+1) * 150
	}
	idle := TenantCurve{Tenant: 1, Requests: 0, Rate: 1, HitsAt: make([]float64, maxSize)}
	ctl := Controller{K: 48, Costs: []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Monomial{C: 1, Beta: 2}}, Floor: 4}
	q, err := ctl.Plan([]int{24, 24}, []TenantCurve{busy, idle}, []int64{5000, 5000})
	if err != nil {
		t.Fatal(err)
	}
	if q[0]+q[1] != 48 {
		t.Fatalf("split %v does not sum to 48", q)
	}
	if q[1] != 4 {
		t.Fatalf("idle tenant kept %d pages, want floor 4", q[1])
	}
	if q[0] != 44 {
		t.Fatalf("active tenant got %d pages, want 44", q[0])
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := (Controller{K: 0}).Plan(nil, []TenantCurve{{}}, nil); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := (Controller{K: 4}).Plan(nil, nil, nil); err == nil {
		t.Error("no curves accepted")
	}
}
