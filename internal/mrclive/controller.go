package mrclive

import (
	"errors"
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/multipool"
)

// Controller turns merged window curves into a per-tenant capacity split
// that minimizes the predicted weighted miss cost Σ f_i'(total_i) ·
// M_i^window(q_i), the first-order surrogate of the paper's objective
// Σ f_i(misses_i). The marginal weight couples the window prediction to the
// convex cost exactly as GreedyRebalancer's pressure does; a tenant with no
// window activity gets weight zero (activity decay, the satellite-2 fix) and
// drains to its reserve floor, never holding capacity on history alone. The
// per-tenant Floor is the "Caching with Reserves" guarantee: a returning
// tenant always finds at least Floor pages, bounding the cost of the
// controller being wrong about a dead tenant.
type Controller struct {
	// K is the total capacity to split.
	K int
	// Costs holds per-tenant cost functions; missing or nil entries weight
	// misses linearly (weight 1).
	Costs []costfn.Func
	// Floor is the per-tenant reserve in pages; the split never drops a
	// tenant below it (unless Tenants*Floor > K, in which case floors are
	// scaled back deterministically).
	Floor int
}

// Plan re-splits K across tenants from the current split cur, using the
// merged window curves for demand and totalMisses for the marginal weights.
// The result sums to exactly K; it equals a projection of cur onto the
// floor simplex when no transfer strictly reduces predicted cost, so an
// all-idle window leaves a settled split alone.
func (c Controller) Plan(cur []int, curves []TenantCurve, totalMisses []int64) ([]int, error) {
	if c.K <= 0 {
		return nil, errors.New("mrclive: controller needs positive K")
	}
	if len(curves) == 0 {
		return nil, errors.New("mrclive: controller needs at least one tenant curve")
	}
	floor := c.Floor
	if floor < 0 {
		floor = 0
	}
	demands := make([]multipool.CapacityDemand, len(curves))
	for i := range curves {
		curve := curves[i]
		d := multipool.CapacityDemand{Floor: floor}
		if curve.Requests > 0 {
			var total int64
			if i < len(totalMisses) {
				total = totalMisses[i]
			}
			d.Weight = marginalWeight(c.Costs, i, total)
			d.Misses = curve.MissesAt
		}
		demands[i] = d
	}
	q := multipool.SplitCapacity(cur, c.K, demands)
	sum := 0
	for _, v := range q {
		sum += v
	}
	if sum != c.K {
		return nil, fmt.Errorf("mrclive: planned split sums to %d, want %d", sum, c.K)
	}
	return q, nil
}

// marginalWeight is the tenant's marginal miss cost at its current total.
func marginalWeight(costs []costfn.Func, i int, total int64) float64 {
	if i >= len(costs) || costs[i] == nil {
		return 1
	}
	return costfn.DiscreteDeriv(costs[i], float64(total))
}
