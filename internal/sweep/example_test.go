package sweep_test

import (
	"fmt"

	"convexcache/internal/runspec"
	"convexcache/internal/sweep"
)

// Example replicates a metric across seeds and aggregates it.
func Example() {
	cells := []sweep.Cell{
		{Label: "double", Metric: func(seed int64) (float64, error) {
			return float64(2 * seed), nil
		}},
	}
	results, _ := sweep.Run(cells, []int64{1, 2, 3}, 2)
	r := results[0]
	fmt.Printf("%s: mean=%.0f min=%.0f max=%.0f over %d seeds\n",
		r.Label, r.Summary.Mean, r.Summary.Min, r.Summary.Max, r.Summary.N)
	// Output:
	// double: mean=4 min=2 max=6 over 3 seeds
}

// Example_scenario replicates a whole declarative scenario across seeds via
// the run-spec bridge: each seed generates a fresh workload and reports the
// LRU-over-ALG total-cost ratio.
func Example_scenario() {
	sc := runspec.Scenario{
		Trace: runspec.TraceSpec{Workload: &runspec.WorkloadSpec{
			Tenants: []runspec.TenantSpec{{Stream: "zipf:60,1.0"}, {Stream: "uniform:300:2"}},
			Length:  4000,
		}},
		Policies: []runspec.PolicySpec{{Name: "alg"}, {Name: "lru"}},
		Costs:    []string{"monomial:1,2", "linear:0.5"},
		K:        32,
	}
	cells := []sweep.Cell{sc.Cell("lru/alg", runspec.CostRatio("lru", "alg"))}
	results, _ := sweep.Run(cells, []int64{1, 2, 3, 4}, 0)
	r := results[0]
	fmt.Printf("%s over %d seeds: every ratio >= 1: %v\n",
		r.Label, r.Summary.N, r.Summary.Min >= 1)
	// Output:
	// lru/alg over 4 seeds: every ratio >= 1: true
}
