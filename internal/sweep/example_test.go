package sweep_test

import (
	"fmt"

	"convexcache/internal/sweep"
)

// Example replicates a metric across seeds and aggregates it.
func Example() {
	cells := []sweep.Cell{
		{Label: "double", Metric: func(seed int64) (float64, error) {
			return float64(2 * seed), nil
		}},
	}
	results, _ := sweep.Run(cells, []int64{1, 2, 3}, 2)
	r := results[0]
	fmt.Printf("%s: mean=%.0f min=%.0f max=%.0f over %d seeds\n",
		r.Label, r.Summary.Mean, r.Summary.Min, r.Summary.Max, r.Summary.N)
	// Output:
	// double: mean=4 min=2 max=6 over 3 seeds
}
