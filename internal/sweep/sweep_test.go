package sweep

import (
	"errors"
	"sync/atomic"
	"testing"

	"convexcache/internal/stats"
)

func TestRunAggregates(t *testing.T) {
	cells := []Cell{
		{Label: "identity", Metric: func(seed int64) (float64, error) { return float64(seed), nil }},
		{Label: "square", Metric: func(seed int64) (float64, error) { return float64(seed * seed), nil }},
	}
	res, err := Run(cells, []int64{1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Label != "identity" || res[0].Summary.Mean != 2.5 {
		t.Errorf("identity summary = %+v", res[0].Summary)
	}
	if res[1].Summary.Mean != 7.5 { // (1+4+9+16)/4
		t.Errorf("square mean = %g", res[1].Summary.Mean)
	}
	// Values preserve seed order.
	if res[0].Values[2] != 3 {
		t.Errorf("values out of order: %v", res[0].Values)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	cells := []Cell{
		{Label: "ok", Metric: func(seed int64) (float64, error) { return 1, nil }},
		{Label: "bad", Metric: func(seed int64) (float64, error) {
			if seed == 2 {
				return 0, boom
			}
			return 1, nil
		}},
	}
	res, err := Run(cells, []int64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Errorf("ok cell errored: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, boom) {
		t.Errorf("bad cell error = %v", res[1].Err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, []int64{1}, 1); err == nil {
		t.Error("no cells accepted")
	}
	if _, err := Run([]Cell{{Label: "x", Metric: func(int64) (float64, error) { return 0, nil }}}, nil, 1); err == nil {
		t.Error("no seeds accepted")
	}
}

func TestRunIsParallel(t *testing.T) {
	var calls atomic.Int32
	cells := []Cell{{Label: "count", Metric: func(seed int64) (float64, error) {
		calls.Add(1)
		return 0, nil
	}}}
	seeds := make([]int64, 64)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	if _, err := Run(cells, seeds, 8); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 64 {
		t.Errorf("metric called %d times", calls.Load())
	}
}

func TestTableRendersErrors(t *testing.T) {
	tb := Table("demo", []CellResult{
		{Label: "good", Summary: mustSummary(t, []float64{1, 2, 3}), Values: []float64{1, 2, 3}},
		{Label: "bad", Err: errors.New("nope"), Values: []float64{0}},
	})
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	rows := tb.Rows()
	if rows[0][2] != "2" {
		t.Errorf("mean cell = %q", rows[0][2])
	}
	if rows[1][2] != "error: nope" {
		t.Errorf("error cell = %q", rows[1][2])
	}
}

func mustSummary(t *testing.T, xs []float64) stats.Summary {
	t.Helper()
	s, err := stats.Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
