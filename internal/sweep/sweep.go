// Package sweep runs parameter sweeps with seed replication on a worker
// pool and aggregates each cell into summary statistics — the repeatability
// layer of the experiment harness (single-seed numbers are anecdotes; cells
// report mean, deviation and range across seeds).
package sweep

import (
	"errors"
	"runtime"
	"sync"

	"convexcache/internal/stats"
)

// Cell is one configuration of a sweep: a label and a metric evaluated at a
// seed. The metric function must be safe for concurrent invocation with
// distinct seeds.
type Cell struct {
	// Label names the cell in reports.
	Label string
	// Metric computes the cell's scalar at one seed.
	Metric func(seed int64) (float64, error)
}

// CellResult aggregates one cell across seeds.
type CellResult struct {
	// Label echoes the cell.
	Label string
	// Summary aggregates the per-seed metric values.
	Summary stats.Summary
	// Values holds the raw per-seed values, in seed order.
	Values []float64
	// Err is the first error encountered, if any.
	Err error
}

// Run evaluates every cell at every seed, fanning out on a worker pool
// (workers <= 0 selects GOMAXPROCS). Results preserve cell order.
func Run(cells []Cell, seeds []int64, workers int) ([]CellResult, error) {
	if len(cells) == 0 {
		return nil, errors.New("sweep: no cells")
	}
	if len(seeds) == 0 {
		return nil, errors.New("sweep: no seeds")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type task struct{ cell, seed int }
	tasks := make(chan task)
	values := make([][]float64, len(cells))
	errs := make([][]error, len(cells))
	for i := range cells {
		values[i] = make([]float64, len(seeds))
		errs[i] = make([]error, len(seeds))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				v, err := cells[tk.cell].Metric(seeds[tk.seed])
				values[tk.cell][tk.seed] = v
				errs[tk.cell][tk.seed] = err
			}
		}()
	}
	for c := range cells {
		for s := range seeds {
			tasks <- task{cell: c, seed: s}
		}
	}
	close(tasks)
	wg.Wait()
	out := make([]CellResult, len(cells))
	for c := range cells {
		res := CellResult{Label: cells[c].Label, Values: values[c]}
		for s := range seeds {
			if errs[c][s] != nil {
				res.Err = errs[c][s]
				break
			}
		}
		if res.Err == nil {
			summary, err := stats.Summarize(values[c])
			if err != nil {
				res.Err = err
			} else {
				res.Summary = summary
			}
		}
		out[c] = res
	}
	return out, nil
}

// Table renders sweep results as a stats.Table with mean/std/min/max
// columns.
func Table(title string, results []CellResult) *stats.Table {
	tb := stats.NewTable(title, "cell", "seeds", "mean", "std", "min", "max")
	for _, r := range results {
		if r.Err != nil {
			tb.AddRow(r.Label, len(r.Values), "error: "+r.Err.Error(), "-", "-", "-")
			continue
		}
		tb.AddRow(r.Label, r.Summary.N, r.Summary.Mean, r.Summary.Std, r.Summary.Min, r.Summary.Max)
	}
	return tb
}
