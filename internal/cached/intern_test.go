package cached

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// TestNewRejectsKBelowShards pins the k >= shards constructor contract:
// every shard must get a nonzero capacity share, or partition-mode quota
// math and the dense core's capacity both degenerate.
func TestNewRejectsKBelowShards(t *testing.T) {
	if _, err := New(Config{K: 3, Shards: 4, Tenants: 2, NewPolicy: testPolicy}); err == nil {
		t.Fatal("k < shards accepted")
	}
	// At the boundary k == shards each share is exactly one page.
	svc, err := New(Config{K: 4, Shards: 4, Tenants: 2, NewPolicy: testPolicy})
	if err != nil {
		t.Fatalf("k == shards rejected: %v", err)
	}
	for s := 0; s < 4; s++ {
		if got := sim.ShardShare(4, 4, s); got != 1 {
			t.Fatalf("shard %d share = %d, want 1", s, got)
		}
	}
	svc.Close()
}

// TestMaxKeyLenBoundary drives keys at the 256-byte wire limit through the
// live dense path, the WAL and recovery: the limit is a wire constraint,
// not an engine one, so a MaxKeyLen key must intern, hit, persist and
// recover exactly like a short one.
func TestMaxKeyLenBoundary(t *testing.T) {
	dir := t.TempDir()
	long := bytes.Repeat([]byte("x"), MaxKeyLen)
	long2 := append(bytes.Repeat([]byte("y"), MaxKeyLen-1), 'z')
	reqs := []Request{
		{Op: OpGet, Tenant: 0, Key: long},
		{Op: OpGet, Tenant: 1, Key: long}, // same bytes, distinct tenant-scoped page
		{Op: OpGet, Tenant: 0, Key: long2},
		{Op: OpGet, Tenant: 0, Key: long}, // must hit
	}
	svc := newWALService(t, Config{K: 8, Shards: 2, Tenants: 3, NewPolicy: testPolicy, WAL: testWAL(dir)})
	res, err := svc.Apply(reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{ResultMiss, ResultMiss, ResultMiss, ResultHit}
	if !bytes.Equal(res, want) {
		t.Fatalf("results = %v, want %v", res, want)
	}
	requireClean(t, svc)
	svc.Close()

	// Recovery re-interns the long keys from WAL records; the reopened
	// service must hit on them immediately.
	svc2 := newWALService(t, Config{K: 8, Shards: 2, Tenants: 3, NewPolicy: testPolicy,
		WAL: &WALConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 4096, CheckpointEvery: 4096, Recover: true}})
	res2, err := svc2.Apply([]Request{
		{Op: OpGet, Tenant: 0, Key: long},
		{Op: OpGet, Tenant: 1, Key: long},
		{Op: OpGet, Tenant: 0, Key: long2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res2 {
		if r != ResultHit {
			t.Fatalf("post-recovery request %d = %d, want hit", i, r)
		}
	}
	requireClean(t, svc2)
}

// TestInterningStableAcrossRecover pins the identity layer's recovery
// contract: the key -> residue-class page-id mapping a recovered service
// rebuilds from its WAL is the one the original assigned, so a stream that
// continues across the restart behaves bit-identically to one that never
// stopped.
func TestInterningStableAcrossRecover(t *testing.T) {
	const shards, tenants, k = 2, 3, 24
	dir := t.TempDir()
	s1 := genRequests(11, tenants, 40, 600)
	// s2 replays exactly s1's keys in a new deterministic order, so a
	// stable interner must not allocate a single new page id for it.
	s2 := append([]Request(nil), s1...)
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(s2), func(i, j int) { s2[i], s2[j] = s2[j], s2[i] })

	svc, err := New(Config{K: k, Shards: shards, Tenants: tenants, NewPolicy: testPolicy, WAL: testWAL(dir)})
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, svc, s1, 128)
	pagesBefore := countPages(t, svc)
	svc.Close()

	svc2 := newWALService(t, Config{K: k, Shards: shards, Tenants: tenants, NewPolicy: testPolicy,
		WAL: &WALConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 4096, CheckpointEvery: 4096, Recover: true}})
	if got := countPages(t, svc2); got != pagesBefore {
		t.Fatalf("recovered service interned %d pages, original had %d", got, pagesBefore)
	}
	applyAll(t, svc2, s2, 128)
	// s2 reuses s1's key universe: a stable interner allocates no new ids.
	if got := countPages(t, svc2); got != pagesBefore {
		t.Fatalf("replaying known keys grew the page table %d -> %d: ids were re-assigned", pagesBefore, got)
	}
	requireClean(t, svc2)

	// The continued run must be bit-identical to one that never restarted:
	// stable interning means the recovered service resolves s2's keys to the
	// same residue-class page ids, so hits/misses/evictions all line up.
	ref := newTestService(t, k, shards, tenants)
	applyAll(t, ref, s1, 128)
	applyAll(t, ref, s2, 128)
	st, stRef := normalizeStats(svc2.Stats()), normalizeStats(ref.Stats())
	if st.Hits != stRef.Hits || st.Misses != stRef.Misses || st.Evictions != stRef.Evictions {
		t.Fatalf("recovered run hits/misses/evictions %d/%d/%d, uninterrupted %d/%d/%d",
			st.Hits, st.Misses, st.Evictions, stRef.Hits, stRef.Misses, stRef.Evictions)
	}
	for i := range st.Shards {
		a, b := st.Shards[i], stRef.Shards[i]
		if a.Pages != b.Pages || a.Requests != b.Requests || a.Occupancy != b.Occupancy {
			t.Fatalf("shard %d: recovered run pages/requests/occupancy %d/%d/%d, uninterrupted %d/%d/%d",
				i, a.Pages, a.Requests, a.Occupancy, b.Pages, b.Requests, b.Occupancy)
		}
	}
	if fmt.Sprint(st.PerTenant) != fmt.Sprint(stRef.PerTenant) {
		t.Fatalf("per-tenant stats diverged:\nrecovered:     %v\nuninterrupted: %v", st.PerTenant, stRef.PerTenant)
	}
}

// countPages sums the interned page count over all shards.
func countPages(t *testing.T, svc *Service) int {
	t.Helper()
	total := 0
	for _, sh := range svc.Stats().Shards {
		total += sh.Pages
	}
	return total
}

// TestKeyTableMatchesMap drives the arena-backed interner against a plain
// map with colliding-prefix and boundary-length keys.
func TestKeyTableMatchesMap(t *testing.T) {
	var kt keyTable
	ref := map[string]trace.PageID{}
	keys := [][]byte{}
	// Short keys (inline-prefix fast path), 8-byte boundary, long keys
	// sharing an 8-byte prefix (arena comparison path).
	for i := 0; i < 600; i++ {
		keys = append(keys, []byte(fmt.Sprintf("k%d", i)))
		keys = append(keys, []byte(fmt.Sprintf("exactly8-%d", i))[:8+len(fmt.Sprint(i))])
		keys = append(keys, append(bytes.Repeat([]byte("p"), 12), []byte(fmt.Sprint(i))...))
	}
	for i, k := range keys {
		h, pre := hashKey(k)
		if _, ok := kt.lookup(h, pre, k); ok != (func() bool { _, seen := ref[string(k)]; return seen })() {
			t.Fatalf("lookup(%q) presence diverged from map", k)
		}
		if _, seen := ref[string(k)]; !seen {
			kt.insert(h, pre, k, trace.PageID(i))
			ref[string(k)] = trace.PageID(i)
		}
	}
	if kt.n != len(ref) {
		t.Fatalf("table has %d entries, map has %d", kt.n, len(ref))
	}
	for k, p := range ref {
		h, pre := hashKey([]byte(k))
		got, ok := kt.lookup(h, pre, []byte(k))
		if !ok || got != p {
			t.Fatalf("lookup(%q) = %d,%v want %d", k, got, ok, p)
		}
	}
	seen := map[string]bool{}
	kt.each(func(k []byte, p trace.PageID) {
		if ref[string(k)] != p {
			t.Fatalf("each yielded %q -> %d, map has %d", k, p, ref[string(k)])
		}
		seen[string(k)] = true
	})
	if len(seen) != len(ref) {
		t.Fatalf("each visited %d keys, map has %d", len(seen), len(ref))
	}
}
