package cached

import (
	"bytes"
	"fmt"

	"convexcache/internal/trace"
)

// Wire grammar of the cache endpoint — one request per line, fields joined
// by exactly one space:
//
//	line   := op " " tenant " " key
//	op     := "GET" | "PUT"
//	tenant := decimal integer, no sign, no leading zeros (except "0")
//	key    := 1..MaxKeyLen printable non-space ASCII bytes (0x21..0x7e)
//
// The grammar is strict on purpose: a deterministic parse/format round-trip
// (FormatRequest(ParseRequest(x)) == x) keeps the fuzz target honest and the
// request logs reproducible. Lines end in "\n"; a trailing "\r" is stripped
// so CRLF clients work. Blank lines are ignored.

// MaxKeyLen bounds the key length accepted on the wire.
const MaxKeyLen = 256

// maxBatchLines bounds how many request lines one body may carry.
const maxBatchLines = 1 << 20

// ParseRequest parses one line (without the trailing newline). tenants > 0
// bounds the accepted tenant range; tenants <= 0 skips the range check
// (used by the fuzz target, which has no configured universe).
func ParseRequest(line []byte, tenants int) (Request, error) {
	var r Request
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		return r, fmt.Errorf("cached: missing op separator in %q", clip(line))
	}
	switch {
	case bytes.Equal(line[:sp], []byte("GET")):
		r.Op = OpGet
	case bytes.Equal(line[:sp], []byte("PUT")):
		r.Op = OpPut
	default:
		return r, fmt.Errorf("cached: unknown op %q", clip(line[:sp]))
	}
	rest := line[sp+1:]
	sp = bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return r, fmt.Errorf("cached: missing tenant separator in %q", clip(line))
	}
	tenant, err := parseTenant(rest[:sp])
	if err != nil {
		return r, err
	}
	if tenants > 0 && int(tenant) >= tenants {
		return r, fmt.Errorf("cached: tenant %d out of range [0,%d)", tenant, tenants)
	}
	r.Tenant = tenant
	key := rest[sp+1:]
	if len(key) == 0 {
		return r, fmt.Errorf("cached: empty key in %q", clip(line))
	}
	if len(key) > MaxKeyLen {
		return r, fmt.Errorf("cached: key longer than %d bytes", MaxKeyLen)
	}
	for _, c := range key {
		if c < 0x21 || c > 0x7e {
			return r, fmt.Errorf("cached: key byte %#02x outside printable ASCII", c)
		}
	}
	r.Key = key
	return r, nil
}

// parseTenant parses a canonical non-negative decimal: digits only, no
// leading zeros unless the value is exactly "0", bounded well below
// overflow.
func parseTenant(b []byte) (trace.Tenant, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("cached: empty tenant")
	}
	if len(b) > 9 {
		return 0, fmt.Errorf("cached: tenant %q too long", clip(b))
	}
	if b[0] == '0' && len(b) > 1 {
		return 0, fmt.Errorf("cached: tenant %q has a leading zero", clip(b))
	}
	var v int
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("cached: tenant %q is not a decimal integer", clip(b))
		}
		v = v*10 + int(c-'0')
	}
	return trace.Tenant(v), nil
}

// ParseBatch parses a newline-separated request body. Errors name the
// offending 1-based line. The returned requests alias body — callers must
// keep body alive until the batch is applied (Apply copies keys it retains).
func ParseBatch(body []byte, tenants int) ([]Request, error) {
	var reqs []Request
	lineNo := 0
	for len(body) > 0 {
		lineNo++
		if lineNo > maxBatchLines {
			return nil, fmt.Errorf("cached: batch exceeds %d lines", maxBatchLines)
		}
		line := body
		if nl := bytes.IndexByte(body, '\n'); nl >= 0 {
			line = body[:nl]
			body = body[nl+1:]
		} else {
			body = nil
		}
		line = bytes.TrimSuffix(line, []byte("\r"))
		if len(line) == 0 {
			continue
		}
		r, err := ParseRequest(line, tenants)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		reqs = append(reqs, r)
	}
	return reqs, nil
}

// FormatRequest appends the canonical wire form of r (with trailing newline)
// to dst. It is the inverse of ParseRequest for every request ParseRequest
// accepts.
func FormatRequest(dst []byte, r Request) []byte {
	if r.Op == OpPut {
		dst = append(dst, "PUT "...)
	} else {
		dst = append(dst, "GET "...)
	}
	dst = fmt.Appendf(dst, "%d ", r.Tenant)
	dst = append(dst, r.Key...)
	return append(dst, '\n')
}

// clip bounds error-message echoes of untrusted input.
func clip(b []byte) string {
	const max = 32
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}
