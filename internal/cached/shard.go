package cached

import (
	"fmt"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"convexcache/internal/mrclive"
	"convexcache/internal/obs"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// LogEntry is one admitted request in a shard's deterministic request log.
// Seq is the global admission order (strictly increasing within a shard);
// Page is the shard-assigned page id; Tenant the requesting tenant. The op
// is deliberately absent — GET and PUT are both write-allocate, so residency
// evolution and therefore replay depend only on (page, tenant) order.
//
// Entries with a non-nil Quotas are control entries (partition mode only):
// they record the installation of a new global quota vector at this shard's
// sequence position, so the per-shard replay re-applies quota changes at
// exactly the step the live engine did. Control entries carry no page.
type LogEntry struct {
	Seq    int64
	Page   trace.PageID
	Tenant trace.Tenant
	Quotas []int
}

// shardReq is one request after ingress validation, routed to its shard.
type shardReq struct {
	idx    int
	op     Op
	tenant trace.Tenant
	key    []byte
}

// shardMsg is a mailbox message: a batch to apply (batch/results/done set),
// a snapshot request (snap set), or a quota-change control message (quotas
// set, partition mode only).
type shardMsg struct {
	batch   []shardReq
	results []byte
	done    *sync.WaitGroup

	snap    chan *ShardSnapshot
	withLog bool
	withMRC bool

	quotas     []int
	quotasDone *sync.WaitGroup
}

// inflight tracks the message the shard loop is currently serving, so a
// panic inside the engine can still answer the waiting Apply / SetQuotas /
// snapshot caller instead of deadlocking it.
type inflight struct {
	batch   []shardReq
	results []byte
	pos     int
	wg      *sync.WaitGroup
	snap    chan *ShardSnapshot
}

// ShardSnapshot is a consistent copy of one shard's accounting, taken on a
// batch boundary.
type ShardSnapshot struct {
	Shard     int
	K         int
	Requests  int64
	Occupancy int
	// LogStart is the logical index of the first in-memory log entry; the
	// sealed prefix [0, LogStart) lives in WAL segments on disk.
	LogStart int
	LogLen   int
	// Seg is the active WAL segment index (0 without a WAL); segments below
	// it are sealed and immutable.
	Seg   int
	Pages int
	// Down reports the shard is shedding while it rebuilds after a panic.
	Down bool
	// Hits/Misses/Evictions are per-tenant, length Config.Tenants.
	Hits      []int64
	Misses    []int64
	Evictions []int64
	// Log is the shard's in-memory log tail (the active segment); nil unless
	// requested.
	Log []LogEntry
	// MRC is the shard sampler's window accounting; nil unless requested
	// (or the service runs without an estimator).
	MRC []mrclive.TenantWindow
	// Err is the shard's failure state (policy contract violation or WAL
	// write failure), if any.
	Err error
}

// shard is one single-writer cache partition. All fields below the mailbox
// are owned exclusively by the loop goroutine — no locks anywhere on the
// request path (down is the one atomic, read by ingress to shed early). The
// engine step mirrors sim.runMap exactly (hit → OnHit; miss → optional
// Victim/OnEvict → OnInsert), so per-shard live counters are bit-identical
// to a per-shard offline replay of the same log — the property both Verify
// and crash recovery are built on.
type shard struct {
	svc *Service
	id  int
	k   int
	in  chan shardMsg

	// down is set while the shard rebuilds after an engine panic: ingress
	// sheds requests for this shard (503 + Retry-After) instead of queuing
	// behind the rebuild.
	down atomic.Bool

	// wal is the shard's write-ahead log; nil when durability is disabled.
	wal *shardWAL

	// Exactly one engine is active: policy (classic mode) or qlru
	// (partition mode, adaptive per-tenant quotas).
	policy sim.Policy
	qlru   *quotaLRU
	// sampler is the shard's streaming MRC estimator (nil when disabled);
	// owned by the loop goroutine like all other state, so Observe runs
	// lock-free on the request path.
	sampler *mrclive.Sampler
	// keys maps tenant-scoped keys to page ids. Shard s assigns ids from
	// the residue class {s, s+n, s+2n, ...} (nextPage starts at s, steps by
	// n), so page ownership is recoverable as page mod n at replay time.
	keys     []map[string]trace.PageID
	nextPage trace.PageID
	pages    int
	// cache maps resident pages to their owning tenant, exactly like the
	// simulator's map engine.
	cache map[trace.PageID]trace.Tenant
	// log holds the entries of the active WAL segment only (the whole
	// history without a WAL); logStart is the logical index of log[0], and
	// steps = logStart + len(log) is the total logical entry count — also
	// the policy step counter.
	log      []LogEntry
	logStart int
	steps    int
	// lastSeq is the newest global sequence number this shard admitted;
	// lastQuotaSeq the newest quota-control entry's (for quota reconcile
	// after recovery). quotasNow is the global quota vector as of this
	// shard's log position (partition mode).
	lastSeq      int64
	lastQuotaSeq int64
	quotasNow    []int
	// lastCkpt is the steps value at the last checkpoint attempt.
	lastCkpt int
	// reqs counts admitted requests (log entries minus quota controls).
	reqs      int64
	hits      []int64
	misses    []int64
	evictions []int64
	failed    error
	// panicErr records the most recent engine panic; cur the in-flight
	// message (loop-goroutine-owned, read by the recover handler on the
	// same goroutine).
	panicErr error
	cur      *inflight

	mReqs, mHits, mMisses, mEvictions *obs.Counter
	mOccupancy, mLog                  *obs.Gauge
}

func newShard(svc *Service, id, k int) *shard {
	lbl := fmt.Sprintf(`{shard="%d"}`, id)
	sh := &shard{
		svc:       svc,
		id:        id,
		k:         k,
		in:        make(chan shardMsg, svc.cfg.MailboxDepth),
		keys:      make([]map[string]trace.PageID, svc.cfg.Tenants),
		nextPage:  trace.PageID(id),
		cache:     make(map[trace.PageID]trace.Tenant, k),
		hits:      make([]int64, svc.cfg.Tenants),
		misses:    make([]int64, svc.cfg.Tenants),
		evictions: make([]int64, svc.cfg.Tenants),

		mReqs:      svc.reg.Counter("cached_requests_total" + lbl),
		mHits:      svc.reg.Counter("cached_hits_total" + lbl),
		mMisses:    svc.reg.Counter("cached_misses_total" + lbl),
		mEvictions: svc.reg.Counter("cached_evictions_total" + lbl),
		mOccupancy: svc.reg.Gauge("cached_occupancy_pages" + lbl),
		mLog:       svc.reg.Gauge("cached_log_entries" + lbl),
	}
	for t := range sh.keys {
		sh.keys[t] = make(map[string]trace.PageID)
	}
	if svc.cfg.Quotas != nil {
		sh.qlru = newQuotaLRU(localQuotas(svc.cfg.Quotas, svc.cfg.Shards, id))
		sh.quotasNow = append([]int(nil), svc.cfg.Quotas...)
	} else {
		sh.policy = svc.cfg.NewPolicy()
	}
	if svc.cfg.MRC != nil {
		mc := *svc.cfg.MRC
		mc.Tenants = svc.cfg.Tenants
		mc.Scale = svc.cfg.Shards
		// Config was validated in New; a fresh sampler cannot fail here.
		sh.sampler, _ = mrclive.NewSampler(mc)
	}
	if svc.walCfg != nil {
		sh.wal = newShardWAL(svc.walCfg, id, svc.cfg.Shards)
	}
	return sh
}

// localQuotas derives shard id's slice of a global per-tenant quota vector:
// tenant t gets sim.ShardShare(q[t], n, id) pages, so summing local quotas
// over all shards reproduces each global quota (and therefore K) exactly —
// the same split rule the shard capacities themselves use.
func localQuotas(global []int, n, id int) []int {
	local := make([]int, len(global))
	for t, q := range global {
		local[t] = sim.ShardShare(q, n, id)
	}
	return local
}

// loop is the shard's goroutine: serve the mailbox until Close closes it,
// and on an engine panic isolate the failure — mark the shard down, rebuild
// it from its own durable history while the other shards keep serving, then
// resume. A clean shutdown seals the WAL (final flush + checkpoint); a
// simulated kill -9 (Service.Crash) skips that on purpose.
func (sh *shard) loop() {
	defer sh.svc.wg.Done()
	for {
		if sh.serve() {
			if sh.wal != nil {
				if sh.failed == nil && !sh.svc.crashed.Load() {
					sh.sealWAL()
				} else if sh.wal.f != nil {
					// Crashed or failed: drop the handle without flushing —
					// buffered frames are lost exactly as a killed process
					// would lose them.
					sh.wal.f.Close()
				}
			}
			return
		}
		sh.svc.mShardDown.Inc()
		sh.rebuild()
		if sh.failed == nil {
			sh.svc.mShardRestarts.Inc()
		}
		sh.down.Store(false)
	}
}

// serve drains the mailbox; returns true when the mailbox closed (shutdown)
// and false when a panic escaped the engine (the caller rebuilds).
func (sh *shard) serve() (closed bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.panicErr = fmt.Errorf("cached: shard %d panicked: %v", sh.id, r)
			sh.down.Store(true)
			sh.abortInflight()
		}
	}()
	for m := range sh.in {
		sh.handle(m)
	}
	return true
}

// abortInflight answers the message interrupted by a panic: remaining batch
// slots are shed, waiting callers released. Runs on the loop goroutine
// inside the recover handler.
func (sh *shard) abortInflight() {
	cur := sh.cur
	sh.cur = nil
	if cur == nil {
		return
	}
	if cur.snap != nil {
		t := sh.svc.cfg.Tenants
		cur.snap <- &ShardSnapshot{
			Shard: sh.id, K: sh.k, Down: true, Err: sh.panicErr,
			Hits: make([]int64, t), Misses: make([]int64, t), Evictions: make([]int64, t),
		}
		return
	}
	for _, r := range cur.batch[cur.pos:] {
		if cur.results[r.idx] == 0 {
			cur.results[r.idx] = ResultShed
		}
	}
	if cur.wg != nil {
		cur.wg.Done()
	}
}

// handle serves one mailbox message. After a Service.Crash every queued
// batch is shed instead of applied — the process is pretending to be dead.
func (sh *shard) handle(m shardMsg) {
	if m.snap != nil {
		sh.cur = &inflight{snap: m.snap}
		m.snap <- sh.snapshot(m.withLog, m.withMRC)
		sh.cur = nil
		return
	}
	if m.quotas != nil {
		sh.cur = &inflight{wg: m.quotasDone}
		if !sh.svc.crashed.Load() {
			sh.applyQuotas(m.quotas)
			sh.afterBatch(nil)
		}
		sh.cur = nil
		m.quotasDone.Done()
		return
	}
	cur := &inflight{batch: m.batch, results: m.results, wg: m.done}
	sh.cur = cur
	for i, r := range m.batch {
		cur.pos = i
		if sh.svc.crashed.Load() {
			m.results[r.idx] = ResultShed
			continue
		}
		m.results[r.idx] = sh.apply(r)
	}
	cur.pos = len(m.batch)
	if !sh.svc.crashed.Load() {
		sh.afterBatch(cur)
	}
	sh.cur = nil
	m.done.Done()
}

// appendEntry admits one log entry: in-memory log, WAL buffer (group
// commit — flushed in afterBatch), sequence bookkeeping.
func (sh *shard) appendEntry(e LogEntry, newKey []byte) {
	sh.log = append(sh.log, e)
	sh.steps++
	sh.lastSeq = e.Seq
	if e.Quotas != nil {
		sh.lastQuotaSeq = e.Seq
	}
	if sh.wal != nil {
		if e.Quotas != nil {
			sh.wal.appendQuotas(e.Seq, e.Quotas)
		} else {
			sh.wal.appendRequest(e.Seq, e.Page, e.Tenant, newKey)
		}
	}
	sh.mLog.Set(int64(sh.steps))
}

// afterBatch runs the durability work riding each mailbox batch: group
// commit (one write + fsync per policy), segment rotation (which bounds the
// in-memory log to the active segment) and periodic checkpoints. A WAL
// write failure fails the shard — the batch cannot be acknowledged as
// applied when its entries may not survive a restart.
func (sh *shard) afterBatch(cur *inflight) {
	if sh.wal == nil || sh.failed != nil {
		return
	}
	if err := sh.wal.flush(time.Now()); err != nil {
		sh.walFail(err, cur)
		return
	}
	if sh.wal.shouldRotate() {
		if err := sh.wal.rotate(sh.steps); err != nil {
			sh.walFail(err, cur)
			return
		}
		sh.logStart = sh.steps
		sh.log = sh.log[:0]
	}
	if sh.wal.ckptEvery > 0 && sh.steps-sh.lastCkpt >= sh.wal.ckptEvery {
		// Advance lastCkpt even on failure so a broken disk is not hammered
		// every batch; the WAL still holds everything a checkpoint would.
		sh.lastCkpt = sh.steps
		if err := sh.writeCheckpoint(); err != nil {
			sh.svc.mWALErrors.Inc()
		}
	}
}

// walFail marks the shard failed and retracts the current batch's results:
// the entries were applied in memory but are not durable, so acknowledging
// them would break the recovery contract.
func (sh *shard) walFail(err error, cur *inflight) {
	sh.failed = fmt.Errorf("cached: shard %d wal: %w", sh.id, err)
	sh.svc.mWALErrors.Inc()
	if cur != nil {
		for _, r := range cur.batch {
			cur.results[r.idx] = ResultError
		}
	}
}

// sealWAL is the clean-shutdown path: final checkpoint (if the engine is
// checkpointable) plus flush/sync/close, so the next start recovers
// instantly and bit-exactly.
func (sh *shard) sealWAL() {
	if sh.wal.ckptEvery > 0 && sh.steps > sh.lastCkpt {
		if err := sh.writeCheckpoint(); err != nil {
			sh.svc.mWALErrors.Inc()
		}
	}
	if err := sh.wal.closeSync(); err != nil {
		sh.svc.mWALErrors.Inc()
	}
}

// applyQuotas installs a new global quota vector (partition mode): the
// change is logged as a control entry at this shard's next sequence number,
// then the shard-local quotas are derived and applied, trimming shrinking
// tenants' LRU tails. Because the entry sits in the log at the exact step
// the live engine switched quotas, the offline replay switches at the same
// step and stays bit-identical.
func (sh *shard) applyQuotas(global []int) {
	if sh.qlru == nil || sh.failed != nil {
		return
	}
	seq := sh.svc.seq.Add(1)
	sh.appendEntry(LogEntry{Seq: seq, Page: -1, Tenant: -1, Quotas: append([]int(nil), global...)}, nil)
	if ev := sh.stepQuotas(global); ev > 0 {
		sh.mEvictions.Add(int64(ev))
	}
	sh.mOccupancy.Set(int64(sh.qlru.Occupancy()))
}

// stepQuotas is the engine side of a quota switch, shared verbatim by the
// live path and recovery replay: derive local shares, trim, count.
func (sh *shard) stepQuotas(global []int) int {
	total := 0
	for t, n := range sh.qlru.SetQuotas(localQuotas(global, sh.svc.cfg.Shards, sh.id)) {
		if n > 0 {
			sh.evictions[t] += int64(n)
			total += n
		}
	}
	sh.quotasNow = append(sh.quotasNow[:0], global...)
	return total
}

// apply runs one live request through the shard: key interning, sequence
// draw, log + WAL append, then the engine step. Only this live wrapper
// touches obs metrics — the step itself is shared with recovery replay.
func (sh *shard) apply(r shardReq) byte {
	if sh.failed != nil {
		return ResultError
	}
	km := sh.keys[r.tenant]
	page, seen := km[string(r.key)]
	var newKey []byte
	if !seen {
		page = sh.nextPage
		sh.nextPage += trace.PageID(len(sh.svc.shards))
		sh.pages++
		km[string(r.key)] = page
		newKey = r.key
	}
	seq := sh.svc.seq.Add(1)
	sh.appendEntry(LogEntry{Seq: seq, Page: page, Tenant: r.tenant}, newKey)
	sh.mReqs.Inc()
	if sh.sampler != nil {
		sh.sampler.Observe(r.tenant, page)
	}
	res, ev := sh.stepRequest(page, r.tenant)
	switch res {
	case ResultHit:
		sh.mHits.Inc()
	case ResultMiss:
		sh.mMisses.Inc()
	}
	if ev > 0 {
		sh.mEvictions.Add(int64(ev))
	}
	occ := len(sh.cache)
	if sh.qlru != nil {
		occ = sh.qlru.Occupancy()
	}
	sh.mOccupancy.Set(int64(occ))
	return res
}

// stepRequest is the engine step for the already-logged request at logical
// index steps-1 — sim.runMap's step verbatim. It is the single function
// both the live path and recovery/rebuild replay run, which is what makes
// recovered state provably bit-identical. Returns the result byte and the
// eviction count (0 or 1).
func (sh *shard) stepRequest(page trace.PageID, t trace.Tenant) (byte, int) {
	sh.reqs++
	if sh.qlru != nil {
		hit, evicted := sh.qlru.Access(t, page)
		if hit {
			sh.hits[t]++
			return ResultHit, 0
		}
		sh.misses[t]++
		if evicted {
			sh.evictions[t]++
			return ResultMiss, 1
		}
		return ResultMiss, 0
	}
	step := sh.steps - 1
	req := trace.Request{Page: page, Tenant: t}
	if _, resident := sh.cache[page]; resident {
		sh.hits[t]++
		sh.policy.OnHit(step, req)
		return ResultHit, 0
	}
	sh.misses[t]++
	if len(sh.cache) >= sh.k {
		victim := sh.policy.Victim(step, req)
		owner, resident := sh.cache[victim]
		if !resident {
			sh.failed = fmt.Errorf("cached: shard %d: policy %s evicted non-resident page %d at step %d",
				sh.id, sh.policy.Name(), victim, step)
			return ResultError, 0
		}
		delete(sh.cache, victim)
		sh.evictions[owner]++
		sh.policy.OnEvict(step, victim)
		sh.cache[page] = t
		sh.policy.OnInsert(step, req)
		return ResultMiss, 1
	}
	sh.cache[page] = t
	sh.policy.OnInsert(step, req)
	return ResultMiss, 0
}

// replayEntry re-applies one logged entry during recovery or rebuild. key,
// when non-nil, is the wire key carried by a first-appearance WAL record;
// entries replayed from memory pass nil (the key table survived). The
// engine mutations are exactly the live path's — same functions, same
// order.
func (sh *shard) replayEntry(e LogEntry, key []byte) error {
	if e.Quotas != nil {
		if sh.qlru == nil {
			return fmt.Errorf("cached: shard %d: quota control entry (seq %d) outside partition mode", sh.id, e.Seq)
		}
		sh.steps++
		sh.lastSeq = e.Seq
		sh.lastQuotaSeq = e.Seq
		sh.stepQuotas(e.Quotas)
		return nil
	}
	if key != nil {
		km := sh.keys[e.Tenant]
		if _, seen := km[string(key)]; !seen {
			km[string(key)] = e.Page
			sh.pages++
			if next := e.Page + trace.PageID(len(sh.svc.shards)); next > sh.nextPage {
				sh.nextPage = next
			}
		}
	}
	sh.steps++
	sh.lastSeq = e.Seq
	sh.stepRequest(e.Page, e.Tenant)
	return sh.failed
}

// resetEngine rebuilds a fresh engine and zeroes the replay-derived state
// (counters, step/sequence bookkeeping). Identity state — key table,
// nextPage, pages, logs — is left alone; rebuild relies on that.
func (sh *shard) resetEngine() {
	cfg := sh.svc.cfg
	if cfg.Quotas != nil {
		sh.qlru = newQuotaLRU(localQuotas(cfg.Quotas, cfg.Shards, sh.id))
		sh.quotasNow = append(sh.quotasNow[:0], cfg.Quotas...)
	} else {
		sh.policy = cfg.NewPolicy()
		sh.cache = make(map[trace.PageID]trace.Tenant, sh.k)
	}
	sh.reqs = 0
	for t := range sh.hits {
		sh.hits[t], sh.misses[t], sh.evictions[t] = 0, 0, 0
	}
	sh.steps, sh.lastSeq, sh.lastQuotaSeq = 0, 0, 0
	sh.failed = nil
}

// rebuild restores the shard after an engine panic by replaying its own
// history — sealed WAL segments from disk plus the in-memory tail — through
// a fresh engine. The key table, page allocator and in-memory log survive
// panics intact (they are plain data mutated before any engine call), so
// only the engine and counters are rederived. A second panic during the
// replay is deterministic and marks the shard permanently failed.
func (sh *shard) rebuild() {
	defer func() {
		if r := recover(); r != nil {
			sh.failed = fmt.Errorf("cached: shard %d: repeated panic during rebuild: %v (first: %v)", sh.id, r, sh.panicErr)
		}
	}()
	tail := sh.log
	logStart := sh.logStart
	sh.resetEngine()
	if sh.wal != nil && logStart > 0 {
		if err := sh.replaySealed(); err != nil {
			sh.failed = fmt.Errorf("cached: shard %d: rebuild from wal after panic (%v): %w", sh.id, sh.panicErr, err)
			return
		}
		if sh.steps != logStart {
			sh.failed = fmt.Errorf("cached: shard %d: sealed wal replay produced %d entries, in-memory tail starts at %d", sh.id, sh.steps, logStart)
			return
		}
	}
	for _, e := range tail {
		if err := sh.replayEntry(e, nil); err != nil {
			sh.failed = err
			return
		}
	}
}

// replaySealed streams every sealed segment (index < active) through
// replayEntry. Sealed segments are immutable and were validated at write or
// recovery time, so corruption here is a hard error, never a truncation.
func (sh *shard) replaySealed() error {
	w := sh.wal
	for idx := 0; idx < w.segIndex; idx++ {
		rc, err := w.fs.Open(path.Join(w.dir, segName(idx)))
		if err != nil {
			return err
		}
		_, torn, serr := scanSegment(rc, func(rec walRecord) error {
			if rec.kind == recHeader {
				return nil
			}
			return sh.replayEntry(rec.entry, rec.key)
		})
		rc.Close()
		if serr != nil {
			return fmt.Errorf("sealed segment %d: %w", idx, serr)
		}
		if torn {
			return fmt.Errorf("sealed segment %d has a torn tail", idx)
		}
	}
	return nil
}

// syncMetrics brings the obs counters and gauges up to the shard's current
// accounting — used once after recovery, when the registry starts from zero.
func (sh *shard) syncMetrics() {
	sh.mReqs.Add(sh.reqs)
	var h, m, e int64
	for t := range sh.hits {
		h += sh.hits[t]
		m += sh.misses[t]
		e += sh.evictions[t]
	}
	sh.mHits.Add(h)
	sh.mMisses.Add(m)
	sh.mEvictions.Add(e)
	occ := len(sh.cache)
	if sh.qlru != nil {
		occ = sh.qlru.Occupancy()
	}
	sh.mOccupancy.Set(int64(occ))
	sh.mLog.Set(int64(sh.steps))
}

// snapshot copies the shard's accounting. Called from the loop goroutine
// while serving, or from snapshotAll after the loop has exited.
func (sh *shard) snapshot(withLog, withMRC bool) *ShardSnapshot {
	snap := &ShardSnapshot{
		Shard:     sh.id,
		K:         sh.k,
		Requests:  sh.reqs,
		Occupancy: len(sh.cache),
		LogStart:  sh.logStart,
		LogLen:    len(sh.log),
		Pages:     sh.pages,
		Down:      sh.down.Load(),
		Hits:      append([]int64(nil), sh.hits...),
		Misses:    append([]int64(nil), sh.misses...),
		Evictions: append([]int64(nil), sh.evictions...),
		Err:       sh.failed,
	}
	if sh.wal != nil {
		snap.Seg = sh.wal.segIndex
	}
	if sh.qlru != nil {
		snap.Occupancy = sh.qlru.Occupancy()
	}
	if withLog {
		snap.Log = append([]LogEntry(nil), sh.log...)
	}
	if withMRC && sh.sampler != nil {
		snap.MRC = sh.sampler.Snapshot()
	}
	return snap
}
