package cached

import (
	"fmt"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"convexcache/internal/core"
	"convexcache/internal/mrclive"
	"convexcache/internal/obs"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// LogEntry is one admitted request in a shard's deterministic request log.
// Seq is the global admission order (strictly increasing within a shard);
// Page is the shard-assigned page id; Tenant the requesting tenant. The op
// is deliberately absent — GET and PUT are both write-allocate, so residency
// evolution and therefore replay depend only on (page, tenant) order.
//
// Entries with a non-nil Quotas are control entries (partition mode only):
// they record the installation of a new global quota vector at this shard's
// sequence position, so the per-shard replay re-applies quota changes at
// exactly the step the live engine did. Control entries carry no page.
type LogEntry struct {
	Seq    int64
	Page   trace.PageID
	Tenant trace.Tenant
	Quotas []int
}

// logRec is one in-memory log entry in pointer-free form: 24 bytes, no
// Quotas slice. A []LogEntry is pointer-bearing through Quotas, which puts a
// write barrier on every live-path append and rescans the whole log on every
// GC mark; logRec keeps the hot array out of both.
type logRec struct {
	seq    int64
	page   trace.PageID
	tenant int32
	_      int32
}

// logChunkBits sizes entryLog's fixed chunks: 2^15 records (768 KiB each).
const logChunkBits = 15

// entryLog stores the active segment's entries as pointer-free records in
// fixed-size chunks. Chunking means appends never copy and growth produces
// no garbage — a flat slice either reallocates ~4x the final size over a
// segment's life (append's large-slice policy) or needs manual doubling
// copies. Quota control entries are rare (partition-mode control plane), so
// their vectors live in a small side map keyed by log index.
type entryLog struct {
	chunks [][]logRec
	n      int
	quotas map[int][]int
}

func (l *entryLog) len() int { return l.n }

func (l *entryLog) appendReq(seq int64, page trace.PageID, t trace.Tenant) {
	const mask = 1<<logChunkBits - 1
	ci := l.n >> logChunkBits
	if ci == len(l.chunks) {
		l.chunks = append(l.chunks, make([]logRec, 0, 1<<logChunkBits))
	}
	l.chunks[ci] = append(l.chunks[ci], logRec{seq: seq, page: page, tenant: int32(t)})
	l.n++
}

func (l *entryLog) appendQuotas(seq int64, quotas []int) {
	l.appendReq(seq, -1, -1)
	if l.quotas == nil {
		l.quotas = make(map[int][]int)
	}
	l.quotas[l.n-1] = quotas
}

func (l *entryLog) append(e LogEntry) {
	l.appendReq(e.Seq, e.Page, e.Tenant)
	if e.Quotas != nil {
		if l.quotas == nil {
			l.quotas = make(map[int][]int)
		}
		l.quotas[l.n-1] = e.Quotas
	}
}

func (l *entryLog) at(i int) LogEntry {
	r := &l.chunks[i>>logChunkBits][i&(1<<logChunkBits-1)]
	e := LogEntry{Seq: r.seq, Page: r.page, Tenant: trace.Tenant(r.tenant)}
	if l.quotas != nil {
		e.Quotas = l.quotas[i]
	}
	return e
}

// reset empties the log keeping the first chunk's capacity (segment
// rotation).
func (l *entryLog) reset() {
	if len(l.chunks) > 1 {
		l.chunks = l.chunks[:1]
	}
	if len(l.chunks) == 1 {
		l.chunks[0] = l.chunks[0][:0]
	}
	l.n = 0
	l.quotas = nil
}

// entries materializes the AoS view for snapshots and wire formats.
func (l *entryLog) entries() []LogEntry {
	out := make([]LogEntry, l.len())
	for i := range out {
		out[i] = l.at(i)
	}
	return out
}

// shardMsg is a mailbox message: a batch to apply (reqs/idxs/results/done
// set — idxs are this shard's indices into the Apply caller's reqs slice, in
// batch order), a snapshot request (snap set), or a quota-change control
// message (quotas set, partition mode only).
type shardMsg struct {
	reqs    []Request
	idxs    []int32
	results []byte
	done    *sync.WaitGroup

	snap    chan *ShardSnapshot
	withLog bool
	withMRC bool

	quotas     []int
	quotasDone *sync.WaitGroup
}

// inflight tracks the message the shard loop is currently serving, so a
// panic inside the engine can still answer the waiting Apply / SetQuotas /
// snapshot caller instead of deadlocking it.
type inflight struct {
	idxs    []int32
	results []byte
	pos     int
	wg      *sync.WaitGroup
	snap    chan *ShardSnapshot
}

// ShardSnapshot is a consistent copy of one shard's accounting, taken on a
// batch boundary.
type ShardSnapshot struct {
	Shard     int
	K         int
	Requests  int64
	Occupancy int
	// LogStart is the logical index of the first in-memory log entry; the
	// sealed prefix [0, LogStart) lives in WAL segments on disk.
	LogStart int
	LogLen   int
	// Seg is the active WAL segment index (0 without a WAL); segments below
	// it are sealed and immutable.
	Seg   int
	Pages int
	// Down reports the shard is shedding while it rebuilds after a panic.
	Down bool
	// Hits/Misses/Evictions are per-tenant, length Config.Tenants.
	Hits      []int64
	Misses    []int64
	Evictions []int64
	// Log is the shard's in-memory log tail (the active segment); nil unless
	// requested.
	Log []LogEntry
	// MRC is the shard sampler's window accounting; nil unless requested
	// (or the service runs without an estimator).
	MRC []mrclive.TenantWindow
	// Err is the shard's failure state (policy contract violation or WAL
	// write failure), if any.
	Err error
}

// shard is one single-writer cache partition. All fields below the mailbox
// are owned exclusively by the loop goroutine — no locks anywhere on the
// request path (down is the one atomic, read by ingress to shed early). The
// engine step mirrors sim.runMap exactly (hit → OnHit; miss → optional
// Victim/OnEvict → OnInsert), so per-shard live counters are bit-identical
// to a per-shard offline replay of the same log — the property both Verify
// and crash recovery are built on.
type shard struct {
	svc *Service
	id  int
	k   int
	in  chan shardMsg

	// down is set while the shard rebuilds after an engine panic: ingress
	// sheds requests for this shard (503 + Retry-After) instead of queuing
	// behind the rebuild.
	down atomic.Bool

	// wal is the shard's write-ahead log; nil when durability is disabled.
	wal *shardWAL

	// Exactly one engine steps requests: open (the dense shard core —
	// classic mode's default), policy (classic mode with Config.MapStep, or
	// a policy without a dense core), or qlru (partition mode, adaptive
	// per-tenant quotas). When open is active, policy still holds the
	// constructed policy (it supplies the Options) but is never stepped.
	open   *core.Open
	policy sim.Policy
	qlru   *quotaLRU
	// sampler is the shard's streaming MRC estimator (nil when disabled);
	// owned by the loop goroutine like all other state, so Observe runs
	// lock-free on the request path.
	sampler *mrclive.Sampler
	// keys interns tenant-scoped keys to page ids (one table per tenant).
	// Shard s assigns ids from the residue class {s, s+n, s+2n, ...}
	// (nextPage starts at s, steps by n), so page ownership is recoverable
	// as page mod n at replay time.
	keys     []keyTable
	nextPage trace.PageID
	pages    int
	// cache maps resident pages to their owning tenant, exactly like the
	// simulator's map engine.
	cache map[trace.PageID]trace.Tenant
	// log holds the entries of the active WAL segment only (the whole
	// history without a WAL); logStart is the logical index of the first
	// held entry, and steps = logStart + log.len() is the total logical
	// entry count — also the policy step counter.
	log      entryLog
	logStart int
	steps    int
	// lastSeq is the newest global sequence number this shard admitted;
	// lastQuotaSeq the newest quota-control entry's (for quota reconcile
	// after recovery). quotasNow is the global quota vector as of this
	// shard's log position (partition mode).
	lastSeq      int64
	lastQuotaSeq int64
	quotasNow    []int
	// lastCkpt is the steps value at the last checkpoint attempt.
	lastCkpt int
	// reqs counts admitted requests (log entries minus quota controls).
	reqs      int64
	hits      []int64
	misses    []int64
	evictions []int64
	failed    error
	// panicErr records the most recent engine panic; cur the in-flight
	// message (loop-goroutine-owned, read by the recover handler on the
	// same goroutine).
	panicErr error
	cur      *inflight

	mReqs, mHits, mMisses, mEvictions *obs.Counter
	mOccupancy, mLog, mMailbox        *obs.Gauge
	// pub* are the counter values already published to the registry; the
	// metrics are brought up to date by delta at batch boundaries instead of
	// per request, keeping atomics off the request path. Rebuild and
	// recovery replay reproduce the counters bit-exactly, so the deltas stay
	// correct across both.
	pubReqs, pubHits, pubMisses, pubEvictions int64
}

func newShard(svc *Service, id, k int) *shard {
	lbl := fmt.Sprintf(`{shard="%d"}`, id)
	sh := &shard{
		svc:       svc,
		id:        id,
		k:         k,
		in:        make(chan shardMsg, svc.cfg.MailboxDepth),
		keys:      make([]keyTable, svc.cfg.Tenants),
		nextPage:  trace.PageID(id),
		hits:      make([]int64, svc.cfg.Tenants),
		misses:    make([]int64, svc.cfg.Tenants),
		evictions: make([]int64, svc.cfg.Tenants),

		mReqs:      svc.reg.Counter("cached_requests_total" + lbl),
		mHits:      svc.reg.Counter("cached_hits_total" + lbl),
		mMisses:    svc.reg.Counter("cached_misses_total" + lbl),
		mEvictions: svc.reg.Counter("cached_evictions_total" + lbl),
		mOccupancy: svc.reg.Gauge("cached_occupancy_pages" + lbl),
		mLog:       svc.reg.Gauge("cached_log_entries" + lbl),
		mMailbox:   svc.reg.Gauge("cached_shard_mailbox_depth" + lbl),
	}
	if svc.cfg.Quotas != nil {
		sh.qlru = newQuotaLRU(localQuotas(svc.cfg.Quotas, svc.cfg.Shards, id), svc.cfg.Shards, id)
		sh.quotasNow = append([]int(nil), svc.cfg.Quotas...)
	} else {
		sh.policy = svc.cfg.NewPolicy()
		sh.open = svc.openCore(sh.policy, k, id)
		if sh.open == nil {
			sh.cache = make(map[trace.PageID]trace.Tenant, k)
		}
	}
	if svc.cfg.MRC != nil {
		mc := *svc.cfg.MRC
		mc.Tenants = svc.cfg.Tenants
		mc.Scale = svc.cfg.Shards
		// Config was validated in New; a fresh sampler cannot fail here.
		sh.sampler, _ = mrclive.NewSampler(mc)
	}
	if svc.walCfg != nil {
		sh.wal = newShardWAL(svc.walCfg, id, svc.cfg.Shards)
	}
	return sh
}

// openCore builds the dense shard core for classic mode: the same denseCore
// the replay engine runs, over this shard's residue-class page ids. Returns
// nil when the configuration opts out (Config.MapStep), the policy carries
// no dense core (only core.Fast does), or the shard's capacity share is
// zero — the map-mode step serves those cases instead.
func (svc *Service) openCore(p sim.Policy, k, id int) *core.Open {
	if svc.cfg.MapStep {
		return nil
	}
	f, ok := p.(*core.Fast)
	if !ok {
		return nil
	}
	o, err := f.OpenWorld(svc.cfg.Tenants, k, svc.cfg.Shards, id)
	if err != nil {
		return nil
	}
	return o
}

// localQuotas derives shard id's slice of a global per-tenant quota vector:
// tenant t gets sim.ShardShare(q[t], n, id) pages, so summing local quotas
// over all shards reproduces each global quota (and therefore K) exactly —
// the same split rule the shard capacities themselves use.
func localQuotas(global []int, n, id int) []int {
	local := make([]int, len(global))
	for t, q := range global {
		local[t] = sim.ShardShare(q, n, id)
	}
	return local
}

// loop is the shard's goroutine: serve the mailbox until Close closes it,
// and on an engine panic isolate the failure — mark the shard down, rebuild
// it from its own durable history while the other shards keep serving, then
// resume. A clean shutdown seals the WAL (final flush + checkpoint); a
// simulated kill -9 (Service.Crash) skips that on purpose.
func (sh *shard) loop() {
	defer sh.svc.wg.Done()
	for {
		if sh.serve() {
			if sh.wal != nil {
				if sh.failed == nil && !sh.svc.crashed.Load() {
					sh.sealWAL()
				} else if sh.wal.f != nil {
					// Crashed or failed: drop the handle without flushing —
					// buffered frames are lost exactly as a killed process
					// would lose them.
					sh.wal.f.Close()
				}
			}
			return
		}
		sh.svc.mShardDown.Inc()
		sh.rebuild()
		if sh.failed == nil {
			sh.svc.mShardRestarts.Inc()
		}
		sh.down.Store(false)
	}
}

// serve drains the mailbox; returns true when the mailbox closed (shutdown)
// and false when a panic escaped the engine (the caller rebuilds).
func (sh *shard) serve() (closed bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.panicErr = fmt.Errorf("cached: shard %d panicked: %v", sh.id, r)
			sh.down.Store(true)
			sh.abortInflight()
		}
	}()
	for m := range sh.in {
		sh.handle(m)
	}
	return true
}

// abortInflight answers the message interrupted by a panic: remaining batch
// slots are shed, waiting callers released. Runs on the loop goroutine
// inside the recover handler.
func (sh *shard) abortInflight() {
	cur := sh.cur
	sh.cur = nil
	if cur == nil {
		return
	}
	if cur.snap != nil {
		t := sh.svc.cfg.Tenants
		cur.snap <- &ShardSnapshot{
			Shard: sh.id, K: sh.k, Down: true, Err: sh.panicErr,
			Hits: make([]int64, t), Misses: make([]int64, t), Evictions: make([]int64, t),
		}
		return
	}
	for _, ix := range cur.idxs[cur.pos:] {
		if cur.results[ix] == 0 {
			cur.results[ix] = ResultShed
		}
	}
	if cur.wg != nil {
		cur.wg.Done()
	}
}

// handle serves one mailbox message. After a Service.Crash every queued
// batch is shed instead of applied — the process is pretending to be dead.
func (sh *shard) handle(m shardMsg) {
	if m.snap != nil {
		sh.cur = &inflight{snap: m.snap}
		m.snap <- sh.snapshot(m.withLog, m.withMRC)
		sh.cur = nil
		return
	}
	if m.quotas != nil {
		sh.cur = &inflight{wg: m.quotasDone}
		if !sh.svc.crashed.Load() {
			sh.applyQuotas(m.quotas)
			sh.afterBatch(nil)
			sh.publishMetrics()
		}
		sh.cur = nil
		m.quotasDone.Done()
		return
	}
	cur := &inflight{idxs: m.idxs, results: m.results, wg: m.done}
	sh.cur = cur
	if sh.svc.crashed.Load() {
		// The process is pretending to be dead: shed the whole batch. The
		// check is per batch, not per request — Crash lands between batches
		// from any serving goroutine's perspective.
		for _, ix := range m.idxs {
			m.results[ix] = ResultShed
		}
	} else {
		// One atomic draw reserves the whole batch's sequence numbers: this
		// single-writer loop applies the batch in order, so consecutive seqs
		// preserve the per-shard monotonicity the log merge relies on, and
		// the lock-prefixed add leaves the per-request path. Seqs reserved
		// for requests a mid-batch shard failure rejects are never logged;
		// the merge only needs strict increase, not contiguity.
		seq := sh.svc.seq.Add(int64(len(m.idxs))) - int64(len(m.idxs))
		for i, ix := range m.idxs {
			cur.pos = i
			seq++
			m.results[ix] = sh.apply(&m.reqs[ix], seq)
		}
	}
	cur.pos = len(m.idxs)
	if !sh.svc.crashed.Load() {
		sh.afterBatch(cur)
		sh.publishMetrics()
	}
	sh.cur = nil
	m.done.Done()
}

// appendRequest admits one request entry: in-memory log, WAL buffer (group
// commit — flushed in afterBatch), sequence bookkeeping. The scalar
// signature keeps a LogEntry (and its nil Quotas slice) off the hot path.
func (sh *shard) appendRequest(seq int64, page trace.PageID, t trace.Tenant, newKey []byte) {
	sh.log.appendReq(seq, page, t)
	sh.steps++
	sh.lastSeq = seq
	if sh.wal != nil {
		sh.wal.appendRequest(seq, page, t, newKey)
	}
}

// appendQuotaEntry admits one quota-control entry (partition mode).
func (sh *shard) appendQuotaEntry(seq int64, quotas []int) {
	sh.log.appendQuotas(seq, quotas)
	sh.steps++
	sh.lastSeq = seq
	sh.lastQuotaSeq = seq
	if sh.wal != nil {
		sh.wal.appendQuotas(seq, quotas)
	}
}

// afterBatch runs the durability work riding each mailbox batch: group
// commit (one write + fsync per policy), segment rotation (which bounds the
// in-memory log to the active segment) and periodic checkpoints. A WAL
// write failure fails the shard — the batch cannot be acknowledged as
// applied when its entries may not survive a restart.
func (sh *shard) afterBatch(cur *inflight) {
	if sh.wal == nil || sh.failed != nil {
		return
	}
	if err := sh.wal.flush(time.Now()); err != nil {
		sh.walFail(err, cur)
		return
	}
	if sh.wal.shouldRotate() {
		if err := sh.wal.rotate(sh.steps); err != nil {
			sh.walFail(err, cur)
			return
		}
		sh.logStart = sh.steps
		sh.log.reset()
	}
	if sh.wal.ckptEvery > 0 && sh.steps-sh.lastCkpt >= sh.wal.ckptEvery {
		// Advance lastCkpt even on failure so a broken disk is not hammered
		// every batch; the WAL still holds everything a checkpoint would.
		sh.lastCkpt = sh.steps
		if err := sh.writeCheckpoint(); err != nil {
			sh.svc.mWALErrors.Inc()
		}
	}
}

// walFail marks the shard failed and retracts the current batch's results:
// the entries were applied in memory but are not durable, so acknowledging
// them would break the recovery contract.
func (sh *shard) walFail(err error, cur *inflight) {
	sh.failed = fmt.Errorf("cached: shard %d wal: %w", sh.id, err)
	sh.svc.mWALErrors.Inc()
	if cur != nil {
		for _, ix := range cur.idxs {
			cur.results[ix] = ResultError
		}
	}
}

// sealWAL is the clean-shutdown path: final checkpoint (if the engine is
// checkpointable) plus flush/sync/close, so the next start recovers
// instantly and bit-exactly.
func (sh *shard) sealWAL() {
	if sh.wal.ckptEvery > 0 && sh.steps > sh.lastCkpt {
		if err := sh.writeCheckpoint(); err != nil {
			sh.svc.mWALErrors.Inc()
		}
	}
	if err := sh.wal.closeSync(); err != nil {
		sh.svc.mWALErrors.Inc()
	}
}

// applyQuotas installs a new global quota vector (partition mode): the
// change is logged as a control entry at this shard's next sequence number,
// then the shard-local quotas are derived and applied, trimming shrinking
// tenants' LRU tails. Because the entry sits in the log at the exact step
// the live engine switched quotas, the offline replay switches at the same
// step and stays bit-identical.
func (sh *shard) applyQuotas(global []int) {
	if sh.qlru == nil || sh.failed != nil {
		return
	}
	seq := sh.svc.seq.Add(1)
	sh.appendQuotaEntry(seq, append([]int(nil), global...))
	sh.stepQuotas(global)
}

// stepQuotas is the engine side of a quota switch, shared verbatim by the
// live path and recovery replay: derive local shares, trim, count.
func (sh *shard) stepQuotas(global []int) int {
	total := 0
	for t, n := range sh.qlru.SetQuotas(localQuotas(global, sh.svc.cfg.Shards, sh.id)) {
		if n > 0 {
			sh.evictions[t] += int64(n)
			total += n
		}
	}
	sh.quotasNow = append(sh.quotasNow[:0], global...)
	return total
}

// apply runs one live request through the shard: key interning, log + WAL
// append under the batch-reserved sequence number seq, then the engine step.
// Metrics are deliberately absent — publishMetrics reconciles the registry
// from the shard counters at batch boundaries, keeping atomics off the
// request path.
func (sh *shard) apply(r *Request, seq int64) byte {
	if sh.failed != nil {
		return ResultError
	}
	kt := &sh.keys[r.Tenant]
	h, pre := hashKey(r.Key)
	page, seen := kt.lookup(h, pre, r.Key)
	var newKey []byte
	if !seen {
		page = sh.nextPage
		sh.nextPage += trace.PageID(len(sh.svc.shards))
		sh.pages++
		kt.insert(h, pre, r.Key, page)
		newKey = r.Key
	}
	sh.appendRequest(seq, page, r.Tenant, newKey)
	if sh.sampler != nil {
		sh.sampler.Observe(r.Tenant, page)
	}
	res, _ := sh.stepRequest(page, r.Tenant)
	return res
}

// stepRequest is the engine step for the already-logged request at logical
// index steps-1 — sim.runMap's step verbatim. It is the single function
// both the live path and recovery/rebuild replay run, which is what makes
// recovered state provably bit-identical. Returns the result byte and the
// eviction count (0 or 1).
func (sh *shard) stepRequest(page trace.PageID, t trace.Tenant) (byte, int) {
	sh.reqs++
	if sh.open != nil {
		// Dense shard core: the replay engine's denseCore stepped one
		// request at a time over the interner's residue-class ids. An error
		// here (out-of-class page, owner flip) is interner corruption; the
		// shard fails rather than serving requests it cannot replay.
		hit, vo, err := sh.open.Access(page, t)
		if err != nil {
			sh.failed = fmt.Errorf("cached: shard %d: dense core: %w", sh.id, err)
			return ResultError, 0
		}
		if hit {
			sh.hits[t]++
			return ResultHit, 0
		}
		sh.misses[t]++
		if vo >= 0 {
			sh.evictions[vo]++
			return ResultMiss, 1
		}
		return ResultMiss, 0
	}
	if sh.qlru != nil {
		hit, evicted := sh.qlru.Access(t, page)
		if hit {
			sh.hits[t]++
			return ResultHit, 0
		}
		sh.misses[t]++
		if evicted {
			sh.evictions[t]++
			return ResultMiss, 1
		}
		return ResultMiss, 0
	}
	step := sh.steps - 1
	req := trace.Request{Page: page, Tenant: t}
	if _, resident := sh.cache[page]; resident {
		sh.hits[t]++
		sh.policy.OnHit(step, req)
		return ResultHit, 0
	}
	sh.misses[t]++
	if len(sh.cache) >= sh.k {
		victim := sh.policy.Victim(step, req)
		owner, resident := sh.cache[victim]
		if !resident {
			sh.failed = fmt.Errorf("cached: shard %d: policy %s evicted non-resident page %d at step %d",
				sh.id, sh.policy.Name(), victim, step)
			return ResultError, 0
		}
		delete(sh.cache, victim)
		sh.evictions[owner]++
		sh.policy.OnEvict(step, victim)
		sh.cache[page] = t
		sh.policy.OnInsert(step, req)
		return ResultMiss, 1
	}
	sh.cache[page] = t
	sh.policy.OnInsert(step, req)
	return ResultMiss, 0
}

// replayEntry re-applies one logged entry during recovery or rebuild. key,
// when non-nil, is the wire key carried by a first-appearance WAL record;
// entries replayed from memory pass nil (the key table survived). The
// engine mutations are exactly the live path's — same functions, same
// order.
func (sh *shard) replayEntry(e LogEntry, key []byte) error {
	if e.Quotas != nil {
		if sh.qlru == nil {
			return fmt.Errorf("cached: shard %d: quota control entry (seq %d) outside partition mode", sh.id, e.Seq)
		}
		sh.steps++
		sh.lastSeq = e.Seq
		sh.lastQuotaSeq = e.Seq
		sh.stepQuotas(e.Quotas)
		return nil
	}
	if key != nil {
		kt := &sh.keys[e.Tenant]
		h, pre := hashKey(key)
		if _, seen := kt.lookup(h, pre, key); !seen {
			kt.insert(h, pre, key, e.Page)
			sh.pages++
			if next := e.Page + trace.PageID(len(sh.svc.shards)); next > sh.nextPage {
				sh.nextPage = next
			}
		}
	}
	sh.steps++
	sh.lastSeq = e.Seq
	sh.stepRequest(e.Page, e.Tenant)
	return sh.failed
}

// resetEngine rebuilds a fresh engine and zeroes the replay-derived state
// (counters, step/sequence bookkeeping). Identity state — key table,
// nextPage, pages, logs — is left alone; rebuild relies on that.
func (sh *shard) resetEngine() {
	cfg := sh.svc.cfg
	if cfg.Quotas != nil {
		sh.qlru = newQuotaLRU(localQuotas(cfg.Quotas, cfg.Shards, sh.id), cfg.Shards, sh.id)
		sh.quotasNow = append(sh.quotasNow[:0], cfg.Quotas...)
	} else {
		sh.policy = cfg.NewPolicy()
		sh.open = sh.svc.openCore(sh.policy, sh.k, sh.id)
		if sh.open == nil {
			sh.cache = make(map[trace.PageID]trace.Tenant, sh.k)
		} else {
			sh.cache = nil
		}
	}
	sh.reqs = 0
	for t := range sh.hits {
		sh.hits[t], sh.misses[t], sh.evictions[t] = 0, 0, 0
	}
	sh.steps, sh.lastSeq, sh.lastQuotaSeq = 0, 0, 0
	sh.failed = nil
}

// rebuild restores the shard after an engine panic by replaying its own
// history — sealed WAL segments from disk plus the in-memory tail — through
// a fresh engine. The key table, page allocator and in-memory log survive
// panics intact (they are plain data mutated before any engine call), so
// only the engine and counters are rederived. A second panic during the
// replay is deterministic and marks the shard permanently failed.
func (sh *shard) rebuild() {
	defer func() {
		if r := recover(); r != nil {
			sh.failed = fmt.Errorf("cached: shard %d: repeated panic during rebuild: %v (first: %v)", sh.id, r, sh.panicErr)
		}
	}()
	tail := sh.log
	logStart := sh.logStart
	sh.resetEngine()
	if sh.wal != nil && logStart > 0 {
		if err := sh.replaySealed(); err != nil {
			sh.failed = fmt.Errorf("cached: shard %d: rebuild from wal after panic (%v): %w", sh.id, sh.panicErr, err)
			return
		}
		if sh.steps != logStart {
			sh.failed = fmt.Errorf("cached: shard %d: sealed wal replay produced %d entries, in-memory tail starts at %d", sh.id, sh.steps, logStart)
			return
		}
	}
	for i := 0; i < tail.len(); i++ {
		if err := sh.replayEntry(tail.at(i), nil); err != nil {
			sh.failed = err
			return
		}
	}
}

// replaySealed streams every sealed segment (index < active) through
// replayEntry. Sealed segments are immutable and were validated at write or
// recovery time, so corruption here is a hard error, never a truncation.
func (sh *shard) replaySealed() error {
	w := sh.wal
	for idx := 0; idx < w.segIndex; idx++ {
		rc, err := w.fs.Open(path.Join(w.dir, segName(idx)))
		if err != nil {
			return err
		}
		_, torn, serr := scanSegment(rc, func(rec walRecord) error {
			if rec.kind == recHeader {
				return nil
			}
			return sh.replayEntry(rec.entry, rec.key)
		})
		rc.Close()
		if serr != nil {
			return fmt.Errorf("sealed segment %d: %w", idx, serr)
		}
		if torn {
			return fmt.Errorf("sealed segment %d has a torn tail", idx)
		}
	}
	return nil
}

// occupancy is the active engine's resident page count.
func (sh *shard) occupancy() int {
	switch {
	case sh.qlru != nil:
		return sh.qlru.Occupancy()
	case sh.open != nil:
		return sh.open.Used()
	}
	return len(sh.cache)
}

// publishMetrics reconciles the obs registry with the shard's counters,
// adding only the delta since the last publication. Called at batch
// boundaries (including the empty batch after a quota change) and once
// after recovery replay, when the registry starts from zero and the delta
// is the whole recovered history. Panic rebuilds replay the log bit-exactly
// back to the pre-panic counters, so the baselines stay valid across them.
func (sh *shard) publishMetrics() {
	var h, m, e int64
	for t := range sh.hits {
		h += sh.hits[t]
		m += sh.misses[t]
		e += sh.evictions[t]
	}
	sh.mReqs.Add(sh.reqs - sh.pubReqs)
	sh.mHits.Add(h - sh.pubHits)
	sh.mMisses.Add(m - sh.pubMisses)
	sh.mEvictions.Add(e - sh.pubEvictions)
	sh.pubReqs, sh.pubHits, sh.pubMisses, sh.pubEvictions = sh.reqs, h, m, e
	sh.mOccupancy.Set(int64(sh.occupancy()))
	sh.mLog.Set(int64(sh.steps))
	sh.mMailbox.Set(int64(len(sh.in)))
}

// snapshot copies the shard's accounting. Called from the loop goroutine
// while serving, or from snapshotAll after the loop has exited.
func (sh *shard) snapshot(withLog, withMRC bool) *ShardSnapshot {
	snap := &ShardSnapshot{
		Shard:     sh.id,
		K:         sh.k,
		Requests:  sh.reqs,
		Occupancy: sh.occupancy(),
		LogStart:  sh.logStart,
		LogLen:    sh.log.len(),
		Pages:     sh.pages,
		Down:      sh.down.Load(),
		Hits:      append([]int64(nil), sh.hits...),
		Misses:    append([]int64(nil), sh.misses...),
		Evictions: append([]int64(nil), sh.evictions...),
		Err:       sh.failed,
	}
	if sh.wal != nil {
		snap.Seg = sh.wal.segIndex
	}
	if withLog {
		snap.Log = sh.log.entries()
	}
	if withMRC && sh.sampler != nil {
		snap.MRC = sh.sampler.Snapshot()
	}
	return snap
}
