package cached

import (
	"fmt"
	"sync"

	"convexcache/internal/mrclive"
	"convexcache/internal/obs"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// LogEntry is one admitted request in a shard's deterministic request log.
// Seq is the global admission order (strictly increasing within a shard);
// Page is the shard-assigned page id; Tenant the requesting tenant. The op
// is deliberately absent — GET and PUT are both write-allocate, so residency
// evolution and therefore replay depend only on (page, tenant) order.
//
// Entries with a non-nil Quotas are control entries (partition mode only):
// they record the installation of a new global quota vector at this shard's
// sequence position, so the per-shard replay re-applies quota changes at
// exactly the step the live engine did. Control entries carry no page.
type LogEntry struct {
	Seq    int64
	Page   trace.PageID
	Tenant trace.Tenant
	Quotas []int
}

// shardReq is one request after ingress validation, routed to its shard.
type shardReq struct {
	idx    int
	op     Op
	tenant trace.Tenant
	key    []byte
}

// shardMsg is a mailbox message: a batch to apply (batch/results/done set),
// a snapshot request (snap set), or a quota-change control message (quotas
// set, partition mode only).
type shardMsg struct {
	batch   []shardReq
	results []byte
	done    *sync.WaitGroup

	snap    chan *ShardSnapshot
	withLog bool
	withMRC bool

	quotas     []int
	quotasDone *sync.WaitGroup
}

// ShardSnapshot is a consistent copy of one shard's accounting, taken on a
// batch boundary.
type ShardSnapshot struct {
	Shard     int
	K         int
	Requests  int64
	Occupancy int
	LogLen    int
	Pages     int
	// Hits/Misses/Evictions are per-tenant, length Config.Tenants.
	Hits      []int64
	Misses    []int64
	Evictions []int64
	// Log is the shard's request log; nil unless requested.
	Log []LogEntry
	// MRC is the shard sampler's window accounting; nil unless requested
	// (or the service runs without an estimator).
	MRC []mrclive.TenantWindow
	// Err is the shard's failure state (policy contract violation), if any.
	Err error
}

// shard is one single-writer cache partition. All fields below the mailbox
// are owned exclusively by the loop goroutine — no locks anywhere on the
// request path. The engine step mirrors sim.runMap exactly (hit → OnHit;
// miss → optional Victim/OnEvict → OnInsert), so per-shard live counters are
// bit-identical to a per-shard offline replay of the same log.
type shard struct {
	svc *Service
	id  int
	k   int
	in  chan shardMsg

	// Exactly one engine is active: policy (classic mode) or qlru
	// (partition mode, adaptive per-tenant quotas).
	policy sim.Policy
	qlru   *quotaLRU
	// sampler is the shard's streaming MRC estimator (nil when disabled);
	// owned by the loop goroutine like all other state, so Observe runs
	// lock-free on the request path.
	sampler *mrclive.Sampler
	// keys maps tenant-scoped keys to page ids. Shard s assigns ids from
	// the residue class {s, s+n, s+2n, ...} (nextPage starts at s, steps by
	// n), so page ownership is recoverable as page mod n at replay time.
	keys     []map[string]trace.PageID
	nextPage trace.PageID
	pages    int
	// cache maps resident pages to their owning tenant, exactly like the
	// simulator's map engine.
	cache map[trace.PageID]trace.Tenant
	log   []LogEntry
	// reqs counts admitted requests (log entries minus quota controls).
	reqs      int64
	hits      []int64
	misses    []int64
	evictions []int64
	failed    error

	mReqs, mHits, mMisses, mEvictions *obs.Counter
	mOccupancy, mLog                  *obs.Gauge
}

func newShard(svc *Service, id, k int) *shard {
	lbl := fmt.Sprintf(`{shard="%d"}`, id)
	sh := &shard{
		svc:       svc,
		id:        id,
		k:         k,
		in:        make(chan shardMsg, svc.cfg.MailboxDepth),
		keys:      make([]map[string]trace.PageID, svc.cfg.Tenants),
		nextPage:  trace.PageID(id),
		cache:     make(map[trace.PageID]trace.Tenant, k),
		hits:      make([]int64, svc.cfg.Tenants),
		misses:    make([]int64, svc.cfg.Tenants),
		evictions: make([]int64, svc.cfg.Tenants),

		mReqs:      svc.reg.Counter("cached_requests_total" + lbl),
		mHits:      svc.reg.Counter("cached_hits_total" + lbl),
		mMisses:    svc.reg.Counter("cached_misses_total" + lbl),
		mEvictions: svc.reg.Counter("cached_evictions_total" + lbl),
		mOccupancy: svc.reg.Gauge("cached_occupancy_pages" + lbl),
		mLog:       svc.reg.Gauge("cached_log_entries" + lbl),
	}
	for t := range sh.keys {
		sh.keys[t] = make(map[string]trace.PageID)
	}
	if svc.cfg.Quotas != nil {
		sh.qlru = newQuotaLRU(localQuotas(svc.cfg.Quotas, svc.cfg.Shards, id))
	} else {
		sh.policy = svc.cfg.NewPolicy()
	}
	if svc.cfg.MRC != nil {
		mc := *svc.cfg.MRC
		mc.Tenants = svc.cfg.Tenants
		mc.Scale = svc.cfg.Shards
		// Config was validated in New; a fresh sampler cannot fail here.
		sh.sampler, _ = mrclive.NewSampler(mc)
	}
	return sh
}

// localQuotas derives shard id's slice of a global per-tenant quota vector:
// tenant t gets sim.ShardShare(q[t], n, id) pages, so summing local quotas
// over all shards reproduces each global quota (and therefore K) exactly —
// the same split rule the shard capacities themselves use.
func localQuotas(global []int, n, id int) []int {
	local := make([]int, len(global))
	for t, q := range global {
		local[t] = sim.ShardShare(q, n, id)
	}
	return local
}

// loop is the shard's single-writer goroutine: it drains the mailbox until
// Close closes it, applying batches in arrival order and answering snapshot
// requests between batches.
func (sh *shard) loop() {
	defer sh.svc.wg.Done()
	for m := range sh.in {
		if m.snap != nil {
			m.snap <- sh.snapshot(m.withLog, m.withMRC)
			continue
		}
		if m.quotas != nil {
			sh.applyQuotas(m.quotas)
			m.quotasDone.Done()
			continue
		}
		for _, r := range m.batch {
			m.results[r.idx] = sh.apply(r)
		}
		m.done.Done()
	}
}

// applyQuotas installs a new global quota vector (partition mode): the
// change is logged as a control entry at this shard's next sequence number,
// then the shard-local quotas are derived and applied, trimming shrinking
// tenants' LRU tails. Because the entry sits in the log at the exact step
// the live engine switched quotas, the offline replay switches at the same
// step and stays bit-identical.
func (sh *shard) applyQuotas(global []int) {
	if sh.qlru == nil || sh.failed != nil {
		return
	}
	seq := sh.svc.seq.Add(1)
	sh.log = append(sh.log, LogEntry{Seq: seq, Page: -1, Tenant: -1, Quotas: append([]int(nil), global...)})
	sh.mLog.Set(int64(len(sh.log)))
	for t, n := range sh.qlru.SetQuotas(localQuotas(global, sh.svc.cfg.Shards, sh.id)) {
		if n > 0 {
			sh.evictions[t] += int64(n)
			sh.mEvictions.Add(int64(n))
		}
	}
	sh.mOccupancy.Set(int64(sh.qlru.Occupancy()))
}

// apply runs one request through the shard engine. The body after the log
// append is sim.runMap's step verbatim: that equivalence is what makes the
// live counters replayable.
func (sh *shard) apply(r shardReq) byte {
	if sh.failed != nil {
		return ResultError
	}
	km := sh.keys[r.tenant]
	page, seen := km[string(r.key)]
	if !seen {
		page = sh.nextPage
		sh.nextPage += trace.PageID(len(sh.svc.shards))
		sh.pages++
		km[string(r.key)] = page
	}
	seq := sh.svc.seq.Add(1)
	sh.log = append(sh.log, LogEntry{Seq: seq, Page: page, Tenant: r.tenant})
	sh.mLog.Set(int64(len(sh.log)))
	sh.reqs++
	sh.mReqs.Inc()
	if sh.sampler != nil {
		sh.sampler.Observe(r.tenant, page)
	}
	if sh.qlru != nil {
		return sh.applyQuota(r.tenant, page)
	}
	step := len(sh.log) - 1
	req := trace.Request{Page: page, Tenant: r.tenant}

	if _, resident := sh.cache[page]; resident {
		sh.hits[r.tenant]++
		sh.mHits.Inc()
		sh.policy.OnHit(step, req)
		return ResultHit
	}
	sh.misses[r.tenant]++
	sh.mMisses.Inc()
	if len(sh.cache) >= sh.k {
		victim := sh.policy.Victim(step, req)
		owner, resident := sh.cache[victim]
		if !resident {
			sh.failed = fmt.Errorf("cached: shard %d: policy %s evicted non-resident page %d at step %d",
				sh.id, sh.policy.Name(), victim, step)
			return ResultError
		}
		delete(sh.cache, victim)
		sh.evictions[owner]++
		sh.mEvictions.Inc()
		sh.policy.OnEvict(step, victim)
	}
	sh.cache[page] = r.tenant
	sh.policy.OnInsert(step, req)
	sh.mOccupancy.Set(int64(len(sh.cache)))
	return ResultMiss
}

// applyQuota is the partition-mode engine step: the deterministic quotaLRU
// serves the access, and the counters mirror the classic path (evictions
// are always of the requesting tenant's own pages).
func (sh *shard) applyQuota(t trace.Tenant, page trace.PageID) byte {
	hit, evicted := sh.qlru.Access(t, page)
	if hit {
		sh.hits[t]++
		sh.mHits.Inc()
		return ResultHit
	}
	sh.misses[t]++
	sh.mMisses.Inc()
	if evicted {
		sh.evictions[t]++
		sh.mEvictions.Inc()
	}
	sh.mOccupancy.Set(int64(sh.qlru.Occupancy()))
	return ResultMiss
}

// snapshot copies the shard's accounting. Called from the loop goroutine
// while serving, or from snapshotAll after the loop has exited.
func (sh *shard) snapshot(withLog, withMRC bool) *ShardSnapshot {
	snap := &ShardSnapshot{
		Shard:     sh.id,
		K:         sh.k,
		Requests:  sh.reqs,
		Occupancy: len(sh.cache),
		LogLen:    len(sh.log),
		Pages:     sh.pages,
		Hits:      append([]int64(nil), sh.hits...),
		Misses:    append([]int64(nil), sh.misses...),
		Evictions: append([]int64(nil), sh.evictions...),
		Err:       sh.failed,
	}
	if sh.qlru != nil {
		snap.Occupancy = sh.qlru.Occupancy()
	}
	if withLog {
		snap.Log = append([]LogEntry(nil), sh.log...)
	}
	if withMRC && sh.sampler != nil {
		snap.MRC = sh.sampler.Snapshot()
	}
	return snap
}
