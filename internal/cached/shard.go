package cached

import (
	"fmt"
	"sync"

	"convexcache/internal/obs"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// LogEntry is one admitted request in a shard's deterministic request log.
// Seq is the global admission order (strictly increasing within a shard);
// Page is the shard-assigned page id; Tenant the requesting tenant. The op
// is deliberately absent — GET and PUT are both write-allocate, so residency
// evolution and therefore replay depend only on (page, tenant) order.
type LogEntry struct {
	Seq    int64
	Page   trace.PageID
	Tenant trace.Tenant
}

// shardReq is one request after ingress validation, routed to its shard.
type shardReq struct {
	idx    int
	op     Op
	tenant trace.Tenant
	key    []byte
}

// shardMsg is a mailbox message: either a batch to apply (batch/results/done
// set) or a snapshot request (snap set).
type shardMsg struct {
	batch   []shardReq
	results []byte
	done    *sync.WaitGroup

	snap    chan *ShardSnapshot
	withLog bool
}

// ShardSnapshot is a consistent copy of one shard's accounting, taken on a
// batch boundary.
type ShardSnapshot struct {
	Shard     int
	K         int
	Requests  int64
	Occupancy int
	LogLen    int
	Pages     int
	// Hits/Misses/Evictions are per-tenant, length Config.Tenants.
	Hits      []int64
	Misses    []int64
	Evictions []int64
	// Log is the shard's request log; nil unless requested.
	Log []LogEntry
	// Err is the shard's failure state (policy contract violation), if any.
	Err error
}

// shard is one single-writer cache partition. All fields below the mailbox
// are owned exclusively by the loop goroutine — no locks anywhere on the
// request path. The engine step mirrors sim.runMap exactly (hit → OnHit;
// miss → optional Victim/OnEvict → OnInsert), so per-shard live counters are
// bit-identical to a per-shard offline replay of the same log.
type shard struct {
	svc *Service
	id  int
	k   int
	in  chan shardMsg

	policy sim.Policy
	// keys maps tenant-scoped keys to page ids. Shard s assigns ids from
	// the residue class {s, s+n, s+2n, ...} (nextPage starts at s, steps by
	// n), so page ownership is recoverable as page mod n at replay time.
	keys     []map[string]trace.PageID
	nextPage trace.PageID
	pages    int
	// cache maps resident pages to their owning tenant, exactly like the
	// simulator's map engine.
	cache     map[trace.PageID]trace.Tenant
	log       []LogEntry
	hits      []int64
	misses    []int64
	evictions []int64
	failed    error

	mReqs, mHits, mMisses, mEvictions *obs.Counter
	mOccupancy, mLog                  *obs.Gauge
}

func newShard(svc *Service, id, k int) *shard {
	lbl := fmt.Sprintf(`{shard="%d"}`, id)
	sh := &shard{
		svc:       svc,
		id:        id,
		k:         k,
		in:        make(chan shardMsg, svc.cfg.MailboxDepth),
		policy:    svc.cfg.NewPolicy(),
		keys:      make([]map[string]trace.PageID, svc.cfg.Tenants),
		nextPage:  trace.PageID(id),
		cache:     make(map[trace.PageID]trace.Tenant, k),
		hits:      make([]int64, svc.cfg.Tenants),
		misses:    make([]int64, svc.cfg.Tenants),
		evictions: make([]int64, svc.cfg.Tenants),

		mReqs:      svc.reg.Counter("cached_requests_total" + lbl),
		mHits:      svc.reg.Counter("cached_hits_total" + lbl),
		mMisses:    svc.reg.Counter("cached_misses_total" + lbl),
		mEvictions: svc.reg.Counter("cached_evictions_total" + lbl),
		mOccupancy: svc.reg.Gauge("cached_occupancy_pages" + lbl),
		mLog:       svc.reg.Gauge("cached_log_entries" + lbl),
	}
	for t := range sh.keys {
		sh.keys[t] = make(map[string]trace.PageID)
	}
	return sh
}

// loop is the shard's single-writer goroutine: it drains the mailbox until
// Close closes it, applying batches in arrival order and answering snapshot
// requests between batches.
func (sh *shard) loop() {
	defer sh.svc.wg.Done()
	for m := range sh.in {
		if m.snap != nil {
			m.snap <- sh.snapshot(m.withLog)
			continue
		}
		for _, r := range m.batch {
			m.results[r.idx] = sh.apply(r)
		}
		m.done.Done()
	}
}

// apply runs one request through the shard engine. The body after the log
// append is sim.runMap's step verbatim: that equivalence is what makes the
// live counters replayable.
func (sh *shard) apply(r shardReq) byte {
	if sh.failed != nil {
		return ResultError
	}
	km := sh.keys[r.tenant]
	page, seen := km[string(r.key)]
	if !seen {
		page = sh.nextPage
		sh.nextPage += trace.PageID(len(sh.svc.shards))
		sh.pages++
		km[string(r.key)] = page
	}
	seq := sh.svc.seq.Add(1)
	sh.log = append(sh.log, LogEntry{Seq: seq, Page: page, Tenant: r.tenant})
	sh.mLog.Set(int64(len(sh.log)))
	sh.mReqs.Inc()
	step := len(sh.log) - 1
	req := trace.Request{Page: page, Tenant: r.tenant}

	if _, resident := sh.cache[page]; resident {
		sh.hits[r.tenant]++
		sh.mHits.Inc()
		sh.policy.OnHit(step, req)
		return ResultHit
	}
	sh.misses[r.tenant]++
	sh.mMisses.Inc()
	if len(sh.cache) >= sh.k {
		victim := sh.policy.Victim(step, req)
		owner, resident := sh.cache[victim]
		if !resident {
			sh.failed = fmt.Errorf("cached: shard %d: policy %s evicted non-resident page %d at step %d",
				sh.id, sh.policy.Name(), victim, step)
			return ResultError
		}
		delete(sh.cache, victim)
		sh.evictions[owner]++
		sh.mEvictions.Inc()
		sh.policy.OnEvict(step, victim)
	}
	sh.cache[page] = r.tenant
	sh.policy.OnInsert(step, req)
	sh.mOccupancy.Set(int64(len(sh.cache)))
	return ResultMiss
}

// snapshot copies the shard's accounting. Called from the loop goroutine
// while serving, or from snapshotAll after the loop has exited.
func (sh *shard) snapshot(withLog bool) *ShardSnapshot {
	snap := &ShardSnapshot{
		Shard:     sh.id,
		K:         sh.k,
		Requests:  int64(len(sh.log)),
		Occupancy: len(sh.cache),
		LogLen:    len(sh.log),
		Pages:     sh.pages,
		Hits:      append([]int64(nil), sh.hits...),
		Misses:    append([]int64(nil), sh.misses...),
		Evictions: append([]int64(nil), sh.evictions...),
		Err:       sh.failed,
	}
	if withLog {
		snap.Log = append([]LogEntry(nil), sh.log...)
	}
	return snap
}
