package cached

import (
	"bytes"
	"testing"
)

// FuzzCachedRequest fuzzes the wire request parser. Properties:
//
//   - no panic on any input (the parser faces the network);
//   - an accepted line round-trips byte-identically through FormatRequest
//     (the grammar is canonical), and re-parses to the same request;
//   - every accepted request satisfies the documented invariants (known op,
//     tenant in range, key length and charset bounds).
func FuzzCachedRequest(f *testing.F) {
	seeds := [][]byte{
		[]byte("GET 0 key"),
		[]byte("PUT 1 t1-key-42"),
		[]byte("GET 7 a"),
		[]byte("PUT 0 " + string(bytes.Repeat([]byte("x"), MaxKeyLen))),
		[]byte("GET 12345678 deep-tenant"),
		[]byte("get 0 lowercase-op"),
		[]byte("GET  0 double-space"),
		[]byte("GET 0"),
		[]byte("GET 01 leading-zero"),
		[]byte("GET -1 negative"),
		[]byte("PUT 0 key with space"),
		[]byte("PUT 0 bad\x7fbyte"),
		[]byte("DEL 0 unknown-op"),
		[]byte(""),
		[]byte("GET 999999999999 overflow"),
	}
	for _, s := range seeds {
		f.Add(s, 8)
	}
	f.Fuzz(func(t *testing.T, line []byte, tenants int) {
		r, err := ParseRequest(line, tenants)
		if err != nil {
			return
		}
		if r.Op != OpGet && r.Op != OpPut {
			t.Fatalf("accepted unknown op %q from %q", r.Op, line)
		}
		if tenants > 0 && (r.Tenant < 0 || int(r.Tenant) >= tenants) {
			t.Fatalf("accepted out-of-range tenant %d from %q (tenants=%d)", r.Tenant, line, tenants)
		}
		if r.Tenant < 0 {
			t.Fatalf("accepted negative tenant %d from %q", r.Tenant, line)
		}
		if len(r.Key) == 0 || len(r.Key) > MaxKeyLen {
			t.Fatalf("accepted key of length %d from %q", len(r.Key), line)
		}
		for _, c := range r.Key {
			if c < 0x21 || c > 0x7e {
				t.Fatalf("accepted key byte %#02x from %q", c, line)
			}
		}
		// Canonical round-trip: format, strip the newline, byte-compare.
		wire := FormatRequest(nil, r)
		if !bytes.Equal(wire[:len(wire)-1], line) {
			t.Fatalf("round-trip mismatch: parsed %q, formatted %q", line, wire[:len(wire)-1])
		}
		r2, err := ParseRequest(wire[:len(wire)-1], tenants)
		if err != nil {
			t.Fatalf("re-parse of formatted %q failed: %v", wire, err)
		}
		if r2.Op != r.Op || r2.Tenant != r.Tenant || !bytes.Equal(r2.Key, r.Key) {
			t.Fatalf("re-parse mismatch: %+v vs %+v", r, r2)
		}
	})
}

// FuzzCachedBatch fuzzes the batch splitter around the line parser: no
// panic, every returned request is individually valid, and a batch of
// formatted requests always re-parses to the same sequence.
func FuzzCachedBatch(f *testing.F) {
	f.Add([]byte("GET 0 a\nPUT 1 b\n"), 4)
	f.Add([]byte("GET 0 a\r\nPUT 1 b\r\n"), 4)
	f.Add([]byte("\n\nGET 0 a\n\n"), 4)
	f.Add([]byte("GET 0 a\nbogus\n"), 4)
	f.Add([]byte("GET 0 trailing-no-newline"), 4)
	f.Fuzz(func(t *testing.T, body []byte, tenants int) {
		reqs, err := ParseBatch(body, tenants)
		if err != nil {
			return
		}
		var wire []byte
		for _, r := range reqs {
			wire = FormatRequest(wire, r)
		}
		again, err := ParseBatch(wire, tenants)
		if err != nil {
			t.Fatalf("re-parse of formatted batch failed: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("batch round-trip length: %d vs %d", len(again), len(reqs))
		}
		for i := range reqs {
			if again[i].Op != reqs[i].Op || again[i].Tenant != reqs[i].Tenant || !bytes.Equal(again[i].Key, reqs[i].Key) {
				t.Fatalf("batch round-trip mismatch at %d: %+v vs %+v", i, reqs[i], again[i])
			}
		}
	})
}
