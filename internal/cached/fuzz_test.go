package cached

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCachedRequest fuzzes the wire request parser. Properties:
//
//   - no panic on any input (the parser faces the network);
//   - an accepted line round-trips byte-identically through FormatRequest
//     (the grammar is canonical), and re-parses to the same request;
//   - every accepted request satisfies the documented invariants (known op,
//     tenant in range, key length and charset bounds).
func FuzzCachedRequest(f *testing.F) {
	seeds := [][]byte{
		[]byte("GET 0 key"),
		[]byte("PUT 1 t1-key-42"),
		[]byte("GET 7 a"),
		[]byte("PUT 0 " + string(bytes.Repeat([]byte("x"), MaxKeyLen))),
		[]byte("GET 12345678 deep-tenant"),
		[]byte("get 0 lowercase-op"),
		[]byte("GET  0 double-space"),
		[]byte("GET 0"),
		[]byte("GET 01 leading-zero"),
		[]byte("GET -1 negative"),
		[]byte("PUT 0 key with space"),
		[]byte("PUT 0 bad\x7fbyte"),
		[]byte("DEL 0 unknown-op"),
		[]byte(""),
		[]byte("GET 999999999999 overflow"),
	}
	for _, s := range seeds {
		f.Add(s, 8)
	}
	f.Fuzz(func(t *testing.T, line []byte, tenants int) {
		r, err := ParseRequest(line, tenants)
		if err != nil {
			return
		}
		if r.Op != OpGet && r.Op != OpPut {
			t.Fatalf("accepted unknown op %q from %q", r.Op, line)
		}
		if tenants > 0 && (r.Tenant < 0 || int(r.Tenant) >= tenants) {
			t.Fatalf("accepted out-of-range tenant %d from %q (tenants=%d)", r.Tenant, line, tenants)
		}
		if r.Tenant < 0 {
			t.Fatalf("accepted negative tenant %d from %q", r.Tenant, line)
		}
		if len(r.Key) == 0 || len(r.Key) > MaxKeyLen {
			t.Fatalf("accepted key of length %d from %q", len(r.Key), line)
		}
		for _, c := range r.Key {
			if c < 0x21 || c > 0x7e {
				t.Fatalf("accepted key byte %#02x from %q", c, line)
			}
		}
		// Canonical round-trip: format, strip the newline, byte-compare.
		wire := FormatRequest(nil, r)
		if !bytes.Equal(wire[:len(wire)-1], line) {
			t.Fatalf("round-trip mismatch: parsed %q, formatted %q", line, wire[:len(wire)-1])
		}
		r2, err := ParseRequest(wire[:len(wire)-1], tenants)
		if err != nil {
			t.Fatalf("re-parse of formatted %q failed: %v", wire, err)
		}
		if r2.Op != r.Op || r2.Tenant != r.Tenant || !bytes.Equal(r2.Key, r.Key) {
			t.Fatalf("re-parse mismatch: %+v vs %+v", r, r2)
		}
	})
}

// FuzzCachedBatch fuzzes the batch splitter around the line parser: no
// panic, every returned request is individually valid, and a batch of
// formatted requests always re-parses to the same sequence.
func FuzzCachedBatch(f *testing.F) {
	f.Add([]byte("GET 0 a\nPUT 1 b\n"), 4)
	f.Add([]byte("GET 0 a\r\nPUT 1 b\r\n"), 4)
	f.Add([]byte("\n\nGET 0 a\n\n"), 4)
	f.Add([]byte("GET 0 a\nbogus\n"), 4)
	f.Add([]byte("GET 0 trailing-no-newline"), 4)
	f.Fuzz(func(t *testing.T, body []byte, tenants int) {
		reqs, err := ParseBatch(body, tenants)
		if err != nil {
			return
		}
		var wire []byte
		for _, r := range reqs {
			wire = FormatRequest(wire, r)
		}
		again, err := ParseBatch(wire, tenants)
		if err != nil {
			t.Fatalf("re-parse of formatted batch failed: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("batch round-trip length: %d vs %d", len(again), len(reqs))
		}
		for i := range reqs {
			if again[i].Op != reqs[i].Op || again[i].Tenant != reqs[i].Tenant || !bytes.Equal(again[i].Key, reqs[i].Key) {
				t.Fatalf("batch round-trip mismatch at %d: %+v vs %+v", i, reqs[i], again[i])
			}
		}
	})
}

// walSeedSegment builds a structurally valid single-shard partition-mode
// segment for the recovery fuzzer's corpus.
func walSeedSegment() []byte {
	var buf []byte
	buf = appendFrame(buf, encodeHeader(0, 1, 0))
	buf = appendFrame(buf, encodeRequest(nil, 1, 0, 0, []byte("alpha")))
	buf = appendFrame(buf, encodeRequest(nil, 2, 1, 1, []byte("beta")))
	buf = appendFrame(buf, encodeQuotas(nil, 3, []int{3, 1}))
	buf = appendFrame(buf, encodeRequest(nil, 4, 0, 0, nil))
	buf = appendFrame(buf, encodeRequest(nil, 5, 2, 0, []byte("gamma")))
	return buf
}

// FuzzWALRecover feeds arbitrary bytes to startup recovery as shard 0's only
// WAL segment. The contract under corruption: recovery either fails loudly
// (New returns an error) or truncates to a valid prefix — and in the latter
// case the recovered service must be fully consistent: conserving counters,
// passing the live-vs-replay differential, and still serving traffic. It must
// never panic and never invent state.
func FuzzWALRecover(f *testing.F) {
	seed := walSeedSegment()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])        // torn tail
	f.Add(seed[:frameHeaderBytes-2]) // torn header frame
	f.Add([]byte{})                  // empty segment
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	corrupt := append([]byte(nil), seed...)
	corrupt[len(seed)/2] ^= 0x20
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		shardDir := filepath.Join(dir, "shard-000")
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shardDir, segName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		svc, err := New(Config{K: 4, Shards: 1, Tenants: 2, Quotas: []int{2, 2},
			WAL: &WALConfig{Dir: dir, Fsync: FsyncOff, CheckpointEvery: -1, Recover: true}})
		if err != nil {
			return // failed loudly; acceptable
		}
		defer svc.Close()
		st := svc.Stats()
		if st.Hits+st.Misses != st.Requests {
			t.Fatalf("recovered inconsistent counters: hits %d + misses %d != requests %d", st.Hits, st.Misses, st.Requests)
		}
		rep := svc.Recovery()
		if rep == nil || rep.Requests != st.Requests {
			t.Fatalf("recovery report %+v does not match stats %+v", rep, st)
		}
		vrep, err := svc.Verify(context.Background())
		if err != nil {
			t.Fatalf("verify after recovery: %v", err)
		}
		if !vrep.Clean {
			t.Fatalf("recovered state fails live-vs-replay: %v", vrep.Diffs)
		}
		// The service must still serve on top of the recovered state.
		if _, err := svc.Apply([]Request{{Op: OpGet, Tenant: 0, Key: []byte("post-recovery")}}); err != nil {
			t.Fatalf("apply after recovery: %v", err)
		}
	})
}
