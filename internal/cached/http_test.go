package cached

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"convexcache/internal/resilience"
)

func quietHTTP() HTTPConfig {
	return HTTPConfig{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

func doText(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHTTPCacheEndpoint(t *testing.T) {
	svc := newTestService(t, 8, 2, 2)
	h := svc.Handler(quietHTTP())

	rec := doText(t, h, "POST", "/v1/cache", "GET 0 alpha\nGET 1 beta\nGET 0 alpha\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp CacheResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Requests != 3 || resp.Hits != 1 || resp.Misses != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Results != "MMH" {
		t.Fatalf("results = %q", resp.Results)
	}

	// Bad grammar → 400 naming the line.
	rec = doText(t, h, "POST", "/v1/cache", "GET 0 ok\nBOGUS\n")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad line: status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "line 2") {
		t.Errorf("error does not name the line: %s", rec.Body.String())
	}
	// Out-of-range tenant → 400.
	rec = doText(t, h, "POST", "/v1/cache", "GET 9 key\n")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad tenant: status %d", rec.Code)
	}
	// Empty body → 400.
	rec = doText(t, h, "POST", "/v1/cache", "\n\n")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", rec.Code)
	}
}

func TestHTTPStatsAndVerify(t *testing.T) {
	svc := newTestService(t, 16, 4, 2)
	h := svc.Handler(quietHTTP())

	var wire []byte
	for _, r := range genRequests(9, 2, 100, 2000) {
		wire = FormatRequest(wire, r)
	}
	rec := doText(t, h, "POST", "/v1/cache", string(wire))
	if rec.Code != http.StatusOK {
		t.Fatalf("load: status %d: %s", rec.Code, rec.Body.String())
	}

	rec = doText(t, h, "GET", "/v1/cache/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2000 || len(st.Shards) != 4 {
		t.Fatalf("stats = %+v", st)
	}

	rec = doText(t, h, "POST", "/v1/cache/verify", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("verify: status %d: %s", rec.Code, rec.Body.String())
	}
	var rep VerifyReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || rep.Requests != 2000 || rep.Shards != 4 {
		t.Fatalf("report = %+v", rep)
	}

	// Per-shard metrics are exported.
	rec = doText(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	for _, want := range []string{`cached_requests_total{shard="0"}`, `cached_hits_total{shard="3"}`, `cached_occupancy_pages{shard="1"}`} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func TestHTTPDrainingReturns503(t *testing.T) {
	svc, err := New(Config{K: 4, Shards: 1, Tenants: 1, NewPolicy: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler(quietHTTP())
	svc.Close()
	rec := doText(t, h, "POST", "/v1/cache", "GET 0 key\n")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("body = %s", rec.Body.String())
	}
	// Verify still works on the frozen state.
	rec = doText(t, h, "POST", "/v1/cache/verify", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("verify after close: status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestHTTPRateLimit(t *testing.T) {
	svc := newTestService(t, 4, 1, 1)
	cfg := quietHTTP()
	cfg.RateLimit = resilience.RateLimiterConfig{RPS: 1, Burst: 2}
	h := svc.Handler(cfg)
	codes := map[int]int{}
	for i := 0; i < 10; i++ {
		rec := doText(t, h, "POST", "/v1/cache", "GET 0 key\n")
		codes[rec.Code]++
	}
	if codes[http.StatusTooManyRequests] == 0 {
		t.Errorf("no 429s under burst: %v", codes)
	}
	if codes[http.StatusOK] == 0 {
		t.Errorf("no requests admitted: %v", codes)
	}
}

func TestHTTPHealthz(t *testing.T) {
	svc := newTestService(t, 4, 1, 1)
	h := svc.Handler(quietHTTP())
	if rec := doText(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
}
