package cached

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"
	"time"

	"convexcache/internal/fault"
	"convexcache/internal/trace"
)

// This file is the durability layer of the live cache service: a per-shard
// write-ahead log carrying the exact LogEntry stream the shard admits
// (requests plus quota-control entries), in CRC32-framed records across
// size-rotated segment files. The WAL is written by the shard's single-writer
// loop with group commit — one buffered write (and at most one fsync) per
// mailbox batch — so the hot path stays lock-free. Because the shard step is
// a deterministic function of this stream, replaying the WAL through the
// verbatim step reconstructs the shard bit for bit; recover.go builds on
// that.
//
// On-disk layout, per shard, under <dir>/shard-<id>/:
//
//	wal-00000000.seg, wal-00000001.seg, ...   segment files
//	ckpt-000000000123.ck                      checkpoints (see recover.go)
//
// Segment format: a stream of frames, each
//
//	u32le payload_len | u32le crc32(IEEE, payload) | payload
//
// The first frame of every segment is a header record ('H': version, shard
// id, shard count, logical index of the segment's first entry); subsequent
// frames are request records ('R': seq, page, tenant, and — on the page's
// first appearance — the wire key, so recovery can rebuild the key-interning
// table) or quota-control records ('Q': seq, quota vector). A frame is valid
// only if fully present with a matching CRC; recovery truncates the final
// segment at the first bad frame (a torn tail) and refuses corruption
// anywhere earlier (a gap would silently drop admitted requests).
type shardWAL struct {
	fs    fault.FS
	dir   string
	shard int
	n     int // shard count, stamped into headers

	fsync     FsyncPolicy
	syncEvery time.Duration
	segBytes  int64
	ckptEvery int

	f        fault.File
	segIndex int
	segStart int   // logical entry index of the active segment's first entry
	size     int64 // bytes in the active segment (durable + buffered)

	buf         []byte // group-commit buffer, flushed once per mailbox batch
	payload     []byte // scratch for encoding one record before framing
	lastSync    time.Time
	dirty       bool // written-but-unsynced bytes exist
	sinceCkpt   int
	truncations int // torn tails cut during recovery, for the report
}

// FsyncPolicy picks when the WAL calls fsync.
type FsyncPolicy string

const (
	// FsyncAlways syncs once per applied batch (group commit): an
	// acknowledged request is durable before the response is sent.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs at most once per WALConfig.FsyncInterval, plus on
	// segment rotation and clean shutdown: bounded data loss on power
	// failure, near-zero overhead. Kill -9 loses nothing either way —
	// written bytes survive process death; fsync only defends against the
	// machine dying.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncOff never syncs (the OS flushes on its own schedule).
	FsyncOff FsyncPolicy = "off"
)

// WALConfig enables crash-fault tolerance for the service: every shard
// journals its log entries to segment files under Dir and bounds its
// in-memory log to the active segment.
type WALConfig struct {
	// Dir is the WAL root; each shard uses <Dir>/shard-<id>/.
	Dir string
	// Fsync picks the durability/latency trade; empty selects FsyncInterval.
	Fsync FsyncPolicy
	// FsyncInterval is the max unsynced window under FsyncInterval; <= 0
	// selects 50ms.
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment past this size; <= 0 selects
	// 8 MiB (floor 4 KiB).
	SegmentBytes int64
	// CheckpointEvery writes a recovery checkpoint every N log entries per
	// shard; 0 selects 1<<18, negative disables checkpoints (recovery then
	// replays the whole WAL).
	CheckpointEvery int
	// FS is the filesystem the WAL writes through; nil selects fault.OSFS.
	// Tests inject a fault.FaultFS here.
	FS fault.FS
	// Recover loads existing WAL state from Dir instead of failing when Dir
	// is non-empty: snapshots are restored, segments replayed, torn tails
	// truncated, and the global sequence re-derived from the shard maxima.
	Recover bool
}

// normalize validates and defaults the config in place.
func (w *WALConfig) normalize() error {
	if w.Dir == "" {
		return errors.New("cached: WAL requires a directory")
	}
	switch w.Fsync {
	case "":
		w.Fsync = FsyncInterval
	case FsyncAlways, FsyncInterval, FsyncOff:
	default:
		return fmt.Errorf("cached: unknown fsync policy %q (want always, interval or off)", w.Fsync)
	}
	if w.FsyncInterval <= 0 {
		w.FsyncInterval = 50 * time.Millisecond
	}
	if w.SegmentBytes <= 0 {
		w.SegmentBytes = 8 << 20
	}
	if w.SegmentBytes < 4096 {
		w.SegmentBytes = 4096
	}
	if w.CheckpointEvery == 0 {
		w.CheckpointEvery = 1 << 18
	}
	if w.FS == nil {
		w.FS = fault.OSFS
	}
	return nil
}

// Record kinds.
const (
	recHeader  = 'H'
	recRequest = 'R'
	recQuotas  = 'Q'
)

// walVersion is the on-disk format version stamped into segment headers.
const walVersion = 1

// maxRecordBytes bounds a single frame's payload; anything larger in a
// length field is corruption (real records are tens of bytes — the largest
// legitimate payload is a quota vector or a MaxKeyLen key).
const maxRecordBytes = 1 << 20

const frameHeaderBytes = 8 // u32 len + u32 crc

// appendFrame wraps payload in a length+CRC frame.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// encodeHeader builds the 'H' payload opening a segment.
func encodeHeader(shard, n, startEntry int) []byte {
	p := []byte{recHeader}
	p = binary.AppendUvarint(p, walVersion)
	p = binary.AppendUvarint(p, uint64(shard))
	p = binary.AppendUvarint(p, uint64(n))
	p = binary.AppendUvarint(p, uint64(startEntry))
	return p
}

// encodeRequest builds the 'R' payload for one admitted request. key is
// non-nil exactly when this request interned a new page, so replay can
// rebuild the key table; repeats carry no key.
func encodeRequest(dst []byte, seq int64, page trace.PageID, tenant trace.Tenant, key []byte) []byte {
	dst = append(dst, recRequest)
	dst = binary.AppendUvarint(dst, uint64(seq))
	dst = binary.AppendUvarint(dst, uint64(page))
	dst = binary.AppendUvarint(dst, uint64(tenant))
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	return append(dst, key...)
}

// encodeQuotas builds the 'Q' payload for a quota-control entry.
func encodeQuotas(dst []byte, seq int64, quotas []int) []byte {
	dst = append(dst, recQuotas)
	dst = binary.AppendUvarint(dst, uint64(seq))
	dst = binary.AppendUvarint(dst, uint64(len(quotas)))
	for _, q := range quotas {
		dst = binary.AppendUvarint(dst, uint64(q))
	}
	return dst
}

// walRecord is one decoded frame.
type walRecord struct {
	kind byte
	// Header fields (kind 'H').
	version, shard, shards, startEntry int
	// Entry fields (kinds 'R' and 'Q'). For 'Q', entry.Quotas is non-nil.
	entry LogEntry
	// key is the interned wire key carried by a first-appearance 'R'
	// record; nil otherwise.
	key []byte
}

// errBadRecord marks a frame that failed structural decoding despite a
// matching CRC — corruption the frame layer cannot repair, reported loudly
// rather than truncated silently.
var errBadRecord = errors.New("cached: wal record decodes invalid")

// decodeRecord parses a CRC-validated payload.
func decodeRecord(p []byte) (walRecord, error) {
	var r walRecord
	if len(p) == 0 {
		return r, errBadRecord
	}
	r.kind = p[0]
	rest := p[1:]
	u := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	switch r.kind {
	case recHeader:
		ver, ok1 := u()
		shard, ok2 := u()
		n, ok3 := u()
		start, ok4 := u()
		if !ok1 || !ok2 || !ok3 || !ok4 || len(rest) != 0 {
			return r, errBadRecord
		}
		r.version, r.shard, r.shards, r.startEntry = int(ver), int(shard), int(n), int(start)
		return r, nil
	case recRequest:
		seq, ok1 := u()
		page, ok2 := u()
		tenant, ok3 := u()
		klen, ok4 := u()
		if !ok1 || !ok2 || !ok3 || !ok4 || uint64(len(rest)) != klen || klen > MaxKeyLen {
			return r, errBadRecord
		}
		r.entry = LogEntry{Seq: int64(seq), Page: trace.PageID(page), Tenant: trace.Tenant(tenant)}
		if klen > 0 {
			r.key = append([]byte(nil), rest...)
		}
		return r, nil
	case recQuotas:
		seq, ok1 := u()
		cnt, ok2 := u()
		if !ok1 || !ok2 || cnt > 1<<20 {
			return r, errBadRecord
		}
		quotas := make([]int, cnt)
		for i := range quotas {
			q, ok := u()
			if !ok {
				return r, errBadRecord
			}
			quotas[i] = int(q)
		}
		if len(rest) != 0 {
			return r, errBadRecord
		}
		r.entry = LogEntry{Seq: int64(seq), Page: -1, Tenant: -1, Quotas: quotas}
		return r, nil
	default:
		return r, errBadRecord
	}
}

// scanSegment reads frames from rd, invoking fn per decoded record, and
// returns the byte length of the valid prefix. torn is true when the stream
// ended in a partial or CRC-failing frame (everything before it is intact);
// a CRC-valid but undecodable record, or an fn error, is returned as a hard
// error instead.
func scanSegment(rd io.Reader, fn func(walRecord) error) (valid int64, torn bool, err error) {
	br := bufio.NewReaderSize(rd, 64<<10)
	var hdr [frameHeaderBytes]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return valid, false, nil // clean end
			}
			return valid, true, nil // partial frame header
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if plen > maxRecordBytes {
			return valid, true, nil // corrupt length field
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return valid, true, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return valid, true, nil // bit rot or torn write inside the frame
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return valid, false, fmt.Errorf("%w (frame at byte %d)", err, valid)
		}
		if err := fn(rec); err != nil {
			return valid, false, err
		}
		valid += frameHeaderBytes + int64(plen)
	}
}

// Segment / checkpoint file naming.

func segName(index int) string { return fmt.Sprintf("wal-%08d.seg", index) }

func ckptName(entries int) string { return fmt.Sprintf("ckpt-%012d.ck", entries) }

// shardDirName returns the per-shard subdirectory under the WAL root.
func shardDirName(root string, shard int) string {
	return path.Join(root, fmt.Sprintf("shard-%03d", shard))
}

// parseSegName extracts the index from a segment file name, or -1.
func parseSegName(name string) int {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// parseCkptName extracts the covered-entry count from a checkpoint file
// name, or -1.
func parseCkptName(name string) int {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ck") {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ck"))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// listSegments returns the shard dir's segment indices, ascending.
func listSegments(fs fault.FS, dir string) ([]int, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, name := range names {
		if idx := parseSegName(name); idx >= 0 {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

// listCheckpoints returns the shard dir's checkpoint entry counts,
// descending (newest first).
func listCheckpoints(fs fault.FS, dir string) ([]int, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, name := range names {
		if n := parseCkptName(name); n >= 0 {
			out = append(out, n)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out, nil
}

// newShardWAL builds the writer; the caller then either opens a fresh
// segment (openFresh) or recovers existing state (recover.go) before the
// shard loop starts.
func newShardWAL(cfg *WALConfig, shard, n int) *shardWAL {
	return &shardWAL{
		fs:        cfg.FS,
		dir:       shardDirName(cfg.Dir, shard),
		shard:     shard,
		n:         n,
		fsync:     cfg.Fsync,
		syncEvery: cfg.FsyncInterval,
		segBytes:  cfg.SegmentBytes,
		ckptEvery: cfg.CheckpointEvery,
	}
}

// openFresh starts segment 0 of an empty shard dir.
func (w *shardWAL) openFresh() error {
	return w.openSegment(0, 0, true)
}

// openSegment makes segment index the active one. When writeHeader is set a
// header frame is written (and synced unless fsync is off) so the segment is
// self-describing even if the process dies before the first batch.
func (w *shardWAL) openSegment(index, startEntry int, writeHeader bool) error {
	f, err := w.fs.Append(path.Join(w.dir, segName(index)))
	if err != nil {
		return fmt.Errorf("cached: shard %d: open wal segment %d: %w", w.shard, index, err)
	}
	w.f = f
	w.segIndex = index
	w.segStart = startEntry
	w.size = 0
	w.dirty = false
	if writeHeader {
		frame := appendFrame(nil, encodeHeader(w.shard, w.n, startEntry))
		if _, err := f.Write(frame); err != nil {
			return fmt.Errorf("cached: shard %d: write wal header: %w", w.shard, err)
		}
		w.size = int64(len(frame))
		if w.fsync != FsyncOff {
			if err := f.Sync(); err != nil {
				return fmt.Errorf("cached: shard %d: sync wal header: %w", w.shard, err)
			}
		}
	}
	return nil
}

// appendRequest buffers one request record for the next group commit.
func (w *shardWAL) appendRequest(seq int64, page trace.PageID, tenant trace.Tenant, key []byte) {
	payload := encodeRequest(w.scratch(), seq, page, tenant, key)
	w.buf = appendFrame(w.buf, payload)
}

// appendQuotas buffers one quota-control record.
func (w *shardWAL) appendQuotas(seq int64, quotas []int) {
	payload := encodeQuotas(w.scratch(), seq, quotas)
	w.buf = appendFrame(w.buf, payload)
}

// scratch returns a reusable payload buffer (distinct from w.buf, which
// holds framed bytes). Each shardWAL is owned by one goroutine.
func (w *shardWAL) scratch() []byte {
	if w.payload == nil {
		w.payload = make([]byte, 0, 512)
	}
	return w.payload[:0]
}

// flush writes the group-commit buffer to the active segment and applies the
// fsync policy. Returns whether the batch is durably synced.
func (w *shardWAL) flush(now time.Time) error {
	if len(w.buf) > 0 {
		n, err := w.f.Write(w.buf)
		w.size += int64(n)
		if err != nil {
			return fmt.Errorf("cached: shard %d: wal write: %w", w.shard, err)
		}
		w.buf = w.buf[:0]
		w.dirty = true
	}
	switch w.fsync {
	case FsyncAlways:
		if w.dirty {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("cached: shard %d: wal fsync: %w", w.shard, err)
			}
			w.dirty = false
			w.lastSync = now
		}
	case FsyncInterval:
		if w.dirty && now.Sub(w.lastSync) >= w.syncEvery {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("cached: shard %d: wal fsync: %w", w.shard, err)
			}
			w.dirty = false
			w.lastSync = now
		}
	}
	return nil
}

// shouldRotate reports whether the active segment is full.
func (w *shardWAL) shouldRotate() bool { return w.size >= w.segBytes }

// rotate seals the active segment (sync + close) and opens the next one
// starting at logical entry index startEntry.
func (w *shardWAL) rotate(startEntry int) error {
	if w.fsync != FsyncOff {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("cached: shard %d: seal wal segment %d: %w", w.shard, w.segIndex, err)
		}
	}
	w.dirty = false
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("cached: shard %d: close wal segment %d: %w", w.shard, w.segIndex, err)
	}
	return w.openSegment(w.segIndex+1, startEntry, true)
}

// closeSync flushes, syncs (unless fsync is off) and closes the active
// segment — the clean-shutdown path. Crash() skips this on purpose.
func (w *shardWAL) closeSync() error {
	if err := w.flush(time.Now()); err != nil {
		return err
	}
	if w.fsync != FsyncOff && w.dirty {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.dirty = false
	}
	return w.f.Close()
}
