package cached

import (
	"fmt"
	"math/rand"
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// benchRequests builds a zipf-ish multi-tenant request stream in wire shape.
func benchRequests(b *testing.B, tenants, pages, length int) []Request {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	reqs := make([]Request, length)
	// One arena backs every key so the request set is a handful of heap
	// objects, not `length` of them — the benchmark should weigh the
	// service, not the collector marking its input.
	arena := make([]byte, 0, 8*length)
	for i := range reqs {
		t := trace.Tenant(rng.Intn(tenants))
		// Squared draw concentrates mass on low pages, cheap zipf stand-in.
		p := rng.Intn(pages)
		p = (p * p) / pages
		base := len(arena)
		arena = fmt.Appendf(arena, "p%d", p)
		reqs[i] = Request{Op: OpGet, Tenant: t, Key: arena[base:len(arena):len(arena)]}
	}
	return reqs
}

func benchService(b *testing.B, mapStep bool) func() *Service {
	b.Helper()
	costs := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 2},
		costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 4},
	}
	return func() *Service {
		svc, err := New(Config{
			K: 4096, Shards: 1, Tenants: 4, MapStep: mapStep,
			NewPolicy: func() sim.Policy { return core.NewFast(core.Options{Costs: costs}) },
		})
		if err != nil {
			b.Fatal(err)
		}
		return svc
	}
}

func benchApply(b *testing.B, mapStep bool) {
	reqs := benchRequests(b, 4, 4096, 200_000)
	mk := benchService(b, mapStep)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := mk()
		for lo := 0; lo < len(reqs); lo += 512 {
			hi := min(lo+512, len(reqs))
			if _, err := svc.Apply(reqs[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
		svc.Close()
	}
	b.SetBytes(int64(len(reqs)))
}

// BenchmarkApplyDense is the live fast path: single shard on the dense core.
func BenchmarkApplyDense(b *testing.B) { benchApply(b, false) }

// BenchmarkApplyMapStep is the retained map-mode reference step.
func BenchmarkApplyMapStep(b *testing.B) { benchApply(b, true) }
