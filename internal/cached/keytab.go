package cached

import (
	"bytes"
	"encoding/binary"

	"convexcache/internal/trace"
)

// mix64 is a 64-bit avalanche finalizer (the same construction ingress
// routing uses).
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// hashKey returns the interner's hash of key and its 8-byte prefix (first
// min(len, 8) bytes little-endian, zero-padded). Keys no longer than 8
// bytes hash in a handful of arithmetic ops straight off the prefix word;
// longer keys take FNV-1a over the full bytes. Both finalize through
// mix64. Zero is the table's empty-slot sentinel, so the (vanishingly
// rare) zero hash is forced to one.
func hashKey(key []byte) (h, pre uint64) {
	n := len(key)
	if n <= 8 {
		// Word loads instead of a byte loop: two overlapping 4-byte loads
		// cover lengths 4–8 (the hi word is shifted so the overlap lands on
		// the same bytes), explicit combines cover 1–3. Same little-endian
		// zero-padded prefix as the loop, a fraction of the instructions.
		switch {
		case n >= 4:
			lo := uint64(binary.LittleEndian.Uint32(key))
			hi := uint64(binary.LittleEndian.Uint32(key[n-4:]))
			pre = lo | hi<<(8*uint(n-4))
		case n == 3:
			pre = uint64(key[0]) | uint64(key[1])<<8 | uint64(key[2])<<16
		case n == 2:
			pre = uint64(key[0]) | uint64(key[1])<<8
		case n == 1:
			pre = uint64(key[0])
		}
		h = mix64(pre ^ uint64(n)*1099511628211)
	} else {
		pre = binary.LittleEndian.Uint64(key)
		h = uint64(14695981039346656037)
		for _, c := range key {
			h = (h ^ uint64(c)) * 1099511628211
		}
		h = mix64(h)
	}
	if h == 0 {
		h = 1
	}
	return h, pre
}

// keySlot is one interner entry: the key's hash, its page id, the key's
// 8-byte prefix inline, and the key bytes' position in the arena.
// hash == 0 marks the slot empty. The inline prefix makes a lookup of a key
// no longer than 8 bytes a single-cache-line operation — hash, length and
// prefix together decide equality without touching the arena.
type keySlot struct {
	hash uint64
	page trace.PageID
	pre  uint64
	off  uint32
	klen uint32
}

// keyTable interns one tenant's wire keys to page ids: open addressing with
// linear probing over pointer-free slots, key bytes appended to a shared
// arena. It replaces map[string]trace.PageID on the request hot path — no
// per-key string allocation on insert, and nothing for the collector to
// chase (the slots array has no pointers and the arena is one object).
type keyTable struct {
	slots []keySlot
	arena []byte
	n     int
}

// lookup finds key (with h and pre from hashKey) and returns its page id.
func (kt *keyTable) lookup(h, pre uint64, key []byte) (trace.PageID, bool) {
	slots := kt.slots
	if len(slots) == 0 {
		return 0, false
	}
	mask := uint64(len(slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := &slots[i]
		if s.hash == 0 {
			return 0, false
		}
		if s.hash == h && s.klen == uint32(len(key)) && s.pre == pre {
			if len(key) <= 8 || bytes.Equal(kt.arena[s.off:s.off+s.klen], key) {
				return s.page, true
			}
		}
	}
}

// insert adds a key known to be absent (callers look up first).
func (kt *keyTable) insert(h, pre uint64, key []byte, page trace.PageID) {
	if (kt.n+1)*4 > len(kt.slots)*3 {
		kt.grow()
	}
	off := uint32(len(kt.arena))
	kt.arena = append(kt.arena, key...)
	kt.place(keySlot{hash: h, page: page, pre: pre, off: off, klen: uint32(len(key))})
	kt.n++
}

// place probes for the first empty slot; the table always has free space
// (grow keeps load below 3/4).
func (kt *keyTable) place(s keySlot) {
	mask := uint64(len(kt.slots) - 1)
	i := s.hash & mask
	for kt.slots[i].hash != 0 {
		i = (i + 1) & mask
	}
	kt.slots[i] = s
}

// grow doubles the slot array and rehashes; arena offsets are untouched.
func (kt *keyTable) grow() {
	old := kt.slots
	n := 2 * len(old)
	if n == 0 {
		n = 256
	}
	kt.slots = make([]keySlot, n)
	for i := range old {
		if old[i].hash != 0 {
			kt.place(old[i])
		}
	}
}

// each visits every interned (key, page) pair in unspecified order. The key
// slice aliases the arena — copy it to retain.
func (kt *keyTable) each(f func(key []byte, page trace.PageID)) {
	for i := range kt.slots {
		if s := &kt.slots[i]; s.hash != 0 {
			f(kt.arena[s.off:s.off+s.klen], s.page)
		}
	}
}
