package cached

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path"
	"sort"
	"time"

	"convexcache/internal/core"
	"convexcache/internal/fault"
	"convexcache/internal/trace"
)

// This file is startup recovery: load the newest valid checkpoint, replay
// the WAL segments after it through the verbatim shard step, truncate a torn
// tail at the first bad CRC (final segment only — a tear anywhere earlier
// would silently drop admitted requests and is refused loudly), and rederive
// the global sequence counter from the per-shard maxima. Because the shard
// step is a deterministic function of the log, the recovered shard is
// bit-identical to the shard that wrote the log — check.DiffRecovery proves
// exactly that.

// checkpoint is one durable shard snapshot: identity state (key table, page
// allocator), counters, and the engine image. Only engines with an exact
// serialization are checkpointed — the quota partition (quotaLRU dump) and
// the paper's algorithm (core.FastSnapshot); other policies recover by full
// WAL replay, which is always correct, just slower. The file is a single
// CRC frame around this JSON.
type checkpoint struct {
	Version int `json:"version"`
	Shard   int `json:"shard"`
	Shards  int `json:"shards"`
	K       int `json:"k"`
	Tenants int `json:"tenants"`
	// Entries is the logical log position the image covers: replay resumes
	// at entry Entries.
	Entries      int   `json:"entries"`
	LastSeq      int64 `json:"last_seq"`
	LastQuotaSeq int64 `json:"last_quota_seq,omitempty"`

	Requests  int64   `json:"requests"`
	Hits      []int64 `json:"hits"`
	Misses    []int64 `json:"misses"`
	Evictions []int64 `json:"evictions"`

	Pages    int       `json:"pages"`
	NextPage int64     `json:"next_page"`
	Keys     []ckptKey `json:"keys"`

	// Engine is "quota" or "fast"; exactly one image field is set.
	Engine string `json:"engine"`
	// Fast is the classic-mode engine image; residency is rederived from it.
	Fast *core.FastSnapshot `json:"fast,omitempty"`
	// Quotas is the global quota vector as of Entries; QuotaPages each
	// tenant's resident pages MRU→LRU (partition mode).
	Quotas     []int     `json:"quotas,omitempty"`
	QuotaPages [][]int64 `json:"quota_pages,omitempty"`
}

type ckptKey struct {
	Tenant int    `json:"t"`
	Page   int64  `json:"p"`
	Key    string `json:"k"`
}

// RecoveryReport summarizes a startup recovery (Service.Recovery).
type RecoveryReport struct {
	// Shards is the shard count recovered.
	Shards int `json:"shards"`
	// Entries is the total logical log entries restored (checkpoint-covered
	// plus replayed); Requests excludes quota-control entries.
	Entries  int64 `json:"entries"`
	Requests int64 `json:"requests"`
	// Replayed counts the entries actually re-run through the engine (the
	// part not covered by checkpoints).
	Replayed int64 `json:"replayed"`
	// LastSeq is the restored global sequence counter.
	LastSeq int64 `json:"last_seq"`
	// Truncations counts torn tails cut at a record boundary.
	Truncations int `json:"truncations"`
	// Checkpoints counts shards restored from a checkpoint image.
	Checkpoints int `json:"checkpoints"`
}

// buildCheckpoint captures the shard's current image, or nil when the
// engine has no exact serialization (generic policies replay instead).
func (sh *shard) buildCheckpoint() *checkpoint {
	ck := &checkpoint{
		Version:      walVersion,
		Shard:        sh.id,
		Shards:       sh.svc.cfg.Shards,
		K:            sh.k,
		Tenants:      sh.svc.cfg.Tenants,
		Entries:      sh.steps,
		LastSeq:      sh.lastSeq,
		LastQuotaSeq: sh.lastQuotaSeq,
		Requests:     sh.reqs,
		Hits:         append([]int64(nil), sh.hits...),
		Misses:       append([]int64(nil), sh.misses...),
		Evictions:    append([]int64(nil), sh.evictions...),
		Pages:        sh.pages,
		NextPage:     int64(sh.nextPage),
	}
	switch {
	case sh.qlru != nil:
		ck.Engine = "quota"
		ck.Quotas = append([]int(nil), sh.quotasNow...)
		ck.QuotaPages = sh.qlru.dump()
	case sh.open != nil:
		// The dense shard core serializes in the same FastSnapshot format as
		// the map-mode engine, so dense- and map-mode services can recover
		// each other's WAL directories.
		snap := sh.open.Snapshot()
		ck.Engine = "fast"
		ck.Fast = &snap
	default:
		f, ok := sh.policy.(*core.Fast)
		if !ok {
			return nil
		}
		snap := f.Snapshot()
		ck.Engine = "fast"
		ck.Fast = &snap
	}
	for t := range sh.keys {
		base := len(ck.Keys)
		sh.keys[t].each(func(k []byte, p trace.PageID) {
			ck.Keys = append(ck.Keys, ckptKey{Tenant: t, Page: int64(p), Key: string(k)})
		})
		keys := ck.Keys[base:]
		sort.Slice(keys, func(i, j int) bool { return keys[i].Page < keys[j].Page })
	}
	return ck
}

// writeCheckpoint durably stores the shard image: CRC-framed JSON to a temp
// file, fsync (per policy), rename into place, prune all but the two newest.
func (sh *shard) writeCheckpoint() error {
	ck := sh.buildCheckpoint()
	if ck == nil {
		return nil
	}
	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("cached: shard %d: encode checkpoint: %w", sh.id, err)
	}
	w := sh.wal
	final := path.Join(w.dir, ckptName(ck.Entries))
	tmp := final + ".tmp"
	_ = w.fs.Remove(tmp)
	f, err := w.fs.Append(tmp)
	if err != nil {
		return fmt.Errorf("cached: shard %d: open checkpoint: %w", sh.id, err)
	}
	if _, err := f.Write(appendFrame(nil, payload)); err != nil {
		f.Close()
		return fmt.Errorf("cached: shard %d: write checkpoint: %w", sh.id, err)
	}
	if w.fsync != FsyncOff {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("cached: shard %d: sync checkpoint: %w", sh.id, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cached: shard %d: close checkpoint: %w", sh.id, err)
	}
	if err := w.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("cached: shard %d: install checkpoint: %w", sh.id, err)
	}
	sh.svc.mCheckpoints.Inc()
	if cks, err := listCheckpoints(w.fs, w.dir); err == nil && len(cks) > 2 {
		for _, n := range cks[2:] {
			_ = w.fs.Remove(path.Join(w.dir, ckptName(n)))
		}
	}
	return nil
}

// loadCheckpoint reads and CRC-validates one checkpoint file: exactly one
// frame whose payload is the checkpoint JSON.
func (sh *shard) loadCheckpoint(name string) (*checkpoint, error) {
	rc, err := sh.wal.fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	payload, err := readOneFrame(rc)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path.Base(name), err)
	}
	ck := &checkpoint{}
	if err := json.Unmarshal(payload, ck); err != nil {
		return nil, fmt.Errorf("checkpoint %s: decode: %w", path.Base(name), err)
	}
	return ck, nil
}

// installCheckpoint validates the image against the current configuration
// and installs it: counters, key table, engine state, bookkeeping. A
// mismatch (resized cluster, different engine) rejects the checkpoint — the
// caller falls back to an older one or to full replay.
func (sh *shard) installCheckpoint(ck *checkpoint) error {
	cfg := sh.svc.cfg
	switch {
	case ck.Version != walVersion:
		return fmt.Errorf("checkpoint version %d, want %d", ck.Version, walVersion)
	case ck.Shard != sh.id || ck.Shards != cfg.Shards:
		return fmt.Errorf("checkpoint is for shard %d/%d, this is shard %d/%d", ck.Shard, ck.Shards, sh.id, cfg.Shards)
	case ck.K != sh.k:
		return fmt.Errorf("checkpoint has shard capacity %d, config gives %d", ck.K, sh.k)
	case ck.Tenants != cfg.Tenants:
		return fmt.Errorf("checkpoint has %d tenants, config has %d", ck.Tenants, cfg.Tenants)
	case len(ck.Hits) != cfg.Tenants || len(ck.Misses) != cfg.Tenants || len(ck.Evictions) != cfg.Tenants:
		return errors.New("checkpoint counter vectors are missized")
	case ck.Entries < 0 || ck.Pages != len(ck.Keys):
		return fmt.Errorf("checkpoint claims %d pages but carries %d keys", ck.Pages, len(ck.Keys))
	}
	n := cfg.Shards
	for _, k := range ck.Keys {
		if k.Tenant < 0 || k.Tenant >= cfg.Tenants {
			return fmt.Errorf("checkpoint key for out-of-range tenant %d", k.Tenant)
		}
		if k.Page < 0 || int(k.Page%int64(n)) != sh.id || k.Page >= ck.NextPage {
			return fmt.Errorf("checkpoint key maps to page %d outside shard %d's allocation", k.Page, sh.id)
		}
		kt := &sh.keys[k.Tenant]
		kb := []byte(k.Key)
		h, pre := hashKey(kb)
		if _, dup := kt.lookup(h, pre, kb); dup {
			return fmt.Errorf("checkpoint has duplicate key for tenant %d", k.Tenant)
		}
		kt.insert(h, pre, kb, trace.PageID(k.Page))
	}
	switch ck.Engine {
	case "quota":
		if sh.qlru == nil {
			return errors.New("quota checkpoint but service is not in partition mode")
		}
		if len(ck.Quotas) != cfg.Tenants {
			return errors.New("checkpoint quota vector missized")
		}
		sh.quotasNow = append(sh.quotasNow[:0], ck.Quotas...)
		sh.qlru = newQuotaLRU(localQuotas(ck.Quotas, n, sh.id), n, sh.id)
		if err := sh.qlru.restore(ck.QuotaPages); err != nil {
			return fmt.Errorf("checkpoint quota image: %w", err)
		}
	case "fast":
		if sh.qlru != nil {
			return errors.New("fast checkpoint but service is in partition mode")
		}
		if ck.Fast == nil {
			return errors.New("fast checkpoint carries no engine image")
		}
		if sh.open != nil {
			if err := sh.open.Restore(*ck.Fast); err != nil {
				return fmt.Errorf("checkpoint engine image: %w", err)
			}
			break
		}
		f, ok := sh.policy.(*core.Fast)
		if !ok {
			return errors.New("fast checkpoint does not match the configured policy")
		}
		if err := f.Restore(*ck.Fast); err != nil {
			return fmt.Errorf("checkpoint engine image: %w", err)
		}
		sh.cache = ck.Fast.ResidentPages()
		if len(sh.cache) > sh.k {
			return fmt.Errorf("checkpoint engine holds %d resident pages, capacity is %d", len(sh.cache), sh.k)
		}
	default:
		return fmt.Errorf("unknown checkpoint engine %q", ck.Engine)
	}
	sh.reqs = ck.Requests
	copy(sh.hits, ck.Hits)
	copy(sh.misses, ck.Misses)
	copy(sh.evictions, ck.Evictions)
	sh.pages = ck.Pages
	sh.nextPage = trace.PageID(ck.NextPage)
	sh.steps = ck.Entries
	sh.lastSeq = ck.LastSeq
	sh.lastQuotaSeq = ck.LastQuotaSeq
	return nil
}

// resetForRecovery returns the shard to its birth state (fresh engine,
// empty key table) before a recovery attempt installs a checkpoint and
// replays the log.
func (sh *shard) resetForRecovery() {
	sh.resetEngine()
	for t := range sh.keys {
		sh.keys[t] = keyTable{}
	}
	sh.nextPage = trace.PageID(sh.id)
	sh.pages = 0
	sh.log = entryLog{}
	sh.logStart = 0
}

// recoverWAL restores the shard from its WAL directory. Checkpoints are
// tried newest first, falling back to older ones and finally to a full
// replay from entry 0 — a bad checkpoint can cost time, never correctness.
// An empty directory just opens a fresh segment.
func (sh *shard) recoverWAL(rep *RecoveryReport) error {
	w := sh.wal
	segs, err := listSegments(w.fs, w.dir)
	if err != nil {
		return fmt.Errorf("cached: shard %d: list wal segments: %w", sh.id, err)
	}
	if len(segs) == 0 {
		return w.openFresh()
	}
	cks, err := listCheckpoints(w.fs, w.dir)
	if err != nil {
		return fmt.Errorf("cached: shard %d: list checkpoints: %w", sh.id, err)
	}
	var lastErr error
	for _, n := range append(cks, -1) {
		var ck *checkpoint
		if n >= 0 {
			ck, err = sh.loadCheckpoint(path.Join(w.dir, ckptName(n)))
			if err != nil {
				lastErr = err
				continue
			}
		}
		if err := sh.replaySegments(segs, ck, rep); err != nil {
			lastErr = err
			continue
		}
		if ck != nil {
			rep.Checkpoints++
		}
		return nil
	}
	return fmt.Errorf("cached: shard %d: recovery failed: %w", sh.id, lastErr)
}

// replaySegments is one recovery attempt: reset, install ck (may be nil =
// full replay), then scan every segment in chain order, re-running each
// entry past the checkpoint through the verbatim engine step. The final
// segment may end in a torn tail, which is truncated at the last valid
// frame; any earlier damage, ordering violation or chain gap is a hard
// error.
func (sh *shard) replaySegments(segs []int, ck *checkpoint, rep *RecoveryReport) error {
	sh.resetForRecovery()
	w := sh.wal
	ckEntries := 0
	if ck != nil {
		if err := sh.installCheckpoint(ck); err != nil {
			// Installation can fail after mutating the key table; reset so
			// the next candidate starts clean.
			sh.resetForRecovery()
			return err
		}
		ckEntries = ck.Entries
	}
	n := sh.svc.cfg.Shards
	tenants := sh.svc.cfg.Tenants
	entries := 0
	replayed := int64(0)
	var lastSeq int64
	var tail entryLog
	tailStart := 0
	for i, idx := range segs {
		if idx != i {
			return fmt.Errorf("wal segment chain broken: found segment %d at position %d", idx, i)
		}
		final := i == len(segs)-1
		name := path.Join(w.dir, segName(idx))
		rc, err := w.fs.Open(name)
		if err != nil {
			return err
		}
		hdrSeen := false
		segStart := 0
		valid, torn, serr := scanSegment(rc, func(rec walRecord) error {
			if !hdrSeen {
				if rec.kind != recHeader {
					return fmt.Errorf("segment %d: first record is %q, not a header", idx, rec.kind)
				}
				if rec.version != walVersion {
					return fmt.Errorf("segment %d: wal version %d, want %d", idx, rec.version, walVersion)
				}
				if rec.shard != sh.id || rec.shards != n {
					return fmt.Errorf("segment %d: written by shard %d of %d, this is shard %d of %d", idx, rec.shard, rec.shards, sh.id, n)
				}
				if rec.startEntry != entries {
					return fmt.Errorf("segment %d: starts at entry %d, expected %d — entries are missing", idx, rec.startEntry, entries)
				}
				segStart = rec.startEntry
				hdrSeen = true
				return nil
			}
			if rec.kind == recHeader {
				return fmt.Errorf("segment %d: duplicate header", idx)
			}
			e := rec.entry
			if e.Seq <= lastSeq {
				return fmt.Errorf("segment %d: seq %d not increasing (prev %d)", idx, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			if e.Quotas == nil {
				if int(e.Tenant) >= tenants {
					return fmt.Errorf("segment %d: entry for out-of-range tenant %d", idx, e.Tenant)
				}
				if int(e.Page)%n != sh.id {
					return fmt.Errorf("segment %d: entry for page %d outside shard %d's residue class", idx, e.Page, sh.id)
				}
			} else if len(e.Quotas) != tenants {
				return fmt.Errorf("segment %d: quota control entry with %d tenants, config has %d", idx, len(e.Quotas), tenants)
			}
			at := entries
			entries++
			if final {
				tail.append(e)
			}
			if at < ckEntries {
				return nil // covered by the checkpoint image
			}
			replayed++
			return sh.replayEntry(e, rec.key)
		})
		rc.Close()
		if serr != nil {
			return serr
		}
		if torn {
			if !final {
				return fmt.Errorf("wal segment %d has a torn tail but is not the last segment — refusing to drop admitted requests", idx)
			}
			if err := truncateSegment(w.fs, name, valid); err != nil {
				return fmt.Errorf("truncate torn tail of segment %d: %w", idx, err)
			}
			w.truncations++
			rep.Truncations++
		}
		if final {
			if !hdrSeen {
				// The header itself was torn away: the segment is empty and
				// restarts at the running entry count.
				segStart = entries
			}
			tailStart = segStart
			w.segIndex = idx
			w.segStart = segStart
			w.size = valid
		}
	}
	if entries < ckEntries {
		return fmt.Errorf("checkpoint covers %d entries but the wal holds only %d — checkpoint outran durability", ckEntries, entries)
	}
	if sh.steps != entries {
		return fmt.Errorf("replay produced %d entries, wal holds %d", sh.steps, entries)
	}
	sh.log = tail
	sh.logStart = tailStart
	// Reopen the final segment for appending; rewrite the header if the
	// tear consumed it.
	f, err := w.fs.Append(path.Join(w.dir, segName(w.segIndex)))
	if err != nil {
		return fmt.Errorf("reopen active segment %d: %w", w.segIndex, err)
	}
	w.f = f
	w.buf = w.buf[:0]
	w.dirty = false
	w.lastSync = time.Now()
	if w.size == 0 {
		frame := appendFrame(nil, encodeHeader(sh.id, n, w.segStart))
		if _, err := f.Write(frame); err != nil {
			return fmt.Errorf("rewrite header of segment %d: %w", w.segIndex, err)
		}
		w.size = int64(len(frame))
		if w.fsync != FsyncOff {
			if err := f.Sync(); err != nil {
				return fmt.Errorf("sync rewritten header: %w", err)
			}
		}
	}
	sh.lastCkpt = ckEntries
	rep.Entries += int64(entries)
	rep.Requests += sh.reqs
	rep.Replayed += replayed
	if sh.lastSeq > rep.LastSeq {
		rep.LastSeq = sh.lastSeq
	}
	sh.publishMetrics()
	return nil
}

// truncateSegment cuts a torn tail at the last valid frame boundary.
func truncateSegment(fs fault.FS, name string, size int64) error {
	f, err := fs.Append(name)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readOneFrame reads a single CRC frame (the checkpoint file format).
func readOneFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("short frame header: %w", err)
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if plen > maxCheckpointBytes {
		return nil, fmt.Errorf("frame claims %d bytes", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("short frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, errors.New("frame crc mismatch")
	}
	return payload, nil
}

// maxCheckpointBytes bounds a checkpoint frame (the key table dominates; a
// gigabyte of keys is beyond anything this service holds in memory anyway).
const maxCheckpointBytes = 1 << 30

// reconcileQuotas runs after all shards recovered (partition mode): a crash
// mid-SetQuotas can leave shards on different quota vectors (each logs the
// switch at its own position, and durability can skew). The newest vector
// by control-entry sequence wins; lagging shards get a fresh control entry
// — the same semantics a live SetQuotas has. Runs before the shard loops
// start, so direct calls are safe.
func (s *Service) reconcileQuotas() error {
	var best *shard
	for _, sh := range s.shards {
		if sh.lastQuotaSeq > 0 && (best == nil || sh.lastQuotaSeq > best.lastQuotaSeq) {
			best = sh
		}
	}
	if best == nil {
		return nil // every shard is on Config.Quotas
	}
	vec := append([]int(nil), best.quotasNow...)
	for _, sh := range s.shards {
		if quotasEqual(sh.quotasNow, vec) {
			continue
		}
		seq := s.seq.Add(1)
		sh.appendQuotaEntry(seq, append([]int(nil), vec...))
		sh.stepQuotas(vec)
		if err := sh.wal.flush(time.Now()); err != nil {
			return fmt.Errorf("cached: shard %d: persist quota reconcile: %w", sh.id, err)
		}
	}
	s.quotas = append(s.quotas[:0], vec...)
	for t, g := range s.mQuota {
		g.Set(int64(vec[t]))
	}
	return nil
}

func quotasEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
