package cached

import (
	"fmt"

	"convexcache/internal/core"
	"convexcache/internal/trace"
)

// quotaLRU is the partition-mode shard engine: per-tenant LRU lists under
// per-tenant page quotas. It exists because adaptive capacity needs quotas
// that change at runtime AND bit-exact live-vs-replay verification: the
// same code runs in the live shard loop and in the offline replay, and
// every operation is deterministic (intrusive linked lists over the dense
// core's record table, no map iteration anywhere), so replaying a shard's
// log through a fresh instance reproduces the live counters exactly.
//
// The recency machinery is core.LRUTable — the same intrusive per-tenant
// lists, 32-byte page records and residue-class slot mapping the dense
// budget engine runs on — so partition mode and budget mode share one
// list implementation and differ only in the victim rule (own-tail under
// quota vs global budget argmin).
//
// Semantics per access: a resident page moves to its tenant's MRU position;
// a miss with a zero quota is counted but not inserted (the tenant holds no
// capacity); otherwise the tenant at quota evicts its own LRU tail first.
// Tenants only ever evict their own pages — cross-tenant pressure is
// mediated entirely by quota changes, which trim the shrinking tenant's LRU
// tail immediately.
type quotaLRU struct {
	quotas []int
	tab    *core.LRUTable
}

// newQuotaLRU builds a partition engine for the given local quota vector
// over the residue class base mod stride (the owning shard's page-id class).
func newQuotaLRU(quotas []int, stride, base int) *quotaLRU {
	tab, err := core.NewLRUTable(len(quotas), stride, base)
	if err != nil {
		// Shard geometry is validated in New; reaching here is a caller bug.
		panic(err)
	}
	return &quotaLRU{
		quotas: append([]int(nil), quotas...),
		tab:    tab,
	}
}

// Access serves one request. Returns whether it hit and whether an eviction
// occurred (evictions are always of the requesting tenant's own LRU tail).
// Pages arrive from the shard's own interner, so a residue-class or owner
// violation is engine corruption and panics into the shard's rebuild path.
func (q *quotaLRU) Access(t trace.Tenant, p trace.PageID) (hit, evicted bool) {
	hit, err := q.tab.Touch(p, t)
	if err != nil {
		panic(err)
	}
	if hit {
		return true, false
	}
	if q.quotas[t] <= 0 {
		// No capacity: the miss is served but the page is not admitted.
		return false, false
	}
	if q.tab.Len(t) >= q.quotas[t] {
		if _, ok := q.tab.PopTail(t); !ok {
			panic(fmt.Sprintf("cached: tenant %d at quota %d with empty list", t, q.quotas[t]))
		}
		evicted = true
	}
	if err := q.tab.Insert(p, t); err != nil {
		panic(err)
	}
	return false, evicted
}

// SetQuotas installs a new quota vector, trimming each shrinking tenant's
// LRU tail to fit. Returns the number of pages evicted per tenant.
func (q *quotaLRU) SetQuotas(quotas []int) []int {
	evictions := make([]int, len(q.quotas))
	for t := range q.quotas {
		nq := 0
		if t < len(quotas) {
			nq = quotas[t]
		}
		q.quotas[t] = nq
		for q.tab.Len(trace.Tenant(t)) > nq {
			q.tab.PopTail(trace.Tenant(t))
			evictions[t]++
		}
	}
	return evictions
}

// Occupancy is the total resident page count.
func (q *quotaLRU) Occupancy() int { return q.tab.Total() }

// dump serializes residency for a checkpoint: per tenant, resident pages in
// MRU→LRU order. Deterministic — it walks the intrusive lists, never a map.
func (q *quotaLRU) dump() [][]int64 {
	out := make([][]int64, len(q.quotas))
	for t := range q.quotas {
		out[t] = q.tab.PagesMRU(trace.Tenant(t))
	}
	return out
}

// restore rebuilds residency from a dump on a freshly constructed instance.
// The quotas must already be the ones in force at checkpoint time.
func (q *quotaLRU) restore(pages [][]int64) error {
	if len(pages) > len(q.quotas) {
		return fmt.Errorf("quota image has %d tenants, engine has %d", len(pages), len(q.quotas))
	}
	if q.tab.Total() != 0 {
		return fmt.Errorf("restore on a non-empty engine")
	}
	for t, ps := range pages {
		if len(ps) > q.quotas[t] {
			return fmt.Errorf("tenant %d image holds %d pages over quota %d", t, len(ps), q.quotas[t])
		}
		// The dump is MRU→LRU; appending at the back preserves the order.
		for _, p := range ps {
			if err := q.tab.PushBack(trace.PageID(p), trace.Tenant(t)); err != nil {
				return fmt.Errorf("tenant %d quota image: %w", t, err)
			}
		}
	}
	return nil
}
