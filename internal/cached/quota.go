package cached

import (
	"fmt"

	"convexcache/internal/trace"
)

// quotaLRU is the partition-mode shard engine: per-tenant LRU lists under
// per-tenant page quotas. It exists because adaptive capacity needs quotas
// that change at runtime AND bit-exact live-vs-replay verification: the
// same code runs in the live shard loop and in the offline replay, and
// every operation is deterministic (intrusive linked lists, no map
// iteration anywhere), so replaying a shard's log through a fresh instance
// reproduces the live counters exactly.
//
// Semantics per access: a resident page moves to its tenant's MRU position;
// a miss with a zero quota is counted but not inserted (the tenant holds no
// capacity); otherwise the tenant at quota evicts its own LRU tail first.
// Tenants only ever evict their own pages — cross-tenant pressure is
// mediated entirely by quota changes, which trim the shrinking tenant's LRU
// tail immediately.
type quotaLRU struct {
	quotas []int
	size   []int
	nodes  map[trace.PageID]*qnode
	// head[t] is tenant t's MRU page, tail[t] its LRU page; nil when empty.
	head, tail []*qnode
}

type qnode struct {
	page       trace.PageID
	tenant     trace.Tenant
	prev, next *qnode // prev = toward MRU, next = toward LRU
}

func newQuotaLRU(quotas []int) *quotaLRU {
	q := &quotaLRU{
		quotas: append([]int(nil), quotas...),
		size:   make([]int, len(quotas)),
		nodes:  make(map[trace.PageID]*qnode),
		head:   make([]*qnode, len(quotas)),
		tail:   make([]*qnode, len(quotas)),
	}
	return q
}

// unlink removes n from its tenant's list (does not touch q.nodes).
func (q *quotaLRU) unlink(n *qnode) {
	t := n.tenant
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head[t] = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail[t] = n.prev
	}
	n.prev, n.next = nil, nil
}

// pushFront makes n its tenant's MRU.
func (q *quotaLRU) pushFront(n *qnode) {
	t := n.tenant
	n.next = q.head[t]
	n.prev = nil
	if q.head[t] != nil {
		q.head[t].prev = n
	}
	q.head[t] = n
	if q.tail[t] == nil {
		q.tail[t] = n
	}
}

// evictTail removes tenant t's LRU page and returns it.
func (q *quotaLRU) evictTail(t trace.Tenant) trace.PageID {
	n := q.tail[t]
	q.unlink(n)
	delete(q.nodes, n.page)
	q.size[t]--
	return n.page
}

// Access serves one request. Returns whether it hit and whether an eviction
// occurred (evictions are always of the requesting tenant's own LRU tail).
func (q *quotaLRU) Access(t trace.Tenant, p trace.PageID) (hit, evicted bool) {
	if n, ok := q.nodes[p]; ok {
		q.unlink(n)
		q.pushFront(n)
		return true, false
	}
	if q.quotas[t] <= 0 {
		// No capacity: the miss is served but the page is not admitted.
		return false, false
	}
	if q.size[t] >= q.quotas[t] {
		q.evictTail(t)
		evicted = true
	}
	n := &qnode{page: p, tenant: t}
	q.nodes[p] = n
	q.pushFront(n)
	q.size[t]++
	return false, evicted
}

// SetQuotas installs a new quota vector, trimming each shrinking tenant's
// LRU tail to fit. Returns the number of pages evicted per tenant.
func (q *quotaLRU) SetQuotas(quotas []int) []int {
	evictions := make([]int, len(q.quotas))
	for t := range q.quotas {
		nq := 0
		if t < len(quotas) {
			nq = quotas[t]
		}
		q.quotas[t] = nq
		for q.size[t] > nq {
			q.evictTail(trace.Tenant(t))
			evictions[t]++
		}
	}
	return evictions
}

// Occupancy is the total resident page count.
func (q *quotaLRU) Occupancy() int { return len(q.nodes) }

// dump serializes residency for a checkpoint: per tenant, resident pages in
// MRU→LRU order. Deterministic — it walks the intrusive lists, never a map.
func (q *quotaLRU) dump() [][]int64 {
	out := make([][]int64, len(q.quotas))
	for t := range q.quotas {
		pages := make([]int64, 0, q.size[t])
		for n := q.head[t]; n != nil; n = n.next {
			pages = append(pages, int64(n.page))
		}
		out[t] = pages
	}
	return out
}

// restore rebuilds residency from a dump on a freshly constructed instance.
// The quotas must already be the ones in force at checkpoint time.
func (q *quotaLRU) restore(pages [][]int64) error {
	if len(pages) > len(q.quotas) {
		return fmt.Errorf("quota image has %d tenants, engine has %d", len(pages), len(q.quotas))
	}
	if len(q.nodes) != 0 {
		return fmt.Errorf("restore on a non-empty engine")
	}
	for t, ps := range pages {
		if len(ps) > q.quotas[t] {
			return fmt.Errorf("tenant %d image holds %d pages over quota %d", t, len(ps), q.quotas[t])
		}
		// The dump is MRU→LRU; pushing front in reverse rebuilds the order.
		for i := len(ps) - 1; i >= 0; i-- {
			p := trace.PageID(ps[i])
			if _, dup := q.nodes[p]; dup {
				return fmt.Errorf("page %d resident twice in quota image", p)
			}
			n := &qnode{page: p, tenant: trace.Tenant(t)}
			q.nodes[p] = n
			q.pushFront(n)
			q.size[t]++
		}
	}
	return nil
}
