// Package cached is the live cache service of the repo: it applies the
// paper's online algorithm (or any deterministic eviction policy) to live
// GET/PUT traffic instead of replaying a recorded trace.
//
// Architecture: N shards, each a single-writer goroutine owning a private
// engine — residency map, policy instance, per-tenant counters and an
// append-only request log. Requests are hash-routed to shards over per-shard
// mailbox channels, so the hot path takes no locks: the only shared state a
// request touches is its shard's mailbox and one global atomic sequence
// counter. Capacity K is split across shards with sim.ShardShare, the same
// split the offline sharded replay uses.
//
// The service is differentially checkable against the simulator: every shard
// logs the requests it admitted (in processing order, stamped with a global
// sequence number), and Verify replays the merged log through sim.Run (one
// shard) or sim.BuildShardsBy + ShardPlan.Run (N shards, with the live
// router's exact page partition) and diffs the per-tenant hit/miss/eviction
// counters bit for bit. Because the convex objective Σ f_i(misses_i) is
// separable per tenant and every page lives on exactly one shard, the live
// partitioned cache and the offline partitioned replay must agree exactly —
// any divergence is a bug, not noise. See DESIGN.md §6h for the full
// correctness argument.
package cached

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"convexcache/internal/costfn"
	"convexcache/internal/mrclive"
	"convexcache/internal/obs"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Op is the request verb. GET and PUT have identical residency semantics
// (write-allocate: both demand the page resident, missing fetches it); they
// differ only in intent and metrics, so the request log needs no op column
// and replay is op-agnostic.
type Op byte

const (
	// OpGet reads a key.
	OpGet Op = 'G'
	// OpPut writes a key.
	OpPut Op = 'P'
)

// Request is one live cache operation.
type Request struct {
	// Op is the verb.
	Op Op
	// Tenant is the requesting tenant; must be in [0, Config.Tenants).
	Tenant trace.Tenant
	// Key is the tenant-scoped cache key (two tenants may use the same key
	// for distinct pages). Must be non-empty.
	Key []byte
}

// Result bytes of Apply, one per request.
const (
	// ResultHit: the key was resident.
	ResultHit = 'H'
	// ResultMiss: the key was fetched (and inserted, evicting if needed).
	ResultMiss = 'M'
	// ResultError: the request's shard is failed (see Service.Err).
	ResultError = 'E'
	// ResultShed: the request's shard is down (rebuilding after a panic) or
	// the service crashed mid-flight; the request was NOT applied and is
	// safe to retry (Apply returns ErrShardDown alongside).
	ResultShed = 'S'
)

// Config sizes the service.
type Config struct {
	// K is the total cache capacity in pages; split across shards with
	// sim.ShardShare. Must be >= Shards.
	K int
	// Shards is the shard count; <= 0 selects 1.
	Shards int
	// Tenants is the tenant universe size; requests for tenants outside
	// [0, Tenants) are rejected at ingress.
	Tenants int
	// NewPolicy builds a fresh eviction-policy instance. Instances must be
	// deterministic and mutually independent: each shard gets one at
	// startup, and Verify builds fresh ones for the offline replay. With
	// Shards > 1 the policy must support the dense engine
	// (sim.DensePolicy), because the replay runs sharded.
	NewPolicy func() sim.Policy
	// MailboxDepth is the per-shard channel buffer; <= 0 selects 64.
	MailboxDepth int
	// MapStep keeps the map-mode reference step in the shard loop instead of
	// the dense shard core. Classic mode with a core.Fast policy normally
	// runs the same SoA denseCore the replay engine uses (the fast path);
	// this switch retains the original map-backed step, which survives as a
	// check-only reference — the live/dense-vs-map oracle replays identical
	// logs through both and demands bit-equal results.
	MapStep bool
	// Registry receives the per-shard metrics; nil creates a private one.
	Registry *obs.Registry

	// Quotas switches the service to partition mode: each tenant gets a
	// dedicated LRU quota (shard-local share via sim.ShardShare, summing to
	// the global quota exactly), adjustable at runtime with SetQuotas. Must
	// have length Tenants and sum to K; NewPolicy is ignored. Nil keeps the
	// classic single-policy mode.
	Quotas []int
	// MRC enables the streaming per-tenant miss-ratio estimator: every
	// shard runs an mrclive.Sampler inline (Tenants and Scale are filled in
	// from this config). Nil disables estimation.
	MRC *mrclive.Config
	// Costs holds per-tenant convex cost functions for the capacity
	// controller's marginal weights; nil or short entries weight linearly.
	Costs []costfn.Func
	// ReserveFloor is the per-tenant page floor RebalanceOnce respects.
	ReserveFloor int

	// WAL enables crash-fault tolerance: every shard journals its log to
	// segment files and recovers bit-exactly on restart (see wal.go /
	// recover.go). Nil keeps the service purely in-memory.
	WAL *WALConfig
}

// ErrClosed is returned by Apply after Close.
var ErrClosed = errors.New("cached: service closed")

// ErrShardDown is returned by Apply when at least one request was shed
// because its shard is down (rebuilding after a panic) — a transient
// condition; the HTTP layer maps it to 503 + Retry-After.
var ErrShardDown = errors.New("cached: shard down, retry later")

// Service is the live sharded cache. Create with New, drive with Apply (or
// the HTTP handler), check with Verify, stop with Close.
type Service struct {
	cfg    Config
	reg    *obs.Registry
	shards []*shard
	// seq stamps every admitted request with a globally unique, per-shard
	// monotone sequence number; Verify merges the shard logs by it.
	seq atomic.Int64

	// mu guards closed against concurrent Apply/Verify/Close; shard state
	// itself is single-writer and never locked. snapshotAll additionally
	// takes the write side as a sequencing barrier (see there).
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	// quotaMu serializes SetQuotas dispatches and guards quotas, the
	// current global per-tenant quota vector (partition mode only).
	quotaMu sync.Mutex
	quotas  []int

	// walCfg is the normalized WAL configuration (nil when durability is
	// off); crashed simulates kill -9 (Crash): queued work is shed and the
	// final flush/checkpoint skipped. recovery summarizes the startup
	// recovery, if one ran.
	walCfg   *WALConfig
	crashed  atomic.Bool
	recovery *RecoveryReport

	// Per-tenant controller/estimator gauges (nil slices when disabled).
	mQuota, mWindowReqs, mMissRatioBP []*obs.Gauge
	mRebalances                       *obs.Counter
	// Robustness counters: shards taken down by panics, successful
	// restarts, shed requests, WAL/checkpoint activity.
	mShardDown, mShardRestarts, mShed *obs.Counter
	mWALErrors, mCheckpoints          *obs.Counter
}

// New validates the configuration, starts the shard goroutines and returns
// the service.
func New(cfg Config) (*Service, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.K <= 0 {
		return nil, errors.New("cached: cache size must be positive")
	}
	if cfg.K < cfg.Shards {
		return nil, fmt.Errorf("cached: need k >= shards, got k=%d shards=%d", cfg.K, cfg.Shards)
	}
	if cfg.Tenants <= 0 {
		return nil, errors.New("cached: tenant count must be positive")
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 64
	}
	if cfg.Quotas != nil {
		if len(cfg.Quotas) != cfg.Tenants {
			return nil, fmt.Errorf("cached: quota vector has %d entries for %d tenants", len(cfg.Quotas), cfg.Tenants)
		}
		sum := 0
		for t, q := range cfg.Quotas {
			if q < 0 {
				return nil, fmt.Errorf("cached: tenant %d has negative quota %d", t, q)
			}
			sum += q
		}
		if sum != cfg.K {
			return nil, fmt.Errorf("cached: quotas sum to %d, want K=%d", sum, cfg.K)
		}
		cfg.Quotas = append([]int(nil), cfg.Quotas...)
	} else {
		if cfg.NewPolicy == nil {
			return nil, errors.New("cached: NewPolicy is required")
		}
		probe := cfg.NewPolicy()
		if probe == nil {
			return nil, errors.New("cached: NewPolicy returned nil")
		}
		if _, offline := probe.(sim.OfflinePolicy); offline {
			return nil, fmt.Errorf("cached: policy %s needs the full trace in advance and cannot serve live traffic", probe.Name())
		}
		if cfg.Shards > 1 {
			if _, dense := probe.(sim.DensePolicy); !dense {
				return nil, fmt.Errorf("cached: policy %s does not support the dense engine required for sharded verify", probe.Name())
			}
		}
	}
	if cfg.MRC != nil {
		mc := *cfg.MRC
		mc.Tenants = cfg.Tenants
		mc.Scale = cfg.Shards
		if _, err := mrclive.NewSampler(mc); err != nil {
			return nil, fmt.Errorf("cached: mrc config: %w", err)
		}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Service{cfg: cfg, reg: reg, shards: make([]*shard, cfg.Shards)}
	s.mShardDown = reg.Counter("cached_shard_down_total")
	s.mShardRestarts = reg.Counter("cached_shard_restarts_total")
	s.mShed = reg.Counter("cached_shed_total")
	s.mWALErrors = reg.Counter("cached_wal_errors_total")
	s.mCheckpoints = reg.Counter("cached_checkpoints_total")
	var hasState bool
	if cfg.WAL != nil {
		w := *cfg.WAL
		if err := w.normalize(); err != nil {
			return nil, err
		}
		s.walCfg = &w
		if err := w.FS.MkdirAll(w.Dir); err != nil {
			return nil, fmt.Errorf("cached: create wal dir: %w", err)
		}
		for i := 0; i < cfg.Shards; i++ {
			dir := shardDirName(w.Dir, i)
			if err := w.FS.MkdirAll(dir); err != nil {
				return nil, fmt.Errorf("cached: create wal dir: %w", err)
			}
			segs, err := listSegments(w.FS, dir)
			if err != nil {
				return nil, fmt.Errorf("cached: list wal dir: %w", err)
			}
			if len(segs) > 0 {
				hasState = true
			}
		}
		if hasState && !w.Recover {
			return nil, fmt.Errorf("cached: wal directory %s holds existing state; enable Recover (-recover) to load it, or point at an empty directory", w.Dir)
		}
	}
	if cfg.Quotas != nil {
		s.quotas = append([]int(nil), cfg.Quotas...)
		s.mQuota = make([]*obs.Gauge, cfg.Tenants)
		for t := range s.mQuota {
			s.mQuota[t] = reg.Gauge(fmt.Sprintf(`cached_quota_pages{tenant="%d"}`, t))
			s.mQuota[t].Set(int64(s.quotas[t]))
		}
		s.mRebalances = reg.Counter("cached_rebalances_total")
	}
	if cfg.MRC != nil {
		s.mWindowReqs = make([]*obs.Gauge, cfg.Tenants)
		s.mMissRatioBP = make([]*obs.Gauge, cfg.Tenants)
		for t := range s.mWindowReqs {
			s.mWindowReqs[t] = reg.Gauge(fmt.Sprintf(`cached_mrc_window_requests{tenant="%d"}`, t))
			s.mMissRatioBP[t] = reg.Gauge(fmt.Sprintf(`cached_mrc_miss_ratio_bp{tenant="%d"}`, t))
		}
	}
	for i := range s.shards {
		s.shards[i] = newShard(s, i, sim.ShardShare(cfg.K, cfg.Shards, i))
	}
	if s.walCfg != nil {
		if hasState {
			rep := &RecoveryReport{Shards: cfg.Shards}
			for _, sh := range s.shards {
				if err := sh.recoverWAL(rep); err != nil {
					return nil, err
				}
			}
			s.seq.Store(rep.LastSeq)
			if cfg.Quotas != nil {
				if err := s.reconcileQuotas(); err != nil {
					return nil, err
				}
			}
			s.recovery = rep
		} else {
			for _, sh := range s.shards {
				if err := sh.wal.openFresh(); err != nil {
					return nil, err
				}
			}
		}
	}
	for i := range s.shards {
		s.wg.Add(1)
		go s.shards[i].loop()
	}
	return s, nil
}

// Recovery reports the startup recovery that produced this service's
// initial state, or nil when it started fresh.
func (s *Service) Recovery() *RecoveryReport { return s.recovery }

// Crash simulates kill -9 for tests and chaos drills: queued and future
// work is shed, shard loops exit WITHOUT the final WAL flush, fsync or
// checkpoint — whatever the OS already has is what recovery gets. Verify
// and Stats keep working on the frozen in-memory state, so tests can
// compare it against the recovered service.
func (s *Service) Crash() {
	s.crashed.Store(true)
	s.Close()
}

// Shards returns the shard count.
func (s *Service) Shards() int { return len(s.shards) }

// K returns the total capacity.
func (s *Service) K() int { return s.cfg.K }

// Registry returns the metrics registry the shards report into.
func (s *Service) Registry() *obs.Registry { return s.reg }

// route hashes (tenant, key) onto a shard: FNV-1a over the tenant id and the
// key bytes, finalized with a 64-bit mix so the low bits taken by the modulo
// are well distributed. Pure function — the same (tenant, key) always lands
// on the same shard, which is what makes per-shard page ownership stable.
func (s *Service) route(t trace.Tenant, key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(t)) * prime64
	for _, c := range key {
		h = (h ^ uint64(c)) * prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(s.shards)))
}

// shardOfPage is the replay-side routing function: shard s assigns page ids
// from the residue class {s, s+n, s+2n, ...}, so the owning shard of any
// logged page is recoverable as page mod n. Verify hands this to
// sim.BuildShardsBy so the offline partition reproduces the live one
// exactly.
func (s *Service) shardOfPage(p trace.PageID) int {
	return int(p) % len(s.shards)
}

// Apply serves a batch of requests and returns one result byte per request
// (ResultHit/ResultMiss/ResultError), in request order. Requests are
// validated, grouped per shard (preserving batch order within each shard)
// and dispatched to the shard mailboxes; the call returns when every shard
// has processed its part. Safe for concurrent use.
func (s *Service) Apply(reqs []Request) ([]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	results := make([]byte, len(reqs))
	n := len(s.shards)
	tenants := s.cfg.Tenants
	buckets := make([][]int32, n)
	if n == 1 {
		// Single shard: routing is the identity, and down (rebuilding after
		// a panic — shed instead of queuing behind a replay that can take
		// seconds; the caller sees ErrShardDown and retries with backoff)
		// is checked once for the batch, keeping the loop to validation and
		// an index append.
		down := s.shards[0].down.Load()
		idxs := make([]int32, 0, len(reqs))
		for i, r := range reqs {
			if r.Op != OpGet && r.Op != OpPut {
				return nil, fmt.Errorf("cached: request %d: unknown op %q", i, r.Op)
			}
			if r.Tenant < 0 || int(r.Tenant) >= tenants {
				return nil, fmt.Errorf("cached: request %d: tenant %d out of range [0,%d)", i, r.Tenant, tenants)
			}
			if len(r.Key) == 0 {
				return nil, fmt.Errorf("cached: request %d: empty key", i)
			}
			if down {
				results[i] = ResultShed
			} else {
				idxs = append(idxs, int32(i))
			}
		}
		buckets[0] = idxs
	} else {
		// Route in a first pass, then carve per-shard buckets out of one
		// backing array sized exactly — growing each bucket by append
		// reallocated several times per batch and dominated the allocation
		// profile of the live path.
		shardOf := make([]int32, len(reqs))
		counts := make([]int, n)
		for i, r := range reqs {
			if r.Op != OpGet && r.Op != OpPut {
				return nil, fmt.Errorf("cached: request %d: unknown op %q", i, r.Op)
			}
			if r.Tenant < 0 || int(r.Tenant) >= tenants {
				return nil, fmt.Errorf("cached: request %d: tenant %d out of range [0,%d)", i, r.Tenant, tenants)
			}
			if len(r.Key) == 0 {
				return nil, fmt.Errorf("cached: request %d: empty key", i)
			}
			sh := s.route(r.Tenant, r.Key)
			if s.shards[sh].down.Load() {
				results[i] = ResultShed
				shardOf[i] = -1
				continue
			}
			shardOf[i] = int32(sh)
			counts[sh]++
		}
		backing := make([]int32, 0, len(reqs))
		off := 0
		for sh, c := range counts {
			if c > 0 {
				buckets[sh] = backing[off : off : off+c]
				off += c
			}
		}
		for i := range reqs {
			if sh := shardOf[i]; sh >= 0 {
				buckets[sh] = append(buckets[sh], int32(i))
			}
		}
	}
	var wg sync.WaitGroup
	// The RLock pins closed=false while the sends happen: Close closes the
	// mailboxes only under the write lock, so a send here can never hit a
	// closed channel. A blocked send cannot deadlock Close either — shards
	// keep draining their mailboxes until Close (which is still waiting for
	// this RLock) closes them.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	for sh, b := range buckets {
		if len(b) == 0 {
			continue
		}
		wg.Add(1)
		s.shards[sh].in <- shardMsg{reqs: reqs, idxs: b, results: results, done: &wg}
	}
	s.mu.RUnlock()
	wg.Wait()
	shed := int64(0)
	failed := false
	for _, c := range results {
		switch c {
		case ResultError:
			failed = true
		case ResultShed:
			shed++
		}
	}
	if shed > 0 {
		s.mShed.Add(shed)
	}
	if failed {
		if err := s.Err(); err != nil {
			return results, err
		}
		return results, errors.New("cached: request failed")
	}
	if shed > 0 {
		return results, ErrShardDown
	}
	return results, nil
}

// Err returns the first shard failure (a policy contract violation), or nil.
// A failed shard answers ResultError to every subsequent request; the
// service stays up so the operator can inspect state and logs.
func (s *Service) Err() error {
	for _, snap := range s.snapshotAll(false, false) {
		if snap.Err != nil {
			return snap.Err
		}
	}
	return nil
}

// Close drains the shard mailboxes and stops the shard goroutines. Apply
// returns ErrClosed afterwards; Verify and Stats keep working on the frozen
// state (the shutdown hook of cmd/cached relies on that). Safe to call more
// than once.
func (s *Service) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, sh := range s.shards {
			close(sh.in)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// snapshotAll collects a consistent snapshot from every shard: through the
// mailboxes while serving (so each snapshot sits on a batch boundary), or by
// direct read once the shard goroutines have exited.
//
// The live path takes the WRITE lock while enqueuing the snapshot messages.
// That is the sequencing barrier that makes a multi-shard snapshot atomic
// with respect to in-flight Apply calls: Apply holds the read lock across
// ALL of its per-shard mailbox sends, so under the write lock every
// concurrent batch is either fully enqueued ahead of the snapshot message
// in every shard's mailbox, or fully behind it in every shard's mailbox.
// Without the exclusive section a batch could land before the snapshot on
// one shard and after it on another, and a stats read racing a batch would
// report hits+misses ≠ requests for that batch's tenant. The lock covers
// only the enqueues — the snapshots themselves are produced by the shard
// loops afterwards, and mailbox sends cannot deadlock because shards drain
// independently of the service lock.
func (s *Service) snapshotAll(withLog, withMRC bool) []*ShardSnapshot {
	s.mu.Lock()
	if !s.closed {
		chs := make([]chan *ShardSnapshot, len(s.shards))
		for i, sh := range s.shards {
			chs[i] = make(chan *ShardSnapshot, 1)
			sh.in <- shardMsg{snap: chs[i], withLog: withLog, withMRC: withMRC}
		}
		s.mu.Unlock()
		out := make([]*ShardSnapshot, len(s.shards))
		for i := range chs {
			out[i] = <-chs[i]
		}
		return out
	}
	s.mu.Unlock()
	// Closed: wg.Wait establishes happens-before with every shard loop
	// exit, after which the single-writer state is safe to read directly.
	s.wg.Wait()
	out := make([]*ShardSnapshot, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.snapshot(withLog, withMRC)
	}
	return out
}

// TenantStats is the per-tenant slice of a Stats report.
type TenantStats struct {
	Tenant    int   `json:"tenant"`
	Requests  int64 `json:"requests"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// ShardStats is the per-shard slice of a Stats report.
type ShardStats struct {
	Shard     int   `json:"shard"`
	K         int   `json:"k"`
	Requests  int64 `json:"requests"`
	Occupancy int   `json:"occupancy"`
	// LogStart is the sealed (on-disk) log prefix length; LogLen the
	// in-memory tail. LogStart+LogLen is the full history.
	LogStart int `json:"log_start,omitempty"`
	LogLen   int `json:"log_len"`
	// Seg is the active WAL segment index (0 without a WAL).
	Seg    int  `json:"wal_segment,omitempty"`
	Pages  int  `json:"pages"`
	Down   bool `json:"down,omitempty"`
	Failed bool `json:"failed,omitempty"`
}

// Stats is the live accounting of the service.
type Stats struct {
	Requests  int64         `json:"requests"`
	Hits      int64         `json:"hits"`
	Misses    int64         `json:"misses"`
	Evictions int64         `json:"evictions"`
	PerTenant []TenantStats `json:"per_tenant"`
	Shards    []ShardStats  `json:"shards"`
	// Quotas is the current global per-tenant quota vector; nil outside
	// partition mode.
	Quotas []int `json:"quotas,omitempty"`
}

// Stats aggregates a consistent per-shard snapshot into the live counters.
func (s *Service) Stats() Stats {
	snaps := s.snapshotAll(false, false)
	st := Stats{PerTenant: make([]TenantStats, s.cfg.Tenants), Quotas: s.Quotas()}
	for i := range st.PerTenant {
		st.PerTenant[i].Tenant = i
	}
	for _, snap := range snaps {
		st.Shards = append(st.Shards, ShardStats{
			Shard:     snap.Shard,
			K:         snap.K,
			Requests:  snap.Requests,
			Occupancy: snap.Occupancy,
			LogStart:  snap.LogStart,
			LogLen:    snap.LogLen,
			Seg:       snap.Seg,
			Pages:     snap.Pages,
			Down:      snap.Down,
			Failed:    snap.Err != nil,
		})
		for t := 0; t < s.cfg.Tenants; t++ {
			st.PerTenant[t].Hits += snap.Hits[t]
			st.PerTenant[t].Misses += snap.Misses[t]
			st.PerTenant[t].Evictions += snap.Evictions[t]
			st.PerTenant[t].Requests += snap.Hits[t] + snap.Misses[t]
		}
	}
	for _, ts := range st.PerTenant {
		st.Requests += ts.Requests
		st.Hits += ts.Hits
		st.Misses += ts.Misses
		st.Evictions += ts.Evictions
	}
	return st
}

// Quotas returns the current global per-tenant quota vector, or nil outside
// partition mode.
func (s *Service) Quotas() []int {
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	if s.quotas == nil {
		return nil
	}
	return append([]int(nil), s.quotas...)
}

// SetQuotas installs a new global quota vector (partition mode only): each
// shard receives a control message, logs it at its own sequence position
// and re-derives its local shares, trimming shrinking tenants. The call
// returns once every shard has applied the change. Quota installation is
// not atomic across shards — each shard switches at its own log position —
// but per-shard replay exactness is unaffected, because each shard logs
// exactly where it switched.
func (s *Service) SetQuotas(quotas []int) error {
	if s.cfg.Quotas == nil {
		return errors.New("cached: SetQuotas requires partition mode (Config.Quotas)")
	}
	if len(quotas) != s.cfg.Tenants {
		return fmt.Errorf("cached: quota vector has %d entries for %d tenants", len(quotas), s.cfg.Tenants)
	}
	sum := 0
	for t, q := range quotas {
		if q < 0 {
			return fmt.Errorf("cached: tenant %d has negative quota %d", t, q)
		}
		sum += q
	}
	if sum != s.cfg.K {
		return fmt.Errorf("cached: quotas sum to %d, want K=%d", sum, s.cfg.K)
	}
	// quotaMu serializes concurrent quota dispatches so every shard sees
	// the same sequence of control messages.
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	var wg sync.WaitGroup
	q := append([]int(nil), quotas...)
	for _, sh := range s.shards {
		wg.Add(1)
		sh.in <- shardMsg{quotas: q, quotasDone: &wg}
	}
	s.mu.RUnlock()
	wg.Wait()
	s.quotas = q
	for t, g := range s.mQuota {
		g.Set(int64(q[t]))
	}
	return nil
}

// MRCLive is the merged streaming estimator state: per-tenant window
// miss-ratio curves plus the quota vector they inform.
type MRCLive struct {
	// MaxSize is the largest estimated capacity; curves cover 1..MaxSize.
	MaxSize int `json:"max_size"`
	// Rate is the SHARDS sampling rate.
	Rate float64 `json:"rate"`
	// WindowRequests counts all tenants' window requests.
	WindowRequests int64 `json:"window_requests"`
	// Quotas is the current per-tenant split; nil outside partition mode.
	Quotas []int `json:"quotas,omitempty"`
	// Tenants holds one merged curve per tenant.
	Tenants []mrclive.TenantCurve `json:"tenants"`
}

// MRCLive snapshots every shard's sampler on a batch boundary and merges
// the windows into per-tenant curves (the /v1/mrc/live payload). Also
// refreshes the estimator gauges: window requests and the predicted miss
// ratio at each tenant's current capacity share.
func (s *Service) MRCLive() (*MRCLive, error) {
	if s.cfg.MRC == nil {
		return nil, errors.New("cached: MRC estimator not configured")
	}
	mc := s.shards[0].sampler.Config()
	snaps := s.snapshotAll(false, true)
	wins := make([][]mrclive.TenantWindow, 0, len(snaps))
	for _, snap := range snaps {
		if snap.MRC != nil {
			wins = append(wins, snap.MRC)
		}
	}
	out := &MRCLive{
		MaxSize: mc.MaxSize,
		Rate:    mc.Rate,
		Quotas:  s.Quotas(),
		Tenants: mrclive.Merge(wins, s.cfg.Tenants, mc.MaxSize, mc.Rate, mc.Scale),
	}
	for t := range out.Tenants {
		out.WindowRequests += out.Tenants[t].Requests
	}
	if s.mWindowReqs != nil {
		for t, c := range out.Tenants {
			share := s.cfg.K / s.cfg.Tenants
			if out.Quotas != nil {
				share = out.Quotas[t]
			}
			s.mWindowReqs[t].Set(c.Requests)
			s.mMissRatioBP[t].Set(int64(c.MissRatioAt(share) * 10000))
		}
	}
	return out, nil
}

// RebalanceOnce runs one controller step: merge the live curves, weight
// each tenant by its marginal cost at the current total misses, plan a new
// split with mrclive.Controller (floors from Config.ReserveFloor) and
// install it if it differs from the current one. Returns the (possibly
// unchanged) split and whether it changed.
func (s *Service) RebalanceOnce() ([]int, bool, error) {
	if s.cfg.Quotas == nil {
		return nil, false, errors.New("cached: rebalancing requires partition mode (Config.Quotas)")
	}
	live, err := s.MRCLive()
	if err != nil {
		return nil, false, err
	}
	st := s.Stats()
	totalMisses := make([]int64, s.cfg.Tenants)
	for t := range st.PerTenant {
		totalMisses[t] = st.PerTenant[t].Misses
	}
	cur := s.Quotas()
	ctl := mrclive.Controller{K: s.cfg.K, Costs: s.cfg.Costs, Floor: s.cfg.ReserveFloor}
	plan, err := ctl.Plan(cur, live.Tenants, totalMisses)
	if err != nil {
		return nil, false, err
	}
	changed := false
	for t := range plan {
		if plan[t] != cur[t] {
			changed = true
			break
		}
	}
	if !changed {
		return plan, false, nil
	}
	if err := s.SetQuotas(plan); err != nil {
		return nil, false, err
	}
	s.mRebalances.Inc()
	return plan, true, nil
}
