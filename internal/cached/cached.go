// Package cached is the live cache service of the repo: it applies the
// paper's online algorithm (or any deterministic eviction policy) to live
// GET/PUT traffic instead of replaying a recorded trace.
//
// Architecture: N shards, each a single-writer goroutine owning a private
// engine — residency map, policy instance, per-tenant counters and an
// append-only request log. Requests are hash-routed to shards over per-shard
// mailbox channels, so the hot path takes no locks: the only shared state a
// request touches is its shard's mailbox and one global atomic sequence
// counter. Capacity K is split across shards with sim.ShardShare, the same
// split the offline sharded replay uses.
//
// The service is differentially checkable against the simulator: every shard
// logs the requests it admitted (in processing order, stamped with a global
// sequence number), and Verify replays the merged log through sim.Run (one
// shard) or sim.BuildShardsBy + ShardPlan.Run (N shards, with the live
// router's exact page partition) and diffs the per-tenant hit/miss/eviction
// counters bit for bit. Because the convex objective Σ f_i(misses_i) is
// separable per tenant and every page lives on exactly one shard, the live
// partitioned cache and the offline partitioned replay must agree exactly —
// any divergence is a bug, not noise. See DESIGN.md §6h for the full
// correctness argument.
package cached

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"convexcache/internal/obs"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Op is the request verb. GET and PUT have identical residency semantics
// (write-allocate: both demand the page resident, missing fetches it); they
// differ only in intent and metrics, so the request log needs no op column
// and replay is op-agnostic.
type Op byte

const (
	// OpGet reads a key.
	OpGet Op = 'G'
	// OpPut writes a key.
	OpPut Op = 'P'
)

// Request is one live cache operation.
type Request struct {
	// Op is the verb.
	Op Op
	// Tenant is the requesting tenant; must be in [0, Config.Tenants).
	Tenant trace.Tenant
	// Key is the tenant-scoped cache key (two tenants may use the same key
	// for distinct pages). Must be non-empty.
	Key []byte
}

// Result bytes of Apply, one per request.
const (
	// ResultHit: the key was resident.
	ResultHit = 'H'
	// ResultMiss: the key was fetched (and inserted, evicting if needed).
	ResultMiss = 'M'
	// ResultError: the request's shard is failed (see Service.Err).
	ResultError = 'E'
)

// Config sizes the service.
type Config struct {
	// K is the total cache capacity in pages; split across shards with
	// sim.ShardShare. Must be >= Shards.
	K int
	// Shards is the shard count; <= 0 selects 1.
	Shards int
	// Tenants is the tenant universe size; requests for tenants outside
	// [0, Tenants) are rejected at ingress.
	Tenants int
	// NewPolicy builds a fresh eviction-policy instance. Instances must be
	// deterministic and mutually independent: each shard gets one at
	// startup, and Verify builds fresh ones for the offline replay. With
	// Shards > 1 the policy must support the dense engine
	// (sim.DensePolicy), because the replay runs sharded.
	NewPolicy func() sim.Policy
	// MailboxDepth is the per-shard channel buffer; <= 0 selects 64.
	MailboxDepth int
	// Registry receives the per-shard metrics; nil creates a private one.
	Registry *obs.Registry
}

// ErrClosed is returned by Apply after Close.
var ErrClosed = errors.New("cached: service closed")

// Service is the live sharded cache. Create with New, drive with Apply (or
// the HTTP handler), check with Verify, stop with Close.
type Service struct {
	cfg    Config
	reg    *obs.Registry
	shards []*shard
	// seq stamps every admitted request with a globally unique, per-shard
	// monotone sequence number; Verify merges the shard logs by it.
	seq atomic.Int64

	// mu guards closed against concurrent Apply/Verify/Close; shard state
	// itself is single-writer and never locked.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// New validates the configuration, starts the shard goroutines and returns
// the service.
func New(cfg Config) (*Service, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.K <= 0 {
		return nil, errors.New("cached: cache size must be positive")
	}
	if cfg.K < cfg.Shards {
		return nil, fmt.Errorf("cached: need k >= shards, got k=%d shards=%d", cfg.K, cfg.Shards)
	}
	if cfg.Tenants <= 0 {
		return nil, errors.New("cached: tenant count must be positive")
	}
	if cfg.NewPolicy == nil {
		return nil, errors.New("cached: NewPolicy is required")
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 64
	}
	probe := cfg.NewPolicy()
	if probe == nil {
		return nil, errors.New("cached: NewPolicy returned nil")
	}
	if _, offline := probe.(sim.OfflinePolicy); offline {
		return nil, fmt.Errorf("cached: policy %s needs the full trace in advance and cannot serve live traffic", probe.Name())
	}
	if cfg.Shards > 1 {
		if _, dense := probe.(sim.DensePolicy); !dense {
			return nil, fmt.Errorf("cached: policy %s does not support the dense engine required for sharded verify", probe.Name())
		}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Service{cfg: cfg, reg: reg, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = newShard(s, i, sim.ShardShare(cfg.K, cfg.Shards, i))
		s.wg.Add(1)
		go s.shards[i].loop()
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Service) Shards() int { return len(s.shards) }

// K returns the total capacity.
func (s *Service) K() int { return s.cfg.K }

// Registry returns the metrics registry the shards report into.
func (s *Service) Registry() *obs.Registry { return s.reg }

// route hashes (tenant, key) onto a shard: FNV-1a over the tenant id and the
// key bytes, finalized with a 64-bit mix so the low bits taken by the modulo
// are well distributed. Pure function — the same (tenant, key) always lands
// on the same shard, which is what makes per-shard page ownership stable.
func (s *Service) route(t trace.Tenant, key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(t)) * prime64
	for _, c := range key {
		h = (h ^ uint64(c)) * prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(s.shards)))
}

// shardOfPage is the replay-side routing function: shard s assigns page ids
// from the residue class {s, s+n, s+2n, ...}, so the owning shard of any
// logged page is recoverable as page mod n. Verify hands this to
// sim.BuildShardsBy so the offline partition reproduces the live one
// exactly.
func (s *Service) shardOfPage(p trace.PageID) int {
	return int(p) % len(s.shards)
}

// Apply serves a batch of requests and returns one result byte per request
// (ResultHit/ResultMiss/ResultError), in request order. Requests are
// validated, grouped per shard (preserving batch order within each shard)
// and dispatched to the shard mailboxes; the call returns when every shard
// has processed its part. Safe for concurrent use.
func (s *Service) Apply(reqs []Request) ([]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	results := make([]byte, len(reqs))
	buckets := make([][]shardReq, len(s.shards))
	for i, r := range reqs {
		if r.Op != OpGet && r.Op != OpPut {
			return nil, fmt.Errorf("cached: request %d: unknown op %q", i, r.Op)
		}
		if r.Tenant < 0 || int(r.Tenant) >= s.cfg.Tenants {
			return nil, fmt.Errorf("cached: request %d: tenant %d out of range [0,%d)", i, r.Tenant, s.cfg.Tenants)
		}
		if len(r.Key) == 0 {
			return nil, fmt.Errorf("cached: request %d: empty key", i)
		}
		sh := s.route(r.Tenant, r.Key)
		buckets[sh] = append(buckets[sh], shardReq{idx: i, op: r.Op, tenant: r.Tenant, key: r.Key})
	}
	var wg sync.WaitGroup
	// The RLock pins closed=false while the sends happen: Close closes the
	// mailboxes only under the write lock, so a send here can never hit a
	// closed channel. A blocked send cannot deadlock Close either — shards
	// keep draining their mailboxes until Close (which is still waiting for
	// this RLock) closes them.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	for sh, b := range buckets {
		if len(b) == 0 {
			continue
		}
		wg.Add(1)
		s.shards[sh].in <- shardMsg{batch: b, results: results, done: &wg}
	}
	s.mu.RUnlock()
	wg.Wait()
	for _, c := range results {
		if c == ResultError {
			return results, s.Err()
		}
	}
	return results, nil
}

// Err returns the first shard failure (a policy contract violation), or nil.
// A failed shard answers ResultError to every subsequent request; the
// service stays up so the operator can inspect state and logs.
func (s *Service) Err() error {
	for _, snap := range s.snapshotAll(false) {
		if snap.Err != nil {
			return snap.Err
		}
	}
	return nil
}

// Close drains the shard mailboxes and stops the shard goroutines. Apply
// returns ErrClosed afterwards; Verify and Stats keep working on the frozen
// state (the shutdown hook of cmd/cached relies on that). Safe to call more
// than once.
func (s *Service) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, sh := range s.shards {
			close(sh.in)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// snapshotAll collects a consistent snapshot from every shard: through the
// mailboxes while serving (so each snapshot sits on a batch boundary), or by
// direct read once the shard goroutines have exited.
func (s *Service) snapshotAll(withLog bool) []*ShardSnapshot {
	s.mu.RLock()
	if !s.closed {
		chs := make([]chan *ShardSnapshot, len(s.shards))
		for i, sh := range s.shards {
			chs[i] = make(chan *ShardSnapshot, 1)
			sh.in <- shardMsg{snap: chs[i], withLog: withLog}
		}
		s.mu.RUnlock()
		out := make([]*ShardSnapshot, len(s.shards))
		for i := range chs {
			out[i] = <-chs[i]
		}
		return out
	}
	s.mu.RUnlock()
	// Closed: wg.Wait establishes happens-before with every shard loop
	// exit, after which the single-writer state is safe to read directly.
	s.wg.Wait()
	out := make([]*ShardSnapshot, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.snapshot(withLog)
	}
	return out
}

// TenantStats is the per-tenant slice of a Stats report.
type TenantStats struct {
	Tenant    int   `json:"tenant"`
	Requests  int64 `json:"requests"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// ShardStats is the per-shard slice of a Stats report.
type ShardStats struct {
	Shard     int   `json:"shard"`
	K         int   `json:"k"`
	Requests  int64 `json:"requests"`
	Occupancy int   `json:"occupancy"`
	LogLen    int   `json:"log_len"`
	Pages     int   `json:"pages"`
	Failed    bool  `json:"failed,omitempty"`
}

// Stats is the live accounting of the service.
type Stats struct {
	Requests  int64         `json:"requests"`
	Hits      int64         `json:"hits"`
	Misses    int64         `json:"misses"`
	Evictions int64         `json:"evictions"`
	PerTenant []TenantStats `json:"per_tenant"`
	Shards    []ShardStats  `json:"shards"`
}

// Stats aggregates a consistent per-shard snapshot into the live counters.
func (s *Service) Stats() Stats {
	snaps := s.snapshotAll(false)
	st := Stats{PerTenant: make([]TenantStats, s.cfg.Tenants)}
	for i := range st.PerTenant {
		st.PerTenant[i].Tenant = i
	}
	for _, snap := range snaps {
		st.Shards = append(st.Shards, ShardStats{
			Shard:     snap.Shard,
			K:         snap.K,
			Requests:  snap.Requests,
			Occupancy: snap.Occupancy,
			LogLen:    snap.LogLen,
			Pages:     snap.Pages,
			Failed:    snap.Err != nil,
		})
		for t := 0; t < s.cfg.Tenants; t++ {
			st.PerTenant[t].Hits += snap.Hits[t]
			st.PerTenant[t].Misses += snap.Misses[t]
			st.PerTenant[t].Evictions += snap.Evictions[t]
			st.PerTenant[t].Requests += snap.Hits[t] + snap.Misses[t]
		}
	}
	for _, ts := range st.PerTenant {
		st.Requests += ts.Requests
		st.Hits += ts.Hits
		st.Misses += ts.Misses
		st.Evictions += ts.Evictions
	}
	return st
}
