package cached

import (
	"context"
	"fmt"
	"path"
	"time"

	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Counters is one side (live or replay) of a verify report: per-tenant
// accounting plus totals. Slices have length Config.Tenants.
type Counters struct {
	Requests  []int64 `json:"requests"`
	Hits      []int64 `json:"hits"`
	Misses    []int64 `json:"misses"`
	Evictions []int64 `json:"evictions"`

	TotalHits      int64 `json:"total_hits"`
	TotalMisses    int64 `json:"total_misses"`
	TotalEvictions int64 `json:"total_evictions"`
}

// VerifyReport is the outcome of one live-vs-replay differential: the merged
// request log replayed offline against the live counters. Clean means every
// per-tenant counter matched exactly; Diffs lists each mismatch.
type VerifyReport struct {
	Policy    string        `json:"policy"`
	K         int           `json:"k"`
	Shards    int           `json:"shards"`
	Requests  int           `json:"requests"`
	Live      Counters      `json:"live"`
	Replay    Counters      `json:"replay"`
	Diffs     []string      `json:"diffs,omitempty"`
	Clean     bool          `json:"clean"`
	ReplayDur time.Duration `json:"replay_ns"`
}

// Verify snapshots every shard (on a batch boundary — safe under live
// traffic), merges the per-shard request logs by global sequence number into
// one trace, replays it offline and diffs the per-tenant counters exactly.
//
// The replay uses the same partitioned model as the live service: with one
// shard it is sim.Run on the merged log; with n shards it is a
// sim.BuildShardsBy plan routed by page mod n — precisely the partition the
// live shards produced, since shard s only ever assigns page ids ≡ s (mod
// n). Any nonzero diff is a bug in the live path (or the simulator), never
// an artifact of concurrency: per-shard logs are the ground truth of what
// each single-writer engine saw, in order.
func (s *Service) Verify(ctx context.Context) (*VerifyReport, error) {
	snaps := s.snapshotAll(true, false)
	for _, snap := range snaps {
		if snap.Err != nil {
			return nil, fmt.Errorf("cached: shard %d failed, log unreliable: %w", snap.Shard, snap.Err)
		}
	}
	n := len(s.shards)
	rep := &VerifyReport{
		Policy: s.engineName(),
		K:      s.cfg.K,
		Shards: n,
	}
	rep.Live = liveCounters(snaps, s.cfg.Tenants)
	if s.cfg.Quotas != nil {
		return s.verifyPartition(ctx, snaps, rep)
	}

	merged, err := s.mergeFullLogs(ctx, snaps)
	if err != nil {
		return nil, err
	}
	rep.Requests = len(merged)
	if len(merged) == 0 {
		rep.Replay = emptyCounters(s.cfg.Tenants)
		rep.Clean = true
		return rep, nil
	}

	b := trace.NewBuilder()
	for _, e := range merged {
		b.Add(e.Tenant, e.Page)
	}
	tr, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cached: rebuilding trace from request log: %w", err)
	}

	start := time.Now()
	var res sim.Result
	if n == 1 {
		res, err = sim.RunContext(ctx, tr, s.cfg.NewPolicy(), sim.Config{K: s.cfg.K})
	} else {
		var pl *sim.ShardPlan
		pl, err = sim.BuildShardsBy(tr, n, s.shardOfPage)
		if err == nil {
			res, err = pl.Run(ctx, s.cfg.NewPolicy, sim.Config{K: s.cfg.K, Engine: sim.EngineDense}, n)
		}
	}
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("cached: verify aborted: %w", ctx.Err())
		}
		return nil, fmt.Errorf("cached: replaying request log: %w", err)
	}
	rep.ReplayDur = time.Since(start)

	rep.Replay = replayCounters(merged, res, s.cfg.Tenants)
	rep.Diffs = diffCounters(rep.Live, rep.Replay, s.cfg.Tenants)
	rep.Clean = len(rep.Diffs) == 0
	return rep, nil
}

// engineName labels the verify report with the active engine.
func (s *Service) engineName() string {
	if s.cfg.Quotas != nil {
		return "quota-partition"
	}
	return s.shards[0].policy.Name()
}

// verifyPartition is the partition-mode differential: every page lives on
// exactly one shard and every tenant's quota is served per shard, so each
// shard's log replays independently through a fresh quotaLRU — the same
// deterministic engine the live loop ran, including quota-change control
// entries re-applied at their logged positions. The replay must reproduce
// the live counters bit for bit; no cross-shard merge is needed (the merge
// would only interleave independent sub-histories).
func (s *Service) verifyPartition(ctx context.Context, snaps []*ShardSnapshot, rep *VerifyReport) (*VerifyReport, error) {
	start := time.Now()
	replay := emptyCounters(s.cfg.Tenants)
	n := len(s.shards)
	for _, snap := range snaps {
		q := newQuotaLRU(localQuotas(s.cfg.Quotas, n, snap.Shard), n, snap.Shard)
		lastSeq := int64(-1)
		i := 0
		step := func(e LogEntry) error {
			if i%65536 == 0 && ctx.Err() != nil {
				return fmt.Errorf("cached: verify aborted: %w", ctx.Err())
			}
			if e.Seq <= lastSeq {
				return fmt.Errorf("cached: shard %d log entry %d: seq %d not increasing (prev %d)",
					snap.Shard, i, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			i++
			if e.Quotas != nil {
				for t, ev := range q.SetQuotas(localQuotas(e.Quotas, n, snap.Shard)) {
					replay.Evictions[t] += int64(ev)
				}
				return nil
			}
			rep.Requests++
			replay.Requests[e.Tenant]++
			hit, evicted := q.Access(e.Tenant, e.Page)
			if hit {
				replay.Hits[e.Tenant]++
			} else {
				replay.Misses[e.Tenant]++
			}
			if evicted {
				replay.Evictions[e.Tenant]++
			}
			return nil
		}
		// Sealed WAL segments stream from disk (they are immutable once
		// rotated, so this is safe under live traffic), then the in-memory
		// tail — together the shard's complete history.
		if err := s.sealedEntries(ctx, snap, step); err != nil {
			return nil, err
		}
		for _, e := range snap.Log {
			if err := step(e); err != nil {
				return nil, err
			}
		}
	}
	replay.total()
	rep.ReplayDur = time.Since(start)
	rep.Replay = replay
	rep.Diffs = diffCounters(rep.Live, replay, s.cfg.Tenants)
	rep.Clean = len(rep.Diffs) == 0
	return rep, nil
}

// sealedEntries streams the sealed (pre-tail) portion of one shard's log
// from its WAL segments, in order, invoking fn per entry. Segments below
// the snapshot's active index are sealed and immutable, so reading them
// concurrently with live writes is safe; the entry count must come out at
// exactly snap.LogStart or the history is incomplete.
func (s *Service) sealedEntries(ctx context.Context, snap *ShardSnapshot, fn func(LogEntry) error) error {
	if snap.LogStart == 0 {
		return nil
	}
	if s.walCfg == nil {
		return fmt.Errorf("cached: shard %d log starts at %d with no WAL to stream the prefix from", snap.Shard, snap.LogStart)
	}
	dir := shardDirName(s.walCfg.Dir, snap.Shard)
	count := 0
	for idx := 0; idx < snap.Seg; idx++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cached: verify aborted: %w", err)
		}
		rc, err := s.walCfg.FS.Open(path.Join(dir, segName(idx)))
		if err != nil {
			return fmt.Errorf("cached: shard %d: open sealed segment %d: %w", snap.Shard, idx, err)
		}
		_, torn, serr := scanSegment(rc, func(rec walRecord) error {
			if rec.kind == recHeader {
				return nil
			}
			if count >= snap.LogStart {
				return fmt.Errorf("cached: shard %d: sealed segments hold more than %d entries", snap.Shard, snap.LogStart)
			}
			count++
			return fn(rec.entry)
		})
		rc.Close()
		if serr != nil {
			return serr
		}
		if torn {
			return fmt.Errorf("cached: shard %d: sealed segment %d has a torn tail", snap.Shard, idx)
		}
	}
	if count != snap.LogStart {
		return fmt.Errorf("cached: shard %d: sealed segments hold %d entries, snapshot expects %d", snap.Shard, count, snap.LogStart)
	}
	return nil
}

// mergeFullLogs reconstructs every shard's complete log (sealed prefix from
// disk plus in-memory tail) and k-way merges them by sequence number.
func (s *Service) mergeFullLogs(ctx context.Context, snaps []*ShardSnapshot) ([]LogEntry, error) {
	full := make([]*ShardSnapshot, len(snaps))
	for i, snap := range snaps {
		if snap.LogStart == 0 {
			full[i] = snap
			continue
		}
		entries := make([]LogEntry, 0, snap.LogStart+len(snap.Log))
		if err := s.sealedEntries(ctx, snap, func(e LogEntry) error {
			entries = append(entries, e)
			return nil
		}); err != nil {
			return nil, err
		}
		entries = append(entries, snap.Log...)
		full[i] = &ShardSnapshot{Shard: snap.Shard, Log: entries}
	}
	return mergeLogs(full), nil
}

// mergeLogs k-way-merges the per-shard logs by sequence number. Each shard's
// log is strictly increasing in Seq (sequence numbers are drawn from the
// global atomic inside the single-writer loop), so the merge reconstructs a
// valid global admission order.
func mergeLogs(snaps []*ShardSnapshot) []LogEntry {
	total := 0
	for _, snap := range snaps {
		total += len(snap.Log)
	}
	merged := make([]LogEntry, 0, total)
	heads := make([]int, len(snaps))
	for len(merged) < total {
		best := -1
		for i, snap := range snaps {
			if heads[i] >= len(snap.Log) {
				continue
			}
			if best < 0 || snap.Log[heads[i]].Seq < snaps[best].Log[heads[best]].Seq {
				best = i
			}
		}
		merged = append(merged, snaps[best].Log[heads[best]])
		heads[best]++
	}
	return merged
}

func emptyCounters(tenants int) Counters {
	return Counters{
		Requests:  make([]int64, tenants),
		Hits:      make([]int64, tenants),
		Misses:    make([]int64, tenants),
		Evictions: make([]int64, tenants),
	}
}

// liveCounters sums the per-shard snapshots.
func liveCounters(snaps []*ShardSnapshot, tenants int) Counters {
	c := emptyCounters(tenants)
	for _, snap := range snaps {
		for t := 0; t < tenants; t++ {
			c.Hits[t] += snap.Hits[t]
			c.Misses[t] += snap.Misses[t]
			c.Evictions[t] += snap.Evictions[t]
			c.Requests[t] += snap.Hits[t] + snap.Misses[t]
		}
	}
	c.total()
	return c
}

// replayCounters shapes a sim.Result into Counters. The simulator reports
// per-tenant misses and evictions plus total hits; per-tenant hits follow as
// requests − misses. Result slices are sized by the log's tenant universe,
// which may be narrower than the configured one if some tenants never sent
// a request — the tail stays zero.
func replayCounters(merged []LogEntry, res sim.Result, tenants int) Counters {
	c := emptyCounters(tenants)
	for _, e := range merged {
		c.Requests[e.Tenant]++
	}
	for t, m := range res.Misses {
		c.Misses[t] = m
		c.Hits[t] = c.Requests[t] - m
	}
	for t, ev := range res.Evictions {
		c.Evictions[t] = ev
	}
	c.total()
	return c
}

func (c *Counters) total() {
	c.TotalHits, c.TotalMisses, c.TotalEvictions = 0, 0, 0
	for t := range c.Hits {
		c.TotalHits += c.Hits[t]
		c.TotalMisses += c.Misses[t]
		c.TotalEvictions += c.Evictions[t]
	}
}

// diffCounters reports every per-tenant mismatch between live and replay.
func diffCounters(live, replay Counters, tenants int) []string {
	var diffs []string
	add := func(t int, what string, l, r int64) {
		if l != r {
			diffs = append(diffs, fmt.Sprintf("tenant %d: %s live=%d replay=%d", t, what, l, r))
		}
	}
	for t := 0; t < tenants; t++ {
		add(t, "requests", live.Requests[t], replay.Requests[t])
		add(t, "hits", live.Hits[t], replay.Hits[t])
		add(t, "misses", live.Misses[t], replay.Misses[t])
		add(t, "evictions", live.Evictions[t], replay.Evictions[t])
	}
	return diffs
}
