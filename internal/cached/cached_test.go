package cached

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// testPolicy builds a fresh ALG-DISCRETE instance with mixed convex costs —
// the paper's algorithm, the policy cmd/cached serves by default.
func testPolicy() sim.Policy {
	f1, err := costfn.Parse("monomial:1,2")
	if err != nil {
		panic(err)
	}
	f2, err := costfn.Parse("linear:3")
	if err != nil {
		panic(err)
	}
	f3, err := costfn.Parse("monomial:0.5,1.5")
	if err != nil {
		panic(err)
	}
	return core.NewFast(core.Options{Costs: []costfn.Func{f1, f2, f3}})
}

// genRequests builds a seeded multi-tenant workload: each tenant draws keys
// from its own Zipf-ish popularity ranking, tenants are picked i.i.d. with
// skewed rates, ops alternate pseudo-randomly between GET and PUT.
func genRequests(seed int64, tenants, keysPerTenant, n int) []Request {
	rng := rand.New(rand.NewSource(seed))
	zipf := make([]*rand.Zipf, tenants)
	for t := range zipf {
		zipf[t] = rand.NewZipf(rand.New(rand.NewSource(seed+int64(t)*1001)), 1.2, 1, uint64(keysPerTenant-1))
	}
	reqs := make([]Request, n)
	for i := range reqs {
		t := rng.Intn(tenants)
		op := OpGet
		if rng.Intn(4) == 0 {
			op = OpPut
		}
		reqs[i] = Request{
			Op:     op,
			Tenant: trace.Tenant(t),
			Key:    []byte(fmt.Sprintf("t%d-key-%d", t, zipf[t].Uint64())),
		}
	}
	return reqs
}

func newTestService(t *testing.T, k, shards, tenants int) *Service {
	t.Helper()
	svc, err := New(Config{K: k, Shards: shards, Tenants: tenants, NewPolicy: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// applyAll drives reqs through the service in batches from a single
// goroutine, preserving order.
func applyAll(t *testing.T, svc *Service, reqs []Request, batch int) {
	t.Helper()
	for lo := 0; lo < len(reqs); lo += batch {
		hi := lo + batch
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if _, err := svc.Apply(reqs[lo:hi]); err != nil {
			t.Fatalf("apply [%d,%d): %v", lo, hi, err)
		}
	}
}

// TestNewValidation pins the constructor's rejection surface.
func TestNewValidation(t *testing.T) {
	base := Config{K: 8, Shards: 2, Tenants: 2, NewPolicy: testPolicy}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"k=0", func(c *Config) { c.K = 0 }},
		{"k<shards", func(c *Config) { c.K = 1; c.Shards = 4 }},
		{"tenants=0", func(c *Config) { c.Tenants = 0 }},
		{"nil factory", func(c *Config) { c.NewPolicy = nil }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	// Shards <= 0 defaults to 1 rather than failing.
	svc, err := New(Config{K: 4, Tenants: 1, NewPolicy: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Shards() != 1 {
		t.Errorf("default shards = %d", svc.Shards())
	}
	svc.Close()
}

// TestApplyValidation pins the ingress rejection surface.
func TestApplyValidation(t *testing.T) {
	svc := newTestService(t, 8, 2, 2)
	bad := []Request{
		{Op: 'X', Tenant: 0, Key: []byte("k")},
		{Op: OpGet, Tenant: 2, Key: []byte("k")},
		{Op: OpGet, Tenant: -1, Key: []byte("k")},
		{Op: OpGet, Tenant: 0, Key: nil},
	}
	for i, r := range bad {
		if _, err := svc.Apply([]Request{r}); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	if res, err := svc.Apply(nil); err != nil || res != nil {
		t.Errorf("empty batch: %v %v", res, err)
	}
}

// TestSingleShardMatchesSimRun is the n=1 anchor of the live-vs-replay
// family: a single-shard service fed sequentially must produce exactly the
// counters of sim.Run over the equivalent trace, with pages numbered in
// first-appearance order like the live shard assigns them.
func TestSingleShardMatchesSimRun(t *testing.T) {
	const k, tenants, n = 64, 3, 30_000
	reqs := genRequests(7, tenants, 400, n)

	svc := newTestService(t, k, 1, tenants)
	applyAll(t, svc, reqs, 1000)

	// Independent reconstruction: first-appearance page ids per (tenant,
	// key), exactly the live assignment order for one shard.
	pages := make(map[string]trace.PageID)
	b := trace.NewBuilder()
	for _, r := range reqs {
		key := fmt.Sprintf("%d/%s", r.Tenant, r.Key)
		p, ok := pages[key]
		if !ok {
			p = trace.PageID(len(pages))
			pages[key] = p
		}
		b.Add(r.Tenant, p)
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(tr, testPolicy(), sim.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.Hits != want.Hits {
		t.Errorf("hits: live %d, sim.Run %d", st.Hits, want.Hits)
	}
	for i := 0; i < tenants; i++ {
		if st.PerTenant[i].Misses != want.Misses[i] {
			t.Errorf("tenant %d misses: live %d, sim.Run %d", i, st.PerTenant[i].Misses, want.Misses[i])
		}
		if st.PerTenant[i].Evictions != want.Evictions[i] {
			t.Errorf("tenant %d evictions: live %d, sim.Run %d", i, st.PerTenant[i].Evictions, want.Evictions[i])
		}
	}

	// And the service's own verifier must agree.
	rep, err := svc.Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Errorf("verify diffs: %v", rep.Diffs)
	}
}

// TestLiveVsReplayShardCounts drives the same seeded workload through shard
// counts 1, 2 and 4 and requires a zero live-vs-replay diff at every count,
// plus per-tenant request conservation across counts (partitioning changes
// hit rates, never who asked for what).
func TestLiveVsReplayShardCounts(t *testing.T) {
	const k, tenants, n = 96, 3, 60_000
	reqs := genRequests(11, tenants, 500, n)
	var perTenant [][]int64
	for _, shards := range []int{1, 2, 4} {
		svc := newTestService(t, k, shards, tenants)
		applyAll(t, svc, reqs, 777)
		rep, err := svc.Verify(context.Background())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !rep.Clean {
			t.Errorf("shards=%d: verify diffs: %v", shards, rep.Diffs)
		}
		if rep.Requests != n {
			t.Errorf("shards=%d: verified %d of %d requests", shards, rep.Requests, n)
		}
		for ti := 0; ti < tenants; ti++ {
			if got := rep.Live.Hits[ti] + rep.Live.Misses[ti]; got != rep.Live.Requests[ti] {
				t.Errorf("shards=%d tenant %d: hits+misses=%d requests=%d", shards, ti, got, rep.Live.Requests[ti])
			}
		}
		perTenant = append(perTenant, rep.Live.Requests)
		svc.Close()
	}
	for i := 1; i < len(perTenant); i++ {
		for ti := range perTenant[i] {
			if perTenant[i][ti] != perTenant[0][ti] {
				t.Errorf("tenant %d request count differs across shard counts: %v vs %v", ti, perTenant[i][ti], perTenant[0][ti])
			}
		}
	}
}

// TestLiveVsReplayMillionConcurrent is the acceptance differential: a seeded
// 1M-request multi-tenant workload driven by concurrent clients through
// shard counts 1, 2 and 4, with a zero per-tenant counter divergence
// required at every count. Concurrency makes the interleaving nondeterministic;
// the shard logs, not the submission order, are the ground truth the replay
// must match.
func TestLiveVsReplayMillionConcurrent(t *testing.T) {
	total := 1_000_000
	if testing.Short() {
		total = 100_000
	}
	const k, tenants, clients = 512, 3, 8
	reqs := genRequests(42, tenants, 4000, total)

	for _, shards := range []int{1, 2, 4} {
		svc := newTestService(t, k, shards, tenants)
		var wg sync.WaitGroup
		per := total / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(part []Request) {
				defer wg.Done()
				for lo := 0; lo < len(part); lo += 2048 {
					hi := lo + 2048
					if hi > len(part) {
						hi = len(part)
					}
					if _, err := svc.Apply(part[lo:hi]); err != nil {
						t.Errorf("apply: %v", err)
						return
					}
				}
			}(reqs[c*per : (c+1)*per])
		}
		wg.Wait()
		rep, err := svc.Verify(context.Background())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !rep.Clean {
			t.Errorf("shards=%d: live-vs-replay diverged: %v", shards, rep.Diffs)
		}
		if rep.Requests != clients*per {
			t.Errorf("shards=%d: verified %d of %d", shards, rep.Requests, clients*per)
		}
		svc.Close()
	}
}

// TestVerifyUnderLiveTraffic calls Verify while clients keep writing: the
// snapshot must land on a batch boundary and still diff clean against the
// replay of exactly the admitted prefix.
func TestVerifyUnderLiveTraffic(t *testing.T) {
	const k, tenants = 64, 2
	svc := newTestService(t, k, 2, tenants)
	reqs := genRequests(5, tenants, 300, 40_000)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; ; i = (i + 512) % (len(reqs) - 512) {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := svc.Apply(reqs[i : i+512]); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(c * 997)
	}
	for round := 0; round < 3; round++ {
		rep, err := svc.Verify(context.Background())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !rep.Clean {
			t.Errorf("round %d: diffs %v", round, rep.Diffs)
		}
	}
	close(stop)
	wg.Wait()
}

// TestGracefulDrainMidLoad closes the service while concurrent clients are
// mid-flight: in-flight batches must complete (never panic, never lose a
// logged request), later ones must fail with ErrClosed, and the frozen state
// must still verify clean.
func TestGracefulDrainMidLoad(t *testing.T) {
	const tenants = 2
	svc, err := New(Config{K: 32, Shards: 4, Tenants: tenants, NewPolicy: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	reqs := genRequests(13, tenants, 200, 20_000)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			<-start
			for i := off; i+256 <= len(reqs); i += 256 {
				if _, err := svc.Apply(reqs[i : i+256]); err != nil {
					if err == ErrClosed {
						return
					}
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(c * 11)
	}
	close(start)
	svc.Close()
	wg.Wait()

	// Every request a shard admitted is in its log; the frozen state must
	// replay clean.
	rep, err := svc.Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Errorf("post-drain verify diffs: %v", rep.Diffs)
	}
	if _, err := svc.Apply(reqs[:1]); err != ErrClosed {
		t.Errorf("apply after close: %v", err)
	}
	svc.Close() // idempotent
}

// TestRoutingDeterminism pins that the (tenant, key) hash is stable and
// independent of request order: the same keys land on the same shards across
// two service instances fed in different orders.
func TestRoutingDeterminism(t *testing.T) {
	svc := newTestService(t, 8, 4, 2)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		a := svc.route(0, key)
		b := svc.route(0, key)
		if a != b {
			t.Fatalf("route unstable for %s: %d vs %d", key, a, b)
		}
		if x := svc.route(1, key); x < 0 || x >= 4 {
			t.Fatalf("route out of range: %d", x)
		}
	}
	// Tenant must be part of the hash: identical keys for different
	// tenants should not systematically collide onto one shard.
	diff := 0
	for i := 0; i < 256; i++ {
		key := []byte(fmt.Sprintf("shared-%d", i))
		if svc.route(0, key) != svc.route(1, key) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("tenant id does not influence routing")
	}
}

// TestShardFailureSurfaces injects a contract-violating policy and checks
// the shard fails closed: ResultError for its requests, an error from Err
// and Verify, healthy shards keep serving.
func TestShardFailureSurfaces(t *testing.T) {
	svc, err := New(Config{K: 2, Shards: 1, Tenants: 1, NewPolicy: func() sim.Policy {
		return badVictimPolicy{}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	reqs := []Request{
		{Op: OpGet, Tenant: 0, Key: []byte("a")},
		{Op: OpGet, Tenant: 0, Key: []byte("b")},
		{Op: OpGet, Tenant: 0, Key: []byte("c")}, // full cache -> bad victim
	}
	res, err := svc.Apply(reqs)
	if err == nil {
		t.Fatalf("want shard failure, got results %q", res)
	}
	if res[2] != ResultError {
		t.Errorf("results = %q", res)
	}
	if svc.Err() == nil {
		t.Error("Err() = nil after contract violation")
	}
	if _, err := svc.Verify(context.Background()); err == nil {
		t.Error("Verify must refuse a failed shard's log")
	}
}

// badVictimPolicy evicts a page that is never resident.
type badVictimPolicy struct{}

func (badVictimPolicy) Name() string                           { return "bad-victim" }
func (badVictimPolicy) OnHit(int, trace.Request)               {}
func (badVictimPolicy) OnInsert(int, trace.Request)            {}
func (badVictimPolicy) Victim(int, trace.Request) trace.PageID { return 1 << 40 }
func (badVictimPolicy) OnEvict(int, trace.PageID)              {}
func (badVictimPolicy) Reset()                                 {}

// TestStatsShape checks the aggregate accounting: totals equal the sum of
// shard counters and tenant counters, occupancy is bounded by each shard's
// share.
func TestStatsShape(t *testing.T) {
	const k, shards, tenants = 10, 4, 2
	svc := newTestService(t, k, shards, tenants)
	applyAll(t, svc, genRequests(3, tenants, 50, 5000), 500)
	st := svc.Stats()
	if st.Requests != 5000 {
		t.Errorf("requests = %d", st.Requests)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("hits %d + misses %d != requests %d", st.Hits, st.Misses, st.Requests)
	}
	if len(st.Shards) != shards || len(st.PerTenant) != tenants {
		t.Fatalf("shape: %d shards, %d tenants", len(st.Shards), len(st.PerTenant))
	}
	sumK, sumReq := 0, int64(0)
	for _, sh := range st.Shards {
		if sh.Occupancy > sh.K {
			t.Errorf("shard %d occupancy %d > k %d", sh.Shard, sh.Occupancy, sh.K)
		}
		sumK += sh.K
		sumReq += sh.Requests
	}
	if sumK != k {
		t.Errorf("shard capacities sum to %d, want %d", sumK, k)
	}
	if sumReq != st.Requests {
		t.Errorf("shard requests sum to %d, want %d", sumReq, st.Requests)
	}
}
