package cached

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"time"

	"convexcache/internal/obs"
	"convexcache/internal/resilience"
)

// MaxBodyBytes is the default request-body cap of the cache endpoint: large
// enough for ~100k-line batches, small enough to bound per-request memory.
const MaxBodyBytes = 16 << 20

// HTTPConfig tunes the HTTP front of the service; the zero value is usable.
type HTTPConfig struct {
	// Logger receives the structured request logs; nil selects
	// slog.Default().
	Logger *slog.Logger
	// MaxBodyBytes caps request bodies; <= 0 selects MaxBodyBytes.
	MaxBodyBytes int64
	// Limiter tunes the concurrency limiter guarding /v1/cache and
	// /v1/cache/verify; the zero value selects the package defaults.
	Limiter resilience.LimiterConfig
	// RateLimit tunes per-client token buckets; RPS <= 0 disables rate
	// limiting.
	RateLimit resilience.RateLimiterConfig
	// Breaker tunes the per-endpoint circuit breakers; the zero value
	// selects the package defaults.
	Breaker resilience.BreakerConfig
}

// handlerState carries the resilience stack of one Handler instance.
type handlerState struct {
	svc      *Service
	log      *slog.Logger
	maxBody  int64
	limiter  *resilience.Limiter
	rate     *resilience.RateLimiter
	breakers map[string]*resilience.Breaker
}

// Handler mounts the service behind the repo's standard HTTP surface:
//
//	POST /v1/cache        — newline-separated wire requests, returns hit/miss accounting
//	GET  /v1/cache/stats  — live per-tenant and per-shard counters
//	POST /v1/cache/verify — live-vs-replay differential; 200 clean, 500 on divergence
//	GET  /healthz, GET /metrics
//
// The cache endpoints sit behind the same admission stack as the simulation
// server (per-client rate limit → per-endpoint breaker → concurrency
// limiter), and all HTTP metrics land in the service's registry next to the
// per-shard counters.
func (s *Service) Handler(cfg HTTPConfig) http.Handler {
	st := &handlerState{svc: s, log: cfg.Logger, maxBody: cfg.MaxBodyBytes}
	if st.log == nil {
		st.log = slog.Default()
	}
	if st.maxBody <= 0 {
		st.maxBody = MaxBodyBytes
	}
	st.limiter = resilience.NewLimiter(cfg.Limiter, s.reg)
	st.rate = resilience.NewRateLimiter(cfg.RateLimit, s.reg)
	st.breakers = map[string]*resilience.Breaker{
		"/v1/cache":        resilience.NewBreaker("/v1/cache", cfg.Breaker, s.reg),
		"/v1/cache/verify": resilience.NewBreaker("/v1/cache/verify", cfg.Breaker, s.reg),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("POST /v1/cache", st.protect("/v1/cache", st.handleCache))
	mux.HandleFunc("GET /v1/cache/stats", st.handleStats)
	mux.HandleFunc("POST /v1/cache/verify", st.protect("/v1/cache/verify", st.handleVerify))
	mux.HandleFunc("GET /v1/mrc/live", st.handleMRCLive)
	mux.HandleFunc("POST /v1/cache/rebalance", st.handleRebalance)
	mw := obs.Middleware{Reg: s.reg, Log: st.log, Route: cacheRouteLabel}
	return mw.Wrap(mux)
}

func cacheRouteLabel(r *http.Request) string {
	switch r.URL.Path {
	case "/healthz", "/metrics", "/v1/cache", "/v1/cache/stats", "/v1/cache/verify",
		"/v1/mrc/live", "/v1/cache/rebalance":
		return r.URL.Path
	}
	return "other"
}

// CacheResponse is the reply of POST /v1/cache.
type CacheResponse struct {
	Requests int `json:"requests"`
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
	// Shed counts requests dropped because their shard was down; they are
	// marked 'S' in Results and safe to retry.
	Shed int `json:"shed,omitempty"`
	// Results is one byte per request ('H' hit, 'M' miss, 'S' shed), in
	// request order.
	Results string `json:"results"`
}

func (st *handlerState) handleCache(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, st.maxBody))
	if err != nil {
		st.writeError(w, r, http.StatusBadRequest, "bad_request", 0, fmt.Errorf("read request: %w", err))
		return
	}
	reqs, err := ParseBatch(body, st.svc.cfg.Tenants)
	if err != nil {
		st.writeError(w, r, http.StatusBadRequest, "bad_request", 0, err)
		return
	}
	if len(reqs) == 0 {
		st.writeError(w, r, http.StatusBadRequest, "bad_request", 0, errors.New("empty batch"))
		return
	}
	results, err := st.svc.Apply(reqs)
	if err != nil {
		status, reason := http.StatusInternalServerError, "internal"
		var retryAfter time.Duration
		switch {
		case errors.Is(err, ErrClosed):
			status, reason = http.StatusServiceUnavailable, "draining"
		case errors.Is(err, ErrShardDown):
			// Degraded mode: only the down shard's keys were shed (those
			// requests carry 'S' in Results); the batch is safe to retry
			// after the shard finishes rebuilding.
			status, reason = http.StatusServiceUnavailable, "shard_down"
			retryAfter = time.Second
		}
		st.writeError(w, r, status, reason, retryAfter, err)
		return
	}
	resp := CacheResponse{Requests: len(reqs), Results: string(results)}
	for _, c := range results {
		switch c {
		case ResultHit:
			resp.Hits++
		case ResultShed:
			resp.Shed++
		default:
			resp.Misses++
		}
	}
	st.writeJSON(w, r, http.StatusOK, resp)
}

func (st *handlerState) handleStats(w http.ResponseWriter, r *http.Request) {
	st.writeJSON(w, r, http.StatusOK, st.svc.Stats())
}

func (st *handlerState) handleMRCLive(w http.ResponseWriter, r *http.Request) {
	live, err := st.svc.MRCLive()
	if err != nil {
		st.writeError(w, r, http.StatusNotFound, "mrc_disabled", 0, err)
		return
	}
	st.writeJSON(w, r, http.StatusOK, live)
}

func (st *handlerState) handleRebalance(w http.ResponseWriter, r *http.Request) {
	quotas, changed, err := st.svc.RebalanceOnce()
	if err != nil {
		st.writeError(w, r, http.StatusConflict, "rebalance_unavailable", 0, err)
		return
	}
	st.writeJSON(w, r, http.StatusOK, map[string]any{"quotas": quotas, "changed": changed})
}

func (st *handlerState) handleVerify(w http.ResponseWriter, r *http.Request) {
	rep, err := st.svc.Verify(r.Context())
	if err != nil {
		st.writeError(w, r, http.StatusInternalServerError, "internal", 0, err)
		return
	}
	status := http.StatusOK
	if !rep.Clean {
		// A divergence is a server-side correctness failure; 500 makes
		// `curl -fsS` (and the breaker) treat it as one.
		status = http.StatusInternalServerError
	}
	st.writeJSON(w, r, status, rep)
}

// protect is the admission stack of the simulation server, applied to the
// cache endpoints: per-client rate limit (429), per-endpoint breaker (503),
// concurrency limiter (503). Handler 5xxs count as breaker failures; limiter
// sheds are Ignored so overload cannot trip a healthy circuit.
func (st *handlerState) protect(endpoint string, next http.HandlerFunc) http.HandlerFunc {
	br := st.breakers[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		if st.rate.Enabled() {
			if err := st.rate.Allow(clientKey(r)); err != nil {
				st.shedError(w, r, err)
				return
			}
		}
		call, err := br.Allow()
		if err != nil {
			st.shedError(w, r, err)
			return
		}
		release, err := st.limiter.Acquire(r.Context())
		if err != nil {
			call.Record(resilience.Ignored, 0)
			st.shedError(w, r, err)
			return
		}
		defer release()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		completed := false
		defer func() {
			switch {
			case !completed || sw.status >= http.StatusInternalServerError:
				call.Record(resilience.Failure, time.Since(start))
			default:
				call.Record(resilience.Success, time.Since(start))
			}
		}()
		next(sw, r)
		completed = true
	}
}

func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

type errorBody struct {
	Error             string  `json:"error"`
	Reason            string  `json:"reason,omitempty"`
	RequestID         string  `json:"request_id,omitempty"`
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

func (st *handlerState) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		st.svc.reg.Counter("http_response_encode_errors_total").Inc()
		obs.LoggerFrom(r.Context(), st.log).Error("encode response", "status", status, "err", err)
	}
}

func (st *handlerState) writeError(w http.ResponseWriter, r *http.Request, status int, reason string, retryAfter time.Duration, err error) {
	body := errorBody{
		Error:     err.Error(),
		Reason:    reason,
		RequestID: obs.RequestIDFrom(r.Context()),
	}
	if retryAfter > 0 {
		secs := int((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		body.RetryAfterSeconds = retryAfter.Seconds()
	}
	st.writeJSON(w, r, status, body)
}

func (st *handlerState) shedError(w http.ResponseWriter, r *http.Request, err error) {
	var sh *resilience.Shed
	if !errors.As(err, &sh) {
		st.writeError(w, r, http.StatusServiceUnavailable, "unavailable", 0, err)
		return
	}
	status := http.StatusServiceUnavailable
	if sh.Reason == resilience.ReasonRateLimited {
		status = http.StatusTooManyRequests
	}
	st.writeError(w, r, status, sh.Reason, sh.RetryAfter, err)
}
