package cached

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"convexcache/internal/analysis"
	"convexcache/internal/costfn"
	"convexcache/internal/mrclive"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// streamOrDie adapts a workload constructor's (stream, error) pair for use
// inside tests: pass the constructor call as the sole argument.
func streamOrDie(t *testing.T) func(workload.Stream, error) workload.Stream {
	return func(s workload.Stream, err error) workload.Stream {
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

// evenSplit is the static baseline: k pages divided as evenly as possible
// across tenants (the same rule sim.ShardShare applies to shard capacity).
func evenSplit(k, tenants int) []int {
	q := make([]int, tenants)
	for t := range q {
		q[t] = k / tenants
		if t < k%tenants {
			q[t]++
		}
	}
	return q
}

func newPartitionService(t *testing.T, k, shards, tenants int, mrc *mrclive.Config, costs []costfn.Func, floor int) *Service {
	t.Helper()
	svc, err := New(Config{
		K: k, Shards: shards, Tenants: tenants,
		Quotas:       evenSplit(k, tenants),
		MRC:          mrc,
		Costs:        costs,
		ReserveFloor: floor,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestStatsSnapshotBarrierUnderLoad is the snapshot-atomicity hammer: every
// writer sends fixed-size single-tenant batches, so any Stats() observation
// taken concurrently must see each tenant's request count as a whole number
// of batches — a torn snapshot (some shards of an in-flight batch counted,
// others not) shows up as a remainder. The conservation invariant
// hits+misses == requests must also hold per tenant in every observation.
func TestStatsSnapshotBarrierUnderLoad(t *testing.T) {
	const (
		tenants   = 3
		batchSize = 64
		batches   = 120
		writers   = 4
	)
	svc := newTestService(t, 48, 4, tenants)

	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				tn := trace.Tenant((w + b) % tenants)
				reqs := make([]Request, batchSize)
				for i := range reqs {
					// Keys vary per request so every batch spreads over
					// all shards — the case a torn snapshot would split.
					reqs[i] = Request{Op: OpGet, Tenant: tn,
						Key: fmt.Appendf(nil, "w%d-b%d-i%d", w, b, i)}
				}
				if _, err := svc.Apply(reqs); err != nil {
					t.Errorf("writer %d batch %d: %v", w, b, err)
					return
				}
			}
		}()
	}

	var observations int
	go func() {
		wg.Wait()
		done.Store(true)
	}()
	for !done.Load() {
		st := svc.Stats()
		observations++
		for _, ts := range st.PerTenant {
			if ts.Requests%batchSize != 0 {
				t.Fatalf("torn snapshot: tenant %d requests=%d not a multiple of batch size %d",
					ts.Tenant, ts.Requests, batchSize)
			}
			if ts.Hits+ts.Misses != ts.Requests {
				t.Fatalf("conservation violated: tenant %d hits=%d misses=%d requests=%d",
					ts.Tenant, ts.Hits, ts.Misses, ts.Requests)
			}
		}
		if st.Hits+st.Misses != st.Requests {
			t.Fatalf("conservation violated: hits=%d misses=%d requests=%d",
				st.Hits, st.Misses, st.Requests)
		}
	}
	wg.Wait()
	st := svc.Stats()
	if want := int64(writers * batches * batchSize); st.Requests != want {
		t.Fatalf("final requests = %d, want %d", st.Requests, want)
	}
	if observations == 0 {
		t.Fatal("no concurrent Stats observations")
	}
}

// TestPartitionVerifyAcrossShards drives the quota-partition engine at
// several shard counts with two mid-stream quota changes and requires the
// live-vs-replay differential to be bit-exact: the replay re-applies each
// control entry at its logged position.
func TestPartitionVerifyAcrossShards(t *testing.T) {
	const k, tenants = 48, 3
	reqs := genRequests(17, tenants, 200, 9000)
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			svc := newPartitionService(t, k, shards, tenants, nil, nil, 0)
			applyAll(t, svc, reqs[:3000], 512)
			if err := svc.SetQuotas([]int{40, 4, 4}); err != nil {
				t.Fatal(err)
			}
			applyAll(t, svc, reqs[3000:6000], 512)
			if err := svc.SetQuotas([]int{4, 40, 4}); err != nil {
				t.Fatal(err)
			}
			applyAll(t, svc, reqs[6000:], 512)
			rep, err := svc.Verify(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean {
				t.Fatalf("partition replay diverged: %v", rep.Diffs)
			}
			if rep.Policy != "quota-partition" {
				t.Fatalf("policy label = %q", rep.Policy)
			}
			st := svc.Stats()
			if len(st.Quotas) != tenants || st.Quotas[1] != 40 {
				t.Fatalf("stats quotas = %v, want last installed vector", st.Quotas)
			}
		})
	}
}

// TestMRCLiveMatchesOfflineMattson is the end-to-end estimator accuracy
// bound of the issue: the merged live curves from a sharded service (the
// shard partition is the only sampling layer at rate 1) must match the
// offline per-tenant Mattson analysis of the same request stream within 5
// percentage points of miss ratio at every sampled capacity.
func TestMRCLiveMatchesOfflineMattson(t *testing.T) {
	const (
		tenants = 2
		length  = 60000
		maxSize = 320
	)
	b := trace.NewBuilder()
	must := streamOrDie(t)
	streams := []workload.Stream{
		must(workload.NewMarkov(5, 2500, 0.55, 50)),
		must(workload.NewZipf(11, 1200, 0.8)),
	}
	for i := 0; i < length; i++ {
		tn := i % tenants
		b.Add(trace.Tenant(tn), workload.PageOf(trace.Tenant(tn), streams[tn].Next()))
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := analysis.PerTenant(tr, maxSize)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			svc := newPartitionService(t, 512, shards, tenants, &mrclive.Config{
				MaxSize:       maxSize,
				Rate:          1,
				WindowEpochs:  2,
				EpochRequests: length + 1,
			}, nil, 0)
			reqs := make([]Request, tr.Len())
			for i, r := range tr.Requests() {
				reqs[i] = Request{Op: OpGet, Tenant: r.Tenant, Key: fmt.Appendf(nil, "p%d", r.Page)}
			}
			applyAll(t, svc, reqs, 1024)
			live, err := svc.MRCLive()
			if err != nil {
				t.Fatal(err)
			}
			for tn, c := range live.Tenants {
				if c.Requests != ref[tn].Requests {
					t.Fatalf("tenant %d: window requests %d, trace has %d", tn, c.Requests, ref[tn].Requests)
				}
				for _, cap := range []int{20, 40, 80, 160, 320} {
					got := c.MissRatioAt(cap)
					want := float64(ref[tn].MissesAt(cap)) / float64(ref[tn].Requests)
					if diff := got - want; diff < -0.05 || diff > 0.05 {
						t.Errorf("tenant %d capacity %d: live miss ratio %.4f, offline %.4f (|diff| > 0.05)",
							tn, cap, got, want)
					}
				}
			}
		})
	}
}

// TestAdaptiveBeatsStaticPartition is the issue's acceptance experiment: on
// a phase-shifting workload, the adaptive controller (streaming MRC +
// marginal-cost capacity planning) must realize a strictly lower total
// convex cost sum_i f_i(misses_i) than a static even partition serving the
// identical request stream. Both services run deterministically from the
// same seed; the only difference is RebalanceOnce between batches.
func TestAdaptiveBeatsStaticPartition(t *testing.T) {
	const (
		k       = 64
		shards  = 2
		tenants = 2
		phase   = 16000
		batch   = 500
	)
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Monomial{C: 1, Beta: 2}}
	mrc := &mrclive.Config{MaxSize: 128, Rate: 1, WindowEpochs: 4, EpochRequests: 1000}

	// Phase A: tenant 0 is hot over a large Zipf working set, tenant 1 only
	// touches a tiny set. Phase B swaps the roles onto fresh pages. A static
	// even split strands half the cache with the cold tenant in both phases.
	must := streamOrDie(t)
	hotA := must(workload.NewZipf(3, 400, 0.9))
	coldA := must(workload.NewZipf(4, 8, 0.5))
	hotB := must(workload.NewZipf(9, 400, 0.9))
	coldB := must(workload.NewZipf(10, 8, 0.5))
	var reqs []Request
	add := func(tn trace.Tenant, s workload.Stream, off int64) {
		reqs = append(reqs, Request{Op: OpGet, Tenant: tn,
			Key: fmt.Appendf(nil, "p%d", off+s.Next())})
	}
	for i := 0; i < phase; i++ {
		if i%5 == 4 {
			add(1, coldA, 0)
		} else {
			add(0, hotA, 0)
		}
	}
	for i := 0; i < phase; i++ {
		if i%5 == 4 {
			add(0, coldB, 1_000_000)
		} else {
			add(1, hotB, 1_000_000)
		}
	}

	run := func(adaptive bool) (Stats, int) {
		svc := newPartitionService(t, k, shards, tenants, mrc, costs, 4)
		rebalances := 0
		for lo := 0; lo < len(reqs); lo += batch {
			hi := lo + batch
			if hi > len(reqs) {
				hi = len(reqs)
			}
			if _, err := svc.Apply(reqs[lo:hi]); err != nil {
				t.Fatalf("apply [%d,%d): %v", lo, hi, err)
			}
			if adaptive && hi%2000 == 0 {
				if _, changed, err := svc.RebalanceOnce(); err != nil {
					t.Fatalf("rebalance at %d: %v", hi, err)
				} else if changed {
					rebalances++
				}
			}
		}
		rep, err := svc.Verify(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean {
			t.Fatalf("adaptive=%v replay diverged: %v", adaptive, rep.Diffs)
		}
		return svc.Stats(), rebalances
	}

	realized := func(st Stats) float64 {
		total := 0.0
		for tn, ts := range st.PerTenant {
			total += costs[tn].Value(float64(ts.Misses))
		}
		return total
	}

	static, _ := run(false)
	adaptive, rebalances := run(true)
	costStatic, costAdaptive := realized(static), realized(adaptive)
	t.Logf("static cost %.0f (misses %d), adaptive cost %.0f (misses %d), rebalances %d",
		costStatic, static.Misses, costAdaptive, adaptive.Misses, rebalances)
	if rebalances == 0 {
		t.Fatal("controller never changed the split")
	}
	if costAdaptive >= costStatic {
		t.Fatalf("adaptive cost %.0f not below static %.0f", costAdaptive, costStatic)
	}
}
