package cached

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"convexcache/internal/fault"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// testWAL returns a WALConfig aimed at dir with small segments so rotation
// and multi-segment recovery are exercised by modest workloads.
func testWAL(dir string) *WALConfig {
	return &WALConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 4096, CheckpointEvery: 4096}
}

func newWALService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// normalizeStats zeroes the WAL-layout fields (segment index, sealed/tail
// split) that depend on varint-encoded byte counts: global sequence numbers
// interleave nondeterministically across shards, so two equivalent runs can
// rotate at slightly different entries while agreeing on every counter.
func normalizeStats(st Stats) Stats {
	for i := range st.Shards {
		st.Shards[i].Seg, st.Shards[i].LogStart, st.Shards[i].LogLen = 0, 0, 0
	}
	return st
}

func requireClean(t *testing.T, svc *Service) {
	t.Helper()
	rep, err := svc.Verify(context.Background())
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.Clean {
		t.Fatalf("verify diffs: %v", rep.Diffs)
	}
}

// TestWALCodecRoundtrip pins the frame/record codec: everything the writer
// emits, scanSegment hands back bit-identically.
func TestWALCodecRoundtrip(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, encodeHeader(2, 4, 117))
	buf = appendFrame(buf, encodeRequest(nil, 5, 42, 1, []byte("hello-key")))
	buf = appendFrame(buf, encodeRequest(nil, 6, 42, 1, nil))
	buf = appendFrame(buf, encodeQuotas(nil, 7, []int{3, 0, 9}))

	var recs []walRecord
	valid, torn, err := scanSegment(bytes.NewReader(buf), func(r walRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil || torn {
		t.Fatalf("scan: err=%v torn=%v", err, torn)
	}
	if valid != int64(len(buf)) {
		t.Fatalf("valid prefix %d, wrote %d", valid, len(buf))
	}
	if len(recs) != 4 {
		t.Fatalf("decoded %d records", len(recs))
	}
	h := recs[0]
	if h.kind != recHeader || h.version != walVersion || h.shard != 2 || h.shards != 4 || h.startEntry != 117 {
		t.Errorf("header = %+v", h)
	}
	r1 := recs[1]
	if r1.kind != recRequest || r1.entry.Seq != 5 || r1.entry.Page != 42 || r1.entry.Tenant != 1 || string(r1.key) != "hello-key" {
		t.Errorf("request = %+v", r1)
	}
	if recs[2].key != nil {
		t.Errorf("repeat request carries key %q", recs[2].key)
	}
	q := recs[3]
	if q.kind != recQuotas || q.entry.Seq != 7 || !reflect.DeepEqual(q.entry.Quotas, []int{3, 0, 9}) {
		t.Errorf("quotas = %+v", q)
	}
}

// TestScanSegmentTornAndCorrupt pins the torn-tail contract of the frame
// scanner: any truncation or bit flip past the valid prefix is reported as
// torn with the prefix length, never as decoded garbage.
func TestScanSegmentTornAndCorrupt(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, encodeHeader(0, 1, 0))
	first := len(buf)
	buf = appendFrame(buf, encodeRequest(nil, 1, 0, 0, []byte("k1")))
	second := len(buf)
	buf = appendFrame(buf, encodeRequest(nil, 2, 0, 0, []byte("k2")))

	// Truncate at every byte boundary inside the last frame: the first two
	// frames must survive, the rest must be reported torn.
	for cut := second + 1; cut < len(buf); cut++ {
		n := 0
		valid, torn, err := scanSegment(bytes.NewReader(buf[:cut]), func(walRecord) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if !torn || valid != int64(second) || n != 2 {
			t.Fatalf("cut=%d: torn=%v valid=%d records=%d", cut, torn, valid, n)
		}
	}
	// Flip one byte inside the middle frame's payload: CRC must catch it and
	// stop the scan at the first frame.
	bad := append([]byte(nil), buf...)
	bad[first+frameHeaderBytes+1] ^= 0x40
	n := 0
	valid, torn, err := scanSegment(bytes.NewReader(bad), func(walRecord) error { n++; return nil })
	if err != nil {
		t.Fatalf("flip: %v", err)
	}
	if !torn || valid != int64(first) || n != 1 {
		t.Fatalf("flip: torn=%v valid=%d records=%d", torn, valid, n)
	}
}

// driveAndStats runs reqs through a fresh WAL-backed service and returns its
// final stats, for use as the uninterrupted reference of recovery tests.
func driveAndStats(t *testing.T, cfg Config, reqs []Request, batch int) Stats {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	applyAll(t, svc, reqs, batch)
	return svc.Stats()
}

// TestRecoverCleanShutdown is the round-trip anchor: drive a classic-mode
// service across many segment rotations, close it cleanly, recover into a new
// instance and require bit-identical stats, a clean verify (which streams the
// sealed segments back off disk), and a bounded in-memory log.
func TestRecoverCleanShutdown(t *testing.T) {
	const k, shards, tenants, n = 96, 2, 3, 30_000
	dir := t.TempDir()
	reqs := genRequests(21, tenants, 400, n)

	cfg := Config{K: k, Shards: shards, Tenants: tenants, NewPolicy: testPolicy, WAL: testWAL(dir)}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, svc, reqs, 512)
	requireClean(t, svc)
	before := svc.Stats()
	for _, sh := range before.Shards {
		if sh.Seg == 0 || sh.LogStart == 0 {
			t.Fatalf("shard %d never rotated (seg=%d logStart=%d); workload too small for the test", sh.Shard, sh.Seg, sh.LogStart)
		}
		if sh.LogStart+sh.LogLen != int(sh.Requests) {
			t.Errorf("shard %d: sealed %d + tail %d != %d entries", sh.Shard, sh.LogStart, sh.LogLen, sh.Requests)
		}
	}
	svc.Close()

	rcfg := cfg
	rcfg.WAL = testWAL(dir)
	rcfg.WAL.Recover = true
	svc2 := newWALService(t, rcfg)
	rep := svc2.Recovery()
	if rep == nil {
		t.Fatal("no recovery report")
	}
	if rep.Requests != n {
		t.Errorf("recovered %d requests, want %d", rep.Requests, n)
	}
	if rep.Checkpoints != shards {
		t.Errorf("recovered %d shards from checkpoints, want %d", rep.Checkpoints, shards)
	}
	// The clean-shutdown checkpoint covers the full log, so nothing replays.
	if rep.Replayed != 0 {
		t.Errorf("replayed %d entries past a full checkpoint", rep.Replayed)
	}
	if got := normalizeStats(svc2.Stats()); !reflect.DeepEqual(got, normalizeStats(before)) {
		t.Errorf("recovered stats diverge:\n got %+v\nwant %+v", got, before)
	}
	requireClean(t, svc2)

	// The recovered service keeps serving and verifying.
	applyAll(t, svc2, reqs[:5000], 512)
	requireClean(t, svc2)
}

// TestRecoverWithoutRecoverFlagFails pins the guard against silently
// clobbering existing state.
func TestRecoverWithoutRecoverFlagFails(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{K: 16, Shards: 1, Tenants: 1, NewPolicy: testPolicy, WAL: testWAL(dir)}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, svc, genRequests(1, 1, 50, 100), 50)
	svc.Close()
	if _, err := New(cfg); err == nil {
		t.Fatal("New on a non-empty WAL dir without Recover must fail")
	}
}

// crashPoint drives reqs[:cut], optionally installs quotas right before the
// crash, then calls Crash() — the in-process kill -9 — and returns the frozen
// stats plus the service for further inspection.
func crashAt(t *testing.T, cfg Config, reqs []Request, cut, batch int, quotas []int) Stats {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, svc, reqs[:cut], batch)
	if quotas != nil {
		if err := svc.SetQuotas(quotas); err != nil {
			t.Fatal(err)
		}
	}
	svc.Crash()
	return svc.Stats()
}

// TestRecoverAfterCrash is the crash-point matrix: classic and partition
// engines, shard counts 1, 2 and 4, crashes at several log positions
// including immediately after a quota rebalance. At every point the recovered
// service must match the frozen pre-crash stats bit for bit, verify clean,
// and — after being driven with the remaining requests — agree exactly with
// an uninterrupted run of the full workload.
func TestRecoverAfterCrash(t *testing.T) {
	const k, tenants, n = 60, 3, 12_000
	reqs := genRequests(33, tenants, 300, n)
	newQuotas := []int{30, 20, 10}

	for _, shards := range []int{1, 2, 4} {
		for _, mode := range []string{"classic", "partition"} {
			for _, cut := range []int{0, 1, n / 3, n - 1} {
				t.Run(fmt.Sprintf("%s/shards=%d/cut=%d", mode, shards, cut), func(t *testing.T) {
					dir := t.TempDir()
					cfg := Config{K: k, Shards: shards, Tenants: tenants, WAL: testWAL(dir)}
					var rebalance []int
					if mode == "partition" {
						cfg.Quotas = []int{k / 3, k / 3, k / 3}
						if cut > 1 {
							// Mid-rebalance crash point: the quota switch is the
							// final durable action before the crash.
							rebalance = newQuotas
						}
					} else {
						cfg.NewPolicy = testPolicy
					}
					frozen := crashAt(t, cfg, reqs, cut, 512, rebalance)

					rcfg := cfg
					rcfg.WAL = testWAL(dir)
					rcfg.WAL.Recover = true
					svc := newWALService(t, rcfg)
					if got := normalizeStats(svc.Stats()); !reflect.DeepEqual(got, normalizeStats(frozen)) {
						t.Fatalf("recovered stats diverge from frozen pre-crash stats:\n got %+v\nwant %+v", got, frozen)
					}
					requireClean(t, svc)

					// Finish the workload on the recovered service: the result
					// must be exactly the uninterrupted run's.
					applyAll(t, svc, reqs[cut:], 512)
					requireClean(t, svc)

					refCfg := cfg
					refCfg.WAL = testWAL(t.TempDir())
					ref, err := New(refCfg)
					if err != nil {
						t.Fatal(err)
					}
					defer ref.Close()
					applyAll(t, ref, reqs[:cut], 512)
					if rebalance != nil {
						if err := ref.SetQuotas(rebalance); err != nil {
							t.Fatal(err)
						}
					}
					applyAll(t, ref, reqs[cut:], 512)
					if got, want := normalizeStats(svc.Stats()), normalizeStats(ref.Stats()); !reflect.DeepEqual(got, want) {
						t.Fatalf("crash+recover+continue diverges from uninterrupted run:\n got %+v\nwant %+v", got, want)
					}
				})
			}
		}
	}
}

// TestRecoverGenericPolicyFullReplay covers engines without an exact
// serialization: no checkpoints are written, and recovery replays the entire
// WAL through the verbatim step.
func TestRecoverGenericPolicyFullReplay(t *testing.T) {
	const k, tenants, n = 48, 2, 8000
	dir := t.TempDir()
	reqs := genRequests(9, tenants, 200, n)
	// opaquePolicy hides the *core.Fast type, so buildCheckpoint declines.
	opaque := func() sim.Policy { return &opaquePolicy{inner: testPolicy().(sim.DensePolicy)} }

	cfg := Config{K: k, Shards: 2, Tenants: tenants, NewPolicy: opaque, WAL: testWAL(dir)}
	frozen := crashAt(t, cfg, reqs, n, 512, nil)

	rcfg := cfg
	rcfg.WAL = testWAL(dir)
	rcfg.WAL.Recover = true
	svc := newWALService(t, rcfg)
	rep := svc.Recovery()
	if rep.Checkpoints != 0 {
		t.Errorf("generic policy restored from %d checkpoints", rep.Checkpoints)
	}
	if rep.Replayed != rep.Entries || rep.Entries != n {
		t.Errorf("replayed %d of %d entries, want full replay of %d", rep.Replayed, rep.Entries, n)
	}
	if got := normalizeStats(svc.Stats()); !reflect.DeepEqual(got, normalizeStats(frozen)) {
		t.Errorf("full-replay recovery diverges:\n got %+v\nwant %+v", got, frozen)
	}
	requireClean(t, svc)
}

// opaquePolicy wraps a dense policy without exposing its concrete type, plus
// an optional one-shot panic trigger for the isolation tests.
type opaquePolicy struct {
	inner sim.DensePolicy
	trig  *atomic.Bool
}

func (p *opaquePolicy) maybePanic() {
	if p.trig != nil && p.trig.CompareAndSwap(true, false) {
		panic("injected engine fault")
	}
}

func (p *opaquePolicy) Name() string { return "opaque-" + p.inner.Name() }
func (p *opaquePolicy) OnHit(step int, r trace.Request) {
	p.maybePanic()
	p.inner.OnHit(step, r)
}
func (p *opaquePolicy) OnInsert(step int, r trace.Request) {
	p.maybePanic()
	p.inner.OnInsert(step, r)
}
func (p *opaquePolicy) Victim(step int, r trace.Request) trace.PageID { return p.inner.Victim(step, r) }
func (p *opaquePolicy) OnEvict(step int, pg trace.PageID)             { p.inner.OnEvict(step, pg) }
func (p *opaquePolicy) Reset()                                        { p.inner.Reset() }
func (p *opaquePolicy) PrepareDense(d *trace.Dense, k int) bool       { return p.inner.PrepareDense(d, k) }
func (p *opaquePolicy) DenseHit(step int, page int32)                 { p.inner.DenseHit(step, page) }
func (p *opaquePolicy) DenseInsert(step int, page int32)              { p.inner.DenseInsert(step, page) }
func (p *opaquePolicy) DenseVictim(step int, page int32) int32 {
	return p.inner.DenseVictim(step, page)
}
func (p *opaquePolicy) DenseEvict(step int, page int32) { p.inner.DenseEvict(step, page) }

// TestRecoverTornTail damages the durable state by hand: garbage appended to
// the final segment must be truncated away (recovery succeeds, stats intact),
// while damage inside a sealed segment must fail recovery loudly — dropping
// acknowledged requests silently is never acceptable.
func TestRecoverTornTail(t *testing.T) {
	const k, tenants, n = 48, 2, 10_000
	build := func(t *testing.T, dir string, ckptEvery int) (Config, Stats) {
		cfg := Config{K: k, Shards: 1, Tenants: tenants, NewPolicy: testPolicy,
			WAL: &WALConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 4096, CheckpointEvery: ckptEvery}}
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		applyAll(t, svc, genRequests(17, tenants, 250, n), 512)
		st := svc.Stats()
		svc.Close()
		if st.Shards[0].Seg == 0 {
			t.Fatal("workload did not rotate segments")
		}
		return cfg, st
	}
	recoverCfg := func(cfg Config) Config {
		w := *cfg.WAL
		w.Recover = true
		cfg.WAL = &w
		return cfg
	}

	for _, ckptEvery := range []int{4096, -1} {
		t.Run(fmt.Sprintf("garbage-tail/ckpt=%d", ckptEvery), func(t *testing.T) {
			dir := t.TempDir()
			cfg, before := build(t, dir, ckptEvery)
			last := filepath.Join(dir, "shard-000", segName(before.Shards[0].Seg))
			f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("\x77\x13garbage from a torn write")); err != nil {
				t.Fatal(err)
			}
			f.Close()

			svc := newWALService(t, recoverCfg(cfg))
			if svc.Recovery().Truncations == 0 {
				t.Error("torn tail was not truncated")
			}
			if got := normalizeStats(svc.Stats()); !reflect.DeepEqual(got, normalizeStats(before)) {
				t.Errorf("recovered stats diverge:\n got %+v\nwant %+v", got, before)
			}
			requireClean(t, svc)
		})
	}

	t.Run("sealed-segment-corruption", func(t *testing.T) {
		dir := t.TempDir()
		cfg, _ := build(t, dir, -1)
		sealed := filepath.Join(dir, "shard-000", segName(0))
		data, err := os.ReadFile(sealed)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(sealed, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := New(recoverCfg(cfg)); err == nil {
			t.Fatal("recovery must refuse a corrupt sealed segment")
		}
	})
}

// TestRecoverTornWriteMidBatch crashes the storage layer mid-group-commit
// with the deterministic fault injector: the shard must fail the batch
// (ResultError — unacknowledged work), and a later recovery on healthy
// storage must truncate the torn frame and come back serving and verifying
// clean.
func TestRecoverTornWriteMidBatch(t *testing.T) {
	const k, tenants = 48, 2
	dir := t.TempDir()
	reqs := genRequests(29, tenants, 250, 20_000)

	ffs := fault.NewFS(fault.OSFS, fault.FSConfig{Seed: 3, CrashAtWrite: 40}, nil)
	cfg := Config{K: k, Shards: 2, Tenants: tenants, NewPolicy: testPolicy,
		WAL: &WALConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 4096, FS: ffs}}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crashed := false
	for lo := 0; lo+128 <= len(reqs); lo += 128 {
		if _, err := svc.Apply(reqs[lo : lo+128]); err != nil {
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatal("fault injector never fired")
	}
	if svc.Err() == nil {
		t.Error("Err() must report the WAL failure")
	}
	svc.Close()

	rcfg := Config{K: k, Shards: 2, Tenants: tenants, NewPolicy: testPolicy,
		WAL: &WALConfig{Dir: dir, Fsync: FsyncOff, SegmentBytes: 4096, Recover: true}}
	svc2 := newWALService(t, rcfg)
	rep := svc2.Recovery()
	if rep.Truncations == 0 {
		t.Error("mid-batch torn write left no truncation")
	}
	st := svc2.Stats()
	if st.Requests != rep.Requests {
		t.Errorf("stats report %d requests, recovery %d", st.Requests, rep.Requests)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("hits %d + misses %d != requests %d", st.Hits, st.Misses, st.Requests)
	}
	requireClean(t, svc2)
	applyAll(t, svc2, reqs[:2000], 256)
	requireClean(t, svc2)
}

// TestRecoverQuotaSkew cuts one shard's quota-control entry out of its
// durable log (a torn tail right on the rebalance): recovery must reconcile
// the shards onto the newest quota vector and still verify clean.
func TestRecoverQuotaSkew(t *testing.T) {
	const k, tenants, n = 60, 3, 6000
	dir := t.TempDir()
	reqs := genRequests(41, tenants, 250, n)
	cfg := Config{K: k, Shards: 2, Tenants: tenants, Quotas: []int{20, 20, 20}, WAL: testWAL(dir)}
	newQuotas := []int{30, 20, 10}
	crashAt(t, cfg, reqs, n, 512, newQuotas)

	// Chop bytes off shard 1's final segment so its last frame — the quota
	// control entry — is torn away, leaving the shards on different vectors.
	var seg string
	segs, err := listSegments(fault.OSFS, filepath.Join(dir, "shard-001"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("list shard-001 segments: %v (%d)", err, len(segs))
	}
	seg = filepath.Join(dir, "shard-001", segName(segs[len(segs)-1]))
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-4); err != nil {
		t.Fatal(err)
	}

	rcfg := cfg
	rcfg.WAL = testWAL(dir)
	rcfg.WAL.Recover = true
	svc := newWALService(t, rcfg)
	if got := svc.Quotas(); !reflect.DeepEqual(got, newQuotas) {
		t.Errorf("reconciled quotas = %v, want %v", got, newQuotas)
	}
	if svc.Recovery().Truncations == 0 {
		t.Error("no truncation recorded")
	}
	requireClean(t, svc)
}

// TestPanicIsolation injects a one-shot engine panic into one shard of four:
// only that shard's requests may shed, the shard must rebuild from its own
// history without a process restart, and the service must then serve and
// verify clean again — with every pre-panic request still accounted for.
func TestPanicIsolation(t *testing.T) {
	const k, shards, tenants, n = 96, 4, 2, 20_000
	dir := t.TempDir()
	trig := &atomic.Bool{}
	cfg := Config{K: k, Shards: shards, Tenants: tenants,
		NewPolicy: func() sim.Policy { return &opaquePolicy{inner: testPolicy().(sim.DensePolicy), trig: trig} },
		WAL:       testWAL(dir)}
	svc := newWALService(t, cfg)
	reqs := genRequests(55, tenants, 300, n)
	applyAll(t, svc, reqs[:n/2], 512)

	trig.Store(true)
	var downShard = -1
	sawShed := false
	deadline := time.Now().Add(10 * time.Second)
	for lo := n / 2; ; lo += 512 {
		if lo+512 > len(reqs) {
			lo = 0
		}
		res, err := svc.Apply(reqs[lo : lo+512])
		if err == nil {
			if sawShed {
				break // shard is back
			}
			if time.Now().After(deadline) {
				t.Fatal("panic never fired")
			}
			continue
		}
		if err != ErrShardDown {
			t.Fatalf("apply: %v", err)
		}
		sawShed = true
		// Only one shard's requests may shed.
		for i, c := range res {
			if c != ResultShed {
				continue
			}
			r := reqs[lo+i]
			sh := svc.route(r.Tenant, r.Key)
			if downShard == -1 {
				downShard = sh
			} else if sh != downShard {
				t.Fatalf("requests shed on shards %d and %d; isolation broken", downShard, sh)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never came back from rebuild")
		}
	}
	if !sawShed || downShard == -1 {
		t.Fatal("no request was shed around the panic")
	}
	if err := svc.Err(); err != nil {
		t.Fatalf("shard stayed failed: %v", err)
	}
	st := svc.Stats()
	for _, sh := range st.Shards {
		if sh.Down || sh.Failed {
			t.Errorf("shard %d still down/failed after rebuild", sh.Shard)
		}
	}
	if reg := svc.Registry(); reg.Counter("cached_shard_down_total").Value() == 0 ||
		reg.Counter("cached_shard_restarts_total").Value() == 0 ||
		reg.Counter("cached_shed_total").Value() == 0 {
		t.Error("robustness counters did not move")
	}
	requireClean(t, svc)

	// A clean shutdown and recovery must still work after the rebuild.
	svc.Close()
	rcfg := cfg
	rcfg.WAL = testWAL(dir)
	rcfg.WAL.Recover = true
	before := normalizeStats(svc.Stats())
	svc2 := newWALService(t, rcfg)
	if got := normalizeStats(svc2.Stats()); !reflect.DeepEqual(got, before) {
		t.Errorf("post-rebuild recovery diverges:\n got %+v\nwant %+v", got, before)
	}
	requireClean(t, svc2)
}

// TestVerifyTimeout pins that Verify honors context cancellation with a
// recognizable error.
func TestVerifyTimeout(t *testing.T) {
	svc := newTestService(t, 64, 2, 2)
	applyAll(t, svc, genRequests(2, 2, 200, 20_000), 1024)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Verify(ctx); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("verify with canceled context: %v", err)
	}
}
