package check

import (
	"convexcache/internal/trace"
)

// minimizeBudget caps the number of candidate runs a minimization may spend;
// oracle traces are cheap to replay but fuzzing shrinks under a deadline.
const minimizeBudget = 2000

// MinimizeTrace returns a small sub-trace of tr on which fails still holds,
// using delta debugging (ddmin) over the request sequence: first the
// shortest still-failing prefix is found, then progressively smaller chunks
// of requests are deleted while the failure persists. fails(tr) must be true
// on entry; the result is always non-empty and failing.
//
// Removing requests from a valid trace keeps ownership consistent, so every
// candidate is a well-formed trace.
func MinimizeTrace(tr *trace.Trace, fails func(*trace.Trace) bool) *trace.Trace {
	reqs := append([]trace.Request(nil), tr.Requests()...)
	budget := minimizeBudget
	try := func(cand []trace.Request) (*trace.Trace, bool) {
		if len(cand) == 0 || budget <= 0 {
			return nil, false
		}
		budget--
		t, err := trace.FromRequests(cand)
		if err != nil {
			return nil, false
		}
		return t, fails(t)
	}

	// Phase 1: binary-search the shortest failing prefix. Failure is not
	// guaranteed monotone in the prefix length, so verify the final prefix
	// and fall back to the full sequence if the heuristic overshot.
	lo, hi := 1, len(reqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok := try(reqs[:mid]); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if _, ok := try(reqs[:hi]); ok {
		reqs = append([]trace.Request(nil), reqs[:hi]...)
	}

	// Phase 2: ddmin chunk deletion. Start with halves, shrink the chunk
	// size after a full fruitless pass, restart the pass after any success.
	for chunk := len(reqs) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start < len(reqs) && budget > 0; {
			end := start + chunk
			if end > len(reqs) {
				end = len(reqs)
			}
			cand := make([]trace.Request, 0, len(reqs)-(end-start))
			cand = append(cand, reqs[:start]...)
			cand = append(cand, reqs[end:]...)
			if _, ok := try(cand); ok {
				reqs = cand
				removedAny = true
				// Keep start in place: the next chunk slid into it.
			} else {
				start = end
			}
		}
		if !removedAny {
			chunk /= 2
		} else if chunk > len(reqs)/2 && len(reqs) > 1 {
			chunk = len(reqs) / 2
		}
		if budget <= 0 {
			break
		}
	}
	out, err := trace.FromRequests(reqs)
	if err != nil {
		return tr
	}
	return out
}
