package check

import (
	"fmt"
	"reflect"
	"strings"

	"convexcache/internal/core"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// StepRecord is the observable outcome of one simulation step, the unit the
// differential oracles compare. Two implementations "agree" when their
// per-step records are identical over the whole trace.
type StepRecord struct {
	// Page is the requested page.
	Page trace.PageID
	// Miss is true when the page was fetched.
	Miss bool
	// Evicted is the evicted page, -1 when none.
	Evicted trace.PageID
}

// Divergence describes the first step at which two runs disagreed.
type Divergence struct {
	// Step is the 0-based request index of the first disagreement; -1 when
	// the disagreement is in the aggregate results only.
	Step int
	// A and B describe each side's behavior at Step.
	A, B string
	// Repro is the ddmin-minimized trace still exhibiting the divergence;
	// nil when minimization was not run.
	Repro *trace.Trace
}

func (d *Divergence) Error() string {
	msg := fmt.Sprintf("check: first divergence at step %d: A %s, B %s", d.Step, d.A, d.B)
	if d.Repro != nil {
		msg += fmt.Sprintf(" (minimized repro: %d requests)", d.Repro.Len())
	}
	return msg
}

// ReproString renders the minimized repro in the text trace format, ready to
// be committed under testdata/ as a regression input.
func (d *Divergence) ReproString() string {
	if d.Repro == nil {
		return ""
	}
	var b strings.Builder
	if err := trace.Write(&b, d.Repro); err != nil {
		return ""
	}
	return b.String()
}

// record runs p over tr and captures the per-step records.
func record(tr *trace.Trace, p sim.Policy, cfg sim.Config) ([]StepRecord, sim.Result, error) {
	recs := make([]StepRecord, 0, tr.Len())
	user := cfg.Observer
	cfg.Observer = func(ev sim.Event) {
		recs = append(recs, StepRecord{Page: ev.Req.Page, Miss: ev.Miss, Evicted: ev.Evicted})
		if user != nil {
			user(ev)
		}
	}
	res, err := sim.Run(tr, p, cfg)
	return recs, res, err
}

// firstDivergence compares two record streams and the aggregate results.
func firstDivergence(ra, rb []StepRecord, resA, resB sim.Result) *Divergence {
	n := len(ra)
	if len(rb) < n {
		n = len(rb)
	}
	for i := 0; i < n; i++ {
		if ra[i] != rb[i] {
			return &Divergence{Step: i, A: describeRecord(ra[i]), B: describeRecord(rb[i])}
		}
	}
	if len(ra) != len(rb) {
		return &Divergence{Step: n, A: fmt.Sprintf("%d steps", len(ra)), B: fmt.Sprintf("%d steps", len(rb))}
	}
	if resA.Hits != resB.Hits ||
		!reflect.DeepEqual(resA.Misses, resB.Misses) ||
		!reflect.DeepEqual(resA.Evictions, resB.Evictions) ||
		resA.EffectiveSteps != resB.EffectiveSteps {
		return &Divergence{
			Step: -1,
			A:    fmt.Sprintf("hits=%d misses=%v evictions=%v", resA.Hits, resA.Misses, resA.Evictions),
			B:    fmt.Sprintf("hits=%d misses=%v evictions=%v", resB.Hits, resB.Misses, resB.Evictions),
		}
	}
	return nil
}

func describeRecord(r StepRecord) string {
	if !r.Miss {
		return fmt.Sprintf("hit page %d", r.Page)
	}
	if r.Evicted < 0 {
		return fmt.Sprintf("miss page %d, no eviction", r.Page)
	}
	return fmt.Sprintf("miss page %d, evict page %d", r.Page, r.Evicted)
}

// DiffPolicies replays the trace through two independently constructed
// policies under the same engine configuration and returns the first
// diverging step, or nil when the runs agree bit-for-bit. The factories are
// re-invoked during minimization, so they must return fresh instances.
func DiffPolicies(tr *trace.Trace, k int, mkA, mkB func() sim.Policy, engA, engB sim.Engine) (*Divergence, error) {
	div, err := diffOnce(tr, k, mkA, mkB, engA, engB)
	if err != nil || div == nil {
		return div, err
	}
	div.Repro = MinimizeTrace(tr, func(t *trace.Trace) bool {
		d, err := diffOnce(t, k, mkA, mkB, engA, engB)
		return err == nil && d != nil
	})
	// Re-derive the step/description on the minimized trace so the report
	// matches the committed repro.
	if div.Repro != nil {
		if d2, err := diffOnce(div.Repro, k, mkA, mkB, engA, engB); err == nil && d2 != nil {
			d2.Repro = div.Repro
			return d2, nil
		}
	}
	return div, nil
}

func diffOnce(tr *trace.Trace, k int, mkA, mkB func() sim.Policy, engA, engB sim.Engine) (*Divergence, error) {
	ra, resA, err := record(tr, mkA(), sim.ConfigAt(k).WithEngine(engA))
	if err != nil {
		return nil, fmt.Errorf("check: side A failed: %w", err)
	}
	rb, resB, err := record(tr, mkB(), sim.ConfigAt(k).WithEngine(engB))
	if err != nil {
		return nil, fmt.Errorf("check: side B failed: %w", err)
	}
	return firstDivergence(ra, rb, resA, resB), nil
}

// DiffEngines replays the trace through one dense-capable policy twice —
// once on the dense engine, once forced onto the map engine — and reports
// the first diverging step. This is the oracle guarding the PR-1 fast path:
// the two loops must be observably identical for every DensePolicy.
func DiffEngines(tr *trace.Trace, k int, mk func() sim.Policy) (*Divergence, error) {
	return DiffPolicies(tr, k, mk, mk, sim.EngineDense, sim.EngineMap)
}

// SnapshotRoundTrip checks core.Fast's checkpointing against itself: the
// trace is split at every boundary in splits (fractions of the trace
// length); the prefix is run, a snapshot is taken, restored into a fresh
// instance, and the suffix is driven manually on both the original and the
// restored instance. Both must evict identically, and Snapshot after
// Restore must reproduce the checkpoint exactly.
func SnapshotRoundTrip(tr *trace.Trace, k int, opt core.Options, splits []float64) error {
	for _, frac := range splits {
		cut := int(frac * float64(tr.Len()))
		if cut < 1 || cut >= tr.Len() {
			continue
		}
		if err := snapshotRoundTripAt(tr, k, opt, cut); err != nil {
			return err
		}
	}
	return nil
}

func snapshotRoundTripAt(tr *trace.Trace, k int, opt core.Options, cut int) error {
	orig := newManualDriver(k, core.NewFast(opt))
	for _, r := range tr.Requests()[:cut] {
		orig.serve(r)
	}
	snap := orig.alg.(*core.Fast).Snapshot()

	restored := core.NewFast(opt)
	if err := restored.Restore(snap); err != nil {
		return fmt.Errorf("check: restore at step %d failed: %w", cut, err)
	}
	back := restored.Snapshot()
	if !reflect.DeepEqual(normalizeSnapshot(snap), normalizeSnapshot(back)) {
		return fmt.Errorf("check: snapshot round trip at step %d not identical:\n  before: %+v\n  after:  %+v", cut, snap, back)
	}

	// Resume both and require identical evictions on the suffix.
	cont := newManualDriver(k, restored)
	cont.cache = orig.cloneCache()
	for step, r := range tr.Requests()[cut:] {
		ea := orig.serve(r)
		eb := cont.serve(r)
		if ea != eb {
			return &Divergence{
				Step: cut + step,
				A:    fmt.Sprintf("uninterrupted evicts %d", ea),
				B:    fmt.Sprintf("restored evicts %d", eb),
			}
		}
	}
	return nil
}

// normalizeSnapshot clears empty-vs-nil distinctions that DeepEqual would
// flag but that carry no state.
func normalizeSnapshot(s core.FastSnapshot) core.FastSnapshot {
	if len(s.Misses) == 0 {
		s.Misses = nil
	}
	if len(s.Pages) == 0 {
		s.Pages = nil
	}
	return s
}

// manualDriver drives a policy directly (the snapshot-resume path used by
// the server), owning cache membership like the engine does.
type manualDriver struct {
	k     int
	alg   sim.Policy
	cache map[trace.PageID]bool
	step  int
}

func newManualDriver(k int, alg sim.Policy) *manualDriver {
	return &manualDriver{k: k, alg: alg, cache: make(map[trace.PageID]bool)}
}

func (m *manualDriver) cloneCache() map[trace.PageID]bool {
	out := make(map[trace.PageID]bool, len(m.cache))
	for p, v := range m.cache {
		out[p] = v
	}
	return out
}

// serve plays one request and returns the evicted page (-1 when none).
func (m *manualDriver) serve(r trace.Request) trace.PageID {
	m.step++
	if m.cache[r.Page] {
		m.alg.OnHit(m.step, r)
		return -1
	}
	evicted := trace.PageID(-1)
	if len(m.cache) >= m.k {
		v := m.alg.Victim(m.step, r)
		delete(m.cache, v)
		m.alg.OnEvict(m.step, v)
		evicted = v
	}
	m.cache[r.Page] = true
	m.alg.OnInsert(m.step, r)
	return evicted
}

// ResetReuse checks that Reset fully restores a policy's initial state: a
// fresh instance and a reset-after-use instance must behave identically.
// This guards the registry contract every sweep and experiment relies on
// when reusing policy instances across runs.
func ResetReuse(tr *trace.Trace, k int, mk func() sim.Policy) (*Divergence, error) {
	reused := mk()
	if _, _, err := record(tr, reused, sim.ConfigAt(k)); err != nil {
		return nil, err
	}
	// The B factory resets before every (re-)run so minimization attempts
	// do not leak state between each other.
	mkB := func() sim.Policy { reused.Reset(); return reused }
	return DiffPolicies(tr, k, mk, mkB, sim.EngineAuto, sim.EngineAuto)
}
