package check

import (
	"context"
	"fmt"
	"os"
	"strings"

	"convexcache/internal/cached"
	"convexcache/internal/fault"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// This file holds the crash-recovery oracle: kill the live cache service at
// chosen points, recover it from its write-ahead log, and require the
// recovered state to be bit-identical to the state that crashed — then keep
// driving it and require the completed run to be bit-identical to a run that
// never crashed. Recovery that is merely "close" is a correctness bug: the
// shard step is a deterministic function of the logged entry stream, so the
// WAL replay has no legitimate source of drift.

// recoveryWAL returns the WAL configuration the oracle uses: small segments
// so every scenario crosses rotations, and checkpoints well inside the trace
// so recovery exercises the checkpoint-plus-replay path, not just one of them.
func recoveryWAL(dir string, fs fault.FS) *cached.WALConfig {
	return &cached.WALConfig{Dir: dir, Fsync: cached.FsyncOff, SegmentBytes: 4096, CheckpointEvery: 4096, FS: fs}
}

// statsSig canonicalizes the engine-visible part of a Stats report: tenant
// counters, quota vector, and per-shard request/occupancy/page counts. WAL
// layout fields (segment index, sealed/tail split) are excluded — they depend
// on varint-encoded sequence numbers whose interleaving across shards is
// scheduler-dependent.
func statsSig(st cached.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "req=%d hits=%d misses=%d ev=%d quotas=%v", st.Requests, st.Hits, st.Misses, st.Evictions, st.Quotas)
	for _, ts := range st.PerTenant {
		fmt.Fprintf(&b, " t%d:%d/%d/%d/%d", ts.Tenant, ts.Requests, ts.Hits, ts.Misses, ts.Evictions)
	}
	for _, sh := range st.Shards {
		fmt.Fprintf(&b, " s%d:%d/%d/%d", sh.Shard, sh.Requests, sh.Occupancy, sh.Pages)
	}
	return b.String()
}

// driveBatches applies reqs[lo:hi) in fixed batches from one goroutine.
func driveBatches(svc *cached.Service, reqs []cached.Request, lo, hi int) error {
	const batch = 512
	for ; lo < hi; lo += batch {
		end := lo + batch
		if end > hi {
			end = hi
		}
		if _, err := svc.Apply(reqs[lo:end]); err != nil {
			return err
		}
	}
	return nil
}

// verifyClean runs the service's own live-vs-replay differential and adapts a
// failure into a Divergence.
func verifyClean(svc *cached.Service, label string) (*Divergence, error) {
	rep, err := svc.Verify(context.Background())
	if err != nil {
		return nil, fmt.Errorf("check: %s: verify: %w", label, err)
	}
	if !rep.Clean {
		return &Divergence{Step: -1, A: label, B: "replay: " + strings.Join(rep.Diffs, "; ")}, nil
	}
	return nil, nil
}

// recoveryScenario is one crash shape in the DiffRecovery matrix.
type recoveryScenario struct {
	name string
	// partition selects the quota-partition engine (with a quota rebalance
	// installed as the final durable action before the crash — the
	// mid-rebalance crash point); false selects the classic policy engine.
	partition bool
	// cut is the request index the crash lands on, as a fraction of the
	// trace.
	cut float64
}

// DiffRecovery is the crash-and-recover differential oracle. For each shard
// count it crashes a WAL-backed service at several points — early, mid-trace
// after a quota rebalance (partition engine), and late (classic engine) —
// and checks three promises:
//
//  1. Bit-exact resurrection: the recovered service's stats equal the frozen
//     pre-crash stats exactly (tenant counters, occupancy, page tables).
//  2. Replay validity: the recovered state passes the service's own
//     live-vs-replay verification.
//  3. Continuation: driving the recovered service with the rest of the trace
//     produces exactly the stats of a service that never crashed.
//
// A final scenario tears the storage layer itself mid-group-commit with the
// deterministic fault injector: the batch must fail un-acknowledged, and
// recovery on healthy storage must truncate the torn frame and come back
// internally consistent and verifying clean.
func DiffRecovery(tr *trace.Trace, k int, mk func() sim.Policy, shardCounts []int) (*Divergence, error) {
	reqs := make([]cached.Request, tr.Len())
	for i, r := range tr.Requests() {
		op := cached.OpGet
		if i%4 == 3 {
			op = cached.OpPut
		}
		reqs[i] = cached.Request{Op: op, Tenant: r.Tenant, Key: fmt.Appendf(nil, "p%d", r.Page)}
	}
	tenants := tr.NumTenants()

	scenarios := []recoveryScenario{
		{name: "classic-early", partition: false, cut: 0.1},
		{name: "classic-late", partition: false, cut: 0.9},
		{name: "partition-mid-rebalance", partition: true, cut: 0.5},
	}
	for _, n := range shardCounts {
		if n > k {
			continue
		}
		for _, sc := range scenarios {
			div, err := diffRecoveryOne(reqs, tenants, k, n, mk, sc)
			if err != nil || div != nil {
				return div, err
			}
		}
		div, err := diffTornWrite(reqs, tenants, k, n, mk)
		if err != nil || div != nil {
			return div, err
		}
	}
	return nil, nil
}

// recoveryConfig assembles the service config for one scenario leg.
func recoveryConfig(tenants, k, n int, mk func() sim.Policy, partition bool, wal *cached.WALConfig) cached.Config {
	cfg := cached.Config{K: k, Shards: n, Tenants: tenants, WAL: wal}
	if partition {
		cfg.Quotas = evenQuotas(k, tenants)
	} else {
		cfg.NewPolicy = mk
	}
	return cfg
}

// evenQuotas splits k pages over tenants, remainder to the low tenants, so
// the vector sums to k exactly.
func evenQuotas(k, tenants int) []int {
	q := make([]int, tenants)
	for t := range q {
		q[t] = k / tenants
		if t < k%tenants {
			q[t]++
		}
	}
	return q
}

// rotatedQuotas is the rebalance target: each tenant takes its neighbor's
// share, preserving the sum.
func rotatedQuotas(base []int) []int {
	out := make([]int, len(base))
	for t := range base {
		out[t] = base[(t+1)%len(base)]
	}
	return out
}

func diffRecoveryOne(reqs []cached.Request, tenants, k, n int, mk func() sim.Policy, sc recoveryScenario) (div *Divergence, err error) {
	label := fmt.Sprintf("recovery n=%d %s", n, sc.name)
	dir, err := os.MkdirTemp("", "convexcache-recovery-")
	if err != nil {
		return nil, fmt.Errorf("check: %s: %w", label, err)
	}
	defer os.RemoveAll(dir)

	cut := int(float64(len(reqs)) * sc.cut)
	var rebalance []int
	if sc.partition {
		rebalance = rotatedQuotas(evenQuotas(k, tenants))
	}

	// Leg 1: drive to the crash point and kill the process mid-flight.
	crashed, err := cached.New(recoveryConfig(tenants, k, n, mk, sc.partition, recoveryWAL(dir, nil)))
	if err != nil {
		return nil, fmt.Errorf("check: %s: %w", label, err)
	}
	if err := driveBatches(crashed, reqs, 0, cut); err != nil {
		crashed.Close()
		return nil, fmt.Errorf("check: %s: drive: %w", label, err)
	}
	if rebalance != nil {
		if err := crashed.SetQuotas(rebalance); err != nil {
			crashed.Close()
			return nil, fmt.Errorf("check: %s: rebalance: %w", label, err)
		}
	}
	crashed.Crash()
	frozen := statsSig(crashed.Stats())

	// Leg 2: recover and demand bit-exact resurrection.
	wcfg := recoveryWAL(dir, nil)
	wcfg.Recover = true
	svc, err := cached.New(recoveryConfig(tenants, k, n, mk, sc.partition, wcfg))
	if err != nil {
		return nil, fmt.Errorf("check: %s: recover: %w", label, err)
	}
	defer svc.Close()
	if got := statsSig(svc.Stats()); got != frozen {
		return &Divergence{Step: cut, A: label + " recovered: " + got, B: "frozen pre-crash: " + frozen}, nil
	}
	if div, err := verifyClean(svc, label+" post-recovery"); div != nil || err != nil {
		return div, err
	}

	// Leg 3: finish the trace and demand exact agreement with a run that
	// never crashed.
	if err := driveBatches(svc, reqs, cut, len(reqs)); err != nil {
		return nil, fmt.Errorf("check: %s: continue: %w", label, err)
	}
	if div, err := verifyClean(svc, label+" post-continuation"); div != nil || err != nil {
		return div, err
	}
	refDir, err := os.MkdirTemp("", "convexcache-recovery-ref-")
	if err != nil {
		return nil, fmt.Errorf("check: %s: %w", label, err)
	}
	defer os.RemoveAll(refDir)
	ref, err := cached.New(recoveryConfig(tenants, k, n, mk, sc.partition, recoveryWAL(refDir, nil)))
	if err != nil {
		return nil, fmt.Errorf("check: %s: reference: %w", label, err)
	}
	defer ref.Close()
	if err := driveBatches(ref, reqs, 0, cut); err != nil {
		return nil, fmt.Errorf("check: %s: reference drive: %w", label, err)
	}
	if rebalance != nil {
		if err := ref.SetQuotas(rebalance); err != nil {
			return nil, fmt.Errorf("check: %s: reference rebalance: %w", label, err)
		}
	}
	if err := driveBatches(ref, reqs, cut, len(reqs)); err != nil {
		return nil, fmt.Errorf("check: %s: reference drive: %w", label, err)
	}
	if got, want := statsSig(svc.Stats()), statsSig(ref.Stats()); got != want {
		return &Divergence{Step: cut, A: label + " crash+recover+continue: " + got, B: "uninterrupted: " + want}, nil
	}
	return nil, nil
}

// diffTornWrite is the mid-batch crash: a deterministic storage fault tears a
// group-commit write partway through. The contract is weaker than the clean
// crash points — the exact tear position depends on shard scheduling — but
// absolute: the failing batch is never acknowledged, and recovery must come
// back internally consistent, verifying clean, and still serving.
func diffTornWrite(reqs []cached.Request, tenants, k, n int, mk func() sim.Policy) (*Divergence, error) {
	label := fmt.Sprintf("recovery n=%d torn-write", n)
	dir, err := os.MkdirTemp("", "convexcache-torn-")
	if err != nil {
		return nil, fmt.Errorf("check: %s: %w", label, err)
	}
	defer os.RemoveAll(dir)

	ffs := fault.NewFS(fault.OSFS, fault.FSConfig{Seed: 7, CrashAtWrite: int64(30 + n*10)}, nil)
	svc, err := cached.New(recoveryConfig(tenants, k, n, mk, false, recoveryWAL(dir, ffs)))
	if err != nil {
		return nil, fmt.Errorf("check: %s: %w", label, err)
	}
	torn := false
	for lo := 0; lo+128 <= len(reqs); lo += 128 {
		if _, err := svc.Apply(reqs[lo : lo+128]); err != nil {
			torn = true
			break
		}
	}
	svc.Close()
	if !torn {
		return nil, fmt.Errorf("check: %s: fault injector never fired over %d requests", label, len(reqs))
	}

	wcfg := recoveryWAL(dir, nil)
	wcfg.Recover = true
	rec, err := cached.New(recoveryConfig(tenants, k, n, mk, false, wcfg))
	if err != nil {
		return nil, fmt.Errorf("check: %s: recover: %w", label, err)
	}
	defer rec.Close()
	st := rec.Stats()
	if st.Hits+st.Misses != st.Requests {
		return &Divergence{Step: -1, A: fmt.Sprintf("%s: hits %d + misses %d", label, st.Hits, st.Misses), B: fmt.Sprintf("requests %d", st.Requests)}, nil
	}
	if rep := rec.Recovery(); rep == nil || rep.Requests != st.Requests {
		return &Divergence{Step: -1, A: fmt.Sprintf("%s: recovery report %+v", label, rep), B: fmt.Sprintf("stats report %d requests", st.Requests)}, nil
	}
	if div, err := verifyClean(rec, label+" post-recovery"); div != nil || err != nil {
		return div, err
	}
	if err := driveBatches(rec, reqs, 0, min(len(reqs), 2048)); err != nil {
		return nil, fmt.Errorf("check: %s: serve after recovery: %w", label, err)
	}
	return verifyClean(rec, label+" post-serve")
}
