package check

import (
	"strings"
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/sim"
)

// TestDiffRecoveryCleanOnWorkloads runs the crash-and-recover oracle over the
// shared workload suite at shard counts 1, 2 and 4: every crash point must
// resurrect bit-exactly, verify clean, and finish the trace with exactly the
// counters of an uninterrupted run.
func TestDiffRecoveryCleanOnWorkloads(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			tr, err := w.Gen(11, 6000)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{4, 64} {
				opt := core.Options{Costs: oracleCosts(tr.NumTenants())}
				div, err := DiffRecovery(tr, k, func() sim.Policy { return core.NewFast(opt) }, []int{1, 2, 4})
				if err != nil {
					t.Fatal(err)
				}
				if div != nil {
					t.Fatalf("k=%d: %v", k, div)
				}
			}
		})
	}
}

// TestRecoveryOracleRegistered pins the recovery oracle into the matrix so
// cmd/check and the oracle-matrix CI job pick it up automatically.
func TestRecoveryOracleRegistered(t *testing.T) {
	for _, o := range Oracles() {
		if strings.HasPrefix(o.Name, "recovery/") {
			return
		}
	}
	t.Fatal("no recovery/* oracle registered")
}
