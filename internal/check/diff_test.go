package check

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func TestDiffEnginesFastAgrees(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		tr := smallRandomTrace(seed, 3, 8, 800)
		for _, k := range []int{1, 2, 5, 16} {
			opt := core.Options{Costs: oracleCosts(tr.NumTenants())}
			div, err := DiffEngines(tr, k, func() sim.Policy { return core.NewFast(opt) })
			if err != nil {
				t.Fatal(err)
			}
			if div != nil {
				t.Fatalf("seed %d k %d: %v\nrepro:\n%s", seed, k, div, div.ReproString())
			}
		}
	}
}

func TestDiffPoliciesFastVsDiscrete(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		tr := smallRandomTrace(seed, 2, 6, 600)
		opt := core.Options{Costs: oracleCosts(tr.NumTenants())}
		div, err := DiffPolicies(tr, 4,
			func() sim.Policy { return core.NewFast(opt) },
			func() sim.Policy { return core.NewDiscrete(opt) },
			sim.EngineAuto, sim.EngineAuto)
		if err != nil {
			t.Fatal(err)
		}
		if div != nil {
			t.Fatalf("seed %d: %v\nrepro:\n%s", seed, div, div.ReproString())
		}
	}
}

func TestDiffPoliciesDetectsRealDivergence(t *testing.T) {
	// LRU and FIFO genuinely diverge once a hit reorders recency: after
	// 1,2,3 the hit on 1 protects it under LRU but not under FIFO, so the
	// miss on 4 evicts different pages. The noise prefix gives the
	// minimizer something to strip.
	b := trace.NewBuilder()
	for i := 0; i < 50; i++ {
		b.Add(0, trace.PageID(100+i%3))
	}
	for _, p := range []int{1, 2, 3, 1, 4, 1} {
		b.Add(0, trace.PageID(p))
	}
	tr := b.MustBuild()
	mkA := func() sim.Policy { return policy.MustNew("lru", policy.Spec{}) }
	mkB := func() sim.Policy { return policy.MustNew("fifo", policy.Spec{}) }
	div, err := DiffPolicies(tr, 3, mkA, mkB, sim.EngineAuto, sim.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("LRU vs FIFO reported as identical")
	}
	if div.Repro == nil {
		t.Fatal("no minimized repro")
	}
	if div.Repro.Len() > 10 {
		t.Errorf("repro not minimized: %d requests", div.Repro.Len())
	}
	if div.Step < 0 || div.Step >= div.Repro.Len() {
		t.Errorf("divergence step %d out of range for %d-request repro", div.Step, div.Repro.Len())
	}
	// The repro must still diverge when replayed.
	again, err := DiffPolicies(div.Repro, 3, mkA, mkB, sim.EngineAuto, sim.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if again == nil {
		t.Fatal("minimized repro does not reproduce the divergence")
	}
	if !strings.Contains(div.ReproString(), "0 ") {
		t.Errorf("ReproString not in trace text format:\n%s", div.ReproString())
	}
}

func TestSnapshotRoundTripFastAllBackends(t *testing.T) {
	tr := smallRandomTrace(21, 3, 7, 500)
	opt := core.Options{Costs: oracleCosts(tr.NumTenants())}
	if err := SnapshotRoundTrip(tr, 5, opt, []float64{0.1, 0.25, 0.5, 0.75, 0.9}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotTenantOrderRegression replays the committed minimized repro of
// the snapshot nondeterminism the oracle found: Fast.Snapshot on the map
// backend walked tenants in map iteration order, so multi-tenant round
// trips reordered the serialized pages. Many rounds make the old map-order
// behavior practically certain to trip.
func TestSnapshotTenantOrderRegression(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "snapshot-tenant-order.trace"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Costs: []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 2}}}
	for round := 0; round < 30; round++ {
		if err := SnapshotRoundTrip(tr, 3, opt, []float64{0.5, 0.75}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestResetReuseCleanOnRegistry(t *testing.T) {
	tr := smallRandomTrace(31, 2, 6, 400)
	for _, name := range policy.Names() {
		mk := registryFactory(name, tr, 4)
		div, err := ResetReuse(tr, 4, mk)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if div != nil {
			t.Fatalf("%s: Reset does not restore initial state: %v", name, div)
		}
	}
}

// flipFIFO plants a Reset bug: it runs as FIFO on a fresh instance but as
// LIFO after any Reset — contract-valid either way, just different.
type flipFIFO struct {
	queue   []trace.PageID
	flipped bool
}

func (f *flipFIFO) Name() string                       { return "flip-fifo" }
func (f *flipFIFO) OnHit(step int, r trace.Request)    {}
func (f *flipFIFO) OnInsert(step int, r trace.Request) { f.queue = append(f.queue, r.Page) }
func (f *flipFIFO) Victim(step int, r trace.Request) trace.PageID {
	if f.flipped {
		return f.queue[len(f.queue)-1]
	}
	return f.queue[0]
}
func (f *flipFIFO) OnEvict(step int, p trace.PageID) {
	for i, q := range f.queue {
		if q == p {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return
		}
	}
}
func (f *flipFIFO) Reset() { f.queue = nil; f.flipped = true } // the bug

func TestResetReuseDetectsBrokenReset(t *testing.T) {
	tr := smallRandomTrace(41, 1, 6, 300)
	div, err := ResetReuse(tr, 3, func() sim.Policy { return &flipFIFO{} })
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("broken Reset not detected")
	}
	if div.Repro == nil || !strings.Contains(div.Error(), "divergence") {
		t.Fatalf("divergence not localized: %v", div)
	}
}
