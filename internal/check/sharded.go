package check

import (
	"context"
	"fmt"
	"reflect"

	"convexcache/internal/core"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// This file holds the PR-6 differential oracles: the batched dense loop
// against the per-step reference, and sharded replay against sequential
// replay. Both compare the full per-tenant accounting (hits, misses,
// evictions, effective steps), which is the observable contract — sharded
// replay additionally promises that worker parallelism never changes the
// merged numbers.

// resultDivergence compares two Results and reports an aggregate-level
// Divergence (Step == -1) when any accounted quantity differs.
func resultDivergence(labelA, labelB string, a, b sim.Result) *Divergence {
	if a.Hits == b.Hits &&
		reflect.DeepEqual(a.Misses, b.Misses) &&
		reflect.DeepEqual(a.Evictions, b.Evictions) &&
		a.EffectiveSteps == b.EffectiveSteps {
		return nil
	}
	return &Divergence{
		Step: -1,
		A:    fmt.Sprintf("%s: hits=%d misses=%v evictions=%v eff=%d", labelA, a.Hits, a.Misses, a.Evictions, a.EffectiveSteps),
		B:    fmt.Sprintf("%s: hits=%d misses=%v evictions=%v eff=%d", labelB, b.Hits, b.Misses, b.Evictions, b.EffectiveSteps),
	}
}

// DiffBatched replays the trace through one batch-capable policy twice —
// once on the batched dense loop, once forced onto the per-step dense loop
// — and reports any divergence in the per-tenant accounting. When the
// policy is core.Fast the final snapshots (aging, per-tenant counters,
// per-tenant recency order) are compared too, which catches internal-state
// drift that happens not to change the counters on this trace. On
// divergence the trace is ddmin-minimized like the other oracles.
func DiffBatched(tr *trace.Trace, k int, mk func() sim.Policy) (*Divergence, error) {
	div, err := diffBatchedOnce(tr, k, mk)
	if err != nil || div == nil {
		return div, err
	}
	div.Repro = MinimizeTrace(tr, func(t *trace.Trace) bool {
		d, err := diffBatchedOnce(t, k, mk)
		return err == nil && d != nil
	})
	if div.Repro != nil {
		if d2, err := diffBatchedOnce(div.Repro, k, mk); err == nil && d2 != nil {
			d2.Repro = div.Repro
			return d2, nil
		}
	}
	return div, nil
}

func diffBatchedOnce(tr *trace.Trace, k int, mk func() sim.Policy) (*Divergence, error) {
	pa := mk()
	resA, err := sim.Run(tr, pa, sim.Config{K: k, Engine: sim.EngineDense})
	if err != nil {
		return nil, fmt.Errorf("check: batched side failed: %w", err)
	}
	pb := mk()
	resB, err := sim.Run(tr, pb, sim.Config{K: k, Engine: sim.EngineDense, NoBatch: true})
	if err != nil {
		return nil, fmt.Errorf("check: per-step side failed: %w", err)
	}
	if div := resultDivergence("batched", "per-step", resA, resB); div != nil {
		return div, nil
	}
	fa, okA := pa.(*core.Fast)
	fb, okB := pb.(*core.Fast)
	if okA && okB {
		sa, sb := fa.Snapshot(), fb.Snapshot()
		if !reflect.DeepEqual(normalizeSnapshot(sa), normalizeSnapshot(sb)) {
			return &Divergence{
				Step: -1,
				A:    fmt.Sprintf("batched final state: aging=%v misses=%v pages=%d", sa.Aging, sa.Misses, len(sa.Pages)),
				B:    fmt.Sprintf("per-step final state: aging=%v misses=%v pages=%d", sb.Aging, sb.Misses, len(sb.Pages)),
			}, nil
		}
	}
	return nil, nil
}

// DiffSharded checks the two promises of sharded replay on one trace:
//
//  1. Degeneracy: RunSharded with n = 1 is bit-identical to sequential
//     sim.Run on the dense engine (same model, same loop, same numbers).
//  2. Determinism: for every n, replaying the same ShardPlan with 1 worker
//     and with n workers yields identical merged accounting — parallelism
//     never changes the answer.
//
// It also enforces conservation on every merged result: hits plus total
// misses must equal the effective step count. Shard counts that exceed k
// are skipped (the runner rejects them by contract).
func DiffSharded(tr *trace.Trace, k int, mk func() sim.Policy, shardCounts []int) (*Divergence, error) {
	seq, err := sim.Run(tr, mk(), sim.Config{K: k, Engine: sim.EngineDense})
	if err != nil {
		return nil, fmt.Errorf("check: sequential side failed: %w", err)
	}
	ctx := context.Background()
	for _, n := range shardCounts {
		if n > k {
			continue
		}
		pl, err := sim.BuildShards(tr, n)
		if err != nil {
			return nil, fmt.Errorf("check: shard plan n=%d: %w", n, err)
		}
		par, err := pl.Run(ctx, mk, sim.Config{K: k}, n)
		if err != nil {
			return nil, fmt.Errorf("check: sharded run n=%d: %w", n, err)
		}
		ser, err := pl.Run(ctx, mk, sim.Config{K: k}, 1)
		if err != nil {
			return nil, fmt.Errorf("check: sharded run n=%d workers=1: %w", n, err)
		}
		if div := resultDivergence(fmt.Sprintf("n=%d workers=%d", n, n), fmt.Sprintf("n=%d workers=1", n), par, ser); div != nil {
			return div, nil
		}
		if got, want := par.Hits+par.TotalMisses(), int64(par.EffectiveSteps); got != want {
			return &Divergence{
				Step: -1,
				A:    fmt.Sprintf("n=%d hits+misses=%d", n, got),
				B:    fmt.Sprintf("effective steps=%d", want),
			}, nil
		}
		if n == 1 {
			if div := resultDivergence("sharded n=1", "sequential", par, seq); div != nil {
				return div, nil
			}
		}
	}
	return nil, nil
}
