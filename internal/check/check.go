// Package check is the correctness-tooling layer of the reproduction: it
// turns the paper's guarantees and the engine's cache semantics into
// always-on, mechanically checkable invariants, and pairs every fast-path
// implementation with an oracle it must agree with bit-for-bit.
//
// Three entry points are provided:
//
//   - Wrap adapts any sim.Policy so that every callback is validated against
//     a shadow model of the cache (residency, ownership disjointness,
//     occupancy bounds). Usable from any test or experiment.
//
//   - Run executes a full simulation under per-step invariant assertions
//     (occupancy <= k, hit/miss/eviction accounting consistent with the
//     returned Result, monotone cumulative convex cost).
//
//   - The differential oracles (DiffEngines, DiffPolicies, SnapshotRoundTrip,
//     ResetReuse) replay one trace through pairs of implementations that must
//     agree — dense engine vs map engine, core.Fast vs the Figure-3
//     reference, snapshot/restore round-trips — and report the first
//     diverging step together with a ddmin-minimized repro trace.
//
// cmd/check runs the full oracle matrix over generated workloads for CI, and
// FuzzDifferential / FuzzInvariants drive the same checks from go fuzzing.
package check

import (
	"fmt"
	"strings"

	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Violation is one detected invariant breach, anchored to the request step
// that exposed it.
type Violation struct {
	// Step is the 0-based request index at which the breach was detected.
	Step int
	// Kind is a short machine-comparable label ("occupancy", "residency",
	// "accounting", "monotone-cost", "divergence", "bound", ...).
	Kind string
	// Msg is the human-readable description.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d [%s]: %s", v.Step, v.Kind, v.Msg)
}

// Error aggregates violations into an error.
type Error struct {
	// Violations are the breaches in detection order.
	Violations []Violation
}

func (e *Error) Error() string {
	if len(e.Violations) == 0 {
		return "check: no violations"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d violation(s); first: %s", len(e.Violations), e.Violations[0])
	return b.String()
}

// AsError returns nil for an empty violation list, else an *Error.
func AsError(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	return &Error{Violations: vs}
}

// Checked wraps a sim.Policy with a shadow cache model validating the
// engine<->policy contract at every callback. It forwards the OfflinePolicy
// and DensePolicy capabilities of the wrapped policy, so wrapping never
// changes which engine drives the run.
type Checked struct {
	inner sim.Policy

	// Map-path shadow state.
	resident map[trace.PageID]trace.Tenant
	owner    map[trace.PageID]trace.Tenant

	// Dense-path shadow state.
	d          *trace.Dense
	denseK     int
	denseIn    []bool
	denseCount int

	// kHat is the occupancy observed at the first Victim call: the engine
	// only asks for a victim when the cache is full, so this pins k on the
	// map path (where PrepareDense never tells us).
	kHat int

	violations []Violation
}

// Wrap returns p wrapped with contract checking. The wrapped policy reports
// breaches via Violations/Err rather than panicking, so tests can assert on
// them and fuzzing can minimize the inputs that cause them.
func Wrap(p sim.Policy) *Checked {
	c := &Checked{inner: p}
	c.resetShadow()
	return c
}

// Unwrap returns the wrapped policy.
func (c *Checked) Unwrap() sim.Policy { return c.inner }

// Violations returns the breaches detected so far, in order.
func (c *Checked) Violations() []Violation { return c.violations }

// Err returns nil when no breach was detected, else an *Error.
func (c *Checked) Err() error { return AsError(c.violations) }

func (c *Checked) violate(step int, kind, format string, args ...any) {
	c.violations = append(c.violations, Violation{Step: step, Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

func (c *Checked) resetShadow() {
	c.resident = make(map[trace.PageID]trace.Tenant)
	c.owner = make(map[trace.PageID]trace.Tenant)
	c.d = nil
	c.denseIn = nil
	c.denseCount = 0
	c.denseK = 0
	c.kHat = 0
}

// Name implements sim.Policy.
func (c *Checked) Name() string { return "checked(" + c.inner.Name() + ")" }

// Reset implements sim.Policy, clearing both the wrapped policy and the
// shadow model. Detected violations are kept (they describe the past run).
func (c *Checked) Reset() {
	c.inner.Reset()
	c.resetShadow()
}

// Prepare forwards the indexed trace when the wrapped policy is offline.
// The engine calls it unconditionally because Checked always satisfies
// sim.OfflinePolicy; for online policies it is a no-op, matching the
// engine's behavior on the unwrapped policy.
func (c *Checked) Prepare(ix *trace.Indexed) {
	if op, ok := c.inner.(sim.OfflinePolicy); ok {
		op.Prepare(ix)
	}
}

// OnHit implements sim.Policy.
func (c *Checked) OnHit(step int, r trace.Request) {
	if ow, ok := c.resident[r.Page]; !ok {
		c.violate(step, "residency", "OnHit for page %d which the shadow model holds absent", r.Page)
	} else if ow != r.Tenant {
		c.violate(step, "ownership", "OnHit for page %d as tenant %d, resident under tenant %d", r.Page, r.Tenant, ow)
	}
	c.checkOwner(step, r)
	c.inner.OnHit(step, r)
}

// OnInsert implements sim.Policy.
func (c *Checked) OnInsert(step int, r trace.Request) {
	if _, ok := c.resident[r.Page]; ok {
		c.violate(step, "residency", "OnInsert for page %d which is already resident", r.Page)
	}
	c.checkOwner(step, r)
	c.resident[r.Page] = r.Tenant
	if c.kHat > 0 && len(c.resident) > c.kHat {
		c.violate(step, "occupancy", "occupancy %d exceeds inferred capacity %d after insert of page %d",
			len(c.resident), c.kHat, r.Page)
	}
	c.inner.OnInsert(step, r)
}

// Victim implements sim.Policy.
func (c *Checked) Victim(step int, r trace.Request) trace.PageID {
	if c.kHat == 0 {
		c.kHat = len(c.resident)
	} else if len(c.resident) != c.kHat {
		c.violate(step, "occupancy", "Victim called at occupancy %d, but capacity was pinned to %d",
			len(c.resident), c.kHat)
	}
	v := c.inner.Victim(step, r)
	if _, ok := c.resident[v]; !ok {
		c.violate(step, "victim", "policy %s returned victim %d not in the shadow cache", c.inner.Name(), v)
	}
	return v
}

// OnEvict implements sim.Policy.
func (c *Checked) OnEvict(step int, p trace.PageID) {
	if _, ok := c.resident[p]; !ok {
		c.violate(step, "residency", "OnEvict for page %d which the shadow model holds absent", p)
	}
	delete(c.resident, p)
	c.inner.OnEvict(step, p)
}

// checkOwner pins page ownership on first sight and verifies tenant
// disjointness afterwards: a page must never be requested under two owners.
func (c *Checked) checkOwner(step int, r trace.Request) {
	if ow, ok := c.owner[r.Page]; ok {
		if ow != r.Tenant {
			c.violate(step, "ownership", "page %d requested by tenant %d but owned by tenant %d", r.Page, r.Tenant, ow)
		}
		return
	}
	c.owner[r.Page] = r.Tenant
}

// PrepareDense forwards the dense handshake when the wrapped policy has a
// dense path; otherwise it declines so the engine falls back to the map
// loop, exactly as it would for the unwrapped policy.
func (c *Checked) PrepareDense(d *trace.Dense, k int) bool {
	dp, ok := c.inner.(sim.DensePolicy)
	if !ok {
		return false
	}
	if !dp.PrepareDense(d, k) {
		return false
	}
	c.d = d
	c.denseK = k
	c.denseIn = make([]bool, d.NumPages())
	c.denseCount = 0
	return true
}

// DenseHit implements sim.DensePolicy.
func (c *Checked) DenseHit(step int, page int32) {
	if !c.denseResident(page) {
		c.violate(step, "residency", "DenseHit for page %d which the shadow model holds absent", page)
	}
	c.inner.(sim.DensePolicy).DenseHit(step, page)
}

// DenseInsert implements sim.DensePolicy.
func (c *Checked) DenseInsert(step int, page int32) {
	if c.denseResident(page) {
		c.violate(step, "residency", "DenseInsert for page %d which is already resident", page)
	} else if int(page) < len(c.denseIn) && page >= 0 {
		c.denseIn[page] = true
		c.denseCount++
	}
	if c.denseCount > c.denseK {
		c.violate(step, "occupancy", "dense occupancy %d exceeds capacity %d after insert of page %d",
			c.denseCount, c.denseK, page)
	}
	c.inner.(sim.DensePolicy).DenseInsert(step, page)
}

// DenseVictim implements sim.DensePolicy.
func (c *Checked) DenseVictim(step int, page int32) int32 {
	if c.denseCount != c.denseK {
		c.violate(step, "occupancy", "DenseVictim called at occupancy %d with capacity %d", c.denseCount, c.denseK)
	}
	v := c.inner.(sim.DensePolicy).DenseVictim(step, page)
	if !c.denseResident(v) {
		c.violate(step, "victim", "policy %s returned dense victim %d not in the shadow cache", c.inner.Name(), v)
	}
	return v
}

// DenseEvict implements sim.DensePolicy.
func (c *Checked) DenseEvict(step int, page int32) {
	if !c.denseResident(page) {
		c.violate(step, "residency", "DenseEvict for page %d which the shadow model holds absent", page)
	} else {
		c.denseIn[page] = false
		c.denseCount--
	}
	c.inner.(sim.DensePolicy).DenseEvict(step, page)
}

func (c *Checked) denseResident(page int32) bool {
	return page >= 0 && int(page) < len(c.denseIn) && c.denseIn[page]
}
