package check

import (
	"strings"
	"testing"
)

// TestDiffMRCCleanOnWorkloads runs the estimator oracle over the shared
// workload suite: every seeded trace driven through the partition-mode live
// service at shard counts 1, 2 and 4 must verify bit-exactly, conserve
// per-tenant window request counts, produce non-decreasing curves, and at
// one shard bit-equal the offline Mattson analysis.
func TestDiffMRCCleanOnWorkloads(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			tr, err := w.Gen(7, 6000)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{4, 64} {
				div, err := DiffMRC(tr, k, []int{1, 2, 4})
				if err != nil {
					t.Fatal(err)
				}
				if div != nil {
					t.Fatalf("k=%d: %v", k, div)
				}
			}
		})
	}
}

// TestDiffMRCRandom drives the estimator oracle on a dense random trace —
// small page universe, heavy reuse — where stack distances spread widely
// across the curve.
func TestDiffMRCRandom(t *testing.T) {
	tr := smallRandomTrace(11, 3, 40, 5000)
	div, err := DiffMRC(tr, 24, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatal(div)
	}
}

// TestMRCOracleRegistered pins the mrc/* family into the oracle matrix so
// cmd/check and the oracle-matrix CI job pick it up automatically.
func TestMRCOracleRegistered(t *testing.T) {
	found := 0
	for _, o := range Oracles() {
		if strings.HasPrefix(o.Name, "mrc/") {
			found++
		}
	}
	if found < 1 {
		t.Fatalf("mrc/* oracles registered: %d, want >= 1", found)
	}
}
