package check

import (
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// costTolerance absorbs floating-point noise in the monotone-cost check.
const costTolerance = 1e-9

// invariantObserver rebuilds cache state from the engine's event stream and
// asserts the per-step invariants of the simulation model.
type invariantObserver struct {
	k     int
	tr    *trace.Trace
	costs []costfn.Func

	resident map[trace.PageID]trace.Tenant

	// Shadow counters over non-warmup events, reconciled against the
	// engine's Result after the run.
	hits      int64
	misses    []int64
	evictions []int64
	effective int
	steps     int

	// prevCost tracks the cumulative convex objective sum_i f_i(m_i) over
	// *all* misses (warmup included): miss counters only grow, so with
	// non-decreasing f the cumulative cost must be monotone.
	prevCost  float64
	costMiss  []int64
	costDirty bool

	violations []Violation
}

func newInvariantObserver(tr *trace.Trace, k int, costs []costfn.Func) *invariantObserver {
	n := tr.NumTenants()
	return &invariantObserver{
		k:         k,
		tr:        tr,
		costs:     costs,
		resident:  make(map[trace.PageID]trace.Tenant, k),
		misses:    make([]int64, n),
		evictions: make([]int64, n),
		costMiss:  make([]int64, n),
	}
}

func (o *invariantObserver) violate(step int, kind, format string, args ...any) {
	o.violations = append(o.violations, Violation{Step: step, Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

func (o *invariantObserver) observe(ev sim.Event) {
	o.steps++
	if !ev.Warmup {
		o.effective++
	}
	r := ev.Req
	if owner, ok := o.tr.Owner(r.Page); !ok {
		o.violate(ev.Step, "event", "event for page %d not in the trace", r.Page)
	} else if owner != r.Tenant {
		o.violate(ev.Step, "ownership", "event says page %d belongs to tenant %d, trace says %d", r.Page, r.Tenant, owner)
	}
	if ev.Miss {
		if _, ok := o.resident[r.Page]; ok {
			o.violate(ev.Step, "residency", "miss reported for resident page %d", r.Page)
		}
		if !ev.Warmup && int(r.Tenant) < len(o.misses) {
			o.misses[r.Tenant]++
		}
		if int(r.Tenant) < len(o.costMiss) {
			o.costMiss[r.Tenant]++
			o.costDirty = true
		}
		if ev.Evicted >= 0 {
			owner, ok := o.resident[ev.Evicted]
			if !ok {
				o.violate(ev.Step, "residency", "eviction of page %d which was not resident", ev.Evicted)
			} else {
				if owner != ev.EvictedTenant {
					o.violate(ev.Step, "ownership", "evicted page %d owned by tenant %d, event says %d",
						ev.Evicted, owner, ev.EvictedTenant)
				}
				delete(o.resident, ev.Evicted)
			}
			if !ev.Warmup && int(ev.EvictedTenant) >= 0 && int(ev.EvictedTenant) < len(o.evictions) {
				o.evictions[ev.EvictedTenant]++
			}
		}
		o.resident[r.Page] = r.Tenant
		if len(o.resident) > o.k {
			o.violate(ev.Step, "occupancy", "cache holds %d pages, capacity is %d", len(o.resident), o.k)
		}
	} else {
		if ev.Evicted >= 0 {
			o.violate(ev.Step, "event", "hit event carries eviction of page %d", ev.Evicted)
		}
		if owner, ok := o.resident[r.Page]; !ok {
			o.violate(ev.Step, "residency", "hit reported for absent page %d", r.Page)
		} else if owner != r.Tenant {
			o.violate(ev.Step, "ownership", "hit on page %d under tenant %d, resident under %d", r.Page, r.Tenant, owner)
		}
		if !ev.Warmup {
			o.hits++
		}
	}
	if len(o.costs) > 0 && o.costDirty {
		cost := sim.Cost(o.costs, o.costMiss)
		if cost < o.prevCost-costTolerance {
			o.violate(ev.Step, "monotone-cost", "cumulative cost decreased from %g to %g", o.prevCost, cost)
		}
		o.prevCost = cost
		o.costDirty = false
	}
}

// reconcile compares the shadow counters against the engine's Result.
func (o *invariantObserver) reconcile(res sim.Result) {
	last := o.steps - 1
	if res.Steps != o.steps {
		o.violate(last, "accounting", "Result.Steps = %d, observed %d events", res.Steps, o.steps)
	}
	if res.EffectiveSteps != o.effective {
		o.violate(last, "accounting", "Result.EffectiveSteps = %d, observed %d non-warmup events", res.EffectiveSteps, o.effective)
	}
	if res.Hits != o.hits {
		o.violate(last, "accounting", "Result.Hits = %d, events say %d", res.Hits, o.hits)
	}
	if res.Hits+res.TotalMisses() != int64(res.EffectiveSteps) {
		o.violate(last, "accounting", "hits %d + misses %d != effective steps %d",
			res.Hits, res.TotalMisses(), res.EffectiveSteps)
	}
	for i := range o.misses {
		var rm, re int64
		if i < len(res.Misses) {
			rm = res.Misses[i]
		}
		if i < len(res.Evictions) {
			re = res.Evictions[i]
		}
		if rm != o.misses[i] {
			o.violate(last, "accounting", "tenant %d: Result.Misses = %d, events say %d", i, rm, o.misses[i])
		}
		if re != o.evictions[i] {
			o.violate(last, "accounting", "tenant %d: Result.Evictions = %d, events say %d", i, re, o.evictions[i])
		}
		if o.evictions[i] > o.misses[i] {
			// Evictions of tenant i require prior fetches of its pages; any
			// excess means the engine double-counted. Warmup can hide the
			// fetch, so only enforce on warmup-free runs.
			if o.effective == o.steps {
				o.violate(last, "accounting", "tenant %d: %d evictions exceed %d misses", i, o.evictions[i], o.misses[i])
			}
		}
	}
}

// InvariantObserver exposes the per-step invariant model as a composable
// observer: the returned sim.Observer replays the engine's event stream
// into a fresh residency model, and the finish func reconciles the run's
// Result against the shadow counters and returns every violation found.
// This is the building block layers with their own observer chains (the
// run-spec planner) compose; Run remains the all-in-one entry point.
func InvariantObserver(tr *trace.Trace, k int, costs []costfn.Func) (sim.Observer, func(sim.Result) []Violation) {
	obs := newInvariantObserver(tr, k, costs)
	return obs.observe, func(res sim.Result) []Violation {
		obs.reconcile(res)
		return obs.violations
	}
}

// Run executes policy p over the trace under full per-step invariant
// checking: the policy is wrapped with the shadow-model contract checks and
// the engine's event stream is replayed into a residency model asserting
// occupancy <= k, residency/ownership consistency, monotone cumulative
// convex cost (when costs are given) and hit/miss/eviction accounting that
// matches the returned Result. Any configured cfg.Observer still receives
// every event.
func Run(tr *trace.Trace, p sim.Policy, cfg sim.Config, costs []costfn.Func) (sim.Result, []Violation, error) {
	obs := newInvariantObserver(tr, cfg.K, costs)
	user := cfg.Observer
	cfg.Observer = func(ev sim.Event) {
		obs.observe(ev)
		if user != nil {
			user(ev)
		}
	}
	wrapped := Wrap(p)
	res, err := sim.Run(tr, wrapped, cfg)
	if err != nil {
		return res, obs.violations, err
	}
	obs.reconcile(res)
	vs := append(wrapped.Violations(), obs.violations...)
	return res, vs, nil
}

// MustPass runs Run and converts violations into an error.
func MustPass(tr *trace.Trace, p sim.Policy, cfg sim.Config, costs []costfn.Func) (sim.Result, error) {
	res, vs, err := Run(tr, p, cfg, costs)
	if err != nil {
		return res, err
	}
	return res, AsError(vs)
}
