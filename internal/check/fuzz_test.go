package check

import (
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// fuzzTrace decodes a fuzz input into (trace, k). The first byte picks the
// cache size (1..8), the second the tenant count (1..3); every remaining
// byte is one request over a deliberately tiny page universe so eviction
// pressure stays high. Returns nil when the input is too short to mean
// anything.
func fuzzTrace(data []byte) (*trace.Trace, int) {
	if len(data) < 4 {
		return nil, 0
	}
	k := int(data[0]%8) + 1
	tenants := int(data[1]%3) + 1
	b := trace.NewBuilder()
	body := data[2:]
	if len(body) > 512 {
		body = body[:512]
	}
	for _, c := range body {
		tn := trace.Tenant(int(c) % tenants)
		pg := trace.PageID(int(c)/tenants%11 + 1 + 100*int(tn))
		b.Add(tn, pg)
	}
	return b.MustBuild(), k
}

// FuzzDifferential feeds arbitrary traces through the cross-engine and
// cross-implementation oracles: the dense and map engines must agree on
// core.Fast, and core.Fast must agree with the Figure-3 Discrete reference.
func FuzzDifferential(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, k := fuzzTrace(data)
		if tr == nil || tr.Len() == 0 {
			return
		}
		costs := oracleCosts(tr.NumTenants())
		mkFast := func() sim.Policy { return core.NewFast(core.Options{Costs: costs}) }
		div, err := DiffEngines(tr, k, mkFast)
		if err != nil {
			t.Fatal(err)
		}
		if div != nil {
			t.Fatalf("dense vs map: %v\nrepro:\n%s", div, div.ReproString())
		}
		mkDisc := func() sim.Policy { return core.NewDiscrete(core.Options{Costs: costs}) }
		div, err = DiffPolicies(tr, k, mkFast, mkDisc, sim.EngineAuto, sim.EngineAuto)
		if err != nil {
			t.Fatal(err)
		}
		if div != nil {
			t.Fatalf("fast vs discrete: %v\nrepro:\n%s", div, div.ReproString())
		}
	})
}

// FuzzInvariants replays arbitrary traces through every registered baseline
// under the full invariant checker: occupancy, residency, ownership,
// accounting and cost monotonicity must hold for any input whatsoever.
func FuzzInvariants(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	names := policy.Names()
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, k := fuzzTrace(data)
		if tr == nil || tr.Len() == 0 {
			return
		}
		// One byte of the input selects the policy so the fuzzer explores
		// the whole registry rather than one baseline per run.
		name := names[int(data[2])%len(names)]
		costs := oracleCosts(tr.NumTenants())
		p, err := policy.New(name, policy.Spec{K: k, Tenants: tr.NumTenants(),
			Seed: int64(data[1]), Costs: costs})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := MustPass(tr, p, sim.Config{K: k}, costs); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	})
}

// fuzzSeeds returns the in-code seed inputs shared by both fuzz targets;
// the committed corpus under testdata/fuzz/ extends these with regression
// inputs (including the encoded snapshot tenant-order repro shape).
func fuzzSeeds() [][]byte {
	return [][]byte{
		{2, 1, 'a', 'b', 'c', 'a', 'd', 'a'},             // hit-reorders-recency shape
		{3, 2, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, // round-robin tenants
		{1, 1, 'z', 'z', 'z', 'z'},                       // k=2 degenerate repeats
		{7, 3, 'A', 'q', '7', 0xff, 0x00, 'm', 'm', 'q'}, // mixed tenants, large k
	}
}
