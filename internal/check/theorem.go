package check

import (
	"fmt"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/offline"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// boundTolerance absorbs floating-point slack in the Theorem 1.1 comparison.
const boundTolerance = 1e-9

// BoundReport is the outcome of one Theorem 1.1 compliance check.
type BoundReport struct {
	// AlgMisses is the online algorithm's per-tenant fetch vector a_i.
	AlgMisses []int64
	// OptMisses is the exact offline optimum's fetch vector b_i.
	OptMisses []int64
	// AlgCost is sum_i f_i(a_i).
	AlgCost float64
	// Bound is sum_i f_i(alpha * k * b_i), the theorem's right-hand side.
	Bound float64
	// Alpha is the curvature constant used.
	Alpha float64
	// Holds is AlgCost <= Bound (within tolerance).
	Holds bool
}

// Theorem11 checks the paper's headline guarantee
//
//	sum_i f_i(a_i) <= sum_i f_i(alpha * k * b_i)
//
// on one instance small enough for the exact offline search: the paper's
// algorithm (core.Fast) is run online, the branch-and-bound optimum b_i is
// computed offline, and the two sides of Theorem 1.1 are compared. Fetch
// counts are used on both sides, which dominates the paper's eviction
// accounting and keeps the check conservative. A non-nil error means the
// instance could not be decided (too large, search budget exhausted); a
// report with Holds == false is a genuine theorem violation.
func Theorem11(tr *trace.Trace, k int, costs []costfn.Func) (BoundReport, error) {
	alg, err := sim.Run(tr, core.NewFast(core.Options{Costs: costs}), sim.ConfigAt(k))
	if err != nil {
		return BoundReport{}, fmt.Errorf("check: theorem 1.1 online run failed: %w", err)
	}
	opt, err := offline.Exact(tr, k, costs, offline.Limits{})
	if err != nil {
		return BoundReport{}, fmt.Errorf("check: theorem 1.1 offline search failed: %w", err)
	}
	if !opt.Optimal {
		return BoundReport{}, fmt.Errorf("check: theorem 1.1 instance too large for exact search (%d nodes)", opt.Nodes)
	}
	alpha := 1.0
	for _, f := range costs {
		if a := costfn.EffectiveAlpha(f, float64(tr.Len())); a > alpha {
			alpha = a
		}
	}
	bound := 0.0
	for i, f := range costs {
		if i >= len(opt.Misses) {
			break
		}
		bound += f.Value(alpha * float64(k) * float64(opt.Misses[i]))
	}
	algCost := alg.Cost(costs)
	return BoundReport{
		AlgMisses: alg.Misses,
		OptMisses: opt.Misses,
		AlgCost:   algCost,
		Bound:     bound,
		Alpha:     alpha,
		Holds:     algCost <= bound+boundTolerance,
	}, nil
}

// Theorem11Violation converts a failed report into a check violation; nil
// when the bound holds.
func Theorem11Violation(r BoundReport) error {
	if r.Holds {
		return nil
	}
	return AsError([]Violation{{
		Step: -1,
		Kind: "bound",
		Msg: fmt.Sprintf("Theorem 1.1 violated: ALG cost %g > bound %g (alpha=%g, ALG misses %v, OPT misses %v)",
			r.AlgCost, r.Bound, r.Alpha, r.AlgMisses, r.OptMisses),
	}})
}
