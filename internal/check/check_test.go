package check

import (
	"strings"
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// seqTrace builds a trace from (tenant, page) pairs.
func seqTrace(t *testing.T, pairs ...[2]int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder()
	for _, pr := range pairs {
		b.Add(trace.Tenant(pr[0]), trace.PageID(pr[1]))
	}
	return b.MustBuild()
}

// singleTenant builds a tenant-0 trace from page ids.
func singleTenant(t *testing.T, pages ...int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder()
	for _, p := range pages {
		b.Add(0, trace.PageID(p))
	}
	return b.MustBuild()
}

// badVictimPolicy wraps LRU but returns a non-resident victim on the n-th
// Victim call — the planted bug the checker must catch.
type badVictimPolicy struct {
	sim.Policy
	calls, badAt int
}

func (b *badVictimPolicy) Victim(step int, r trace.Request) trace.PageID {
	b.calls++
	if b.calls == b.badAt {
		return trace.PageID(1 << 40) // never in any test trace
	}
	return b.Policy.Victim(step, r)
}

func TestWrapCatchesBadVictim(t *testing.T) {
	tr := singleTenant(t, 1, 2, 3, 4, 5, 6)
	bad := &badVictimPolicy{Policy: policy.MustNew("lru", policy.Spec{}), badAt: 2}
	c := Wrap(bad)
	// The engine itself rejects the bogus victim, so the run errors; the
	// wrapper must have recorded the violation first.
	_, err := sim.Run(tr, c, sim.Config{K: 2})
	if err == nil {
		t.Fatal("engine accepted non-resident victim")
	}
	found := false
	for _, v := range c.Violations() {
		if v.Kind == "victim" {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrapper missed the planted victim bug; violations: %v", c.Violations())
	}
}

func TestWrapCleanPoliciesPass(t *testing.T) {
	tr := seqTrace(t, [2]int{0, 1}, [2]int{1, 101}, [2]int{0, 2}, [2]int{0, 1},
		[2]int{1, 102}, [2]int{0, 3}, [2]int{1, 101}, [2]int{0, 1})
	for _, name := range policy.Names() {
		p, err := policy.New(name, policy.Spec{K: 2, Tenants: 2, Seed: 1,
			Costs: []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 2}}})
		if err != nil {
			t.Fatal(err)
		}
		c := Wrap(p)
		if _, err := sim.Run(tr, c, sim.Config{K: 2}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Err(); err != nil {
			t.Fatalf("%s: false positive: %v", name, err)
		}
	}
}

func TestWrapForwardsDensePath(t *testing.T) {
	tr := singleTenant(t, 1, 2, 3, 1, 4, 2, 1)
	f := core.NewFast(core.Options{})
	c := Wrap(f)
	if _, err := sim.Run(tr, c, sim.Config{K: 2, Engine: sim.EngineDense}); err != nil {
		t.Fatalf("wrapped Fast lost its dense path: %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("false positive on dense Fast: %v", err)
	}
}

func TestRunInvariantsCleanOnAllPolicies(t *testing.T) {
	tr := smallRandomTrace(3, 3, 6, 400)
	costs := oracleCosts(tr.NumTenants())
	for _, name := range policy.Names() {
		p, err := policy.New(name, policy.Spec{K: 4, Tenants: tr.NumTenants(), Seed: 5, Costs: costs})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := MustPass(tr, p, sim.Config{K: 4}, costs); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunInvariantsWithWarmup(t *testing.T) {
	tr := smallRandomTrace(11, 2, 5, 300)
	costs := oracleCosts(tr.NumTenants())
	res, err := MustPass(tr, core.NewFast(core.Options{Costs: costs}),
		sim.Config{K: 3, WarmupSteps: 100}, costs)
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveSteps != 200 {
		t.Fatalf("EffectiveSteps = %d, want 200", res.EffectiveSteps)
	}
}

// lyingResultPolicy cannot exist from the outside (the engine owns the
// Result), so the accounting reconciliation is exercised directly.
func TestReconcileFlagsBadAccounting(t *testing.T) {
	tr := singleTenant(t, 1, 2, 1)
	obs := newInvariantObserver(tr, 2, nil)
	res, err := sim.Run(tr, policy.MustNew("lru", policy.Spec{}), sim.Config{K: 2, Observer: obs.observe})
	if err != nil {
		t.Fatal(err)
	}
	res.Hits += 3 // forge the result
	obs.reconcile(res)
	found := false
	for _, v := range obs.violations {
		if v.Kind == "accounting" && strings.Contains(v.Msg, "Hits") {
			found = true
		}
	}
	if !found {
		t.Fatalf("forged hit count not flagged: %v", obs.violations)
	}
}

func TestMonotoneCostViolationDetected(t *testing.T) {
	// A decreasing "cost function" must trip the monotone-cost invariant:
	// the checker guards against non-monotone cost regressions.
	tr := singleTenant(t, 1, 2, 3, 4)
	_, vs, err := Run(tr, policy.MustNew("lru", policy.Spec{}), sim.Config{K: 2},
		[]costfn.Func{decreasingCost{}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range vs {
		if v.Kind == "monotone-cost" {
			found = true
		}
	}
	if !found {
		t.Fatalf("decreasing cost not flagged: %v", vs)
	}
}

// decreasingCost is an intentionally invalid cost function.
type decreasingCost struct{}

func (decreasingCost) Value(x float64) float64 { return -x }
func (decreasingCost) Deriv(x float64) float64 { return -1 }
func (decreasingCost) String() string          { return "decreasing" }

func TestMinimizeTraceShrinksToCore(t *testing.T) {
	// Failure predicate: trace contains at least two requests of page 7 and
	// one of page 9. The minimizer must strip everything else.
	b := trace.NewBuilder()
	for i := 0; i < 200; i++ {
		b.Add(0, trace.PageID(i%30))
	}
	b.Add(0, 7).Add(0, 9).Add(0, 7)
	tr := b.MustBuild()
	fails := func(t *trace.Trace) bool {
		sevens, nines := 0, 0
		for _, r := range t.Requests() {
			if r.Page == 7 {
				sevens++
			}
			if r.Page == 9 {
				nines++
			}
		}
		return sevens >= 2 && nines >= 1
	}
	if !fails(tr) {
		t.Fatal("predicate does not hold on the full trace")
	}
	min := MinimizeTrace(tr, fails)
	if !fails(min) {
		t.Fatal("minimized trace no longer fails")
	}
	if min.Len() != 3 {
		t.Fatalf("minimized to %d requests, want 3", min.Len())
	}
}

func TestTheorem11HoldsOnSmallInstances(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		tr := smallRandomTrace(seed, 2, 5, 30)
		for _, k := range []int{2, 3} {
			rep, err := Theorem11(tr, k, oracleCosts(tr.NumTenants()))
			if err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
			if err := Theorem11Violation(rep); err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
		}
	}
}
