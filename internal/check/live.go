package check

import (
	"context"
	"fmt"
	"strings"

	"convexcache/internal/cached"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// This file holds the PR-7 live-vs-replay oracle: the live sharded cache
// service (internal/cached) against the offline simulator, extending the
// repo's differential discipline from simulation to serving. The live side
// is a real cached.Service — mailbox routing, single-writer shard engines,
// request logs — driven in-process; the offline side is the service's own
// Verify replay plus, at one shard, a direct sim.Run cross-check.

// DiffLive drives tr through a live cached.Service at each shard count and
// checks two promises:
//
//  1. Verify is clean at every count: the per-tenant hit/miss/eviction
//     counters the live shards accumulated match an offline replay of the
//     merged request log exactly (sim.Run at n = 1, the BuildShardsBy
//     partitioned replay at n > 1).
//  2. Degeneracy: at n = 1 the live counters equal a direct sequential
//     sim.Run of tr on the dense engine — the live service with one shard
//     is the simulator, fed over a wire.
//
// Requests are keyed "p<page>", so the single live shard assigns page ids
// in first-appearance order — exactly the dense remap sim.Run uses, which
// is what makes promise 2 bit-exact rather than merely isomorphic. Shard
// counts exceeding k are skipped (the service rejects them by contract).
func DiffLive(tr *trace.Trace, k int, mk func() sim.Policy, shardCounts []int) (*Divergence, error) {
	seq, err := sim.Run(tr, mk(), sim.Config{K: k, Engine: sim.EngineDense})
	if err != nil {
		return nil, fmt.Errorf("check: sequential side failed: %w", err)
	}

	reqs := make([]cached.Request, tr.Len())
	for i, r := range tr.Requests() {
		op := cached.OpGet
		if i%4 == 3 {
			op = cached.OpPut
		}
		reqs[i] = cached.Request{Op: op, Tenant: r.Tenant, Key: fmt.Appendf(nil, "p%d", r.Page)}
	}
	tenants := tr.NumTenants()

	for _, n := range shardCounts {
		if n > k {
			continue
		}
		svc, err := cached.New(cached.Config{K: k, Shards: n, Tenants: tenants, NewPolicy: mk})
		if err != nil {
			return nil, fmt.Errorf("check: live service n=%d: %w", n, err)
		}
		div, err := diffLiveOne(svc, reqs, n, seq, tenants)
		svc.Close()
		if err != nil || div != nil {
			return div, err
		}
	}
	return nil, nil
}

// DiffDenseVsMap is the dense-shard-core oracle: two live services fed
// identical request batches, one on the dense shard core (the default), one
// pinned to the retained map-mode reference step (Config.MapStep). Every
// per-request result byte, the final per-tenant counters, and both services'
// Verify reports must agree bit for bit — the map step survives purely as
// this reference, so any drift in the fast path is caught here first.
func DiffDenseVsMap(tr *trace.Trace, k int, mk func() sim.Policy, shardCounts []int) (*Divergence, error) {
	reqs := make([]cached.Request, tr.Len())
	for i, r := range tr.Requests() {
		op := cached.OpGet
		if i%4 == 3 {
			op = cached.OpPut
		}
		reqs[i] = cached.Request{Op: op, Tenant: r.Tenant, Key: fmt.Appendf(nil, "p%d", r.Page)}
	}
	tenants := tr.NumTenants()

	for _, n := range shardCounts {
		if n > k {
			continue
		}
		dense, err := cached.New(cached.Config{K: k, Shards: n, Tenants: tenants, NewPolicy: mk})
		if err != nil {
			return nil, fmt.Errorf("check: dense service n=%d: %w", n, err)
		}
		mapped, err := cached.New(cached.Config{K: k, Shards: n, Tenants: tenants, NewPolicy: mk, MapStep: true})
		if err != nil {
			dense.Close()
			return nil, fmt.Errorf("check: map service n=%d: %w", n, err)
		}
		div, err := diffDenseVsMapOne(dense, mapped, reqs, n, tenants)
		dense.Close()
		mapped.Close()
		if err != nil || div != nil {
			return div, err
		}
	}
	return nil, nil
}

func diffDenseVsMapOne(dense, mapped *cached.Service, reqs []cached.Request, n, tenants int) (*Divergence, error) {
	const batch = 512
	for lo := 0; lo < len(reqs); lo += batch {
		hi := lo + batch
		if hi > len(reqs) {
			hi = len(reqs)
		}
		rd, err := dense.Apply(reqs[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("check: dense apply n=%d at %d: %w", n, lo, err)
		}
		rm, err := mapped.Apply(reqs[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("check: map apply n=%d at %d: %w", n, lo, err)
		}
		for i := range rd {
			if rd[i] != rm[i] {
				return &Divergence{
					Step: lo + i,
					A:    fmt.Sprintf("dense n=%d result %c", n, rd[i]),
					B:    fmt.Sprintf("map result %c", rm[i]),
				}, nil
			}
		}
	}
	sd, sm := dense.Stats(), mapped.Stats()
	for t := 0; t < tenants; t++ {
		d, m := sd.PerTenant[t], sm.PerTenant[t]
		if d.Hits != m.Hits || d.Misses != m.Misses || d.Evictions != m.Evictions {
			return &Divergence{
				Step: -1,
				A:    fmt.Sprintf("dense n=%d tenant %d: hits=%d misses=%d evictions=%d", n, t, d.Hits, d.Misses, d.Evictions),
				B:    fmt.Sprintf("map tenant %d: hits=%d misses=%d evictions=%d", t, m.Hits, m.Misses, m.Evictions),
			}, nil
		}
	}
	for name, svc := range map[string]*cached.Service{"dense": dense, "map": mapped} {
		rep, err := svc.Verify(context.Background())
		if err != nil {
			return nil, fmt.Errorf("check: %s verify n=%d: %w", name, n, err)
		}
		if !rep.Clean {
			return &Divergence{
				Step: -1,
				A:    fmt.Sprintf("%s n=%d live counters", name, n),
				B:    "replay: " + strings.Join(rep.Diffs, "; "),
			}, nil
		}
	}
	return nil, nil
}

func diffLiveOne(svc *cached.Service, reqs []cached.Request, n int, seq sim.Result, tenants int) (*Divergence, error) {
	const batch = 512
	for lo := 0; lo < len(reqs); lo += batch {
		hi := lo + batch
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if _, err := svc.Apply(reqs[lo:hi]); err != nil {
			return nil, fmt.Errorf("check: live apply n=%d at %d: %w", n, lo, err)
		}
	}
	rep, err := svc.Verify(context.Background())
	if err != nil {
		return nil, fmt.Errorf("check: live verify n=%d: %w", n, err)
	}
	if !rep.Clean {
		return &Divergence{
			Step: -1,
			A:    fmt.Sprintf("live n=%d: hits=%d misses=%d evictions=%d", n, rep.Live.TotalHits, rep.Live.TotalMisses, rep.Live.TotalEvictions),
			B:    "replay: " + strings.Join(rep.Diffs, "; "),
		}, nil
	}
	if rep.Requests != len(reqs) {
		return &Divergence{
			Step: -1,
			A:    fmt.Sprintf("live n=%d logged %d requests", n, rep.Requests),
			B:    fmt.Sprintf("driver sent %d", len(reqs)),
		}, nil
	}
	if n == 1 {
		live := sim.Result{
			Hits:           rep.Live.TotalHits,
			Misses:         rep.Live.Misses[:min(tenants, len(rep.Live.Misses))],
			Evictions:      rep.Live.Evictions[:min(tenants, len(rep.Live.Evictions))],
			EffectiveSteps: rep.Requests,
		}
		ref := sim.Result{
			Hits:           seq.Hits,
			Misses:         seq.Misses,
			Evictions:      seq.Evictions,
			EffectiveSteps: seq.EffectiveSteps,
		}
		if div := resultDivergence("live n=1", "sim.Run", live, ref); div != nil {
			return div, nil
		}
	}
	return nil, nil
}
