package check

import (
	"fmt"
	"math/rand"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// Workload is a named trace generator for the oracle matrix.
type Workload struct {
	// Name identifies the shape in reports.
	Name string
	// Gen builds a trace of the given length from the seed.
	Gen func(seed int64, length int) (*trace.Trace, error)
}

// Workloads returns the shapes the oracle matrix sweeps: skewed reuse,
// scan-with-hot-set (the classic LRU killer), phase-shifting locality, and a
// tiny page universe that maximizes eviction pressure on every code path.
func Workloads() []Workload {
	return []Workload{
		{Name: "zipf-mixed", Gen: func(seed int64, length int) (*trace.Trace, error) {
			z0, err := workload.NewZipf(seed, 400, 0.9)
			if err != nil {
				return nil, err
			}
			z1, err := workload.NewZipf(seed+1, 200, 1.2)
			if err != nil {
				return nil, err
			}
			u2, err := workload.NewUniform(seed+2, 100)
			if err != nil {
				return nil, err
			}
			return workload.Mix(seed, []workload.TenantStream{
				{Tenant: 0, Stream: z0, Rate: 3},
				{Tenant: 1, Stream: z1, Rate: 2},
				{Tenant: 2, Stream: u2, Rate: 1},
			}, length)
		}},
		{Name: "scan-hot", Gen: func(seed int64, length int) (*trace.Trace, error) {
			scan, err := workload.NewScan(300)
			if err != nil {
				return nil, err
			}
			hot, err := workload.NewZipf(seed, 60, 1.1)
			if err != nil {
				return nil, err
			}
			return workload.Mix(seed, []workload.TenantStream{
				{Tenant: 0, Stream: scan, Rate: 1},
				{Tenant: 1, Stream: hot, Rate: 2},
			}, length)
		}},
		{Name: "phase-shift", Gen: func(seed int64, length int) (*trace.Trace, error) {
			h0, err := workload.NewHotSet(seed, 500, 40, 0.9, 2000)
			if err != nil {
				return nil, err
			}
			h1, err := workload.NewHotSet(seed+7, 300, 25, 0.85, 1500)
			if err != nil {
				return nil, err
			}
			return workload.Mix(seed, []workload.TenantStream{
				{Tenant: 0, Stream: h0, Rate: 1},
				{Tenant: 1, Stream: h1, Rate: 1},
			}, length)
		}},
		{Name: "tiny-universe", Gen: func(seed int64, length int) (*trace.Trace, error) {
			// Page universe barely above k so nearly every miss evicts;
			// this is where victim-selection bugs concentrate.
			rng := rand.New(rand.NewSource(seed))
			b := trace.NewBuilder()
			for i := 0; i < length; i++ {
				tn := rng.Intn(3)
				b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(7)))
			}
			return b.Build()
		}},
	}
}

// oracleCosts builds a convex per-tenant cost set covering the families the
// paper analyzes: polynomial, linear and SLA-with-refund.
func oracleCosts(n int) []costfn.Func {
	sla, err := costfn.SLARefund(4, 0.25, 4)
	if err != nil {
		panic(err)
	}
	base := []costfn.Func{
		costfn.Monomial{C: 1, Beta: 2},
		costfn.Linear{W: 3},
		sla,
	}
	out := make([]costfn.Func, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

// Oracle is one named correctness check over a (trace, k) instance.
type Oracle struct {
	// Name identifies the policy x engine pair or invariant suite.
	Name string
	// Run executes the check; a *Divergence or *Error return carries the
	// step index and (for divergences) the minimized repro.
	Run func(tr *trace.Trace, k int) error
}

// divergeErr adapts a (possibly nil) *Divergence into an error without the
// typed-nil-in-interface trap.
func divergeErr(d *Divergence, err error) error {
	if err != nil {
		return err
	}
	if d != nil {
		return d
	}
	return nil
}

// Oracles returns the full matrix of implementation pairs and invariant
// suites that must hold on every workload. Every entry is deterministic for
// a fixed trace.
func Oracles() []Oracle {
	var out []Oracle

	// Dense engine vs map engine for the paper's algorithm under each cost
	// regime. The two loops must be observably identical step by step.
	engineVariants := []struct {
		name string
		opt  func(n int) core.Options
	}{
		{"engines/alg-fast", func(n int) core.Options { return core.Options{Costs: oracleCosts(n)} }},
		{"engines/alg-fast-linear", func(n int) core.Options {
			return core.Options{Costs: []costfn.Func{costfn.Linear{W: 1}, costfn.Linear{W: 5}, costfn.Linear{W: 2}}}
		}},
		{"engines/alg-fast-discrete-deriv", func(n int) core.Options {
			return core.Options{Costs: oracleCosts(n), UseDiscreteDeriv: true}
		}},
		{"engines/alg-fast-miss-mode", func(n int) core.Options {
			return core.Options{Costs: oracleCosts(n), CountMisses: true}
		}},
	}
	for _, v := range engineVariants {
		v := v
		out = append(out, Oracle{Name: v.name, Run: func(tr *trace.Trace, k int) error {
			opt := v.opt(tr.NumTenants())
			return divergeErr(DiffEngines(tr, k, func() sim.Policy { return core.NewFast(opt) }))
		}})
		// The batched loop against the per-step dense loop, and sharded
		// replay against sequential replay, under the same cost regimes.
		out = append(out, Oracle{Name: "batched/" + v.name[len("engines/"):], Run: func(tr *trace.Trace, k int) error {
			opt := v.opt(tr.NumTenants())
			return divergeErr(DiffBatched(tr, k, func() sim.Policy { return core.NewFast(opt) }))
		}})
		out = append(out, Oracle{Name: "sharded/" + v.name[len("engines/"):], Run: func(tr *trace.Trace, k int) error {
			opt := v.opt(tr.NumTenants())
			return divergeErr(DiffSharded(tr, k, func() sim.Policy { return core.NewFast(opt) }, []int{1, 2, 3, 4, 8}))
		}})
		// The live cache service against the offline replay of its own
		// request log, same cost regimes, shard counts 1/2/4.
		out = append(out, Oracle{Name: "live/" + v.name[len("engines/"):], Run: func(tr *trace.Trace, k int) error {
			opt := v.opt(tr.NumTenants())
			return divergeErr(DiffLive(tr, k, func() sim.Policy { return core.NewFast(opt) }, []int{1, 2, 4}))
		}})
	}

	// The dense shard core against the retained map-mode reference step:
	// two live services over identical request streams must return identical
	// per-request results and counters at every shard count. One cost regime
	// suffices — both sides run the same Options, and the engine families
	// above already sweep the cost space.
	out = append(out, Oracle{Name: "live/dense-vs-map", Run: func(tr *trace.Trace, k int) error {
		opt := core.Options{Costs: oracleCosts(tr.NumTenants())}
		return divergeErr(DiffDenseVsMap(tr, k, func() sim.Policy { return core.NewFast(opt) }, []int{1, 2, 4}))
	}})

	// The incremental victim-argmin cursor against the full scan: the cursor
	// only ever caches a unique strict minimum, so victim selection — and
	// therefore the whole run — must be identical with it disabled. The
	// cursor side is force-armed: the workload suite's tenant counts sit
	// below the auto-enable floor, and scan-vs-scan would prove nothing.
	out = append(out, Oracle{Name: "impl/victim-cursor", Run: func(tr *trace.Trace, k int) error {
		opt := core.Options{Costs: oracleCosts(tr.NumTenants()), ForceVictimCursor: true}
		optNC := opt
		optNC.NoVictimCursor = true
		return divergeErr(DiffPolicies(tr, k,
			func() sim.Policy { return core.NewFast(opt) },
			func() sim.Policy { return core.NewFast(optNC) },
			sim.EngineAuto, sim.EngineAuto))
	}})

	// Crash-and-recover: kill the WAL-backed service at several points (clean
	// crash, mid-rebalance, torn mid-batch write), recover, and require the
	// resurrected state — and the completed run — to be bit-identical to a
	// run that never crashed. One cost regime suffices: recovery replays the
	// same engine step the live path ran, whatever the costs.
	out = append(out, Oracle{Name: "recovery/crash-replay", Run: func(tr *trace.Trace, k int) error {
		opt := core.Options{Costs: oracleCosts(tr.NumTenants())}
		return divergeErr(DiffRecovery(tr, k, func() sim.Policy { return core.NewFast(opt) }, []int{1, 2, 4}))
	}})

	// The streaming MRC estimator against the offline Mattson analysis,
	// through the full live service (partition engine + per-shard samplers).
	// The estimator is cost-independent, so one oracle covers all regimes.
	out = append(out, Oracle{Name: "mrc/live-vs-mattson", Run: func(tr *trace.Trace, k int) error {
		return divergeErr(DiffMRC(tr, k, []int{1, 2, 4}))
	}})

	// core.Fast vs the Figure-3 reference: the reformulated production
	// algorithm must stay bit-exact with the literal paper transcription.
	implVariants := []struct {
		name string
		opt  func(n int) core.Options
	}{
		{"impl/fast-vs-discrete", func(n int) core.Options { return core.Options{Costs: oracleCosts(n)} }},
		{"impl/fast-vs-discrete-discderiv", func(n int) core.Options {
			return core.Options{Costs: oracleCosts(n), UseDiscreteDeriv: true}
		}},
		{"impl/fast-vs-discrete-miss-mode", func(n int) core.Options {
			return core.Options{Costs: oracleCosts(n), CountMisses: true}
		}},
	}
	for _, v := range implVariants {
		v := v
		out = append(out, Oracle{Name: v.name, Run: func(tr *trace.Trace, k int) error {
			opt := v.opt(tr.NumTenants())
			return divergeErr(DiffPolicies(tr, k,
				func() sim.Policy { return core.NewFast(opt) },
				func() sim.Policy { return core.NewDiscrete(opt) },
				sim.EngineAuto, sim.EngineAuto))
		}})
	}

	// Snapshot/restore round trip at several cut points.
	out = append(out, Oracle{Name: "snapshot/fast-round-trip", Run: func(tr *trace.Trace, k int) error {
		opt := core.Options{Costs: oracleCosts(tr.NumTenants())}
		return SnapshotRoundTrip(tr, k, opt, []float64{0.25, 0.5, 0.75})
	}})

	// Reset-reuse determinism and full invariant suites for every registry
	// baseline (all are deterministic for a fixed seed) plus the paper's
	// algorithm in both implementations.
	for _, name := range policy.Names() {
		name := name
		out = append(out, Oracle{Name: "reset/" + name, Run: func(tr *trace.Trace, k int) error {
			mk := registryFactory(name, tr, k)
			return divergeErr(ResetReuse(tr, k, mk))
		}})
		out = append(out, Oracle{Name: "invariants/" + name, Run: func(tr *trace.Trace, k int) error {
			mk := registryFactory(name, tr, k)
			_, err := MustPass(tr, mk(), sim.ConfigAt(k), oracleCosts(tr.NumTenants()))
			return err
		}})
	}
	out = append(out, Oracle{Name: "invariants/alg-fast", Run: func(tr *trace.Trace, k int) error {
		opt := core.Options{Costs: oracleCosts(tr.NumTenants())}
		_, err := MustPass(tr, core.NewFast(opt), sim.ConfigAt(k), opt.Costs)
		return err
	}})
	out = append(out, Oracle{Name: "invariants/alg-discrete", Run: func(tr *trace.Trace, k int) error {
		opt := core.Options{Costs: oracleCosts(tr.NumTenants())}
		_, err := MustPass(tr, core.NewDiscrete(opt), sim.ConfigAt(k), opt.Costs)
		return err
	}})

	return out
}

// registryFactory builds fresh instances of a registry baseline for tr.
func registryFactory(name string, tr *trace.Trace, k int) func() sim.Policy {
	spec := policy.Spec{
		K:       k,
		Tenants: tr.NumTenants(),
		Costs:   oracleCosts(tr.NumTenants()),
		Seed:    42,
	}
	return func() sim.Policy {
		p, err := policy.New(name, spec)
		if err != nil {
			panic(fmt.Sprintf("check: registry policy %q: %v", name, err))
		}
		return p
	}
}

// MatrixConfig sizes a full oracle-matrix run.
type MatrixConfig struct {
	// Steps is the per-workload trace length.
	Steps int
	// Seed seeds the workload generators.
	Seed int64
	// Ks are the cache sizes swept.
	Ks []int
	// TheoremInstances is the number of small exact-OPT instances checked
	// against Theorem 1.1 (0 disables).
	TheoremInstances int
}

// MatrixResult reports one oracle x workload x k cell.
type MatrixResult struct {
	// Oracle is the check name.
	Oracle string
	// Workload is the trace shape.
	Workload string
	// K is the cache size.
	K int
	// Err is nil on agreement.
	Err error
}

// RunMatrix executes every oracle over every workload shape and cache size,
// invoking report per cell, and stops at the first failing cell, returning
// its error. The Theorem 1.1 suite runs on dedicated small instances.
func RunMatrix(cfg MatrixConfig, report func(MatrixResult)) error {
	if cfg.Steps <= 0 {
		cfg.Steps = 20000
	}
	if len(cfg.Ks) == 0 {
		cfg.Ks = []int{4, 64}
	}
	oracles := Oracles()
	for _, w := range Workloads() {
		tr, err := w.Gen(cfg.Seed, cfg.Steps)
		if err != nil {
			return fmt.Errorf("check: workload %s: %w", w.Name, err)
		}
		for _, k := range cfg.Ks {
			for _, o := range oracles {
				res := MatrixResult{Oracle: o.Name, Workload: w.Name, K: k, Err: o.Run(tr, k)}
				if report != nil {
					report(res)
				}
				if res.Err != nil {
					return fmt.Errorf("check: %s on %s (k=%d): %w", o.Name, w.Name, k, res.Err)
				}
			}
		}
	}
	for i := 0; i < cfg.TheoremInstances; i++ {
		seed := cfg.Seed + int64(i)
		tr := smallRandomTrace(seed, 2, 5, 36)
		for _, k := range []int{2, 4} {
			rep, err := Theorem11(tr, k, oracleCosts(tr.NumTenants()))
			res := MatrixResult{Oracle: "theorem/1.1", Workload: fmt.Sprintf("small-%d", seed), K: k}
			if err != nil {
				res.Err = err
			} else {
				res.Err = Theorem11Violation(rep)
			}
			if report != nil {
				report(res)
			}
			if res.Err != nil {
				return fmt.Errorf("check: theorem 1.1 on seed %d (k=%d): %w", seed, k, res.Err)
			}
		}
	}
	return nil
}

// smallRandomTrace builds an exact-OPT-sized instance.
func smallRandomTrace(seed int64, tenants, pagesPer, length int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder()
	for i := 0; i < length; i++ {
		tn := rng.Intn(tenants)
		b.Add(trace.Tenant(tn), trace.PageID(tn*100+rng.Intn(pagesPer)))
	}
	return b.MustBuild()
}
