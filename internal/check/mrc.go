package check

import (
	"context"
	"fmt"
	"strings"

	"convexcache/internal/analysis"
	"convexcache/internal/cached"
	"convexcache/internal/mrclive"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// This file holds the PR-8 estimator oracle: the streaming per-tenant MRC
// estimator embedded in the live cache service (internal/mrclive via
// internal/cached) against the offline Mattson analysis. Only invariants
// that hold EXACTLY on arbitrary traces are asserted here — the sharded
// estimator's 5% statistical tolerance is pinned in controlled unit tests
// and the CI smoke job, where the workload shape is chosen, not swept.

// DiffMRC drives tr through a partition-mode live cached.Service with the
// streaming MRC estimator enabled, at each shard count, and checks:
//
//  1. Verify is clean at every count: partition mode replays each shard's
//     log through a fresh quotaLRU and must reproduce the live counters bit
//     for bit.
//  2. Conservation: merged window request counts equal the trace's
//     per-tenant request counts exactly (every request is observed by
//     exactly one shard, and the window never expires here — the epoch
//     length exceeds the trace).
//  3. Shape: every curve's HitsAt is non-decreasing in capacity and never
//     exceeds the tenant's window requests.
//  4. Degeneracy: at one shard with rate 1 the estimator IS incremental
//     Mattson, so its HitsAt must bit-equal analysis.PerTenant on tr. The
//     live service renames pages to first-appearance ids, but Mattson
//     distances depend only on the equality pattern of each tenant's page
//     sequence, which injective renaming preserves.
//
// Requests are keyed "p<page>" and driven sequentially, so each tenant's
// live page sequence is an injective image of its trace sequence. Shard
// counts exceeding k are skipped (the service rejects them by contract).
func DiffMRC(tr *trace.Trace, k int, shardCounts []int) (*Divergence, error) {
	tenants := tr.NumTenants()
	maxSize := 2 * k
	if maxSize > 512 {
		maxSize = 512
	}
	ref, err := analysis.PerTenant(tr, maxSize)
	if err != nil {
		return nil, fmt.Errorf("check: offline Mattson failed: %w", err)
	}
	wantReqs := make([]int64, tenants)
	for _, r := range tr.Requests() {
		wantReqs[r.Tenant]++
	}

	reqs := make([]cached.Request, tr.Len())
	for i, r := range tr.Requests() {
		op := cached.OpGet
		if i%4 == 3 {
			op = cached.OpPut
		}
		reqs[i] = cached.Request{Op: op, Tenant: r.Tenant, Key: fmt.Appendf(nil, "p%d", r.Page)}
	}
	// Even static split; the estimator is capacity-independent, the quotas
	// only shape the partition engine the Verify leg replays.
	quotas := make([]int, tenants)
	for t := range quotas {
		quotas[t] = sim.ShardShare(k, tenants, t)
	}

	for _, n := range shardCounts {
		if n > k {
			continue
		}
		svc, err := cached.New(cached.Config{
			K: k, Shards: n, Tenants: tenants,
			Quotas: quotas,
			MRC: &mrclive.Config{
				MaxSize:       maxSize,
				Rate:          1,
				WindowEpochs:  2,
				EpochRequests: tr.Len() + 1, // window outlives the trace
			},
		})
		if err != nil {
			return nil, fmt.Errorf("check: live service n=%d: %w", n, err)
		}
		div, err := diffMRCOne(svc, reqs, n, ref, wantReqs, maxSize)
		svc.Close()
		if err != nil || div != nil {
			return div, err
		}
	}
	return nil, nil
}

func diffMRCOne(svc *cached.Service, reqs []cached.Request, n int, ref []analysis.StackResult, wantReqs []int64, maxSize int) (*Divergence, error) {
	const batch = 512
	for lo := 0; lo < len(reqs); lo += batch {
		hi := lo + batch
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if _, err := svc.Apply(reqs[lo:hi]); err != nil {
			return nil, fmt.Errorf("check: live apply n=%d at %d: %w", n, lo, err)
		}
	}
	rep, err := svc.Verify(context.Background())
	if err != nil {
		return nil, fmt.Errorf("check: partition verify n=%d: %w", n, err)
	}
	if !rep.Clean {
		return &Divergence{
			Step: -1,
			A:    fmt.Sprintf("live n=%d: hits=%d misses=%d evictions=%d", n, rep.Live.TotalHits, rep.Live.TotalMisses, rep.Live.TotalEvictions),
			B:    "partition replay: " + strings.Join(rep.Diffs, "; "),
		}, nil
	}
	live, err := svc.MRCLive()
	if err != nil {
		return nil, fmt.Errorf("check: live MRC n=%d: %w", n, err)
	}
	if live.MaxSize != maxSize {
		return &Divergence{Step: -1,
			A: fmt.Sprintf("live n=%d curve max size %d", n, live.MaxSize),
			B: fmt.Sprintf("configured %d", maxSize)}, nil
	}
	for t, c := range live.Tenants {
		if c.Requests != wantReqs[t] {
			return &Divergence{Step: -1,
				A: fmt.Sprintf("live n=%d tenant %d window requests %d", n, t, c.Requests),
				B: fmt.Sprintf("trace has %d", wantReqs[t])}, nil
		}
		prev := 0.0
		for cap, h := range c.HitsAt {
			if h < prev {
				return &Divergence{Step: cap,
					A: fmt.Sprintf("live n=%d tenant %d HitsAt[%d]=%g", n, t, cap, h),
					B: fmt.Sprintf("HitsAt[%d]=%g (curve must be non-decreasing)", cap-1, prev)}, nil
			}
			if h > float64(c.Requests) {
				return &Divergence{Step: cap,
					A: fmt.Sprintf("live n=%d tenant %d HitsAt[%d]=%g", n, t, cap, h),
					B: fmt.Sprintf("only %d window requests", c.Requests)}, nil
			}
			prev = h
		}
		if n == 1 {
			for cap, h := range c.HitsAt {
				if want := float64(ref[t].HitsAt[cap]); h != want {
					return &Divergence{Step: cap,
						A: fmt.Sprintf("live n=1 tenant %d HitsAt[%d]=%g", t, cap, h),
						B: fmt.Sprintf("offline Mattson %g", want)}, nil
				}
			}
		}
	}
	return nil, nil
}
