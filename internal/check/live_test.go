package check

import (
	"strings"
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/sim"
)

// TestDiffLiveCleanOnWorkloads runs the live-vs-replay oracle over the
// shared workload suite: every seeded trace driven through the in-process
// live service at shard counts 1, 2 and 4 must replay with bit-identical
// per-tenant counters, and the one-shard service must equal sim.Run.
func TestDiffLiveCleanOnWorkloads(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			tr, err := w.Gen(7, 6000)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{4, 64} {
				opt := core.Options{Costs: oracleCosts(tr.NumTenants())}
				div, err := DiffLive(tr, k, func() sim.Policy { return core.NewFast(opt) }, []int{1, 2, 4})
				if err != nil {
					t.Fatal(err)
				}
				if div != nil {
					t.Fatalf("k=%d: %v", k, div)
				}
			}
		})
	}
}

// TestDiffLiveVariants exercises the live oracle under every cost regime the
// engine oracles use (discrete derivative, miss-counting, linear), since the
// live shard drives the map-mode policy path while the sharded replay drives
// the dense path — precisely the pairing the engines/ family certifies.
func TestDiffLiveVariants(t *testing.T) {
	tr := smallRandomTrace(3, 3, 12, 4000)
	variants := map[string]core.Options{
		"base":           {Costs: oracleCosts(tr.NumTenants())},
		"discrete-deriv": {Costs: oracleCosts(tr.NumTenants()), UseDiscreteDeriv: true},
		"miss-mode":      {Costs: oracleCosts(tr.NumTenants()), CountMisses: true},
	}
	for name, opt := range variants {
		opt := opt
		t.Run(name, func(t *testing.T) {
			div, err := DiffLive(tr, 24, func() sim.Policy { return core.NewFast(opt) }, []int{1, 2, 4})
			if err != nil {
				t.Fatal(err)
			}
			if div != nil {
				t.Fatal(div)
			}
		})
	}
}

// TestLiveOraclesRegistered pins the live/* family into the oracle matrix so
// cmd/check and the oracle-matrix CI job pick it up automatically.
func TestLiveOraclesRegistered(t *testing.T) {
	found := 0
	for _, o := range Oracles() {
		if strings.HasPrefix(o.Name, "live/") {
			found++
		}
	}
	if found < 4 {
		t.Fatalf("live/* oracles registered: %d, want one per engine variant (>= 4)", found)
	}
}
