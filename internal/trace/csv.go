package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions configures ReadBlockCSV, the adapter for block-I/O trace
// archives in the MSR-Cambridge style:
//
//	timestamp,hostname,diskno,type,offset,size,responsetime
//
// Each distinct (hostname, diskno) pair becomes one tenant; byte ranges are
// split into page-granular requests. This is the on-ramp for users with
// real production traces — the repository itself ships only synthetic
// generators (see DESIGN.md section 4).
type CSVOptions struct {
	// PageBytes is the page granularity; default 4096.
	PageBytes int64
	// MaxRequests caps the emitted requests (0 = unlimited).
	MaxRequests int
	// HeaderRows skips leading rows; default 0.
	HeaderRows int
}

// ReadBlockCSV parses the CSV stream into a Trace.
func ReadBlockCSV(r io.Reader, opt CSVOptions) (*Trace, error) {
	if opt.PageBytes <= 0 {
		opt.PageBytes = 4096
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	b := NewBuilder()
	tenantOf := make(map[string]Tenant)
	line := 0
	emitted := 0
	for sc.Scan() {
		line++
		if line <= opt.HeaderRows {
			continue
		}
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 6 {
			return nil, fmt.Errorf("trace: csv line %d: want >= 6 fields, got %d", line, len(fields))
		}
		host := strings.TrimSpace(fields[1])
		disk := strings.TrimSpace(fields[2])
		offset, err := strconv.ParseInt(strings.TrimSpace(fields[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad offset %q", line, fields[4])
		}
		size, err := strconv.ParseInt(strings.TrimSpace(fields[5]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad size %q", line, fields[5])
		}
		if offset < 0 || size <= 0 {
			return nil, fmt.Errorf("trace: csv line %d: negative offset or non-positive size", line)
		}
		key := host + "/" + disk
		tn, ok := tenantOf[key]
		if !ok {
			tn = Tenant(len(tenantOf))
			tenantOf[key] = tn
		}
		first := offset / opt.PageBytes
		last := (offset + size - 1) / opt.PageBytes
		for pg := first; pg <= last; pg++ {
			// Namespace pages per tenant so ownership never collides.
			b.Add(tn, PageID(int64(tn)<<40|pg))
			emitted++
			if opt.MaxRequests > 0 && emitted >= opt.MaxRequests {
				return b.Build()
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: csv read: %w", err)
	}
	return b.Build()
}
