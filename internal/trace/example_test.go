package trace_test

import (
	"fmt"
	"strings"

	"convexcache/internal/trace"
)

// ExampleReadBlockCSV adapts an MSR-style block-I/O trace into page
// requests.
func ExampleReadBlockCSV() {
	csv := "1,web0,0,Read,0,8192,5\n2,db1,2,Write,4096,4096,9\n"
	tr, _ := trace.ReadBlockCSV(strings.NewReader(csv), trace.CSVOptions{PageBytes: 4096})
	s := tr.ComputeStats()
	fmt.Printf("requests=%d tenants=%d\n", s.Requests, s.Tenants)
	// Output:
	// requests=3 tenants=2
}

// ExampleWithFlush appends the paper's dummy-tenant flush so eviction
// counts equal miss counts.
func ExampleWithFlush() {
	base := trace.NewBuilder().Add(0, 1).Add(0, 2).MustBuild()
	flushed, dummy, _ := trace.WithFlush(base, 3)
	fmt.Printf("length=%d dummy tenant=%d\n", flushed.Len(), dummy)
	// Output:
	// length=5 dummy tenant=1
}
