// Package trace defines the request-sequence model of the multi-tenant
// caching problem: pages owned by tenants, the online sequence sigma of page
// requests, and the derived quantities the paper's convex program is indexed
// by — the per-page request counters r(p,t), the interval indices j(p,t) and
// the distinct-page sets B(t).
package trace

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Tenant identifies a user i in U. Tenants are dense small integers.
type Tenant int

// PageID identifies a page p in P. Page ownership is fixed: every page
// belongs to exactly one tenant for the lifetime of a trace.
type PageID int64

// Request is one element of the request sequence sigma.
type Request struct {
	// Page is the requested page p_t.
	Page PageID
	// Tenant is the owner i(p_t) of the page.
	Tenant Tenant
}

// Trace is a finite request sequence together with the (fixed) page
// ownership map. Traces are immutable once built; use Builder to construct
// them incrementally or New to wrap pre-validated data.
type Trace struct {
	reqs    []Request
	owner   map[PageID]Tenant
	tenants int

	// dense caches the compacted remap (see Dense); built lazily, at most
	// once per trace.
	dense atomic.Pointer[Dense]
}

// Builder accumulates requests and infers ownership, validating that a page
// is never claimed by two tenants.
type Builder struct {
	reqs    []Request
	owner   map[PageID]Tenant
	tenants int
	err     error
}

// NewBuilder returns an empty trace builder.
func NewBuilder() *Builder {
	return &Builder{owner: make(map[PageID]Tenant)}
}

// Add appends a request for page p owned by tenant i. The first Add for a
// page fixes its owner; later conflicting owners record an error surfaced by
// Build.
func (b *Builder) Add(i Tenant, p PageID) *Builder {
	if b.err != nil {
		return b
	}
	if i < 0 {
		b.err = fmt.Errorf("trace: negative tenant %d", i)
		return b
	}
	if prev, ok := b.owner[p]; ok {
		if prev != i {
			b.err = fmt.Errorf("trace: page %d claimed by tenants %d and %d", p, prev, i)
			return b
		}
	} else {
		b.owner[p] = i
	}
	if int(i) >= b.tenants {
		b.tenants = int(i) + 1
	}
	b.reqs = append(b.reqs, Request{Page: p, Tenant: i})
	return b
}

// Build finalizes the trace.
func (b *Builder) Build() (*Trace, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.reqs) == 0 {
		return nil, errors.New("trace: empty request sequence")
	}
	return &Trace{reqs: b.reqs, owner: b.owner, tenants: b.tenants}, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// inputs are validated upstream.
func (b *Builder) MustBuild() *Trace {
	tr, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tr
}

// FromRequests builds a trace directly from a request slice, validating
// ownership consistency.
func FromRequests(reqs []Request) (*Trace, error) {
	b := NewBuilder()
	for _, r := range reqs {
		b.Add(r.Tenant, r.Page)
	}
	return b.Build()
}

// Len returns T, the number of requests.
func (t *Trace) Len() int { return len(t.reqs) }

// At returns the request at 0-based time step idx (the paper's time
// t = idx+1).
func (t *Trace) At(idx int) Request { return t.reqs[idx] }

// Requests returns the underlying request slice. Callers must not modify it.
func (t *Trace) Requests() []Request { return t.reqs }

// NumTenants returns n = |U|, taken as 1 + the largest tenant id seen.
func (t *Trace) NumTenants() int { return t.tenants }

// Owner returns the owning tenant of page p and whether p appears in the
// trace.
func (t *Trace) Owner(p PageID) (Tenant, bool) {
	i, ok := t.owner[p]
	return i, ok
}

// Pages returns all distinct pages in the trace in ascending id order.
func (t *Trace) Pages() []PageID {
	out := make([]PageID, 0, len(t.owner))
	for p := range t.owner {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// PagesOf returns the distinct pages owned by tenant i, ascending.
func (t *Trace) PagesOf(i Tenant) []PageID {
	var out []PageID
	for p, owner := range t.owner {
		if owner == i {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// NumPages returns |P|, the number of distinct pages.
func (t *Trace) NumPages() int { return len(t.owner) }

// Concat returns a new trace consisting of t followed by u. Ownership must
// be consistent across the two traces.
func (t *Trace) Concat(u *Trace) (*Trace, error) {
	b := NewBuilder()
	for _, r := range t.reqs {
		b.Add(r.Tenant, r.Page)
	}
	for _, r := range u.reqs {
		b.Add(r.Tenant, r.Page)
	}
	return b.Build()
}

// Slice returns the sub-trace of requests [lo, hi).
func (t *Trace) Slice(lo, hi int) (*Trace, error) {
	if lo < 0 || hi > len(t.reqs) || lo >= hi {
		return nil, fmt.Errorf("trace: bad slice [%d,%d) of length-%d trace", lo, hi, len(t.reqs))
	}
	return FromRequests(t.reqs[lo:hi])
}

// Stats summarizes a trace for reports and sanity checks.
type Stats struct {
	// Requests is T.
	Requests int
	// DistinctPages is |P|.
	DistinctPages int
	// Tenants is n.
	Tenants int
	// PerTenantRequests counts requests per tenant.
	PerTenantRequests []int
	// PerTenantPages counts distinct pages per tenant.
	PerTenantPages []int
	// ColdMisses is the number of first-time page requests (a lower bound
	// on misses for every algorithm and every cache size).
	ColdMisses int
	// MaxWorkingSet is the largest number of distinct pages seen overall
	// (equals DistinctPages; kept for report symmetry).
	MaxWorkingSet int
}

// ComputeStats scans the trace once and returns its Stats.
func (t *Trace) ComputeStats() Stats {
	s := Stats{
		Requests:          len(t.reqs),
		DistinctPages:     len(t.owner),
		Tenants:           t.tenants,
		PerTenantRequests: make([]int, t.tenants),
		PerTenantPages:    make([]int, t.tenants),
	}
	seen := make(map[PageID]bool, len(t.owner))
	for _, r := range t.reqs {
		s.PerTenantRequests[r.Tenant]++
		if !seen[r.Page] {
			seen[r.Page] = true
			s.ColdMisses++
			s.PerTenantPages[r.Tenant]++
		}
	}
	s.MaxWorkingSet = s.DistinctPages
	return s
}

// Indexed augments a trace with the combinatorial indices used by the convex
// program of Figure 1: for each time step the interval index j(p_t, t) of
// the requested page, the running distinct-page count |B(t)|, and for every
// page its request times t(p, j).
type Indexed struct {
	*Trace
	// IntervalIdx[t] is j(p_t, t+1): 0-based index of the interval that
	// begins with the request at step t. Equivalently, the number of prior
	// requests of the same page.
	IntervalIdx []int
	// DistinctCount[t] is |B(t+1)|: distinct pages seen in steps 0..t.
	DistinctCount []int
	// RequestTimes[p][j] is the 0-based step of the j-th (0-based) request
	// of page p; the paper's t(p, j+1).
	RequestTimes map[PageID][]int
}

// Index computes the derived request indices in one scan.
func Index(t *Trace) *Indexed {
	ix := &Indexed{
		Trace:         t,
		IntervalIdx:   make([]int, t.Len()),
		DistinctCount: make([]int, t.Len()),
		RequestTimes:  make(map[PageID][]int, t.NumPages()),
	}
	distinct := 0
	for step, r := range t.reqs {
		times := ix.RequestTimes[r.Page]
		ix.IntervalIdx[step] = len(times)
		if len(times) == 0 {
			distinct++
		}
		ix.RequestTimes[r.Page] = append(times, step)
		ix.DistinctCount[step] = distinct
	}
	return ix
}

// NumIntervals returns r(p,T): the total number of requests of page p, which
// is also the number of (p, j) eviction variables for p in the convex
// program.
func (ix *Indexed) NumIntervals(p PageID) int { return len(ix.RequestTimes[p]) }

// IntervalEnd returns the 0-based step of the (j+1)-th request of p (the end
// of interval j), or the trace length if interval j is the last one.
func (ix *Indexed) IntervalEnd(p PageID, j int) int {
	times := ix.RequestTimes[p]
	if j+1 < len(times) {
		return times[j+1]
	}
	return ix.Len()
}

// WithFlush returns sigma extended by the paper's dummy-tenant flush: k
// fresh pages owned by a new tenant are appended so that every real page is
// evicted by the end, making eviction counts equal miss counts. The dummy
// tenant id and its linear unit cost are the caller's to handle.
func WithFlush(t *Trace, k int) (*Trace, Tenant, error) {
	if k <= 0 {
		return nil, 0, errors.New("trace: flush needs positive cache size")
	}
	dummy := Tenant(t.NumTenants())
	// Fresh page ids beyond any existing page.
	maxPage := PageID(-1)
	for p := range t.owner {
		if p > maxPage {
			maxPage = p
		}
	}
	b := NewBuilder()
	for _, r := range t.reqs {
		b.Add(r.Tenant, r.Page)
	}
	for j := 1; j <= k; j++ {
		b.Add(dummy, maxPage+PageID(j))
	}
	out, err := b.Build()
	return out, dummy, err
}
