package trace

import (
	"strings"
	"testing"
)

const sampleCSV = `128166372003061629,web0,0,Read,0,8192,100
128166372003061630,web0,0,Read,4096,4096,90
128166372003061631,db1,2,Write,1000000,4096,80
128166372003061632,web0,0,Read,12288,4096,70
`

func TestReadBlockCSV(t *testing.T) {
	tr, err := ReadBlockCSV(strings.NewReader(sampleCSV), CSVOptions{PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Row 1 spans pages 0,1 (8192 bytes); row 2 page 1; row 3 is unaligned
	// (offset 1000000) and spans pages 244,245 for tenant db1/2; row 4
	// page 3. Total requests: 2+1+2+1 = 6.
	if tr.Len() != 6 {
		t.Fatalf("requests = %d, want 6", tr.Len())
	}
	if tr.NumTenants() != 2 {
		t.Fatalf("tenants = %d, want 2", tr.NumTenants())
	}
	// web0/0 pages: 0,1,3 distinct; db1/2: 2 pages.
	s := tr.ComputeStats()
	if s.PerTenantPages[0] != 3 || s.PerTenantPages[1] != 2 {
		t.Errorf("per-tenant pages = %v", s.PerTenantPages)
	}
	// Page 1 is requested twice by tenant 0 (rows 1 and 2).
	if s.PerTenantRequests[0] != 4 {
		t.Errorf("tenant 0 requests = %d, want 4", s.PerTenantRequests[0])
	}
}

func TestReadBlockCSVHeaderAndComments(t *testing.T) {
	in := "ts,host,disk,type,offset,size,rt\n# comment\n\n1,h,0,Read,0,4096,1\n"
	tr, err := ReadBlockCSV(strings.NewReader(in), CSVOptions{HeaderRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("requests = %d", tr.Len())
	}
}

func TestReadBlockCSVMaxRequests(t *testing.T) {
	// One row covering many pages, capped at 3.
	in := "1,h,0,Read,0,1048576,1\n"
	tr, err := ReadBlockCSV(strings.NewReader(in), CSVOptions{PageBytes: 4096, MaxRequests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("requests = %d, want 3", tr.Len())
	}
}

func TestReadBlockCSVErrors(t *testing.T) {
	bad := []string{
		"1,h,0,Read,0\n",         // too few fields
		"1,h,0,Read,x,4096,1\n",  // bad offset
		"1,h,0,Read,0,y,1\n",     // bad size
		"1,h,0,Read,-1,4096,1\n", // negative offset
		"1,h,0,Read,0,0,1\n",     // zero size
		"",                       // empty -> no requests
	}
	for _, in := range bad {
		if _, err := ReadBlockCSV(strings.NewReader(in), CSVOptions{}); err == nil {
			t.Errorf("ReadBlockCSV(%q) succeeded", in)
		}
	}
}

func TestReadBlockCSVDefaultPageSize(t *testing.T) {
	in := "1,h,0,Read,8192,4096,1\n"
	tr, err := ReadBlockCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Page index 2 at 4K granularity, namespaced for tenant 0.
	if got := tr.At(0).Page; got != PageID(2) {
		t.Errorf("page = %d, want 2", got)
	}
}
