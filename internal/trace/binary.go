package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The binary trace format is a compact varint encoding for large traces:
// magic "CXT1", a uvarint request count, then per request a uvarint tenant
// and a uvarint page delta encoded as zig-zag against the previous page id
// (locality makes deltas small).

var binaryMagic = [4]byte{'C', 'X', 'T', '1'}

// WriteBinary serializes the trace in the binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(t.Len())); err != nil {
		return err
	}
	prev := int64(0)
	for _, r := range t.reqs {
		if err := writeUvarint(uint64(r.Tenant)); err != nil {
			return err
		}
		delta := int64(r.Page) - prev
		if err := writeUvarint(zigzag(delta)); err != nil {
			return err
		}
		prev = int64(r.Page)
	}
	return bw.Flush()
}

// ReadBinary parses a binary-format trace.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, errors.New("trace: not a CXT1 binary trace")
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: request count: %w", err)
	}
	const maxRequests = 1 << 32
	if count == 0 || count > maxRequests {
		return nil, fmt.Errorf("trace: implausible request count %d", count)
	}
	b := NewBuilder()
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		tn, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: request %d tenant: %w", i, err)
		}
		if tn > 1<<20 {
			return nil, fmt.Errorf("trace: request %d implausible tenant %d", i, tn)
		}
		zz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: request %d page: %w", i, err)
		}
		prev += unzigzag(zz)
		b.Add(Tenant(tn), PageID(prev))
	}
	return b.Build()
}

// ReadAuto detects the trace format (binary CXT1 vs text) by peeking at the
// magic bytes and dispatches to the matching reader.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && [4]byte(head) == binaryMagic {
		return ReadBinary(br)
	}
	return Read(br)
}

func zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}
