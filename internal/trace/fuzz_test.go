package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary feeds arbitrary bytes to the binary reader: it must never
// panic, and anything it accepts must round-trip.
func FuzzReadBinary(f *testing.F) {
	tr := NewBuilder().Add(0, 1).Add(1, 5).Add(0, 1).MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("CXT1"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Len() != got.Len() {
			t.Fatalf("round trip changed length: %d vs %d", back.Len(), got.Len())
		}
	})
}

// FuzzReadText does the same for the text reader.
func FuzzReadText(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n0 1\n")
	f.Add("x y\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Len() != got.Len() {
			t.Fatalf("round trip changed length")
		}
	})
}
