package trace

// Dense is the compacted view of a trace used by the allocation-free
// simulation engine: page IDs are remapped to dense ints in [0, P) so that
// ownership, residency and per-page policy state all live in flat slices
// instead of hash maps. The remap is computed once per trace and cached on
// the Trace, so repeated runs (sweeps, benchmarks, experiment tables) pay
// for it only once.
type Dense struct {
	// Pages maps dense index -> original PageID, in first-appearance order.
	Pages []PageID
	// Owners maps dense index -> owning tenant; the slice-backed owner
	// table replacing Trace's owner map on the hot path.
	Owners []Tenant
	// Reqs is the request sequence with pages replaced by dense indices;
	// Reqs[t] is the dense index of the page requested at step t.
	Reqs []int32
	// Tenants is n = |U|, copied from the trace.
	Tenants int

	index map[PageID]int32
}

// NumPages returns |P|.
func (d *Dense) NumPages() int { return len(d.Pages) }

// Len returns T.
func (d *Dense) Len() int { return len(d.Reqs) }

// IndexOf returns the dense index of page p, or -1 if p does not appear in
// the trace.
func (d *Dense) IndexOf(p PageID) int32 {
	if ix, ok := d.index[p]; ok {
		return ix
	}
	return -1
}

// Dense returns the compacted remap of the trace, computing it on first use
// and caching it for subsequent calls. Safe for concurrent use: racing first
// callers may build the remap redundantly, but the compare-and-swap ensures
// every caller — including the losers of the race — returns the one pointer
// that won, so slices handed out by Dense can be compared by identity.
func (t *Trace) Dense() *Dense {
	if d := t.dense.Load(); d != nil {
		return d
	}
	d := buildDense(t)
	if t.dense.CompareAndSwap(nil, d) {
		return d
	}
	return t.dense.Load()
}

func buildDense(t *Trace) *Dense {
	d := &Dense{
		Pages:   make([]PageID, 0, len(t.owner)),
		Owners:  make([]Tenant, 0, len(t.owner)),
		Reqs:    make([]int32, len(t.reqs)),
		Tenants: t.tenants,
		index:   make(map[PageID]int32, len(t.owner)),
	}
	for step, r := range t.reqs {
		ix, ok := d.index[r.Page]
		if !ok {
			ix = int32(len(d.Pages))
			d.index[r.Page] = ix
			d.Pages = append(d.Pages, r.Page)
			d.Owners = append(d.Owners, r.Tenant)
		}
		d.Reqs[step] = ix
	}
	return d
}

// Subsequence returns a view over the same dense remap whose request
// sequence is reqs (dense indices into this view's Pages). The page table,
// owner table and index are shared with the receiver, so per-page state
// sized by NumPages is interchangeable between the views; only the request
// sequence differs. This is how the sharded replay runner hands each worker
// its page-partition of one trace without re-remapping: every shard sees
// the full page universe under the global dense numbering and a disjoint
// subsequence of the requests.
func (d *Dense) Subsequence(reqs []int32) *Dense {
	return &Dense{
		Pages:   d.Pages,
		Owners:  d.Owners,
		Reqs:    reqs,
		Tenants: d.Tenants,
		index:   d.index,
	}
}
