package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text trace format is one request per line: "<tenant> <page>", with
// '#'-prefixed comment lines and blank lines ignored. It is the interchange
// format of cmd/tracegen and cmd/convexsim.

// Write serializes the trace in text format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# convexcache trace: T=%d pages=%d tenants=%d\n",
		t.Len(), t.NumPages(), t.NumTenants()); err != nil {
		return err
	}
	for _, r := range t.reqs {
		if _, err := fmt.Fprintf(bw, "%d %d\n", r.Tenant, r.Page); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a text-format trace.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	b := NewBuilder()
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: want \"tenant page\", got %q", line, text)
		}
		tenant, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad tenant %q", line, fields[0])
		}
		page, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad page %q", line, fields[1])
		}
		b.Add(Tenant(tenant), PageID(page))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return b.Build()
}
