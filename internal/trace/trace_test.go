package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildSimple(t *testing.T) *Trace {
	t.Helper()
	// Two tenants; tenant 0 owns pages 1,2; tenant 1 owns page 10.
	tr, err := NewBuilder().
		Add(0, 1).Add(0, 2).Add(1, 10).Add(0, 1).Add(1, 10).Add(0, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuilderBasics(t *testing.T) {
	tr := buildSimple(t)
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	if tr.NumTenants() != 2 {
		t.Fatalf("NumTenants = %d, want 2", tr.NumTenants())
	}
	if tr.NumPages() != 3 {
		t.Fatalf("NumPages = %d, want 3", tr.NumPages())
	}
	if got := tr.At(3); got.Page != 1 || got.Tenant != 0 {
		t.Fatalf("At(3) = %+v", got)
	}
	if owner, ok := tr.Owner(10); !ok || owner != 1 {
		t.Fatalf("Owner(10) = %d,%v", owner, ok)
	}
	if _, ok := tr.Owner(99); ok {
		t.Fatal("Owner(99) found")
	}
}

func TestBuilderRejectsOwnershipConflict(t *testing.T) {
	_, err := NewBuilder().Add(0, 1).Add(1, 1).Build()
	if err == nil {
		t.Fatal("conflicting ownership accepted")
	}
}

func TestBuilderRejectsEmptyAndNegativeTenant(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := NewBuilder().Add(-1, 5).Build(); err == nil {
		t.Fatal("negative tenant accepted")
	}
}

func TestPagesSortedAndPerTenant(t *testing.T) {
	tr := buildSimple(t)
	pages := tr.Pages()
	want := []PageID{1, 2, 10}
	if len(pages) != len(want) {
		t.Fatalf("Pages = %v", pages)
	}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("Pages = %v, want %v", pages, want)
		}
	}
	p0 := tr.PagesOf(0)
	if len(p0) != 2 || p0[0] != 1 || p0[1] != 2 {
		t.Fatalf("PagesOf(0) = %v", p0)
	}
	p1 := tr.PagesOf(1)
	if len(p1) != 1 || p1[0] != 10 {
		t.Fatalf("PagesOf(1) = %v", p1)
	}
}

func TestComputeStats(t *testing.T) {
	tr := buildSimple(t)
	s := tr.ComputeStats()
	if s.Requests != 6 || s.DistinctPages != 3 || s.Tenants != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ColdMisses != 3 {
		t.Fatalf("ColdMisses = %d, want 3", s.ColdMisses)
	}
	if s.PerTenantRequests[0] != 4 || s.PerTenantRequests[1] != 2 {
		t.Fatalf("PerTenantRequests = %v", s.PerTenantRequests)
	}
	if s.PerTenantPages[0] != 2 || s.PerTenantPages[1] != 1 {
		t.Fatalf("PerTenantPages = %v", s.PerTenantPages)
	}
}

func TestIndex(t *testing.T) {
	tr := buildSimple(t)
	ix := Index(tr)
	// Sequence: 1,2,10,1,10,2.
	wantInterval := []int{0, 0, 0, 1, 1, 1}
	for i, w := range wantInterval {
		if ix.IntervalIdx[i] != w {
			t.Errorf("IntervalIdx[%d] = %d, want %d", i, ix.IntervalIdx[i], w)
		}
	}
	wantDistinct := []int{1, 2, 3, 3, 3, 3}
	for i, w := range wantDistinct {
		if ix.DistinctCount[i] != w {
			t.Errorf("DistinctCount[%d] = %d, want %d", i, ix.DistinctCount[i], w)
		}
	}
	if got := ix.NumIntervals(1); got != 2 {
		t.Errorf("NumIntervals(1) = %d, want 2", got)
	}
	if got := ix.IntervalEnd(1, 0); got != 3 {
		t.Errorf("IntervalEnd(1,0) = %d, want 3", got)
	}
	if got := ix.IntervalEnd(1, 1); got != tr.Len() {
		t.Errorf("IntervalEnd(1,1) = %d, want trace end %d", got, tr.Len())
	}
	times := ix.RequestTimes[10]
	if len(times) != 2 || times[0] != 2 || times[1] != 4 {
		t.Errorf("RequestTimes[10] = %v", times)
	}
}

func TestConcatAndSlice(t *testing.T) {
	tr := buildSimple(t)
	both, err := tr.Concat(tr)
	if err != nil {
		t.Fatal(err)
	}
	if both.Len() != 12 {
		t.Fatalf("concat length = %d", both.Len())
	}
	sub, err := tr.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.At(0).Page != 2 {
		t.Fatalf("slice = %+v", sub.Requests())
	}
	if _, err := tr.Slice(3, 3); err == nil {
		t.Fatal("empty slice accepted")
	}
	if _, err := tr.Slice(-1, 2); err == nil {
		t.Fatal("negative slice accepted")
	}
}

func TestConcatOwnershipConflict(t *testing.T) {
	a := NewBuilder().Add(0, 1).MustBuild()
	b := NewBuilder().Add(1, 1).MustBuild()
	if _, err := a.Concat(b); err == nil {
		t.Fatal("conflicting concat accepted")
	}
}

func TestWithFlush(t *testing.T) {
	tr := buildSimple(t)
	flushed, dummy, err := WithFlush(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dummy != 2 {
		t.Fatalf("dummy tenant = %d, want 2", dummy)
	}
	if flushed.Len() != tr.Len()+3 {
		t.Fatalf("flushed length = %d", flushed.Len())
	}
	// The appended pages must be fresh and owned by the dummy tenant.
	for i := tr.Len(); i < flushed.Len(); i++ {
		r := flushed.At(i)
		if r.Tenant != dummy {
			t.Fatalf("flush request %d owned by %d", i, r.Tenant)
		}
		if _, ok := tr.Owner(r.Page); ok {
			t.Fatalf("flush page %d collides with existing page", r.Page)
		}
	}
	if _, _, err := WithFlush(tr, 0); err == nil {
		t.Fatal("flush with k=0 accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := buildSimple(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if back.At(i) != tr.At(i) {
			t.Fatalf("request %d: %+v != %+v", i, back.At(i), tr.At(i))
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	for _, text := range []string{
		"0 1 2\n",    // too many fields
		"x 1\n",      // bad tenant
		"0 y\n",      // bad page
		"# only\n",   // no requests at all
		"0 1\n1 1\n", // ownership conflict
	} {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("Read(%q) succeeded", text)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	tr, err := Read(strings.NewReader("# header\n\n0 1\n  \n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("length = %d, want 2", tr.Len())
	}
}

// Property: index invariants hold on random traces.
func TestQuickIndexInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		n := 2 + rng.Intn(3)
		total := 20 + rng.Intn(80)
		for i := 0; i < total; i++ {
			tenant := rng.Intn(n)
			page := PageID(tenant*100 + rng.Intn(6))
			b.Add(Tenant(tenant), page)
		}
		tr := b.MustBuild()
		ix := Index(tr)
		// (1) DistinctCount is non-decreasing and ends at NumPages.
		for i := 1; i < tr.Len(); i++ {
			if ix.DistinctCount[i] < ix.DistinctCount[i-1] {
				return false
			}
		}
		if ix.DistinctCount[tr.Len()-1] != tr.NumPages() {
			return false
		}
		// (2) Sum of NumIntervals over pages equals T.
		sum := 0
		for _, p := range tr.Pages() {
			sum += ix.NumIntervals(p)
		}
		if sum != tr.Len() {
			return false
		}
		// (3) IntervalIdx at step s equals the count of earlier requests of
		// the same page.
		counts := map[PageID]int{}
		for s, r := range tr.Requests() {
			if ix.IntervalIdx[s] != counts[r.Page] {
				return false
			}
			counts[r.Page]++
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
