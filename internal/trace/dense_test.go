package trace

import (
	"sync"
	"testing"
)

func TestDenseRemap(t *testing.T) {
	b := NewBuilder()
	// Sparse, out-of-order page ids across two tenants.
	b.Add(0, 1<<40)
	b.Add(1, 7)
	b.Add(0, 1<<40)
	b.Add(0, 42)
	b.Add(1, 7)
	tr := b.MustBuild()
	d := tr.Dense()
	if d.NumPages() != 3 {
		t.Fatalf("NumPages = %d, want 3", d.NumPages())
	}
	if d.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", d.Len(), tr.Len())
	}
	// First-appearance order: 1<<40, 7, 42.
	wantPages := []PageID{1 << 40, 7, 42}
	for i, p := range wantPages {
		if d.Pages[i] != p {
			t.Errorf("Pages[%d] = %d, want %d", i, d.Pages[i], p)
		}
		if d.IndexOf(p) != int32(i) {
			t.Errorf("IndexOf(%d) = %d, want %d", p, d.IndexOf(p), i)
		}
	}
	wantOwners := []Tenant{0, 1, 0}
	for i, o := range wantOwners {
		if d.Owners[i] != o {
			t.Errorf("Owners[%d] = %d, want %d", i, d.Owners[i], o)
		}
	}
	wantReqs := []int32{0, 1, 0, 2, 1}
	for i, ix := range wantReqs {
		if d.Reqs[i] != ix {
			t.Errorf("Reqs[%d] = %d, want %d", i, d.Reqs[i], ix)
		}
	}
	if d.IndexOf(999) != -1 {
		t.Errorf("IndexOf(absent) = %d, want -1", d.IndexOf(999))
	}
	if d.Tenants != tr.NumTenants() {
		t.Errorf("Tenants = %d, want %d", d.Tenants, tr.NumTenants())
	}
}

func TestDenseRoundTripAgainstOwner(t *testing.T) {
	// Every request's dense index must map back to the original page and
	// the slice owner table must agree with the map owner table.
	tr := mustRandomTrace(t)
	d := tr.Dense()
	for step, r := range tr.Requests() {
		ix := d.Reqs[step]
		if d.Pages[ix] != r.Page {
			t.Fatalf("step %d: dense %d -> page %d, want %d", step, ix, d.Pages[ix], r.Page)
		}
		if d.Owners[ix] != r.Tenant {
			t.Fatalf("step %d: owner %d, want %d", step, d.Owners[ix], r.Tenant)
		}
	}
	for p, want := range tr.owner {
		ix := d.IndexOf(p)
		if ix < 0 || d.Owners[ix] != want {
			t.Fatalf("page %d: dense owner mismatch", p)
		}
	}
}

func mustRandomTrace(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < 500; i++ {
		tn := Tenant(i % 3)
		b.Add(tn, PageID(int64(tn)*1000+int64(i*i%37)))
	}
	return b.MustBuild()
}

func TestDenseCachedOncePerTrace(t *testing.T) {
	tr := mustRandomTrace(t)
	if tr.Dense() != tr.Dense() {
		t.Fatal("Dense not cached: two calls returned different views")
	}
}

func TestDenseConcurrentAccess(t *testing.T) {
	tr := mustRandomTrace(t)
	var wg sync.WaitGroup
	views := make([]*Dense, 8)
	for i := range views {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = tr.Dense()
		}(i)
	}
	wg.Wait()
	for _, d := range views {
		if d == nil || d.NumPages() != tr.NumPages() {
			t.Fatal("concurrent Dense returned inconsistent view")
		}
	}
}

// TestDenseConcurrentFirstCallsShareRemap guards the compare-and-swap in
// Dense(): when many goroutines race the *first* densification of a trace,
// every one of them must get the identical cached remap pointer, not a
// private redundant build. Run with -race in CI.
func TestDenseConcurrentFirstCallsShareRemap(t *testing.T) {
	const goroutines = 16
	for round := 0; round < 50; round++ {
		b := NewBuilder()
		for i := 0; i < 64; i++ {
			tn := Tenant(i % 3)
			b.Add(tn, PageID(int64(tn)*1000+int64((i*7)%13)))
		}
		tr := b.MustBuild()
		start := make(chan struct{})
		views := make([]*Dense, goroutines)
		var wg sync.WaitGroup
		for i := range views {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				views[i] = tr.Dense()
			}(i)
		}
		close(start)
		wg.Wait()
		for i, d := range views {
			if d != views[0] {
				t.Fatalf("round %d: goroutine %d got a different remap pointer", round, i)
			}
		}
		if views[0] != tr.Dense() {
			t.Fatalf("round %d: later call disagrees with racing first calls", round)
		}
	}
}
