package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := buildSimple(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("length %d != %d", back.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if back.At(i) != tr.At(i) {
			t.Fatalf("request %d: %+v != %+v", i, back.At(i), tr.At(i))
		}
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		n := 1 + rng.Intn(4)
		for i := 0; i < 50+rng.Intn(200); i++ {
			tn := rng.Intn(n)
			b.Add(Tenant(tn), PageID(int64(tn)<<32|int64(rng.Intn(100))))
		}
		tr := b.MustBuild()
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if back.Len() != tr.Len() {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			if back.At(i) != tr.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	for _, data := range []string{
		"",
		"XY",
		"NOPE0123456",
		"CXT1", // magic but no count
	} {
		if _, err := ReadBinary(strings.NewReader(data)); err == nil {
			t.Errorf("garbage %q accepted", data)
		}
	}
	// Truncated body.
	tr := buildSimple(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadBinary(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestBinaryIsCompact(t *testing.T) {
	// Locality-heavy traces should compress well below text size.
	b := NewBuilder()
	rng := rand.New(rand.NewSource(1))
	page := int64(1_000_000)
	for i := 0; i < 5000; i++ {
		page += int64(rng.Intn(7)) - 3
		if page < 0 {
			page = 0
		}
		b.Add(0, PageID(page))
	}
	tr := b.MustBuild()
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := Write(&txt, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len()/2 {
		t.Errorf("binary %d bytes not well below text %d", bin.Len(), txt.Len())
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip of %d = %d", v, got)
		}
	}
}
