package hierarchy

import (
	"math/rand"
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

func quadCosts(n int) []costfn.Func {
	out := make([]costfn.Func, n)
	for i := range out {
		out[i] = costfn.Monomial{C: 1, Beta: 2}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{L2Size: 4, L2Policy: policy.NewLRU()}); err == nil {
		t.Error("0 tenants accepted")
	}
	if _, err := New(1, Config{L2Size: 0, L2Policy: policy.NewLRU()}); err == nil {
		t.Error("L2 size 0 accepted")
	}
	if _, err := New(1, Config{L2Size: 4}); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestL1HitsDoNotTouchL2(t *testing.T) {
	sys, err := New(1, Config{L1Sizes: []int{2}, L2Size: 4, L2Policy: policy.NewLRU()})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []trace.PageID{1, 2, 1, 2, 1} {
		if err := sys.Serve(trace.Request{Page: p, Tenant: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if sys.res.L1Hits[0] != 3 {
		t.Errorf("L1 hits = %d, want 3", sys.res.L1Hits[0])
	}
	if sys.res.Misses[0] != 2 {
		t.Errorf("misses = %d, want 2 (cold)", sys.res.Misses[0])
	}
	if len(sys.l2) != 0 {
		t.Errorf("L2 populated (%d pages) without demotions", len(sys.l2))
	}
}

func TestDemotionAndL2Hit(t *testing.T) {
	// L1 of 1 page: accessing 1 then 2 demotes 1 into L2; re-accessing 1
	// is an L2 hit (exclusive: it moves back up, demoting 2).
	sys, err := New(1, Config{L1Sizes: []int{1}, L2Size: 4, L2Policy: policy.NewLRU()})
	if err != nil {
		t.Fatal(err)
	}
	seq := []trace.PageID{1, 2, 1, 2}
	for _, p := range seq {
		if err := sys.Serve(trace.Request{Page: p, Tenant: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if sys.res.Misses[0] != 2 {
		t.Errorf("misses = %d, want 2", sys.res.Misses[0])
	}
	if sys.res.L2Hits[0] != 2 {
		t.Errorf("L2 hits = %d, want 2", sys.res.L2Hits[0])
	}
}

func TestNoL1FallsThrough(t *testing.T) {
	// Zero-size L1 behaves like a flat shared cache.
	sys, err := New(1, Config{L1Sizes: []int{0}, L2Size: 2, L2Policy: policy.NewLRU()})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewBuilder().Add(0, 1).Add(0, 2).Add(0, 1).Add(0, 3).Add(0, 1).MustBuild()
	res, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	flat := sim.MustRun(tr, policy.NewLRU(), sim.Config{K: 2})
	if res.TotalMisses() != flat.TotalMisses() {
		t.Errorf("flat-equivalent misses %d != %d", res.TotalMisses(), flat.TotalMisses())
	}
}

func TestInclusiveModeKeepsL2Copy(t *testing.T) {
	sys, err := New(1, Config{L1Sizes: []int{1}, L2Size: 4, L2Policy: policy.NewLRU(), Inclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Serve(trace.Request{Page: 1, Tenant: 0}); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.l2[1]; !ok {
		t.Error("inclusive miss did not populate L2")
	}
}

func TestHierarchyWithConvexL2(t *testing.T) {
	// Integration: DB tenants over private L1s with the paper's algorithm
	// in the shared level; convex L2 must beat LRU L2 on total cost when
	// L1s are small.
	costs := quadCosts(2)
	d0, err := workload.NewDB(31, 600, 0.9, 0.05, 16)
	if err != nil {
		t.Fatal(err)
	}
	u, err := workload.NewUniform(32, 4000)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Mix(33, []workload.TenantStream{
		{Tenant: 0, Stream: d0, Rate: 1},
		{Tenant: 1, Stream: u, Rate: 2},
	}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	costs[1] = costfn.Linear{W: 0.05}
	run := func(p sim.Policy) Result {
		sys, err := New(2, Config{L1Sizes: []int{8, 8}, L2Size: 120, L2Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	convex := run(core.NewFast(core.Options{Costs: costs, CountMisses: true}))
	lruRes := run(policy.NewLRU())
	if convex.Cost(costs) >= lruRes.Cost(costs) {
		t.Errorf("convex L2 cost %g not below LRU L2 %g", convex.Cost(costs), lruRes.Cost(costs))
	}
	// Accounting identity: L1+L2 hits+misses per tenant equals requests.
	stats := tr.ComputeStats()
	for i := 0; i < 2; i++ {
		total := convex.L1Hits[i] + convex.L2Hits[i] + convex.Misses[i]
		if total != int64(stats.PerTenantRequests[i]) {
			t.Errorf("tenant %d: accounted %d != requests %d", i, total, stats.PerTenantRequests[i])
		}
	}
}

func TestLargerL1ReducesSharedPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := trace.NewBuilder()
	for i := 0; i < 10000; i++ {
		tn := rng.Intn(2)
		b.Add(trace.Tenant(tn), trace.PageID(tn*1000+rng.Intn(60)))
	}
	tr := b.MustBuild()
	missesWith := func(l1 int) int64 {
		sys, err := New(2, Config{L1Sizes: []int{l1, l1}, L2Size: 40, L2Policy: policy.NewLRU()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalMisses()
	}
	if m0, m16 := missesWith(0), missesWith(16); m16 > m0 {
		t.Errorf("adding private L1 increased misses: %d -> %d", m0, m16)
	}
}
