// Package hierarchy simulates the two-level memory layout common in
// DaaS deployments (the paper's SQLVM setting gives each tenant a small
// private buffer share in front of provider-managed shared memory): every
// tenant owns a private L1 cache (LRU), and L1 misses fall through to one
// shared L2 running a pluggable policy — the paper's convex-cost algorithm
// or a baseline. Caching is exclusive by default: pages move up on access
// and are demoted into L2 when evicted from L1.
//
// Experiment E17 measures how much private L1 a tenant needs before the
// shared layer's cost-awareness stops mattering.
package hierarchy

import (
	"errors"
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Config configures a two-level simulation.
type Config struct {
	// L1Sizes is each tenant's private cache capacity (0 = no L1).
	L1Sizes []int
	// L2Size is the shared cache capacity; must be positive.
	L2Size int
	// L2Policy chooses evictions in the shared level.
	L2Policy sim.Policy
	// Inclusive keeps pages resident in L2 while they are in L1; the
	// default (exclusive) removes a page from L2 on promotion.
	Inclusive bool
}

// Result summarizes a run.
type Result struct {
	// L1Hits, L2Hits, Misses are per-tenant counters; Misses are backing
	// store fetches.
	L1Hits, L2Hits, Misses []int64
}

// TotalMisses sums backing-store fetches.
func (r Result) TotalMisses() int64 {
	var s int64
	for _, m := range r.Misses {
		s += m
	}
	return s
}

// Cost evaluates sum_i f_i(misses_i) over backing-store fetches.
func (r Result) Cost(fs []costfn.Func) float64 {
	return sim.Cost(fs, r.Misses)
}

// lru is a minimal private-cache LRU (no policy interface overhead).
type lru struct {
	cap   int
	order []trace.PageID // front = LRU, back = MRU
	pos   map[trace.PageID]int
}

func newLRU(cap int) *lru {
	return &lru{cap: cap, pos: make(map[trace.PageID]int)}
}

func (l *lru) contains(p trace.PageID) bool { _, ok := l.pos[p]; return ok }

// touch moves p to MRU; inserts when absent, returning an evicted page (or
// -1) when full.
func (l *lru) touch(p trace.PageID) trace.PageID {
	if i, ok := l.pos[p]; ok {
		l.remove(i)
	}
	evicted := trace.PageID(-1)
	if l.cap > 0 && len(l.order) >= l.cap {
		evicted = l.order[0]
		l.remove(0)
	}
	if l.cap > 0 {
		l.pos[p] = len(l.order)
		l.order = append(l.order, p)
	}
	return evicted
}

func (l *lru) remove(i int) {
	p := l.order[i]
	copy(l.order[i:], l.order[i+1:])
	l.order = l.order[:len(l.order)-1]
	delete(l.pos, p)
	for j := i; j < len(l.order); j++ {
		l.pos[l.order[j]] = j
	}
}

// System is a running two-level hierarchy.
type System struct {
	cfg Config
	l1  []*lru
	l2  map[trace.PageID]trace.Tenant
	res Result

	step int
}

// New validates the configuration.
func New(tenants int, cfg Config) (*System, error) {
	if tenants <= 0 {
		return nil, errors.New("hierarchy: tenant count must be positive")
	}
	if cfg.L2Size <= 0 {
		return nil, errors.New("hierarchy: shared level must have positive size")
	}
	if cfg.L2Policy == nil {
		return nil, errors.New("hierarchy: shared level needs a policy")
	}
	s := &System{
		cfg: cfg,
		l2:  make(map[trace.PageID]trace.Tenant, cfg.L2Size),
		res: Result{
			L1Hits: make([]int64, tenants),
			L2Hits: make([]int64, tenants),
			Misses: make([]int64, tenants),
		},
	}
	for i := 0; i < tenants; i++ {
		size := 0
		if i < len(cfg.L1Sizes) {
			size = cfg.L1Sizes[i]
		}
		s.l1 = append(s.l1, newLRU(size))
	}
	return s, nil
}

// Serve processes one request through both levels.
func (s *System) Serve(r trace.Request) error {
	if int(r.Tenant) >= len(s.l1) {
		return fmt.Errorf("hierarchy: unknown tenant %d", r.Tenant)
	}
	s.step++
	l1 := s.l1[r.Tenant]
	if l1.contains(r.Page) {
		s.res.L1Hits[r.Tenant]++
		s.promote(r)
		return nil
	}
	if _, ok := s.l2[r.Page]; ok {
		s.res.L2Hits[r.Tenant]++
		if !s.cfg.Inclusive {
			// Exclusive: the page moves up.
			delete(s.l2, r.Page)
			s.cfg.L2Policy.OnEvict(s.step, r.Page)
		} else {
			s.cfg.L2Policy.OnHit(s.step, r)
		}
		s.promote(r)
		return nil
	}
	// Full miss: fetch from backing store into L1 (exclusive) or both
	// (inclusive).
	s.res.Misses[r.Tenant]++
	if s.cfg.Inclusive {
		if err := s.insertL2(r); err != nil {
			return err
		}
	}
	s.promote(r)
	return nil
}

// promote places the page at the tenant's L1 MRU, demoting any L1 victim
// into L2.
func (s *System) promote(r trace.Request) {
	l1 := s.l1[r.Tenant]
	if l1.cap == 0 {
		// No private level: the page lives in L2 directly.
		if _, ok := s.l2[r.Page]; !ok {
			_ = s.insertL2(r)
		} else {
			s.cfg.L2Policy.OnHit(s.step, r)
		}
		return
	}
	if evicted := l1.touch(r.Page); evicted >= 0 {
		// Demote the L1 victim into the shared level (unless inclusive,
		// where it may already be there).
		if _, ok := s.l2[evicted]; !ok {
			_ = s.insertL2(trace.Request{Page: evicted, Tenant: r.Tenant})
		}
	}
}

// insertL2 inserts into the shared level, evicting via the policy if full.
func (s *System) insertL2(r trace.Request) error {
	if _, ok := s.l2[r.Page]; ok {
		return nil
	}
	if len(s.l2) >= s.cfg.L2Size {
		victim := s.cfg.L2Policy.Victim(s.step, r)
		if _, ok := s.l2[victim]; !ok {
			return fmt.Errorf("hierarchy: policy returned non-resident victim %d", victim)
		}
		delete(s.l2, victim)
		s.cfg.L2Policy.OnEvict(s.step, victim)
	}
	s.l2[r.Page] = r.Tenant
	s.cfg.L2Policy.OnInsert(s.step, r)
	return nil
}

// Run replays a trace.
func (s *System) Run(tr *trace.Trace) (Result, error) {
	for _, r := range tr.Requests() {
		if err := s.Serve(r); err != nil {
			return Result{}, err
		}
	}
	return s.res, nil
}
