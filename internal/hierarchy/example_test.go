package hierarchy_test

import (
	"fmt"

	"convexcache/internal/hierarchy"
	"convexcache/internal/policy"
	"convexcache/internal/trace"
)

// Example runs a private-L1 / shared-L2 hierarchy: repeated accesses hit in
// L1, demoted pages are caught by L2.
func Example() {
	sys, _ := hierarchy.New(1, hierarchy.Config{
		L1Sizes:  []int{1},
		L2Size:   4,
		L2Policy: policy.NewLRU(),
	})
	for _, p := range []trace.PageID{1, 2, 1, 2} {
		sys.Serve(trace.Request{Page: p, Tenant: 0})
	}
	res, _ := sys.Run(trace.NewBuilder().Add(0, 1).MustBuild())
	fmt.Printf("L2 hits=%d backing-store misses=%d\n", res.L2Hits[0], res.Misses[0])
	// Output:
	// L2 hits=3 backing-store misses=2
}
