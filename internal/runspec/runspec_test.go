package runspec

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// validScenario is a minimal runnable scenario for mutation in tests.
func validScenario() Scenario {
	return Scenario{
		Trace: TraceSpec{Inline: [][2]int64{{0, 1}, {0, 2}, {0, 1}}},
		K:     2,
	}
}

func TestValidateDefaults(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		check  func(t *testing.T, sc *Scenario)
	}{
		{
			name:   "empty policy list selects the canonical pair",
			mutate: func(sc *Scenario) { sc.Policies = nil },
			check: func(t *testing.T, sc *Scenario) {
				want := []PolicySpec{{Name: "alg"}, {Name: "lru"}}
				if len(sc.Policies) != 2 || sc.Policies[0] != want[0] || sc.Policies[1] != want[1] {
					t.Fatalf("default policies = %+v, want %+v", sc.Policies, want)
				}
			},
		},
		{
			name:   "explicit policies survive untouched",
			mutate: func(sc *Scenario) { sc.Policies = []PolicySpec{{Name: "lfu"}} },
			check: func(t *testing.T, sc *Scenario) {
				if len(sc.Policies) != 1 || sc.Policies[0].Name != "lfu" {
					t.Fatalf("policies = %+v, want [lfu]", sc.Policies)
				}
			},
		},
		{
			name:   "engine defaults to auto (empty accepted)",
			mutate: func(sc *Scenario) { sc.Engine = "" },
			check: func(t *testing.T, sc *Scenario) {
				if _, ok := engines[sc.Engine]; !ok {
					t.Fatalf("engine %q not resolvable", sc.Engine)
				}
			},
		},
		{
			name: "workload seed defers to scenario seed",
			mutate: func(sc *Scenario) {
				sc.Trace = TraceSpec{Workload: &WorkloadSpec{
					Tenants: []TenantSpec{{Stream: "zipf:10,1.0"}},
					Length:  100,
				}}
				sc.Seed = 7
			},
			check: func(t *testing.T, sc *Scenario) {
				if sc.Trace.Workload.Seed != 7 {
					t.Fatalf("workload seed = %d, want 7 (deferred)", sc.Trace.Workload.Seed)
				}
			},
		},
		{
			name: "pinned workload seed wins over scenario seed",
			mutate: func(sc *Scenario) {
				sc.Trace = TraceSpec{Workload: &WorkloadSpec{
					Tenants: []TenantSpec{{Stream: "zipf:10,1.0"}},
					Length:  100,
					Seed:    3,
				}}
				sc.Seed = 7
			},
			check: func(t *testing.T, sc *Scenario) {
				if sc.Trace.Workload.Seed != 3 {
					t.Fatalf("workload seed = %d, want pinned 3", sc.Trace.Workload.Seed)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := validScenario()
			tc.mutate(&sc)
			if err := sc.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			tc.check(t, &sc)
		})
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantSub string
	}{
		{"no trace source", func(sc *Scenario) { sc.Trace = TraceSpec{} }, "trace source required"},
		{"two trace sources", func(sc *Scenario) { sc.Trace.File = "x.txt" }, "exactly one trace source"},
		{"duplicate policy", func(sc *Scenario) {
			sc.Policies = []PolicySpec{{Name: "alg"}, {Name: "alg", DiscreteDeriv: true}}
		}, `duplicate policy "alg"`},
		{"empty policy name", func(sc *Scenario) { sc.Policies = []PolicySpec{{Name: "  "}} }, "empty policy name"},
		{"k unset", func(sc *Scenario) { sc.K = 0 }, "k must be positive"},
		{"k and k_sweep", func(sc *Scenario) { sc.KSweep = []int{4, 8} }, "mutually exclusive"},
		{"bad sweep entry", func(sc *Scenario) { sc.K = 0; sc.KSweep = []int{4, 0} }, "k_sweep entry"},
		{"unknown engine", func(sc *Scenario) { sc.Engine = "gpu" }, `unknown engine "gpu"`},
		{"negative warmup", func(sc *Scenario) { sc.Warmup = -1 }, "warmup must be non-negative"},
		{"negative window", func(sc *Scenario) { sc.Observers.Window = -5 }, "window must be non-negative"},
		{"workload without tenants", func(sc *Scenario) {
			sc.Trace = TraceSpec{Workload: &WorkloadSpec{Length: 10}}
		}, "at least one tenant stream"},
		{"workload without length", func(sc *Scenario) {
			sc.Trace = TraceSpec{Workload: &WorkloadSpec{Tenants: []TenantSpec{{Stream: "scan:5"}}}}
		}, "length must be positive"},
		{"format on inline source", func(sc *Scenario) { sc.Trace.Format = "binary" }, "file source only"},
		{"unknown format", func(sc *Scenario) {
			sc.Trace = TraceSpec{File: "x", Format: "xml"}
		}, "unknown trace format"},
		{"block-csv without file", func(sc *Scenario) { sc.Trace.Format = "block-csv" }, "requires a file source"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := validScenario()
			tc.mutate(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", sc)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *SpecError", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseScenarioStrict(t *testing.T) {
	if _, err := ParseScenario([]byte(`{"k": 4, "polcies": ["alg"]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseScenario([]byte(`{"k": 4} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	sc, err := ParseScenario([]byte(`{
		"trace": {"workload": {"tenants": ["zipf:100,0.9:2", {"stream": "scan:50", "seed": 5}], "length": 1000}},
		"policies": ["lru", {"name": "alg", "discrete_deriv": true}],
		"k": 32
	}`))
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	w := sc.Trace.Workload
	if w == nil || len(w.Tenants) != 2 {
		t.Fatalf("workload = %+v", w)
	}
	if w.Tenants[0].Stream != "zipf:100,0.9:2" || w.Tenants[0].Seed != nil {
		t.Fatalf("tenant 0 = %+v", w.Tenants[0])
	}
	if w.Tenants[1].Seed == nil || *w.Tenants[1].Seed != 5 {
		t.Fatalf("tenant 1 = %+v", w.Tenants[1])
	}
	if sc.Policies[0].Name != "lru" || !sc.Policies[1].DiscreteDeriv {
		t.Fatalf("policies = %+v", sc.Policies)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	// Optionless specs marshal to the compact string form and survive a
	// round trip; option-bearing specs keep the object form.
	seed := int64(9)
	sc := Scenario{
		Name: "rt",
		Trace: TraceSpec{Workload: &WorkloadSpec{
			Tenants: []TenantSpec{{Stream: "zipf:10,1.0"}, {Stream: "scan:5", Seed: &seed}},
			Length:  50,
		}},
		Policies: []PolicySpec{{Name: "lru"}, {Name: "alg", CountMisses: true}},
		K:        8,
	}
	data, err := json.Marshal(&sc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"zipf:10,1.0"`) {
		t.Fatalf("optionless tenant not compact: %s", data)
	}
	if !strings.Contains(string(data), `"lru"`) {
		t.Fatalf("optionless policy not compact: %s", data)
	}
	back, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("round trip not a fixed point:\n%s\n%s", data, data2)
	}
}

func TestBuildCostsSurplusAndFlush(t *testing.T) {
	sc := Scenario{Costs: []string{"linear:2", "linear:3", "linear:4"}}
	if _, err := sc.BuildCosts(2, 2); err == nil {
		t.Fatal("surplus cost specs accepted")
	}
	// Explicit specs may override the dummy flush tenant's cost.
	costs, err := sc.BuildCosts(3, 2)
	if err != nil {
		t.Fatalf("BuildCosts: %v", err)
	}
	if got := costs[2].Value(10); got != 40 {
		t.Fatalf("flush-tenant override: f(10) = %v, want 40", got)
	}
	// Without an override the dummy tenant gets the flush cost: far beyond
	// any real tenant's cost at the same occupancy.
	sc2 := Scenario{Costs: []string{"linear:2"}}
	costs2, err := sc2.BuildCosts(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if costs2[2].Value(1) <= costs2[0].Value(1000) {
		t.Fatalf("dummy tenant cost %v not dominant", costs2[2].Value(1))
	}
}

func TestCompilePoliciesErrors(t *testing.T) {
	sc := validScenario()
	sc.Policies = []PolicySpec{{Name: "lru", DiscreteDeriv: true}}
	if _, err := sc.CompilePolicies(4, 1, nil); err == nil {
		t.Fatal("algorithm options on lru accepted")
	}
	sc.Policies = []PolicySpec{{Name: "no-such-policy"}}
	_, err := sc.CompilePolicies(4, 1, nil)
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("unknown policy error %v is not a *SpecError", err)
	}
}

func TestPolicyNamesCoverRegistry(t *testing.T) {
	names := PolicyNames()
	want := map[string]bool{"alg": false, "alg-ref": false, "lru": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("PolicyNames() missing %q (got %v)", n, names)
		}
	}
}
