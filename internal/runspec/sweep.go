package runspec

import (
	"context"

	"convexcache/internal/sweep"
)

// Cell adapts the scenario to one sweep.Cell for seed-replicated parameter
// sweeps: each seed invocation executes a private copy of the scenario with
// Scenario.Seed replaced by the sweep seed — and, unless a tenant stream
// pins its own seed, the workload seed re-derived from it — then reduces
// the Output to a scalar via metric. The copy makes the cell safe for
// sweep.Run's concurrent invocations.
func (sc Scenario) Cell(label string, metric func(*Output) (float64, error)) sweep.Cell {
	return sweep.Cell{
		Label: label,
		Metric: func(seed int64) (float64, error) {
			run := sc
			if run.Trace.Workload != nil {
				w := *run.Trace.Workload
				w.Seed = 0 // re-derive from the sweep seed in Validate
				run.Trace.Workload = &w
			}
			run.Seed = seed
			out, err := run.Execute(context.Background())
			if err != nil {
				return 0, err
			}
			if err := out.Err(); err != nil {
				return 0, err
			}
			return metric(out)
		},
	}
}

// CostRatio is a ready-made sweep metric: the total-cost ratio of policy a
// over policy b at the scenario's single cache size (the headline
// LRU-over-ALG robustness number). It errors when either row is missing or
// the denominator cost is zero (a vacuous run).
func CostRatio(a, b string) func(*Output) (float64, error) {
	return func(out *Output) (float64, error) {
		k := 0
		if len(out.Rows) > 0 {
			k = out.Rows[0].K
		}
		ra, rb := out.Row(a, k), out.Row(b, k)
		if ra == nil || rb == nil {
			return 0, specErrf("runspec: cost ratio needs rows %q and %q", a, b)
		}
		if rb.Cost == 0 {
			return 0, specErrf("runspec: vacuous run: policy %q has zero cost", b)
		}
		return ra.Cost / rb.Cost, nil
	}
}
