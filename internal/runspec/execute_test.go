package runspec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"convexcache/internal/check"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// diffInline is the hand-written request sequence of the matrix's inline
// cell: two tenants with disjoint page universes and enough reuse to force
// evictions at small k.
var diffInline = [][2]int64{
	{0, 1}, {1, 101}, {0, 2}, {1, 102}, {0, 3}, {1, 103},
	{0, 1}, {1, 104}, {0, 4}, {1, 101}, {0, 2}, {1, 105},
	{0, 5}, {1, 102}, {0, 1}, {1, 106}, {0, 3}, {1, 103},
	{0, 6}, {1, 101}, {0, 2}, {1, 107}, {0, 1}, {1, 104},
}

// buildDirect reproduces each trace source exactly the way the pre-refactor
// entry points did, bypassing the Scenario planner entirely.
func buildDirect(t *testing.T, kind, dir string) *trace.Trace {
	t.Helper()
	switch kind {
	case "inline":
		b := trace.NewBuilder()
		for _, row := range diffInline {
			b.Add(trace.Tenant(row[0]), trace.PageID(row[1]))
		}
		tr, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	case "file":
		f, err := os.Open(filepath.Join(dir, "diff.trace"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	case "workload":
		// The tracegen seed rule: per-tenant stream seed = seed + i*1001.
		specs := []string{"zipf:40,1.0", "uniform:120:2"}
		var streams []workload.TenantStream
		for i, spec := range specs {
			s, rate, err := workload.ParseStream(spec, 11+int64(i)*1001)
			if err != nil {
				t.Fatal(err)
			}
			streams = append(streams, workload.TenantStream{
				Tenant: trace.Tenant(i), Stream: s, Rate: rate,
			})
		}
		tr, err := workload.Mix(11, streams, 600)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	t.Fatalf("unknown trace kind %q", kind)
	return nil
}

// scenarioFor builds the Scenario form of the same cell.
func scenarioFor(kind, dir, policyName, engine string, k int) *Scenario {
	sc := &Scenario{
		Policies: []PolicySpec{{Name: policyName}},
		Costs:    []string{"monomial:1,2", "linear:0.5"},
		K:        k,
		Engine:   engine,
		Seed:     11,
	}
	switch kind {
	case "inline":
		sc.Trace = TraceSpec{Inline: diffInline}
	case "file":
		sc.Trace = TraceSpec{File: "diff.trace"}
		sc.BaseDir = dir
	case "workload":
		sc.Trace = TraceSpec{Workload: &WorkloadSpec{
			Tenants: []TenantSpec{{Stream: "zipf:40,1.0"}, {Stream: "uniform:120:2"}},
			Length:  600,
		}}
	}
	return sc
}

// newDirectPolicy resolves the policy the way pre-refactor callers did.
func newDirectPolicy(t *testing.T, name string, k, tenants int, costs []costfn.Func) sim.Policy {
	t.Helper()
	switch name {
	case "alg":
		return core.NewFast(core.Options{Costs: costs})
	case "alg-ref":
		return core.NewDiscrete(core.Options{Costs: costs})
	}
	p, err := policy.New(name, policy.Spec{K: k, Tenants: tenants, Costs: costs, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestExecuteMatchesDirectMatrix is the behavior-preservation matrix of the
// run-spec refactor: every (trace kind x policy x engine) cell must produce
// a sim.Result bit-identical to the pre-refactor path — trace built by
// hand, policy resolved by hand, sim.Run with an explicit sim.Config — and
// every cell must pass the internal/check invariant oracle.
func TestExecuteMatchesDirectMatrix(t *testing.T) {
	dir := t.TempDir()
	fileTrace := buildDirect(t, "inline", dir)
	f, err := os.Create(filepath.Join(dir, "diff.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, fileTrace); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	const k = 4
	engineOf := map[string]sim.Engine{"auto": sim.EngineAuto, "map": sim.EngineMap, "dense": sim.EngineDense}
	// Engines per policy: the dense loop needs per-tenant eviction support,
	// which only the paper's algorithm implements.
	enginesFor := map[string][]string{
		"alg":     {"auto", "map", "dense"},
		"lru":     {"auto", "map"},
		"alg-ref": {"map"},
	}
	cells := 0
	for _, kind := range []string{"inline", "file", "workload"} {
		for _, policyName := range []string{"alg", "lru", "alg-ref"} {
			for _, engine := range enginesFor[policyName] {
				t.Run(fmt.Sprintf("%s/%s/%s", kind, policyName, engine), func(t *testing.T) {
					cells++
					// Pre-refactor path.
					tr := buildDirect(t, kind, dir)
					costs := []costfn.Func{
						costfn.Monomial{C: 1, Beta: 2},
						costfn.Linear{W: 0.5},
					}
					cfg := sim.Config{K: k, Engine: engineOf[engine]}
					want, err := sim.Run(tr, newDirectPolicy(t, policyName, k, tr.NumTenants(), costs), cfg)
					if err != nil {
						t.Fatal(err)
					}

					// Run-spec path.
					sc := scenarioFor(kind, dir, policyName, engine, k)
					out, err := sc.Execute(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					row := out.Row(policyName, k)
					if row == nil {
						t.Fatalf("no row for %s@k=%d", policyName, k)
					}
					if row.Err != nil {
						t.Fatal(row.Err)
					}
					if !reflect.DeepEqual(row.Result, want) {
						t.Fatalf("results diverge:\n spec   %+v\n direct %+v", row.Result, want)
					}
					if wantCost := want.Cost(costs); row.Cost != wantCost {
						t.Fatalf("cost diverges: spec %v direct %v", row.Cost, wantCost)
					}

					// Oracle: the cell passes the invariant shadow model.
					if _, err := check.MustPass(tr, newDirectPolicy(t, policyName, k, tr.NumTenants(), costs), cfg, costs); err != nil {
						t.Fatalf("invariant oracle: %v", err)
					}
				})
			}
		}
	}
	if min := 12; cells < min {
		t.Fatalf("matrix ran %d cells, want >= %d", cells, min)
	}
}

func TestExecuteKSweepAndFlush(t *testing.T) {
	sc := &Scenario{
		Trace: TraceSpec{Workload: &WorkloadSpec{
			Tenants: []TenantSpec{{Stream: "zipf:30,1.0"}},
			Length:  300,
		}},
		Policies: []PolicySpec{{Name: "alg"}, {Name: "lru"}},
		KSweep:   []int{4, 8, 16},
		Seed:     5,
		Flush:    true,
		Workers:  4, // exercise the parallel planner (and the race detector)
	}
	out, err := sc.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.Rows); got != 6 {
		t.Fatalf("rows = %d, want 6 (3 sizes x 2 policies)", got)
	}
	if out.RealTenants != 1 || len(out.Costs) != 2 {
		t.Fatalf("flush bookkeeping: real=%d costs=%d", out.RealTenants, len(out.Costs))
	}
	for _, row := range out.Rows {
		if row.Err != nil {
			t.Fatalf("%s@k=%d: %v", row.Policy, row.K, row.Err)
		}
		// The paper's flush construction makes eviction counts equal miss
		// counts for the real tenants.
		if row.Result.Evictions[0] != row.Result.Misses[0] {
			t.Fatalf("%s@k=%d: evictions %d != misses %d after flush",
				row.Policy, row.K, row.Result.Evictions[0], row.Result.Misses[0])
		}
		// The dummy tenant must not contribute to the reported cost.
		if row.Cost != row.Result.Cost(out.Costs[:1]) {
			t.Fatalf("cost includes dummy tenant")
		}
	}
	// A sweep's row results must match single-k executions exactly.
	for _, k := range sc.KSweep {
		single := &Scenario{
			Trace:    sc.Trace,
			Policies: []PolicySpec{{Name: "alg"}},
			K:        k,
			Seed:     5,
			Flush:    true,
		}
		sout, err := single.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sout.Rows[0].Result, out.Row("alg", k).Result) {
			t.Fatalf("k=%d: sweep row diverges from single-k run", k)
		}
	}
}

func TestExecuteObserverChain(t *testing.T) {
	sc := &Scenario{
		Trace: TraceSpec{Inline: diffInline},
		Policies: []PolicySpec{
			{Name: "alg"}, {Name: "lru"},
		},
		K:         4,
		Observers: ObserverSpec{Check: true, Window: 6},
	}
	var events int
	sc.Observer = func(ev sim.Event) { events++ }
	rowObsCalls := map[string]int{}
	sc.RowObserver = func(policy string, k int, tr *trace.Trace) sim.Observer {
		rowObsCalls[policy]++
		return nil
	}
	out, err := sc.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	for _, row := range out.Rows {
		if row.Windows == nil || row.Windows.Windows() == 0 {
			t.Fatalf("%s: no window series collected", row.Policy)
		}
		if len(row.Violations) != 0 {
			t.Fatalf("%s: unexpected violations %v", row.Policy, row.Violations)
		}
	}
	if events == 0 {
		t.Fatal("runtime observer saw no events")
	}
	if rowObsCalls["alg"] != 1 || rowObsCalls["lru"] != 1 {
		t.Fatalf("RowObserver calls = %v, want one per row", rowObsCalls)
	}
}

func TestExecuteFaultObserverInjects(t *testing.T) {
	sc := &Scenario{
		Trace:     TraceSpec{Inline: diffInline},
		Policies:  []PolicySpec{{Name: "lru"}},
		K:         4,
		Observers: ObserverSpec{Fault: "seed=1,panic_p=1.0"},
	}
	out, err := sc.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	err = out.Rows[0].Err
	var pe *sim.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("row error %v, want injected *sim.PanicError", err)
	}
}

func TestExecuteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := &Scenario{
		Trace:    TraceSpec{Inline: diffInline},
		Policies: []PolicySpec{{Name: "lru"}},
		K:        4,
	}
	out, err := sc.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out.Rows[0].Err, context.Canceled) {
		t.Fatalf("row error %v, want context.Canceled", out.Rows[0].Err)
	}
}

func TestExecuteSetupErrorsAreSpecErrors(t *testing.T) {
	bad := []*Scenario{
		{Trace: TraceSpec{Inline: diffInline}},                                                // k missing
		{Trace: TraceSpec{Inline: diffInline}, K: 4, Policies: []PolicySpec{{Name: "nope"}}},  // unknown policy
		{Trace: TraceSpec{Inline: diffInline}, K: 4, Costs: []string{"warp:9"}},               // unknown cost spec
		{Trace: TraceSpec{Inline: diffInline}, K: 4, Observers: ObserverSpec{Fault: "bogus"}}, // bad fault spec
		{Trace: TraceSpec{Inline: [][2]int64{{0, 1}, {1, 1}}}, K: 4},                          // page owned by two tenants
	}
	for i, sc := range bad {
		_, err := sc.Execute(context.Background())
		var se *SpecError
		if !errors.As(err, &se) {
			t.Fatalf("case %d: error %v is not a *SpecError", i, err)
		}
	}
}

func TestRunHelpersMatchSim(t *testing.T) {
	tr := buildDirect(t, "inline", "")
	want, err := sim.Run(tr, policy.MustNew("lru", policy.Spec{K: 4, Tenants: 2}), sim.Config{K: 4, WarmupSteps: 3, Engine: sim.EngineMap})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(tr, policy.MustNew("lru", policy.Spec{K: 4, Tenants: 2}), 4,
		WithWarmup(3), WithEngine(sim.EngineMap))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Run diverges from sim.Run:\n %+v\n %+v", got, want)
	}
	var steps int
	if _, err := RunContext(context.Background(), tr, policy.MustNew("lru", policy.Spec{K: 4, Tenants: 2}), 4,
		WithProgress(func(d int) { steps += d })); err != nil {
		t.Fatal(err)
	}
	if steps != tr.Len() {
		t.Fatalf("progress saw %d steps, want %d", steps, tr.Len())
	}
}

func TestScenarioSweepCell(t *testing.T) {
	sc := Scenario{
		Trace: TraceSpec{Workload: &WorkloadSpec{
			Tenants: []TenantSpec{{Stream: "zipf:40,1.0"}, {Stream: "uniform:200:2"}},
			Length:  2000,
		}},
		Policies: []PolicySpec{{Name: "alg"}, {Name: "lru"}},
		Costs:    []string{"monomial:1,2", "linear:0.5"},
		K:        16,
	}
	cell := sc.Cell("ratio", CostRatio("lru", "alg"))
	v1, err := cell.Metric(1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := cell.Metric(2)
	if err != nil {
		t.Fatal(err)
	}
	if v1 <= 0 || v2 <= 0 {
		t.Fatalf("ratios %v %v not positive", v1, v2)
	}
	if v1 == v2 {
		t.Fatalf("distinct seeds produced identical workloads (ratio %v)", v1)
	}
	again, err := cell.Metric(1)
	if err != nil {
		t.Fatal(err)
	}
	if again != v1 {
		t.Fatalf("same seed not reproducible: %v vs %v", again, v1)
	}
	// The template must be untouched: a later direct Execute still derives
	// its workload seed from the template's own (zero) seed.
	if sc.Trace.Workload.Seed != 0 || sc.Seed != 0 {
		t.Fatalf("template mutated: workload seed %d, scenario seed %d", sc.Trace.Workload.Seed, sc.Seed)
	}
}

// TestExecuteSharded drives the sharded branch of the planner: a sharded
// row must produce the same per-tenant accounting as the identical
// scenario replayed sequentially when shards=1, must be deterministic at
// higher shard counts, and the incompatible-spec combinations must be
// rejected at validation time.
func TestExecuteSharded(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Trace: TraceSpec{Workload: &WorkloadSpec{
				Tenants: []TenantSpec{{Stream: "zipf:300,0.9"}, {Stream: "uniform:200"}},
				Length:  5000,
			}},
			Policies: []PolicySpec{{Name: "alg"}},
			Costs:    []string{"monomial:1,2", "linear:3"},
			K:        64,
			Seed:     9,
		}
	}

	seq, err := base().Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}

	one := base()
	one.Shards = 1
	outOne, err := one.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := outOne.Err(); err != nil {
		t.Fatal(err)
	}
	// Shards <= 1 runs the ordinary engine; identical numbers expected.
	if !reflect.DeepEqual(seq.Rows[0].Result.Misses, outOne.Rows[0].Result.Misses) {
		t.Fatalf("shards=1 misses %v != sequential %v", outOne.Rows[0].Result.Misses, seq.Rows[0].Result.Misses)
	}

	four := base()
	four.Shards = 4
	outA, err := four.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := outA.Err(); err != nil {
		t.Fatal(err)
	}
	outB, err := four.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := outA.Rows[0].Result, outB.Rows[0].Result
	if ra.Hits != rb.Hits || !reflect.DeepEqual(ra.Misses, rb.Misses) || !reflect.DeepEqual(ra.Evictions, rb.Evictions) {
		t.Fatalf("sharded replay not deterministic:\n  a: %+v\n  b: %+v", ra, rb)
	}
	if ra.Steps != 5000 {
		t.Fatalf("sharded Steps = %d, want 5000", ra.Steps)
	}
	if got := ra.Hits + ra.TotalMisses(); got != 5000 {
		t.Fatalf("sharded hits+misses = %d, want 5000", got)
	}

	for name, mut := range map[string]func(*Scenario){
		"map-engine":  func(sc *Scenario) { sc.Engine = "map" },
		"k-too-small": func(sc *Scenario) { sc.K = 3; sc.Shards = 8 },
		"window":      func(sc *Scenario) { sc.Observers.Window = 100 },
		"check":       func(sc *Scenario) { sc.Observers.Check = true },
		"negative":    func(sc *Scenario) { sc.Shards = -1 },
	} {
		sc := base()
		sc.Shards = 4
		mut(sc)
		var spec *SpecError
		if _, err := sc.Execute(context.Background()); !errors.As(err, &spec) {
			t.Fatalf("%s: got %v, want *SpecError", name, err)
		}
	}
}

// TestScenarioShardsWire checks the strict JSON wire form round-trips the
// shards field.
func TestScenarioShardsWire(t *testing.T) {
	sc, err := ParseScenario([]byte(`{"trace":{"inline":[[0,1],[0,2]]},"k":4,"shards":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Shards != 2 {
		t.Fatalf("Shards = %d, want 2", sc.Shards)
	}
}
