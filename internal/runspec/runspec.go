// Package runspec is the run-spec layer of the repo: one declarative,
// serializable Scenario type that describes a complete simulation run —
// trace source, policy list, per-tenant cost specs, cache size(s), engine
// pin, seed, warmup and an observer chain — plus one Validate and one
// Execute planner that every entry point shares.
//
// Before this layer, /v1/simulate, /v1/mrc, /v1/jobs, the seven CLIs, the
// sweep harness and the examples each hand-rolled trace building, cost
// parsing, policy resolution and sim.Config assembly with drifting
// defaults. Now they all decode (or assemble) a Scenario; a new workload
// family, trace format or execution strategy is a change to this package
// alone.
//
// The package also exposes the thin imperative substrate under Execute —
// Run, RunContext and Interactive — for layers that already hold a built
// trace and policy (experiments, benchmarks, examples). Code below this
// layer (internal/check, internal/resilience) assembles sim.Config via
// sim.ConfigAt instead.
package runspec

import (
	"encoding/json"
	"fmt"
	"strings"

	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Scenario is the declarative run specification. The zero value is not
// runnable; Validate fills defaults (policy list, engine, workload seeds)
// and rejects contradictory specs, so every entry point shares one set of
// defaults instead of each handler and CLI growing its own.
type Scenario struct {
	// Name optionally labels the scenario in reports and golden files.
	Name string `json:"name,omitempty"`
	// Trace selects the request sequence source.
	Trace TraceSpec `json:"trace"`
	// Policies lists the eviction policies to replay; empty selects the
	// canonical default pair ["alg", "lru"]. Entries decode from either a
	// bare name string or a full object with per-policy options.
	Policies []PolicySpec `json:"policies,omitempty"`
	// Costs are per-tenant costfn.Parse specs; tenants beyond the list
	// default to linear:1 (the flush tenant, when Flush is set, gets the
	// paper's effectively-infinite flush cost instead).
	Costs []string `json:"costs,omitempty"`
	// K is the cache size in pages. Exactly one of K and KSweep must be
	// set.
	K int `json:"k,omitempty"`
	// KSweep replays every policy at each listed cache size.
	KSweep []int `json:"k_sweep,omitempty"`
	// Seed seeds randomized policies and, by default, workload generation.
	Seed int64 `json:"seed,omitempty"`
	// Warmup excludes the first N requests from the result counters.
	Warmup int `json:"warmup,omitempty"`
	// Engine pins the request loop: "auto" (default), "map" or "dense".
	Engine string `json:"engine,omitempty"`
	// Shards, when > 1, replays every row via deterministic sharded replay
	// (sim.RunSharded): pages are partitioned across this many single-writer
	// dense engines and the per-tenant accounting merged exactly. Requires
	// the dense engine, no observers, and every cache size >= Shards.
	Shards int `json:"shards,omitempty"`
	// Flush appends the paper's dummy-tenant flush so eviction counts
	// equal miss counts (trace.WithFlush).
	Flush bool `json:"flush,omitempty"`
	// Observers configures the composable observer chain.
	Observers ObserverSpec `json:"observers,omitempty"`

	// Runtime hooks, not part of the wire form.

	// PrebuiltTrace bypasses TraceSpec when the caller already holds a
	// trace (benchmarks reuse one densified trace across many cells).
	PrebuiltTrace *trace.Trace `json:"-"`
	// CostFuncs bypasses Costs when the caller already holds parsed cost
	// functions.
	CostFuncs []costfn.Func `json:"-"`
	// Progress receives step-progress deltas from every run (metrics).
	Progress func(delta int) `json:"-"`
	// Observer is appended to each run's observer chain.
	Observer sim.Observer `json:"-"`
	// RowObserver, when non-nil, contributes one fresh observer per
	// (policy, k) row — per-row collectors that must not mix events across
	// rows. It receives the row's materialized trace (sizing information
	// the caller lacks before Execute). Returning nil skips the row.
	RowObserver func(policy string, k int, tr *trace.Trace) sim.Observer `json:"-"`
	// PolicyHook, when non-nil, is consulted before the registry; the
	// server's tests use it to inject misbehaving policies.
	PolicyHook func(name string) sim.Policy `json:"-"`
	// Workers bounds the planner's worker pool; <= 1 runs the rows
	// sequentially in row order (the default, and what the HTTP handlers
	// want under their own concurrency limiter).
	Workers int `json:"-"`
	// BaseDir resolves relative TraceSpec.File paths (set by
	// ParseScenarioFile to the scenario file's directory).
	BaseDir string `json:"-"`
}

// TraceSpec selects exactly one request-sequence source.
type TraceSpec struct {
	// Inline is the wire form of /v1/simulate: rows of [tenant, page].
	Inline [][2]int64 `json:"inline,omitempty"`
	// File reads a trace file; "-" reads stdin. The format is
	// auto-detected (text or binary CXT1) unless Format says otherwise.
	File string `json:"file,omitempty"`
	// Format overrides detection for File: "auto" (default), "text",
	// "binary" or "block-csv" (MSR-style block-I/O CSV).
	Format string `json:"format,omitempty"`
	// PageBytes is the page size for block-csv parsing (default 4096).
	PageBytes int64 `json:"page_bytes,omitempty"`
	// Workload generates a synthetic trace from tenant stream specs.
	Workload *WorkloadSpec `json:"workload,omitempty"`
}

// WorkloadSpec generates a multi-tenant trace from the stream-spec syntax
// of cmd/tracegen (workload.ParseStream).
type WorkloadSpec struct {
	// Tenants holds one stream spec per tenant: KIND:PARAMS[:RATE].
	Tenants []TenantSpec `json:"tenants"`
	// Length is the trace length in requests.
	Length int `json:"length"`
	// Seed seeds the mixer and derives per-tenant stream seeds; 0 defers
	// to Scenario.Seed.
	Seed int64 `json:"seed,omitempty"`
}

// TenantSpec is one tenant stream. It decodes from either a bare spec
// string ("zipf:100,0.9:2") or an object with an explicit seed.
type TenantSpec struct {
	// Stream is the workload.ParseStream spec, KIND:PARAMS[:RATE].
	Stream string `json:"stream"`
	// Seed, when non-nil, pins this tenant's stream seed; nil derives
	// seed + index*1001 from the workload seed (the tracegen rule).
	Seed *int64 `json:"seed,omitempty"`
}

// UnmarshalJSON accepts a bare spec string or the full object form.
func (t *TenantSpec) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		return json.Unmarshal(b, &t.Stream)
	}
	type plain TenantSpec
	return strictUnmarshal(b, (*plain)(t))
}

// MarshalJSON emits the compact string form when only the stream spec is
// set, keeping golden files and round trips stable.
func (t TenantSpec) MarshalJSON() ([]byte, error) {
	if t.Seed == nil {
		return json.Marshal(t.Stream)
	}
	type plain TenantSpec
	return json.Marshal(plain(t))
}

// PolicySpec names one eviction policy plus its options. "alg" is the
// paper's algorithm (core.Fast); "alg-ref" is the O(k)-per-eviction
// Figure-3 reference implementation (core.Discrete); every other name
// resolves through the internal/policy registry.
type PolicySpec struct {
	// Name is the policy name.
	Name string `json:"name"`
	// DiscreteDeriv switches the algorithm to finite differences
	// (Section 2.5, arbitrary cost functions). Algorithm policies only.
	DiscreteDeriv bool `json:"discrete_deriv,omitempty"`
	// CountMisses drives the algorithm by fetch counts instead of
	// eviction counts. Algorithm policies only.
	CountMisses bool `json:"count_misses,omitempty"`
}

// UnmarshalJSON accepts a bare name string or the full object form.
func (p *PolicySpec) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		return json.Unmarshal(b, &p.Name)
	}
	type plain PolicySpec
	return strictUnmarshal(b, (*plain)(p))
}

// MarshalJSON emits the compact string form when no option is set.
func (p PolicySpec) MarshalJSON() ([]byte, error) {
	if !p.DiscreteDeriv && !p.CountMisses {
		return json.Marshal(p.Name)
	}
	type plain PolicySpec
	return json.Marshal(plain(p))
}

// ObserverSpec declares the composable observer chain of a run. Each
// enabled element becomes a sim.Observer (or policy wrapper) applied to
// every row; elements compose through sim.MultiObserver in the order
// metrics-window, invariants, fault.
type ObserverSpec struct {
	// Check wraps every policy in the internal/check shadow-model
	// contract checker and replays the event stream through the full
	// invariant observer; violations fail the row.
	Check bool `json:"check,omitempty"`
	// Fault is a fault.ParseSpec string injecting seeded latency/panic
	// faults into the run (chaos drills).
	Fault string `json:"fault,omitempty"`
	// Window, when positive, collects per-window per-tenant miss counts
	// into Row.Windows.
	Window int `json:"window,omitempty"`
}

// SpecError marks a scenario that failed validation or compilation —
// caller mistakes (HTTP 400), as opposed to runtime failures.
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

func specErrf(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// engine maps the wire engine name onto sim.Engine.
var engines = map[string]sim.Engine{
	"":      sim.EngineAuto,
	"auto":  sim.EngineAuto,
	"map":   sim.EngineMap,
	"dense": sim.EngineDense,
}

// Validate checks the scenario and fills the shared defaults in place:
// the canonical default policy pair ["alg", "lru"], the "auto" engine, and
// the workload seed (deferred to Scenario.Seed). It returns a *SpecError
// on contradictions — duplicate policy entries, missing or ambiguous trace
// source, non-positive cache sizes — so transports can map it to a 400.
func (sc *Scenario) Validate() error {
	if err := sc.Trace.validate(sc.PrebuiltTrace != nil); err != nil {
		return err
	}
	if len(sc.Policies) == 0 {
		sc.Policies = []PolicySpec{{Name: "alg"}, {Name: "lru"}}
	}
	seen := make(map[string]bool, len(sc.Policies))
	for _, p := range sc.Policies {
		if strings.TrimSpace(p.Name) == "" {
			return specErrf("runspec: empty policy name")
		}
		if seen[p.Name] {
			// Duplicate rows would be indistinguishable in the output and
			// randomized duplicates would re-seed identically, silently
			// reporting one run twice.
			return specErrf("runspec: duplicate policy %q", p.Name)
		}
		seen[p.Name] = true
	}
	if sc.K <= 0 && len(sc.KSweep) == 0 {
		return specErrf("runspec: k must be positive")
	}
	if sc.K > 0 && len(sc.KSweep) > 0 {
		return specErrf("runspec: k and k_sweep are mutually exclusive")
	}
	for _, k := range sc.KSweep {
		if k <= 0 {
			return specErrf("runspec: k_sweep entry %d must be positive", k)
		}
	}
	if _, ok := engines[sc.Engine]; !ok {
		return specErrf("runspec: unknown engine %q (want auto, map or dense)", sc.Engine)
	}
	if sc.Warmup < 0 {
		return specErrf("runspec: warmup must be non-negative")
	}
	if sc.Observers.Window < 0 {
		return specErrf("runspec: observer window must be non-negative")
	}
	if sc.Shards < 0 {
		return specErrf("runspec: shards must be non-negative")
	}
	if sc.Shards > 1 {
		// Sharded replay is dense-only and delivers no per-step events:
		// concurrent shards would interleave them nondeterministically.
		if sc.Engine == "map" {
			return specErrf("runspec: shards require the dense engine, not %q", sc.Engine)
		}
		if sc.Observers.Check || sc.Observers.Fault != "" || sc.Observers.Window > 0 || sc.Observer != nil || sc.RowObserver != nil {
			return specErrf("runspec: shards and observers are mutually exclusive")
		}
		for _, k := range sc.Ks() {
			if k < sc.Shards {
				return specErrf("runspec: every cache size must be >= shards (k=%d < shards=%d)", k, sc.Shards)
			}
		}
	}
	if sc.Trace.Workload != nil && sc.Trace.Workload.Seed == 0 {
		sc.Trace.Workload.Seed = sc.Seed
	}
	return nil
}

// validate checks the trace source; prebuilt reports whether a runtime
// trace bypasses the spec.
func (t *TraceSpec) validate(prebuilt bool) error {
	sources := 0
	if len(t.Inline) > 0 {
		sources++
	}
	if t.File != "" {
		sources++
	}
	if t.Workload != nil {
		sources++
	}
	if prebuilt {
		if sources > 0 {
			return specErrf("runspec: prebuilt trace and trace spec are mutually exclusive")
		}
		return nil
	}
	switch sources {
	case 0:
		return specErrf("runspec: trace source required (inline, file or workload)")
	case 1:
	default:
		return specErrf("runspec: exactly one trace source allowed (inline, file or workload)")
	}
	switch t.Format {
	case "", "auto", "text", "binary", "block-csv":
	default:
		return specErrf("runspec: unknown trace format %q (want auto, text, binary or block-csv)", t.Format)
	}
	if t.Format == "block-csv" && t.File == "" {
		return specErrf("runspec: block-csv format requires a file source")
	}
	if t.Format != "" && t.Format != "auto" && t.File == "" {
		return specErrf("runspec: trace format applies to the file source only")
	}
	if t.PageBytes < 0 {
		return specErrf("runspec: page_bytes must be non-negative")
	}
	if t.Workload != nil {
		if len(t.Workload.Tenants) == 0 {
			return specErrf("runspec: workload needs at least one tenant stream")
		}
		if t.Workload.Length <= 0 {
			return specErrf("runspec: workload length must be positive")
		}
	}
	return nil
}

// Ks returns the cache sizes the scenario runs at, in execution order.
func (sc *Scenario) Ks() []int {
	if len(sc.KSweep) > 0 {
		return sc.KSweep
	}
	return []int{sc.K}
}

// ParseScenario decodes a Scenario from strict JSON: unknown fields and
// trailing garbage are errors, so a typo'd field cannot silently fall back
// to a default. It does not Validate.
func ParseScenario(data []byte) (*Scenario, error) {
	var sc Scenario
	if err := strictUnmarshal(data, &sc); err != nil {
		return nil, &SpecError{msg: "runspec: " + err.Error()}
	}
	return &sc, nil
}

// strictUnmarshal is json.Unmarshal with unknown fields and trailing data
// rejected.
func strictUnmarshal(data []byte, dst any) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
