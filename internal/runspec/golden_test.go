package runspec

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestScenarioGoldenFiles pins the canonical wire form: every scenario in
// testdata/scenarios must strictly decode, validate, and marshal to exactly
// its committed .golden twin. A diff here means the wire format changed —
// deliberate changes regenerate with -update and show up in review.
func TestScenarioGoldenFiles(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no scenario corpus files")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := ParseScenarioFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.Validate(); err != nil {
				t.Fatalf("corpus scenario invalid: %v", err)
			}
			sc.BaseDir = "" // runtime-only; not part of the wire form
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "    ")
			if err := enc.Encode(sc); err != nil {
				t.Fatal(err)
			}
			golden := strings.TrimSuffix(path, ".json") + ".golden"
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("canonical form drifted from %s:\n got:\n%s\n want:\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}
