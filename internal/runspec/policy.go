package runspec

import (
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
)

// CompiledPolicy is one resolved policy row of the plan: a display label
// (the requested name, independent of the implementation's own Name()) and
// a factory producing a fresh instance per run, so concurrent or repeated
// rows never share mutable state.
type CompiledPolicy struct {
	// Label is the requested policy name.
	Label string
	// New builds a fresh policy instance.
	New func() sim.Policy
	// NewFast is non-nil when the row is the paper's algorithm without a
	// hook override — the checkpointable form the async job subsystem
	// snapshots and resumes.
	NewFast func() *core.Fast
}

// CompilePolicies resolves the scenario's policy list for a cache of size
// k over tenants with the given cost functions. Unknown names are a
// *SpecError so transports answer 400 before any simulation work starts.
func (sc *Scenario) CompilePolicies(k, tenants int, costs []costfn.Func) ([]CompiledPolicy, error) {
	out := make([]CompiledPolicy, 0, len(sc.Policies))
	spec := policy.Spec{K: k, Tenants: tenants, Costs: costs, Seed: sc.Seed}
	for _, ps := range sc.Policies {
		cp, err := sc.compileOne(ps, spec, costs)
		if err != nil {
			return nil, err
		}
		out = append(out, cp)
	}
	return out, nil
}

// compileOne resolves a single policy spec, consulting the hook first.
func (sc *Scenario) compileOne(ps PolicySpec, spec policy.Spec, costs []costfn.Func) (CompiledPolicy, error) {
	name := ps.Name
	if sc.PolicyHook != nil {
		if p := sc.PolicyHook(name); p != nil {
			// The hook owns instance construction; re-invoke it per run so
			// every row still gets a fresh instance.
			hook := sc.PolicyHook
			return CompiledPolicy{Label: name, New: func() sim.Policy {
				return hook(name)
			}}, nil
		}
	}
	switch name {
	case "alg":
		opt := core.Options{Costs: costs, UseDiscreteDeriv: ps.DiscreteDeriv, CountMisses: ps.CountMisses}
		return CompiledPolicy{
			Label:   name,
			New:     func() sim.Policy { return core.NewFast(opt) },
			NewFast: func() *core.Fast { return core.NewFast(opt) },
		}, nil
	case "alg-ref":
		opt := core.Options{Costs: costs, UseDiscreteDeriv: ps.DiscreteDeriv, CountMisses: ps.CountMisses}
		return CompiledPolicy{
			Label: name,
			New:   func() sim.Policy { return core.NewDiscrete(opt) },
		}, nil
	}
	if ps.DiscreteDeriv || ps.CountMisses {
		return CompiledPolicy{}, specErrf("runspec: policy %q does not take algorithm options", name)
	}
	// Resolve now so typos surface before any run; rebuild per row.
	if _, err := policy.New(name, spec); err != nil {
		return CompiledPolicy{}, &SpecError{msg: err.Error()}
	}
	return CompiledPolicy{Label: name, New: func() sim.Policy {
		return policy.MustNew(name, spec)
	}}, nil
}

// PolicyNames lists every name the run-spec layer resolves: the paper's
// algorithm in both implementations plus the registry baselines.
func PolicyNames() []string {
	return append([]string{"alg", "alg-ref"}, policy.Names()...)
}
