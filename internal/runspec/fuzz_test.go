package runspec

import (
	"encoding/json"
	"testing"
)

// fuzzSeeds is the seed corpus: canonical scenarios covering every trace
// source kind (inline, file in each format, stdin, workload in both tenant
// forms), both policy spec forms, k vs k_sweep, and the observer chain.
var fuzzSeeds = []string{
	// Inline trace, bare-string policies.
	`{"trace": {"inline": [[0, 1], [0, 2], [1, 10]]}, "policies": ["alg", "lru"], "k": 4}`,
	// File trace, auto-detected format.
	`{"trace": {"file": "traces/prod.trace"}, "k": 128, "seed": 7}`,
	// File trace, explicit binary format.
	`{"trace": {"file": "t.cxt", "format": "binary"}, "policies": ["lfu"], "k": 32}`,
	// Block-I/O CSV with a page size.
	`{"trace": {"file": "msr.csv", "format": "block-csv", "page_bytes": 512}, "k": 1024}`,
	// Stdin source.
	`{"trace": {"file": "-"}, "k": 8, "warmup": 100}`,
	// Workload, bare-string tenants, scenario-level seed.
	`{"trace": {"workload": {"tenants": ["zipf:100,0.9:2", "uniform:500"], "length": 10000}}, "k": 64, "seed": 3}`,
	// Workload, object tenants with pinned seeds, option-bearing policies.
	`{"name": "pinned", "trace": {"workload": {"tenants": [{"stream": "hotset:200,20,0.9,500", "seed": 5}], "length": 2000, "seed": 9}}, "policies": [{"name": "alg", "discrete_deriv": true, "count_misses": true}], "k": 16}`,
	// k-sweep with engine pin, flush and the full observer chain.
	`{"trace": {"inline": [[0, 1]]}, "k_sweep": [8, 16, 32], "engine": "map", "flush": true, "observers": {"check": true, "fault": "seed=1,panic_p=0.01", "window": 50}}`,
	// Costs incl. SLA curves.
	`{"trace": {"inline": [[0, 1], [1, 2]]}, "k": 2, "costs": ["sla:100,0.05,5", "monomial:1,2"]}`,
	// Structurally valid JSON the validator must reject, not crash on.
	`{"trace": {"inline": [[0, 1]], "file": "x"}, "k": -4, "engine": "gpu"}`,
}

// FuzzScenario asserts the wire form is a fixed point: any input that
// strictly decodes must re-marshal to JSON that decodes to the same value
// and marshals identically (so golden files and round trips through the
// HTTP API never drift), and Validate must terminate without panicking on
// anything the decoder admits.
func FuzzScenario(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("decoded scenario does not marshal: %v", err)
		}
		back, err := ParseScenario(out)
		if err != nil {
			t.Fatalf("marshaled form does not re-decode: %v\n%s", err, out)
		}
		// Struct equality is too strict (nil vs empty slices marshal the
		// same); the wire-form fixed point is the property golden files and
		// the HTTP API rely on.
		out2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Fatalf("marshal not a fixed point:\n%s\n%s", out, out2)
		}
		_ = sc.Validate() // must not panic; errors are fine
	})
}
