package runspec

import (
	"context"
	"fmt"
	"time"

	"convexcache/internal/check"
	"convexcache/internal/costfn"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// Row is one (policy, cache size) cell of an executed scenario.
type Row struct {
	// Policy is the requested policy name.
	Policy string
	// K is the cache size the row ran at.
	K int
	// Result is the engine's run summary (zero when Err != nil).
	Result sim.Result
	// Cost is the convex objective over the real tenants (the dummy flush
	// tenant, when present, is excluded).
	Cost float64
	// Duration is the wall time of the run.
	Duration time.Duration
	// Windows holds the per-window miss series when Observers.Window > 0.
	Windows *sim.WindowSeries
	// Violations lists invariant and contract breaches when Observers.Check
	// is set; any violation also surfaces as Err.
	Violations []check.Violation
	// Err reports a failed row (engine error, panic, cancellation, or
	// check violations).
	Err error
}

// Output is the result of Scenario.Execute.
type Output struct {
	// Trace is the replayed trace (flush rows included when Flush is set
	// and the scenario runs at a single cache size).
	Trace *trace.Trace
	// RealTenants is the tenant count before the dummy flush tenant.
	RealTenants int
	// Costs are the resolved per-tenant cost functions (flush tenant last
	// when present).
	Costs []costfn.Func
	// Rows holds one entry per (k, policy) pair, k-major, in spec order.
	Rows []Row
}

// Row returns the row for the given policy and cache size, or nil.
func (o *Output) Row(policy string, k int) *Row {
	for i := range o.Rows {
		if o.Rows[i].Policy == policy && o.Rows[i].K == k {
			return &o.Rows[i]
		}
	}
	return nil
}

// Err returns the first row error in execution order, or nil.
func (o *Output) Err() error {
	for i := range o.Rows {
		if o.Rows[i].Err != nil {
			return o.Rows[i].Err
		}
	}
	return nil
}

// Execute validates the scenario, materializes the trace and cost
// functions, compiles the policy list and observer chain, and fans every
// (cache size, policy) pair through sim.RunAllContext. Setup mistakes come
// back as a *SpecError and no simulation runs; per-row failures land in
// Row.Err so one bad cell cannot hide the rest of a sweep.
func (sc *Scenario) Execute(ctx context.Context) (*Output, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	tr, err := sc.BuildTrace()
	if err != nil {
		return nil, err
	}
	realTenants := tr.NumTenants()
	tenants := realTenants
	if sc.Flush {
		tenants++
	}
	costs, err := sc.BuildCosts(tenants, realTenants)
	if err != nil {
		return nil, err
	}
	observers, err := sc.compileObservers()
	if err != nil {
		return nil, err
	}

	out := &Output{Trace: tr, RealTenants: realTenants, Costs: costs}
	var jobs []sim.Job
	var rowObs []*rowObservers
	for _, k := range sc.Ks() {
		// The flush suffix depends on k (k dummy requests drain the cache),
		// so a sweep re-derives it per size from the shared base trace.
		rtr := tr
		if sc.Flush {
			flushed, _, err := trace.WithFlush(tr, k)
			if err != nil {
				return nil, &SpecError{msg: err.Error()}
			}
			rtr = flushed
		}
		policies, err := sc.CompilePolicies(k, tenants, costs)
		if err != nil {
			return nil, err
		}
		for _, cp := range policies {
			ro := observers(rtr, k, costs)
			if sc.RowObserver != nil {
				ro.chain = sim.MultiObserver(ro.chain, sc.RowObserver(cp.Label, k, rtr))
			}
			cfg := sim.Config{
				K:           k,
				Observer:    ro.chain,
				WarmupSteps: sc.Warmup,
				Engine:      engines[sc.Engine],
				Progress:    sc.Progress,
			}
			newPolicy := cp.New
			jobs = append(jobs, sim.Job{
				Label:  fmt.Sprintf("%s@k=%d", cp.Label, k),
				Trace:  rtr,
				Policy: func() sim.Policy { return ro.wrap(newPolicy()) },
				Config: cfg,
				Shards: sc.Shards,
			})
			rowObs = append(rowObs, ro)
			out.Rows = append(out.Rows, Row{Policy: cp.Label, K: k})
		}
		if sc.Flush && len(sc.KSweep) == 0 {
			out.Trace = rtr
		}
	}

	workers := sc.Workers
	if workers <= 0 {
		workers = 1
	}
	for i, jr := range sim.RunAllContext(ctx, jobs, workers) {
		row := &out.Rows[i]
		row.Result = jr.Result
		row.Duration = jr.Duration
		row.Windows = rowObs[i].windows
		row.Err = jr.Err
		if jr.Err == nil {
			row.Cost = jr.Result.Cost(costs[:realTenants])
			row.Violations = rowObs[i].violations(jr.Result)
			row.Err = check.AsError(row.Violations)
		}
	}
	return out, nil
}

// Option tweaks the sim.Config of the imperative helpers below.
type Option func(*sim.Config)

// WithEngine pins the request loop.
func WithEngine(e sim.Engine) Option { return func(c *sim.Config) { c.Engine = e } }

// WithObserver appends an observer to the run's chain.
func WithObserver(o sim.Observer) Option {
	return func(c *sim.Config) { c.Observer = sim.MultiObserver(c.Observer, o) }
}

// WithWarmup excludes the first n requests from the result counters.
func WithWarmup(n int) Option { return func(c *sim.Config) { c.WarmupSteps = n } }

// WithProgress installs a step-progress hook.
func WithProgress(f func(delta int)) Option { return func(c *sim.Config) { c.Progress = f } }

// config assembles a sim.Config from a cache size and options.
func config(k int, opts []Option) sim.Config {
	cfg := sim.ConfigAt(k)
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Run replays the trace through policy p at cache size k. It is the
// imperative substrate under Execute for callers that already hold a built
// trace and policy (experiments, examples, benchmarks).
func Run(tr *trace.Trace, p sim.Policy, k int, opts ...Option) (sim.Result, error) {
	return sim.Run(tr, p, config(k, opts))
}

// RunContext is Run bounded by ctx.
func RunContext(ctx context.Context, tr *trace.Trace, p sim.Policy, k int, opts ...Option) (sim.Result, error) {
	return sim.RunContext(ctx, tr, p, config(k, opts))
}

// MustRun is Run for known-good inputs; it panics on error.
func MustRun(tr *trace.Trace, p sim.Policy, k int, opts ...Option) sim.Result {
	return sim.MustRun(tr, p, config(k, opts))
}

// Interactive drives policy p from a live request source for the given
// number of steps, returning the result and the materialized trace.
func Interactive(src sim.RequestSource, steps int, p sim.Policy, k int, opts ...Option) (sim.Result, *trace.Trace, error) {
	return sim.RunInteractive(src, steps, p, config(k, opts))
}
