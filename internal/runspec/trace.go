package runspec

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/trace"
	"convexcache/internal/workload"
)

// ParseScenarioFile reads and strictly decodes a scenario file, setting
// BaseDir to the file's directory so relative trace paths resolve next to
// the scenario rather than the process working directory.
func ParseScenarioFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sc.BaseDir = filepath.Dir(path)
	return sc, nil
}

// Stdin is the reader behind the "-" file source; tests substitute it.
// The CLIs read os.Stdin exactly once per process, so a package variable
// is safe there.
var Stdin io.Reader = os.Stdin

// BuildTrace materializes the scenario's request sequence: the prebuilt
// trace when injected, else the inline rows, the trace file or the
// workload generator. File paths resolve against BaseDir when relative.
func (sc *Scenario) BuildTrace() (*trace.Trace, error) {
	if sc.PrebuiltTrace != nil {
		return sc.PrebuiltTrace, nil
	}
	t := &sc.Trace
	switch {
	case len(t.Inline) > 0:
		b := trace.NewBuilder()
		for _, row := range t.Inline {
			b.Add(trace.Tenant(row[0]), trace.PageID(row[1]))
		}
		tr, err := b.Build()
		if err != nil {
			return nil, &SpecError{msg: err.Error()}
		}
		return tr, nil
	case t.File != "":
		return sc.readFile(t)
	case t.Workload != nil:
		return buildWorkload(t.Workload)
	}
	return nil, specErrf("runspec: trace source required (inline, file or workload)")
}

// readFile opens and parses the file source.
func (sc *Scenario) readFile(t *TraceSpec) (*trace.Trace, error) {
	var in io.Reader
	if t.File == "-" {
		in = Stdin
	} else {
		path := t.File
		if sc.BaseDir != "" && !filepath.IsAbs(path) {
			path = filepath.Join(sc.BaseDir, path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	switch t.Format {
	case "block-csv":
		return trace.ReadBlockCSV(in, trace.CSVOptions{PageBytes: t.PageBytes})
	case "text":
		return trace.Read(in)
	case "binary":
		return trace.ReadBinary(in)
	default: // "", "auto"
		return trace.ReadAuto(in)
	}
}

// buildWorkload generates the synthetic trace: per-tenant streams from the
// shared spec syntax, mixed by relative rate. Per-tenant stream seeds
// default to seed + index*1001 (the tracegen rule) unless pinned.
func buildWorkload(w *WorkloadSpec) (*trace.Trace, error) {
	streams := make([]workload.TenantStream, 0, len(w.Tenants))
	for i, ts := range w.Tenants {
		seed := w.Seed + int64(i)*1001
		if ts.Seed != nil {
			seed = *ts.Seed
		}
		s, rate, err := workload.ParseStream(ts.Stream, seed)
		if err != nil {
			return nil, &SpecError{msg: err.Error()}
		}
		streams = append(streams, workload.TenantStream{
			Tenant: trace.Tenant(i), Stream: s, Rate: rate,
		})
	}
	tr, err := workload.Mix(w.Seed, streams, w.Length)
	if err != nil {
		return nil, &SpecError{msg: err.Error()}
	}
	return tr, nil
}

// BuildCosts parses the per-tenant cost specs for a trace with the given
// tenant count (post-flush): explicit specs first, linear:1 for the rest,
// and the paper's flush cost for dummy tenants beyond realTenants. Surplus
// specs are an error — they would otherwise be silently dropped, masking
// caller typos such as costs keyed to a tenant that never appears.
func (sc *Scenario) BuildCosts(tenants, realTenants int) ([]costfn.Func, error) {
	if sc.CostFuncs != nil {
		if len(sc.CostFuncs) > tenants {
			return nil, specErrf("runspec: %d cost functions for %d tenants", len(sc.CostFuncs), tenants)
		}
		out := make([]costfn.Func, tenants)
		copy(out, sc.CostFuncs)
		for i := len(sc.CostFuncs); i < tenants; i++ {
			out[i] = defaultCost(i, realTenants)
		}
		return out, nil
	}
	if len(sc.Costs) > tenants {
		return nil, specErrf("%d cost specs for %d tenants; surplus specs would be ignored", len(sc.Costs), tenants)
	}
	out := make([]costfn.Func, tenants)
	for i := range out {
		if i < len(sc.Costs) && sc.Costs[i] != "" {
			f, err := costfn.Parse(sc.Costs[i])
			if err != nil {
				return nil, &SpecError{msg: err.Error()}
			}
			out[i] = f
			continue
		}
		out[i] = defaultCost(i, realTenants)
	}
	return out, nil
}

// defaultCost is the shared default: linear:1 for real tenants, the flush
// cost for the dummy flush tenant.
func defaultCost(i, realTenants int) costfn.Func {
	if i >= realTenants {
		return core.FlushCost()
	}
	return costfn.Linear{W: 1}
}

// Costs parses a bare per-tenant cost-spec list outside a Scenario — the
// shared helper for endpoints (like /v1/mrc's partition mode) that need
// cost functions without a full run.
func Costs(specs []string, tenants int) ([]costfn.Func, error) {
	sc := Scenario{Costs: specs}
	return sc.BuildCosts(tenants, tenants)
}
