package runspec

import (
	"convexcache/internal/check"
	"convexcache/internal/costfn"
	"convexcache/internal/fault"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// rowObservers is the per-run instantiation of the observer chain: the
// stateful pieces (invariant model, window collector) are rebuilt for every
// row, while the fault injector is shared so one seeded decision sequence
// spans the whole scenario.
type rowObservers struct {
	chain   sim.Observer
	windows *sim.WindowSeries
	// finish reconciles the invariant model against the run result and
	// returns any violations; nil when checking is off.
	finish func(sim.Result) []check.Violation
	// wrap is the policy contract wrapper; identity when checking is off.
	wrap func(sim.Policy) sim.Policy
	// wrapped records the checked policy so violations can be collected.
	wrapped *check.Checked
}

// compileObservers builds the scenario-wide observer state and returns the
// per-row chain factory. sim.MultiObserver composes the elements in a
// fixed order (windows, invariants, injected faults, then the caller's
// runtime observer) so event ordering is deterministic.
func (sc *Scenario) compileObservers() (func(tr *trace.Trace, k int, costs []costfn.Func) *rowObservers, error) {
	var injected sim.Observer
	if sc.Observers.Fault != "" {
		fcfg, err := fault.ParseSpec(sc.Observers.Fault)
		if err != nil {
			return nil, &SpecError{msg: err.Error()}
		}
		injected = fault.New(fcfg, nil).Observer()
	}
	spec := sc.Observers
	runtime := sc.Observer
	return func(tr *trace.Trace, k int, costs []costfn.Func) *rowObservers {
		ro := &rowObservers{wrap: func(p sim.Policy) sim.Policy { return p }}
		var parts []sim.Observer
		if spec.Window > 0 {
			ro.windows = sim.NewWindowSeries(spec.Window, tr.NumTenants())
			parts = append(parts, ro.windows.Observe)
		}
		if spec.Check {
			obs, finish := check.InvariantObserver(tr, k, costs)
			ro.finish = finish
			parts = append(parts, obs)
			ro.wrap = func(p sim.Policy) sim.Policy {
				ro.wrapped = check.Wrap(p)
				return ro.wrapped
			}
		}
		parts = append(parts, injected, runtime)
		ro.chain = sim.MultiObserver(parts...)
		return ro
	}, nil
}

// violations collects the contract-wrapper and invariant-model violations
// after a finished run.
func (ro *rowObservers) violations(res sim.Result) []check.Violation {
	var vs []check.Violation
	if ro.wrapped != nil {
		vs = append(vs, ro.wrapped.Violations()...)
	}
	if ro.finish != nil {
		vs = append(vs, ro.finish(res)...)
	}
	return vs
}
