package fault

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"convexcache/internal/obs"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,latency=50ms,latency_p=0.3,error_p=0.2,panic_p=0.05")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, Latency: 50 * time.Millisecond, LatencyProb: 0.3, ErrorProb: 0.2, PanicProb: 0.05}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{
		"latency=50ms,typo_p=0.1", // unknown key
		"error_p=1.5",             // probability out of range
		"latency_p=0.5",           // latency_p without latency
		"seed",                    // not key=value
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

func TestDeterministicDecisions(t *testing.T) {
	cfg := Config{Seed: 99, LatencyProb: 0.2, Latency: time.Nanosecond, ErrorProb: 0.3, PanicProb: 0.1}
	a, b := New(cfg, nil), New(cfg, nil)
	for i := 0; i < 1000; i++ {
		if da, db := a.draw(), b.draw(); da != db {
			t.Fatalf("decision %d diverged for equal seeds: %+v vs %+v", i, da, db)
		}
	}
}

func TestMiddlewareInjectsErrorsAndPanics(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(Config{Seed: 3, ErrorProb: 0.5, PanicProb: 0.2}, reg)
	var served int
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.WriteHeader(http.StatusOK)
	}))

	var errors500, panics int
	for i := 0; i < 200; i++ {
		rec := httptest.NewRecorder()
		func() {
			defer func() {
				if p := recover(); p != nil {
					if !strings.Contains(p.(string), "injected panic") {
						t.Fatalf("unexpected panic %v", p)
					}
					panics++
				}
			}()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/x", nil))
			if rec.Code == http.StatusInternalServerError {
				if !strings.Contains(rec.Body.String(), "fault_injected") {
					t.Fatalf("injected error body = %q", rec.Body.String())
				}
				errors500++
			}
		}()
	}
	if errors500 == 0 || panics == 0 || served == 0 {
		t.Fatalf("fault mix not exercised: errors=%d panics=%d served=%d", errors500, panics, served)
	}
	if got := reg.Counter(`fault_injected_total{kind="error"}`).Value(); got != int64(errors500) {
		t.Errorf("error counter = %d, want %d", got, errors500)
	}
	if got := reg.Counter(`fault_injected_total{kind="panic"}`).Value(); got != int64(panics) {
		t.Errorf("panic counter = %d, want %d", got, panics)
	}
}

func TestMiddlewareDisabledPassesThrough(t *testing.T) {
	in := New(Config{}, nil)
	base := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := in.Middleware(base); got == nil {
		t.Fatal("nil handler")
	}
}

// chaosTrace is a small sequence for observer-driven crashes.
func chaosTrace(t *testing.T) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder()
	for i := 0; i < 256; i++ {
		b.Add(0, trace.PageID(i%16))
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestObserverPanicIsRecoveredByRunAll(t *testing.T) {
	tr := chaosTrace(t)
	in := New(Config{Seed: 5, PanicProb: 0.05}, nil)
	jobs := []sim.Job{
		{
			Label:  "chaos",
			Trace:  tr,
			Policy: func() sim.Policy { return policy.MustNew("lru", policy.Spec{K: 16, Tenants: 1}) },
			Config: sim.Config{K: 16, Observer: in.Observer()},
		},
		{
			Label:  "clean",
			Trace:  tr,
			Policy: func() sim.Policy { return policy.MustNew("lru", policy.Spec{K: 16, Tenants: 1}) },
			Config: sim.Config{K: 16},
		},
	}
	out := sim.RunAll(jobs, 2)
	if out[0].Err == nil || !strings.Contains(out[0].Err.Error(), "panicked") {
		t.Fatalf("chaos job err = %v, want recovered panic", out[0].Err)
	}
	if out[1].Err != nil {
		t.Fatalf("clean job err = %v", out[1].Err)
	}
	if out[1].Result.Hits == 0 {
		t.Fatal("clean job produced no hits")
	}
}
