package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestParseFSSpec(t *testing.T) {
	cfg, err := ParseFSSpec("seed=7,write_err_p=0.25,short_p=0.5,sync_err_p=0.1,crash_at=42")
	if err != nil {
		t.Fatalf("ParseFSSpec: %v", err)
	}
	if cfg.Seed != 7 || cfg.WriteErrProb != 0.25 || cfg.ShortWriteProb != 0.5 || cfg.SyncErrProb != 0.1 || cfg.CrashAtWrite != 42 {
		t.Fatalf("parsed %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Fatal("spec should be enabled")
	}
	if c, err := ParseFSSpec(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"nope=1", "write_err_p=2", "write_err_p", "crash_at=x"} {
		if _, err := ParseFSSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

// collectFaults drives n writes through a fresh FaultFS and records which
// ones faulted.
func collectFaults(t *testing.T, dir string, cfg FSConfig, n int) []string {
	t.Helper()
	fs := NewFS(OSFS, cfg, nil)
	f, err := fs.Append(filepath.Join(dir, "probe"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	defer f.Close()
	out := make([]string, 0, n)
	buf := make([]byte, 64)
	for i := 0; i < n; i++ {
		_, err := f.Write(buf)
		switch {
		case err == nil:
			out = append(out, "ok")
		case errors.Is(err, ErrCrashed):
			out = append(out, "crashed")
		default:
			out = append(out, err.Error())
		}
	}
	return out
}

func TestFaultFSDeterministic(t *testing.T) {
	cfg := FSConfig{Seed: 99, WriteErrProb: 0.2, ShortWriteProb: 0.3}
	a := collectFaults(t, t.TempDir(), cfg, 200)
	b := collectFaults(t, t.TempDir(), cfg, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("write %d: run A %q, run B %q", i, a[i], b[i])
		}
	}
	var faults int
	for _, s := range a {
		if s != "ok" {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("want a mix of faults and successes, got %d/%d faults", faults, len(a))
	}
}

func TestFaultFSCrashAtWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(OSFS, FSConfig{Seed: 1, CrashAtWrite: 3}, nil)
	name := filepath.Join(dir, "wal")
	f, err := fs.Append(name)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	payload := []byte("0123456789")
	for i := 0; i < 2; i++ {
		if _, err := f.Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// The third write is torn: a strict prefix lands, the call errors, and
	// the filesystem is dead afterwards.
	n, err := f.Write(payload)
	if err == nil {
		t.Fatal("crash write should error")
	}
	if n >= len(payload) {
		t.Fatalf("crash write wrote %d of %d bytes, want a strict prefix", n, len(payload))
	}
	if !fs.Crashed() {
		t.Fatal("fs should report crashed")
	}
	if _, err := f.Write(payload); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v, want ErrCrashed", err)
	}
	if _, err := fs.Append(name); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash append: %v, want ErrCrashed", err)
	}
	if err := fs.Rename(name, name+"x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v, want ErrCrashed", err)
	}
	st, err := os.Stat(name)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	want := int64(2*len(payload) + n)
	if st.Size() != want {
		t.Fatalf("file holds %d bytes, want %d (two full writes + torn prefix)", st.Size(), want)
	}
	// Reads still pass through: recovery must be able to inspect the wreck.
	if _, err := fs.Open(name); err != nil {
		t.Fatalf("post-crash open: %v", err)
	}
}

func TestFaultFSShortWritePrefix(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(OSFS, FSConfig{Seed: 5, ShortWriteProb: 1}, nil)
	f, err := fs.Append(filepath.Join(dir, "short"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	defer f.Close()
	payload := []byte("abcdefghij")
	n, err := f.Write(payload)
	if err == nil {
		t.Fatal("short write should error")
	}
	if n < 0 || n >= len(payload) {
		t.Fatalf("short write landed %d bytes of %d, want a strict prefix", n, len(payload))
	}
	st, _ := os.Stat(filepath.Join(dir, "short"))
	if st.Size() != int64(n) {
		t.Fatalf("file holds %d bytes, write reported %d", st.Size(), n)
	}
}

func TestOSFSReadDirSorted(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.seg", "a.seg", "c.seg"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := OSFS.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	want := []string{"a.seg", "b.seg", "c.seg"}
	if len(names) != len(want) {
		t.Fatalf("ReadDir = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ReadDir = %v, want %v", names, want)
		}
	}
}
