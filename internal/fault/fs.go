package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"convexcache/internal/obs"
)

// This file is the storage side of the fault package: a minimal filesystem
// interface the WAL of internal/cached writes through, an os-backed default,
// and a seeded deterministic fault-injecting wrapper (write errors, short
// "torn" writes, fsync failures and a hard crash after the N-th write) so
// crash-recovery code can be exercised against byte-precise storage failures
// that replay identically for a given seed.

// File is one append-target the WAL writes. Writes go to the current end of
// the file (implementations open with O_APPEND); Truncate discards a torn
// tail during recovery.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	io.Closer
}

// FS is the slice of filesystem the WAL needs. All paths are plain strings
// relative to whatever root the caller chose; implementations must be safe
// for concurrent use from multiple shards (each shard touches only its own
// files, but directory listing can race with creation elsewhere).
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists the file names (not full paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Size reports the current length of name in bytes.
	Size(name string) (int64, error)
}

// OSFS is the passthrough FS over the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ErrCrashed is returned by every FaultFS operation after the configured
// crash point: the process is pretending its disk went away mid-write.
var ErrCrashed = errors.New("fault: storage crashed")

// FSConfig describes the storage fault mix. Probabilities are per write (or
// per sync for SyncErrProb); zero disables that fault.
type FSConfig struct {
	// Seed seeds the decision PRNG; the zero seed is replaced by 1.
	Seed int64
	// WriteErrProb is the probability a Write fails outright (no bytes
	// reach the file).
	WriteErrProb float64
	// ShortWriteProb is the probability a Write is torn: only a seeded
	// prefix of the buffer reaches the file and the call reports an error.
	ShortWriteProb float64
	// SyncErrProb is the probability a Sync fails.
	SyncErrProb float64
	// CrashAtWrite, when > 0, makes the N-th Write (1-based, counted across
	// all files) torn — a seeded prefix lands — and every operation after it
	// fail with ErrCrashed. This is the deterministic kill-9-mid-write.
	CrashAtWrite int64
}

// Enabled reports whether any storage fault can fire.
func (c FSConfig) Enabled() bool {
	return c.WriteErrProb > 0 || c.ShortWriteProb > 0 || c.SyncErrProb > 0 || c.CrashAtWrite > 0
}

// ParseFSSpec parses a comma-separated storage-fault spec, e.g.
//
//	"seed=7,write_err_p=0.01,short_p=0.01,sync_err_p=0.05,crash_at=4096"
//
// Unknown keys are an error so typos cannot silently disable a chaos run.
func ParseFSSpec(spec string) (FSConfig, error) {
	var cfg FSConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return FSConfig{}, fmt.Errorf("fault: malformed fs spec entry %q (want key=value)", part)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "write_err_p":
			cfg.WriteErrProb, err = parseProb(v)
		case "short_p":
			cfg.ShortWriteProb, err = parseProb(v)
		case "sync_err_p":
			cfg.SyncErrProb, err = parseProb(v)
		case "crash_at":
			cfg.CrashAtWrite, err = strconv.ParseInt(v, 10, 64)
		default:
			return FSConfig{}, fmt.Errorf("fault: unknown fs spec key %q", k)
		}
		if err != nil {
			return FSConfig{}, fmt.Errorf("fault: fs spec entry %q: %w", part, err)
		}
	}
	return cfg, nil
}

// FaultFS wraps an inner FS with seeded deterministic storage faults. All
// fault decisions flow from one PRNG behind a mutex, in operation-arrival
// order: a given seed produces the same fault sequence for the same sequence
// of writes, which is what makes storage chaos tests replayable. Reads,
// directory operations and renames pass through unfaulted (the WAL's
// correctness burden is on the write path; recovery must work no matter what
// the reader finds).
type FaultFS struct {
	inner FS
	cfg   FSConfig

	mu      sync.Mutex
	rng     *rand.Rand
	writes  int64
	crashed bool

	writeErrC, shortC, syncErrC, crashC *obs.Counter
}

// NewFS wraps inner with the fault mix; reg may be nil to disable metrics.
func NewFS(inner FS, cfg FSConfig, reg *obs.Registry) *FaultFS {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	f := &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if reg != nil {
		f.writeErrC = reg.Counter(`fault_fs_injected_total{kind="write_error"}`)
		f.shortC = reg.Counter(`fault_fs_injected_total{kind="short_write"}`)
		f.syncErrC = reg.Counter(`fault_fs_injected_total{kind="sync_error"}`)
		f.crashC = reg.Counter(`fault_fs_injected_total{kind="crash"}`)
	}
	return f
}

// Crashed reports whether the crash point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// writeDecision is the outcome of one write's fault draw.
type writeDecision struct {
	err   bool
	short bool
	// frac in [0,1) picks the torn-write prefix length.
	frac float64
}

// drawWrite consumes exactly three uniforms per write so the decision
// sequence for a seed is stable as probabilities are tuned, mirroring
// Injector.draw.
func (f *FaultFS) drawWrite() (writeDecision, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return writeDecision{}, ErrCrashed
	}
	u1, u2, u3 := f.rng.Float64(), f.rng.Float64(), f.rng.Float64()
	f.writes++
	if f.cfg.CrashAtWrite > 0 && f.writes >= f.cfg.CrashAtWrite {
		f.crashed = true
		if f.crashC != nil {
			f.crashC.Inc()
		}
		return writeDecision{short: true, frac: u3}, nil
	}
	var d writeDecision
	if u1 < f.cfg.WriteErrProb {
		d.err = true
	} else if u2 < f.cfg.ShortWriteProb {
		d.short = true
		d.frac = u3
	}
	return d, nil
}

func (f *FaultFS) drawSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if f.rng.Float64() < f.cfg.SyncErrProb {
		if f.syncErrC != nil {
			f.syncErrC.Inc()
		}
		return errors.New("fault: injected fsync failure")
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

func (f *FaultFS) Append(name string) (File, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	inner, err := f.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, name: name}, nil
}

func (f *FaultFS) Open(name string) (io.ReadCloser, error) { return f.inner.Open(name) }

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *FaultFS) Rename(oldname, newname string) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FaultFS) Size(name string) (int64, error) { return f.inner.Size(name) }

// faultFile interposes the write-path faults on one file handle.
type faultFile struct {
	fs    *FaultFS
	inner File
	name  string
}

func (w *faultFile) Write(p []byte) (int, error) {
	d, err := w.fs.drawWrite()
	if err != nil {
		return 0, err
	}
	if d.err {
		if w.fs.writeErrC != nil {
			w.fs.writeErrC.Inc()
		}
		return 0, fmt.Errorf("fault: injected write error on %s", filepath.Base(w.name))
	}
	if d.short {
		n := int(d.frac * float64(len(p)))
		if n >= len(p) && len(p) > 0 {
			n = len(p) - 1
		}
		wrote, werr := w.inner.Write(p[:n])
		if w.fs.shortC != nil {
			w.fs.shortC.Inc()
		}
		if werr != nil {
			return wrote, werr
		}
		return wrote, fmt.Errorf("fault: injected short write on %s (%d of %d bytes)", filepath.Base(w.name), wrote, len(p))
	}
	return w.inner.Write(p)
}

func (w *faultFile) Sync() error {
	if err := w.fs.drawSync(); err != nil {
		return err
	}
	return w.inner.Sync()
}

func (w *faultFile) Truncate(size int64) error {
	if w.fs.Crashed() {
		return ErrCrashed
	}
	return w.inner.Truncate(size)
}

func (w *faultFile) Close() error { return w.inner.Close() }
