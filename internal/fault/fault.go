// Package fault is deterministic, seed-driven fault injection for chaos
// testing the serving path: added latency, injected errors and forced
// panics, exposed both as HTTP middleware (internal/server wires it between
// the observability stack and the router, so injected panics exercise the
// real panic-recovery path) and as a sim.Observer hook (so the batch runner
// and job subsystem can be crashed on purpose).
//
// All randomness flows from one seeded PRNG behind a mutex: a given seed
// produces the same decision sequence in the same arrival order, which
// makes chaos-test failures replayable.
package fault

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"convexcache/internal/obs"
	"convexcache/internal/sim"
)

// Config describes the fault mix. Probabilities are per decision (one HTTP
// request or one simulation step); zero probabilities disable that fault.
type Config struct {
	// Seed seeds the decision PRNG; the zero seed is replaced by 1 so a
	// zero-value Config is still deterministic.
	Seed int64
	// LatencyProb is the probability of sleeping Latency before the work.
	LatencyProb float64
	// Latency is the injected delay.
	Latency time.Duration
	// ErrorProb is the probability of failing with an injected 500
	// (middleware only; a simulation step has no error channel).
	ErrorProb float64
	// PanicProb is the probability of panicking.
	PanicProb float64
}

// Enabled reports whether any fault can fire.
func (c Config) Enabled() bool {
	return c.LatencyProb > 0 || c.ErrorProb > 0 || c.PanicProb > 0
}

// ParseSpec parses a comma-separated fault spec, e.g.
//
//	"seed=7,latency=50ms,latency_p=0.3,error_p=0.2,panic_p=0.05"
//
// Unknown keys are an error so typos cannot silently disable a chaos run.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: malformed spec entry %q (want key=value)", part)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(v)
		case "latency_p":
			cfg.LatencyProb, err = parseProb(v)
		case "error_p":
			cfg.ErrorProb, err = parseProb(v)
		case "panic_p":
			cfg.PanicProb, err = parseProb(v)
		default:
			return Config{}, fmt.Errorf("fault: unknown spec key %q", k)
		}
		if err != nil {
			return Config{}, fmt.Errorf("fault: spec entry %q: %w", part, err)
		}
	}
	if cfg.LatencyProb > 0 && cfg.Latency <= 0 {
		return Config{}, fmt.Errorf("fault: latency_p set without a latency duration")
	}
	return cfg, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

// decision is one draw's outcome.
type decision struct {
	delay    time.Duration
	fail     bool
	panicNow bool
}

// Injector draws fault decisions from a seeded PRNG.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
	n   int64 // decisions drawn, for panic messages

	latencyC *obs.Counter
	errorC   *obs.Counter
	panicC   *obs.Counter
}

// New builds an Injector; reg may be nil to disable metrics.
func New(cfg Config, reg *obs.Registry) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	in := &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if reg != nil {
		in.latencyC = reg.Counter(`fault_injected_total{kind="latency"}`)
		in.errorC = reg.Counter(`fault_injected_total{kind="error"}`)
		in.panicC = reg.Counter(`fault_injected_total{kind="panic"}`)
	}
	return in
}

// draw produces the next decision in the seeded sequence. Exactly three
// uniforms are consumed per decision regardless of configuration, so the
// sequence for a seed is stable as probabilities are tuned.
func (in *Injector) draw() decision {
	in.mu.Lock()
	u1, u2, u3 := in.rng.Float64(), in.rng.Float64(), in.rng.Float64()
	in.n++
	in.mu.Unlock()
	var d decision
	if u1 < in.cfg.LatencyProb {
		d.delay = in.cfg.Latency
	}
	if u2 < in.cfg.PanicProb {
		d.panicNow = true
	} else if u3 < in.cfg.ErrorProb {
		d.fail = true
	}
	return d
}

// Middleware wraps next with the injector: a share of requests is delayed,
// failed with a JSON 500 (reason "fault_injected"), or crashed with a
// panic. Mount it inside a panic-recovery middleware; the whole point of
// the injected panic is proving that recovery holds.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	if !in.cfg.Enabled() {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := in.draw()
		if d.delay > 0 {
			if in.latencyC != nil {
				in.latencyC.Inc()
			}
			time.Sleep(d.delay)
		}
		if d.panicNow {
			if in.panicC != nil {
				in.panicC.Inc()
			}
			panic(fmt.Sprintf("fault: injected panic (decision %d)", in.count()))
		}
		if d.fail {
			if in.errorC != nil {
				in.errorC.Inc()
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, "{\"error\":\"injected fault\",\"reason\":\"fault_injected\"}\n")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Observer returns a sim.Observer that injects per-step latency and panics
// into a simulation run — the sim.Config hook used by chaos tests to crash
// workers on purpose (error injection has no per-step channel and is
// middleware-only). Compose with an existing observer via sim.Config:
//
//	cfg.Observer = inj.Observer()
func (in *Injector) Observer() sim.Observer {
	if !in.cfg.Enabled() {
		return func(sim.Event) {}
	}
	return func(ev sim.Event) {
		d := in.draw()
		if d.delay > 0 {
			if in.latencyC != nil {
				in.latencyC.Inc()
			}
			time.Sleep(d.delay)
		}
		if d.panicNow {
			if in.panicC != nil {
				in.panicC.Inc()
			}
			panic(fmt.Sprintf("fault: injected simulation panic at step %d", ev.Step))
		}
	}
}

func (in *Injector) count() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}
