package sim_test

import (
	"fmt"
	"testing"

	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/runspec"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// perfTrace builds the small multi-tenant zipf workload the perf benchmarks
// replay: 4 tenants with distinct cost shapes over 200k requests, the same
// shape cmd/bench's throughput suite uses. BenchmarkPerStepK256 pins the
// per-step (NoBatch) dense path — the hottest per-event loop, and the one
// most sensitive to the core primitives' inlinability — so engine changes
// can be A/B-profiled with plain `go test -bench` without the full suite.
func perfTrace(b *testing.B) *trace.Trace {
	b.Helper()
	w := &runspec.WorkloadSpec{Length: 200_000}
	for t := 0; t < 4; t++ {
		seed := int64(1000 + t)
		w.Tenants = append(w.Tenants, runspec.TenantSpec{Stream: fmt.Sprintf("zipf:%d,0.9", 4096), Seed: &seed})
	}
	tr, err := (&runspec.Scenario{Trace: runspec.TraceSpec{Workload: w}}).BuildTrace()
	if err != nil {
		b.Fatal(err)
	}
	tr.Dense()
	return tr
}

func BenchmarkPerStepK256(b *testing.B) {
	tr := perfTrace(b)
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 2}, costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 4}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewFast(core.Options{Costs: costs})
		if _, err := sim.Run(tr, p, sim.Config{K: 256, NoBatch: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len()))
}
