package sim

import (
	"testing"

	"convexcache/internal/trace"
)

func TestMultiObserverNilSafety(t *testing.T) {
	if got := MultiObserver(); got != nil {
		t.Error("MultiObserver() should be nil")
	}
	if got := MultiObserver(nil, nil); got != nil {
		t.Error("MultiObserver(nil, nil) should be nil")
	}
	var hits int
	one := func(Event) { hits++ }
	obs := MultiObserver(nil, one, nil)
	if obs == nil {
		t.Fatal("single live observer must survive composition")
	}
	obs(Event{})
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

func TestMultiObserverPreservesOrder(t *testing.T) {
	var order []string
	mk := func(name string) Observer {
		return func(ev Event) { order = append(order, name) }
	}
	obs := MultiObserver(mk("a"), nil, mk("b"), mk("c"))
	obs(Event{})
	obs(Event{})
	want := []string{"a", "b", "c", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMultiObserverSeesEveryEngineEvent(t *testing.T) {
	tr := trace.NewBuilder().
		Add(0, 1).Add(0, 2).Add(0, 3).Add(0, 1).Add(0, 4).
		MustBuild()
	var a, b []Event
	cfg := ConfigAt(2).
		WithObserver(func(ev Event) { a = append(a, ev) }).
		WithObserver(func(ev Event) { b = append(b, ev) })
	if _, err := Run(tr, &fifoPolicy{}, cfg); err != nil {
		t.Fatal(err)
	}
	if len(a) != tr.Len() || len(b) != tr.Len() {
		t.Fatalf("observers saw %d / %d events, want %d", len(a), len(b), tr.Len())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs between chained observers: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestConfigWithHelpers(t *testing.T) {
	called := 0
	cfg := ConfigAt(7).
		WithEngine(EngineMap).
		WithWarmup(3).
		WithProgress(func(int) { called++ })
	if cfg.K != 7 || cfg.Engine != EngineMap || cfg.WarmupSteps != 3 || cfg.Progress == nil {
		t.Fatalf("config not assembled: %+v", cfg)
	}
}
