package sim

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"convexcache/internal/trace"
)

// loopTrace returns a single-tenant trace cycling over pages.
func loopTrace(t *testing.T, n, pages int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder()
	for i := 0; i < n; i++ {
		b.Add(0, trace.PageID(i%pages))
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// panicAtPolicy is an LRU-free stand-in that panics on its first insert.
type panicAtPolicy struct{}

func (panicAtPolicy) Name() string                                  { return "panic-at" }
func (panicAtPolicy) OnHit(step int, r trace.Request)               {}
func (panicAtPolicy) OnInsert(step int, r trace.Request)            { panic("boom at insert") }
func (panicAtPolicy) Victim(step int, r trace.Request) trace.PageID { return -1 }
func (panicAtPolicy) OnEvict(step int, p trace.PageID)              {}
func (panicAtPolicy) Reset()                                        {}

// fifoPolicy is a minimal well-behaved policy for the happy path.
type fifoPolicy struct{ order []trace.PageID }

func (f *fifoPolicy) Name() string                    { return "fifo-test" }
func (f *fifoPolicy) OnHit(step int, r trace.Request) {}
func (f *fifoPolicy) OnInsert(step int, r trace.Request) {
	f.order = append(f.order, r.Page)
}
func (f *fifoPolicy) Victim(step int, r trace.Request) trace.PageID { return f.order[0] }
func (f *fifoPolicy) OnEvict(step int, p trace.PageID) {
	for i, q := range f.order {
		if q == p {
			f.order = append(f.order[:i], f.order[i+1:]...)
			return
		}
	}
}
func (f *fifoPolicy) Reset() { f.order = nil }

func TestRunAllRecoversWorkerPanic(t *testing.T) {
	tr := loopTrace(t, 64, 16)
	jobs := []Job{
		{Label: "bad", Trace: tr, Policy: func() Policy { return panicAtPolicy{} }, Config: Config{K: 8}},
		{Label: "good", Trace: tr, Policy: func() Policy { return &fifoPolicy{} }, Config: Config{K: 16}},
	}
	out := RunAll(jobs, 2)
	if out[0].Err == nil || !strings.Contains(out[0].Err.Error(), `job "bad" panicked`) {
		t.Fatalf("bad job err = %v, want recovered panic", out[0].Err)
	}
	if out[1].Err != nil {
		t.Fatalf("good job err = %v", out[1].Err)
	}
	if out[1].Result.Hits == 0 {
		t.Fatal("good job produced no hits; recovery must not disturb other jobs")
	}
}

func TestRunAllContextPreCancelledRunsNothing(t *testing.T) {
	tr := loopTrace(t, 64, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var started atomic.Int64
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{
			Label: "j",
			Trace: tr,
			Policy: func() Policy {
				started.Add(1)
				return &fifoPolicy{}
			},
			Config: Config{K: 8},
		}
	}
	out := RunAllContext(ctx, jobs, 2)
	if got := started.Load(); got != 0 {
		t.Fatalf("%d jobs started on a pre-cancelled batch, want 0", got)
	}
	for i, jr := range out {
		if !errors.Is(jr.Err, context.Canceled) {
			t.Fatalf("job %d err = %v, want context.Canceled", i, jr.Err)
		}
	}
}

func TestRunAllContextStopsDispatch(t *testing.T) {
	tr := loopTrace(t, 64, 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var started atomic.Int64
	const n = 64
	jobs := make([]Job, n)
	for i := range jobs {
		first := i == 0
		jobs[i] = Job{
			Label: "j",
			Trace: tr,
			Policy: func() Policy {
				started.Add(1)
				if first {
					cancel() // the first job fails the batch
				}
				return &fifoPolicy{}
			},
			Config: Config{K: 8},
		}
	}
	out := RunAllContext(ctx, jobs, 1)

	var notRun int
	for _, jr := range out {
		if jr.Err != nil && errors.Is(jr.Err, context.Canceled) {
			notRun++
		}
	}
	if notRun == 0 {
		t.Fatalf("no job reported the cancellation: %+v", out)
	}
	if got := started.Load(); got >= n {
		t.Fatalf("all %d jobs started despite cancellation", got)
	}
}
