package sim

import "convexcache/internal/trace"

// BatchSize is the run length the dense engine hands to a BatchPolicy per
// StepBatch call. One interface dispatch, one bounds-check region and one
// cancellation/progress probe are amortized over this many requests; batches
// are split (never merged) at the warmup boundary so a StepBatch call is
// always entirely warm or entirely measured.
const BatchSize = 64

// SlotTable is the struct-of-arrays residency index of the dense engine:
// three parallel flat slices replacing the page->slot map of the original
// loop. The hit probe reads a single int32 from PageSlot; the eviction path
// reads the victim's owner from SlotTenant without touching the trace's
// owner table. Slots are allocated in increasing order until the table is
// full, after which Replace recycles the victim's slot.
type SlotTable struct {
	// PageSlot maps dense page index -> slot, -1 when the page is absent.
	PageSlot []int32
	// SlotPage maps slot -> resident dense page index (the reverse index).
	SlotPage []int32
	// SlotTenant maps slot -> owner of SlotPage[slot], so eviction
	// accounting never leaves the slot table.
	SlotTenant []int32
	// Used is the number of occupied slots; the first Used slots are the
	// occupied ones.
	Used int
	// K is the capacity in slots.
	K int
}

// NewSlotTable returns an empty table over nPages dense pages with k slots.
func NewSlotTable(nPages, k int) *SlotTable {
	st := &SlotTable{
		PageSlot:   make([]int32, nPages),
		SlotPage:   make([]int32, k),
		SlotTenant: make([]int32, k),
		K:          k,
	}
	for i := range st.PageSlot {
		st.PageSlot[i] = -1
	}
	return st
}

// Full reports whether every slot is occupied.
func (st *SlotTable) Full() bool { return st.Used >= st.K }

// Append installs page pg (owned by tenant i) in the next free slot. The
// caller must have checked !Full().
func (st *SlotTable) Append(pg int32, i trace.Tenant) {
	s := int32(st.Used)
	st.Used++
	st.PageSlot[pg] = s
	st.SlotPage[s] = pg
	st.SlotTenant[s] = int32(i)
}

// Replace evicts victim and installs page pg (owned by tenant i) in its
// slot, returning the victim's recorded owner. ok is false — and the table
// unchanged — when victim is out of range or not resident, which is how a
// policy bug surfaces instead of corrupting residency.
func (st *SlotTable) Replace(victim, pg int32, i trace.Tenant) (evictedOwner trace.Tenant, ok bool) {
	if victim < 0 || int(victim) >= len(st.PageSlot) {
		return -1, false
	}
	s := st.PageSlot[victim]
	if s < 0 {
		return -1, false
	}
	evictedOwner = trace.Tenant(st.SlotTenant[s])
	st.PageSlot[victim] = -1
	st.PageSlot[pg] = s
	st.SlotPage[s] = pg
	st.SlotTenant[s] = int32(i)
	return evictedOwner, true
}

// BatchCounters is the accounting a StepBatch call updates in place. The
// Misses and Evictions slices alias the run's Result counters, so the policy
// increments them directly; Hits is folded into the Result after the loop.
type BatchCounters struct {
	// Hits counts measured (non-warmup) cache hits.
	Hits int64
	// Misses counts measured fetches per tenant.
	Misses []int64
	// Evictions counts measured evictions per owner.
	Evictions []int64
}

// BatchPolicy is the batched fast path of the dense engine. A DensePolicy
// that also implements it is driven in runs of up to BatchSize requests per
// call: the policy owns the whole hit/miss/evict/insert loop — including
// residency, which it keeps in its own per-page records so the probe, the
// owner lookup and the insert all land on one cache line — and the engine
// only intervenes at batch boundaries (context cancellation, progress). The
// SlotTable above remains the residency layer of the per-step dense loop;
// the batched loop deliberately does not maintain one, because a separate
// page->slot array would add a random cache line to every probe and every
// eviction. The engine uses this path only when no Observer is installed
// (per-step events require the per-step loop) and Config.NoBatch is unset.
//
// Contract: a StepBatch call must be observably identical to driving the
// per-step DenseHit/DenseVictim/DenseEvict/DenseInsert methods over the same
// pages — the internal/check differential oracle enforces this bit-for-bit
// on the per-tenant accounting.
type BatchPolicy interface {
	DensePolicy
	// StepBatch serves pages (dense indices) starting at global step base.
	// When warm is true the batch lies inside the warmup prefix and bc must
	// not be updated. A non-nil error aborts the run (an internal invariant
	// broke, e.g. no victim available).
	StepBatch(base int, pages []int32, bc *BatchCounters, warm bool) error
}
