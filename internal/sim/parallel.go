package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"convexcache/internal/trace"
)

// Job is one (trace, policy, config) triple for the batch runner. The
// PolicyFactory must return a fresh policy instance per call so concurrent
// jobs never share mutable state.
type Job struct {
	// Label tags the job in the output.
	Label string
	// Trace is the request sequence to replay.
	Trace *trace.Trace
	// Policy constructs the eviction policy for this job.
	Policy func() Policy
	// Config is the run configuration.
	Config Config
	// Shards, when > 1, replays the trace via sharded replay (RunSharded)
	// with this many shards and concurrent shard workers; the Policy
	// factory is invoked once per shard. See ShardPlan.Run for the model
	// and its restrictions.
	Shards int
}

// JobResult pairs a job label with its outcome.
type JobResult struct {
	// Label echoes Job.Label.
	Label string
	// Result is the run summary (zero when Err != nil).
	Result Result
	// Duration is the wall time of the run, zero for jobs never dispatched.
	Duration time.Duration
	// Err reports a failed run.
	Err error
}

// RunAll executes the jobs on a bounded worker pool and returns results in
// job order. workers <= 0 selects GOMAXPROCS.
func RunAll(jobs []Job, workers int) []JobResult {
	return RunAllContext(context.Background(), jobs, workers)
}

// RunAllContext is RunAll bounded by ctx. A panicking job (a buggy policy,
// an injected fault) is recovered into its JobResult.Err instead of killing
// the process, so one bad cell cannot take a whole experiment batch down.
// Once ctx is done, in-flight jobs abort via RunContext and the remaining
// undispatched jobs are returned unrun with ctx's cause as their error —
// cancelling a failed batch stops the dispatch instead of burning CPU on
// results nobody will read.
func RunAllContext(ctx context.Context, jobs []Job, workers int) []JobResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = runJob(ctx, jobs[i])
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for i := range jobs {
		// Check cancellation before offering the index: a worker ready to
		// receive would otherwise race the done branch and could keep
		// draining a batch the caller has already abandoned.
		cancelled := ctx.Err() != nil
		if !cancelled {
			select {
			case idx <- i:
				continue
			case <-done:
				cancelled = true
			}
		}
		if cancelled {
			for ; i < len(jobs); i++ {
				out[i] = JobResult{
					Label: jobs[i].Label,
					Err:   fmt.Errorf("sim: job not run: %w", context.Cause(ctx)),
				}
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return out
}

// PanicError is the JobResult.Err of a job that panicked. It preserves the
// recovered value so callers with their own panic handling (the HTTP
// layer's recovery middleware and its panic metrics) can re-raise it.
type PanicError struct {
	// Label is the panicking job's label.
	Label string
	// Value is the recovered panic value.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: job %q panicked: %v", e.Label, e.Value)
}

// runJob executes one job, converting a panic into an error.
func runJob(ctx context.Context, job Job) (jr JobResult) {
	jr.Label = job.Label
	start := time.Now()
	defer func() {
		jr.Duration = time.Since(start)
		if p := recover(); p != nil {
			jr.Result = Result{}
			jr.Err = &PanicError{Label: job.Label, Value: p}
		}
	}()
	if job.Shards > 1 {
		jr.Result, jr.Err = RunSharded(ctx, job.Trace, job.Policy, job.Config, job.Shards)
	} else {
		jr.Result, jr.Err = RunContext(ctx, job.Trace, job.Policy(), job.Config)
	}
	return jr
}

// WindowSeries collects per-window aggregate miss counts, used for the
// phase-shift experiment (window cost curves). It is an Observer factory.
type WindowSeries struct {
	// Window is the number of steps per bucket.
	Window int
	// MissesPerWindow[w][i] counts tenant-i misses in window w.
	MissesPerWindow [][]int64

	tenants int
}

// NewWindowSeries creates a collector with the given window length and
// tenant count.
func NewWindowSeries(window, tenants int) *WindowSeries {
	if window <= 0 {
		window = 1
	}
	return &WindowSeries{Window: window, tenants: tenants}
}

// Observe is the Observer to install in Config.
func (ws *WindowSeries) Observe(ev Event) {
	w := ev.Step / ws.Window
	for len(ws.MissesPerWindow) <= w {
		ws.MissesPerWindow = append(ws.MissesPerWindow, make([]int64, ws.tenants))
	}
	if ev.Miss && int(ev.Req.Tenant) < ws.tenants {
		ws.MissesPerWindow[w][ev.Req.Tenant]++
	}
}

// Windows returns the number of complete or partial windows observed.
func (ws *WindowSeries) Windows() int { return len(ws.MissesPerWindow) }
