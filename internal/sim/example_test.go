package sim_test

import (
	"fmt"

	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

// ExampleRun replays a trace through a baseline and evaluates the convex
// objective.
func ExampleRun() {
	tr := trace.NewBuilder().
		Add(0, 1).Add(1, 100).Add(0, 1).Add(1, 101).Add(0, 2).
		MustBuild()
	res, _ := sim.Run(tr, policy.NewLRU(), sim.Config{K: 2})
	costs := []costfn.Func{costfn.Monomial{C: 1, Beta: 2}, costfn.Linear{W: 1}}
	fmt.Printf("hits=%d misses=%v cost=%.0f\n", res.Hits, res.Misses, res.Cost(costs))
	// Output:
	// hits=1 misses=[2 2] cost=6
}

// ExampleRunAll fans simulations out over a worker pool.
func ExampleRunAll() {
	tr := trace.NewBuilder().Add(0, 1).Add(0, 2).Add(0, 1).MustBuild()
	jobs := []sim.Job{
		{Label: "lru", Trace: tr, Policy: func() sim.Policy { return policy.NewLRU() }, Config: sim.Config{K: 2}},
		{Label: "fifo", Trace: tr, Policy: func() sim.Policy { return policy.NewFIFO() }, Config: sim.Config{K: 2}},
	}
	for _, jr := range sim.RunAll(jobs, 2) {
		fmt.Printf("%s: %d misses\n", jr.Label, jr.Result.TotalMisses())
	}
	// Output:
	// lru: 2 misses
	// fifo: 2 misses
}
