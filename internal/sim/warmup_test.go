package sim

import "testing"

func TestWarmupExcludesCounters(t *testing.T) {
	// 1,2 are warmup (cold misses excluded); then 1 hits, 3 misses.
	tr := seqTrace(t, 1, 2, 1, 3)
	res, err := Run(tr, &fifoTest{}, Config{K: 3, WarmupSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 1 {
		t.Errorf("steady-state misses = %d, want 1", res.TotalMisses())
	}
	if res.Hits != 1 {
		t.Errorf("steady-state hits = %d, want 1", res.Hits)
	}
}

func TestWarmupStillWarmsThePolicy(t *testing.T) {
	// Without warmup exclusion, all 4 are misses; with warmup the cache is
	// already populated when measurement starts, so the re-accesses hit.
	tr := seqTrace(t, 1, 2, 1, 2)
	cold := MustRun(tr, &fifoTest{}, Config{K: 2})
	warm := MustRun(tr, &fifoTest{}, Config{K: 2, WarmupSteps: 2})
	if cold.TotalMisses() != 2 || cold.Hits != 2 {
		t.Errorf("cold run = %+v", cold)
	}
	if warm.TotalMisses() != 0 || warm.Hits != 2 {
		t.Errorf("warm run misses=%d hits=%d, want 0/2", warm.TotalMisses(), warm.Hits)
	}
}

func TestWarmupEventsFlagged(t *testing.T) {
	tr := seqTrace(t, 1, 2, 3)
	var warmCount int
	MustRun(tr, &fifoTest{}, Config{K: 2, WarmupSteps: 2, Observer: func(ev Event) {
		if ev.Warmup {
			warmCount++
		}
	}})
	if warmCount != 2 {
		t.Errorf("warmup events = %d, want 2", warmCount)
	}
}

func TestWarmupLongerThanTrace(t *testing.T) {
	tr := seqTrace(t, 1, 2)
	res := MustRun(tr, &fifoTest{}, Config{K: 2, WarmupSteps: 10})
	if res.TotalMisses() != 0 && res.Hits != 0 {
		t.Errorf("counters non-zero with all-warmup run: %+v", res)
	}
	if res.EffectiveSteps != 0 {
		t.Errorf("EffectiveSteps = %d, want 0 when warmup covers the trace", res.EffectiveSteps)
	}
}

func TestEffectiveStepsAccounting(t *testing.T) {
	// Steps keeps reporting the full trace length; EffectiveSteps is the
	// measured-request count that hit-rate math must divide by, and the
	// counters must sum to it exactly.
	tr := seqTrace(t, 1, 2, 1, 3, 1, 2)
	for _, warmup := range []int{0, 2, 4} {
		res := MustRun(tr, &fifoTest{}, Config{K: 3, WarmupSteps: warmup})
		if res.Steps != tr.Len() {
			t.Errorf("warmup=%d: Steps = %d, want %d", warmup, res.Steps, tr.Len())
		}
		if want := tr.Len() - warmup; res.EffectiveSteps != want {
			t.Errorf("warmup=%d: EffectiveSteps = %d, want %d", warmup, res.EffectiveSteps, want)
		}
		if got := res.Hits + res.TotalMisses(); got != int64(res.EffectiveSteps) {
			t.Errorf("warmup=%d: hits+misses = %d, want EffectiveSteps = %d", warmup, got, res.EffectiveSteps)
		}
	}
}
