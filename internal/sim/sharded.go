package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"convexcache/internal/trace"
)

// Sharded replay parallelizes one trace across n single-writer workers by
// partitioning the page universe: dense page p goes to shard p mod n, each
// shard replays its subsequence of the requests on a private dense engine
// with a k/n capacity share, and the per-tenant counters are merged by
// elementwise integer addition at the end.
//
// What this computes, precisely: the replay of a *partitioned* cache — n
// independent caches whose capacities sum to K, each serving a fixed subset
// of the pages — not the single shared-K cache of Run. The two models agree
// at n = 1 bit for bit, and the partitioned model itself is exact, not
// approximate: because the paper's objective Σ f_i(misses_i) is separable
// per tenant and every page belongs to exactly one shard, each tenant's
// miss count is the sum of its per-shard miss counts with no cross terms.
// The merge is integer addition, so the final accounting is bit-identical
// for any worker count and any completion order — parallelism never changes
// the answer, which the internal/check sharded oracle enforces.
//
// The warmup boundary is global: a shard's warmup prefix is exactly its
// requests whose global step precedes Config.WarmupSteps, so the merged
// measured counters cover the same request suffix as a sequential run.

// ShardPlan is the reusable page partition of one trace: build it once with
// BuildShards, replay it any number of times with Run. The plan pins the
// shard count; capacity, policy and warmup are per-Run.
type ShardPlan struct {
	d *trace.Dense
	n int
	// shards[s] holds shard s's request subsequence and, parallel to it,
	// the global step of each request (ascending by construction), which
	// locates the warmup boundary inside the shard by binary search.
	shards []shardSeq
}

// ShardShare returns shard s's capacity share of a k-page cache split
// across n shards: k/n pages, with the remainder distributed one page each
// to the lowest-numbered shards so the shares sum to exactly k. It is the
// split both the offline sharded replay and the live cache service use, so
// the two sides of a live-vs-replay differential agree by construction.
func ShardShare(k, n, s int) int {
	share := k / n
	if s < k%n {
		share++
	}
	return share
}

type shardSeq struct {
	reqs  []int32
	steps []int32
}

// N returns the shard count the plan was built with.
func (pl *ShardPlan) N() int { return pl.n }

// ShardLen returns the number of requests routed to shard s.
func (pl *ShardPlan) ShardLen(s int) int { return len(pl.shards[s].reqs) }

// BuildShards partitions tr across n shards by dense page index modulo n.
// The routing is a pure function of the trace's dense remap (first
// appearance order), so the same trace always yields the same partition.
func BuildShards(tr *trace.Trace, n int) (*ShardPlan, error) {
	return BuildShardsBy(tr, n, nil)
}

// BuildShardsBy is BuildShards with an explicit routing function over the
// original PageIDs: page p goes to shard shardOf(p), which must return a
// value in [0, n). A nil shardOf selects the default dense-index-mod-n
// partition. Callers that replay the request log of a live hash-routed
// cache pass the live router's function here, so the offline replay
// partitions pages exactly the way the serving path did — the precondition
// for an exact live-vs-replay differential.
func BuildShardsBy(tr *trace.Trace, n int, shardOf func(trace.PageID) int) (*ShardPlan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: shard count must be positive, got %d", n)
	}
	if tr.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("sim: trace too long to shard (%d steps)", tr.Len())
	}
	d := tr.Dense()
	// Route every distinct page once; the request passes below are table
	// lookups regardless of how expensive shardOf is.
	pageShard := make([]int32, d.NumPages())
	for ix := range pageShard {
		s := ix % n
		if shardOf != nil {
			s = shardOf(d.Pages[ix])
			if s < 0 || s >= n {
				return nil, fmt.Errorf("sim: shardOf(%d) = %d out of range [0,%d)", d.Pages[ix], s, n)
			}
		}
		pageShard[ix] = int32(s)
	}
	pl := &ShardPlan{d: d, n: n, shards: make([]shardSeq, n)}
	// Pre-size each shard from a counting pass so the routing pass does not
	// re-grow n slices.
	counts := make([]int, n)
	for _, pg := range d.Reqs {
		counts[pageShard[pg]]++
	}
	for s := range pl.shards {
		pl.shards[s].reqs = make([]int32, 0, counts[s])
		pl.shards[s].steps = make([]int32, 0, counts[s])
	}
	for step, pg := range d.Reqs {
		s := pageShard[pg]
		pl.shards[s].reqs = append(pl.shards[s].reqs, pg)
		pl.shards[s].steps = append(pl.shards[s].steps, int32(step))
	}
	return pl, nil
}

// kShare returns shard s's capacity share; see ShardShare.
func (pl *ShardPlan) kShare(k, s int) int {
	return ShardShare(k, pl.n, s)
}

// warmupAt returns how many of shard s's requests fall inside the global
// warmup prefix [0, w).
func (pl *ShardPlan) warmupAt(s, w int) int {
	steps := pl.shards[s].steps
	return sort.Search(len(steps), func(j int) bool { return int(steps[j]) >= w })
}

// Run replays the plan with a fresh policy per shard (mk must return
// independent instances; they run concurrently) and merges the per-shard
// results. workers bounds the number of shards replayed simultaneously and
// is clamped to [1, n]; the merged Result is identical for every value.
//
// Restrictions versus Run: the policy must support the dense engine (each
// shard runs the dense loop over its page subset), cfg.K must be at least
// the shard count (every shard needs a slot), and cfg.Observer must be nil
// — per-step events from concurrent shards would interleave
// nondeterministically, which is exactly what sharded replay promises not
// to do. Progress remains available: callbacks are serialized and the
// deltas sum to the trace length.
func (pl *ShardPlan) Run(ctx context.Context, mk func() Policy, cfg Config, workers int) (Result, error) {
	if cfg.K <= 0 {
		return Result{}, errors.New("sim: cache size must be positive")
	}
	if cfg.K < pl.n {
		return Result{}, fmt.Errorf("sim: sharded replay needs k >= shards, got k=%d shards=%d", cfg.K, pl.n)
	}
	if cfg.Observer != nil {
		return Result{}, errors.New("sim: sharded replay does not support per-step observers")
	}
	if cfg.Engine == EngineMap {
		return Result{}, errors.New("sim: sharded replay requires the dense engine")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > pl.n {
		workers = pl.n
	}

	// Serialize Progress across shards; the per-shard engines keep their
	// CheckEverySteps cadence, so the merged delta stream has the same
	// granularity as a sequential run.
	progress := cfg.Progress
	var progMu sync.Mutex
	var locked func(int)
	if progress != nil {
		locked = func(delta int) {
			progMu.Lock()
			progress(delta)
			progMu.Unlock()
		}
	}

	results := make([]Result, pl.n)
	errs := make([]error, pl.n)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range idx {
				results[s], errs[s] = pl.runShard(ctx, s, mk, cfg, locked)
			}
		}()
	}
	for s := range pl.shards {
		idx <- s
	}
	close(idx)
	wg.Wait()

	// Report the lowest-numbered shard's error so a failure is as
	// deterministic as a success.
	for s, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("sim: shard %d/%d: %w", s, pl.n, err)
		}
	}

	total := 0
	for s := range pl.shards {
		total += len(pl.shards[s].reqs)
	}
	out := Result{
		Policy:         results[0].Policy,
		K:              cfg.K,
		Steps:          total,
		EffectiveSteps: effectiveSteps(total, cfg.WarmupSteps),
		Misses:         make([]int64, pl.d.Tenants),
		Evictions:      make([]int64, pl.d.Tenants),
	}
	for s := range results {
		r := &results[s]
		out.Hits += r.Hits
		for i := range r.Misses {
			out.Misses[i] += r.Misses[i]
		}
		for i := range r.Evictions {
			out.Evictions[i] += r.Evictions[i]
		}
	}
	return out, nil
}

// runShard replays one shard on its own dense engine instance.
func (pl *ShardPlan) runShard(ctx context.Context, s int, mk func() Policy, cfg Config, progress func(int)) (Result, error) {
	p := mk()
	dp, ok := p.(DensePolicy)
	if !ok {
		return Result{}, fmt.Errorf("sim: policy %s does not support the dense engine", p.Name())
	}
	scfg := Config{
		K:           pl.kShare(cfg.K, s),
		WarmupSteps: pl.warmupAt(s, cfg.WarmupSteps),
		NoBatch:     cfg.NoBatch,
		Progress:    progress,
	}
	view := pl.d.Subsequence(pl.shards[s].reqs)
	res, handled, err := runDenseView(ctx, view, dp, scfg)
	if err != nil {
		return Result{}, err
	}
	if !handled {
		return Result{}, fmt.Errorf("sim: policy %s declined the dense engine", p.Name())
	}
	return res, nil
}

// RunSharded partitions tr across n shards and replays them on n concurrent
// workers: the one-call entry point for throughput runs. See ShardPlan.Run
// for the exact model and its restrictions.
func RunSharded(ctx context.Context, tr *trace.Trace, mk func() Policy, cfg Config, n int) (Result, error) {
	pl, err := BuildShards(tr, n)
	if err != nil {
		return Result{}, err
	}
	return pl.Run(ctx, mk, cfg, n)
}
