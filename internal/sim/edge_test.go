package sim

import (
	"testing"

	"convexcache/internal/trace"
)

func TestRunSingleRequest(t *testing.T) {
	tr := seqTrace(t, 1)
	res, err := Run(tr, &fifoTest{}, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 1 || res.Hits != 0 || res.TotalEvictions() != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestRunCacheLargerThanUniverse(t *testing.T) {
	tr := seqTrace(t, 1, 2, 3, 1, 2, 3, 1)
	res, err := Run(tr, &fifoTest{}, Config{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 3 {
		t.Errorf("misses = %d, want cold 3", res.TotalMisses())
	}
	if res.TotalEvictions() != 0 {
		t.Errorf("evictions = %d with oversized cache", res.TotalEvictions())
	}
}

func TestRunSamePageRepeated(t *testing.T) {
	pages := make([]int, 100)
	for i := range pages {
		pages[i] = 7
	}
	tr := seqTrace(t, pages...)
	res, err := Run(tr, &fifoTest{}, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 1 || res.Hits != 99 {
		t.Errorf("res = %+v", res)
	}
}

func TestRunK1Thrash(t *testing.T) {
	tr := seqTrace(t, 1, 2, 1, 2)
	res, err := Run(tr, &fifoTest{}, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses() != 4 || res.TotalEvictions() != 3 {
		t.Errorf("res = %+v", res)
	}
}

// victimIsIncoming returns the page being inserted — never resident, so the
// engine must reject it.
type victimIsIncoming struct{ fifoTest }

func (v *victimIsIncoming) Victim(step int, r trace.Request) trace.PageID { return r.Page }

func TestRunRejectsIncomingAsVictim(t *testing.T) {
	tr := seqTrace(t, 1, 2, 3)
	if _, err := Run(tr, &victimIsIncoming{}, Config{K: 2}); err == nil {
		t.Fatal("incoming page accepted as victim")
	}
}
