package sim_test

import (
	"context"
	"errors"
	"testing"

	"convexcache/internal/check"
	"convexcache/internal/sim"
)

// TestBatchedMatchesPerStep compares the batched dense loop against the
// per-step dense loop (NoBatch) over the oracle workload corpus, sweeping
// warmup boundaries that land before, inside, and exactly on batch
// boundaries — the splitting logic must keep every StepBatch call entirely
// warm or entirely measured.
func TestBatchedMatchesPerStep(t *testing.T) {
	for _, w := range check.Workloads() {
		tr, err := w.Gen(23, 5000)
		if err != nil {
			t.Fatalf("%s: gen: %v", w.Name, err)
		}
		mk := fastFactory(tr.NumTenants())
		for _, k := range []int{8, 64, 301} {
			for _, warm := range []int{0, 1, sim.BatchSize - 1, sim.BatchSize, sim.BatchSize + 7, 2*sim.BatchSize + 1, 5000, 8000} {
				cfg := sim.Config{K: k, WarmupSteps: warm, Engine: sim.EngineDense}
				batched, err := sim.Run(tr, mk(), cfg)
				if err != nil {
					t.Fatalf("%s k=%d warm=%d batched: %v", w.Name, k, warm, err)
				}
				cfg.NoBatch = true
				perStep, err := sim.Run(tr, mk(), cfg)
				if err != nil {
					t.Fatalf("%s k=%d warm=%d per-step: %v", w.Name, k, warm, err)
				}
				requireEqualResults(t, w.Name+"/batched-vs-per-step", batched, perStep)
			}
		}
	}
}

// TestBatchedObserverFallsBack pins the engine contract that installing an
// Observer routes the run onto the per-step loop: the observed event stream
// must account for every request even for a BatchPolicy.
func TestBatchedObserverFallsBack(t *testing.T) {
	tr := shardedTrace(t, 3000)
	mk := fastFactory(tr.NumTenants())
	events := 0
	cfg := sim.Config{K: 32, Observer: func(sim.Event) { events++ }}
	res, err := sim.Run(tr, mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if events != tr.Len() {
		t.Fatalf("observer saw %d events, want %d", events, tr.Len())
	}
	if got := res.Hits + res.TotalMisses(); got != int64(tr.Len()) {
		t.Fatalf("hits+misses = %d, want %d", got, tr.Len())
	}
}

// TestBatchedCancellationMidRun cancels from inside a Progress callback —
// which fires on the CheckEverySteps cadence at batch boundaries — and
// expects the run to abort with the cause preserved, exercising the
// mid-trace abort path of the batched loop.
func TestBatchedCancellationMidRun(t *testing.T) {
	tr := shardedTrace(t, 4*sim.CheckEverySteps)
	mk := fastFactory(tr.NumTenants())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	cfg := sim.Config{K: 64, Progress: func(d int) {
		seen += d
		cancel()
	}}
	_, err := sim.RunContext(ctx, tr, mk(), cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if seen == 0 || seen >= tr.Len() {
		t.Fatalf("aborted after %d steps, want a mid-trace abort (0 < steps < %d)", seen, tr.Len())
	}
}
