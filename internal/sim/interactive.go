package sim

import (
	"errors"
	"fmt"
	"sort"

	"convexcache/internal/trace"
)

// CacheView is the read-only view of the online algorithm's cache handed to
// an interactive request source. The lower-bound adversary of Theorem 1.4
// uses it to request exactly the page the algorithm does not hold.
type CacheView interface {
	// Contains reports whether page p is currently cached.
	Contains(p trace.PageID) bool
	// Len returns the number of cached pages.
	Len() int
	// Pages returns the cached pages in ascending id order.
	Pages() []trace.PageID
}

// RequestSource produces the next request, possibly as a function of the
// online algorithm's current cache contents (an adaptive online adversary).
type RequestSource interface {
	// Next returns the request for the given 0-based step.
	Next(step int, cache CacheView) trace.Request
}

// cacheState implements CacheView over the engine's map.
type cacheState struct {
	m map[trace.PageID]trace.Tenant
}

func (c cacheState) Contains(p trace.PageID) bool { _, ok := c.m[p]; return ok }
func (c cacheState) Len() int                     { return len(c.m) }
func (c cacheState) Pages() []trace.PageID {
	out := make([]trace.PageID, 0, len(c.m))
	for p := range c.m {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// RunInteractive drives policy p for `steps` requests produced online by the
// source, which may inspect the cache before each request. It returns the
// run result and the materialized trace (for replay against offline
// algorithms).
func RunInteractive(src RequestSource, steps int, p Policy, cfg Config) (Result, *trace.Trace, error) {
	if cfg.K <= 0 {
		return Result{}, nil, errors.New("sim: cache size must be positive")
	}
	if steps <= 0 {
		return Result{}, nil, errors.New("sim: interactive run needs positive steps")
	}
	cache := make(map[trace.PageID]trace.Tenant, cfg.K)
	view := cacheState{m: cache}
	b := trace.NewBuilder()
	res := Result{Policy: p.Name(), K: cfg.K, Steps: steps, EffectiveSteps: steps}
	grow := func(tenant trace.Tenant) {
		for int(tenant) >= len(res.Misses) {
			res.Misses = append(res.Misses, 0)
			res.Evictions = append(res.Evictions, 0)
		}
	}
	for step := 0; step < steps; step++ {
		r := src.Next(step, view)
		b.Add(r.Tenant, r.Page)
		grow(r.Tenant)
		ev := Event{Step: step, Req: r, Evicted: -1, EvictedTenant: -1}
		if _, ok := cache[r.Page]; ok {
			res.Hits++
			p.OnHit(step, r)
		} else {
			ev.Miss = true
			res.Misses[r.Tenant]++
			if len(cache) >= cfg.K {
				victim := p.Victim(step, r)
				owner, ok := cache[victim]
				if !ok {
					return Result{}, nil, fmt.Errorf("sim: policy %s returned victim %d not in cache at step %d", p.Name(), victim, step)
				}
				delete(cache, victim)
				grow(owner)
				res.Evictions[owner]++
				p.OnEvict(step, victim)
				ev.Evicted = victim
				ev.EvictedTenant = owner
			}
			cache[r.Page] = r.Tenant
			p.OnInsert(step, r)
		}
		if cfg.Observer != nil {
			cfg.Observer(ev)
		}
	}
	tr, err := b.Build()
	if err != nil {
		return Result{}, nil, err
	}
	return res, tr, nil
}
