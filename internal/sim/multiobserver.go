package sim

// MultiObserver composes observers into one that delivers every event to
// each non-nil observer in argument order. It is the composition primitive
// of the run-spec observer chain (internal/runspec): invariant checkers,
// fault injectors, window collectors and metrics hooks stack without any of
// them knowing about the others.
//
// Nil entries are skipped, so callers can pass optional observers without
// guarding each one. When no non-nil observer remains, MultiObserver
// returns nil — the engines then skip event construction entirely, keeping
// the observer-free hot path allocation-free.
func MultiObserver(obs ...Observer) Observer {
	live := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev Event) {
		for _, o := range live {
			o(ev)
		}
	}
}

// ConfigAt returns the Config for a run at cache size k. Together with the
// With* methods it is the construction path for layers below the run-spec
// layer (internal/check, internal/resilience): everything user-facing
// assembles runs through internal/runspec instead of hand-rolling a Config.
func ConfigAt(k int) Config { return Config{K: k} }

// WithEngine pins the run to one of the request loops.
func (c Config) WithEngine(e Engine) Config { c.Engine = e; return c }

// WithObserver appends o to the config's observer chain, preserving any
// observer already installed (events reach the existing chain first).
func (c Config) WithObserver(o Observer) Config {
	c.Observer = MultiObserver(c.Observer, o)
	return c
}

// WithWarmup excludes the first n steps from the Result counters.
func (c Config) WithWarmup(n int) Config { c.WarmupSteps = n; return c }

// WithProgress installs the step-progress hook.
func (c Config) WithProgress(f func(delta int)) Config { c.Progress = f; return c }
