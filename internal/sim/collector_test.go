package sim

import (
	"math"
	"testing"

	"convexcache/internal/trace"
)

func TestCollectorHitRates(t *testing.T) {
	// Window 4: first window all misses (1,2,3,4); second window all hits.
	tr := seqTrace(t, 1, 2, 3, 4, 1, 2, 3, 4)
	c := NewCollector(1, 4)
	MustRun(tr, &fifoTest{}, Config{K: 4, Observer: c.Observe})
	if c.Windows() != 2 {
		t.Fatalf("windows = %d", c.Windows())
	}
	if got := c.HitRate(0, 0); got != 0 {
		t.Errorf("window 0 hit rate = %g, want 0", got)
	}
	if got := c.HitRate(1, 0); got != 1 {
		t.Errorf("window 1 hit rate = %g, want 1", got)
	}
	// Out-of-range accessors return 0.
	if c.HitRate(5, 0) != 0 || c.HitRate(0, 9) != 0 {
		t.Error("out-of-range hit rate not zero")
	}
}

func TestCollectorEvictionAges(t *testing.T) {
	// k=1: each page lives exactly 1 step before eviction.
	tr := seqTrace(t, 1, 2, 3, 4)
	c := NewCollector(1, 10)
	MustRun(tr, &fifoTest{}, Config{K: 1, Observer: c.Observe})
	s, err := c.EvictionAges()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 {
		t.Fatalf("eviction ages = %d, want 3", s.N)
	}
	if s.Mean != 1 {
		t.Errorf("mean age = %g, want 1", s.Mean)
	}
}

func TestCollectorOccupancy(t *testing.T) {
	// Two tenants with equal footprints: long-run occupancy ~50/50.
	b := trace.NewBuilder()
	for i := 0; i < 400; i++ {
		b.Add(trace.Tenant(i%2), trace.PageID((i%2)*100+(i/2)%3))
	}
	tr := b.MustBuild()
	c := NewCollector(2, 50)
	MustRun(tr, &fifoTest{}, Config{K: 6, Observer: c.Observe})
	occ := c.AvgOccupancy()
	if math.Abs(occ[0]-occ[1]) > 0.2 {
		t.Errorf("occupancy skewed: %v", occ)
	}
	if math.Abs(occ[0]+occ[1]-1) > 1e-9 {
		t.Errorf("occupancy shares do not sum to 1: %v", occ)
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector(1, 0) // window clamps to 1
	if c.Windows() != 0 {
		t.Error("fresh collector has windows")
	}
	if _, err := c.EvictionAges(); err == nil {
		t.Error("empty ages summarized without error")
	}
	if got := c.AvgOccupancy(); got[0] != 0 {
		t.Errorf("occupancy = %v", got)
	}
}
