package sim

import (
	"sync/atomic"
	"testing"

	"convexcache/internal/costfn"
	"convexcache/internal/trace"
)

// fifoTest is a minimal correct policy used to exercise the engine.
type fifoTest struct {
	queue []trace.PageID
}

func (f *fifoTest) Name() string                       { return "fifo-test" }
func (f *fifoTest) OnHit(step int, r trace.Request)    {}
func (f *fifoTest) OnInsert(step int, r trace.Request) { f.queue = append(f.queue, r.Page) }
func (f *fifoTest) Victim(step int, r trace.Request) trace.PageID {
	return f.queue[0]
}
func (f *fifoTest) OnEvict(step int, p trace.PageID) {
	for i, q := range f.queue {
		if q == p {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return
		}
	}
}
func (f *fifoTest) Reset() { f.queue = nil }

// badPolicy returns a victim that is never in the cache.
type badPolicy struct{ fifoTest }

func (b *badPolicy) Victim(step int, r trace.Request) trace.PageID { return -999 }

func seqTrace(t *testing.T, pages ...int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder()
	for _, p := range pages {
		b.Add(trace.Tenant(p/100), trace.PageID(p))
	}
	return b.MustBuild()
}

func TestRunCountsHitsAndMisses(t *testing.T) {
	// k=2: 1,2 miss; 1 hit; 3 miss evicts FIFO head 1; 1 miss evicts 2.
	tr := seqTrace(t, 1, 2, 1, 3, 1)
	res, err := Run(tr, &fifoTest{}, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 1 {
		t.Errorf("hits = %d, want 1", res.Hits)
	}
	if got := res.TotalMisses(); got != 4 {
		t.Errorf("misses = %d, want 4", got)
	}
	if got := res.TotalEvictions(); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
}

func TestRunPerTenantAccounting(t *testing.T) {
	// Tenant 0: pages 1,2; tenant 1: pages 101.
	tr := seqTrace(t, 1, 101, 2, 1, 101)
	res, err := Run(tr, &fifoTest{}, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Sequence with k=2 FIFO: 1 miss, 101 miss, 2 miss (evict 1),
	// 1 miss (evict 101), 101 miss (evict 2).
	if res.Misses[0] != 3 || res.Misses[1] != 2 {
		t.Errorf("misses = %v", res.Misses)
	}
	if res.Evictions[0] != 2 || res.Evictions[1] != 1 {
		t.Errorf("evictions = %v", res.Evictions)
	}
}

func TestRunRejectsBadVictim(t *testing.T) {
	tr := seqTrace(t, 1, 2, 3)
	if _, err := Run(tr, &badPolicy{}, Config{K: 2}); err == nil {
		t.Fatal("bad victim accepted")
	}
}

func TestRunRejectsNonPositiveK(t *testing.T) {
	tr := seqTrace(t, 1)
	if _, err := Run(tr, &fifoTest{}, Config{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestObserverEvents(t *testing.T) {
	tr := seqTrace(t, 1, 2, 1, 3)
	var events []Event
	_, err := Run(tr, &fifoTest{}, Config{K: 2, Observer: func(ev Event) { events = append(events, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	if events[2].Miss {
		t.Error("step 2 should be a hit")
	}
	if !events[3].Miss || events[3].Evicted != 1 {
		t.Errorf("step 3 = %+v, want miss evicting page 1", events[3])
	}
	if events[0].Evicted != -1 {
		t.Errorf("cold miss reported eviction %d", events[0].Evicted)
	}
}

func TestCostHelpers(t *testing.T) {
	fs := []costfn.Func{costfn.Linear{W: 2}, costfn.Monomial{C: 1, Beta: 2}}
	counts := []int64{3, 4}
	if got := Cost(fs, counts); got != 6+16 {
		t.Errorf("Cost = %g, want 22", got)
	}
	per := PerTenantCost(fs, counts)
	if per[0] != 6 || per[1] != 16 {
		t.Errorf("PerTenantCost = %v", per)
	}
	// More tenants than cost functions: extra tenants are free (dummy
	// flush tenant semantics).
	if got := Cost(fs, []int64{1, 1, 50}); got != 2+1 {
		t.Errorf("Cost with dummy = %g", got)
	}
	// Fewer counts than functions: missing counts are zero cost.
	if got := Cost(fs, []int64{2}); got != 4 {
		t.Errorf("Cost short counts = %g", got)
	}
}

func TestResultCostMethods(t *testing.T) {
	tr := seqTrace(t, 1, 2, 1, 3, 1)
	res := MustRun(tr, &fifoTest{}, Config{K: 2})
	fs := []costfn.Func{costfn.Linear{W: 1}}
	if got := res.Cost(fs); got != float64(res.Misses[0]) {
		t.Errorf("Cost = %g", got)
	}
	if got := res.EvictionCost(fs); got != float64(res.Evictions[0]) {
		t.Errorf("EvictionCost = %g", got)
	}
}

// scriptedSource replays a fixed request list through the interactive API.
type scriptedSource struct{ reqs []trace.Request }

func (s *scriptedSource) Next(step int, cache CacheView) trace.Request { return s.reqs[step] }

func TestRunInteractiveMatchesRun(t *testing.T) {
	tr := seqTrace(t, 1, 2, 1, 3, 1, 2)
	want := MustRun(tr, &fifoTest{}, Config{K: 2})
	src := &scriptedSource{reqs: tr.Requests()}
	got, materialized, err := RunInteractive(src, tr.Len(), &fifoTest{}, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Hits != want.Hits || got.TotalMisses() != want.TotalMisses() {
		t.Errorf("interactive %+v != batch %+v", got, want)
	}
	if materialized.Len() != tr.Len() {
		t.Errorf("materialized length = %d", materialized.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if materialized.At(i) != tr.At(i) {
			t.Errorf("materialized[%d] = %+v", i, materialized.At(i))
		}
	}
}

// missingPageSource always requests a page the cache does not hold,
// mimicking the Theorem 1.4 adversary.
type missingPageSource struct{ universe []trace.PageID }

func (s *missingPageSource) Next(step int, cache CacheView) trace.Request {
	for _, p := range s.universe {
		if !cache.Contains(p) {
			return trace.Request{Page: p, Tenant: trace.Tenant(p % 3)}
		}
	}
	panic("cache holds whole universe")
}

func TestRunInteractiveAdversaryForcesAllMisses(t *testing.T) {
	src := &missingPageSource{universe: []trace.PageID{0, 1, 2, 3}}
	res, _, err := RunInteractive(src, 50, &fifoTest{}, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 0 {
		t.Errorf("adversary allowed %d hits", res.Hits)
	}
	if res.TotalMisses() != 50 {
		t.Errorf("misses = %d, want 50", res.TotalMisses())
	}
}

func TestRunInteractiveValidation(t *testing.T) {
	src := &scriptedSource{reqs: []trace.Request{{Page: 1, Tenant: 0}}}
	if _, _, err := RunInteractive(src, 0, &fifoTest{}, Config{K: 1}); err == nil {
		t.Error("steps=0 accepted")
	}
	if _, _, err := RunInteractive(src, 1, &fifoTest{}, Config{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRunAllParallel(t *testing.T) {
	tr := seqTrace(t, 1, 2, 3, 1, 2, 3, 1, 2, 3)
	var constructed atomic.Int32
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{
			Label: "job",
			Trace: tr,
			Policy: func() Policy {
				constructed.Add(1)
				return &fifoTest{}
			},
			Config: Config{K: 2},
		}
	}
	results := RunAll(jobs, 4)
	if len(results) != 16 {
		t.Fatalf("results = %d", len(results))
	}
	if constructed.Load() != 16 {
		t.Errorf("factory called %d times, want 16", constructed.Load())
	}
	for i, jr := range results {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if jr.Result.TotalMisses() != results[0].Result.TotalMisses() {
			t.Errorf("job %d mismatch", i)
		}
	}
	// Zero jobs and default workers paths.
	if out := RunAll(nil, 0); len(out) != 0 {
		t.Errorf("RunAll(nil) = %v", out)
	}
}

func TestWindowSeries(t *testing.T) {
	tr := seqTrace(t, 1, 2, 3, 1, 2, 3, 1, 2)
	ws := NewWindowSeries(4, 1)
	MustRun(tr, &fifoTest{}, Config{K: 2, Observer: ws.Observe})
	if ws.Windows() != 2 {
		t.Fatalf("windows = %d, want 2", ws.Windows())
	}
	var total int64
	for _, w := range ws.MissesPerWindow {
		total += w[0]
	}
	res := MustRun(tr, &fifoTest{}, Config{K: 2})
	if total != res.TotalMisses() {
		t.Errorf("window total %d != run total %d", total, res.TotalMisses())
	}
}
