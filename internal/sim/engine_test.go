package sim

import (
	"strings"
	"testing"
)

// TestEngineForcedMap drives a dense-capable policy through the map loop:
// PrepareDense must never be consulted and results must match the auto run.
func TestEngineForcedMap(t *testing.T) {
	tr := seqTrace(t, 1, 101, 2, 1, 101, 3, 2, 1, 202, 3, 1, 101)
	for _, k := range []int{1, 2, 3} {
		spy := &denseFIFO{}
		forced, err := Run(tr, spy, Config{K: k, Engine: EngineMap})
		if err != nil {
			t.Fatal(err)
		}
		if spy.d != nil {
			t.Fatalf("k=%d: EngineMap consulted PrepareDense", k)
		}
		auto, err := Run(tr, &denseFIFO{}, Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if forced.Hits != auto.Hits || forced.TotalMisses() != auto.TotalMisses() ||
			forced.TotalEvictions() != auto.TotalEvictions() {
			t.Fatalf("k=%d: forced map run diverges from auto: %+v vs %+v", k, forced, auto)
		}
	}
}

func TestEngineForcedDenseRejectsMapOnlyPolicy(t *testing.T) {
	tr := seqTrace(t, 1, 2, 3)
	if _, err := Run(tr, &fifoTest{}, Config{K: 2, Engine: EngineDense}); err == nil {
		t.Fatal("EngineDense accepted a policy without a dense path")
	} else if !strings.Contains(err.Error(), "dense engine") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEngineForcedDenseRejectsDecliningPolicy(t *testing.T) {
	tr := seqTrace(t, 1, 2, 3)
	if _, err := Run(tr, &decliningDense{}, Config{K: 2, Engine: EngineDense}); err == nil {
		t.Fatal("EngineDense accepted a declining policy")
	}
}
