package sim

import (
	"context"
	"errors"
	"testing"

	"convexcache/internal/trace"
)

// bigTrace builds a trace long enough to cross several cancellation-check
// boundaries (multiples of CheckEverySteps).
func bigTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder()
	for i := 0; i < n; i++ {
		b.Add(trace.Tenant(i%2), trace.PageID(i%1024))
	}
	return b.MustBuild()
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, bigTrace(t, 10), &fifoTest{}, Config{K: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	// Cancel from inside the first Progress callback: the engine must stop
	// at the next check instead of replaying all n steps.
	n := 50 * CheckEverySteps
	for _, tc := range []struct {
		name   string
		policy Policy
		engine Engine
	}{
		{"map", &fifoTest{}, EngineMap},
		{"dense", &denseFIFO{}, EngineDense},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			progressed := 0
			_, err := RunContext(ctx, bigTrace(t, n), tc.policy, Config{
				K:      16,
				Engine: tc.engine,
				Progress: func(delta int) {
					progressed += delta
					cancel()
				},
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if progressed >= n {
				t.Fatalf("run completed all %d steps despite cancellation", n)
			}
			if progressed > 3*CheckEverySteps {
				t.Errorf("run continued for %d steps after cancel (check cadence %d)", progressed, CheckEverySteps)
			}
		})
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	tr := bigTrace(t, 3*CheckEverySteps)
	want, err := Run(tr, &fifoTest{}, Config{K: 8, Engine: EngineMap})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), tr, &fifoTest{}, Config{K: 8, Engine: EngineMap})
	if err != nil {
		t.Fatal(err)
	}
	if got.Hits != want.Hits || got.TotalMisses() != want.TotalMisses() || got.TotalEvictions() != want.TotalEvictions() {
		t.Fatalf("RunContext diverged from Run: %+v vs %+v", got, want)
	}
}

func TestProgressDeltasSumToTraceLength(t *testing.T) {
	// Both engines, lengths straddling the check cadence (including 0-delta
	// edge at exact multiples and short traces below one check interval).
	for _, n := range []int{1, 100, CheckEverySteps, CheckEverySteps + 1, 3*CheckEverySteps - 7} {
		for _, tc := range []struct {
			name   string
			policy Policy
			engine Engine
		}{
			{"map", &fifoTest{}, EngineMap},
			{"dense", &denseFIFO{}, EngineDense},
		} {
			total, calls := 0, 0
			_, err := RunContext(context.Background(), bigTrace(t, n), tc.policy, Config{
				K:      16,
				Engine: tc.engine,
				Progress: func(delta int) {
					total += delta
					calls++
				},
			})
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, tc.name, err)
			}
			if total != n {
				t.Errorf("n=%d %s: progress deltas sum to %d", n, tc.name, total)
			}
			if calls == 0 {
				t.Errorf("n=%d %s: Progress never called", n, tc.name)
			}
		}
	}
}
