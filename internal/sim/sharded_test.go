package sim_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"convexcache/internal/check"
	"convexcache/internal/core"
	"convexcache/internal/costfn"
	"convexcache/internal/policy"
	"convexcache/internal/sim"
	"convexcache/internal/trace"
)

func shardedCosts(n int) []costfn.Func {
	out := make([]costfn.Func, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = costfn.Monomial{C: 1, Beta: 2}
		} else {
			out[i] = costfn.Linear{W: float64(i + 1)}
		}
	}
	return out
}

func fastFactory(n int) func() sim.Policy {
	opt := core.Options{Costs: shardedCosts(n)}
	return func() sim.Policy { return core.NewFast(opt) }
}

func requireEqualResults(t *testing.T, label string, a, b sim.Result) {
	t.Helper()
	if a.Hits != b.Hits || !reflect.DeepEqual(a.Misses, b.Misses) ||
		!reflect.DeepEqual(a.Evictions, b.Evictions) || a.EffectiveSteps != b.EffectiveSteps {
		t.Fatalf("%s: results differ:\n  a: hits=%d misses=%v evictions=%v eff=%d\n  b: hits=%d misses=%v evictions=%v eff=%d",
			label, a.Hits, a.Misses, a.Evictions, a.EffectiveSteps, b.Hits, b.Misses, b.Evictions, b.EffectiveSteps)
	}
}

// TestShardedDeterminismAndDegeneracy covers the two contracts of sharded
// replay over the oracle workload corpus: worker parallelism never changes
// the merged accounting, and one shard reproduces sequential replay
// bit-for-bit. Warmup boundaries (none, mid-trace, past the end) ride
// along, including values that cut inside a batch.
func TestShardedDeterminismAndDegeneracy(t *testing.T) {
	ctx := context.Background()
	for _, w := range check.Workloads() {
		tr, err := w.Gen(11, 6000)
		if err != nil {
			t.Fatalf("%s: gen: %v", w.Name, err)
		}
		mk := fastFactory(tr.NumTenants())
		for _, k := range []int{16, 97} {
			for _, warm := range []int{0, 1, sim.BatchSize - 1, sim.BatchSize, 3000, 6000, 9000} {
				cfg := sim.Config{K: k, WarmupSteps: warm}
				seq, err := sim.Run(tr, mk(), cfg)
				if err != nil {
					t.Fatalf("%s k=%d warm=%d: sequential: %v", w.Name, k, warm, err)
				}
				for _, n := range []int{1, 2, 4, 8} {
					pl, err := sim.BuildShards(tr, n)
					if err != nil {
						t.Fatalf("%s: BuildShards(%d): %v", w.Name, n, err)
					}
					par, err := pl.Run(ctx, mk, cfg, n)
					if err != nil {
						t.Fatalf("%s k=%d warm=%d n=%d: %v", w.Name, k, warm, n, err)
					}
					ser, err := pl.Run(ctx, mk, cfg, 1)
					if err != nil {
						t.Fatalf("%s k=%d warm=%d n=%d workers=1: %v", w.Name, k, warm, n, err)
					}
					requireEqualResults(t, w.Name+"/parallel-vs-serial", par, ser)
					if par.Steps != tr.Len() {
						t.Fatalf("%s n=%d: merged Steps = %d, want %d", w.Name, n, par.Steps, tr.Len())
					}
					if got, want := par.Hits+par.TotalMisses(), int64(par.EffectiveSteps); got != want {
						t.Fatalf("%s n=%d: hits+misses=%d, effective steps=%d", w.Name, n, got, want)
					}
					if n == 1 {
						requireEqualResults(t, w.Name+"/n1-vs-sequential", par, seq)
					}
				}
			}
		}
	}
}

// TestShardedPlanReuse replays one plan twice and expects identical merged
// results — the plan carries no per-run state.
func TestShardedPlanReuse(t *testing.T) {
	tr := shardedTrace(t, 4000)
	mk := fastFactory(tr.NumTenants())
	pl, err := sim.BuildShards(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{K: 64}
	a, err := pl.Run(context.Background(), mk, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pl.Run(context.Background(), mk, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "plan-reuse", a, b)
}

// TestShardedRejects covers the contract errors: non-positive shard count,
// k below the shard count, observers, the map engine, and a policy without
// a dense path.
func TestShardedRejects(t *testing.T) {
	tr := shardedTrace(t, 500)
	mk := fastFactory(tr.NumTenants())
	ctx := context.Background()

	if _, err := sim.BuildShards(tr, 0); err == nil {
		t.Fatal("BuildShards(0) succeeded")
	}
	if _, err := sim.RunSharded(ctx, tr, mk, sim.Config{K: 3}, 8); err == nil {
		t.Fatal("k < shards succeeded")
	}
	if _, err := sim.RunSharded(ctx, tr, mk, sim.Config{K: 64, Observer: func(sim.Event) {}}, 2); err == nil {
		t.Fatal("observer run succeeded")
	}
	if _, err := sim.RunSharded(ctx, tr, mk, sim.Config{K: 64, Engine: sim.EngineMap}, 2); err == nil {
		t.Fatal("map engine succeeded")
	}
	spec := policy.Spec{K: 64, Tenants: tr.NumTenants(), Costs: shardedCosts(tr.NumTenants()), Seed: 1}
	mkSparse := func() sim.Policy {
		p, err := policy.New("random", spec)
		if err != nil {
			t.Fatalf("registry: %v", err)
		}
		return p
	}
	if _, err := sim.RunSharded(ctx, tr, mkSparse, sim.Config{K: 64}, 2); err == nil {
		t.Fatal("sparse-only policy succeeded")
	}
}

// TestShardedCancellation cancels the context mid-run and expects an error
// wrapping context.Canceled from some shard.
func TestShardedCancellation(t *testing.T) {
	tr := shardedTrace(t, 60000)
	mk := fastFactory(tr.NumTenants())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunSharded(ctx, tr, mk, sim.Config{K: 64}, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestShardedProgress checks that the serialized progress deltas sum to the
// trace length across concurrent shards.
func TestShardedProgress(t *testing.T) {
	tr := shardedTrace(t, 50000)
	mk := fastFactory(tr.NumTenants())
	total := 0
	cfg := sim.Config{K: 128, Progress: func(d int) { total += d }}
	if _, err := sim.RunSharded(context.Background(), tr, mk, cfg, 4); err != nil {
		t.Fatal(err)
	}
	if total != tr.Len() {
		t.Fatalf("progress deltas sum to %d, want %d", total, tr.Len())
	}
}

// TestShardedMoreShardsThanPages drives a degenerate partition where some
// shards receive no requests at all.
func TestShardedMoreShardsThanPages(t *testing.T) {
	b := trace.NewBuilder()
	for i := 0; i < 200; i++ {
		b.Add(0, trace.PageID(i%3))
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mk := fastFactory(1)
	res, err := sim.RunSharded(context.Background(), tr, mk, sim.Config{K: 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 200 {
		t.Fatalf("Steps = %d, want 200", res.Steps)
	}
	if got := res.Hits + res.TotalMisses(); got != 200 {
		t.Fatalf("hits+misses = %d, want 200", got)
	}
}

func shardedTrace(t *testing.T, length int) *trace.Trace {
	t.Helper()
	ws := check.Workloads()
	tr, err := ws[0].Gen(7, length)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestBuildShardsByCustomRouting checks the explicit-routing plan builder:
// a custom partition must be honored exactly (every request lands on the
// shard its page routes to), nil routing must reproduce BuildShards, and
// out-of-range routing is rejected up front.
func TestBuildShardsByCustomRouting(t *testing.T) {
	tr := shardedTrace(t, 4000)
	mk := fastFactory(tr.NumTenants())
	ctx := context.Background()
	const n = 4

	// A deliberately non-modular routing function (bit-mixed hash), the
	// shape a live hash-routed cache uses.
	hash := func(p trace.PageID) int {
		x := uint64(p) * 0x9e3779b97f4a7c15
		x ^= x >> 29
		return int(x % n)
	}
	pl, err := sim.BuildShardsBy(tr, n, hash)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < n; s++ {
		total += pl.ShardLen(s)
	}
	if total != tr.Len() {
		t.Fatalf("routed %d requests, want %d", total, tr.Len())
	}

	// The merged accounting is deterministic across worker counts and
	// conserves hits+misses, exactly like the default partition.
	a, err := pl.Run(ctx, mk, sim.Config{K: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pl.Run(ctx, mk, sim.Config{K: 64}, n)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "custom routing, 1 vs n workers", a, b)
	if got := a.Hits + a.TotalMisses(); got != int64(tr.Len()) {
		t.Fatalf("hits+misses = %d, want %d", got, tr.Len())
	}

	// nil routing must be the default dense-mod-n partition.
	byNil, err := sim.BuildShardsBy(tr, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	byDefault, err := sim.BuildShards(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if byNil.ShardLen(s) != byDefault.ShardLen(s) {
			t.Fatalf("shard %d: nil routing len %d != default len %d", s, byNil.ShardLen(s), byDefault.ShardLen(s))
		}
	}
	rNil, err := byNil.Run(ctx, mk, sim.Config{K: 64}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rDef, err := byDefault.Run(ctx, mk, sim.Config{K: 64}, 3)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "nil routing vs BuildShards", rNil, rDef)

	// Routing outside [0, n) is a construction-time error.
	if _, err := sim.BuildShardsBy(tr, 2, func(trace.PageID) int { return 2 }); err == nil {
		t.Fatal("out-of-range routing accepted")
	}
	if _, err := sim.BuildShardsBy(tr, 2, func(trace.PageID) int { return -1 }); err == nil {
		t.Fatal("negative routing accepted")
	}
}

// TestShardShare checks the capacity split sums to k and spreads the
// remainder over the lowest-numbered shards.
func TestShardShare(t *testing.T) {
	// k < n is included deliberately: the split itself stays well-defined
	// (trailing shards get zero pages) even though cached.New rejects such
	// configs — the rejection is the service's contract, not the math's.
	for _, tc := range []struct{ k, n int }{{8, 3}, {7, 7}, {100, 16}, {5, 4}, {4, 4}, {2, 5}, {1, 7}, {0, 3}} {
		sum := 0
		prev := 1 << 30
		for s := 0; s < tc.n; s++ {
			sh := sim.ShardShare(tc.k, tc.n, s)
			if sh > prev {
				t.Fatalf("k=%d n=%d: share grew at shard %d", tc.k, tc.n, s)
			}
			prev = sh
			sum += sh
		}
		if sum != tc.k {
			t.Fatalf("k=%d n=%d: shares sum to %d", tc.k, tc.n, sum)
		}
	}
}
