package sim

import (
	"context"
	"fmt"

	"convexcache/internal/trace"
)

// DensePolicy is the allocation-free fast path of the engine. A policy that
// implements it is driven with dense page indices (see trace.Dense) instead
// of raw PageIDs, so both the engine and the policy can keep all per-page
// state in flat slices. The sparse Policy methods remain the fallback for
// interactive runs and direct drivers.
//
// Contract mirrors Policy: DenseVictim must return a resident dense index;
// the engine verifies and fails the run otherwise.
type DensePolicy interface {
	Policy
	// PrepareDense installs the dense trace view and the cache capacity
	// before the first request of a dense run. Returning false declines the
	// dense path and the engine falls back to the map-based loop.
	PrepareDense(d *trace.Dense, k int) bool
	// DenseHit is OnHit with the page's dense index.
	DenseHit(step int, page int32)
	// DenseInsert is OnInsert with the page's dense index.
	DenseInsert(step int, page int32)
	// DenseVictim is Victim with the requested page's dense index; it
	// returns the dense index of the page to evict.
	DenseVictim(step int, page int32) int32
	// DenseEvict is OnEvict with the evicted page's dense index.
	DenseEvict(step int, page int32)
}

// runDense is the dense engine: residency is a slot table (page -> slot, or
// -1) plus its reverse index (slot -> page), counters live in the Result
// slices, and the Event struct is reused across steps. The request loop
// performs no steady-state allocations.
func runDense(ctx context.Context, tr *trace.Trace, p DensePolicy, cfg Config) (Result, bool, error) {
	d := tr.Dense()
	if !p.PrepareDense(d, cfg.K) {
		return Result{}, false, nil
	}
	nTenants := tr.NumTenants()
	res := Result{
		Policy:         p.Name(),
		K:              cfg.K,
		Steps:          tr.Len(),
		EffectiveSteps: effectiveSteps(tr.Len(), cfg.WarmupSteps),
		Misses:         make([]int64, nTenants),
		Evictions:      make([]int64, nTenants),
	}
	nPages := d.NumPages()
	slotOf := make([]int32, nPages) // dense page -> slot, -1 when absent
	for i := range slotOf {
		slotOf[i] = -1
	}
	slotCap := cfg.K
	if slotCap > nPages {
		slotCap = nPages
	}
	slots := make([]int32, slotCap) // slot -> dense page (reverse index)
	used := 0
	done := ctx.Done()
	reported := 0
	var ev Event
	for step, pg := range d.Reqs {
		if step&checkMask == checkMask {
			if done != nil {
				select {
				case <-done:
					return Result{}, true, cancelErr(ctx, step)
				default:
				}
			}
			if cfg.Progress != nil {
				cfg.Progress(step + 1 - reported)
				reported = step + 1
			}
		}
		warm := step < cfg.WarmupSteps
		tenant := d.Owners[pg]
		if slotOf[pg] >= 0 {
			if !warm {
				res.Hits++
			}
			p.DenseHit(step, pg)
			if cfg.Observer != nil {
				ev = Event{Step: step, Req: trace.Request{Page: d.Pages[pg], Tenant: tenant}, Evicted: -1, EvictedTenant: -1, Warmup: warm}
				cfg.Observer(ev)
			}
			continue
		}
		if !warm {
			res.Misses[tenant]++
		}
		evicted := int32(-1)
		var evictedOwner trace.Tenant = -1
		var slot int32
		if used >= cfg.K {
			victim := p.DenseVictim(step, pg)
			if victim < 0 || int(victim) >= nPages || slotOf[victim] < 0 {
				return Result{}, true, fmt.Errorf("sim: policy %s returned victim %d not in cache at step %d", p.Name(), victim, step)
			}
			slot = slotOf[victim]
			slotOf[victim] = -1
			evicted = victim
			evictedOwner = d.Owners[victim]
			if !warm {
				res.Evictions[evictedOwner]++
			}
			p.DenseEvict(step, victim)
		} else {
			slot = int32(used)
			used++
		}
		slotOf[pg] = slot
		slots[slot] = pg
		p.DenseInsert(step, pg)
		if cfg.Observer != nil {
			ev = Event{Step: step, Req: trace.Request{Page: d.Pages[pg], Tenant: tenant}, Miss: true, Evicted: -1, EvictedTenant: evictedOwner, Warmup: warm}
			if evicted >= 0 {
				ev.Evicted = d.Pages[evicted]
			}
			cfg.Observer(ev)
		}
	}
	if cfg.Progress != nil && tr.Len() > reported {
		cfg.Progress(tr.Len() - reported)
	}
	return res, true, nil
}
